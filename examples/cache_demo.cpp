// Result-cache demo: popularity-skewed traffic through a cache-enabled
// ServingEngine (hits, coalesced followers, bit-exact outputs), then a
// warm-cache cluster failover in shared vs per-replica mode.
//
//   ./example_cache_demo

#include <cstdio>
#include <map>

#include "latte/latte.hpp"

using namespace latte;

namespace {

void PrintCacheLine(const char* label, const CacheStats& cs,
                    const ServingReport& report) {
  std::printf("  %-22s hits %3zu  coalesced %2zu  misses %3zu  "
              "hit-rate %4.0f%%  p99 %6.2f ms  %6.1f req/s\n",
              label, cs.hits, cs.coalesced, cs.misses, CacheHitRate(cs) * 100,
              report.p99_latency_s * 1e3, report.throughput_rps);
}

}  // namespace

int main() {
  const ModelInstance model(ScaledDown(BertBase(), 6), 2022);

  // A popularity-skewed stream: 64 requests over 10 identities -- the
  // regime where most traffic repeats content someone already asked for.
  ZipfTraceConfig trace_cfg;
  trace_cfg.arrival_rate_rps = 250;
  trace_cfg.requests = 64;
  trace_cfg.population = 10;
  trace_cfg.skew = 1.0;
  trace_cfg.seed = 42;
  const auto trace = GenerateZipfTrace(trace_cfg, Mrpc());
  std::printf("Zipf trace: %zu requests, %zu identities, %.0f%% duplicates\n\n",
              trace.size(), trace_cfg.population,
              TraceDuplicateRate(trace) * 100);

  // --- One engine, cached vs uncached, real execution ------------------
  ServingEngineConfig cfg;
  cfg.former.max_batch = 4;
  cfg.former.timeout_s = 0.02;
  cfg.inference.mode = InferenceMode::kSparseInt8;
  cfg.inference.sparse.top_k = 16;
  cfg.service = PaddedServiceModel(10e-6, 1e-3);

  ServingEngine uncached(model, cfg);
  const auto plain = uncached.Replay(trace);

  cfg.cache.enabled = true;
  cfg.cache.key_policy = CacheKeyPolicy::kRequestId;
  cfg.cache.eviction = EvictionPolicy::kSegmentedLru;
  ServingEngine cached(model, cfg);
  const auto result = cached.Replay(trace);

  std::printf("engine (functional execution):\n");
  PrintCacheLine("uncached", plain.cache, plain.report());
  PrintCacheLine("cached (SLRU)", result.cache, result.report());
  std::printf("  executed %zu batches instead of %zu (%zu admitted vs %zu)\n",
              result.report().batches, plain.report().batches,
              result.offered_ids.size(), plain.offered_ids.size());

  // Bit-exactness: every hit and follower carries the identical tensor the
  // uncached engine computed for that identity.
  std::map<std::uint64_t, const MatrixF*> reference;
  for (std::size_t i = 0; i < plain.offered_ids.size(); ++i) {
    reference.emplace(trace[plain.offered_ids[i]].id, &plain.outputs[i]);
  }
  std::size_t checked = 0;
  bool exact = true;
  for (const CacheServedRequest& served : result.cache_served) {
    exact =
        exact && served.output == *reference.at(trace[served.offered_id].id);
    ++checked;
  }
  std::printf("  %zu cache-served outputs bit-exact vs uncached run: %s\n\n",
              checked, exact ? "yes" : "NO");

  // --- Warm-cache failover: shared vs per-replica store ----------------
  auto cluster_cfg = [&](ClusterCacheMode mode) {
    ClusterConfig c;
    for (int i = 0; i < 3; ++i) {
      ReplicaConfig rep;
      rep.engine = cfg;
      rep.engine.cache = ResultCacheConfig{};  // cluster manages the cache
      rep.engine.execute = false;              // accounting-only sweep
      c.replicas.push_back(rep);
    }
    c.router.policy = RouterPolicy::kKeyAffinity;
    c.cache.mode = mode;
    return c;
  };
  std::printf("cluster failover with a warm cache (replica 0 offline):\n");
  for (ClusterCacheMode mode :
       {ClusterCacheMode::kShared, ClusterCacheMode::kPerReplica}) {
    ServingCluster cluster(model, cluster_cfg(mode));
    cluster.Replay(trace);  // warm
    cluster.SetOnline(0, false);
    const auto after = cluster.Replay(trace);
    std::printf("  %-12s stream 2: hits %2zu / %zu  (misses recomputed: %zu)\n",
                ClusterCacheModeName(mode), after.report.cache.hits,
                trace.size(), after.report.cache.misses);
  }
  std::printf("\nshared mode keeps the fleet's entries through the failover; "
              "per-replica mode\ncleanly invalidates the lost replica's and "
              "recomputes its keys elsewhere.\n");
  return exact ? 0 : 1;
}
