// End-to-end scenario from the paper's evaluation: BERT-base over a
// SQuAD-shaped batch of 16, on all five designs of Fig 7(a).
//
//   $ ./squad_end2end [batch_size] [top_k]
//
// Walks through the whole public API: dataset sampling, batching policies,
// the CPU/GPU roofline models, and the FPGA accelerator in baseline and
// length-aware modes, then prints latency / throughput / equivalent GOPS.

#include <cstdio>
#include <cstdlib>

#include "latte/latte.hpp"

int main(int argc, char** argv) {
  using namespace latte;

  const std::size_t batch =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 16;
  const std::size_t top_k =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 30;

  const auto model = BertBase();
  const auto dataset = Squad();
  const auto pad_to = static_cast<std::size_t>(dataset.max_len);

  Rng rng(2022);
  LengthSampler sampler(dataset);
  const auto lens = sampler.SampleMany(rng, batch);

  std::printf("BERT-base on %s, batch %zu, Top-%zu sparse attention\n",
              dataset.name.c_str(), batch, top_k);
  std::printf("sampled lengths:");
  for (auto n : lens) std::printf(" %zu", n);
  std::printf("\n\n");

  TextTable table({"design", "latency (ms)", "seq/s", "speedup vs CPU"});
  const auto cpu = RunPlatform(XeonGold5218(), model, lens,
                               BatchPolicy::kPadToMax, pad_to);
  const auto tx2 = RunPlatform(JetsonTx2(), model, lens,
                               BatchPolicy::kPadToMax, pad_to);
  const auto gpu = RunPlatform(QuadroRtx6000(), model, lens,
                               BatchPolicy::kPadToMax, pad_to);

  AcceleratorConfig base_cfg;
  base_cfg.mode = FpgaMode::kBaseline;
  base_cfg.baseline_pad_to = pad_to;
  const auto fpga_base = RunAccelerator(model, lens, base_cfg);

  AcceleratorConfig aware_cfg;
  aware_cfg.top_k = top_k;
  const auto fpga = RunAccelerator(model, lens, aware_cfg);

  auto add = [&](const char* name, double latency) {
    table.AddRow({name, Fmt(latency * 1e3, 1),
                  Fmt(static_cast<double>(batch) / latency, 1),
                  FmtX(cpu.latency_s / latency)});
  };
  add("CPU Xeon Gold 5218 (padded dense)", cpu.latency_s);
  add("Jetson TX2 (padded dense)", tx2.latency_s);
  add("Quadro RTX 6000 (padded dense)", gpu.latency_s);
  add("FPGA baseline (padded dense)", fpga_base.latency_s);
  add("FPGA length-aware sparse (ours)", fpga.latency_s);
  std::printf("%s\n", table.Render().c_str());

  std::printf("FPGA equivalent throughput: %.0f GOPS (DSP roof: %.0f GOPS; "
              "saved work counts as done)\n",
              fpga_base.computed_flops / fpga.latency_s / 1e9,
              AlveoU280Slr0().PeakOpsPerSecond() / 1e9);
  std::printf("padding overhead of the dense designs: %.2fx computed vs "
              "useful FLOPs\n",
              cpu.computed_flops / cpu.useful_dense_flops);
  const auto util = fpga.schedule.StageUtilization();
  std::printf("FPGA stage utilization: %.1f%% / %.1f%% / %.1f%%\n",
              100 * util[0], 100 * util[1], 100 * util[2]);
  return 0;
}
