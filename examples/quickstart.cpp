// Quickstart: run the paper's sparse Top-k attention on one synthetic
// sequence and compare it against dense attention.
//
//   $ ./quickstart
//
// Demonstrates the three public building blocks: workload generation,
// the SparseAttention operator, and the fidelity metrics.

#include <cstdio>

#include "latte/latte.hpp"

int main() {
  using namespace latte;

  // 1. A synthetic 256-token attention problem with BERT-like score
  //    concentration (a few dominant keys per query).
  Rng rng(2022);
  AttentionWorkloadConfig wl;
  wl.head_dim = 64;
  const AttentionProblem problem = GenerateAttentionProblem(rng, 256, wl);

  // 2. Sparse attention: 1-bit quantized pre-selection, Top-30 candidates.
  SparseAttentionConfig cfg;
  cfg.top_k = 30;
  cfg.bits = 1;
  SparseAttentionStats stats;
  const MatrixF sparse =
      SparseAttention(problem.q, problem.k, problem.v, cfg, &stats);

  // 3. Dense reference and fidelity.
  const FidelityReport rep = EvaluateFidelity(problem, cfg);

  std::printf("sparse attention on n=%zu tokens, top-k=%zu, %d-bit codes\n",
              stats.n, stats.selected_per_row, cfg.bits);
  std::printf("  full-precision MACs  : %zu (dense would need %zu)\n",
              stats.exact_macs, stats.n * stats.n * problem.q.cols() * 2);
  std::printf("  top-k recall         : %.3f\n", rep.topk_recall);
  std::printf("  retained softmax mass: %.3f\n", rep.retained_mass);
  std::printf("  output cosine        : %.4f\n", rep.output_cosine);
  std::printf("  output rel. error    : %.4f\n", rep.output_rel_error);
  std::printf("  (output shape %zux%zu)\n", sparse.rows(), sparse.cols());
  return 0;
}
