// Adaptive serving demo: the SLO-driven admission/degradation controller.
//
//   $ ./example_adaptive_demo
//
// Replays a load ramp (warmup -> overload -> cooldown) through two engines
// on the same accelerator service model: a fixed full-quality top-k engine
// that can only shed when the bounded queue fills, and an adaptive engine
// whose controller walks the service ladder
//
//   full top-k -> sparser top-k -> cheap first pass escalating uncertain
//   results to the full model -> admission shed last,
//
// then prints the tier usage, the latency/accuracy outcome and the reject
// counts side by side.  Everything is virtual-time deterministic: rerun it
// and every number repeats to the last bit.

#include <cstdio>

#include "latte/latte.hpp"

int main() {
  using namespace latte;

  // An attention-heavy model, so the ladder's top_k is a real latency
  // lever (on FFN-dominated shapes it would move latency by ~1%).
  ModelConfig model_cfg;
  model_cfg.name = "attn-heavy";
  model_cfg.layers = 4;
  model_cfg.encoder.hidden = 96;
  model_cfg.encoder.heads = 4;
  model_cfg.encoder.ffn_dim = 96;
  const ModelInstance model(model_cfg, 2022);
  const auto dataset = Squad();

  // Ladder accuracies from the fidelity model (Fig 6 mechanism), not
  // hand-waved constants.
  TierAccuracyTableConfig table_cfg;
  table_cfg.workload = WorkloadForDataset(dataset);
  table_cfg.workload.head_dim = model_cfg.encoder.head_dim();
  const auto table = BuildTopKAccuracyTable(table_cfg, {32, 96, 192});

  AdaptiveServingConfig adapt;
  adapt.enabled = true;
  adapt.slo_p99_s = 0.008;
  adapt.accuracy_floor = 0.90;
  adapt.epoch_s = 0.001;
  adapt.queue_ref = 8;
  adapt.escalate_margin = 0.0075;
  adapt.tiers = {{192, false, AccuracyForTopK(table, 192)},
                 {96, false, AccuracyForTopK(table, 96)},
                 {32, true, AccuracyForTopK(table, 32)}};

  ServingEngineConfig cfg;
  cfg.former.max_batch = 8;
  cfg.former.timeout_s = 0.002;
  cfg.workers = 2;
  cfg.queue_capacity = 32;
  cfg.execute = false;  // accounting only: the sweep is pure virtual time
  cfg.inference.mode = InferenceMode::kSparseInt8;
  cfg.inference.sparse.top_k = 192;
  ServiceModelSpec spec;
  spec.base = ServiceModelSpec::Base::kAccelerator;
  spec.model = model_cfg;
  spec.accel.top_k = 192;
  cfg.service = BuildServiceModel(spec);

  ServingEngineConfig adaptive_cfg = cfg;
  adaptive_cfg.adapt = adapt;
  adaptive_cfg.tier_services = BuildTierServiceModels(spec, adapt.tiers);

  // The ramp: a peak far past what full quality can serve.
  RampTraceConfig ramp;
  ramp.stages = {{8000, 64}, {30000, 256}, {4000, 64}};
  ramp.seed = 7;
  const auto trace = GenerateRampTrace(ramp, dataset);

  ServingEngine fixed_engine(model, cfg);
  const ServingResult fixed = fixed_engine.Replay(trace);
  ServingEngine adaptive_engine(model, adaptive_cfg);
  const ServingResult adaptive = adaptive_engine.Replay(trace);

  std::printf("load ramp: %zu requests over %zu stages, SLO %.0f ms\n\n",
              trace.size(), ramp.stages.size(), adapt.slo_p99_s * 1e3);
  std::printf("fixed top-k=192 : p99 %.1f ms, rejected %zu, accuracy %.4f\n",
              fixed.report().p99_latency_s * 1e3, fixed.admission.rejected,
              fixed.report().mean_accuracy);
  std::printf("adaptive ladder : p99 %.1f ms, rejected %zu, accuracy %.4f\n\n",
              adaptive.report().p99_latency_s * 1e3,
              adaptive.admission.rejected, adaptive.report().mean_accuracy);

  std::printf("tier usage of the adaptive run:\n");
  for (const TierUsage& tier : adaptive.report().tiers) {
    std::printf(
        "  top_k %3zu : %3zu requests in %2zu batches, %2zu escalated, "
        "accuracy %.4f\n",
        tier.top_k, tier.requests, tier.batches, tier.escalated,
        tier.accuracy);
  }

  const bool ok =
      adaptive.report().p99_latency_s <= adapt.slo_p99_s &&
      adaptive.admission.rejected < fixed.admission.rejected &&
      adaptive.report().mean_accuracy >= adapt.accuracy_floor;
  std::printf("\nadaptive holds the SLO with fewer rejects above the "
              "accuracy floor: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
