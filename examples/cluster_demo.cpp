// Cluster demo: N serving replicas behind a router.
//
//   $ ./example_cluster_demo
//
// Three acts on one request trace:
//   1. a virtual-time policy comparison (round-robin vs join-shortest-
//      queue vs least-outstanding-tokens vs length-bucketed) over a fleet
//      of padded backends -- accounting only, so the sweep is instant and
//      byte-deterministic;
//   2. a heterogeneous fleet: one length-aware accelerator replica next
//      to two slower padded replicas, where load-aware routing has to
//      learn the speed difference from queue signals alone;
//   3. real execution with a mid-stream failover: half the trace in, one
//      replica goes offline, the router redistributes, and every admitted
//      request still comes back with a computed output.

#include <cstdio>

#include "latte/latte.hpp"

int main() {
  using namespace latte;

  const auto dataset = Squad();
  const ModelConfig small = ScaledDown(BertBase(), 6);
  const ModelInstance model(small, 2022);

  PoissonTraceConfig trace_cfg;
  trace_cfg.arrival_rate_rps = 200;
  trace_cfg.requests = 160;
  trace_cfg.seed = 5;
  const auto trace = GeneratePoissonTrace(trace_cfg, dataset);

  // ---- 1. policy comparison, virtual time ------------------------------
  auto replica = [] {
    ReplicaConfig rep;
    rep.engine.former.max_batch = 8;
    rep.engine.former.timeout_s = 0.05;
    rep.engine.execute = false;  // accounting only
    rep.engine.service = PaddedServiceModel(10e-6, 1e-3);
    return rep;
  };
  std::printf("policy comparison: %zu SQuAD-length requests @ %.0f req/s, "
              "2 padded replicas\n",
              trace.size(), trace_cfg.arrival_rate_rps);
  std::printf("  %-26s %8s %6s %9s %9s %10s\n", "policy", "batches", "fill",
              "p50 (ms)", "p99 (ms)", "imbalance");
  for (RouterPolicy policy :
       {RouterPolicy::kRoundRobin, RouterPolicy::kJoinShortestQueue,
        RouterPolicy::kLeastOutstandingTokens,
        RouterPolicy::kLengthBucketed}) {
    ClusterConfig cfg;
    cfg.replicas = {replica(), replica()};
    cfg.router.policy = policy;
    cfg.router.length_edges = {152};  // SQuAD median split
    ServingCluster cluster(model, cfg);
    const ClusterResult res = cluster.Replay(trace);
    std::printf("  %-26s %8zu %6.2f %9.1f %9.1f %10.2f\n",
                RouterPolicyName(policy), res.fleet().batches,
                res.report.mean_batch_fill, res.fleet().p50_latency_s * 1e3,
                res.fleet().p99_latency_s * 1e3, res.report.request_imbalance);
  }

  // ---- 2. heterogeneous fleet: accelerator + 2 slow padded replicas ----
  // Offered near (not past) fleet capacity, where routing quality decides
  // the tail: the accelerator replica serves a batch ~1.7x faster than
  // the padded baselines, and only the load-aware policy can discover
  // that from queue signals alone.
  PoissonTraceConfig het_cfg = trace_cfg;
  het_cfg.arrival_rate_rps = 60;
  const auto het_trace = GeneratePoissonTrace(het_cfg, dataset);
  std::printf("\nheterogeneous fleet (1 length-aware accelerator + 2 slower "
              "padded baselines, %.0f req/s):\n",
              het_cfg.arrival_rate_rps);
  for (RouterPolicy policy :
       {RouterPolicy::kRoundRobin, RouterPolicy::kLeastOutstandingTokens}) {
    ClusterConfig cfg;
    ReplicaConfig accel = replica();
    accel.name = "fpga-aware";
    ServiceModelSpec accel_spec;
    accel_spec.base = ServiceModelSpec::Base::kAccelerator;
    accel_spec.model = BertBase();
    accel.engine.service = BuildServiceModel(accel_spec);
    ReplicaConfig slow = replica();
    slow.name = "padded-baseline";
    slow.engine.service = PaddedServiceModel(120e-6, 2e-3);
    cfg.replicas = {accel, slow, slow};
    cfg.router.policy = policy;
    ServingCluster cluster(model, cfg);
    const ClusterResult res = cluster.Replay(het_trace);
    std::printf("  %-26s p99 %7.1f ms, routed", RouterPolicyName(policy),
                res.fleet().p99_latency_s * 1e3);
    for (const auto& acc : res.report.replicas) {
      std::printf(" %s=%zu", acc.name.c_str(), acc.requests);
    }
    std::printf("\n");
  }

  // ---- 3. real execution with a mid-stream failover --------------------
  ClusterConfig cfg;
  for (int i = 0; i < 2; ++i) {
    ReplicaConfig rep;
    rep.engine.former.max_batch = 6;
    rep.engine.former.timeout_s = 0.02;
    rep.engine.threads = 2;
    rep.engine.inference.mode = InferenceMode::kSparseInt8;
    rep.engine.inference.sparse.top_k = 30;
    cfg.replicas.push_back(rep);
  }
  cfg.router.policy = RouterPolicy::kJoinShortestQueue;

  PoissonTraceConfig exec_cfg;
  exec_cfg.arrival_rate_rps = 150;
  exec_cfg.requests = 32;
  exec_cfg.seed = 3;
  const auto exec_trace = GeneratePoissonTrace(exec_cfg, Mrpc());

  ServingCluster cluster(model, cfg);
  const std::size_t cut = exec_trace.size() / 2;
  for (std::size_t i = 0; i < cut; ++i) cluster.Push(exec_trace[i]);
  cluster.SetOnline(0, false);  // failover mid-stream
  for (std::size_t i = cut; i < exec_trace.size(); ++i) {
    cluster.Push(exec_trace[i]);
  }
  const ClusterResult res = cluster.Drain();

  std::size_t computed = 0;
  for (const auto& out : res.outputs) computed += out.empty() ? 0 : 1;
  std::printf("\nfailover: replica 0 offline after %zu of %zu requests\n", cut,
              exec_trace.size());
  std::printf("  admitted %zu, computed outputs %zu (no admitted request "
              "lost)\n",
              res.routing.admitted, computed);
  for (const auto& acc : res.report.replicas) {
    std::printf("  %s: %zu requests, %zu batches, busy %.0f%%%s\n",
                acc.name.c_str(), acc.requests, acc.report.batches,
                100 * acc.report.device_busy_frac,
                acc.online ? "" : "  [offline]");
  }
  return 0;
}
