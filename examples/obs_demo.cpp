// Observability demo: trace a serving run and export every artifact.
//
//   $ ./example_obs_demo
//
// Replays a Poisson trace through a tracing-enabled ServingEngine, then
// writes the three observability artifacts to the working directory:
//
//   obs_demo_trace.json    -- Chrome trace-event JSON.  Open it at
//                             https://ui.perfetto.dev (or chrome://tracing)
//                             to see per-worker batch slices and per-request
//                             admit -> queue-wait -> service -> complete
//                             lifecycles on the control track.
//   obs_demo_metrics.json  -- the unified metrics-registry snapshot
//                             (admission, cache, report, pool health,
//                             tracer self-accounting), name-sorted.
//   obs_demo_manifest.json -- the run manifest: config JSON, seed, host
//                             stamp and headline metrics.
//   obs_demo_breakdown.json-- the latency attribution: every request's
//                             end-to-end latency decomposed into exact
//                             gap-free stages, per-stage percentiles,
//                             the p99 tail budget and the critical path
//                             (diff two of these with tools/trace_diff).
//   obs_demo_flame.txt     -- the same attribution as collapsed stacks;
//                             load it at https://speedscope.app or feed
//                             it to flamegraph.pl.
//   obs_demo.lattetrace    -- the request stream captured in the
//                             versioned on-disk format; replaying it
//                             reproduces this run bit for bit.
//
// Everything but the wall-clock host stamp is a deterministic function of
// the trace and the config: re-running this demo reproduces the trace,
// metrics, breakdown, flame and capture files byte for byte.

#include <cstdio>

#include "latte/latte.hpp"

int main() {
  using namespace latte;

  const ModelConfig small = ScaledDown(BertBase(), 6);
  const ModelInstance model(small, 2022);

  ServingEngineConfig cfg;
  cfg.former.max_batch = 8;
  cfg.former.timeout_s = 0.02;
  cfg.workers = 2;
  cfg.threads = 2;
  cfg.inference.mode = InferenceMode::kSparseInt8;
  cfg.inference.sparse.top_k = 30;
  cfg.cache.enabled = true;
  cfg.cache.key_policy = CacheKeyPolicy::kRequestId;
  cfg.trace.enabled = true;

  PoissonTraceConfig trace_cfg;
  trace_cfg.arrival_rate_rps = 120;
  trace_cfg.requests = 64;
  trace_cfg.seed = 7;
  auto trace = GeneratePoissonTrace(trace_cfg, Mrpc());
  // Give a slice of the stream shared content ids so the cache layer has
  // hits and coalesced followers to show in the trace.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i % 3 == 0) trace[i].id = i % 9;
  }

  ServingEngine engine(model, cfg);
  const ServingResult res = engine.Replay(trace);

  // Chrome trace.
  obs::JsonWriter trace_json;
  obs::WriteChromeTrace(*engine.tracer(), trace_json);
  trace_json.WriteFile("obs_demo_trace.json");

  // Metrics snapshot.
  obs::MetricsRegistry registry;
  obs::ExportServingReport(res.report(), "serve", registry);
  obs::ExportAdmissionStats(res.admission, "serve.admission", registry);
  obs::ExportCacheStats(res.cache, "serve.cache", registry);
  obs::ExportThreadPoolStats(engine.runner().pool(), "serve.pool", registry);
  obs::ExportTracerStats(*engine.tracer(), "serve.trace", registry);
  obs::JsonWriter metrics_json;
  registry.WriteJson(metrics_json);
  metrics_json.WriteFile("obs_demo_metrics.json");

  // Latency attribution: where each request's time went, stage by stage.
  const obs::Attribution attribution = obs::AttributeTracer(*engine.tracer());
  const obs::LatencyBreakdown breakdown = obs::ComputeBreakdown(attribution);
  obs::JsonWriter breakdown_json;
  obs::WriteBreakdownJson(breakdown, breakdown_json);
  breakdown_json.WriteFile("obs_demo_breakdown.json");

  // Flame rendering of the same attribution (collapsed-stack format).
  const std::string flame = obs::CollapsedStacks(attribution.requests);
  {
    std::FILE* f = std::fopen("obs_demo_flame.txt", "w");
    if (f != nullptr) {
      std::fwrite(flame.data(), 1, flame.size(), f);
      std::fclose(f);
    }
  }

  // Capture the request stream for later bit-exact replay.
  CaptureTrace(trace, "obs_demo.lattetrace");

  // Run manifest.
  obs::RunManifest manifest;
  manifest.name = "examples/obs_demo";
  manifest.seed = trace_cfg.seed;
  manifest.metrics = {{"p99_latency_s", res.report().p99_latency_s},
                      {"throughput_rps", res.report().throughput_rps},
                      {"cache_hit_rate", CacheHitRate(res.cache)}};
  obs::JsonWriter manifest_json;
  obs::WriteRunManifest(manifest, manifest_json);
  manifest_json.WriteFile("obs_demo_manifest.json");

  const auto merged = engine.tracer()->Merged();
  std::printf("served %zu requests in %zu batches (p99 %.4fs)\n",
              res.report().requests, res.report().batches,
              res.report().p99_latency_s);
  std::printf("cache: %zu hits, %zu coalesced of %zu lookups\n",
              res.cache.hits, res.cache.coalesced, res.cache.lookups);
  std::printf("trace: %zu events on %zu tracks (%llu dropped)\n",
              merged.size(), engine.tracer()->tracks().size(),
              static_cast<unsigned long long>(
                  engine.tracer()->total_dropped()));
  std::printf(
      "attribution: %zu requests, gap-free %s, tail dominated by %s\n",
      breakdown.requests, breakdown.gap_free ? "yes" : "NO",
      obs::StageName(breakdown.tail.dominant));
  if (!breakdown.critical_path.empty()) {
    std::printf("critical path: %s\n", breakdown.critical_path.c_str());
  }
  std::printf(
      "wrote obs_demo_trace.json, obs_demo_metrics.json, "
      "obs_demo_manifest.json,\n      obs_demo_breakdown.json, "
      "obs_demo_flame.txt, obs_demo.lattetrace\n");
  std::printf("open obs_demo_trace.json at https://ui.perfetto.dev\n");
  std::printf("open obs_demo_flame.txt at https://speedscope.app\n");
  return 0;
}
