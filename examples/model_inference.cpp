// Functional full-model inference across the four datapath corners:
// {float, int8} x {dense, sparse Top-k}, on a scaled-down BERT with real
// weights.  Shows that the FPGA datapath (int8 + sparse) tracks the fp32
// dense reference closely -- the functional half of the co-design story.
//
//   $ ./model_inference [n_tokens] [top_k]

#include <cstdio>
#include <cstdlib>

#include "latte/latte.hpp"

int main(int argc, char** argv) {
  using namespace latte;

  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 96;
  const std::size_t top_k =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 30;

  // A 1/6 BERT-base: 2 layers, hidden 128, head_dim 64 preserved.
  const ModelConfig model = ScaledDown(BertBase(), 6);
  const ModelInstance inst(model, /*seed=*/2022);
  Rng rng(7);
  const MatrixF x = MakeInputEmbedding(rng, n, model.encoder.hidden);

  std::printf("model %s: %zu layers, hidden %zu, %zu heads; input %zu "
              "tokens, Top-%zu\n\n",
              model.name.c_str(), model.layers, model.encoder.hidden,
              model.encoder.heads, n, top_k);

  InferenceConfig ref_cfg;
  ref_cfg.mode = InferenceMode::kDenseFloat;
  const MatrixF ref = inst.Forward(x, ref_cfg);

  TextTable table({"datapath", "cosine vs fp32 dense", "exact MACs/layer",
                   "LUT mults/layer"});
  const struct {
    const char* name;
    InferenceMode mode;
  } modes[] = {
      {"fp32 dense (reference)", InferenceMode::kDenseFloat},
      {"fp32 + sparse Top-k", InferenceMode::kSparseFloat},
      {"int8 dense", InferenceMode::kDenseInt8},
      {"int8 + sparse Top-k (FPGA datapath)", InferenceMode::kSparseInt8},
  };
  for (const auto& m : modes) {
    InferenceConfig cfg;
    cfg.mode = m.mode;
    cfg.sparse.top_k = top_k;
    std::vector<LayerRunStats> stats;
    const MatrixF y = inst.Forward(x, cfg, &stats);
    const double cos = MeanRowCosine(y, ref);
    table.AddRow({m.name, Fmt(cos, 4),
                  std::to_string(stats.empty() ? 0 : stats[0].exact_macs),
                  std::to_string(stats.empty() ? 0
                                               : stats[0].lut_multiplies)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("dense attention would need %zu exact MACs per layer; sparse "
              "Top-%zu runs the quadratic part on 1-bit LUT fabric "
              "instead.\n",
              model.encoder.heads * n * n * model.encoder.head_dim() * 2,
              top_k);
  return 0;
}
