// Design-space search demo: anneal over the unified DesignPoint space.
//
//   $ ./example_search_demo
//
// Three acts:
//   1. a DesignPoint round-trip -- build a deployment as one value,
//      validate it with named-field issues, serialize it to JSON and
//      parse it back bit-exact;
//   2. a short simulated-annealing run (two chains) over the menu-shaped
//      DesignSpace, scored by replaying a fixed Zipf trace through the
//      accounting-only cluster twin;
//   3. the winner reproduced from its own JSON record and re-evaluated --
//      same design, same score, which is what makes a recorded winner a
//      deployable artifact.

#include <cstdio>

#include "latte/latte.hpp"

int main() {
  using namespace latte;
  // Explicit: the metrics layer has its own (resource-plan) DesignPoint.
  using search::AnnealingConfig;
  using search::AnnealSearch;
  using search::BackendSlots;
  using search::CheckDesignPoint;
  using search::DesignEvaluator;
  using search::DesignPoint;
  using search::DesignPointFromJson;
  using search::DesignPointToJson;
  using search::DesignScore;
  using search::DesignSpace;
  using search::EvaluatorConfig;
  using search::ParetoEntry;
  using search::ReplicaDesign;
  using search::SearchResult;

  // ---- 1. the deployment as one value ----------------------------------
  DesignPoint dp;
  for (int i = 0; i < 2; ++i) {
    ReplicaDesign rd;
    rd.former.max_batch = 8;
    rd.former.timeout_s = 0.02;
    rd.top_k = 30;
    dp.replicas.push_back(rd);
  }
  dp.router.policy = RouterPolicy::kJoinShortestQueue;
  dp.cache_mode = ClusterCacheMode::kShared;
  dp.cache.enabled = true;

  std::printf("valid: %s\n", CheckDesignPoint(dp).empty() ? "yes" : "no");
  dp.replicas[1].workers = 0;  // break it on purpose
  for (const ConfigIssue& issue : CheckDesignPoint(dp)) {
    std::printf("issue: %s %s\n", issue.field.c_str(), issue.reason.c_str());
  }
  dp.replicas[1].workers = 1;

  const std::string json = DesignPointToJson(dp);
  const DesignPoint back = DesignPointFromJson(json);
  std::printf("round-trip exact: %s\n\n",
              DesignPointToJson(back) == json ? "yes" : "no");

  // ---- 2. a short annealing run ----------------------------------------
  const DesignEvaluator evaluator{EvaluatorConfig{}};
  const DesignSpace space;
  AnnealingConfig sa;
  sa.chains = 2;
  sa.steps = 40;
  sa.seed = 3;
  const SearchResult result = AnnealSearch(space, evaluator, sa);
  std::printf("evaluations: %zu, pareto points: %zu\n", result.evaluations,
              result.pareto.size());
  TextTable pareto({"replicas", "slots", "policy", "cache", "p99 (ms)",
                    "throughput (req/s)", "energy (J)"});
  for (const ParetoEntry& entry : result.pareto) {
    pareto.AddRow({std::to_string(entry.point.replicas.size()),
                   std::to_string(BackendSlots(entry.point)),
                   RouterPolicyName(entry.point.router.policy),
                   ClusterCacheModeName(entry.point.cache_mode),
                   Fmt(entry.score.p99_s * 1e3, 1),
                   Fmt(entry.score.throughput_rps, 1),
                   Fmt(entry.score.energy_j, 1)});
  }
  std::printf("%s\n", pareto.Render().c_str());

  // ---- 3. the winner reproduces from its record ------------------------
  const std::string record = DesignPointToJson(result.best);
  const DesignScore replayed =
      evaluator.Evaluate(DesignPointFromJson(record));
  std::printf("winner p99 %.1f ms, cost %.3g; replayed from JSON: %s\n",
              result.best_score.p99_s * 1e3, result.best_score.cost,
              replayed.cost == result.best_score.cost ? "identical"
                                                      : "DIFFERENT");
  return 0;
}
