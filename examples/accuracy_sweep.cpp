// Fig 6-style Top-k sweep on one model/dataset combination with full
// fidelity detail per k: recall, retained mass, output error, and the
// calibrated score.
//
//   $ ./accuracy_sweep [dataset: squad|rte|mrpc] [bits: 1|4]

#include <cstdio>
#include <cstring>

#include "latte/latte.hpp"

int main(int argc, char** argv) {
  using namespace latte;

  DatasetSpec spec = Rte();
  if (argc > 1) {
    if (std::strcmp(argv[1], "squad") == 0) spec = Squad();
    else if (std::strcmp(argv[1], "mrpc") == 0) spec = Mrpc();
  }
  const int bits = argc > 2 ? std::atoi(argv[2]) : 1;

  std::printf("Top-k sparse attention sweep: BERT-base on %s, %d-bit "
              "pre-selection\n\n", spec.name.c_str(), bits);

  const auto wl = WorkloadForDataset(spec);
  LengthSampler sampler(spec);

  TextTable table({"k", "recall", "retained mass", "output cosine",
                   "rel. error", "score (calibrated)", "drop"});
  for (std::size_t k : {5u, 10u, 20u, 30u, 40u, 50u, 80u}) {
    Rng rng(7 + k);
    double recall = 0, mass = 0, cosine = 0, err = 0;
    const int reps = 8;
    for (int r = 0; r < reps; ++r) {
      const auto p = GenerateAttentionProblem(rng, sampler.Sample(rng), wl);
      SparseAttentionConfig cfg;
      cfg.top_k = k;
      cfg.bits = bits;
      const auto rep = EvaluateFidelity(p, cfg);
      recall += rep.topk_recall;
      mass += rep.retained_mass;
      cosine += rep.output_cosine;
      err += rep.output_rel_error;
    }
    recall /= reps;
    mass /= reps;
    cosine /= reps;
    err /= reps;
    table.AddRow({std::to_string(k), Fmt(recall, 3), Fmt(mass, 3),
                  Fmt(cosine, 4), Fmt(err, 4),
                  Fmt(PredictedScore(spec, mass), 1),
                  Fmt(PredictedDrop(spec, mass), 2)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("baseline (dense) score: %.1f  [%s]\n", spec.baseline_score,
              spec.metric == Metric::kF1 ? "F1" : "accuracy");
  std::printf("\nthe raw fidelity columns are measured from the actual "
              "sparse-attention implementation; only the last two columns "
              "go through the calibrated accuracy map (see "
              "EXPERIMENTS.md).\n");
  return 0;
}
