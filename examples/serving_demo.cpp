// Serving demo: the functional ServingEngine end to end.
//
//   $ ./example_serving_demo
//
// Replays a Poisson request trace through the streaming serving engine:
// the shared length-aware batch former groups arrivals, the batched
// runtime executes each formed batch for real, and the virtual-time
// report is accounted with the accelerator service model -- so the same
// scenario simulated by the FPGA performance twin (SimulateServing)
// produces the identical report.  Also shows caller-pushed requests
// bouncing off a bounded admission queue (backpressure).

#include <cstdio>

#include "latte/latte.hpp"

int main() {
  using namespace latte;

  const auto dataset = Mrpc();
  const ModelConfig accel_model = BertBase();

  // The functional model is scaled down so the demo runs in seconds;
  // latency accounting still prices batches on full BERT-base.
  const ModelConfig small = ScaledDown(BertBase(), 6);
  const ModelInstance model(small, 2022);

  ServingConfig scenario;
  scenario.arrival_rate_rps = 80;
  scenario.former.max_batch = 8;
  scenario.former.timeout_s = 0.02;
  scenario.requests = 48;
  scenario.workers = 2;

  ServingEngineConfig cfg;
  cfg.former = ServingBatchFormer(scenario);
  cfg.workers = scenario.workers;
  cfg.threads = 2;
  cfg.inference.mode = InferenceMode::kSparseInt8;
  cfg.inference.sparse.top_k = 30;
  ServiceModelSpec spec;
  spec.base = ServiceModelSpec::Base::kAccelerator;
  spec.model = accel_model;
  spec.accel = scenario.accel;
  cfg.service = BuildServiceModel(spec);

  // 1. Replay the trace the simulator would generate for this scenario.
  const auto trace = GeneratePoissonTrace(ServingTrace(scenario), dataset);
  ServingEngine engine(model, cfg);
  const ServingResult res = engine.Replay(trace);
  const ServingReport& rep = res.report();

  std::printf("replayed %zu %s requests -> %zu batches (mean size %.1f)\n",
              rep.requests, dataset.name.c_str(), rep.batches,
              rep.mean_batch_size);
  std::printf("  p50 / p95 / p99 latency : %.1f / %.1f / %.1f ms\n",
              rep.p50_latency_s * 1e3, rep.p95_latency_s * 1e3,
              rep.p99_latency_s * 1e3);
  std::printf("  throughput              : %.1f req/s over %zu workers\n",
              rep.throughput_rps, scenario.workers);
  std::printf("  device busy fraction    : %.0f%%\n",
              100 * rep.device_busy_frac);
  std::printf("  functional execution    : %.1f ms wall, %zu outputs\n",
              res.wall_s * 1e3, res.outputs.size());

  // The performance twin on the same trace: same former, same service
  // model, same accounting -- the report matches field for field.
  const ServingReport sim = SimulateServing(accel_model, dataset, scenario);
  std::printf("  simulator agreement     : p99 %.4f ms vs %.4f ms\n\n",
              sim.p99_latency_s * 1e3, rep.p99_latency_s * 1e3);

  // 2. Caller-pushed requests against a bounded queue: a burst beyond the
  //    waiting room bounces instead of growing the tail.
  ServingEngineConfig bounded = cfg;
  bounded.queue_capacity = 6;
  ServingEngine gate(model, bounded);
  std::size_t bounced = 0;
  for (std::size_t i = 0; i < 24; ++i) {
    const TimedRequest burst{0.001 * static_cast<double>(i), 48 + 4 * (i % 5)};
    if (!gate.Push(burst)) ++bounced;
  }
  const ServingResult gated = gate.Drain();
  std::printf("burst of 24 pushed requests, queue capacity %zu:\n",
              bounded.queue_capacity);
  std::printf("  accepted %zu, bounced %zu (peak queue %zu)\n",
              gated.admission.accepted, bounced, gated.admission.peak_queue);
  return 0;
}
