// Reproduces the Fig 5 scenario: a batch of 5 sequences with lengths 140,
// 100, 82, 78, 72 streamed through the three coarse-grained encoder stages
// of two encoder layers, rendered as an ASCII Gantt chart.
//
//   $ ./scheduling_timeline
//
// Shows the "Saved" latency of the coarse pipeline vs serial execution and
// the per-stage utilization (the paper: "Each stage has almost 100%
// utilization, and there is no pipeline bubble").

#include <cstdio>

#include "latte/latte.hpp"

int main() {
  using namespace latte;

  // The paper's example batch, already sorted by decreasing length.
  const std::vector<std::size_t> lengths = {140, 100, 82, 78, 72};
  const std::size_t layers = 2;

  const auto model = BertBase();
  const auto ops =
      EncoderOps(model.encoder, AttentionMode::kSparseTopK, /*top_k=*/30);
  const double s_avg = 94.4;  // mean of the batch
  const auto stage_models =
      BuildStageTimings(GroupByStageHint(ops), AlveoU280Slr0(), s_avg);

  PipelineSimConfig cfg;
  cfg.layers = layers;
  const auto schedule = SimulatePipeline(lengths, stage_models, cfg);

  std::printf("Fig 5: length-aware coarse-grained dynamic pipeline\n");
  std::printf("batch: ");
  for (auto n : lengths) std::printf("%zu ", n);
  std::printf(" (sorted descending), %zu encoder layers\n\n", layers);

  std::printf("%s\n", RenderGantt(schedule, 3, 100).c_str());
  std::printf("(digits = sequence index, per the I1..I5 rows of Fig 5; "
              "each stage chains the next sequence back-to-back)\n\n");

  std::printf("makespan            : %.3f ms\n", schedule.makespan * 1e3);
  std::printf("serial (no overlap) : %.3f ms\n",
              schedule.SerialTime() * 1e3);
  std::printf("saved by pipelining : %.3f ms (%.1f%%)\n",
              schedule.Saved() * 1e3,
              100.0 * schedule.Saved() / schedule.SerialTime());
  const auto util = schedule.StageUtilization();
  std::printf("stage utilization   : MM|At-Sel %.1f%%  At-Comp %.1f%%  "
              "FdFwd %.1f%%\n",
              100 * util[0], 100 * util[1], 100 * util[2]);
  std::printf("bubble time         : %.4f ms\n",
              schedule.BubbleTime() * 1e3);

  // Show the state machine names driving each stage (Fig 2(b)).
  std::printf("\nstate machines: %s -> %s -> %s\n",
              WorkingStateName(StageId::kMmAtSel).c_str(),
              WorkingStateName(StageId::kAtComp).c_str(),
              WorkingStateName(StageId::kFdFwd).c_str());

  // Export the schedule for chrome://tracing / Perfetto.
  const char* trace_path = "fig5_schedule.json";
  if (WriteTextFile(trace_path, ToChromeTrace(schedule))) {
    std::printf("Chrome trace written to %s (open in chrome://tracing)\n",
                trace_path);
  }
  return 0;
}
