// Design-space explorer: Algorithm 1 stage allocation and the pipeline
// resource planner across DSP budgets and design-point sequence lengths.
//
//   $ ./design_space [model: base|large|distil]
//
// Shows how the coarse-grained stage partition and the per-stage DSP split
// react to the chip budget -- the co-design loop of Section 4.

#include <cstdio>
#include <cstring>

#include "latte/latte.hpp"

int main(int argc, char** argv) {
  using namespace latte;

  ModelConfig model = BertBase();
  if (argc > 1) {
    if (std::strcmp(argv[1], "large") == 0) model = BertLarge();
    else if (std::strcmp(argv[1], "distil") == 0) model = DistilBert();
  }

  const auto ops =
      EncoderOps(model.encoder, AttentionMode::kSparseTopK, /*top_k=*/30);
  const auto g = OpGraph::Chain(ops);

  std::printf("design-space exploration for %s (sparse Top-30 encoder)\n\n",
              model.name.c_str());

  // --- Algorithm 1 across budgets ---------------------------------------
  std::printf("Algorithm 1 stage allocation vs DSP budget (s_avg = 177):\n");
  for (double budget : {768.0, 1500.0, 3000.0, 6000.0, 12000.0}) {
    AllocatorConfig cfg;
    cfg.dsp_budget = budget;
    const auto res = AllocateStages(g, 177, cfg);
    std::printf("  budget %6.0f DSP -> %zu stages, %6.0f DSP lanes used |",
                budget, res.stages.size(), res.TotalDsp(g));
    for (const auto& stage : res.stages) {
      std::printf(" [");
      for (std::size_t i = 0; i < stage.ops.size(); ++i) {
        std::printf("%s%s", i ? " " : "",
                    g.node(stage.ops[i].op).spec.name.c_str());
      }
      std::printf("]");
    }
    std::printf("\n");
  }

  // --- planner across design-point lengths ------------------------------
  std::printf("\npipeline plan vs design-point sequence length (canonical "
              "3-stage partition, 3000 DSPs):\n");
  TextTable table({"s_avg", "stage-1 DSP", "stage-2 DSP", "stage-3 DSP",
                   "tokens/ms", "replication"});
  for (double s : {53.0, 68.0, 177.0, 512.0, 821.0}) {
    const auto alloc = CanonicalStages(g, s);
    const auto work = StageFlopsPerToken(g, alloc, s);
    PlannerConfig pcfg;
    const auto plan = PlanPipeline(work, pcfg);
    std::string repl;
    for (const auto& st : plan.stages) {
      if (!repl.empty()) repl += "/";
      repl += std::to_string(st.replication);
    }
    table.AddRow({Fmt(s, 0), Fmt(plan.stages[0].dsp, 0),
                  Fmt(plan.stages[1].dsp, 0), Fmt(plan.stages[2].dsp, 0),
                  Fmt(plan.TokensPerSecond(200e6) / 1e3, 1), repl});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("sparse attention keeps every stage O(n), so the DSP split "
              "is nearly length-independent -- the property that lets one "
              "static design serve all sequence lengths (Section 4.2).\n");
  return 0;
}
