// Reproduces Fig 6: accuracy of Top-k sparse attention (k = 50..10) against
// the dense baseline for 10 model x dataset combinations.
//
// Two-layer reproduction (DESIGN.md section 2): the *measured* quantity is
// the retained softmax mass of the actual 1-bit quantized Top-k selection
// on synthetic length-matched workloads; the calibrated accuracy model maps
// lost mass to a score drop anchored at the published dense baselines.
// Raw retained mass is printed alongside every score.

#include <cstdio>

#include "bench_common.hpp"

using namespace latte;

namespace {

struct Combo {
  ModelConfig model;
  DatasetSpec dataset;
  double baseline_offset;  // model-specific baseline vs the BERT-base anchor
};

std::vector<Combo> Fig6Combos() {
  return {
      {BertBase(), Squad(), 0.0},   {BertBase(), Rte(), 0.0},
      {BertBase(), Mrpc(), 0.0},    {BertLarge(), Squad(), +2.2},
      {DistilBert(), Squad(), -2.8}, {DistilBert(), Rte(), -4.5},
      {DistilBert(), Mrpc(), -1.8}, {Roberta(), Squad(), +2.6},
      {Roberta(), Rte(), +6.8},     {Roberta(), Mrpc(), +1.4},
  };
}

/// Mean retained mass over a batch of sampled-length problems.
double MeasureRetainedMass(const Combo& combo, std::size_t k,
                           std::uint64_t seed) {
  Rng rng(seed);
  LengthSampler sampler(combo.dataset);
  auto wl = WorkloadForDataset(combo.dataset, combo.model.encoder.head_dim());
  double acc = 0;
  const int reps = 6;
  for (int r = 0; r < reps; ++r) {
    const std::size_t n = sampler.Sample(rng);
    const auto p = GenerateAttentionProblem(rng, n, wl);
    SparseAttentionConfig cfg;
    cfg.top_k = k;
    cfg.bits = 1;  // Section 5.1: 1-bit sign quantization
    acc += EvaluateFidelity(p, cfg).retained_mass;
  }
  return acc / reps;
}

}  // namespace

int main() {
  std::printf("== Fig 6: accuracy of Top-k sparse attention ==\n");
  std::printf("(1-bit Q/K pre-selection, no fine-tuning; score = calibrated "
              "map of measured retained softmax mass)\n\n");

  const std::vector<std::size_t> ks = {50, 40, 30, 20, 10};

  TextTable table({"Model / dataset", "Baseline", "Top-50", "Top-40",
                   "Top-30", "Top-20", "Top-10", "mass@30"});
  double worst_drop_at_30 = 0;
  std::uint64_t seed = 10;
  for (const auto& combo : Fig6Combos()) {
    DatasetSpec spec = combo.dataset;
    spec.baseline_score += combo.baseline_offset;
    std::vector<std::string> row;
    row.push_back(combo.model.name + " " + spec.name);
    row.push_back(Fmt(spec.baseline_score, 1));
    double mass30 = 0;
    for (std::size_t k : ks) {
      const double mass = MeasureRetainedMass(combo, k, seed++);
      if (k == 30) {
        mass30 = mass;
        worst_drop_at_30 =
            std::max(worst_drop_at_30, PredictedDrop(spec, mass));
      }
      row.push_back(Fmt(PredictedScore(spec, mass), 1));
    }
    row.push_back(Fmt(mass30, 3));
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("worst Top-30 drop: %.2f%%  (paper: all combos < 2%% at "
              "Top-30; Top-10 degrades visibly)\n",
              worst_drop_at_30);

  // Attention-complexity reduction at Top-30 (paper: > 80% on average).
  // Weighted by dense compute over the sampled length distributions: long
  // sequences dominate both the cost and the savings.
  const auto cfg = BertBase().encoder;
  const auto dense = EncoderOps(cfg, AttentionMode::kDense);
  const auto sparse = EncoderOps(cfg, AttentionMode::kSparseTopK, 30);
  double dense_total = 0, sparse_total = 0;
  for (const auto& spec : DatasetZoo()) {
    Rng rng(99);
    LengthSampler sampler(spec);
    for (const std::size_t n : sampler.SampleMany(rng, 4000)) {
      dense_total += AttentionFlops(dense, static_cast<double>(n));
      sparse_total += AttentionFlops(sparse, static_cast<double>(n));
    }
  }
  std::printf("compute-weighted attention reduction at Top-30: %.1f%% "
              "(paper: > 80%% on average)\n",
              100.0 * (1.0 - sparse_total / dense_total));
  return 0;
}
