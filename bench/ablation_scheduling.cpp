// Ablation: which part of the length-aware pipeline buys what.
//
// Dimensions (DESIGN.md section 4): batch ordering (sorted vs FIFO vs
// padded), double buffering, batching policy (pad / micro-batch / sorted),
// and Algorithm 1 stage allocation vs the hand-drawn Fig 2(a) partition.

#include <cstdio>
#include <numeric>

#include "bench_common.hpp"

using namespace latte;
using namespace latte::bench;

namespace {

ScheduleResult Simulate(const ModelConfig& model,
                        const std::vector<std::size_t>& order,
                        bool double_buffer) {
  const auto ops =
      EncoderOps(model.encoder, AttentionMode::kSparseTopK, 30);
  const double s_avg =
      static_cast<double>(std::accumulate(order.begin(), order.end(),
                                          std::size_t{0})) /
      static_cast<double>(order.size());
  const auto models =
      BuildStageTimings(GroupByStageHint(ops), AlveoU280Slr0(), s_avg);
  PipelineSimConfig cfg;
  cfg.layers = model.layers;
  cfg.double_buffer = double_buffer;
  return SimulatePipeline(order, models, cfg);
}

double Makespan(const ModelConfig& model,
                const std::vector<std::size_t>& order, bool double_buffer) {
  return Simulate(model, order, double_buffer).makespan;
}

std::string UtilString(const ScheduleResult& res) {
  std::string out;
  for (double u : res.StageUtilization()) {
    if (!out.empty()) out += "/";
    out += Fmt(100 * u, 0) + "%";
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== Ablation: scheduling & pipelining design choices ==\n\n");
  const auto model = BertBase();
  const auto spec = Squad();
  const auto lens = SampleBatch(spec, 16, 42);

  // --- batch ordering ------------------------------------------------
  const auto sorted = MakeBatch(lens, BatchPolicy::kSortedDescending);
  const auto padded = MakeBatch(lens, BatchPolicy::kPadToMax);
  const auto micro = MakeBatch(lens, BatchPolicy::kMicroBatch, 4);

  const auto r_sorted = Simulate(model, sorted.effective_lengths, true);
  const auto r_fifo = Simulate(model, lens, true);  // arrival order
  const auto r_micro = Simulate(model, micro.effective_lengths, true);
  const auto r_padded = Simulate(model, padded.effective_lengths, true);
  const double t_sorted = r_sorted.makespan;

  TextTable order({"batch policy", "makespan (ms)", "vs sorted",
                   "padding overhead", "stage utilization"});
  order.AddRow({"sorted descending (ours)", Fmt(t_sorted * 1e3, 3),
                FmtX(1.0), Fmt(sorted.PaddingOverhead(), 2),
                UtilString(r_sorted)});
  order.AddRow({"FIFO arrival order", Fmt(r_fifo.makespan * 1e3, 3),
                FmtX(r_fifo.makespan / t_sorted), Fmt(1.0, 2),
                UtilString(r_fifo)});
  order.AddRow({"micro-batch of 4 (TurboTransformer-style)",
                Fmt(r_micro.makespan * 1e3, 3),
                FmtX(r_micro.makespan / t_sorted),
                Fmt(micro.PaddingOverhead(), 2), UtilString(r_micro)});
  order.AddRow({"pad to batch max (TensorRT-style)",
                Fmt(r_padded.makespan * 1e3, 3),
                FmtX(r_padded.makespan / t_sorted),
                Fmt(padded.PaddingOverhead(), 2), UtilString(r_padded)});
  std::printf("%s\n", order.Render().c_str());
  std::printf("note: with ping-pong buffers and a weight-balanced stage "
              "split, throughput is order-invariant in the simulator; the "
              "sort shows up as ~100%% stage utilization (the paper's "
              "claim) and protects the single-buffered design below.\n\n");

  // --- double buffering ------------------------------------------------
  const double t_single = Makespan(model, sorted.effective_lengths, false);
  std::printf("double buffers between stages: %.3f ms -> %.3f ms without "
              "(%.2fx slower)\n",
              t_sorted * 1e3, t_single * 1e3, t_single / t_sorted);
  // Single-buffered designs are order-sensitive: shuffled input stalls.
  const double t_single_fifo = Makespan(model, lens, false);
  std::printf("single-buffered + FIFO order: %.3f ms (%.2fx vs sorted "
              "single-buffered)\n\n",
              t_single_fifo * 1e3, t_single_fifo / t_single);

  // --- Algorithm 1 vs canonical Fig 2(a) partition ---------------------
  const auto ops =
      EncoderOps(model.encoder, AttentionMode::kSparseTopK, 30);
  const auto g = OpGraph::Chain(ops);
  const auto algo = AllocateStages(g, spec.avg_len);
  const auto canon = CanonicalStages(g, spec.avg_len);

  auto describe = [&](const char* name, const AllocationResult& alloc) {
    const auto work = StageFlopsPerToken(g, alloc, spec.avg_len);
    const auto plan = PlanPipeline(work);
    std::printf("%-22s stages=%zu  pipeline rate=%.0f tokens/ms  "
                "balance=%.2f\n",
                name, alloc.stages.size(),
                plan.TokensPerSecond(200e6) / 1e3,
                plan.BalanceRatio(200e6));
    for (std::size_t k = 0; k < alloc.stages.size(); ++k) {
      std::printf("    stage %zu:", k + 1);
      for (const auto& a : alloc.stages[k].ops) {
        std::printf(" %s", g.node(a.op).spec.name.c_str());
      }
      std::printf("\n");
    }
  };
  describe("Algorithm 1", algo);
  describe("canonical Fig 2(a)", canon);

  // --- Eq. 1 priorities -------------------------------------------------
  const auto prio = g.Priorities(spec.avg_len);
  std::printf("\nEq. 1 priorities at s_avg=%.0f (GFLOP):\n", spec.avg_len);
  for (std::size_t v = 0; v < g.size(); ++v) {
    std::printf("  %-10s P=%8.2f\n", g.node(v).spec.name.c_str(),
                prio[v] / 1e9);
  }
  return 0;
}
