// Kernel-level GFLOP/s benchmarks: the tiled/packed GEMM library versus
// the seed's scalar triple loop, across the paper's encoder shapes
// (BERT-base: hidden 768, FFN 3072, head_dim 64; MRPC/SQuAD sequence
// lengths).  Single thread, deterministic inputs.  Emits machine-readable
// JSON (BENCH_kernels.json, or argv[1]) for the CI perf-regression gate;
// the dimensionless speedups are what the gate compares against
// bench/baselines/, since absolute GFLOP/s move with the host.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/json_writer.hpp"
#include "latte/latte.hpp"

namespace latte {
namespace {

using Clock = std::chrono::steady_clock;

volatile float g_sink = 0;  // keeps results alive past the optimizer

// The seed's scalar A*B^T loop (dot-product orientation, serial
// accumulation), kept here as the baseline MatMulBT shed when it moved
// onto the tiled kernel.
MatrixF ScalarMatMulBT(const MatrixF& a, const MatrixF& b) {
  MatrixF c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto ai = a.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      auto bj = b.row(j);
      float acc = 0.f;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += ai[k] * bj[k];
      c(i, j) = acc;
    }
  }
  return c;
}

struct ShapeResult {
  std::string op;     // "matmul" or "matmul_bt"
  std::string label;  // which encoder op this shape is
  std::size_t m = 0, k = 0, n = 0;
  double scalar_gflops = 0;
  double tiled_gflops = 0;
  double speedup = 0;
};

// Times `fn` (which must consume its result into g_sink) until at least
// `min_s` seconds and 3 repetitions have elapsed; returns seconds/call.
template <typename Fn>
double TimePerCall(Fn&& fn, double min_s = 0.25) {
  fn();  // warm-up: page in, grow scratch to steady state
  int reps = 0;
  const auto t0 = Clock::now();
  double elapsed = 0;
  do {
    fn();
    ++reps;
    elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  } while (elapsed < min_s || reps < 3);
  return elapsed / reps;
}

ShapeResult BenchGemm(const std::string& label, std::size_t m, std::size_t k,
                      std::size_t n, Rng& rng) {
  const auto a = rng.NormalMatrix(m, k, 0.0, 1.0);
  const auto b = rng.NormalMatrix(k, n, 0.0, 1.0);
  const double flop = 2.0 * m * k * n;

  // Scalar baseline: the seed's i-k-j loop (MatMulSkipZeros is that exact
  // loop; on dense random inputs the zero test never fires).
  const double scalar_s =
      TimePerCall([&] { g_sink = g_sink + MatMulSkipZeros(a, b)(0, 0); });

  GemmScratch scratch;
  MatrixF c;
  const double tiled_s = TimePerCall([&] {
    MatMulInto(a, b, c, scratch);
    g_sink = g_sink + c(0, 0);
  });

  ShapeResult r;
  r.op = "matmul";
  r.label = label;
  r.m = m;
  r.k = k;
  r.n = n;
  r.scalar_gflops = flop / scalar_s * 1e-9;
  r.tiled_gflops = flop / tiled_s * 1e-9;
  r.speedup = scalar_s / tiled_s;
  return r;
}

ShapeResult BenchGemmBT(const std::string& label, std::size_t m,
                        std::size_t rows_b, std::size_t d, Rng& rng) {
  const auto a = rng.NormalMatrix(m, d, 0.0, 1.0);
  const auto b = rng.NormalMatrix(rows_b, d, 0.0, 1.0);
  const double flop = 2.0 * m * d * rows_b;

  const double scalar_s =
      TimePerCall([&] { g_sink = g_sink + ScalarMatMulBT(a, b)(0, 0); });

  GemmScratch scratch;
  MatrixF c;
  const double tiled_s = TimePerCall([&] {
    MatMulBTInto(a, b, c, scratch);
    g_sink = g_sink + c(0, 0);
  });

  ShapeResult r;
  r.op = "matmul_bt";
  r.label = label;
  r.m = m;
  r.k = d;
  r.n = rows_b;
  r.scalar_gflops = flop / scalar_s * 1e-9;
  r.tiled_gflops = flop / tiled_s * 1e-9;
  r.speedup = scalar_s / tiled_s;
  return r;
}

}  // namespace
}  // namespace latte

int main(int argc, char** argv) {
  using namespace latte;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  Rng rng(2022);

  // The encoder's GEMM population for BERT-base shapes: QKV/output
  // projections at MRPC- and SQuAD-like sequence lengths, both FFN
  // matmuls, and the per-head score matmul Q K^T.
  std::vector<ShapeResult> results;
  results.push_back(BenchGemm("qkv_proj_seq64", 64, 768, 768, rng));
  results.push_back(BenchGemm("qkv_proj_seq128", 128, 768, 768, rng));
  results.push_back(BenchGemm("ffn1_seq128", 128, 768, 3072, rng));
  results.push_back(BenchGemm("ffn2_seq128", 128, 3072, 768, rng));
  results.push_back(BenchGemmBT("scores_seq128_d64", 128, 128, 64, rng));
  results.push_back(BenchGemmBT("scores_seq384_d64", 384, 384, 64, rng));

  std::printf("== kernel GFLOP/s, arch=%s, single thread ==\n",
              KernelArchName());
  double min_speedup = 0, log_sum = 0;
  for (const auto& r : results) {
    std::printf("  %-18s %4zux%4zux%4zu  scalar %7.2f  tiled %7.2f  %5.2fx\n",
                r.label.c_str(), r.m, r.k, r.n, r.scalar_gflops,
                r.tiled_gflops, r.speedup);
    min_speedup =
        min_speedup == 0 ? r.speedup : std::min(min_speedup, r.speedup);
    log_sum += std::log(r.speedup);
  }
  const double geomean = std::exp(log_sum / results.size());
  std::printf("  min speedup %.2fx, geomean %.2fx\n", min_speedup, geomean);

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("kernels");
  json.Key("schema_version").Value(std::size_t{1});
  StampHost(json);
  json.Key("arch").Value(KernelArchName());
  json.Key("single_thread").Value(true);
  json.Key("shapes");
  json.BeginArray();
  for (const auto& r : results) {
    json.BeginObject();
    json.Key("op").Value(r.op);
    json.Key("label").Value(r.label);
    json.Key("m").Value(r.m);
    json.Key("k").Value(r.k);
    json.Key("n").Value(r.n);
    json.Key("scalar_gflops").Value(r.scalar_gflops);
    json.Key("tiled_gflops").Value(r.tiled_gflops);
    json.Key("speedup").Value(r.speedup);
    json.EndObject();
  }
  json.EndArray();
  json.Key("min_speedup").Value(min_speedup);
  json.Key("geomean_speedup").Value(geomean);
  json.EndObject();
  if (!json.WriteFile(out_path)) return 1;
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
