// Ablation: sparse-attention design choices -- Top-k value, pre-selection
// bit width (1 vs 4), and the fused-kernel unroll factor.

#include <cstdio>

#include "bench_common.hpp"

using namespace latte;
using namespace latte::bench;

int main() {
  std::printf("== Ablation: sparse attention design choices ==\n\n");
  const auto spec = Squad();
  const auto wl = WorkloadForDataset(spec);

  // --- k sweep x bit width: fidelity + FPGA latency ---------------------
  TextTable table({"top-k", "bits", "recall", "retained mass",
                   "output cosine", "attn FLOP reduction",
                   "FPGA latency (ms)"});
  const auto model = BertBase();
  const auto lens = SampleBatch(spec, 16, 42);
  const auto dense_ops = EncoderOps(model.encoder, AttentionMode::kDense);

  for (std::size_t k : {10u, 20u, 30u, 40u, 50u}) {
    for (int bits : {1, 4}) {
      Rng rng(500 + k + static_cast<std::uint64_t>(bits));
      LengthSampler sampler(spec);
      double recall = 0, mass = 0, cosine = 0;
      const int reps = 5;
      for (int r = 0; r < reps; ++r) {
        const auto p =
            GenerateAttentionProblem(rng, sampler.Sample(rng), wl);
        SparseAttentionConfig cfg;
        cfg.top_k = k;
        cfg.bits = bits;
        const auto rep = EvaluateFidelity(p, cfg);
        recall += rep.topk_recall;
        mass += rep.retained_mass;
        cosine += rep.output_cosine;
      }
      const auto sparse_ops =
          EncoderOps(model.encoder, AttentionMode::kSparseTopK, k);
      const double red = 1.0 - AttentionFlops(sparse_ops, spec.avg_len) /
                                   AttentionFlops(dense_ops, spec.avg_len);
      AcceleratorConfig acfg;
      acfg.top_k = k;
      const auto rep = RunAccelerator(model, lens, acfg);
      table.AddRow({std::to_string(k), std::to_string(bits),
                    Fmt(recall / reps, 3), Fmt(mass / reps, 3),
                    Fmt(cosine / reps, 4), Fmt(100 * red, 1) + "%",
                    Fmt(rep.latency_s * 1e3, 3)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(bits only affect selection quality; the exact computation "
              "runs at full precision either way)\n\n");

  // --- fused kernel unroll factor p (Fig 4) -----------------------------
  std::printf("fused-kernel cycle model, d=64, 30 candidates:\n");
  Rng rng(9);
  const auto q = rng.NormalMatrix(1, 64, 0.0, 1.0);
  const auto ks = rng.NormalMatrix(30, 64, 0.0, 1.0);
  for (unsigned p : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    FusedKernelConfig fk;
    fk.unroll = p;
    const auto res = FusedScoreKernel(q.row(0), ks, fk);
    std::printf("  UNROLL p=%2u -> %4zu cycles per query row (II=1)\n", p,
                res.cycles);
  }
  std::printf("\nloop fusion avoids materializing the score row: scale, "
              "mask and exp execute in the last reduction iteration "
              "(Fig 4), so Stage 2.2 makes a single pass over Ks.\n");
  return 0;
}
