// Reproduces Fig 7(a): end-to-end cross-platform throughput comparison.
//
// Five designs on four model/task combos (batch 16, Top-30): CPU Xeon Gold
// 5218, Jetson TX2, Quadro RTX 6000 (all dense, padded to the batch max),
// FPGA baseline (padded + dense attention), and the FPGA length-aware
// sparse design.  Speedups are reported relative to the CPU, matching the
// figure's normalization; the paper's geomean speedups of the length-aware
// design are 80.2x (CPU), 41.3x (TX2), 2.6x (RTX 6000), 3.1x (FPGA
// baseline).

#include <cstdio>

#include "bench_common.hpp"

using namespace latte;
using namespace latte::bench;

int main() {
  std::printf("== Fig 7(a): end-to-end cross-platform throughput ==\n");
  std::printf("(batch 16, Top-30 sparse attention, speedup normalized to "
              "CPU)\n\n");

  TextTable table({"Model / task", "CPU", "Jetson TX2", "RTX 6000",
                   "FPGA baseline", "FPGA length-aware"});
  std::vector<double> g_cpu, g_tx2, g_gpu, g_base;
  std::uint64_t seed = 42;
  for (const auto& combo : Fig7Combos()) {
    const auto lens = SampleBatch(combo.dataset, 16, seed++);
    const auto lat = MeasureAll(combo.model, combo.dataset, lens);
    table.AddRow({combo.model.name + " " + combo.dataset.name, FmtX(1.0),
                  FmtX(lat.cpu / lat.tx2), FmtX(lat.cpu / lat.gpu),
                  FmtX(lat.cpu / lat.fpga_base),
                  FmtX(lat.cpu / lat.fpga_aware)});
    g_cpu.push_back(lat.cpu / lat.fpga_aware);
    g_tx2.push_back(lat.tx2 / lat.fpga_aware);
    g_gpu.push_back(lat.gpu / lat.fpga_aware);
    g_base.push_back(lat.fpga_base / lat.fpga_aware);
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("geomean speedup of FPGA length-aware vs:\n");
  std::printf("  CPU           : %6.1fx   (paper: 80.2x)\n", GeoMean(g_cpu));
  std::printf("  Jetson TX2    : %6.1fx   (paper: 41.3x)\n", GeoMean(g_tx2));
  std::printf("  RTX 6000      : %6.1fx   (paper:  2.6x)\n", GeoMean(g_gpu));
  std::printf("  FPGA baseline : %6.1fx   (paper:  3.1x)\n", GeoMean(g_base));
  return 0;
}
