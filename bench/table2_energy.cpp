// Reproduces Table 2: throughput (GOPS), energy efficiency (GOP/J) and
// average accuracy drop across works.
//
// Our rows are measured on the simulator (equivalent throughput = dense
// padded workload / measured latency, how the paper's 3.6 TFLOPS exceeds
// the 1.2 TOPS DSP roof); comparison rows are the cited literature
// constants, marked "cited".

#include <cstdio>

#include "bench_common.hpp"

using namespace latte;
using namespace latte::bench;

int main() {
  std::printf("== Table 2: energy efficiency & throughput ==\n\n");

  const auto model = BertBase();
  const auto spec = Squad();
  const auto lens = SampleBatch(spec, 16, 42);

  // Dense padded workload (the task every platform is asked to do).
  const auto padded = MakeBatch(lens, BatchPolicy::kPadToMax);
  double padded_flops = 0;
  for (auto n : padded.effective_lengths) {
    padded_flops += model.TotalModelFlops(static_cast<double>(n),
                                          AttentionMode::kDense);
  }

  // Our FPGA (length-aware sparse).
  const auto ours = RunAccelerator(model, lens, AcceleratorConfig{});
  const double our_gops = padded_flops / ours.latency_s / 1e9;
  const double our_watts = FpgaPowerWatts(AlveoU280Slr0(), 1.0);
  const double our_eff = EnergyEfficiency(our_gops, our_watts);

  // Measured GPU row.
  const auto gpu = RunPlatform(QuadroRtx6000(), model, lens);
  const double gpu_gops = padded_flops / gpu.latency_s / 1e9;
  const double gpu_eff = EnergyEfficiency(gpu_gops, QuadroRtx6000().power_w);

  // Average measured accuracy drop at Top-30 over the three datasets
  // (matches the Fig 6 machinery).
  double drop = 0;
  int cnt = 0;
  std::uint64_t seed = 7;
  for (const auto& ds : DatasetZoo()) {
    Rng rng(seed++);
    LengthSampler sampler(ds);
    const auto wl = WorkloadForDataset(ds);
    double mass = 0;
    for (int r = 0; r < 6; ++r) {
      const auto p = GenerateAttentionProblem(rng, sampler.Sample(rng), wl);
      SparseAttentionConfig cfg;
      cfg.top_k = 30;
      mass += EvaluateFidelity(p, cfg).retained_mass;
    }
    drop += PredictedDrop(ds, mass / 6);
    ++cnt;
  }
  drop /= cnt;

  TextTable table({"Work / platform", "Throughput (GOPS)",
                   "Energy eff. (GOP/J)", "Accuracy drop (%)", "source"});
  table.AddRow({"GPU RTX 6000 (dense)", Fmt(gpu_gops, 0), Fmt(gpu_eff, 1),
                "0.0", "measured (model)"});
  for (const auto& row : CitedTable2Rows()) {
    table.AddRow({row.work, Fmt(row.gops, 0),
                  row.gop_per_j > 0 ? Fmt(row.gop_per_j, 0) : "N/A",
                  Fmt(row.accuracy_drop_pct, 1), "cited"});
  }
  table.AddRow({"Ours FPGA (U280 SLR0)", Fmt(our_gops, 0), Fmt(our_eff, 1),
                Fmt(drop, 1), "measured (sim)"});
  std::printf("%s\n", table.Render().c_str());

  std::printf("paper reference row: Ours FPGA 3600 GOPS, 102 GOP/J, 1.8%% "
              "drop\n");
  const double et_eff = CitedTable2Rows()[0].gop_per_j;  // E.T. on V100
  std::printf("efficiency vs E.T. CUBLAS-optimized GPU [18]: %.1fx "
              "(paper: >4x)\n", our_eff / et_eff);
  std::printf("efficiency vs dense RTX 6000 baseline: %.1fx\n",
              our_eff / gpu_eff);
  std::printf("FPGA power model: %.1f W at full DSP utilization\n",
              our_watts);
  std::printf("equivalent-throughput note: %.0f GOPS > 1200 GOPS roof "
              "because skipped padding/attention work counts as done\n",
              our_gops);
  return 0;
}
