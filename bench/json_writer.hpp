#pragma once
// Thin forwarding header: the streaming JSON writer was promoted to
// src/obs/json_writer.hpp so library exporters (Chrome traces, metrics
// snapshots, run manifests) and the BENCH_*.json emitters share one
// implementation.  Bench binaries keep including "json_writer.hpp" and
// using latte::bench::JsonWriter unchanged.

#include "obs/json_writer.hpp"

namespace latte::bench {

using obs::CompilerId;
using obs::JsonWriter;
using obs::StampHost;

}  // namespace latte::bench
