// Ablation: the accuracy/throughput design space (Figs 6 + 7 jointly).
// Runs the automated design-space explorer and prints every point plus the
// Pareto front and the chosen operating point under the paper's < 2%
// accuracy budget -- which should land at Top-30 / 1-bit, the paper's
// "sweet point" (Section 5.2).

#include <cstdio>

#include "bench_common.hpp"
#include "metrics/design_explorer.hpp"

using namespace latte;

int main() {
  std::printf("== Ablation: accuracy/throughput Pareto exploration ==\n\n");

  for (const auto& dataset : {Squad(), Rte()}) {
    ExplorerConfig cfg;
    cfg.k_candidates = {10, 20, 30, 40, 50};
    cfg.bit_candidates = {1, 4};
    cfg.max_drop_pct = 2.0;
    const auto res = ExploreDesign(BertBase(), dataset, cfg);

    std::printf("BERT-base on %s (batch 16, drop budget 2%%):\n",
                dataset.name.c_str());
    TextTable table({"k", "bits", "seq/s", "retained mass",
                     "predicted drop", "feasible", "pareto"});
    const auto front = res.ParetoFront();
    auto on_front = [&](const DesignPoint& p) {
      for (const auto& f : front) {
        if (f.top_k == p.top_k && f.bits == p.bits) return true;
      }
      return false;
    };
    for (const auto& p : res.points) {
      table.AddRow({std::to_string(p.top_k), std::to_string(p.bits),
                    Fmt(p.sequences_per_s, 1), Fmt(p.retained_mass, 3),
                    Fmt(p.predicted_drop_pct, 2) + "%",
                    p.feasible ? "yes" : "no", on_front(p) ? "*" : ""});
    }
    std::printf("%s", table.Render().c_str());
    if (res.found_feasible) {
      std::printf("chosen operating point: Top-%zu, %d-bit (%.1f seq/s, "
                  "%.2f%% drop)  [paper sweet point: Top-30, 1-bit]\n\n",
                  res.best().top_k, res.best().bits,
                  res.best().sequences_per_s,
                  res.best().predicted_drop_pct);
    }
  }
  return 0;
}
