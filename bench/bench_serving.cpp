// Serving engine benchmark: sweeps arrival rate x batch-forming policy on
// the functional ServingEngine and emits machine-readable JSON
// (BENCH_serving.json, or argv[1]) for the CI perf-smoke job.
//
// Each cell replays the same Poisson trace through the engine: batches are
// formed by the shared length-aware former, executed for real on the
// batched runtime (scaled-down BERT so the sweep stays fast), and
// accounted in virtual time with the accelerator service model -- so the
// virtual metrics are deterministic run to run (perf regressions show in
// `wall_s`, modeling regressions in the latency/throughput fields).

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "obs/json_writer.hpp"

namespace latte {
namespace {

struct PolicyPoint {
  const char* name;
  BatchFormerConfig former;
};

std::vector<PolicyPoint> Policies() {
  BatchFormerConfig fifo;
  fifo.max_batch = 16;
  fifo.timeout_s = 0.02;
  BatchFormerConfig sorted = fifo;
  sorted.sort_by_length = true;
  BatchFormerConfig budget = sorted;
  budget.max_tokens = 192;
  return {{"fifo", fifo}, {"sorted", sorted}, {"sorted+budget", budget}};
}

}  // namespace
}  // namespace latte

int main(int argc, char** argv) {
  using namespace latte;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serving.json";

  const auto dataset = Mrpc();
  const ModelConfig accel_model = BertBase();
  const ModelConfig func_model = ScaledDown(BertBase(), 6);
  const ModelInstance model(func_model, 2022);

  const std::size_t requests = 64;
  const std::size_t workers = 2;

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("serving");
  json.Key("schema_version").Value(std::size_t{1});
  StampHost(json);
  json.Key("dataset").Value(dataset.name);
  json.Key("accel_model").Value(accel_model.name);
  json.Key("functional_model").Value(func_model.name);
  json.Key("requests").Value(requests);
  json.Key("workers").Value(workers);
  json.Key("results");
  json.BeginArray();

  TextTable table({"arrival (req/s)", "policy", "batches", "p50 (ms)",
                   "p95 (ms)", "p99 (ms)", "throughput (req/s)", "busy",
                   "exec wall (ms)"});
  for (double rate : {30.0, 90.0, 180.0}) {
    for (const auto& policy : Policies()) {
      PoissonTraceConfig trace_cfg;
      trace_cfg.arrival_rate_rps = rate;
      trace_cfg.requests = requests;
      trace_cfg.seed = 7;
      const auto trace = GeneratePoissonTrace(trace_cfg, dataset);

      ServingEngineConfig cfg;
      cfg.former = policy.former;
      cfg.workers = workers;
      cfg.threads = 2;
      cfg.inference.mode = InferenceMode::kSparseInt8;
      cfg.inference.sparse.top_k = 30;
      // The device prices each batch in dispatch order: sortedness comes
      // from the former under test, not from the device model.
      ServiceModelSpec spec;
      spec.base = ServiceModelSpec::Base::kAccelerator;
      spec.model = accel_model;
      spec.accel.sort_batch = false;
      cfg.service = BuildServiceModel(spec);

      ServingEngine engine(model, cfg);
      const ServingResult res = engine.Replay(trace);
      const ServingReport& rep = res.report();

      json.BeginObject();
      json.Key("arrival_rps").Value(rate);
      json.Key("policy").Value(policy.name);
      json.Key("requests").Value(rep.requests);
      json.Key("batches").Value(rep.batches);
      json.Key("mean_batch").Value(rep.mean_batch_size);
      json.Key("mean_ms").Value(rep.mean_latency_s * 1e3);
      json.Key("p50_ms").Value(rep.p50_latency_s * 1e3);
      json.Key("p95_ms").Value(rep.p95_latency_s * 1e3);
      json.Key("p99_ms").Value(rep.p99_latency_s * 1e3);
      json.Key("throughput_rps").Value(rep.throughput_rps);
      json.Key("busy_frac").Value(rep.device_busy_frac);
      json.Key("accepted").Value(res.admission.accepted);
      json.Key("rejected").Value(res.admission.rejected);
      json.Key("peak_queue").Value(res.admission.peak_queue);
      json.Key("exec_wall_s").Value(res.wall_s);
      json.EndObject();

      table.AddRow({Fmt(rate, 0), policy.name, std::to_string(rep.batches),
                    Fmt(rep.p50_latency_s * 1e3, 1),
                    Fmt(rep.p95_latency_s * 1e3, 1),
                    Fmt(rep.p99_latency_s * 1e3, 1),
                    Fmt(rep.throughput_rps, 1),
                    Fmt(100 * rep.device_busy_frac, 0) + "%",
                    Fmt(res.wall_s * 1e3, 1)});
    }
  }
  json.EndArray();
  json.EndObject();

  std::printf("== ServingEngine sweep: arrival rate x batch policy ==\n\n");
  std::printf("%s\n", table.Render().c_str());
  if (!json.WriteFile(out_path)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
