#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json trajectory.

Compares the current bench outputs (BENCH_kernels.json, BENCH_runtime.json,
BENCH_serving.json, BENCH_cluster.json, BENCH_cache.json,
BENCH_shard.json, BENCH_search.json, BENCH_adaptive.json,
BENCH_obs.json, plus the BREAKDOWN_obs.json latency-attribution
artifact) against the
recorded baselines in
bench/baselines/ and
fails (exit 1) with a delta table when a gated metric regresses beyond the
tolerance (default +-25%).  Each bench registers its compare function with
the ``@bench_compare`` decorator; the gating loop and --update both walk
that registry.

``--update`` re-records the baselines instead of gating: every current
BENCH_*.json is copied over its counterpart in the baselines directory.
Use it from a fresh local run in the same PR that justifies the shift.

Gated by default are the metrics that are stable across host machines:

- dimensionless ratios (kernel speedups over the scalar reference, the
  workspace-reuse speedup), checked against ``baseline * (1 - tolerance)``
  -- improvements never fail;
- deterministic counts (serving requests/batches/accepted/rejected per
  rate x policy cell, cluster routing counts per rate x replicas x policy
  cell, cache hit/miss/coalesce/eviction counts per population x skew x
  eviction cell), checked exactly: the batch former, router and cache are
  trace-driven, so any drift is a policy change, not noise;
- the cluster headline bit (length-bucketed routing beats round-robin on
  batch density or p99 in at least one cell), the cache headline bit
  (cached beats uncached on p99 and throughput in every cell with >= 20%
  duplicates) and the shard headline bit (tensor-parallel sharding beats
  replication on p99 for at least one long-sequence cell), checked
  exactly.

Absolute measurements (GFLOP/s, milliseconds, tokens/s) and thread-scaling
factors vary with the host that recorded the baseline, so they are
reported in the table but only enforced with --strict (useful when
comparing runs from the same machine).

The table is printed to stdout and, when $GITHUB_STEP_SUMMARY is set,
appended there as Markdown so every CI run shows its perf trajectory.
"""

import argparse
import json
import os
import shutil
import sys

OK, FAIL, INFO = "ok", "FAIL", "info"

# Per-bench compare dispatch: (filename, compare_fn) pairs in registration
# order.  Registering a compare function against its BENCH_*.json file is
# all it takes to add a bench to the gate and to --update's re-record set
# -- no if/elif arm to extend.
BENCHES = []


def bench_compare(filename):
    """Decorator: register ``fn`` as the gate for ``filename``."""
    def register(fn):
        BENCHES.append((filename, fn))
        return fn
    return register


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as e:
        # A truncated or hand-mangled file: name it instead of dumping a
        # stack trace (missing files stay None so callers can phrase the
        # "did the bench run?" hint themselves).
        print("error: %s is not valid JSON (%s)" % (path, e),
              file=sys.stderr)
        sys.exit(2)


class Gate:
    def __init__(self, tolerance, strict):
        self.tolerance = tolerance
        self.strict = strict
        self.rows = []  # (bench, metric, baseline, current, delta, mode, status)
        self.notes = []  # (bench, line): attribution strings under the table
        self.failed = False

    def _delta(self, base, cur):
        if not isinstance(base, (int, float)) or not isinstance(cur,
                                                                (int, float)):
            return None  # exact-gated strings (policy names etc.)
        if base == 0:
            return 0.0 if cur == 0 else float("inf")
        return (cur - base) / abs(base)

    def check(self, bench, metric, base, cur, mode):
        """mode: 'higher' | 'lower' | 'exact' | 'info-higher' | 'info-lower'"""
        info = mode.startswith("info")
        direction = mode.split("-")[-1]
        if info and not self.strict:
            status = INFO
        elif mode == "exact":
            status = OK if base == cur else FAIL
        elif direction == "higher":
            status = OK if cur >= base * (1 - self.tolerance) else FAIL
        else:  # lower is better
            status = OK if cur <= base * (1 + self.tolerance) else FAIL
        if status == FAIL:
            self.failed = True
        self.rows.append(
            (bench, metric, base, cur, self._delta(base, cur), mode, status)
        )

    def missing(self, bench, what):
        self.rows.append((bench, what, None, None, None, "exact", FAIL))
        self.failed = True

    def note(self, bench, line):
        """Free-form attribution line rendered under the delta table."""
        self.notes.append((bench, line))

    def render(self, out, markdown):
        if markdown:
            out.write("### Perf gate (tolerance ±%d%%)\n\n" % (self.tolerance * 100))
            out.write("| bench | metric | baseline | current | delta | gate | status |\n")
            out.write("|---|---|---:|---:|---:|---|---|\n")
            fmt = "| {} | {} | {} | {} | {} | {} | {} |\n"
        else:
            out.write("perf gate (tolerance +-%d%%)\n" % (self.tolerance * 100))
            fmt = "  {:<8} {:<34} {:>12} {:>12} {:>8} {:<12} {}\n"
            out.write(fmt.format("bench", "metric", "baseline", "current",
                                 "delta", "gate", "status"))

        def num(v):
            if v is None:
                return "missing"
            if isinstance(v, float):
                return "%.4g" % v
            return str(v)

        for bench, metric, base, cur, delta, mode, status in self.rows:
            d = "" if delta is None else "%+.1f%%" % (delta * 100)
            out.write(fmt.format(bench, metric, num(base), num(cur), d, mode,
                                 status))
        out.write("\n")
        if self.notes:
            if markdown:
                out.write("**Stage attribution**\n\n")
                for bench, line in self.notes:
                    out.write("- `%s`: %s\n" % (bench, line))
            else:
                out.write("stage attribution:\n")
                for bench, line in self.notes:
                    out.write("  [%s] %s\n" % (bench, line))
            out.write("\n")


@bench_compare("BENCH_kernels.json")
def compare_kernels(gate, base, cur):
    gate.check("kernels", "min_speedup", base["min_speedup"],
               cur["min_speedup"], "higher")
    gate.check("kernels", "geomean_speedup", base["geomean_speedup"],
               cur["geomean_speedup"], "higher")
    cur_shapes = {s["label"]: s for s in cur["shapes"]}
    for shape in base["shapes"]:
        label = shape["label"]
        got = cur_shapes.get(label)
        if got is None:
            gate.missing("kernels", "shape %s" % label)
            continue
        gate.check("kernels", "%s.speedup" % label, shape["speedup"],
                   got["speedup"], "info-higher")
        gate.check("kernels", "%s.tiled_gflops" % label,
                   shape["tiled_gflops"], got["tiled_gflops"], "info-higher")


@bench_compare("BENCH_runtime.json")
def compare_runtime(gate, base, cur):
    gate.check("runtime", "workspace.speedup", base["workspace"]["speedup"],
               cur["workspace"]["speedup"], "higher")
    gate.check("runtime", "workspace.workspace_ms",
               base["workspace"]["workspace_ms"],
               cur["workspace"]["workspace_ms"], "info-lower")
    cur_scaling = {p["threads"]: p for p in cur["scaling"]}
    for point in base["scaling"]:
        threads = point["threads"]
        got = cur_scaling.get(threads)
        if got is None:
            gate.missing("runtime", "scaling threads=%d" % threads)
            continue
        # Scaling factors depend on the recording host's core count (a
        # 1-core baseline would make the gate vacuous on CI and a CI
        # baseline would flake on smaller hosts), so report-only.
        gate.check("runtime", "scaling[%d].speedup" % threads,
                   point["speedup"], got["speedup"], "info-higher")
        gate.check("runtime", "scaling[%d].tokens_per_s" % threads,
                   point["tokens_per_s"], got["tokens_per_s"], "info-higher")


@bench_compare("BENCH_cluster.json")
def compare_cluster(gate, base, cur):
    def key(r):
        return (r["arrival_rps"], r["replicas"], r["policy"])

    cur_results = {key(r): r for r in cur["results"]}
    for res in base["results"]:
        k = key(res)
        name = "rps=%g/x%d/%s" % k
        got = cur_results.get(k)
        if got is None:
            gate.missing("cluster", name)
            continue
        # Routing and forming are trace-driven: counts must match exactly.
        for field in ("requests", "batches", "admitted", "rejected",
                      "rerouted"):
            gate.check("cluster", "%s.%s" % (name, field), res[field],
                       got[field], "exact")
        gate.check("cluster", "%s.fill" % name, res["mean_batch_fill"],
                   got["mean_batch_fill"], "info-higher")
        gate.check("cluster", "%s.p99_ms" % name, res["p99_ms"],
                   got["p99_ms"], "info-lower")
    cur_cmp = {(c["arrival_rps"], c["replicas"]): c
               for c in cur["comparisons"]}
    for cmp in base["comparisons"]:
        k = (cmp["arrival_rps"], cmp["replicas"])
        name = "rps=%g/x%d" % k
        got = cur_cmp.get(k)
        if got is None:
            gate.missing("cluster", "comparison %s" % name)
            continue
        gate.check("cluster", "%s.fill_gain" % name, cmp["fill_gain"],
                   got["fill_gain"], "info-higher")
        gate.check("cluster", "%s.p99_ratio" % name, cmp["p99_ratio"],
                   got["p99_ratio"], "info-lower")
    # The headline the ROADMAP acceptance rides on: once recorded true, the
    # bucketed-beats-round-robin bit may never silently flip back.
    gate.check("cluster", "bucketed_beats_round_robin",
               base["bucketed_beats_round_robin"],
               cur["bucketed_beats_round_robin"], "exact")


@bench_compare("BENCH_cache.json")
def compare_cache(gate, base, cur):
    def key(r):
        return (r["population"], r["skew"], r["eviction"])

    cur_results = {key(r): r for r in cur["results"]}
    for res in base["results"]:
        k = key(res)
        name = "pop=%d/s=%g/%s" % k
        got = cur_results.get(k)
        if got is None:
            gate.missing("cache", name)
            continue
        # The trace, the cache and the virtual clock are all deterministic:
        # lookup outcomes and store churn must match exactly.
        for field in ("requests", "batches", "hits", "coalesced", "misses",
                      "evictions", "insertions"):
            gate.check("cache", "%s.%s" % (name, field), res[field],
                       got[field], "exact")
        gate.check("cache", "%s.p99_ratio" % name, res["p99_ratio"],
                   got["p99_ratio"], "info-lower")
        gate.check("cache", "%s.throughput_gain" % name,
                   res["throughput_gain"], got["throughput_gain"],
                   "info-higher")
    # The headline the acceptance rides on: once recorded true, the
    # cached-beats-uncached-at->=20%-duplicates bit may never flip back.
    gate.check("cache", "cache_beats_uncached_at_dup_gate",
               base["cache_beats_uncached_at_dup_gate"],
               cur["cache_beats_uncached_at_dup_gate"], "exact")


@bench_compare("BENCH_serving.json")
def compare_serving(gate, base, cur):
    def key(r):
        return (r["arrival_rps"], r["policy"])

    cur_results = {key(r): r for r in cur["results"]}
    for res in base["results"]:
        k = key(res)
        name = "rps=%g/%s" % k
        got = cur_results.get(k)
        if got is None:
            gate.missing("serving", name)
            continue
        for field in ("requests", "batches", "accepted", "rejected"):
            gate.check("serving", "%s.%s" % (name, field), res[field],
                       got[field], "exact")
        gate.check("serving", "%s.p95_ms" % name, res["p95_ms"],
                   got["p95_ms"], "info-lower")
        gate.check("serving", "%s.throughput_rps" % name,
                   res["throughput_rps"], got["throughput_rps"],
                   "info-higher")


@bench_compare("BENCH_shard.json")
def compare_shard(gate, base, cur):
    def key(r):
        return (r["seq_len"], r["degree"], r["interconnect"])

    cur_results = {key(r): r for r in cur["results"]}
    for res in base["results"]:
        k = key(res)
        name = "len=%d/x%d/%s" % k
        got = cur_results.get(k)
        if got is None:
            gate.missing("shard", name)
            continue
        # Both engines replay the same trace in virtual time against
        # deterministic accounting models: counts must match exactly.
        for field in ("requests", "batches"):
            gate.check("shard", "%s.%s" % (name, field), res[field],
                       got[field], "exact")
        gate.check("shard", "%s.p99_ratio" % name, res["p99_ratio"],
                   got["p99_ratio"], "info-lower")
        gate.check("shard", "%s.comm_fraction" % name,
                   res["comm_fraction"], got["comm_fraction"], "info-lower")
    cur_crossovers = {(c["degree"], c["interconnect"]): c
                      for c in cur["crossovers"]}
    for xo in base["crossovers"]:
        k = (xo["degree"], xo["interconnect"])
        name = "x%d/%s" % k
        got = cur_crossovers.get(k)
        if got is None:
            gate.missing("shard", "crossover %s" % name)
            continue
        # Sharding wins carry a 1% margin, so the crossover sequence
        # length is stable against libm-level drift and gates exactly
        # (0 = sharding never won for this degree x interconnect).
        gate.check("shard", "%s.crossover_len" % name,
                   xo["crossover_len"], got["crossover_len"], "exact")
    # The headline the acceptance rides on: once recorded true, the
    # tensor-parallel-beats-replication-at-long-sequences bit may never
    # flip back.
    gate.check("shard", "sharding_beats_replication_at_long_seq",
               base["sharding_beats_replication_at_long_seq"],
               cur["sharding_beats_replication_at_long_seq"], "exact")


@bench_compare("BENCH_search.json")
def compare_search(gate, base, cur):
    # The SA walk is a pure function of (space, evaluator, seed) and the
    # evaluator replays a fixed trace through the byte-deterministic
    # cluster twin, so the winning configuration -- not just its score --
    # must reproduce exactly on any host.
    for field in ("replicas", "backend_slots", "policy", "cache_mode",
                  "chain", "completed", "rejected"):
        gate.check("search", "winner.%s" % field, base["winner"][field],
                   cur["winner"][field], "exact")
    gate.check("search", "sa.evaluations", base["sa"]["evaluations"],
               cur["sa"]["evaluations"], "exact")
    gate.check("search", "pareto.size", len(base["pareto"]),
               len(cur["pareto"]), "exact")
    gate.check("search", "winner.p99_ms", base["winner"]["p99_ms"],
               cur["winner"]["p99_ms"], "info-lower")
    gate.check("search", "winner.energy_j", base["winner"]["energy_j"],
               cur["winner"]["energy_j"], "info-lower")
    gate.check("search", "headline.p99_speedup",
               base["headline"]["p99_speedup"],
               cur["headline"]["p99_speedup"], "info-higher")
    # The headline the acceptance rides on: once recorded true, the
    # SA-matches-or-beats-every-hand-tuned-baseline bit (p99 at the shared
    # offered load, and never Pareto-dominated) may never flip back.
    gate.check("search", "sa_beats_best_baseline",
               base["headline"]["sa_beats_best_baseline"],
               cur["headline"]["sa_beats_best_baseline"], "exact")


@bench_compare("BENCH_adaptive.json")
def compare_adaptive(gate, base, cur):
    cur_results = {r["config"]: r for r in cur["results"]}
    for res in base["results"]:
        name = res["config"]
        got = cur_results.get(name)
        if got is None:
            gate.missing("adaptive", name)
            continue
        # Every cell is accounting-only virtual time over a fixed ramp
        # trace, so admission and batching counts must match exactly.
        for field in ("requests", "accepted", "rejected", "batches"):
            gate.check("adaptive", "%s.%s" % (name, field), res[field],
                       got[field], "exact")
        # Tier accuracies are fidelity-model outputs quantized to 1e-4;
        # the stream mean is a weighted sum of those constants over exact
        # counts, so it gates exactly too.
        gate.check("adaptive", "%s.mean_accuracy" % name,
                   res["mean_accuracy"], got["mean_accuracy"], "exact")
        gate.check("adaptive", "%s.p99_ms" % name, res["p99_ms"],
                   got["p99_ms"], "info-lower")
        for i, tier in enumerate(res.get("tiers", [])):
            got_tier = got["tiers"][i]
            for field in ("requests", "batches", "escalated"):
                gate.check("adaptive", "%s.tiers[%d].%s" % (name, i, field),
                           tier[field], got_tier[field], "exact")
    gate.check("adaptive", "determinism.bit_identical",
               base["determinism"]["bit_identical"],
               cur["determinism"]["bit_identical"], "exact")
    gate.check("adaptive", "determinism.degraded_requests",
               base["determinism"]["degraded_requests"],
               cur["determinism"]["degraded_requests"], "exact")
    # The headline the acceptance rides on: once recorded true, the
    # adaptive-holds-SLO-with-fewer-rejects-above-the-floor bit may never
    # flip back.
    for field in ("p99_within_slo", "accuracy_above_floor",
                  "lower_reject_than_baselines", "adaptive_beats_fixed"):
        gate.check("adaptive", "headline.%s" % field,
                   base["headline"][field], cur["headline"][field], "exact")


@bench_compare("BENCH_obs.json")
def compare_obs(gate, base, cur):
    def key(r):
        return r["arrival_rps"]

    cur_results = {key(r): r for r in cur["results"]}
    for res in base["results"]:
        k = key(res)
        name = "rps=%g" % k
        got = cur_results.get(k)
        if got is None:
            gate.missing("obs", name)
            continue
        # The trace is deterministic and every span is emitted from the
        # virtual-time schedule, so event counts -- like the serving
        # counts they mirror -- must match exactly.
        for field in ("requests", "batches", "accepted", "rejected",
                      "trace_events", "trace_dropped"):
            gate.check("obs", "%s.%s" % (name, field), res[field],
                       got[field], "exact")
        gate.check("obs", "%s.p99_ms" % name, res["p99_ms"],
                   got["p99_ms"], "info-lower")
    # The contracts the acceptance rides on: tracing changes nothing
    # (bit-exact outputs and report), the exported streams are
    # byte-identical across thread counts, overflow is accounted exactly,
    # and the enabled-path overhead stays under its 3% budget.
    gate.check("obs", "bit_exact.outputs_identical",
               base["bit_exact"]["outputs_identical"],
               cur["bit_exact"]["outputs_identical"], "exact")
    gate.check("obs", "bit_exact.report_identical",
               base["bit_exact"]["report_identical"],
               cur["bit_exact"]["report_identical"], "exact")
    gate.check("obs", "determinism.byte_identical",
               base["determinism"]["byte_identical"],
               cur["determinism"]["byte_identical"], "exact")
    gate.check("obs", "determinism.analysis_identical",
               base["determinism"]["analysis_identical"],
               cur["determinism"]["analysis_identical"], "exact")
    # The attribution contract: every request's stage segments tile its
    # end-to-end latency with no unattributed gap, the breakdown
    # percentiles are bitwise the pooled report's, and nothing fell out
    # of the walk.
    for field in ("requests", "rejected", "unattributed", "stages",
                  "gap_free", "reconstruction_exact", "matches_report",
                  "dominant_tail_stage"):
        gate.check("obs", "breakdown.%s" % field, base["breakdown"][field],
                   cur["breakdown"][field], "exact")
    # The persistence contract: .lattetrace round-trips byte-exactly, the
    # committed canonical capture still matches the generator, and a
    # capture -> replay cycle reproduces the exact analysis artifacts.
    for field in ("version", "roundtrip_identical", "file_loaded",
                  "file_matches", "replay_identical"):
        gate.check("obs", "capture.%s" % field, base["capture"][field],
                   cur["capture"][field], "exact")
    for field in ("recorded", "dropped"):
        gate.check("obs", "overflow.%s" % field, base["overflow"][field],
                   cur["overflow"][field], "exact")
    gate.check("obs", "overhead.overhead_ok",
               base["overhead"]["overhead_ok"],
               cur["overhead"]["overhead_ok"], "exact")
    # The measured fraction itself is wall-clock and host-dependent:
    # report-only.
    gate.check("obs", "overhead.overhead_frac",
               base["overhead"]["overhead_frac"],
               cur["overhead"]["overhead_frac"], "info-lower")


def breakdown_attribution(base, cur):
    """One root-cause line for a p99 movement between two breakdowns.

    Stage shares are the per-stage p99 deltas normalized by their
    absolute sum (so the line is meaningful even when stages moved in
    opposite directions); for fleet breakdowns the dominant stage is
    refined with the track group where it moved most.  Mirrors
    tools/trace_diff so CI and local forensics tell one story.
    """
    delta_ms = cur["end_to_end"]["p99_ms"] - base["end_to_end"]["p99_ms"]
    base_stages = {s["stage"]: s for s in base["stages"]}
    deltas = {}
    for s in cur["stages"]:
        b = base_stages.get(s["stage"])
        if b is not None:
            deltas[s["stage"]] = s["p99_ms"] - b["p99_ms"]
    abs_sum = sum(abs(d) for d in deltas.values())
    if not deltas or abs_sum == 0:
        return "p99 %+.3f ms, no stage moved" % delta_ms
    stage = max(deltas, key=lambda k: abs(deltas[k]))
    where = stage
    base_groups = {g["group"]: g for g in base.get("groups", [])}
    best = 0.0
    for g in cur.get("groups", []):
        bg = base_groups.get(g["group"])
        if bg is None:
            continue
        bg_stages = {s["stage"]: s for s in bg["stages"]}
        for s in g["stages"]:
            b = bg_stages.get(s["stage"])
            if b is None or s["stage"] != stage:
                continue
            d = abs(s["p99_ms"] - b["p99_ms"])
            if d > best:
                best = d
                where = "%s on %s" % (stage, g["group"])
    return "p99 %+.3f ms, %.0f%% from %s" % (
        delta_ms, 100.0 * abs(deltas[stage]) / abs_sum, where)


@bench_compare("BREAKDOWN_obs.json")
def compare_breakdown(gate, base, cur):
    """Stage-by-stage diff of the recorded latency breakdown.

    The structural facts gate exactly (the attribution walk is
    byte-deterministic virtual time); the millisecond values are
    host-independent too but gate as info so a deliberate service-model
    change fails on its own bench, not twice.  Every run -- pass or fail
    -- also emits the stage-attribution line, so a perf-gate failure
    ships its root cause.
    """
    gate.check("breakdown", "schema_version", base["schema_version"],
               cur["schema_version"], "exact")
    for field in ("requests", "rejected", "unattributed", "gap_free",
                  "reconstruction_exact"):
        gate.check("breakdown", field, base[field], cur[field], "exact")
    gate.check("breakdown", "tail.dominant_stage",
               base["tail"]["dominant_stage"],
               cur["tail"]["dominant_stage"], "exact")
    gate.check("breakdown", "end_to_end.p99_ms",
               base["end_to_end"]["p99_ms"],
               cur["end_to_end"]["p99_ms"], "info-lower")
    cur_stages = {s["stage"]: s for s in cur["stages"]}
    for s in base["stages"]:
        name = s["stage"]
        got = cur_stages.get(name)
        if got is None:
            gate.missing("breakdown", "stage %s" % name)
            continue
        gate.check("breakdown", "%s.requests" % name, s["requests"],
                   got["requests"], "exact")
        gate.check("breakdown", "%s.p99_ms" % name, s["p99_ms"],
                   got["p99_ms"], "info-lower")
        gate.check("breakdown", "%s.share" % name, s["share"],
                   got["share"], "info-lower")
    for name in cur_stages:
        if not any(s["stage"] == name for s in base["stages"]):
            gate.missing("breakdown", "stage %s (new, not in baseline)"
                         % name)
    gate.note("breakdown", breakdown_attribution(base, cur))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baselines", default="bench/baselines",
                    help="directory with recorded BENCH_*.json baselines")
    ap.add_argument("--current", default=".",
                    help="directory with freshly produced BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative regression on gated ratios")
    ap.add_argument("--strict", action="store_true",
                    help="also gate machine-dependent absolute metrics "
                         "(same-host comparisons only)")
    ap.add_argument("--update", action="store_true",
                    help="re-record the baselines from the current "
                         "BENCH_*.json files instead of gating")
    args = ap.parse_args()

    benches = tuple(BENCHES)

    if args.update:
        # Check every current file first so a partial run cannot leave the
        # baselines directory half re-recorded.
        missing = [name for name, _ in benches
                   if load(os.path.join(args.current, name)) is None]
        if missing:
            print("error: missing current %s (run the benches before "
                  "--update)" % ", ".join(missing), file=sys.stderr)
            return 2
        for name, _ in benches:
            src = os.path.join(args.current, name)
            dst = os.path.join(args.baselines, name)
            shutil.copyfile(src, dst)
            print("re-recorded %s -> %s" % (src, dst))
        return 0

    gate = Gate(args.tolerance, args.strict)
    for name, compare in benches:
        base = load(os.path.join(args.baselines, name))
        cur = load(os.path.join(args.current, name))
        if base is None:
            print("error: missing baseline %s" % name, file=sys.stderr)
            return 2
        if cur is None:
            print("error: missing current %s (did the bench run?)" % name,
                  file=sys.stderr)
            return 2
        try:
            compare(gate, base, cur)
        except KeyError as e:
            # A baseline (or current) file predating a schema change: name
            # the missing key instead of dumping a stack trace.
            print("error: %s is missing key %s -- re-record the baseline "
                  "with:  python3 bench/check_regression.py --update"
                  % (name, e), file=sys.stderr)
            return 2

    gate.render(sys.stdout, markdown=False)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            gate.render(f, markdown=True)

    if gate.failed:
        print("perf gate: REGRESSION beyond tolerance", file=sys.stderr)
        return 1
    print("perf gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
