// Tensor-parallel sharding benchmark: sweeps sequence length x shard
// degree x interconnect generation and emits machine-readable JSON
// (BENCH_shard.json, or argv[1]) for the CI perf-gate job.
//
// The question each cell answers: given the same silicon budget (D
// devices), is it better to run D independent replicas (each serving
// whole batches at the base speed) or one D-wide tensor-parallel gang
// (every batch sped up to the ShardPlan's compute share, but paying the
// interconnect for collectives)?  Both sides replay the same Poisson
// trace of fixed-length requests through an accounting-only ServingEngine
// -- identical batches, pure virtual time -- so every number is
// deterministic run to run at any thread count.
//
// The offered load is scaled to a fixed fraction of the *replicated*
// fleet's capacity in every cell, so cells differ only in how the two
// backends spend that capacity: replication keeps D queues short but
// every batch costs the full base latency, while the gang serves one
// queue at share * base + comm.  Short sequences cannot amortize the
// per-hop latency floor (and the gang's lower total throughput bites),
// long ones can -- the crossover the gate records.  The headline: the
// gang must beat replication on p99 in at least one long-sequence cell.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/json_writer.hpp"

namespace latte {
namespace {

// Capacity-sealed batches of exactly this many requests (the huge former
// timeout below never fires mid-trace), so both backends price identical
// lengths vectors.
constexpr std::size_t kBatch = 4;
// Offered load as a fraction of the replicated fleet's saturation
// throughput.  High enough that queueing is visible, low enough that the
// replicated baseline stays stable.
constexpr double kLoadFactor = 0.55;
constexpr std::size_t kRequests = 160;

InterconnectConfig FastInterconnect() {
  InterconnectConfig icn;  // NoC-class links: 200 GB/s, 1 us per hop
  icn.link_bytes_per_s = 200e9;
  icn.hop_latency_s = 1e-6;
  return icn;
}

InterconnectConfig SlowInterconnect() {
  InterconnectConfig icn;  // PCIe/DRAM-class: 16 GB/s, 10 us per hop,
  icn.link_bytes_per_s = 16e9;  // collectives over 1 MiB spill to DRAM
  icn.hop_latency_s = 10e-6;
  icn.dram_spill_bytes = std::size_t{1} << 20;
  icn.dram_bytes_per_s = 8e9;
  return icn;
}

/// Poisson arrivals at `rate`, every request exactly `seq_len` tokens
/// (the controlled variable of the sweep; dataset length jitter would
/// blur the crossover).  Same gap sampling as GeneratePoissonTrace.
std::vector<TimedRequest> FixedLengthTrace(double rate, std::size_t seq_len,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TimedRequest> trace;
  trace.reserve(kRequests);
  double t = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    double u = rng.NextUniform();
    if (u < 1e-300) u = 1e-300;
    t += -std::log(u) / rate;
    trace.push_back({t, seq_len});
  }
  return trace;
}

ServingEngineConfig BaseEngine(const BatchServiceModel& service) {
  ServingEngineConfig cfg;
  cfg.former.max_batch = kBatch;
  cfg.former.timeout_s = 1e9;  // seal by capacity only
  cfg.execute = false;         // accounting-only: pure virtual time
  cfg.service = service;
  return cfg;
}

struct Cell {
  std::size_t seq_len = 0;
  std::size_t degree = 0;
  std::string interconnect;
  double arrival_rps = 0;
  double base_batch_s = 0;   ///< unsharded service time of one full batch
  double share = 0;          ///< critical-path compute share of the gang
  double comm_batch_s = 0;   ///< collective seconds per full batch
  ServingReport replicated;
  ServingReport sharded;
  double p99_ratio = 0;      ///< sharded p99 / replicated p99
  bool wins = false;
};

}  // namespace
}  // namespace latte

int main(int argc, char** argv) {
  using namespace latte;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_shard.json";

  // Accounting-only mode never touches the tensors; half-scale BERT keeps
  // ModelInstance construction cheap while the 6-head encoder still makes
  // degree 4 an uneven (2/2/1/1) head split -- the plan shape worth
  // benchmarking, not just the divisible case.
  const ModelConfig model_cfg = ScaledDown(BertBase(), 2);
  const ModelInstance model(model_cfg, 2026);
  ServiceModelSpec base_spec;
  base_spec.base = ServiceModelSpec::Base::kAccelerator;
  base_spec.model = model_cfg;
  const BatchServiceModel base_service = BuildServiceModel(base_spec);
  const OpGraph graph =
      OpGraph::Chain(EncoderOps(model_cfg.encoder, AttentionMode::kDense));

  const std::vector<std::size_t> seq_lens = {64, 256, 1024, 4096};
  const std::vector<std::size_t> degrees = {2, 4};
  const std::vector<std::pair<std::string, InterconnectConfig>> interconnects =
      {{"fast", FastInterconnect()}, {"slow", SlowInterconnect()}};

  std::vector<Cell> cells;
  for (std::size_t seq_len : seq_lens) {
    const std::vector<std::size_t> batch_lens(kBatch, seq_len);
    const double base_batch_s = base_service(batch_lens);
    for (std::size_t degree : degrees) {
      // Saturation throughput of `degree` replicas is degree * kBatch /
      // base_batch_s; offer a fixed fraction of it so the replicated
      // baseline is comparably loaded in every cell.
      const double rate = kLoadFactor * degree * kBatch / base_batch_s;
      const auto trace = FixedLengthTrace(rate, seq_len, /*seed=*/11);
      for (const auto& [icn_name, icn_cfg] : interconnects) {
        ShardServiceConfig shard;
        shard.degree = degree;
        shard.interconnect = icn_cfg;

        ServingEngineConfig rep_cfg = BaseEngine(base_service);
        rep_cfg.workers = degree;
        ServingEngine replicated(model, rep_cfg);

        ServingEngineConfig shard_cfg = BaseEngine(base_service);
        shard_cfg.workers = 1;  // the whole gang is one backend slot
        shard_cfg.backend = BackendMode::kSharded;
        shard_cfg.shard = shard;
        ServingEngine sharded(model, shard_cfg);

        Cell cell;
        cell.seq_len = seq_len;
        cell.degree = degree;
        cell.interconnect = icn_name;
        cell.arrival_rps = rate;
        cell.base_batch_s = base_batch_s;

        ShardPlanConfig plan_cfg;
        plan_cfg.shards = degree;
        plan_cfg.row_parallel_ffn2 = shard.row_parallel_ffn2;
        const ShardPlan plan = MakeShardPlan(model_cfg.encoder, plan_cfg);
        const InterconnectModel icn(icn_cfg);
        cell.share =
            PartitionOpWeights(graph, plan, model_cfg.encoder,
                               static_cast<double>(seq_len)).MaxShare();
        cell.comm_batch_s =
            static_cast<double>(kBatch * model_cfg.layers) *
            ShardLayerCommSeconds(plan, model_cfg.encoder, icn, seq_len);

        cell.replicated = replicated.Replay(trace).report();
        cell.sharded = sharded.Replay(trace).report();
        cell.p99_ratio =
            cell.sharded.p99_latency_s / cell.replicated.p99_latency_s;
        // A win needs margin so libm-level float drift between hosts
        // cannot flip the gated summary bit.
        cell.wins = cell.p99_ratio <= 0.99;
        cells.push_back(std::move(cell));
      }
    }
  }

  // Crossover per (degree, interconnect): the shortest swept sequence
  // length from which sharding keeps beating replication on p99 through
  // the end of the sweep (0 = it never does).
  struct Crossover {
    std::size_t degree = 0;
    std::string interconnect;
    std::size_t crossover_len = 0;
  };
  std::vector<Crossover> crossovers;
  bool headline = false;
  const std::size_t long_len = seq_lens.back();
  for (std::size_t degree : degrees) {
    for (const auto& [icn_name, icn_cfg] : interconnects) {
      Crossover xo;
      xo.degree = degree;
      xo.interconnect = icn_name;
      for (auto it = seq_lens.rbegin(); it != seq_lens.rend(); ++it) {
        const auto cell = std::find_if(
            cells.begin(), cells.end(), [&](const Cell& c) {
              return c.seq_len == *it && c.degree == degree &&
                     c.interconnect == icn_name;
            });
        if (!cell->wins) break;
        xo.crossover_len = *it;
        if (*it >= long_len) headline = true;
      }
      crossovers.push_back(std::move(xo));
    }
  }

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("shard");
  json.Key("schema_version").Value(std::size_t{1});
  StampHost(json);
  json.Key("model").Value(model_cfg.name);
  json.Key("requests").Value(kRequests);
  json.Key("batch").Value(kBatch);
  json.Key("load_factor").Value(kLoadFactor);
  json.Key("results");
  json.BeginArray();

  TextTable table({"seq_len", "degree", "interconnect", "batches",
                          "share", "comm frac", "repl p99 (ms)",
                          "shard p99 (ms)", "p99 ratio", "winner"});
  for (const Cell& cell : cells) {
    const double shard_batch_s =
        cell.share * cell.base_batch_s + cell.comm_batch_s;
    const double comm_fraction = cell.comm_batch_s / shard_batch_s;
    json.BeginObject();
    json.Key("seq_len").Value(cell.seq_len);
    json.Key("degree").Value(cell.degree);
    json.Key("interconnect").Value(cell.interconnect);
    json.Key("arrival_rps").Value(cell.arrival_rps);
    json.Key("requests").Value(cell.replicated.requests);
    json.Key("batches").Value(cell.replicated.batches);
    json.Key("base_batch_ms").Value(cell.base_batch_s * 1e3);
    json.Key("compute_share").Value(cell.share);
    json.Key("comm_batch_ms").Value(cell.comm_batch_s * 1e3);
    json.Key("comm_fraction").Value(comm_fraction);
    json.Key("replicated_p50_ms").Value(cell.replicated.p50_latency_s * 1e3);
    json.Key("replicated_p99_ms").Value(cell.replicated.p99_latency_s * 1e3);
    json.Key("sharded_p50_ms").Value(cell.sharded.p50_latency_s * 1e3);
    json.Key("sharded_p99_ms").Value(cell.sharded.p99_latency_s * 1e3);
    json.Key("p99_ratio").Value(cell.p99_ratio);
    json.Key("sharded_wins").Value(cell.wins);
    json.EndObject();

    table.AddRow({std::to_string(cell.seq_len), std::to_string(cell.degree),
                  cell.interconnect,
                  std::to_string(cell.replicated.batches),
                  Fmt(cell.share, 3), Fmt(comm_fraction, 3),
                  Fmt(cell.replicated.p99_latency_s * 1e3, 2),
                  Fmt(cell.sharded.p99_latency_s * 1e3, 2),
                  Fmt(cell.p99_ratio, 3),
                  cell.wins ? "sharded" : "replicated"});
  }
  json.EndArray();

  json.Key("crossovers");
  json.BeginArray();
  for (const auto& xo : crossovers) {
    json.BeginObject();
    json.Key("degree").Value(xo.degree);
    json.Key("interconnect").Value(xo.interconnect);
    json.Key("crossover_len").Value(xo.crossover_len);
    json.EndObject();
  }
  json.EndArray();
  json.Key("sharding_beats_replication_at_long_seq").Value(headline);
  json.EndObject();

  std::printf(
      "== Tensor-parallel vs replication: seq_len x degree x "
      "interconnect ==\n\n");
  std::printf("%s\n", table.Render().c_str());
  std::printf("crossover (shortest len from which sharding wins p99):\n");
  for (const auto& xo : crossovers) {
    if (xo.crossover_len > 0) {
      std::printf("  degree %zu, %s: len >= %zu\n", xo.degree,
                  xo.interconnect.c_str(), xo.crossover_len);
    } else {
      std::printf("  degree %zu, %s: never\n", xo.degree,
                  xo.interconnect.c_str());
    }
  }
  // Write the JSON before any failure exit: when the headline regresses,
  // CI still gets the per-cell numbers as an artifact to debug with.
  if (!json.WriteFile(out_path)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  if (!headline) {
    std::fprintf(stderr,
                 "error: tensor-parallel sharding beat replication in no "
                 "long-sequence cell; the cost model (or this sweep) "
                 "regressed\n");
    return 1;
  }
  return 0;
}
