// Cluster policy benchmark: sweeps arrival rate x replica count x routing
// policy on the multi-replica ServingCluster and emits machine-readable
// JSON (BENCH_cluster.json, or argv[1]) for the CI perf-gate job.
//
// Every cell replays the same Poisson trace (per rate) through an
// accounting-only cluster -- no tensors, pure virtual time -- so every
// number is deterministic run to run.  Replicas are padded backends
// (PaddedServiceModel): each batch costs its longest member times its
// size, which is what makes routing policy matter.  The headline the gate
// watches: length-bucketed routing must beat round-robin on batch density
// (mean batch fill) or p99 latency in at least one rate x replica cell.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/json_writer.hpp"

namespace latte {
namespace {

constexpr double kSecondsPerPaddedToken = 10e-6;
constexpr double kBatchOverheadS = 1e-3;

ClusterConfig MakeCluster(std::size_t replicas, RouterPolicy policy) {
  ClusterConfig cfg;
  for (std::size_t i = 0; i < replicas; ++i) {
    ReplicaConfig rep;
    // A 50 ms window at the swept rates forms capacity-sealed batches --
    // the regime where within-batch length spread (padding waste) is what
    // separates the routing policies.
    rep.engine.former.max_batch = 8;
    rep.engine.former.timeout_s = 0.05;
    rep.engine.workers = 1;
    rep.engine.execute = false;  // virtual-time policy sweep
    rep.engine.service =
        PaddedServiceModel(kSecondsPerPaddedToken, kBatchOverheadS);
    cfg.replicas.push_back(rep);
  }
  cfg.router.policy = policy;
  // One bucket per replica, split at the quantiles of the SQuAD length
  // fit (median 152, quartiles ~105/219), so buckets keep lengths
  // together without starving any home replica.
  cfg.router.length_edges =
      replicas >= 4 ? std::vector<std::size_t>{105, 152, 219}
                    : std::vector<std::size_t>{152};
  return cfg;
}

struct Cell {
  double rate = 0;
  std::size_t replicas = 0;
  RouterPolicy policy = RouterPolicy::kRoundRobin;
  ClusterResult result;
};

}  // namespace
}  // namespace latte

int main(int argc, char** argv) {
  using namespace latte;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_cluster.json";

  const auto dataset = Squad();
  // Accounting-only mode never touches the tensors, so a tiny model keeps
  // construction cheap; only its existence is required by the replicas.
  const ModelInstance model(ScaledDown(BertBase(), 6), 2022);

  const std::size_t requests = 192;
  const std::vector<double> rates = {100, 200, 400};
  const std::vector<std::size_t> fleet_sizes = {2, 4};
  const std::vector<RouterPolicy> policies = {
      RouterPolicy::kRoundRobin, RouterPolicy::kJoinShortestQueue,
      RouterPolicy::kLeastOutstandingTokens, RouterPolicy::kLengthBucketed};

  std::vector<Cell> cells;
  for (double rate : rates) {
    PoissonTraceConfig trace_cfg;
    trace_cfg.arrival_rate_rps = rate;
    trace_cfg.requests = requests;
    trace_cfg.seed = 7;
    const auto trace = GeneratePoissonTrace(trace_cfg, dataset);
    for (std::size_t fleet : fleet_sizes) {
      for (RouterPolicy policy : policies) {
        ServingCluster cluster(model, MakeCluster(fleet, policy));
        Cell cell;
        cell.rate = rate;
        cell.replicas = fleet;
        cell.policy = policy;
        cell.result = cluster.Replay(trace);
        cells.push_back(std::move(cell));
      }
    }
  }

  // Length-bucketed vs round-robin per (rate, fleet) cell.
  struct Comparison {
    double rate = 0;
    std::size_t replicas = 0;
    double fill_gain = 0;  ///< bucketed fill / round-robin fill
    double p99_ratio = 0;  ///< bucketed p99 / round-robin p99
    bool wins = false;
  };
  std::vector<Comparison> comparisons;
  bool bucketed_beats_rr = false;
  for (double rate : rates) {
    for (std::size_t fleet : fleet_sizes) {
      const Cell* rr = nullptr;
      const Cell* bucketed = nullptr;
      for (const Cell& c : cells) {
        if (c.rate != rate || c.replicas != fleet) continue;
        if (c.policy == RouterPolicy::kRoundRobin) rr = &c;
        if (c.policy == RouterPolicy::kLengthBucketed) bucketed = &c;
      }
      Comparison cmp;
      cmp.rate = rate;
      cmp.replicas = fleet;
      cmp.fill_gain = bucketed->result.report.mean_batch_fill /
                      rr->result.report.mean_batch_fill;
      cmp.p99_ratio = bucketed->result.fleet().p99_latency_s /
                      rr->result.fleet().p99_latency_s;
      // A win needs margin so libm-level float drift between hosts cannot
      // flip the gated summary bit.
      cmp.wins = cmp.fill_gain >= 1.01 || cmp.p99_ratio <= 0.99;
      bucketed_beats_rr = bucketed_beats_rr || cmp.wins;
      comparisons.push_back(cmp);
    }
  }

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("cluster");
  json.Key("schema_version").Value(std::size_t{1});
  StampHost(json);
  json.Key("dataset").Value(dataset.name);
  json.Key("requests").Value(requests);
  json.Key("service_model").Value("padded");
  json.Key("results");
  json.BeginArray();

  TextTable table({"arrival (req/s)", "replicas", "policy", "batches",
                   "fill", "p50 (ms)", "p99 (ms)", "throughput (req/s)",
                   "imbalance", "rerouted"});
  for (const Cell& cell : cells) {
    const ClusterReport& rep = cell.result.report;
    const ServingReport& fleet = rep.fleet;
    json.BeginObject();
    json.Key("arrival_rps").Value(cell.rate);
    json.Key("replicas").Value(cell.replicas);
    json.Key("policy").Value(RouterPolicyName(cell.policy));
    json.Key("requests").Value(fleet.requests);
    json.Key("batches").Value(fleet.batches);
    json.Key("admitted").Value(cell.result.routing.admitted);
    json.Key("rejected").Value(cell.result.routing.rejected);
    json.Key("rerouted").Value(cell.result.routing.rerouted);
    json.Key("mean_batch").Value(fleet.mean_batch_size);
    json.Key("mean_batch_fill").Value(rep.mean_batch_fill);
    json.Key("p50_ms").Value(fleet.p50_latency_s * 1e3);
    json.Key("p95_ms").Value(fleet.p95_latency_s * 1e3);
    json.Key("p99_ms").Value(fleet.p99_latency_s * 1e3);
    json.Key("throughput_rps").Value(fleet.throughput_rps);
    json.Key("busy_frac").Value(fleet.device_busy_frac);
    json.Key("request_imbalance").Value(rep.request_imbalance);
    json.Key("token_imbalance").Value(rep.token_imbalance);
    json.EndObject();

    table.AddRow({Fmt(cell.rate, 0), std::to_string(cell.replicas),
                  RouterPolicyName(cell.policy),
                  std::to_string(fleet.batches), Fmt(rep.mean_batch_fill, 2),
                  Fmt(fleet.p50_latency_s * 1e3, 1),
                  Fmt(fleet.p99_latency_s * 1e3, 1),
                  Fmt(fleet.throughput_rps, 1), Fmt(rep.request_imbalance, 2),
                  std::to_string(cell.result.routing.rerouted)});
  }
  json.EndArray();

  json.Key("comparisons");
  json.BeginArray();
  for (const auto& cmp : comparisons) {
    json.BeginObject();
    json.Key("arrival_rps").Value(cmp.rate);
    json.Key("replicas").Value(cmp.replicas);
    json.Key("fill_gain").Value(cmp.fill_gain);
    json.Key("p99_ratio").Value(cmp.p99_ratio);
    json.Key("bucketed_wins").Value(cmp.wins);
    json.EndObject();
  }
  json.EndArray();
  json.Key("bucketed_beats_round_robin").Value(bucketed_beats_rr);
  json.EndObject();

  std::printf(
      "== ServingCluster sweep: rate x replicas x routing policy ==\n\n");
  std::printf("%s\n", table.Render().c_str());
  std::printf("length-bucketed vs round-robin:\n");
  for (const auto& cmp : comparisons) {
    std::printf(
        "  rate %3.0f x %zu replicas: fill gain %.2fx, p99 ratio %.2f%s\n",
        cmp.rate, cmp.replicas, cmp.fill_gain, cmp.p99_ratio,
        cmp.wins ? "  [win]" : "");
  }
  // Write the JSON before any failure exit: when the headline regresses,
  // CI still gets the per-cell numbers as an artifact to debug with.
  if (!json.WriteFile(out_path)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  if (!bucketed_beats_rr) {
    std::fprintf(stderr,
                 "error: length-bucketed routing beat round-robin in no "
                 "cell; the policy (or this sweep) regressed\n");
    return 1;
  }
  return 0;
}
