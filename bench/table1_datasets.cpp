// Reproduces Table 1: model shapes and evaluation-dataset length statistics.
//
// Model rows are configuration facts; dataset rows are *measured* from the
// length sampler (100k draws) so the table checks that the synthetic
// workload actually reproduces the published avg/max/ratio.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_common.hpp"

using namespace latte;

int main() {
  std::printf("== Table 1: model & evaluation dataset ==\n\n");

  TextTable models({"Model", "Layers", "Hidden dim", "Num. of Heads"});
  models.AddRow({"DistilBERT", "6", "768", "12"});
  models.AddRow({"BERT-base, RoBERTa", "12", "768", "12"});
  models.AddRow({"BERT-large", "24", "1024", "16"});
  std::printf("%s\n", models.Render().c_str());

  // Verify the ModelZoo agrees with the printed table.
  for (const auto& m : ModelZoo()) {
    std::printf("  zoo check: %-11s layers=%zu hidden=%zu heads=%zu\n",
                m.name.c_str(), m.layers, m.encoder.hidden,
                m.encoder.heads);
  }
  std::printf("\n");

  TextTable data({"Evaluation dataset", "Avg (paper)", "Avg (sampled)",
                  "Max (paper)", "Max (sampled)", "Max/Avg"});
  for (const auto& spec : DatasetZoo()) {
    Rng rng(1234);
    LengthSampler sampler(spec);
    const auto lens = sampler.SampleMany(rng, 100000);
    const double mean =
        static_cast<double>(
            std::accumulate(lens.begin(), lens.end(), std::size_t{0})) /
        static_cast<double>(lens.size());
    const auto mx = *std::max_element(lens.begin(), lens.end());
    data.AddRow({spec.name, Fmt(spec.avg_len, 0), Fmt(mean, 1),
                 Fmt(spec.max_len, 0), Fmt(static_cast<double>(mx), 0),
                 Fmt(spec.MaxAvgRatio(), 1)});
  }
  std::printf("%s\n", data.Render().c_str());
  std::printf("Max/Avg is the computational overhead of max-length padding "
              "(paper: 4.6 / 3.7 / 1.6).\n");
  return 0;
}
