// Ablation: sensitivity of the design to chip parameters -- DSP budget,
// HBM bandwidth and clock frequency.  Identifies which resource the
// length-aware sparse design actually rides (the paper: "push the hardware
// design to the computation roof", i.e. DSP-bound after sparsification).

#include <cstdio>

#include "bench_common.hpp"

using namespace latte;
using namespace latte::bench;

namespace {

double Latency(const FpgaSpec& spec, const ModelConfig& model,
               const std::vector<std::size_t>& lens) {
  AcceleratorConfig cfg;
  cfg.spec = spec;
  return RunAccelerator(model, lens, cfg).latency_s;
}

}  // namespace

int main() {
  std::printf("== Ablation: chip-parameter sensitivity (BERT-base, SQuAD "
              "batch 16, Top-30) ==\n\n");
  const auto model = BertBase();
  const auto lens = SampleBatch(Squad(), 16, 42);
  const auto nominal = AlveoU280Slr0();
  const double t0 = Latency(nominal, model, lens);
  std::printf("nominal latency: %.3f ms (U280 SLR0: %.0f DSP, %.0f GB/s "
              "HBM, %.0f MHz)\n\n",
              t0 * 1e3, nominal.dsp, nominal.hbm_bandwidth / 1e9,
              nominal.freq_hz / 1e6);

  TextTable table({"parameter", "x0.25", "x0.5", "x1", "x2", "x4"});
  const std::vector<double> scales = {0.25, 0.5, 1.0, 2.0, 4.0};

  auto sweep = [&](const char* name, auto mutate) {
    std::vector<std::string> row = {name};
    for (double s : scales) {
      FpgaSpec spec = nominal;
      mutate(spec, s);
      row.push_back(FmtX(t0 / Latency(spec, model, lens)));
    }
    table.AddRow(row);
  };
  sweep("DSP count", [](FpgaSpec& s, double f) { s.dsp *= f; });
  sweep("HBM bandwidth", [](FpgaSpec& s, double f) { s.hbm_bandwidth *= f; });
  sweep("clock frequency", [](FpgaSpec& s, double f) { s.freq_hz *= f; });
  sweep("LUT budget", [](FpgaSpec& s, double f) { s.lut *= f; });

  std::printf("%s\n", table.Render().c_str());
  std::printf("(cells are speedups over the nominal chip; ~linear in DSP "
              "and frequency = compute-roof bound; flat in HBM/LUT = the "
              "sparse design decongested memory and the pre-selection "
              "fabric, exactly the paper's argument.)\n");
  return 0;
}
