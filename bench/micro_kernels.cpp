// google-benchmark microbenchmarks of the actual C++ kernels: quantization,
// LUT scoring, streaming Top-k, fused score kernel, and sparse vs dense
// attention wall time.  These measure this library's host implementation
// (not the FPGA model) -- they demonstrate the algorithmic O(n^2) -> O(nk)
// win on real silicon too.

#include <benchmark/benchmark.h>

#include "latte/latte.hpp"

namespace latte {
namespace {

AttentionProblem Problem(std::size_t n) {
  Rng rng(42 + n);
  AttentionWorkloadConfig cfg;
  return GenerateAttentionProblem(rng, n, cfg);
}

void BM_Quantize1Bit(benchmark::State& state) {
  const auto p = Problem(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Quantize(p.q, 1));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 64);
}
BENCHMARK(BM_Quantize1Bit)->Arg(128)->Arg(512);

void BM_LutScoreMatrix(benchmark::State& state) {
  const auto p = Problem(static_cast<std::size_t>(state.range(0)));
  const auto q = Quantize(p.q, 4);
  const auto k = Quantize(p.k, 4);
  LutMultiplier lut;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut.ScoreMatrix(q, k));
  }
}
BENCHMARK(BM_LutScoreMatrix)->Arg(128)->Arg(256);

void BM_StreamingTopK(benchmark::State& state) {
  Rng rng(7);
  const std::size_t n = 1024;
  std::vector<std::int32_t> row(n);
  for (auto& x : row) x = static_cast<std::int32_t>(rng.NextIndex(1u << 20));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopK(row, static_cast<std::size_t>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StreamingTopK)->Arg(10)->Arg(30)->Arg(100);

void BM_FusedScoreKernel(benchmark::State& state) {
  Rng rng(8);
  const auto q = rng.NormalMatrix(1, 64, 0.0, 1.0);
  const auto ks = rng.NormalMatrix(static_cast<std::size_t>(state.range(0)),
                                   64, 0.0, 1.0);
  FusedKernelConfig cfg;
  cfg.scale = 0.125f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FusedScoreKernel(q.row(0), ks, cfg));
  }
}
BENCHMARK(BM_FusedScoreKernel)->Arg(30)->Arg(128);

void BM_DenseAttention(benchmark::State& state) {
  const auto p = Problem(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DenseAttention(p.q, p.k, p.v));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DenseAttention)->Arg(128)->Arg(256)->Arg(512)->Complexity();

void BM_SparseAttentionTop30(benchmark::State& state) {
  const auto p = Problem(static_cast<std::size_t>(state.range(0)));
  SparseAttentionConfig cfg;
  cfg.top_k = 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SparseAttention(p.q, p.k, p.v, cfg));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SparseAttentionTop30)->Arg(128)->Arg(256)->Arg(512)->Complexity();

void BM_SparseAttentionWorkspace(benchmark::State& state) {
  const auto p = Problem(static_cast<std::size_t>(state.range(0)));
  SparseAttentionConfig cfg;
  cfg.top_k = 30;
  // Scratch persists across iterations, as it does across batch items on
  // a BatchRunner worker: zero steady-state allocations in stage 2.
  AttentionScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SparseAttention(p.q, p.k, p.v, cfg, nullptr, scratch));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SparseAttentionWorkspace)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Complexity();

void BM_FusedScoreKernelWorkspace(benchmark::State& state) {
  Rng rng(8);
  const auto q = rng.NormalMatrix(1, 64, 0.0, 1.0);
  const auto ks = rng.NormalMatrix(static_cast<std::size_t>(state.range(0)),
                                   64, 0.0, 1.0);
  FusedKernelConfig cfg;
  cfg.scale = 0.125f;
  FusedScoreResult out;
  for (auto _ : state) {
    FusedScoreKernel(q.row(0), ks, cfg, out);
    benchmark::DoNotOptimize(out.sum);
  }
}
BENCHMARK(BM_FusedScoreKernelWorkspace)->Arg(30)->Arg(128);

void BM_EncoderLayerDense(benchmark::State& state) {
  Rng rng(9);
  EncoderConfig cfg;
  cfg.hidden = 256;
  cfg.heads = 4;
  const auto w = MakeEncoderWeights(rng, cfg);
  const auto x = MakeInputEmbedding(rng, 128, cfg.hidden);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncoderForwardDense(x, w, cfg));
  }
}
BENCHMARK(BM_EncoderLayerDense);

void BM_PipelineSimulation(benchmark::State& state) {
  const auto ops =
      EncoderOps(BertBase().encoder, AttentionMode::kSparseTopK, 30);
  const auto models =
      BuildStageTimings(GroupByStageHint(ops), AlveoU280Slr0(), 177);
  std::vector<std::size_t> lens;
  for (std::size_t i = 0; i < 16; ++i) lens.push_back(400 - 20 * i);
  PipelineSimConfig cfg;
  cfg.layers = 12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulatePipeline(lens, models, cfg));
  }
}
BENCHMARK(BM_PipelineSimulation);

}  // namespace
}  // namespace latte

BENCHMARK_MAIN();
