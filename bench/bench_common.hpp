#pragma once
// Shared helpers for the table/figure reproduction binaries.

#include <cstdio>
#include <string>
#include <vector>

#include "latte/latte.hpp"

namespace latte::bench {

/// Deterministic batch of sequence lengths for a dataset.
inline std::vector<std::size_t> SampleBatch(const DatasetSpec& spec,
                                            std::size_t batch,
                                            std::uint64_t seed) {
  Rng rng(seed);
  LengthSampler sampler(spec);
  return sampler.SampleMany(rng, batch);
}

/// The four evaluation combos of Fig 7: (model, dataset).
struct EvalCombo {
  ModelConfig model;
  DatasetSpec dataset;
};

inline std::vector<EvalCombo> Fig7Combos() {
  return {
      {BertBase(), Squad()},
      {BertBase(), Rte()},
      {BertBase(), Mrpc()},
      {BertLarge(), Squad()},
  };
}

/// Latency of all five designs of Fig 7 on one batch.
struct CrossPlatformLatency {
  double cpu = 0, tx2 = 0, gpu = 0, fpga_base = 0, fpga_aware = 0;
  double cpu_attn = 0, tx2_attn = 0, gpu_attn = 0, fpga_base_attn = 0,
         fpga_aware_attn = 0;
};

inline CrossPlatformLatency MeasureAll(const ModelConfig& model,
                                       const DatasetSpec& dataset,
                                       const std::vector<std::size_t>& lens,
                                       std::size_t top_k = 30) {
  // CPU/GPU frameworks pad every sequence to the task maximum
  // (Section 5.2); so does the FPGA baseline without length-aware
  // scheduling.
  const auto pad_to = static_cast<std::size_t>(dataset.max_len);
  CrossPlatformLatency r;
  const auto cpu = RunPlatform(XeonGold5218(), model, lens,
                               BatchPolicy::kPadToMax, pad_to);
  const auto tx2 =
      RunPlatform(JetsonTx2(), model, lens, BatchPolicy::kPadToMax, pad_to);
  const auto gpu = RunPlatform(QuadroRtx6000(), model, lens,
                               BatchPolicy::kPadToMax, pad_to);
  AcceleratorConfig base;
  base.mode = FpgaMode::kBaseline;
  base.baseline_pad_to = pad_to;
  const auto fb = RunAccelerator(model, lens, base);
  AcceleratorConfig aware;
  aware.top_k = top_k;
  const auto fa = RunAccelerator(model, lens, aware);
  r.cpu = cpu.latency_s;
  r.tx2 = tx2.latency_s;
  r.gpu = gpu.latency_s;
  r.fpga_base = fb.latency_s;
  r.fpga_aware = fa.latency_s;
  r.cpu_attn = cpu.attention_latency_s;
  r.tx2_attn = tx2.attention_latency_s;
  r.gpu_attn = gpu.attention_latency_s;
  r.fpga_base_attn = fb.attention_latency_s;
  r.fpga_aware_attn = fa.attention_latency_s;
  return r;
}

}  // namespace latte::bench
