// Ablation: online serving with a Poisson request stream -- the deployment
// scenario the paper's introduction motivates (variable-length requests
// arriving continuously).  Compares the length-aware sparse design against
// the padded dense baseline across arrival rates and reports tail latency
// and device utilization.

#include <cstdio>

#include "bench_common.hpp"

using namespace latte;

int main() {
  std::printf("== Ablation: online serving (Poisson arrivals, batch former "
              "<=16, 20 ms flush) ==\n\n");

  const auto model = BertBase();
  const auto dataset = Rte();

  TextTable table({"arrival (req/s)", "design", "p50 (ms)", "p95 (ms)",
                   "p99 (ms)", "throughput (req/s)", "device busy"});
  for (double rate : {20.0, 60.0, 120.0}) {
    ServingConfig aware;
    aware.arrival_rate_rps = rate;
    aware.former.max_batch = 16;
    aware.requests = 256;
    ServingConfig base = aware;
    base.accel.mode = FpgaMode::kBaseline;
    base.accel.baseline_pad_to =
        static_cast<std::size_t>(dataset.max_len);

    const auto a = SimulateServing(model, dataset, aware);
    const auto b = SimulateServing(model, dataset, base);
    table.AddRow({Fmt(rate, 0), "FPGA length-aware (ours)",
                  Fmt(a.p50_latency_s * 1e3, 1),
                  Fmt(a.p95_latency_s * 1e3, 1),
                  Fmt(a.p99_latency_s * 1e3, 1),
                  Fmt(a.throughput_rps, 1),
                  Fmt(100 * a.device_busy_frac, 0) + "%"});
    table.AddRow({Fmt(rate, 0), "FPGA baseline (padded dense)",
                  Fmt(b.p50_latency_s * 1e3, 1),
                  Fmt(b.p95_latency_s * 1e3, 1),
                  Fmt(b.p99_latency_s * 1e3, 1),
                  Fmt(b.throughput_rps, 1),
                  Fmt(100 * b.device_busy_frac, 0) + "%"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("the padded baseline saturates first: padding burns device "
              "time, queues build, and tail latency diverges while the "
              "length-aware design still has headroom.\n");
  return 0;
}
