// Adaptive-serving benchmark: drives a load ramp (warmup -> 2x -> 4x peak
// -> cooldown) through the SLO-driven admission/degradation controller and
// through fixed-top-k baselines, and emits machine-readable JSON
// (BENCH_adaptive.json, or argv[1]) for the CI perf-smoke job.
//
// The headline the acceptance rides on: under the same overload and the
// same bounded queue, the adaptive engine holds p99 <= SLO with a strictly
// lower reject rate than every fixed-top-k baseline that meets the
// accuracy floor, while its request-weighted mean accuracy stays at or
// above that floor.  The cheap tiers' accuracies are not hand-waved: they
// come from the metrics/fidelity top_k -> output-cosine table sampled on
// the serving regime's sequence lengths.
//
// Determinism: the sweep cells are accounting-only (execute = false), so
// every number in the JSON is virtual-time arithmetic -- independent of
// wall clock and thread count.  A separate cell executes the functional
// datapath at 1 and 4 BatchRunner threads and checks the reports, tier
// assignments and output tensors are bit-identical, so the file itself is
// byte-identical however the host schedules it.  The model is
// attention-heavy (hidden 96 = 4 heads x 24, ffn 96) so top_k is a real
// latency lever; on FFN-dominated shapes like BERT-base the ladder would
// move latency by ~1% and the bench would measure nothing.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/json_writer.hpp"

namespace latte {
namespace {

/// The attention-heavy serving model: 4 layers, 4 heads of 24, ffn ==
/// hidden so self-attention dominates the accelerator's cost model.
ModelConfig AttnHeavyModel() {
  ModelConfig m;
  m.name = "attn-heavy";
  m.layers = 4;
  m.encoder.hidden = 96;
  m.encoder.heads = 4;
  m.encoder.ffn_dim = 96;
  return m;
}

/// Fidelity-grounded accuracy at `top_k`, quantized to 1e-4 so the gate's
/// exact comparisons survive libm-level drift between recording hosts.
double QuantizedAccuracy(const TierAccuracyTable& table, std::size_t top_k) {
  return std::round(AccuracyForTopK(table, top_k) * 1e4) / 1e4;
}

struct CellResult {
  std::string config;
  std::size_t top_k = 0;       ///< tier-0 / fixed top_k
  double accuracy = 1.0;       ///< modeled stream mean
  bool meets_floor = true;     ///< competes for the reject headline
  ServingResult res;
};

ServingEngineConfig BaseEngineConfig(const ModelConfig& accel_model,
                                     std::size_t top_k) {
  ServingEngineConfig cfg;
  cfg.former.max_batch = 8;
  cfg.former.timeout_s = 0.002;
  cfg.workers = 2;
  cfg.threads = 1;
  cfg.queue_capacity = 32;
  cfg.execute = false;
  cfg.inference.mode = InferenceMode::kSparseInt8;
  cfg.inference.sparse.top_k = top_k;
  ServiceModelSpec spec;
  spec.base = ServiceModelSpec::Base::kAccelerator;
  spec.model = accel_model;
  spec.accel.top_k = top_k;
  cfg.service = BuildServiceModel(spec);
  return cfg;
}

AdaptiveServingConfig Ladder(const TierAccuracyTable& table, double slo_s,
                             double floor) {
  AdaptiveServingConfig adapt;
  adapt.enabled = true;
  adapt.slo_p99_s = slo_s;
  adapt.accuracy_floor = floor;
  adapt.epoch_s = 0.001;
  adapt.queue_ref = 8;
  adapt.latency_window = 64;
  // Calibrated to this model + workload: the selector-margin distribution
  // at k = 32 has median ~0.012, so 0.0075 escalates only the ~5% most
  // uncertain first passes (the default 0.35 would escalate everything
  // and make the cheap tier cost double).
  adapt.escalate_margin = 0.0075;
  adapt.tiers = {{192, false, QuantizedAccuracy(table, 192)},
                 {96, false, QuantizedAccuracy(table, 96)},
                 {32, true, QuantizedAccuracy(table, 32)}};
  return adapt;
}

ServingEngineConfig AdaptiveEngine(const ModelConfig& accel_model,
                                   const AdaptiveServingConfig& adapt) {
  ServingEngineConfig cfg = BaseEngineConfig(accel_model, adapt.tiers[0].top_k);
  cfg.adapt = adapt;
  ServiceModelSpec spec;
  spec.base = ServiceModelSpec::Base::kAccelerator;
  spec.model = accel_model;
  spec.accel.top_k = adapt.tiers[0].top_k;
  cfg.tier_services = BuildTierServiceModels(spec, adapt.tiers);
  return cfg;
}

}  // namespace
}  // namespace latte

int main(int argc, char** argv) {
  using namespace latte;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_adaptive.json";

  const auto dataset = Squad();
  const ModelConfig accel_model = AttnHeavyModel();
  const double slo_s = 0.008;
  const double floor = 0.90;

  // Ground the ladder's accuracies in the fidelity model at this model's
  // head width, over the serving regime's sequence lengths.
  TierAccuracyTableConfig table_cfg;
  table_cfg.workload = WorkloadForDataset(dataset);
  table_cfg.workload.head_dim = accel_model.encoder.head_dim();
  const TierAccuracyTable table =
      BuildTopKAccuracyTable(table_cfg, {16, 32, 64, 96, 192});
  const AdaptiveServingConfig adapt = Ladder(table, slo_s, floor);

  // The load ramp: warmup -> 2x -> 4x peak -> cooldown.  Peak is far past
  // what the full-quality tier can serve, so a fixed-192 engine must shed
  // while the ladder still has headroom at k = 32.
  RampTraceConfig ramp;
  ramp.stages = {{8000, 96}, {18000, 128}, {30000, 512}, {4000, 96}};
  ramp.seed = 7;
  const auto trace = GenerateRampTrace(ramp, dataset);

  // One functional instance for every engine (engines keep a reference).
  const ModelInstance func_model(accel_model, 2022);

  std::vector<CellResult> cells;
  {
    CellResult cell;
    cell.config = "adaptive";
    cell.top_k = adapt.tiers[0].top_k;
    ServingEngine engine(func_model, AdaptiveEngine(accel_model, adapt));
    cell.res = engine.Replay(trace);
    cell.accuracy = cell.res.report().mean_accuracy;
    cells.push_back(std::move(cell));
  }
  for (std::size_t k : {std::size_t{192}, std::size_t{96}, std::size_t{32}}) {
    CellResult cell;
    cell.config = "fixed-" + std::to_string(k);
    cell.top_k = k;
    cell.accuracy = QuantizedAccuracy(table, k);
    // A fixed engine serves every request at its one top_k, so its stream
    // accuracy is the tier constant; below the floor it is reported for
    // the frontier but does not compete for the reject headline.
    cell.meets_floor = cell.accuracy >= floor;
    ServingEngine engine(func_model, BaseEngineConfig(accel_model, k));
    cell.res = engine.Replay(trace);
    cells.push_back(std::move(cell));
  }

  // Determinism cell: the functional datapath across BatchRunner thread
  // counts.  Bit-identical reports, tier assignments and output tensors
  // are the adaptive layer's core contract (virtual-time control only).
  bool thread_identical = true;
  std::size_t det_degraded = 0, det_escalated = 0;
  {
    RampTraceConfig det_ramp;
    det_ramp.stages = {{12000, 32}, {40000, 96}, {4000, 24}};
    det_ramp.seed = 11;
    const auto det_trace = GenerateRampTrace(det_ramp, dataset);
    ServingResult reference;
    for (std::size_t threads : {1u, 4u}) {
      ServingEngineConfig cfg = AdaptiveEngine(accel_model, adapt);
      cfg.execute = true;
      cfg.threads = threads;
      ServingEngine engine(func_model, cfg);
      ServingResult res = engine.Replay(det_trace);
      if (threads == 1) {
        reference = std::move(res);
        continue;
      }
      thread_identical =
          res.request_tiers == reference.request_tiers &&
          res.superseded == reference.superseded &&
          res.batches.size() == reference.batches.size() &&
          res.report().p99_latency_s == reference.report().p99_latency_s &&
          res.report().mean_accuracy == reference.report().mean_accuracy &&
          res.outputs.size() == reference.outputs.size();
      for (std::size_t i = 0; thread_identical && i < res.outputs.size(); ++i) {
        thread_identical = res.outputs[i] == reference.outputs[i];
      }
    }
    for (std::size_t t = 1; t < reference.report().tiers.size(); ++t) {
      det_degraded += reference.report().tiers[t].requests;
    }
    for (const TierUsage& tier : reference.report().tiers) {
      det_escalated += tier.escalated;
    }
  }

  // Headline checks.
  const CellResult& adaptive = cells[0];
  const double adaptive_reject_rate =
      static_cast<double>(adaptive.res.admission.rejected) /
      static_cast<double>(adaptive.res.admission.offered);
  const bool p99_within_slo = adaptive.res.report().p99_latency_s <= slo_s;
  const bool accuracy_above_floor = adaptive.accuracy >= floor;
  bool lower_reject_than_baselines = true;
  for (std::size_t i = 1; i < cells.size(); ++i) {
    if (!cells[i].meets_floor) continue;
    if (adaptive.res.admission.rejected >= cells[i].res.admission.rejected) {
      lower_reject_than_baselines = false;
    }
  }
  const bool headline = p99_within_slo && accuracy_above_floor &&
                        lower_reject_than_baselines && thread_identical &&
                        det_degraded > 0;

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("adaptive");
  json.Key("schema_version").Value(std::size_t{1});
  obs::StampHost(json);
  json.Key("dataset").Value(dataset.name);
  json.Key("accel_model").Value(accel_model.name);
  json.Key("slo_ms").Value(slo_s * 1e3);
  json.Key("accuracy_floor").Value(floor);
  json.Key("queue_capacity").Value(std::size_t{32});
  json.Key("ramp");
  json.BeginArray();
  for (const RampStage& stage : ramp.stages) {
    json.BeginObject();
    json.Key("arrival_rps").Value(stage.arrival_rate_rps);
    json.Key("requests").Value(stage.requests);
    json.EndObject();
  }
  json.EndArray();
  json.Key("ladder");
  json.BeginArray();
  for (const ServiceTier& tier : adapt.tiers) {
    json.BeginObject();
    json.Key("top_k").Value(tier.top_k);
    json.Key("escalate").Value(tier.escalate);
    json.Key("accuracy").Value(tier.accuracy);
    json.EndObject();
  }
  json.EndArray();
  json.Key("results");
  json.BeginArray();

  TextTable frontier({"config", "top_k", "accuracy", "p99 (ms)", "rejected",
                      "reject rate", "throughput (req/s)", "floor"});
  for (const CellResult& cell : cells) {
    const ServingReport& rep = cell.res.report();
    const AdmissionStats& adm = cell.res.admission;
    const double reject_rate = static_cast<double>(adm.rejected) /
                               static_cast<double>(adm.offered);
    json.BeginObject();
    json.Key("config").Value(cell.config);
    json.Key("top_k").Value(cell.top_k);
    json.Key("requests").Value(adm.offered);
    json.Key("accepted").Value(adm.accepted);
    json.Key("rejected").Value(adm.rejected);
    json.Key("reject_rate").Value(reject_rate);
    json.Key("peak_queue").Value(adm.peak_queue);
    json.Key("batches").Value(rep.batches);
    json.Key("p50_ms").Value(rep.p50_latency_s * 1e3);
    json.Key("p95_ms").Value(rep.p95_latency_s * 1e3);
    json.Key("p99_ms").Value(rep.p99_latency_s * 1e3);
    json.Key("throughput_rps").Value(rep.throughput_rps);
    json.Key("mean_accuracy").Value(cell.accuracy);
    json.Key("meets_floor").Value(cell.meets_floor);
    if (!rep.tiers.empty()) {
      json.Key("tiers");
      json.BeginArray();
      for (const TierUsage& tier : rep.tiers) {
        json.BeginObject();
        json.Key("top_k").Value(tier.top_k);
        json.Key("requests").Value(tier.requests);
        json.Key("batches").Value(tier.batches);
        json.Key("escalated").Value(tier.escalated);
        json.EndObject();
      }
      json.EndArray();
    }
    json.EndObject();
    frontier.AddRow({cell.config, std::to_string(cell.top_k),
                     Fmt(cell.accuracy, 4), Fmt(rep.p99_latency_s * 1e3, 1),
                     std::to_string(adm.rejected), Fmt(reject_rate, 3),
                     Fmt(rep.throughput_rps, 0),
                     cell.meets_floor ? "yes" : "below"});
  }
  json.EndArray();
  json.Key("determinism");
  json.BeginObject();
  json.Key("threads_compared");
  json.BeginArray();
  json.Value(std::size_t{1});
  json.Value(std::size_t{4});
  json.EndArray();
  json.Key("bit_identical").Value(thread_identical);
  json.Key("degraded_requests").Value(det_degraded);
  json.Key("escalated_requests").Value(det_escalated);
  json.EndObject();
  json.Key("headline");
  json.BeginObject();
  json.Key("p99_within_slo").Value(p99_within_slo);
  json.Key("accuracy_above_floor").Value(accuracy_above_floor);
  json.Key("lower_reject_than_baselines").Value(lower_reject_than_baselines);
  json.Key("adaptive_beats_fixed").Value(headline);
  json.EndObject();
  json.EndObject();

  std::printf("== Adaptive serving: load ramp vs fixed-top-k baselines ==\n\n");
  std::printf("%s\n", frontier.Render().c_str());
  std::printf(
      "adaptive: p99 %.1f ms (SLO %.0f ms), reject rate %.3f, mean accuracy "
      "%.4f (floor %.2f)\n",
      adaptive.res.report().p99_latency_s * 1e3, slo_s * 1e3,
      adaptive_reject_rate, adaptive.accuracy, floor);
  std::printf("determinism (threads 1 vs 4): %s, %zu degraded, %zu escalated\n",
              thread_identical ? "bit-identical" : "MISMATCH", det_degraded,
              det_escalated);
  std::printf("headline (adaptive beats fixed): %s\n",
              headline ? "PASS" : "FAIL");
  if (!json.WriteFile(out_path)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return headline ? 0 : 1;
}
