// Batched execution runtime benchmarks.
//
// Two questions the runtime PR must answer with numbers:
//   1. What does workspace reuse buy on the sparse attention hot path,
//      versus the seed's per-query-row heap allocations?  (1 thread)
//   2. How does BatchRunner throughput scale with worker count on a batch
//      of variable-length sequences?  (1 vs 2 vs 4 threads; on a 1-core
//      host the scaling numbers measure scheduling overhead, not speedup)
//
// Plain chrono timing, deterministic inputs, prints a small table and
// emits machine-readable JSON (BENCH_runtime.json, or argv[1]) for the CI
// perf-smoke job.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/json_writer.hpp"
#include "latte/latte.hpp"

namespace latte {
namespace {

using Clock = std::chrono::steady_clock;

// Optimization barrier: published results are never elided.
volatile float g_sink = 0;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// The seed's stage-2 loop: a fresh heap-allocated gather block, score
// vector and context row for every query row (what SparseAttention did
// before the workspace refactor).
MatrixF SparseStage2PerRowAlloc(const MatrixF& q, const MatrixF& k,
                                const MatrixF& v, const SelectionResult& sel,
                                const FusedKernelConfig& fk) {
  MatrixF out(q.rows(), v.cols());
  for (std::size_t i = 0; i < q.rows(); ++i) {
    MatrixF ks, vs;  // fresh allocations per row, as in the seed
    GatherRowsInto(k, sel.candidates[i], ks);
    GatherRowsInto(v, sel.candidates[i], vs);
    const FusedScoreResult fs = FusedScoreKernel(q.row(i), ks, fk);
    const std::vector<float> z = WeightedContext(fs, vs);
    auto dst = out.row(i);
    for (std::size_t c = 0; c < z.size(); ++c) dst[c] = z[c];
  }
  return out;
}

MatrixF SparseStage2Workspace(const MatrixF& q, const MatrixF& k,
                              const MatrixF& v, const SelectionResult& sel,
                              const FusedKernelConfig& fk,
                              AttentionScratch& scratch) {
  MatrixF out(q.rows(), v.cols());
  scratch.ReserveContext(v.cols());
  const std::span<float> z(scratch.ctx.data(), v.cols());
  for (std::size_t i = 0; i < q.rows(); ++i) {
    GatherRowsInto(k, sel.candidates[i], scratch.ks);
    GatherRowsInto(v, sel.candidates[i], scratch.vs);
    FusedScoreKernel(q.row(i), scratch.ks, fk, scratch.scores);
    WeightedContext(scratch.scores, scratch.vs, z);
    auto dst = out.row(i);
    for (std::size_t c = 0; c < z.size(); ++c) dst[c] = z[c];
  }
  return out;
}

struct WorkspaceBenchResult {
  double alloc_ms = 0;
  double workspace_ms = 0;
  double speedup = 0;
};

WorkspaceBenchResult BenchWorkspaceVsPerRowAlloc() {
  Rng rng(42);
  AttentionWorkloadConfig wl;
  wl.head_dim = 64;
  const std::size_t n = 512;
  const auto p = GenerateAttentionProblem(rng, n, wl);

  SelectorConfig sel_cfg;
  sel_cfg.top_k = 30;
  const SelectionResult sel = SelectCandidates(p.q, p.k, sel_cfg);
  FusedKernelConfig fk;
  fk.scale = 0.125f;

  const int reps = 40;
  // Warm up both paths (page in, grow the scratch to steady state).
  AttentionScratch scratch;
  float sink = 0;
  sink += SparseStage2PerRowAlloc(p.q, p.k, p.v, sel, fk)(0, 0);
  sink += SparseStage2Workspace(p.q, p.k, p.v, sel, fk, scratch)(0, 0);

  auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    sink += SparseStage2PerRowAlloc(p.q, p.k, p.v, sel, fk)(0, 0);
  }
  const double alloc_s = SecondsSince(t0) / reps;

  t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    sink += SparseStage2Workspace(p.q, p.k, p.v, sel, fk, scratch)(0, 0);
  }
  const double ws_s = SecondsSince(t0) / reps;
  g_sink = sink;

  std::printf("== sparse attention stage 2, n=%zu top_k=%zu d=%zu ==\n", n,
              sel_cfg.top_k, p.q.cols());
  std::printf("  per-row alloc : %8.3f ms/call\n", alloc_s * 1e3);
  std::printf("  workspace     : %8.3f ms/call\n", ws_s * 1e3);
  std::printf("  speedup       : %8.2fx\n\n", alloc_s / ws_s);
  return {alloc_s * 1e3, ws_s * 1e3, alloc_s / ws_s};
}

struct ScalingPoint {
  std::size_t threads = 0;
  double ms_per_batch = 0;
  double tokens_per_s = 0;
  double speedup = 0;
};

std::vector<ScalingPoint> BenchBatchRunnerScaling() {
  const ModelConfig small = ScaledDown(BertBase(), 4);
  const ModelInstance model(small, 2022);
  InferenceConfig inf;
  inf.mode = InferenceMode::kSparseInt8;
  inf.sparse.top_k = 30;

  // A batch of variable-length sequences shaped like MRPC.
  Rng rng(7);
  LengthSampler sampler(Mrpc());
  const std::size_t batch = 16;
  std::vector<MatrixF> xs;
  std::vector<std::size_t> lengths;
  std::size_t tokens = 0;
  for (std::size_t i = 0; i < batch; ++i) {
    const std::size_t len = sampler.Sample(rng);
    lengths.push_back(len);
    tokens += len;
    xs.push_back(MakeInputEmbedding(rng, len, small.encoder.hidden));
  }

  std::printf("== BatchRunner: %zu seqs, %zu tokens, model %s ==\n", batch,
              tokens, small.name.c_str());
  const auto shards = ShardByTokens(lengths, 4);
  std::printf("  LPT 4-shard token balance:");
  for (const auto& s : shards) {
    std::size_t t = 0;
    for (std::size_t idx : s) t += lengths[idx];
    std::printf(" %zu", t);
  }
  std::printf("\n");

  std::vector<ScalingPoint> points;
  double base_s = 0;
  for (std::size_t threads : {1u, 2u, 4u}) {
    BatchRunner runner(threads);
    // Warm-up grows each worker's workspace to steady state.
    g_sink = model.ForwardBatch(xs, inf, runner)[0](0, 0);
    const int reps = 3;
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) model.ForwardBatch(xs, inf, runner);
    const double per_batch = SecondsSince(t0) / reps;
    if (threads == 1) base_s = per_batch;
    std::printf(
        "  threads=%zu : %8.3f ms/batch  %8.0f tokens/s  speedup %5.2fx\n",
        threads, per_batch * 1e3, tokens / per_batch, base_s / per_batch);
    points.push_back({threads, per_batch * 1e3,
                      static_cast<double>(tokens) / per_batch,
                      base_s / per_batch});
  }
  return points;
}

}  // namespace
}  // namespace latte

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_runtime.json";
  const auto workspace = latte::BenchWorkspaceVsPerRowAlloc();
  const auto scaling = latte::BenchBatchRunnerScaling();

  latte::obs::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("runtime");
  json.Key("schema_version").Value(std::size_t{1});
  StampHost(json);
  json.Key("workspace");
  json.BeginObject();
  json.Key("alloc_ms").Value(workspace.alloc_ms);
  json.Key("workspace_ms").Value(workspace.workspace_ms);
  json.Key("speedup").Value(workspace.speedup);
  json.EndObject();
  json.Key("scaling");
  json.BeginArray();
  for (const auto& p : scaling) {
    json.BeginObject();
    json.Key("threads").Value(p.threads);
    json.Key("ms_per_batch").Value(p.ms_per_batch);
    json.Key("tokens_per_s").Value(p.tokens_per_s);
    json.Key("speedup").Value(p.speedup);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (!json.WriteFile(out_path)) return 1;
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
