// Simulated-annealing design-space search benchmark: anneals over the
// unified DesignPoint space and races the winner against every
// hand-tuned bench_cluster fleet shape on the same popularity-skewed
// trace, in the same accounting-only harness.  Emits machine-readable
// JSON (BENCH_search.json, or argv[1]) for the CI perf-gate job.
//
// Everything is deterministic: the evaluator replays a fixed Zipf trace
// through the byte-deterministic cluster twin, and the SA chains are
// seeded walks merged in chain order -- the recorded winner reproduces
// bit-for-bit on any host at any thread count.  The headline the gate
// watches: the SA design must match or beat the best hand-tuned baseline
// on p99 at the shared offered load, and no baseline may Pareto-dominate
// it on (p99, throughput, energy).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/json_writer.hpp"

namespace latte {
namespace {

using search::AnnealingConfig;
using search::AnnealSearch;
using search::BackendSlots;
using search::DesignEvaluator;
using search::DesignPoint;
using search::DesignScore;
using search::DesignSpace;
using search::Dominates;
using search::EvaluatorConfig;
using search::ParetoEntry;
using search::ReplicaDesign;
using search::SearchResult;
using search::WriteDesignPointJson;

struct Baseline {
  std::string name;
  DesignPoint point;
  DesignScore score;
};

/// The hand-tuned bench_cluster fleet shapes as DesignPoints: fleets of
/// 2 and 4 behind the four load-balancing policies, 8-deep 50 ms batch
/// formers, one worker per replica, no cache.
std::vector<Baseline> MakeBaselines() {
  const std::vector<std::size_t> fleets = {2, 4};
  const std::vector<RouterPolicy> policies = {
      RouterPolicy::kRoundRobin, RouterPolicy::kJoinShortestQueue,
      RouterPolicy::kLeastOutstandingTokens, RouterPolicy::kLengthBucketed};
  std::vector<Baseline> baselines;
  for (const std::size_t fleet : fleets) {
    for (const RouterPolicy policy : policies) {
      Baseline b;
      b.name = std::to_string(fleet) + "x " + RouterPolicyName(policy);
      for (std::size_t i = 0; i < fleet; ++i) {
        ReplicaDesign rd;
        rd.former.max_batch = 8;
        rd.former.timeout_s = 0.05;
        rd.workers = 1;
        rd.top_k = 30;
        b.point.replicas.push_back(rd);
      }
      b.point.router.policy = policy;
      if (policy == RouterPolicy::kLengthBucketed) {
        b.point.router.length_edges =
            fleet >= 4 ? std::vector<std::size_t>{105, 152, 219}
                       : std::vector<std::size_t>{152};
      }
      baselines.push_back(std::move(b));
    }
  }
  return baselines;
}

void WriteScore(obs::JsonWriter& json, const DesignScore& s) {
  json.Key("p99_ms").Value(s.p99_s * 1e3);
  json.Key("throughput_rps").Value(s.throughput_rps);
  json.Key("energy_j").Value(s.energy_j);
  json.Key("cost").Value(s.cost);
  json.Key("completed").Value(s.completed);
  json.Key("rejected").Value(s.rejected);
}

std::string DesignSummary(const DesignPoint& dp) {
  std::string out = std::to_string(dp.replicas.size()) + " replicas";
  for (const ReplicaDesign& rd : dp.replicas) {
    out += rd.backend == BackendMode::kSharded
               ? " [x" + std::to_string(rd.shard.degree) + " gang]"
               : " [b" + std::to_string(rd.former.max_batch) + "]";
  }
  return out;
}

}  // namespace
}  // namespace latte

int main(int argc, char** argv) {
  using namespace latte;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_search.json";

  const EvaluatorConfig harness;
  const DesignEvaluator evaluator(harness);
  const DesignSpace space;

  std::vector<Baseline> baselines = MakeBaselines();
  const Baseline* best_baseline = nullptr;       // by scalar cost
  const Baseline* best_baseline_p99 = nullptr;   // by p99 alone
  for (Baseline& b : baselines) {
    b.score = evaluator.Evaluate(b.point);
    if (!b.score.valid) {
      std::fprintf(stderr, "baseline %s failed to evaluate\n",
                   b.name.c_str());
      return 1;
    }
    if (best_baseline == nullptr || b.score.cost < best_baseline->score.cost) {
      best_baseline = &b;
    }
    if (best_baseline_p99 == nullptr ||
        b.score.p99_s < best_baseline_p99->score.p99_s) {
      best_baseline_p99 = &b;
    }
  }

  AnnealingConfig sa;
  sa.chains = 4;
  sa.steps = 150;
  sa.seed = 1;
  const SearchResult result = AnnealSearch(space, evaluator, sa);
  if (!result.best_score.valid) {
    std::fprintf(stderr, "annealing found no valid design\n");
    return 1;
  }

  bool dominated = false;
  for (const Baseline& b : baselines) {
    dominated = dominated || Dominates(b.score, result.best_score);
  }
  const bool beats_p99 =
      result.best_score.p99_s <= best_baseline_p99->score.p99_s;
  const bool beats_cost = result.best_score.cost <= best_baseline->score.cost;
  const bool headline = beats_p99 && beats_cost && !dominated;

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("search");
  json.Key("schema_version").Value(std::size_t{1});
  obs::StampHost(json);
  json.Key("trace").BeginObject();
  json.Key("arrival_rps").Value(harness.trace.arrival_rate_rps);
  json.Key("requests").Value(harness.trace.requests);
  json.Key("population").Value(harness.trace.population);
  json.Key("skew").Value(harness.trace.skew);
  json.Key("seed").Value(harness.trace.seed);
  json.Key("duplicate_rate").Value(TraceDuplicateRate(evaluator.trace()));
  json.EndObject();
  json.Key("space").BeginObject();
  json.Key("max_replicas").Value(space.max_replicas);
  json.Key("max_backend_slots").Value(space.max_backend_slots);
  json.EndObject();
  json.Key("sa").BeginObject();
  json.Key("chains").Value(sa.chains);
  json.Key("steps").Value(sa.steps);
  json.Key("cooling").Value(sa.cooling);
  json.Key("seed").Value(sa.seed);
  json.Key("evaluations").Value(result.evaluations);
  json.EndObject();

  json.Key("baselines").BeginArray();
  for (const Baseline& b : baselines) {
    json.BeginObject();
    json.Key("name").Value(b.name);
    json.Key("replicas").Value(b.point.replicas.size());
    WriteScore(json, b.score);
    json.EndObject();
  }
  json.EndArray();

  json.Key("winner").BeginObject();
  json.Key("replicas").Value(result.best.replicas.size());
  json.Key("backend_slots").Value(BackendSlots(result.best));
  json.Key("policy").Value(RouterPolicyName(result.best.router.policy));
  json.Key("cache_mode").Value(ClusterCacheModeName(result.best.cache_mode));
  json.Key("chain").Value(result.best_chain);
  WriteScore(json, result.best_score);
  json.Key("design");
  WriteDesignPointJson(json, result.best);
  json.EndObject();

  json.Key("pareto").BeginArray();
  for (const ParetoEntry& entry : result.pareto) {
    json.BeginObject();
    json.Key("replicas").Value(entry.point.replicas.size());
    json.Key("backend_slots").Value(BackendSlots(entry.point));
    json.Key("policy").Value(RouterPolicyName(entry.point.router.policy));
    json.Key("cache_mode")
        .Value(ClusterCacheModeName(entry.point.cache_mode));
    WriteScore(json, entry.score);
    json.Key("design");
    WriteDesignPointJson(json, entry.point);
    json.EndObject();
  }
  json.EndArray();

  json.Key("chains").BeginArray();
  for (const search::ChainStats& chain : result.chains) {
    json.BeginObject();
    json.Key("chain").Value(chain.chain);
    json.Key("proposed").Value(chain.proposed);
    json.Key("invalid").Value(chain.invalid);
    json.Key("accepted").Value(chain.accepted);
    json.Key("uphill").Value(chain.uphill);
    json.Key("best_cost").Value(chain.best_cost);
    json.EndObject();
  }
  json.EndArray();

  json.Key("headline").BeginObject();
  json.Key("best_baseline").Value(best_baseline->name);
  json.Key("best_baseline_p99_ms")
      .Value(best_baseline_p99->score.p99_s * 1e3);
  json.Key("best_baseline_cost").Value(best_baseline->score.cost);
  json.Key("sa_p99_ms").Value(result.best_score.p99_s * 1e3);
  json.Key("sa_cost").Value(result.best_score.cost);
  json.Key("p99_speedup")
      .Value(best_baseline_p99->score.p99_s / result.best_score.p99_s);
  json.Key("sa_beats_best_baseline").Value(headline);
  json.EndObject();
  json.EndObject();

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.str().c_str(), f);
  std::fclose(f);

  std::printf("== SA design-space search vs hand-tuned baselines ==\n\n");
  TextTable table({"design", "p99 (ms)", "throughput (req/s)", "energy (J)",
                   "cost", "rejected"});
  for (const Baseline& b : baselines) {
    table.AddRow({b.name, Fmt(b.score.p99_s * 1e3, 1),
                  Fmt(b.score.throughput_rps, 1), Fmt(b.score.energy_j, 1),
                  Fmt(b.score.cost, 3), std::to_string(b.score.rejected)});
  }
  table.AddRow({"SA winner", Fmt(result.best_score.p99_s * 1e3, 1),
                Fmt(result.best_score.throughput_rps, 1),
                Fmt(result.best_score.energy_j, 1),
                Fmt(result.best_score.cost, 3),
                std::to_string(result.best_score.rejected)});
  std::printf("%s\n", table.Render().c_str());
  std::printf("winner: %s, %s routing, %s cache\n",
              DesignSummary(result.best).c_str(),
              RouterPolicyName(result.best.router.policy),
              ClusterCacheModeName(result.best.cache_mode));

  std::printf("\nPareto front (p99 / throughput / energy):\n");
  TextTable pareto({"replicas", "slots", "policy", "cache", "p99 (ms)",
                    "throughput (req/s)", "energy (J)"});
  for (const ParetoEntry& entry : result.pareto) {
    pareto.AddRow({std::to_string(entry.point.replicas.size()),
                   std::to_string(BackendSlots(entry.point)),
                   RouterPolicyName(entry.point.router.policy),
                   ClusterCacheModeName(entry.point.cache_mode),
                   Fmt(entry.score.p99_s * 1e3, 1),
                   Fmt(entry.score.throughput_rps, 1),
                   Fmt(entry.score.energy_j, 1)});
  }
  std::printf("%s\n", pareto.Render().c_str());

  std::printf(
      "headline: SA p99 %.1f ms vs best baseline %.1f ms (%s), cost %.3g vs "
      "%.3g -- %s\n",
      result.best_score.p99_s * 1e3, best_baseline_p99->score.p99_s * 1e3,
      best_baseline_p99->name.c_str(), result.best_score.cost,
      best_baseline->score.cost,
      headline ? "SA BEATS OR TIES" : "SA LOSES");
  if (!headline) {
    std::fprintf(stderr,
                 "FAIL: SA winner does not beat the hand-tuned baselines "
                 "(p99 %s, cost %s, dominated %s)\n",
                 beats_p99 ? "ok" : "worse", beats_cost ? "ok" : "worse",
                 dominated ? "yes" : "no");
    return 1;
  }
  return 0;
}
