// Reproduces Fig 7(b): cross-platform throughput of the self-attention
// computation (score..context, the O(n^2) part sparse attention linearizes).
//
// Paper geomeans for the FPGA sparse-attention hardware: 1073x (CPU),
// 550x (TX2), 35x (RTX 6000), 41x (FPGA baseline).

#include <cstdio>

#include "bench_common.hpp"

using namespace latte;
using namespace latte::bench;

int main() {
  std::printf("== Fig 7(b): cross-platform attention throughput ==\n");
  std::printf("(self-attention score..context computation only, batch 16, "
              "Top-30; speedup normalized to CPU)\n\n");

  TextTable table({"Model / task", "CPU", "Jetson TX2", "RTX 6000",
                   "FPGA baseline", "FPGA sparse attention"});
  std::vector<double> g_cpu, g_tx2, g_gpu, g_base;
  std::uint64_t seed = 42;  // same batches as fig7a
  for (const auto& combo : Fig7Combos()) {
    const auto lens = SampleBatch(combo.dataset, 16, seed++);
    const auto lat = MeasureAll(combo.model, combo.dataset, lens);
    table.AddRow({combo.model.name + " " + combo.dataset.name, FmtX(1.0),
                  FmtX(lat.cpu_attn / lat.tx2_attn),
                  FmtX(lat.cpu_attn / lat.gpu_attn),
                  FmtX(lat.cpu_attn / lat.fpga_base_attn),
                  FmtX(lat.cpu_attn / lat.fpga_aware_attn)});
    g_cpu.push_back(lat.cpu_attn / lat.fpga_aware_attn);
    g_tx2.push_back(lat.tx2_attn / lat.fpga_aware_attn);
    g_gpu.push_back(lat.gpu_attn / lat.fpga_aware_attn);
    g_base.push_back(lat.fpga_base_attn / lat.fpga_aware_attn);
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("geomean speedup of FPGA sparse attention vs:\n");
  std::printf("  CPU           : %7.1fx   (paper: 1073x)\n", GeoMean(g_cpu));
  std::printf("  Jetson TX2    : %7.1fx   (paper:  550x)\n", GeoMean(g_tx2));
  std::printf("  RTX 6000      : %7.1fx   (paper:   35x)\n", GeoMean(g_gpu));
  std::printf("  FPGA baseline : %7.1fx   (paper:   41x)\n", GeoMean(g_base));
  return 0;
}
