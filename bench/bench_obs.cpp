// Observability benchmark: the cost and the contracts of the tracing
// layer, emitted as machine-readable JSON (BENCH_obs.json, or argv[1])
// plus a Chrome trace artifact (TRACE_obs.json, or argv[2]) for the CI
// perf-smoke job.
//
// Four cells:
//   * sweep      -- traced serving runs (execute=true) across arrival
//                   rates; the counts (requests, batches, trace events)
//                   are trace-driven and gate exactly against the
//                   recorded baseline.
//   * overhead   -- best-of-N wall clock of the same replay with tracing
//                   off vs on.  The disabled path is one pointer check
//                   per site, the enabled path a bounded in-memory append
//                   per event; the headline bit gates overhead < 3%.
//   * bit_exact  -- tracing on changes nothing: outputs and the
//                   virtual-time report are bit-identical vs untraced.
//   * determinism-- the exported Chrome trace, metrics snapshot, latency
//                   breakdown and flame file are byte-identical at 1 and
//                   4 runner threads, and a tiny ring buffer accounts
//                   every dropped event exactly.
//   * breakdown  -- per-request latency attribution (obs/analyze): every
//                   request's stage segments tile its end-to-end latency
//                   gap-free, the breakdown percentiles match the pooled
//                   report bitwise, and the artifacts (BREAKDOWN_obs.json,
//                   FLAME_obs.txt) gate against recorded baselines.
//   * capture    -- .lattetrace round-trip (workload/trace_io): the bench
//                   load serializes, reloads and replays bit-exactly, and
//                   the canonical capture under bench/traces/ still
//                   matches the generator.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "obs/analyze.hpp"
#include "obs/json_writer.hpp"
#include "workload/trace_io.hpp"

namespace latte {
namespace {

ServingEngineConfig ObsEngineConfig(std::size_t threads, bool traced) {
  ServingEngineConfig cfg;
  cfg.former.max_batch = 8;
  cfg.former.timeout_s = 0.02;
  cfg.workers = 2;
  cfg.threads = threads;
  cfg.inference.mode = InferenceMode::kSparseInt8;
  cfg.inference.sparse.top_k = 30;
  cfg.trace.enabled = traced;
  return cfg;
}

std::vector<TimedRequest> ObsTrace(double rate, std::size_t requests) {
  PoissonTraceConfig cfg;
  cfg.arrival_rate_rps = rate;
  cfg.requests = requests;
  cfg.seed = 7;
  return GeneratePoissonTrace(cfg, Mrpc());
}

double ReplayWallSeconds(const ModelInstance& model,
                         const ServingEngineConfig& cfg,
                         const std::vector<TimedRequest>& trace) {
  ServingEngine engine(model, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const ServingResult res = engine.Replay(trace);
  const auto t1 = std::chrono::steady_clock::now();
  (void)res;
  return std::chrono::duration<double>(t1 - t0).count();
}

bool SameOutputs(const ServingResult& a, const ServingResult& b) {
  if (a.outputs.size() != b.outputs.size()) return false;
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    if (a.outputs[i].rows() != b.outputs[i].rows() ||
        a.outputs[i].cols() != b.outputs[i].cols()) {
      return false;
    }
    for (std::size_t r = 0; r < a.outputs[i].rows(); ++r) {
      for (std::size_t c = 0; c < a.outputs[i].cols(); ++c) {
        if (a.outputs[i](r, c) != b.outputs[i](r, c)) return false;
      }
    }
  }
  return true;
}

bool SameReport(const ServingReport& a, const ServingReport& b) {
  return a.requests == b.requests && a.batches == b.batches &&
         a.mean_latency_s == b.mean_latency_s &&
         a.p50_latency_s == b.p50_latency_s &&
         a.p95_latency_s == b.p95_latency_s &&
         a.p99_latency_s == b.p99_latency_s &&
         a.throughput_rps == b.throughput_rps &&
         a.device_busy_frac == b.device_busy_frac;
}

std::string MetricsSnapshot(const ServingEngine& engine,
                            const ServingResult& res) {
  obs::MetricsRegistry reg;
  obs::ExportServingReport(res.report(), "serve", reg);
  obs::ExportAdmissionStats(res.admission, "serve.admission", reg);
  obs::ExportTracerStats(*engine.tracer(), "serve.trace", reg);
  return reg.ToJson();
}

}  // namespace
}  // namespace latte

int main(int argc, char** argv) {
  using namespace latte;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_obs.json";
  const std::string trace_path = argc > 2 ? argv[2] : "TRACE_obs.json";
  const std::string breakdown_path =
      argc > 3 ? argv[3] : "BREAKDOWN_obs.json";
  const std::string flame_path = argc > 4 ? argv[4] : "FLAME_obs.txt";
  // The canonical capture, committed with the repo; CI runs from the
  // repo root so the path resolves.
  const std::string lattetrace_path =
      argc > 5 ? argv[5] : "bench/traces/obs_load.lattetrace";

  const ModelConfig func_model = ScaledDown(BertBase(), 6);
  const ModelInstance model(func_model, 2022);
  const std::size_t requests = 64;

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("obs");
  json.Key("schema_version").Value(std::size_t{1});
  obs::StampHost(json);
  json.Key("functional_model").Value(func_model.name);
  json.Key("requests").Value(requests);
  json.Key("workers").Value(std::size_t{2});

  // ------------------------------------------------- traced serving sweep --
  json.Key("results");
  json.BeginArray();
  TextTable table({"arrival (req/s)", "batches", "p99 (ms)", "events",
                   "dropped"});
  for (double rate : {60.0, 180.0}) {
    const auto trace = ObsTrace(rate, requests);
    ServingEngine engine(model, ObsEngineConfig(2, /*traced=*/true));
    const ServingResult res = engine.Replay(trace);
    const auto merged = engine.tracer()->Merged();

    json.BeginObject();
    json.Key("arrival_rps").Value(rate);
    json.Key("requests").Value(res.report().requests);
    json.Key("batches").Value(res.report().batches);
    json.Key("accepted").Value(res.admission.accepted);
    json.Key("rejected").Value(res.admission.rejected);
    json.Key("trace_events").Value(merged.size());
    json.Key("trace_dropped")
        .Value(static_cast<std::size_t>(engine.tracer()->total_dropped()));
    json.Key("p99_ms").Value(res.report().p99_latency_s * 1e3);
    json.Key("throughput_rps").Value(res.report().throughput_rps);
    json.EndObject();

    table.AddRow({Fmt(rate, 0), std::to_string(res.report().batches),
                  Fmt(res.report().p99_latency_s * 1e3, 1),
                  std::to_string(merged.size()),
                  std::to_string(engine.tracer()->total_dropped())});
  }
  json.EndArray();

  // -------------------------------------------------------- overhead cell --
  // The workload executes real tensors -- the regime the <3% budget is
  // claimed for.  Reps run single-threaded (scheduler jitter on shared
  // cores dwarfs the tracing cost itself) and interleaved in pairs, and
  // the headline is the *median* of the per-pair relative differences:
  // pairing cancels slow machine drift, the median kills outliers, so the
  // bit gates stably even on a noisy host.
  const auto load = ObsTrace(180.0, requests);
  const auto overhead_load = ObsTrace(180.0, 2 * requests);
  const int reps = 9;
  std::vector<double> pair_fracs;
  double untraced = 1e300, traced = 1e300;
  ReplayWallSeconds(model, ObsEngineConfig(1, false), load);  // warmup
  for (int r = 0; r < reps; ++r) {
    const double u =
        ReplayWallSeconds(model, ObsEngineConfig(1, false), overhead_load);
    const double t =
        ReplayWallSeconds(model, ObsEngineConfig(1, true), overhead_load);
    pair_fracs.push_back(t / u - 1.0);
    if (u < untraced) untraced = u;
    if (t < traced) traced = t;
  }
  std::sort(pair_fracs.begin(), pair_fracs.end());
  const double overhead_frac = pair_fracs[pair_fracs.size() / 2];
  const bool overhead_ok = overhead_frac < 0.03;
  json.Key("overhead");
  json.BeginObject();
  json.Key("reps").Value(std::size_t{reps});
  json.Key("untraced_wall_s").Value(untraced);
  json.Key("traced_wall_s").Value(traced);
  json.Key("overhead_frac").Value(overhead_frac);
  json.Key("overhead_ok").Value(overhead_ok);
  json.EndObject();

  // ------------------------------------------------------- bit-exact cell --
  bool outputs_identical, report_identical;
  {
    ServingEngine plain(model, ObsEngineConfig(2, false));
    ServingEngine with_trace(model, ObsEngineConfig(2, true));
    const ServingResult a = plain.Replay(load);
    const ServingResult b = with_trace.Replay(load);
    outputs_identical = SameOutputs(a, b);
    report_identical = SameReport(a.report(), b.report());
  }
  json.Key("bit_exact");
  json.BeginObject();
  json.Key("outputs_identical").Value(outputs_identical);
  json.Key("report_identical").Value(report_identical);
  json.EndObject();

  // ------------------------------------- determinism + attribution cells --
  // One pair of traced runs feeds both: the {1,4}-thread byte-identity
  // gate now also covers the analysis artifacts (breakdown JSON + flame),
  // and the 1-thread run's attribution is the recorded baseline.
  std::string trace_1t, metrics_1t, trace_4t, metrics_4t;
  std::string breakdown_1t, breakdown_4t, flame_1t, flame_4t;
  bool matches_report = false;
  obs::LatencyBreakdown bd;
  {
    ServingEngine one(model, ObsEngineConfig(1, true));
    const ServingResult res1 = one.Replay(load);
    trace_1t = obs::ChromeTraceJson(*one.tracer());
    metrics_1t = MetricsSnapshot(one, res1);
    const obs::Attribution att1 = obs::AttributeTracer(*one.tracer());
    bd = obs::ComputeBreakdown(att1);
    breakdown_1t = obs::BreakdownJson(bd);
    flame_1t = obs::CollapsedStacks(att1.requests);
    matches_report = obs::BreakdownMatchesReport(bd, res1.report());
    ServingEngine four(model, ObsEngineConfig(4, true));
    const ServingResult res4 = four.Replay(load);
    trace_4t = obs::ChromeTraceJson(*four.tracer());
    metrics_4t = MetricsSnapshot(four, res4);
    const obs::Attribution att4 = obs::AttributeTracer(*four.tracer());
    breakdown_4t = obs::BreakdownJson(obs::ComputeBreakdown(att4));
    flame_4t = obs::CollapsedStacks(att4.requests);
  }
  const bool byte_identical = trace_1t == trace_4t && metrics_1t == metrics_4t;
  const bool analysis_identical =
      breakdown_1t == breakdown_4t && flame_1t == flame_4t;
  json.Key("determinism");
  json.BeginObject();
  json.Key("trace_bytes").Value(trace_1t.size());
  json.Key("metrics_bytes").Value(metrics_1t.size());
  json.Key("byte_identical").Value(byte_identical);
  json.Key("analysis_identical").Value(analysis_identical);
  json.EndObject();

  json.Key("breakdown");
  json.BeginObject();
  json.Key("requests").Value(bd.requests);
  json.Key("rejected").Value(bd.rejected);
  json.Key("unattributed").Value(bd.unattributed);
  json.Key("stages").Value(bd.stages.size());
  json.Key("gap_free").Value(bd.gap_free);
  json.Key("reconstruction_exact").Value(bd.reconstruction_exact);
  json.Key("matches_report").Value(matches_report);
  json.Key("dominant_tail_stage").Value(obs::StageName(bd.tail.dominant));
  json.Key("flame_bytes").Value(flame_1t.size());
  json.EndObject();

  // ---------------------------------------------------------- capture cell --
  // .lattetrace round-trip: serialize -> parse -> serialize is
  // byte-stable, the canonical committed capture still matches what the
  // generator produces today, and replaying the loaded trace reproduces
  // the exact analysis artifacts of the generated one.
  const std::string captured = TraceToJson(load);
  const bool roundtrip_identical =
      TraceToJson(TraceFromJson(captured)) == captured;
  std::vector<TimedRequest> from_file;
  const bool file_loaded = TryLoadTrace(lattetrace_path, from_file);
  const bool file_matches = file_loaded && TraceToJson(from_file) == captured;
  bool replay_identical = false;
  {
    ServingEngine rep(model, ObsEngineConfig(1, true));
    rep.Replay(file_loaded ? from_file : TraceFromJson(captured));
    const obs::Attribution att = obs::AttributeTracer(*rep.tracer());
    replay_identical =
        obs::ChromeTraceJson(*rep.tracer()) == trace_1t &&
        obs::BreakdownJson(obs::ComputeBreakdown(att)) == breakdown_1t &&
        obs::CollapsedStacks(att.requests) == flame_1t;
  }
  json.Key("capture");
  json.BeginObject();
  json.Key("trace_bytes").Value(captured.size());
  json.Key("version").Value(kTraceVersion);
  json.Key("roundtrip_identical").Value(roundtrip_identical);
  json.Key("file_loaded").Value(file_loaded);
  json.Key("file_matches").Value(file_matches);
  json.Key("replay_identical").Value(replay_identical);
  json.EndObject();

  // -------------------------------------------------------- overflow cell --
  std::size_t overflow_recorded, overflow_dropped;
  {
    ServingEngineConfig tiny = ObsEngineConfig(2, true);
    tiny.trace.buffer_capacity = 8;
    tiny.execute = false;  // accounting-only: the counts are the point
    ServingEngine engine(model, tiny);
    engine.Replay(load);
    overflow_recorded = engine.tracer()->Merged().size();
    overflow_dropped =
        static_cast<std::size_t>(engine.tracer()->total_dropped());
  }
  json.Key("overflow");
  json.BeginObject();
  json.Key("capacity").Value(std::size_t{8});
  json.Key("recorded").Value(overflow_recorded);
  json.Key("dropped").Value(overflow_dropped);
  json.Key("accounted_ok").Value(overflow_dropped > 0);
  json.EndObject();

  // ---------------------------------------------------- manifest + export --
  {
    search::DesignPoint dp;
    search::ReplicaDesign rd;
    rd.former = ObsEngineConfig(2, true).former;
    rd.workers = 2;
    rd.top_k = 30;
    dp.replicas.push_back(rd);
    obs::RunManifest manifest;
    manifest.name = "bench_obs/serving_sweep";
    manifest.seed = 7;
    manifest.config_json = search::DesignPointToJson(dp);
    manifest.metrics = {{"overhead_frac", overhead_frac},
                        {"untraced_wall_s", untraced},
                        {"traced_wall_s", traced}};
    json.Key("manifest");
    obs::WriteRunManifest(manifest, json);
  }
  json.EndObject();

  // The Chrome trace artifact CI loads with jq: the 1-thread determinism
  // run (byte-identical to the 4-thread one by the gate above).
  obs::JsonWriter trace_json;
  trace_json.Raw(trace_1t);

  std::printf("== Observability: tracing cost and determinism ==\n\n");
  std::printf("%s\n", table.Render().c_str());
  std::printf("overhead: untraced %.1fms, traced %.1fms (%+.2f%%) -> %s\n",
              untraced * 1e3, traced * 1e3, overhead_frac * 100,
              overhead_ok ? "ok" : "OVER BUDGET");
  std::printf("bit-exact vs untraced: outputs %s, report %s\n",
              outputs_identical ? "yes" : "NO",
              report_identical ? "yes" : "NO");
  std::printf("byte-identical across {1,4} threads: export %s, analysis %s\n",
              byte_identical ? "yes" : "NO",
              analysis_identical ? "yes" : "NO");
  std::printf(
      "attribution: %zu requests, gap-free %s, reconstruction %s, "
      "report match %s, tail dominated by %s\n",
      bd.requests, bd.gap_free ? "yes" : "NO",
      bd.reconstruction_exact ? "yes" : "NO", matches_report ? "yes" : "NO",
      obs::StageName(bd.tail.dominant));
  if (!bd.critical_path.empty()) {
    std::printf("critical path: %s\n", bd.critical_path.c_str());
  }
  std::printf(
      "capture: %zu bytes, roundtrip %s, canonical file %s, replay %s\n",
      captured.size(), roundtrip_identical ? "ok" : "BROKEN",
      !file_loaded ? "MISSING"
                   : (file_matches ? "matches" : "STALE"),
      replay_identical ? "identical" : "DIVERGED");
  std::printf("overflow: kept %zu, dropped %zu (capacity 8)\n",
              overflow_recorded, overflow_dropped);
  if (!json.WriteFile(out_path)) return 1;
  if (!trace_json.WriteFile(trace_path)) return 1;
  obs::JsonWriter breakdown_json;
  breakdown_json.Raw(breakdown_1t);
  if (!breakdown_json.WriteFile(breakdown_path)) return 1;
  {
    std::FILE* f = std::fopen(flame_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   flame_path.c_str());
      return 1;
    }
    std::fwrite(flame_1t.data(), 1, flame_1t.size(), f);
    std::fclose(f);
  }
  std::printf("wrote %s, %s, %s and %s\n", out_path.c_str(),
              trace_path.c_str(), breakdown_path.c_str(), flame_path.c_str());
  return 0;
}
