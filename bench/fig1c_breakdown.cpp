// Reproduces Fig 1(c): time-consumption breakdown of one encoder layer on a
// GPU (TensorRT-style dense execution), 128-token input.
//
// Paper observation: ~60% of encoder time sits in the self-attention
// workflow (Linear/QKV through the output Linear), and the share grows with
// sequence length.

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace latte;

namespace {

/// Fig 1(c) legend buckets.
const char* Bucket(OpKind kind) {
  switch (kind) {
    case OpKind::kQkvProjection:    return "Self-attention: Linear (QKV)";
    case OpKind::kScoreMatMul:      return "Self-attention: MatMul (QK^T)";
    case OpKind::kScale:            return "Self-attention: Scale";
    case OpKind::kMask:             return "Self-attention: Masking";
    case OpKind::kSoftmax:          return "Self-attention: Softmax";
    case OpKind::kContextMatMul:    return "Self-attention: MatMul (SV)";
    case OpKind::kOutputProjection: return "Self-attention: Linear (out)";
    case OpKind::kLayerNorm1:
    case OpKind::kLayerNorm2:       return "Other: 2xLayerNorm";
    case OpKind::kFfn1:
    case OpKind::kFfn2:             return "Other: 2xLinear";
    case OpKind::kGelu:             return "Other: Activation";
    default:                        return "Other";
  }
}

bool IsSelfAttentionBucket(OpKind kind) {
  switch (kind) {
    case OpKind::kQkvProjection:
    case OpKind::kScoreMatMul:
    case OpKind::kScale:
    case OpKind::kMask:
    case OpKind::kSoftmax:
    case OpKind::kContextMatMul:
    case OpKind::kOutputProjection:
      return true;
    default:
      return false;
  }
}

}  // namespace

int main() {
  const auto model = BertBase();
  const auto platform = QuadroRtx6000();
  const auto ops = EncoderOps(model.encoder, AttentionMode::kDense);

  for (double n : {128.0, 512.0}) {
    std::map<std::string, double> bucket_time;
    double total = 0, attn = 0;
    for (const auto& op : ops) {
      const double t = PlatformOpSeconds(platform, op, n);
      bucket_time[Bucket(op.kind)] += t;
      total += t;
      if (IsSelfAttentionBucket(op.kind)) attn += t;
    }

    std::printf("== Fig 1(c): encoder operator time breakdown ==\n");
    std::printf("model=%s  platform=%s  sequence length=%d  (one layer)\n\n",
                model.name.c_str(), platform.name.c_str(),
                static_cast<int>(n));

    // Sorted by time share, like reading the pie chart clockwise.
    std::vector<std::pair<std::string, double>> rows(bucket_time.begin(),
                                                     bucket_time.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    TextTable table({"operator", "time (us)", "share"});
    for (const auto& [name, t] : rows) {
      table.AddRow({name, Fmt(t * 1e6, 2), Fmt(100.0 * t / total, 1) + "%"});
    }
    std::printf("%s\n", table.Render().c_str());
    std::printf("encoder layer total: %.1f us\n", total * 1e6);
    std::printf("self-attention workflow share: %.1f%%  (paper: ~60%% at "
                "n=128, growing with n)\n\n",
                100.0 * attn / total);
  }
  return 0;
}
