// Result-cache benchmark: sweeps popularity skew x identity population x
// eviction policy over the cache-enabled ServingEngine and emits
// machine-readable JSON (BENCH_cache.json, or argv[1]) for the CI
// perf-gate job.
//
// Every cell replays one Zipf trace (per population x skew, so cached and
// uncached runs see byte-identical arrivals) through accounting-only
// engines -- no tensors, pure virtual time -- against a padded backend
// near saturation, where removing duplicate work is worth real latency.
// Hit/miss/coalesce/eviction counts are deterministic and gated exactly
// by bench/check_regression.py; the headline the gate watches: in every
// cell whose trace carries a >= 20% duplicate rate, the cached engine
// must beat the uncached one on BOTH p99 latency and throughput.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/json_writer.hpp"

namespace latte {
namespace {

constexpr double kSecondsPerPaddedToken = 10e-6;
constexpr double kBatchOverheadS = 1e-3;
constexpr double kDuplicateRateGate = 0.2;

ServingEngineConfig MakeEngine(bool cached, EvictionPolicy eviction) {
  ServingEngineConfig cfg;
  cfg.former.max_batch = 8;
  cfg.former.timeout_s = 0.05;
  cfg.workers = 1;
  cfg.execute = false;  // virtual-time sweep
  cfg.service = PaddedServiceModel(kSecondsPerPaddedToken, kBatchOverheadS);
  cfg.cache.enabled = cached;
  cfg.cache.key_policy = CacheKeyPolicy::kRequestId;
  cfg.cache.eviction = eviction;
  // Tight enough that the large-population cells churn (the eviction
  // policies differ), roomy enough that the hot set of a skewed trace
  // fits: ~45 SQuAD-shaped entries at hidden = 128.
  cfg.cache.capacity_bytes = 4ull << 20;
  return cfg;
}

struct Cell {
  std::size_t population = 0;
  double skew = 0;
  EvictionPolicy eviction = EvictionPolicy::kLru;
  double duplicate_rate = 0;
  ServingResult cached;
  ServingResult uncached;  ///< same trace through a cache-less engine
  double p99_ratio = 0;
  double throughput_gain = 0;
  bool wins = false;
};

}  // namespace
}  // namespace latte

int main(int argc, char** argv) {
  using namespace latte;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_cache.json";

  const auto dataset = Squad();
  // Accounting-only mode never touches the tensors; the model supplies
  // shapes (hidden width prices the byte-accounted entries).
  const ModelInstance model(ScaledDown(BertBase(), 6), 2022);

  const std::size_t requests = 256;
  const double rate = 300;  // near the padded backend's saturation
  const std::vector<std::size_t> populations = {16, 64, 1024};
  const std::vector<double> skews = {0.0, 1.1};
  const std::vector<EvictionPolicy> policies = {EvictionPolicy::kLru,
                                                EvictionPolicy::kSegmentedLru};

  std::vector<Cell> cells;
  bool headline = true;
  bool any_gated_cell = false;
  for (std::size_t population : populations) {
    for (double skew : skews) {
      ZipfTraceConfig trace_cfg;
      trace_cfg.arrival_rate_rps = rate;
      trace_cfg.requests = requests;
      trace_cfg.population = population;
      trace_cfg.skew = skew;
      trace_cfg.seed = 7;
      const auto trace = GenerateZipfTrace(trace_cfg, dataset);
      const double dup_rate = TraceDuplicateRate(trace);

      ServingEngine uncached_engine(
          model, MakeEngine(/*cached=*/false, EvictionPolicy::kLru));
      ServingResult uncached = uncached_engine.Replay(trace);

      for (EvictionPolicy eviction : policies) {
        ServingEngine engine(model, MakeEngine(/*cached=*/true, eviction));
        Cell cell;
        cell.population = population;
        cell.skew = skew;
        cell.eviction = eviction;
        cell.duplicate_rate = dup_rate;
        cell.cached = engine.Replay(trace);
        cell.uncached = uncached;
        cell.p99_ratio = cell.cached.report().p99_latency_s /
                         uncached.report().p99_latency_s;
        cell.throughput_gain = cell.cached.report().throughput_rps /
                               uncached.report().throughput_rps;
        // A win needs margin so libm-level float drift between hosts
        // cannot flip the gated summary bit.
        cell.wins = cell.p99_ratio <= 0.99 && cell.throughput_gain >= 1.01;
        if (dup_rate >= kDuplicateRateGate) {
          any_gated_cell = true;
          headline = headline && cell.wins;
        }
        cells.push_back(std::move(cell));
      }
    }
  }
  headline = headline && any_gated_cell;

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("cache");
  json.Key("schema_version").Value(std::size_t{1});
  StampHost(json);
  json.Key("dataset").Value(dataset.name);
  json.Key("requests").Value(requests);
  json.Key("arrival_rps").Value(rate);
  json.Key("service_model").Value("padded");
  json.Key("key_policy").Value("request-id");
  json.Key("duplicate_rate_gate").Value(kDuplicateRateGate);
  json.Key("results");
  json.BeginArray();

  TextTable table({"population", "skew", "dup rate", "eviction", "hits",
                   "coalesced", "misses", "evicted", "p99 ratio",
                   "throughput gain", "win"});
  for (const Cell& cell : cells) {
    const CacheStats& cs = cell.cached.cache;
    json.BeginObject();
    json.Key("population").Value(cell.population);
    json.Key("skew").Value(cell.skew);
    json.Key("eviction").Value(EvictionPolicyName(cell.eviction));
    json.Key("duplicate_rate").Value(cell.duplicate_rate);
    json.Key("requests").Value(cell.cached.report().requests);
    json.Key("batches").Value(cell.cached.report().batches);
    json.Key("hits").Value(cs.hits);
    json.Key("coalesced").Value(cs.coalesced);
    json.Key("misses").Value(cs.misses);
    json.Key("evictions").Value(cs.store.evictions);
    json.Key("insertions").Value(cs.store.insertions);
    json.Key("hit_rate").Value(CacheHitRate(cs));
    json.Key("peak_bytes").Value(cs.store.peak_bytes);
    json.Key("cached_p50_ms").Value(cell.cached.report().p50_latency_s * 1e3);
    json.Key("cached_p99_ms").Value(cell.cached.report().p99_latency_s * 1e3);
    json.Key("cached_throughput_rps")
        .Value(cell.cached.report().throughput_rps);
    json.Key("uncached_p99_ms")
        .Value(cell.uncached.report().p99_latency_s * 1e3);
    json.Key("uncached_throughput_rps")
        .Value(cell.uncached.report().throughput_rps);
    json.Key("p99_ratio").Value(cell.p99_ratio);
    json.Key("throughput_gain").Value(cell.throughput_gain);
    json.Key("gated").Value(cell.duplicate_rate >= kDuplicateRateGate);
    json.Key("wins").Value(cell.wins);
    json.EndObject();

    table.AddRow({std::to_string(cell.population), Fmt(cell.skew, 1),
                  Fmt(cell.duplicate_rate, 2),
                  EvictionPolicyName(cell.eviction), std::to_string(cs.hits),
                  std::to_string(cs.coalesced), std::to_string(cs.misses),
                  std::to_string(cs.store.evictions), Fmt(cell.p99_ratio, 2),
                  Fmt(cell.throughput_gain, 2), cell.wins ? "yes" : "no"});
  }
  json.EndArray();
  json.Key("cache_beats_uncached_at_dup_gate").Value(headline);
  json.EndObject();

  std::printf(
      "== Result-cache sweep: population x skew x eviction policy "
      "(%zu requests @ %.0f req/s, cached vs uncached) ==\n\n",
      requests, rate);
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "headline: cached beats uncached on p99 AND throughput in every "
      "cell with >= %.0f%% duplicate rate: %s\n",
      kDuplicateRateGate * 100, headline ? "yes" : "NO");
  // Write the JSON before any failure exit: when the headline regresses,
  // CI still gets the per-cell numbers as an artifact to debug with.
  if (!json.WriteFile(out_path)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  if (!headline) {
    std::fprintf(stderr,
                 "error: the result cache failed to beat the uncached "
                 "engine in some >=20%%-duplicate cell; the cache (or this "
                 "sweep) regressed\n");
    return 1;
  }
  return 0;
}
