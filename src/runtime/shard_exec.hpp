#pragma once
// Gang executor for tensor-parallel encoder shards.
//
// One ShardExecutor owns what a gang of N shards needs to run a sharded
// forward pass with zero steady-state allocations: a ThreadPool, one
// private Workspace per shard (GEMM pack buffers, per-shard activation
// slices) and one shared "communication" Workspace whose Float slots
// stand in for the interconnect: shards write their slices into disjoint
// column ranges of a comm matrix (the all-gather/concat), and row-
// parallel partial sums land in per-shard comm slots that the caller
// reduces in a fixed order.  Everything is byte-accounted: CapacityBytes
// sums every arena, like GemmScratch, so benches can assert the gang
// stops allocating at steady-state shapes.
//
// Concurrency contract: a stage runs one task per shard and barriers on
// ThreadPool::Wait(), which rethrows the first task exception (all are
// counted; see thread_pool.hpp).  Within a stage, shards may read any
// comm matrix leased before the stage and write only ranges they own, so
// stage output is independent of thread count and scheduling order --
// the sharded encoder's bit-exactness and byte-determinism rest on this.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/workspace.hpp"
#include "tensor/matrix.hpp"

namespace latte {

/// Float-slot assignments in the communication Workspace of a
/// ShardExecutor.  Slots below kPartialBase hold gathered full-width
/// activations; kPartialBase + s holds shard s's row-parallel FFN2
/// partial sum.
namespace shardslots {
inline constexpr std::size_t kCtx = 0;      ///< gathered attention context
inline constexpr std::size_t kAttnOut = 1;  ///< gathered Wo outputs
inline constexpr std::size_t kX1 = 2;       ///< post-LN1 residual (serial)
inline constexpr std::size_t kFfn = 3;      ///< gathered GELU activations
inline constexpr std::size_t kFfnOut = 4;   ///< gathered / reduced FFN2 out
inline constexpr std::size_t kPartialBase = 8;  ///< + shard index
}  // namespace shardslots

/// Owns the pool and scratch arenas of one tensor-parallel gang.
class ShardExecutor {
 public:
  /// A gang of `shards` shards on `threads` pool workers; threads == 0
  /// means one worker per shard.  Results never depend on the thread
  /// count -- fewer workers than shards just serializes stage tasks.
  /// Throws std::invalid_argument when shards == 0.
  explicit ShardExecutor(std::size_t shards, std::size_t threads = 0);

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  std::size_t shards() const { return shard_ws_.size(); }

  /// Shard s's private arena (valid for the executor's lifetime).
  Workspace& shard_ws(std::size_t s) { return shard_ws_.at(s); }

  /// The shared communication arena.  Lease comm slots only between
  /// stages (from the caller thread): Workspace is not internally
  /// synchronized, so resizing during a stage would race with readers.
  Workspace& comm() { return comm_; }

  /// Runs `fn(shard, shard_ws(shard))` once per shard and barriers until
  /// all complete; rethrows the first task exception.
  void RunStage(const std::function<void(std::size_t, Workspace&)>& fn);

  /// Attaches a tracer (not owned; pass nullptr to detach).  Every
  /// subsequent stage records one kStage span per shard on track
  /// `track_base + shard`, in a pseudo virtual time where stage k covers
  /// [k, k+1).  Spans are recorded from the caller thread after the stage
  /// barrier, so the trace is byte-identical at any pool thread count.
  void SetTracer(obs::Tracer* tracer, std::uint32_t track_base = 0,
                 std::string_view label_prefix = {});

  /// Stages executed since construction (the kStage pseudo-clock).
  std::uint64_t stages_run() const { return stage_seq_; }

  /// Fixed-order reduction of the row-parallel partials: copies comm slot
  /// kPartialBase + 0 into `out` and adds slots kPartialBase + 1 ... in
  /// ascending shard order.  The order never varies, so reduced results
  /// are deterministic (and byte-stable across thread counts) even though
  /// float addition is not associative.  Every partial must already hold
  /// a (rows x cols) matrix from the producing stage.
  void ReducePartialsInto(std::size_t rows, std::size_t cols, MatrixF& out);

  /// Total bytes held across every arena of the gang (per-shard
  /// workspaces plus the comm workspace) -- the sharded analogue of
  /// GemmScratch::CapacityBytes.
  std::size_t CapacityBytes() const;

 private:
  ThreadPool pool_;
  std::vector<Workspace> shard_ws_;
  Workspace comm_;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t track_base_ = 0;
  std::uint64_t stage_seq_ = 0;
};

}  // namespace latte
