#pragma once
// Per-worker scratch arena for the batched execution runtime.
//
// Every temporary the inference hot path needs -- gathered K/V candidate
// blocks, fused-kernel score buffers, context rows, generic float scratch
// -- lives here and is leased out by reference.  Buffers only ever grow
// (capacity is sticky), so after the first few calls at steady-state
// shapes the hot loop performs zero heap allocations.  One Workspace
// belongs to exactly one worker at a time; the BatchRunner owns one per
// concurrent slot, which is the whole thread-safety story (no sharing, no
// locks).

#include <cstddef>
#include <memory>
#include <vector>

#include "core/sparse_attention.hpp"
#include "tensor/kernels.hpp"
#include "tensor/matrix.hpp"

namespace latte {

/// Reserved Workspace::Float slot assignments for the library hot paths.
/// Callers layering their own temporaries on a Workspace should lease
/// slots >= kFirstFree so they never collide with the encoder or the
/// dense-attention scores while those are live.
namespace wslots {
inline constexpr std::size_t kEncoderQ = 0;
inline constexpr std::size_t kEncoderK = 1;
inline constexpr std::size_t kEncoderV = 2;
inline constexpr std::size_t kEncoderAttn = 3;
inline constexpr std::size_t kEncoderX1 = 4;
inline constexpr std::size_t kEncoderFfn = 5;
inline constexpr std::size_t kEncoderFfn2 = 6;
inline constexpr std::size_t kAttentionScores = 8;
inline constexpr std::size_t kFirstFree = 16;
}  // namespace wslots

/// Arena of reusable scratch buffers for one worker.
class Workspace {
 public:
  Workspace() = default;

  // Non-copyable (leased spans/references must stay unique), movable so a
  // BatchRunner can hold them in a vector.
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  /// The sparse-attention scratch (gather buffers, scores, context row).
  /// Call once per SparseAttention invocation; the returned reference is
  /// valid until the next Reset().
  AttentionScratch& attention() {
    ++leases_;
    return attention_;
  }

  /// The tiled-GEMM packing scratch (tensor/kernels.hpp).  Shared by every
  /// GEMM this worker runs; the pack buffer grows to the largest panel set
  /// and then stops allocating.
  GemmScratch& gemm() {
    ++leases_;
    return gemm_;
  }

  /// Leases a float scratch matrix for `slot`, resized to rows x cols with
  /// its allocation reused.  Slots are small dense integers (0, 1, 2...);
  /// distinct concurrent temporaries must use distinct slots.  Leased
  /// references stay valid until Reset(), even when later calls open new
  /// slots (slots are individually heap-anchored).
  MatrixF& Float(std::size_t slot, std::size_t rows, std::size_t cols) {
    if (slot >= floats_.size()) floats_.resize(slot + 1);
    if (!floats_[slot]) floats_[slot] = std::make_unique<MatrixF>();
    ++leases_;
    floats_[slot]->Resize(rows, cols);
    return *floats_[slot];
  }

  /// Number of buffer leases served (tests assert reuse by checking this
  /// grows while CapacityBytes() stays flat).
  std::size_t leases() const { return leases_; }

  /// Total bytes currently held across all scratch buffers (capacities,
  /// not live sizes — buffers shrink logically but never release).  Flat
  /// across repeated calls == the arena is reusing, not reallocating.
  std::size_t CapacityBytes() const {
    std::size_t bytes =
        (attention_.ks.capacity() + attention_.vs.capacity() +
         attention_.ctx.capacity() +
         attention_.scores.exp_scores.capacity()) *
        sizeof(float);
    bytes += gemm_.CapacityBytes();
    for (const auto& m : floats_) {
      if (m) bytes += m->capacity() * sizeof(float);
    }
    return bytes;
  }

  /// Releases every buffer (capacity drops to zero).
  void Reset() {
    attention_ = AttentionScratch{};
    gemm_ = GemmScratch{};
    floats_.clear();
    leases_ = 0;
  }

 private:
  AttentionScratch attention_;
  GemmScratch gemm_;
  std::vector<std::unique_ptr<MatrixF>> floats_;
  std::size_t leases_ = 0;
};

}  // namespace latte
