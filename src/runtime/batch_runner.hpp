#pragma once
// Batch-level parallel executor: the top of the batched execution runtime.
//
// A BatchRunner owns a ThreadPool and one Workspace per concurrency slot.
// Run() executes a caller-supplied function over every item of a batch;
// items are handed out dynamically (an atomic cursor), so a batch of
// variable-length sequences load-balances the way the paper's length-aware
// scheduler intends -- long sequences do not stall a statically assigned
// worker while others sit idle.  Each slot's function invocations see the
// same Workspace, giving the allocation-free hot path its reuse without
// any locking (slots never share buffers).
//
// Determinism: each item's computation is independent and runs exactly the
// same code as a sequential loop, so outputs are bit-identical to running
// `for (i in batch) fn(i, ws)` single-threaded -- only the assignment of
// items to slots varies run to run.

#include <cstddef>
#include <functional>

#include "runtime/thread_pool.hpp"
#include "runtime/workspace.hpp"

namespace latte {

/// Configuration of a batch runner.
struct BatchRunnerConfig {
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  std::size_t threads = 0;
};

/// Runs batches of independent per-sequence jobs over a worker pool.
class BatchRunner {
 public:
  explicit BatchRunner(const BatchRunnerConfig& cfg = {});
  /// Convenience: a runner with exactly `threads` workers.
  explicit BatchRunner(std::size_t threads)
      : BatchRunner(BatchRunnerConfig{threads}) {}

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  /// Concurrency slots (== worker threads).
  std::size_t workers() const { return pool_.size(); }

  /// The per-slot scratch arena (exposed for tests and benchmarks).
  Workspace& workspace(std::size_t slot) { return workspaces_[slot]; }

  /// Per-item job: receives the item index and the slot's Workspace.
  using ItemFn = std::function<void(std::size_t item, Workspace& ws)>;

  /// Executes fn for every item in [0, items), in parallel across the
  /// pool, and blocks until the batch is done.  The first exception thrown
  /// by any item is rethrown here.  Not reentrant: one Run() at a time.
  void Run(std::size_t items, const ItemFn& fn);

  /// Statically sharded variant: items are partitioned up front with
  /// ShardByTokens on `lengths` (one entry per item) and each shard runs
  /// on one slot.  No cursor contention and a deterministic item->slot
  /// mapping, at the cost of LPT's 4/3 balance bound instead of dynamic
  /// balancing.  Same exception and bit-exactness contract as Run().
  void RunSharded(const std::vector<std::size_t>& lengths, const ItemFn& fn);

  /// Items executed across all Run() calls (utilization accounting).
  std::size_t items_completed() const { return items_completed_; }

  /// The underlying pool, for health metrics (obs::ExportThreadPoolStats).
  const ThreadPool& pool() const { return pool_; }

 private:
  ThreadPool pool_;
  std::vector<Workspace> workspaces_;
  std::size_t items_completed_ = 0;
};

/// Per-head attention that draws its scratch from a Workspace.  The
/// batched encoder / model entry points take this instead of the plain
/// AttentionFn so the sparse hot path can stay allocation-free per worker.
using WorkspaceAttentionFn = std::function<MatrixF(
    const MatrixF&, const MatrixF&, const MatrixF&, Workspace&)>;

/// Adapts a stateless AttentionFn (e.g. DenseAttention) to the workspace
/// signature; the workspace is ignored.
WorkspaceAttentionFn AdaptAttentionFn(AttentionFn fn);

/// Sparse attention leasing its gather/score/context buffers from the
/// workspace.  Bit-identical to MakeSparseAttentionFn(cfg).
WorkspaceAttentionFn MakeWorkspaceSparseAttentionFn(SparseAttentionConfig cfg);

}  // namespace latte
