#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace latte {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (!pending_errors_.empty()) {
    // Rethrow the earliest failure; the rest of the batch is already
    // counted in task_errors_, so nothing disappears unobserved.
    std::exception_ptr err = pending_errors_.front();
    pending_errors_.clear();
    lock.unlock();
    std::rethrow_exception(err);
  }
}

std::size_t ThreadPool::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t ThreadPool::task_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return task_errors_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      pending_errors_.push_back(std::current_exception());
      ++task_errors_;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      ++completed_;
      if (queue_.empty() && active_ == 0) drain_cv_.notify_all();
    }
  }
}

}  // namespace latte
