#include "runtime/shard_exec.hpp"

#include <stdexcept>
#include <string>

#include "tensor/matmul.hpp"

namespace latte {

ShardExecutor::ShardExecutor(std::size_t shards, std::size_t threads)
    : pool_(threads == 0 ? shards : threads), shard_ws_(shards) {
  if (shards == 0) {
    throw std::invalid_argument("ShardExecutor: shards must be >= 1");
  }
}

void ShardExecutor::SetTracer(obs::Tracer* tracer, std::uint32_t track_base,
                              std::string_view label_prefix) {
  tracer_ = tracer;
  track_base_ = track_base;
  if (tracer_ == nullptr) return;
  for (std::size_t s = 0; s < shard_ws_.size(); ++s) {
    tracer_->RegisterTrack(track_base_ + static_cast<std::uint32_t>(s),
                           std::string(label_prefix) + "shard " +
                               std::to_string(s));
  }
}

void ShardExecutor::RunStage(
    const std::function<void(std::size_t, Workspace&)>& fn) {
  for (std::size_t s = 0; s < shard_ws_.size(); ++s) {
    pool_.Submit([this, &fn, s] { fn(s, shard_ws_[s]); });
  }
  pool_.Wait();
  if (tracer_ != nullptr) {
    // Recorded from the caller thread after the barrier: one span per
    // shard, stage k covering pseudo virtual time [k, k+1).  Nothing here
    // depends on which pool thread ran which shard.
    const double begin = static_cast<double>(stage_seq_);
    const double wall = tracer_->WallStamp();
    for (std::size_t s = 0; s < shard_ws_.size(); ++s) {
      obs::TraceEvent e;
      e.kind = obs::SpanKind::kStage;
      e.begin_s = begin;
      e.end_s = begin + 1.0;
      e.wall_s = wall;
      e.id = stage_seq_;
      e.arg = static_cast<std::int64_t>(s);
      e.track = track_base_ + static_cast<std::uint32_t>(s);
      tracer_->Record(e);
    }
  }
  ++stage_seq_;
}

void ShardExecutor::ReducePartialsInto(std::size_t rows, std::size_t cols,
                                       MatrixF& out) {
  // Re-leasing at the shape the producing stage used is a no-op resize,
  // so the partials' values survive the lease.
  out = comm_.Float(shardslots::kPartialBase, rows, cols);
  for (std::size_t s = 1; s < shard_ws_.size(); ++s) {
    AddInto(out, comm_.Float(shardslots::kPartialBase + s, rows, cols), out);
  }
}

std::size_t ShardExecutor::CapacityBytes() const {
  std::size_t bytes = comm_.CapacityBytes();
  for (const auto& ws : shard_ws_) bytes += ws.CapacityBytes();
  return bytes;
}

}  // namespace latte
