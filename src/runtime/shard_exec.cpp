#include "runtime/shard_exec.hpp"

#include <stdexcept>

#include "tensor/matmul.hpp"

namespace latte {

ShardExecutor::ShardExecutor(std::size_t shards, std::size_t threads)
    : pool_(threads == 0 ? shards : threads), shard_ws_(shards) {
  if (shards == 0) {
    throw std::invalid_argument("ShardExecutor: shards must be >= 1");
  }
}

void ShardExecutor::RunStage(
    const std::function<void(std::size_t, Workspace&)>& fn) {
  for (std::size_t s = 0; s < shard_ws_.size(); ++s) {
    pool_.Submit([this, &fn, s] { fn(s, shard_ws_[s]); });
  }
  pool_.Wait();
}

void ShardExecutor::ReducePartialsInto(std::size_t rows, std::size_t cols,
                                       MatrixF& out) {
  // Re-leasing at the shape the producing stage used is a no-op resize,
  // so the partials' values survive the lease.
  out = comm_.Float(shardslots::kPartialBase, rows, cols);
  for (std::size_t s = 1; s < shard_ws_.size(); ++s) {
    AddInto(out, comm_.Float(shardslots::kPartialBase + s, rows, cols), out);
  }
}

std::size_t ShardExecutor::CapacityBytes() const {
  std::size_t bytes = comm_.CapacityBytes();
  for (const auto& ws : shard_ws_) bytes += ws.CapacityBytes();
  return bytes;
}

}  // namespace latte
