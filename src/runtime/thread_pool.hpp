#pragma once
// Fixed-size worker pool for the batched execution runtime.
//
// The SET-ISCA2023 runner fans independent scheduling jobs across raw
// std::thread objects; LATTE serves a continuous stream of batches, so we
// keep the workers alive in a pool instead of paying thread creation per
// batch.  The pool is deliberately minimal: a locked task queue, a
// condition variable pair (work available / all drained), and error
// capture so throwing tasks surface in the caller rather than in
// std::terminate.  Every task exception is captured, not just the first:
// Wait() rethrows the earliest one of the drained batch and task_errors()
// counts all of them, so a sharded reduction where several workers fail
// can never fail silently.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace latte {

/// A fixed pool of worker threads draining a shared task queue.
///
/// Thread-compatible: Submit/Wait may be called from one owner thread;
/// tasks run concurrently on the workers.  Every exception thrown by a
/// task is captured; Wait() rethrows the first of the batch and counts
/// the rest in task_errors() so none disappear unobserved.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins the workers.  Pending exceptions
  /// cannot be rethrown from a destructor; they remain visible through
  /// task_errors() (call Wait() first to observe them as throws).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (>= 1).
  std::size_t size() const { return workers_.size(); }

  /// Enqueues one task.  Tasks may not Submit to the same pool (no nested
  /// parallelism; keeps the drain condition trivial).
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle, then
  /// rethrows the first exception any task raised since the last Wait().
  /// Further exceptions from the same batch are dropped after being
  /// counted in task_errors(); the pool stays usable after the throw.
  void Wait();

  /// Tasks executed since construction (for tests / utilization metrics).
  std::size_t completed() const;

  /// Tasks queued but not yet picked up by a worker.  A point-in-time
  /// health gauge (obs exports it); inherently racy against the workers,
  /// exact only when the pool is idle.
  std::size_t queue_depth() const;

  /// Task exceptions captured since construction, including ones beyond
  /// the first of a batch that Wait() could not rethrow.  A caller that
  /// saw Wait() throw once can compare this across barriers to tell a
  /// lone failure from a gang-wide one.
  std::size_t task_errors() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals: task available / stop
  std::condition_variable drain_cv_;  ///< signals: queue empty + all idle
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;     ///< tasks currently executing
  std::size_t completed_ = 0;  ///< tasks finished since construction
  std::size_t task_errors_ = 0;  ///< task exceptions captured, cumulative
  std::vector<std::exception_ptr> pending_errors_;  ///< unthrown this batch
  bool stop_ = false;
};

}  // namespace latte
