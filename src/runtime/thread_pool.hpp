#pragma once
// Fixed-size worker pool for the batched execution runtime.
//
// The SET-ISCA2023 runner fans independent scheduling jobs across raw
// std::thread objects; LATTE serves a continuous stream of batches, so we
// keep the workers alive in a pool instead of paying thread creation per
// batch.  The pool is deliberately minimal: a locked task queue, a
// condition variable pair (work available / all drained), and first-error
// capture so a throwing task surfaces in the caller rather than in
// std::terminate.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace latte {

/// A fixed pool of worker threads draining a shared task queue.
///
/// Thread-compatible: Submit/Wait may be called from one owner thread;
/// tasks run concurrently on the workers.  Exceptions thrown by tasks are
/// captured (first one wins) and rethrown from Wait().
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins the workers.  Pending exceptions
  /// are swallowed at destruction (call Wait() first to observe them).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (>= 1).
  std::size_t size() const { return workers_.size(); }

  /// Enqueues one task.  Tasks may not Submit to the same pool (no nested
  /// parallelism; keeps the drain condition trivial).
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle, then
  /// rethrows the first exception any task raised since the last Wait().
  void Wait();

  /// Tasks executed since construction (for tests / utilization metrics).
  std::size_t completed() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals: task available / stop
  std::condition_variable drain_cv_;  ///< signals: queue empty + all idle
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;     ///< tasks currently executing
  std::size_t completed_ = 0;  ///< tasks finished since construction
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace latte
