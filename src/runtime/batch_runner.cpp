#include "runtime/batch_runner.hpp"

#include <algorithm>
#include <atomic>

#include "workload/batch.hpp"

namespace latte {

BatchRunner::BatchRunner(const BatchRunnerConfig& cfg) : pool_(cfg.threads) {
  workspaces_ = std::vector<Workspace>(pool_.size());
}

void BatchRunner::Run(std::size_t items, const ItemFn& fn) {
  if (items == 0) return;

  // One task per slot; every task drains the shared cursor.  Tying the
  // workspace to the *task* (not the executing thread) keeps each arena
  // single-owner even if one thread happens to pick up two slot tasks.
  // A failed item flips `abort` so the other slots stop drawing new items
  // instead of computing the rest of a doomed batch; the pool rethrows
  // the first exception from Wait().
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> abort{false};
  const std::size_t slots = std::min(items, workspaces_.size());
  for (std::size_t slot = 0; slot < slots; ++slot) {
    Workspace* ws = &workspaces_[slot];
    pool_.Submit([&cursor, &abort, items, &fn, ws] {
      for (std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
           i < items && !abort.load(std::memory_order_relaxed);
           i = cursor.fetch_add(1, std::memory_order_relaxed)) {
        try {
          fn(i, *ws);
        } catch (...) {
          abort.store(true, std::memory_order_relaxed);
          throw;
        }
      }
    });
  }
  pool_.Wait();
  items_completed_ += items;
}

void BatchRunner::RunSharded(const std::vector<std::size_t>& lengths,
                             const ItemFn& fn) {
  if (lengths.empty()) return;

  const auto shards = ShardByTokens(lengths, workspaces_.size());
  std::atomic<bool> abort{false};
  for (std::size_t slot = 0; slot < shards.size(); ++slot) {
    if (shards[slot].empty()) continue;
    Workspace* ws = &workspaces_[slot];
    const std::vector<std::size_t>* shard = &shards[slot];
    pool_.Submit([&abort, shard, &fn, ws] {
      for (std::size_t i : *shard) {
        if (abort.load(std::memory_order_relaxed)) return;
        try {
          fn(i, *ws);
        } catch (...) {
          abort.store(true, std::memory_order_relaxed);
          throw;
        }
      }
    });
  }
  pool_.Wait();
  items_completed_ += lengths.size();
}

WorkspaceAttentionFn AdaptAttentionFn(AttentionFn fn) {
  return [fn = std::move(fn)](const MatrixF& q, const MatrixF& k,
                              const MatrixF& v, Workspace&) {
    return fn(q, k, v);
  };
}

WorkspaceAttentionFn MakeWorkspaceSparseAttentionFn(SparseAttentionConfig cfg) {
  return [cfg](const MatrixF& q, const MatrixF& k, const MatrixF& v,
               Workspace& ws) {
    return SparseAttention(q, k, v, cfg, nullptr, ws.attention());
  };
}

}  // namespace latte
