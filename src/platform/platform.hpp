#pragma once
// Roofline performance models of the paper's comparison platforms
// (Section 5: Intel Xeon Gold 5218, NVIDIA Jetson TX2, Quadro RTX 6000,
// under PyTorch 1.10 / Transformers 4.13).
//
// Substitute for physical hardware (DESIGN.md section 2).  Each operator of
// the dense encoder is charged
//
//   t(op) = max( flops / throughput_class ,  bytes / mem_bandwidth )
//           + kernel_overhead
//
// where the throughput class separates GEMM-shaped operators (which reach a
// calibrated fraction of peak) from bandwidth-bound elementwise/softmax/
// normalization operators.  CPUs and GPUs pad every sequence to the batch
// maximum (Section 5.2: "the sequence length is padded to the maximum
// sequence length for the CPU and GPU design").

#include <string>
#include <vector>

#include "model/config.hpp"
#include "workload/batch.hpp"

namespace latte {

/// Calibrated platform description.
struct PlatformModel {
  std::string name;
  double gemm_flops = 1e12;        ///< sustained FLOP/s on large GEMMs
  double elementwise_flops = 1e11; ///< sustained FLOP/s on pointwise ops
  double mem_bandwidth = 1e11;     ///< bytes/s
  double dtype_bytes = 4;          ///< activation/weight element size
  double kernel_overhead_s = 1e-5; ///< launch/dispatch cost per op per layer
  double power_w = 100;            ///< board/package power for Table 2
  /// Occupancy saturation of GEMM kernels: a kernel with f FLOPs sustains
  ///   gemm_flops * f / (f + gemm_saturation_flops).
  /// Small kernels (single-sequence per-head attention matmuls) run far
  /// below the roofline; large batched GEMMs approach it.  This one knob
  /// reproduces both the Fig 1(c) single-sequence breakdown and the
  /// batch-16 Fig 7 throughputs.
  double gemm_saturation_flops = 2e8;
  /// The attention pointwise kernels (scale, mask, softmax) dispatch per
  /// head; their launch overhead multiplies by roughly the head count.
  double attn_pointwise_overhead_mult = 12;
};

/// Intel Xeon Gold 5218 (16C/2.3GHz, PyTorch fp32).  Sustained GEMM rate is
/// what PyTorch reaches on transformer shapes, far below the 1.2 TFLOP/s
/// architectural peak.
PlatformModel XeonGold5218();
/// NVIDIA Jetson TX2 (256-core Pascal, fp16).
PlatformModel JetsonTx2();
/// NVIDIA Quadro RTX 6000 (PyTorch fp32 + cuBLAS).
PlatformModel QuadroRtx6000();

/// All three baseline platforms in Fig 7 order.
std::vector<PlatformModel> PlatformZoo();

/// Result of running one batch on a platform model.
struct PlatformReport {
  double latency_s = 0;            ///< whole batch, all layers
  double attention_latency_s = 0;  ///< score..context operators only
  double computed_flops = 0;       ///< includes padding waste
  double useful_dense_flops = 0;   ///< dense FLOPs at true lengths
  std::size_t batch_size = 0;

  double SequencesPerSecond() const {
    return latency_s > 0 ? static_cast<double>(batch_size) / latency_s : 0;
  }
  double EquivalentGops() const {
    return latency_s > 0 ? computed_flops / latency_s / 1e9 : 0;
  }
};

/// Runs a dense, padded batch through the platform model.  `pad_to` > 0
/// pads to at least that length (the task maximum in the paper's setup).
PlatformReport RunPlatform(const PlatformModel& platform,
                           const ModelConfig& model,
                           const std::vector<std::size_t>& lengths,
                           BatchPolicy policy = BatchPolicy::kPadToMax,
                           std::size_t pad_to = 0);

/// Seconds one operator kernel takes for a single sequence of length n
/// (the Fig 1(c) per-operator measurement).
double PlatformOpSeconds(const PlatformModel& platform, const OpSpec& op,
                         double n);

}  // namespace latte
