#include "platform/platform.hpp"

#include <algorithm>

namespace latte {
namespace {

/// GEMM operators ride the saturating GEMM roofline; the attention
/// pointwise kernels pay per-head dispatch; everything else is elementwise
/// / bandwidth class.
enum class OpClass { kGemm, kAttnPointwise, kPointwise };

OpClass Classify(OpKind kind) {
  switch (kind) {
    case OpKind::kQkvProjection:
    case OpKind::kOutputProjection:
    case OpKind::kFfn1:
    case OpKind::kFfn2:
    case OpKind::kScoreMatMul:
    case OpKind::kContextMatMul:
      return OpClass::kGemm;
    case OpKind::kScale:
    case OpKind::kMask:
    case OpKind::kSoftmax:
      return OpClass::kAttnPointwise;
    default:
      return OpClass::kPointwise;
  }
}

/// Seconds for one kernel of `op` shape executing `flops` / moving `bytes`.
double KernelSeconds(const PlatformModel& p, OpKind kind, double flops,
                     double bytes) {
  const OpClass cls = Classify(kind);
  double tp = p.elementwise_flops;
  double overhead = p.kernel_overhead_s;
  if (cls == OpClass::kGemm) {
    // Occupancy-saturating roofline: small kernels underutilize the device.
    tp = flops > 0
             ? p.gemm_flops * flops / (flops + p.gemm_saturation_flops)
             : p.gemm_flops;
  } else if (cls == OpClass::kAttnPointwise) {
    overhead *= p.attn_pointwise_overhead_mult;
  }
  const double compute = tp > 0 ? flops / tp : 0.0;
  return std::max(compute, bytes / p.mem_bandwidth) + overhead;
}

}  // namespace

PlatformModel XeonGold5218() {
  PlatformModel p;
  p.name = "CPU Xeon Gold 5218";
  p.gemm_flops = 57e9;        // PyTorch fp32 GEMM on transformer shapes
  p.elementwise_flops = 6e9;  // bandwidth-bound pointwise throughput
  p.mem_bandwidth = 100e9;    // 6-channel DDR4-2666
  p.dtype_bytes = 4;
  p.kernel_overhead_s = 25e-6;
  p.power_w = 125;            // TDP
  p.gemm_saturation_flops = 5e6;  // CPUs keep small GEMMs cache-resident
  p.attn_pointwise_overhead_mult = 4;  // cheap dispatch, but per head
  return p;
}

PlatformModel JetsonTx2() {
  PlatformModel p;
  p.name = "Jetson TX2";
  p.gemm_flops = 124e9;       // fp16 on 256 Pascal cores, real utilization
  p.elementwise_flops = 29e9;
  p.mem_bandwidth = 58e9;     // LPDDR4
  p.dtype_bytes = 2;
  p.kernel_overhead_s = 60e-6;
  p.power_w = 15;
  p.gemm_saturation_flops = 0.5e9;  // tiny GPU, occupancy builds up slowly
  p.attn_pointwise_overhead_mult = 4;
  return p;
}

PlatformModel QuadroRtx6000() {
  PlatformModel p;
  p.name = "Quadro RTX 6000";
  p.gemm_flops = 2.0e12;      // PyTorch fp32 cuBLAS on large GEMM shapes
  p.elementwise_flops = 250e9;
  p.mem_bandwidth = 672e9;    // GDDR6
  p.dtype_bytes = 4;
  p.kernel_overhead_s = 10e-6;
  p.power_w = 260;            // board power; 172 W observed under load
  p.gemm_saturation_flops = 2e8;  // single-seq per-head GEMMs idle most SMs
  p.attn_pointwise_overhead_mult = 12;
  return p;
}

std::vector<PlatformModel> PlatformZoo() {
  return {XeonGold5218(), JetsonTx2(), QuadroRtx6000()};
}

double PlatformOpSeconds(const PlatformModel& platform, const OpSpec& op,
                         double n) {
  return KernelSeconds(platform, op.kind, op.flops.Eval(n),
                       op.offchip_elems.Eval(n) * platform.dtype_bytes);
}

PlatformReport RunPlatform(const PlatformModel& platform,
                           const ModelConfig& model,
                           const std::vector<std::size_t>& lengths,
                           BatchPolicy policy, std::size_t pad_to) {
  const Batch batch = MakeBatch(lengths, policy, 4, pad_to);
  const auto ops = EncoderOps(model.encoder, AttentionMode::kDense);

  PlatformReport rep;
  rep.batch_size = lengths.size();

  // One batched kernel per operator per layer: FLOPs and traffic sum over
  // the (padded) batch; the launch overhead is paid once per kernel (per
  // head for the attention pointwise kernels).
  for (const auto& op : ops) {
    double flops = 0;
    double bytes = 0;
    for (std::size_t n : batch.effective_lengths) {
      flops += op.flops.Eval(static_cast<double>(n));
      bytes += op.offchip_elems.Eval(static_cast<double>(n)) *
               platform.dtype_bytes;
    }
    const double t = KernelSeconds(platform, op.kind, flops, bytes);
    rep.latency_s += t * static_cast<double>(model.layers);
    if (op.in_attention) {
      rep.attention_latency_s += t * static_cast<double>(model.layers);
    }
    rep.computed_flops += flops * static_cast<double>(model.layers);
  }
  for (std::size_t n : batch.original_lengths) {
    rep.useful_dense_flops +=
        model.TotalModelFlops(static_cast<double>(n), AttentionMode::kDense);
  }
  return rep;
}

}  // namespace latte
