#pragma once
// Versioned on-disk capture/replay of TimedRequest streams.
//
// A `.lattetrace` file is one JSON document (magic + version + request
// records) written by the shared obs/json_writer and read back through
// the same recursive-descent parser DesignPoint baselines use
// (search/json_io).  Arrival times are emitted with ValueExact (%.17g),
// so they re-parse to the same bits; content ids are hex strings because
// a uint64 -- kAnonymousId in particular -- does not survive a JSON
// double.  Capture -> load is therefore bit-exact: a trace recorded once
// under bench/traces/ replays identically across engines, clusters,
// twins and future PRs, and TraceToJson(LoadTrace(p)) reproduces the
// file byte for byte.

#include <string>
#include <string_view>
#include <vector>

#include "workload/arrivals.hpp"

namespace latte {

/// First bytes of every capture; a file without it is not a trace.
inline constexpr std::string_view kTraceMagic = "lattetrace";
/// Format version this build writes (and the only one it reads).  Bump
/// on any schema change; readers reject unknown versions loudly.
inline constexpr std::size_t kTraceVersion = 1;

/// Serializes the trace as one `.lattetrace` JSON document (no trailing
/// newline; WriteFile appends one).  Byte-deterministic.
std::string TraceToJson(const std::vector<TimedRequest>& trace);

/// Parses a `.lattetrace` document.  Throws std::invalid_argument naming
/// what is wrong (bad magic, unknown version, malformed record) -- a
/// capture that does not reproduce exactly is a corrupt baseline, not a
/// soft failure.
std::vector<TimedRequest> TraceFromJson(std::string_view text);

/// Writes `trace` to `path`; returns false (and prints to stderr) when
/// the file cannot be written.
bool CaptureTrace(const std::vector<TimedRequest>& trace,
                  const std::string& path);

/// Reads and parses `path`.  Throws std::invalid_argument when the file
/// cannot be read or is not a valid capture.
std::vector<TimedRequest> LoadTrace(const std::string& path);

/// Like LoadTrace, but an absent/unreadable file returns false instead
/// of throwing (the bench fallback: regenerate when the canonical
/// capture is missing).  Malformed content still throws.
bool TryLoadTrace(const std::string& path, std::vector<TimedRequest>& out);

}  // namespace latte
