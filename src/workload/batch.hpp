#pragma once
// Batch construction policies for variable-length inputs (Section 2,
// "Sequence length standardization", and Section 4.2).

#include <cstddef>
#include <vector>

namespace latte {

/// How a batch of variable-length sequences is presented to the hardware.
enum class BatchPolicy {
  kPadToMax,          ///< TensorRT-style: pad every sequence to the batch max
  kMicroBatch,        ///< TurboTransformer-style: split into micro-batches
                      ///< of similar length, pad within each micro-batch
  kSortedDescending,  ///< ours: sort by decreasing length, no padding
};

/// A batch after policy application.
struct Batch {
  /// Effective per-sequence lengths the hardware computes on (post padding).
  std::vector<std::size_t> effective_lengths;
  /// Original lengths in processing order.
  std::vector<std::size_t> original_lengths;

  /// Total tokens actually computed.
  std::size_t EffectiveTokens() const;
  /// Total useful tokens (sum of original lengths).
  std::size_t UsefulTokens() const;
  /// EffectiveTokens / UsefulTokens: 1.0 means no padding waste.
  double PaddingOverhead() const;
};

/// Applies a batching policy to raw sequence lengths.
/// For kMicroBatch, `micro_batch` is the micro-batch size (must divide
/// nothing in particular; the tail micro-batch may be short).
/// For kPadToMax, `pad_to` > 0 pads to max(batch max, pad_to) -- use the
/// dataset maximum to model frameworks that fix the padded length per task
/// (Section 5.2 pads "to the maximum sequence length" of the task).
Batch MakeBatch(std::vector<std::size_t> lengths, BatchPolicy policy,
                std::size_t micro_batch = 4, std::size_t pad_to = 0);

/// Static work partition for the batched execution runtime: assigns the
/// sequences (by index into `lengths`) to `workers` shards, balancing
/// total tokens with longest-processing-time-first greedy placement.
/// Every index appears in exactly one shard; trailing shards may be empty
/// when there are fewer sequences than workers.  Attention cost grows
/// superlinearly in length, so token balance is the right first-order
/// proxy; the BatchRunner's dynamic cursor handles the remainder.
std::vector<std::vector<std::size_t>> ShardByTokens(
    const std::vector<std::size_t>& lengths, std::size_t workers);

}  // namespace latte
