#pragma once
// Evaluation dataset statistics (Table 1) and sequence-length sampling.
//
// We have no access to the raw SQuAD/RTE/MRPC corpora in this offline
// environment, so lengths are sampled from a truncated log-normal fit whose
// mean and maximum match the statistics the paper reports in Table 1.
// Natural-language sentence lengths are classically well described by a
// log-normal; the two published moments pin down its parameters.

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/rng.hpp"

namespace latte {

/// Which headline metric a dataset reports (Section 5.1).
enum class Metric { kF1, kAccuracy };

/// Statistics of one evaluation dataset, matching Table 1.
struct DatasetSpec {
  std::string name;
  double avg_len = 0;   ///< average sequence length (tokens)
  double max_len = 0;   ///< maximum sequence length (tokens)
  double min_len = 4;   ///< shortest sequence we sample
  Metric metric = Metric::kAccuracy;
  /// Published dense-baseline score (%) of BERT-base on this dataset; used
  /// by the calibrated accuracy model to anchor the y-axis of Fig 6.
  double baseline_score = 0;

  /// Computational overhead of max-length padding (Table 1 "Max/Avg").
  double MaxAvgRatio() const { return max_len / avg_len; }
};

/// SQuAD v1.1: avg 177, max 821, F1 (BERT-base F1 ~ 88.5).
DatasetSpec Squad();
/// RTE: avg 68, max 253, accuracy (BERT-base acc ~ 66.4).
DatasetSpec Rte();
/// MRPC: avg 53, max 86, F1 (BERT-base F1 ~ 88.9).
DatasetSpec Mrpc();

/// All three datasets, Table 1 order.
std::vector<DatasetSpec> DatasetZoo();

/// Truncated log-normal sequence-length sampler fit to (avg, max).
///
/// Parameters are chosen so that E[length] == avg and the 99.9th percentile
/// lands on max; samples outside [min_len, max_len] are clamped.
class LengthSampler {
 public:
  explicit LengthSampler(const DatasetSpec& spec);

  /// Draws one sequence length in [min_len, max_len].
  std::size_t Sample(Rng& rng) const;

  /// Draws `count` lengths.
  std::vector<std::size_t> SampleMany(Rng& rng, std::size_t count) const;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  DatasetSpec spec_;
  double mu_ = 0;
  double sigma_ = 0;
};

}  // namespace latte
