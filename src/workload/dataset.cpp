#include "workload/dataset.hpp"

#include <algorithm>
#include <cmath>

namespace latte {

DatasetSpec Squad() {
  DatasetSpec d;
  d.name = "SQuAD v1.1";
  d.avg_len = 177;
  d.max_len = 821;
  d.metric = Metric::kF1;
  d.baseline_score = 88.5;
  return d;
}

DatasetSpec Rte() {
  DatasetSpec d;
  d.name = "RTE";
  d.avg_len = 68;
  d.max_len = 253;
  d.metric = Metric::kAccuracy;
  d.baseline_score = 66.4;
  return d;
}

DatasetSpec Mrpc() {
  DatasetSpec d;
  d.name = "MRPC";
  d.avg_len = 53;
  d.max_len = 86;
  d.metric = Metric::kF1;
  d.baseline_score = 88.9;
  return d;
}

std::vector<DatasetSpec> DatasetZoo() { return {Squad(), Rte(), Mrpc()}; }

LengthSampler::LengthSampler(const DatasetSpec& spec) : spec_(spec) {
  // Fit: mean of log-normal = exp(mu + sigma^2/2) = avg, and the 99.9th
  // percentile exp(mu + z*sigma) = max with z = 3.0902.  Substituting mu
  // gives  ln(max/avg) = z*sigma - sigma^2/2, solved by bisection on
  // sigma in (0, z) where the RHS is increasing.
  constexpr double kZ = 3.0902;  // Phi^-1(0.999)
  const double target = std::log(spec.max_len / spec.avg_len);
  double lo = 1e-6, hi = kZ;  // RHS max at sigma=z: z^2/2 > ln(max/avg) here
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double rhs = kZ * mid - 0.5 * mid * mid;
    if (rhs < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  sigma_ = 0.5 * (lo + hi);
  mu_ = std::log(spec.avg_len) - 0.5 * sigma_ * sigma_;
}

std::size_t LengthSampler::Sample(Rng& rng) const {
  const double x = std::exp(mu_ + sigma_ * rng.NextNormal());
  const double clamped = std::clamp(x, spec_.min_len, spec_.max_len);
  return static_cast<std::size_t>(std::lround(clamped));
}

std::vector<std::size_t> LengthSampler::SampleMany(Rng& rng,
                                                   std::size_t count) const {
  std::vector<std::size_t> out(count);
  for (auto& n : out) n = Sample(rng);
  return out;
}

}  // namespace latte
