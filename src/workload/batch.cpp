#include "workload/batch.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace latte {

std::size_t Batch::EffectiveTokens() const {
  return std::accumulate(effective_lengths.begin(), effective_lengths.end(),
                         std::size_t{0});
}

std::size_t Batch::UsefulTokens() const {
  return std::accumulate(original_lengths.begin(), original_lengths.end(),
                         std::size_t{0});
}

double Batch::PaddingOverhead() const {
  const std::size_t useful = UsefulTokens();
  if (useful == 0) return 1.0;
  return static_cast<double>(EffectiveTokens()) /
         static_cast<double>(useful);
}

Batch MakeBatch(std::vector<std::size_t> lengths, BatchPolicy policy,
                std::size_t micro_batch, std::size_t pad_to) {
  if (micro_batch == 0) {
    throw std::invalid_argument("MakeBatch: micro_batch must be >= 1");
  }
  Batch b;
  switch (policy) {
    case BatchPolicy::kPadToMax: {
      std::size_t mx =
          lengths.empty()
              ? 0
              : *std::max_element(lengths.begin(), lengths.end());
      mx = std::max(mx, pad_to);
      b.original_lengths = std::move(lengths);
      b.effective_lengths.assign(b.original_lengths.size(), mx);
      break;
    }
    case BatchPolicy::kMicroBatch: {
      // Sort first so micro-batches group similar lengths (TurboTransformer
      // batches requests of similar length together), then pad within each
      // micro-batch to its own maximum.
      std::sort(lengths.begin(), lengths.end(), std::greater<>());
      b.original_lengths = lengths;
      b.effective_lengths.resize(lengths.size());
      for (std::size_t start = 0; start < lengths.size();
           start += micro_batch) {
        const std::size_t end =
            std::min(start + micro_batch, lengths.size());
        const std::size_t mx = lengths[start];  // sorted: first is max
        for (std::size_t i = start; i < end; ++i) {
          b.effective_lengths[i] = mx;
        }
      }
      break;
    }
    case BatchPolicy::kSortedDescending: {
      std::sort(lengths.begin(), lengths.end(), std::greater<>());
      b.original_lengths = lengths;
      b.effective_lengths = std::move(lengths);
      break;
    }
  }
  return b;
}

}  // namespace latte
