#include "workload/batch.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace latte {

std::size_t Batch::EffectiveTokens() const {
  return std::accumulate(effective_lengths.begin(), effective_lengths.end(),
                         std::size_t{0});
}

std::size_t Batch::UsefulTokens() const {
  return std::accumulate(original_lengths.begin(), original_lengths.end(),
                         std::size_t{0});
}

double Batch::PaddingOverhead() const {
  const std::size_t useful = UsefulTokens();
  if (useful == 0) return 1.0;
  return static_cast<double>(EffectiveTokens()) /
         static_cast<double>(useful);
}

Batch MakeBatch(std::vector<std::size_t> lengths, BatchPolicy policy,
                std::size_t micro_batch, std::size_t pad_to) {
  if (micro_batch == 0) {
    throw std::invalid_argument("MakeBatch: micro_batch must be >= 1");
  }
  Batch b;
  switch (policy) {
    case BatchPolicy::kPadToMax: {
      std::size_t mx =
          lengths.empty()
              ? 0
              : *std::max_element(lengths.begin(), lengths.end());
      mx = std::max(mx, pad_to);
      b.original_lengths = std::move(lengths);
      b.effective_lengths.assign(b.original_lengths.size(), mx);
      break;
    }
    case BatchPolicy::kMicroBatch: {
      // Sort first so micro-batches group similar lengths (TurboTransformer
      // batches requests of similar length together), then pad within each
      // micro-batch to its own maximum.
      std::sort(lengths.begin(), lengths.end(), std::greater<>());
      b.original_lengths = lengths;
      b.effective_lengths.resize(lengths.size());
      for (std::size_t start = 0; start < lengths.size();
           start += micro_batch) {
        const std::size_t end =
            std::min(start + micro_batch, lengths.size());
        const std::size_t mx = lengths[start];  // sorted: first is max
        for (std::size_t i = start; i < end; ++i) {
          b.effective_lengths[i] = mx;
        }
      }
      break;
    }
    case BatchPolicy::kSortedDescending: {
      std::sort(lengths.begin(), lengths.end(), std::greater<>());
      b.original_lengths = lengths;
      b.effective_lengths = std::move(lengths);
      break;
    }
  }
  return b;
}

std::vector<std::vector<std::size_t>> ShardByTokens(
    const std::vector<std::size_t>& lengths, std::size_t workers) {
  if (workers == 0) {
    throw std::invalid_argument("ShardByTokens: workers must be >= 1");
  }
  // Longest-processing-time-first: place each sequence, longest first,
  // onto the shard with the fewest tokens so far (4/3-approximation to the
  // optimal makespan).
  std::vector<std::size_t> order(lengths.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (lengths[a] != lengths[b]) return lengths[a] > lengths[b];
    return a < b;  // deterministic tie-break
  });

  std::vector<std::vector<std::size_t>> shards(workers);
  std::vector<std::size_t> tokens(workers, 0);
  for (std::size_t idx : order) {
    const std::size_t w = static_cast<std::size_t>(
        std::min_element(tokens.begin(), tokens.end()) - tokens.begin());
    shards[w].push_back(idx);
    tokens[w] += lengths[idx];
  }
  return shards;
}

}  // namespace latte
