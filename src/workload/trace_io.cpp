#include "workload/trace_io.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/json_writer.hpp"
#include "search/json_io.hpp"

namespace latte {
namespace {

std::string HexId(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(id));
  return buf;
}

std::uint64_t ParseHexId(const std::string& text) {
  if (text.size() < 3 || text[0] != '0' || text[1] != 'x') {
    throw std::invalid_argument("lattetrace: record id is not a 0x... hex string: " +
                                text);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str() + 2, &end, 16);
  if (errno != 0 || end == text.c_str() + 2 || *end != '\0') {
    throw std::invalid_argument("lattetrace: malformed record id: " + text);
  }
  return v;
}

}  // namespace

std::string TraceToJson(const std::vector<TimedRequest>& trace) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("magic").Value(kTraceMagic);
  json.Key("version").Value(kTraceVersion);
  json.Key("requests").Value(trace.size());
  json.Key("records");
  json.BeginArray();
  for (const TimedRequest& r : trace) {
    json.BeginObject();
    json.Key("arrival_s").ValueExact(r.arrival_s);
    json.Key("length").Value(r.length);
    json.Key("id").Value(HexId(r.id));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::vector<TimedRequest> TraceFromJson(std::string_view text) {
  const search::JsonValue doc = search::ParseJson(text);
  const search::JsonValue* magic = doc.Find("magic");
  if (magic == nullptr || magic->AsString("magic") != kTraceMagic) {
    throw std::invalid_argument("lattetrace: missing or wrong magic");
  }
  const std::size_t version = doc.Get("version").AsSize("version");
  if (version != kTraceVersion) {
    throw std::invalid_argument("lattetrace: unknown version " +
                                std::to_string(version));
  }
  const std::size_t count = doc.Get("requests").AsSize("requests");
  const search::JsonValue& records = doc.Get("records");
  if (records.kind != search::JsonValue::Kind::kArray) {
    throw std::invalid_argument("lattetrace: records is not an array");
  }
  if (records.array.size() != count) {
    throw std::invalid_argument("lattetrace: requests count does not match records");
  }
  std::vector<TimedRequest> trace;
  trace.reserve(records.array.size());
  for (const search::JsonValue& rec : records.array) {
    TimedRequest r;
    r.arrival_s = rec.Get("arrival_s").AsNumber("arrival_s");
    r.length = rec.Get("length").AsSize("length");
    r.id = ParseHexId(rec.Get("id").AsString("id"));
    trace.push_back(r);
  }
  return trace;
}

bool CaptureTrace(const std::vector<TimedRequest>& trace,
                  const std::string& path) {
  obs::JsonWriter json;
  json.Raw(TraceToJson(trace));
  return json.WriteFile(path);
}

std::vector<TimedRequest> LoadTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::invalid_argument("lattetrace: cannot read " + path + ": " +
                                std::strerror(errno));
  }
  std::string text;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return TraceFromJson(text);
}

bool TryLoadTrace(const std::string& path, std::vector<TimedRequest>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  out = LoadTrace(path);
  return true;
}

}  // namespace latte
