#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>

namespace latte {
namespace {

/// Adds +-rel * max|x| uniform perturbation, emulating 8-bit fixed-point
/// storage of the tensor.
void QuantPerturbInPlace(Rng& rng, MatrixF& m, double rel) {
  if (rel <= 0.0) return;
  float mx = 0.f;
  for (float x : m.flat()) mx = std::max(mx, std::fabs(x));
  const double amp = rel * mx;
  for (auto& x : m.flat()) {
    x += static_cast<float>(rng.NextUniform(-amp, amp));
  }
}

}  // namespace

AttentionProblem GenerateAttentionProblem(Rng& rng, std::size_t n,
                                          const AttentionWorkloadConfig& cfg) {
  const std::size_t d = cfg.head_dim;
  AttentionProblem p;
  p.k = rng.NormalMatrix(n, d, 0.0, 1.0);
  p.v = rng.NormalMatrix(n, d, 0.0, 1.0);
  p.q = MatrixF(n, d);

  const std::size_t m = std::min<std::size_t>(cfg.dominant_keys, n);
  for (std::size_t i = 0; i < n; ++i) {
    auto qi = p.q.row(i);
    // Isotropic noise component.
    for (auto& x : qi) {
      x = static_cast<float>(rng.NextNormal(0.0, cfg.noise));
    }
    // Aligned component: geometric mixture of m random key directions.
    double w = cfg.signal;
    for (std::size_t t = 0; t < m; ++t) {
      const std::size_t j = rng.NextIndex(n);
      auto kj = p.k.row(j);
      for (std::size_t c = 0; c < d; ++c) {
        qi[c] += static_cast<float>(w) * kj[c];
      }
      w *= cfg.decay;
    }
  }

  QuantPerturbInPlace(rng, p.q, cfg.weight_quant_rel);
  QuantPerturbInPlace(rng, p.k, cfg.weight_quant_rel);
  QuantPerturbInPlace(rng, p.v, cfg.weight_quant_rel);
  return p;
}

AttentionWorkloadConfig WorkloadForDataset(const DatasetSpec& spec,
                                           std::size_t head_dim) {
  AttentionWorkloadConfig cfg;
  cfg.head_dim = head_dim;
  if (spec.name.rfind("SQuAD", 0) == 0) {
    // QA: long contexts, attention focuses on answer-span tokens.
    cfg.dominant_keys = 10;
    cfg.signal = 1.3;
    cfg.decay = 0.75;
  } else if (spec.name == "RTE") {
    cfg.dominant_keys = 8;
    cfg.signal = 1.15;
    cfg.decay = 0.7;
  } else {  // MRPC and default
    cfg.dominant_keys = 8;
    cfg.signal = 1.2;
    cfg.decay = 0.7;
  }
  return cfg;
}

MatrixF MakeInputEmbedding(Rng& rng, std::size_t n, std::size_t hidden) {
  return rng.NormalMatrix(n, hidden, 0.0, 1.0);
}

}  // namespace latte
