#pragma once
// Synthetic attention workload generation.
//
// Substitute for pretrained-BERT activations (see DESIGN.md section 2): we
// generate Q/K/V tensors whose attention-score distribution reproduces the
// property Fig 6 actually measures -- BERT-family attention concentrates
// most softmax mass on a small set of dominant keys per query.  Each query
// is constructed as a noisy combination of a few randomly chosen key
// directions with geometrically decaying weights; `signal` controls how
// peaked the resulting softmax is and `dominant_keys` how many keys matter.

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"
#include "workload/dataset.hpp"

namespace latte {

/// Knobs of the synthetic attention generator.
struct AttentionWorkloadConfig {
  std::size_t head_dim = 64;
  std::size_t dominant_keys = 8;  ///< strongly attended keys per query
  double signal = 1.2;            ///< alignment strength with dominant keys
  double decay = 0.7;             ///< geometric weight decay across dominants
  double noise = 1.0;             ///< stddev of the isotropic query noise
  /// Relative perturbation emulating 8-bit fixed-point model quantization
  /// (Section 5.1: "models are quantized into 8 bits ... without accuracy
  /// drop"); applied to Q, K and V after generation.
  double weight_quant_rel = 1.0 / 255.0;
};

/// One single-head attention problem instance.
struct AttentionProblem {
  MatrixF q;  ///< (n x d)
  MatrixF k;  ///< (n x d)
  MatrixF v;  ///< (n x d)
};

/// Generates an n-token attention problem with the given concentration.
AttentionProblem GenerateAttentionProblem(Rng& rng, std::size_t n,
                                          const AttentionWorkloadConfig& cfg);

/// Concentration parameters used for each evaluation dataset.  QA-style
/// long-context tasks (SQuAD) attend a few answer-span tokens strongly;
/// sentence-pair tasks (RTE, MRPC) spread attention slightly wider.
AttentionWorkloadConfig WorkloadForDataset(const DatasetSpec& spec,
                                           std::size_t head_dim = 64);

/// I.i.d. N(0, 1) embedding block (n x hidden) for encoder-level tests.
MatrixF MakeInputEmbedding(Rng& rng, std::size_t n, std::size_t hidden);

}  // namespace latte
