#pragma once
// Timestamped request streams: the arrival half of an online serving
// scenario.
//
// The serving simulator (fpga/serving) and the functional serving engine
// (serve/engine) consume the same traces, so a scenario can be replayed
// against the performance twin and the real runtime and compared number
// for number.  Arrivals are Poisson (exponential inter-arrival gaps) and
// lengths follow the dataset's truncated log-normal fit, exactly as the
// original simulator sampled them.

#include <cstdint>
#include <vector>

#include "config/check.hpp"
#include "workload/dataset.hpp"

namespace latte {

/// Identity of a request whose content is unique to it (no other request
/// shares it, so it can never produce a cache hit).
inline constexpr std::uint64_t kAnonymousId = ~0ull;

/// One request of a serving trace: when it arrives, how long it is and --
/// for popularity-skewed workloads -- which content it carries.
struct TimedRequest {
  double arrival_s = 0;     ///< absolute arrival time (seconds)
  std::size_t length = 0;   ///< sequence length (tokens)
  /// Content identity: requests sharing an id are byte-identical inputs
  /// (the engine synthesizes their embeddings from the id, and the result
  /// cache may serve repeats from one execution).  kAnonymousId (the
  /// default, what GeneratePoissonTrace emits) means unique content.
  std::uint64_t id = kAnonymousId;
};

/// Knobs of the Poisson trace generator.
struct PoissonTraceConfig {
  double arrival_rate_rps = 50;  ///< mean arrival rate (requests/s)
  std::size_t requests = 512;    ///< trace size
  std::uint64_t seed = 1;        ///< drives both gaps and lengths
};

/// Names every illegal field (non-positive or NaN rate, zero requests);
/// empty means legal.
ConfigIssues CheckPoissonTraceConfig(const PoissonTraceConfig& cfg);

/// Throws std::invalid_argument when the trace configuration is malformed
/// (non-positive or NaN rate, zero requests).
void ValidatePoissonTraceConfig(const PoissonTraceConfig& cfg);

/// Generates a trace of `cfg.requests` timestamped requests: exponential
/// inter-arrival gaps at `cfg.arrival_rate_rps` and dataset-shaped lengths.
/// Deterministic in the seed; arrivals are strictly ordered in time.
std::vector<TimedRequest> GeneratePoissonTrace(const PoissonTraceConfig& cfg,
                                               const DatasetSpec& dataset);

/// Knobs of the popularity-skewed (Zipfian) trace generator.
struct ZipfTraceConfig {
  double arrival_rate_rps = 50;   ///< mean arrival rate (requests/s)
  std::size_t requests = 512;     ///< trace size
  std::size_t population = 64;    ///< distinct request identities
  /// Zipf exponent: identity rank k is drawn with probability
  /// proportional to (k+1)^-skew.  0 degenerates to uniform; production
  /// content popularity typically fits 0.6-1.2.
  double skew = 1.0;
  std::uint64_t seed = 1;         ///< drives gaps, lengths and identities
};

/// Names every illegal field (non-positive or NaN rate, zero requests,
/// zero population, negative or NaN skew); empty means legal.
ConfigIssues CheckZipfTraceConfig(const ZipfTraceConfig& cfg);

/// Throws std::invalid_argument naming the offending field (non-positive
/// or NaN rate, zero requests, zero population, negative or NaN skew).
void ValidateZipfTraceConfig(const ZipfTraceConfig& cfg);

/// Generates a popularity-skewed trace: Poisson arrivals at
/// `cfg.arrival_rate_rps`, identities Zipf(`cfg.skew`)-sampled from a
/// population of `cfg.population`, and one dataset-shaped length per
/// identity (same id always means the same content, hence the same
/// length).  Ids are well-mixed functions of (seed, rank) so two traces
/// with different seeds never alias identities.  Deterministic in the
/// seed; arrivals are strictly ordered in time.
std::vector<TimedRequest> GenerateZipfTrace(const ZipfTraceConfig& cfg,
                                            const DatasetSpec& dataset);

/// One stage of a load ramp: a Poisson segment at a fixed rate.
struct RampStage {
  double arrival_rate_rps = 50;  ///< mean arrival rate within the stage
  std::size_t requests = 128;    ///< requests emitted by the stage
};

/// Knobs of the load-ramp trace generator: consecutive Poisson stages on
/// one continuous timeline (warmup -> overload -> cooldown is the shape
/// the adaptive-serving bench drives).
struct RampTraceConfig {
  std::vector<RampStage> stages;
  std::uint64_t seed = 1;  ///< drives gaps and lengths across all stages
};

/// Names every illegal field (no stages, non-positive or NaN stage rate,
/// empty stage); empty means legal.
ConfigIssues CheckRampTraceConfig(const RampTraceConfig& cfg);

/// Throws std::invalid_argument naming the offending field.
void ValidateRampTraceConfig(const RampTraceConfig& cfg);

/// Generates the concatenated trace: stage i's exponential gaps at its own
/// rate continue from the previous stage's last arrival, so the timeline
/// is continuous and arrivals are strictly ordered.  One Rng drives the
/// whole trace -- deterministic in the seed, like the other generators.
std::vector<TimedRequest> GenerateRampTrace(const RampTraceConfig& cfg,
                                            const DatasetSpec& dataset);

/// Fraction of requests whose identity already appeared earlier in the
/// trace -- the share a warm result cache could serve without computing.
/// Anonymous requests never repeat.
double TraceDuplicateRate(const std::vector<TimedRequest>& trace);

/// Sum of sequence lengths over a slice of the trace (token accounting for
/// batch formers and admission budgets).
std::size_t TraceTokens(const std::vector<TimedRequest>& trace);

}  // namespace latte
