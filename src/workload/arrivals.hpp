#pragma once
// Timestamped request streams: the arrival half of an online serving
// scenario.
//
// The serving simulator (fpga/serving) and the functional serving engine
// (serve/engine) consume the same traces, so a scenario can be replayed
// against the performance twin and the real runtime and compared number
// for number.  Arrivals are Poisson (exponential inter-arrival gaps) and
// lengths follow the dataset's truncated log-normal fit, exactly as the
// original simulator sampled them.

#include <cstdint>
#include <vector>

#include "workload/dataset.hpp"

namespace latte {

/// One request of a serving trace: when it arrives and how long it is.
struct TimedRequest {
  double arrival_s = 0;     ///< absolute arrival time (seconds)
  std::size_t length = 0;   ///< sequence length (tokens)
};

/// Knobs of the Poisson trace generator.
struct PoissonTraceConfig {
  double arrival_rate_rps = 50;  ///< mean arrival rate (requests/s)
  std::size_t requests = 512;    ///< trace size
  std::uint64_t seed = 1;        ///< drives both gaps and lengths
};

/// Throws std::invalid_argument when the trace configuration is malformed
/// (non-positive or NaN rate, zero requests).
void ValidatePoissonTraceConfig(const PoissonTraceConfig& cfg);

/// Generates a trace of `cfg.requests` timestamped requests: exponential
/// inter-arrival gaps at `cfg.arrival_rate_rps` and dataset-shaped lengths.
/// Deterministic in the seed; arrivals are strictly ordered in time.
std::vector<TimedRequest> GeneratePoissonTrace(const PoissonTraceConfig& cfg,
                                               const DatasetSpec& dataset);

/// Sum of sequence lengths over a slice of the trace (token accounting for
/// batch formers and admission budgets).
std::size_t TraceTokens(const std::vector<TimedRequest>& trace);

}  // namespace latte
