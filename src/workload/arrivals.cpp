#include "workload/arrivals.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace latte {

void ValidatePoissonTraceConfig(const PoissonTraceConfig& cfg) {
  // Negated comparison so NaN fails validation instead of slipping past.
  if (!(cfg.arrival_rate_rps > 0)) {
    throw std::invalid_argument(
        "PoissonTraceConfig: arrival_rate_rps must be > 0 (got " +
        std::to_string(cfg.arrival_rate_rps) + ")");
  }
  if (cfg.requests == 0) {
    throw std::invalid_argument(
        "PoissonTraceConfig: requests must be >= 1 (nothing to generate)");
  }
}

std::vector<TimedRequest> GeneratePoissonTrace(const PoissonTraceConfig& cfg,
                                               const DatasetSpec& dataset) {
  ValidatePoissonTraceConfig(cfg);
  Rng rng(cfg.seed);
  LengthSampler sampler(dataset);
  std::vector<TimedRequest> trace;
  trace.reserve(cfg.requests);
  double t = 0;
  for (std::size_t i = 0; i < cfg.requests; ++i) {
    double u = rng.NextUniform();
    if (u < 1e-300) u = 1e-300;
    t += -std::log(u) / cfg.arrival_rate_rps;  // exponential gap
    trace.push_back({t, sampler.Sample(rng)});
  }
  return trace;
}

std::size_t TraceTokens(const std::vector<TimedRequest>& trace) {
  std::size_t tokens = 0;
  for (const auto& r : trace) tokens += r.length;
  return tokens;
}

}  // namespace latte
