#include "workload/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace latte {

ConfigIssues CheckPoissonTraceConfig(const PoissonTraceConfig& cfg) {
  ConfigIssues issues;
  // Negated comparison so NaN fails validation instead of slipping past.
  if (!(cfg.arrival_rate_rps > 0)) {
    AddIssue(issues, "arrival_rate_rps",
             "must be > 0 (got " + std::to_string(cfg.arrival_rate_rps) + ")");
  }
  if (cfg.requests == 0) {
    AddIssue(issues, "requests", "must be >= 1 (nothing to generate)");
  }
  return issues;
}

void ValidatePoissonTraceConfig(const PoissonTraceConfig& cfg) {
  ThrowOnIssues("PoissonTraceConfig", CheckPoissonTraceConfig(cfg));
}

std::vector<TimedRequest> GeneratePoissonTrace(const PoissonTraceConfig& cfg,
                                               const DatasetSpec& dataset) {
  ValidatePoissonTraceConfig(cfg);
  Rng rng(cfg.seed);
  LengthSampler sampler(dataset);
  std::vector<TimedRequest> trace;
  trace.reserve(cfg.requests);
  double t = 0;
  for (std::size_t i = 0; i < cfg.requests; ++i) {
    double u = rng.NextUniform();
    if (u < 1e-300) u = 1e-300;
    t += -std::log(u) / cfg.arrival_rate_rps;  // exponential gap
    trace.push_back({t, sampler.Sample(rng)});
  }
  return trace;
}

ConfigIssues CheckZipfTraceConfig(const ZipfTraceConfig& cfg) {
  ConfigIssues issues;
  if (!(cfg.arrival_rate_rps > 0)) {
    AddIssue(issues, "arrival_rate_rps",
             "must be > 0 (got " + std::to_string(cfg.arrival_rate_rps) + ")");
  }
  if (cfg.requests == 0) {
    AddIssue(issues, "requests", "must be >= 1 (nothing to generate)");
  }
  if (cfg.population == 0) {
    AddIssue(issues, "population", "must be >= 1 (no identities to sample)");
  }
  if (!(cfg.skew >= 0)) {
    AddIssue(issues, "skew",
             "must be >= 0 (0 = uniform popularity), got " +
                 std::to_string(cfg.skew));
  }
  return issues;
}

void ValidateZipfTraceConfig(const ZipfTraceConfig& cfg) {
  ThrowOnIssues("ZipfTraceConfig", CheckZipfTraceConfig(cfg));
}

std::vector<TimedRequest> GenerateZipfTrace(const ZipfTraceConfig& cfg,
                                            const DatasetSpec& dataset) {
  ValidateZipfTraceConfig(cfg);
  Rng rng(cfg.seed);

  // Content per identity, fixed up front: rank k gets one dataset-shaped
  // length and a seed-scoped, well-mixed id, so the same id always names
  // the same content and different seeds never alias.
  LengthSampler sampler(dataset);
  std::vector<std::size_t> lengths(cfg.population);
  std::vector<std::uint64_t> ids(cfg.population);
  for (std::size_t k = 0; k < cfg.population; ++k) {
    lengths[k] = sampler.Sample(rng);
    ids[k] = MixHash64(cfg.seed ^ (0x9e3779b97f4a7c15ULL *
                                   (static_cast<std::uint64_t>(k) + 1)));
  }

  // Zipf inverse CDF over ranks: cumulative (k+1)^-skew.  skew = 0 makes
  // every weight 1 -- the uniform degenerate case.
  std::vector<double> cdf(cfg.population);
  double total = 0;
  for (std::size_t k = 0; k < cfg.population; ++k) {
    total += std::pow(static_cast<double>(k + 1), -cfg.skew);
    cdf[k] = total;
  }

  std::vector<TimedRequest> trace;
  trace.reserve(cfg.requests);
  double t = 0;
  for (std::size_t i = 0; i < cfg.requests; ++i) {
    double u = rng.NextUniform();
    if (u < 1e-300) u = 1e-300;
    t += -std::log(u) / cfg.arrival_rate_rps;  // exponential gap
    const double target = rng.NextUniform() * total;
    const std::size_t rank = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), target) - cdf.begin());
    const std::size_t k = std::min(rank, cfg.population - 1);
    trace.push_back({t, lengths[k], ids[k]});
  }
  return trace;
}

ConfigIssues CheckRampTraceConfig(const RampTraceConfig& cfg) {
  ConfigIssues issues;
  if (cfg.stages.empty()) {
    AddIssue(issues, "stages", "must name at least one stage");
  }
  for (std::size_t i = 0; i < cfg.stages.size(); ++i) {
    const std::string prefix = "stages[" + std::to_string(i) + "]";
    if (!(cfg.stages[i].arrival_rate_rps > 0)) {
      AddIssue(issues, prefix + ".arrival_rate_rps",
               "must be > 0 (got " +
                   std::to_string(cfg.stages[i].arrival_rate_rps) + ")");
    }
    if (cfg.stages[i].requests == 0) {
      AddIssue(issues, prefix + ".requests",
               "must be >= 1 (an empty stage has no duration)");
    }
  }
  return issues;
}

void ValidateRampTraceConfig(const RampTraceConfig& cfg) {
  ThrowOnIssues("RampTraceConfig", CheckRampTraceConfig(cfg));
}

std::vector<TimedRequest> GenerateRampTrace(const RampTraceConfig& cfg,
                                            const DatasetSpec& dataset) {
  ValidateRampTraceConfig(cfg);
  Rng rng(cfg.seed);
  LengthSampler sampler(dataset);
  std::size_t total = 0;
  for (const RampStage& stage : cfg.stages) total += stage.requests;
  std::vector<TimedRequest> trace;
  trace.reserve(total);
  double t = 0;
  for (const RampStage& stage : cfg.stages) {
    for (std::size_t i = 0; i < stage.requests; ++i) {
      double u = rng.NextUniform();
      if (u < 1e-300) u = 1e-300;
      t += -std::log(u) / stage.arrival_rate_rps;  // exponential gap
      trace.push_back({t, sampler.Sample(rng)});
    }
  }
  return trace;
}

double TraceDuplicateRate(const std::vector<TimedRequest>& trace) {
  if (trace.empty()) return 0;
  std::unordered_set<std::uint64_t> seen;
  std::size_t repeats = 0;
  for (const TimedRequest& r : trace) {
    if (r.id == kAnonymousId) continue;  // unique content, never a repeat
    if (!seen.insert(r.id).second) ++repeats;
  }
  return static_cast<double>(repeats) / static_cast<double>(trace.size());
}

std::size_t TraceTokens(const std::vector<TimedRequest>& trace) {
  std::size_t tokens = 0;
  for (const auto& r : trace) tokens += r.length;
  return tokens;
}

}  // namespace latte
