#pragma once
// Model zoo: the four evaluation models of Table 1.

#include <string>
#include <vector>

#include "nn/op_cost.hpp"

namespace latte {

/// A self-attention-centric model: a stack of identical encoder layers.
struct ModelConfig {
  std::string name;
  std::size_t layers = 12;
  EncoderConfig encoder;

  /// FLOPs of the full encoder stack at sequence length n.
  double TotalModelFlops(double n, AttentionMode mode,
                         std::size_t top_k = 30) const;

  /// FLOPs of the self-attention workflow only (Fig 7(b) scope).
  double AttentionModelFlops(double n, AttentionMode mode,
                             std::size_t top_k = 30) const;

  /// Off-chip traffic (elements) of the full stack at sequence length n.
  double TotalModelOffchipElems(double n, AttentionMode mode,
                                std::size_t top_k = 30) const;
};

/// Table 1: DistilBERT, 6 layers, hidden 768, 12 heads.
ModelConfig DistilBert();
/// Table 1: BERT-base, 12 layers, hidden 768, 12 heads.
ModelConfig BertBase();
/// Table 1: RoBERTa, 12 layers, hidden 768, 12 heads (BERT-base shape).
ModelConfig Roberta();
/// Table 1: BERT-large, 24 layers, hidden 1024, 16 heads.
ModelConfig BertLarge();

/// All four models, Table 1 order.
std::vector<ModelConfig> ModelZoo();

}  // namespace latte
