#include "model/config.hpp"

namespace latte {
namespace {

ModelConfig Make(std::string name, std::size_t layers, std::size_t hidden,
                 std::size_t heads) {
  ModelConfig m;
  m.name = std::move(name);
  m.layers = layers;
  m.encoder.hidden = hidden;
  m.encoder.heads = heads;
  return m;
}

}  // namespace

double ModelConfig::TotalModelFlops(double n, AttentionMode mode,
                                    std::size_t top_k) const {
  const auto ops = EncoderOps(encoder, mode, top_k);
  return static_cast<double>(layers) * TotalFlops(ops, n);
}

double ModelConfig::AttentionModelFlops(double n, AttentionMode mode,
                                        std::size_t top_k) const {
  const auto ops = EncoderOps(encoder, mode, top_k);
  return static_cast<double>(layers) * AttentionFlops(ops, n);
}

double ModelConfig::TotalModelOffchipElems(double n, AttentionMode mode,
                                           std::size_t top_k) const {
  const auto ops = EncoderOps(encoder, mode, top_k);
  return static_cast<double>(layers) * TotalOffchipElems(ops, n);
}

ModelConfig DistilBert() { return Make("DistilBERT", 6, 768, 12); }
ModelConfig BertBase() { return Make("BERT-base", 12, 768, 12); }
ModelConfig Roberta() { return Make("RoBERTa", 12, 768, 12); }
ModelConfig BertLarge() { return Make("BERT-large", 24, 1024, 16); }

std::vector<ModelConfig> ModelZoo() {
  return {DistilBert(), BertBase(), Roberta(), BertLarge()};
}

}  // namespace latte
