#pragma once
// Functional multi-layer inference engine.
//
// Instantiates real weights for a model configuration and runs the full
// encoder stack in any of four execution modes: {float, int8 fixed-point}
// x {dense, sparse Top-k} -- the four corners the paper's co-design moves
// between (fp32 GPU baseline -> 8-bit FPGA datapath -> sparse attention).
// The FPGA performance story lives in fpga/; this engine is the functional
// twin used for correctness and fidelity experiments on full models.

#include "core/sparse_attention.hpp"
#include "model/config.hpp"
#include "nn/qlinear.hpp"
#include "runtime/batch_runner.hpp"

namespace latte {

/// Which datapath to run.
enum class InferenceMode {
  kDenseFloat,   ///< fp32 + dense attention (the CPU/GPU reference)
  kSparseFloat,  ///< fp32 + sparse Top-k attention
  kDenseInt8,    ///< int8 matmuls + dense attention
  kSparseInt8,   ///< int8 matmuls + sparse attention (the FPGA datapath)
};

/// Inference knobs.
struct InferenceConfig {
  InferenceMode mode = InferenceMode::kSparseInt8;
  SparseAttentionConfig sparse;  ///< used by the sparse modes
};

/// Per-layer execution statistics (sparse modes only; zero otherwise).
struct LayerRunStats {
  std::size_t exact_macs = 0;
  std::size_t lut_multiplies = 0;
};

/// A model with materialized weights.
///
/// Weights are deterministic given the seed; int8 copies are prepared at
/// construction so Forward() is const and thread-compatible.
class ModelInstance {
 public:
  /// Materializes `cfg.layers` encoder layers of weights.
  ModelInstance(const ModelConfig& cfg, std::uint64_t seed);

  /// Runs the full encoder stack on x (n x hidden).
  /// If `stats` is non-null it receives one entry per layer.
  /// If `scratch` is non-null the sparse modes lease their per-row
  /// temporaries from it (the batch runtime passes one per worker).
  /// If `workspace` is non-null the float encoder layers additionally
  /// lease their GEMM intermediates and pack buffers from it; when it is
  /// null each layer runs on a call-local arena.  Outputs are
  /// bit-identical either way (same kernels, different buffers).
  MatrixF Forward(const MatrixF& x, const InferenceConfig& inf,
                  std::vector<LayerRunStats>* stats = nullptr,
                  AttentionScratch* scratch = nullptr,
                  Workspace* workspace = nullptr) const;

  /// Batched forward: runs every sequence of `xs` through the stack
  /// concurrently on `runner`.  Sequences are independent, so outputs are
  /// bit-identical to calling Forward() in a loop, at any worker count.
  /// If `stats` is non-null it receives one per-layer vector per sequence.
  std::vector<MatrixF> ForwardBatch(
      const std::vector<MatrixF>& xs, const InferenceConfig& inf,
      BatchRunner& runner,
      std::vector<std::vector<LayerRunStats>>* stats = nullptr) const;

  const ModelConfig& config() const { return cfg_; }
  std::size_t layer_count() const { return layers_.size(); }

  /// Materialized float weights of layer `i` (bounds-checked).  The
  /// adaptive layer's escalation probe reads layer 0's Q/K projections to
  /// score candidate-selector margins without running a forward pass.
  const EncoderWeights& layer(std::size_t i) const { return layers_.at(i); }

 private:
  ModelConfig cfg_;
  std::vector<EncoderWeights> layers_;
  std::vector<QuantizedEncoderWeights> qlayers_;
};

/// Shrinks a model configuration for functional experiments (hidden and
/// layer count divided by `factor`, heads adjusted to keep head_dim).
/// BERT-base / 6 -> 2 layers, hidden 128, 2 heads.
ModelConfig ScaledDown(const ModelConfig& model, std::size_t factor);

}  // namespace latte
