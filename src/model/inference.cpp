#include "model/inference.hpp"

#include <algorithm>
#include <stdexcept>

namespace latte {

ModelInstance::ModelInstance(const ModelConfig& cfg, std::uint64_t seed)
    : cfg_(cfg) {
  Rng rng(seed);
  layers_.reserve(cfg.layers);
  qlayers_.reserve(cfg.layers);
  for (std::size_t l = 0; l < cfg.layers; ++l) {
    layers_.push_back(MakeEncoderWeights(rng, cfg.encoder));
    qlayers_.push_back(QuantizedEncoderWeights::FromFloat(layers_.back()));
  }
}

MatrixF ModelInstance::Forward(const MatrixF& x, const InferenceConfig& inf,
                               std::vector<LayerRunStats>* stats,
                               AttentionScratch* scratch,
                               Workspace* workspace) const {
  if (stats != nullptr) stats->clear();

  const bool sparse = inf.mode == InferenceMode::kSparseFloat ||
                      inf.mode == InferenceMode::kSparseInt8;
  const bool int8 = inf.mode == InferenceMode::kDenseInt8 ||
                    inf.mode == InferenceMode::kSparseInt8;

  MatrixF h = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    LayerRunStats layer_stats;
    AttentionFn attn;
    if (sparse) {
      const SparseAttentionConfig sa = inf.sparse;
      auto* out = stats != nullptr ? &layer_stats : nullptr;
      attn = [sa, out, scratch](const MatrixF& q, const MatrixF& k,
                                const MatrixF& v) {
        SparseAttentionStats s;
        MatrixF ctx = scratch != nullptr
                          ? SparseAttention(q, k, v, sa, &s, *scratch)
                          : SparseAttention(q, k, v, sa, &s);
        if (out != nullptr) {
          out->exact_macs += s.exact_macs;
          out->lut_multiplies += s.lut_multiplies;
        }
        return ctx;
      };
    } else if (workspace != nullptr) {
      // Lease the score matrix and pack buffer from the per-worker arena
      // (bit-identical to DenseAttention, which runs the same code on a
      // call-local Workspace).
      attn = [workspace](const MatrixF& q, const MatrixF& k,
                         const MatrixF& v) {
        return DenseAttentionWorkspace(q, k, v, *workspace);
      };
    } else {
      attn = DenseAttention;
    }
    if (int8) {
      h = QuantizedEncoderForward(h, qlayers_[l], cfg_.encoder, attn);
    } else if (workspace != nullptr) {
      h = EncoderForwardWorkspace(h, layers_[l], cfg_.encoder, attn,
                                  *workspace);
    } else {
      h = EncoderForward(h, layers_[l], cfg_.encoder, attn);
    }
    if (stats != nullptr) stats->push_back(layer_stats);
  }
  return h;
}

std::vector<MatrixF> ModelInstance::ForwardBatch(
    const std::vector<MatrixF>& xs, const InferenceConfig& inf,
    BatchRunner& runner,
    std::vector<std::vector<LayerRunStats>>* stats) const {
  std::vector<MatrixF> out(xs.size());
  if (stats != nullptr) {
    stats->assign(xs.size(), {});
  }
  runner.Run(xs.size(), [&](std::size_t i, Workspace& ws) {
    auto* seq_stats = stats != nullptr ? &(*stats)[i] : nullptr;
    out[i] = Forward(xs[i], inf, seq_stats, &ws.attention(), &ws);
  });
  return out;
}

ModelConfig ScaledDown(const ModelConfig& model, std::size_t factor) {
  if (factor == 0) {
    throw std::invalid_argument("ScaledDown: factor must be >= 1");
  }
  ModelConfig small = model;
  small.name = model.name + "/" + std::to_string(factor);
  small.layers = std::max<std::size_t>(1, model.layers / factor);
  const std::size_t head_dim = model.encoder.head_dim();
  small.encoder.hidden =
      std::max<std::size_t>(head_dim, model.encoder.hidden / factor);
  // Keep head_dim constant so attention behaves like the full model.
  small.encoder.heads = std::max<std::size_t>(1, small.encoder.hidden / head_dim);
  small.encoder.hidden = small.encoder.heads * head_dim;
  small.encoder.ffn_dim = 4 * small.encoder.hidden;
  return small;
}

}  // namespace latte
