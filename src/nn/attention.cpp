#include "nn/attention.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "nn/ops.hpp"
#include "runtime/workspace.hpp"
#include "tensor/kernels.hpp"
#include "tensor/matmul.hpp"

namespace latte {

MatrixF DenseAttention(const MatrixF& q, const MatrixF& k, const MatrixF& v) {
  return DenseAttentionMasked(q, k, v, 0);
}

MatrixF DenseAttentionMasked(const MatrixF& q, const MatrixF& k,
                             const MatrixF& v, std::size_t valid_len) {
  Workspace ws;
  return DenseAttentionMaskedWorkspace(q, k, v, valid_len, ws);
}

MatrixF DenseAttentionWorkspace(const MatrixF& q, const MatrixF& k,
                                const MatrixF& v, Workspace& ws) {
  return DenseAttentionMaskedWorkspace(q, k, v, 0, ws);
}

MatrixF DenseAttentionMaskedWorkspace(const MatrixF& q, const MatrixF& k,
                                      const MatrixF& v, std::size_t valid_len,
                                      Workspace& ws) {
  if (q.cols() != k.cols() || k.rows() != v.rows()) {
    throw std::invalid_argument("DenseAttention: shape mismatch");
  }
  MatrixF& s = ws.Float(wslots::kAttentionScores, q.rows(), k.rows());
  MatMulBTInto(q, k, s, ws.gemm());
  ScaleInPlace(s, 1.f / std::sqrt(static_cast<float>(q.cols())));
  if (valid_len > 0 && valid_len < k.rows()) {
    constexpr float kNegInf = -std::numeric_limits<float>::infinity();
    for (std::size_t i = 0; i < s.rows(); ++i) {
      auto row = s.row(i);
      for (std::size_t j = valid_len; j < row.size(); ++j) row[j] = kNegInf;
    }
  }
  SoftmaxRowsInPlace(s);
  MatrixF out;
  MatMulInto(s, v, out, ws.gemm());
  return out;
}

std::vector<MatrixF> SplitHeads(const MatrixF& x, std::size_t heads) {
  if (heads == 0 || x.cols() % heads != 0) {
    throw std::invalid_argument("SplitHeads: cols not divisible by heads");
  }
  const std::size_t d = x.cols() / heads;
  std::vector<MatrixF> out;
  out.reserve(heads);
  for (std::size_t h = 0; h < heads; ++h) {
    MatrixF m(x.rows(), d);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      for (std::size_t j = 0; j < d; ++j) m(i, j) = x(i, h * d + j);
    }
    out.push_back(std::move(m));
  }
  return out;
}

MatrixF ConcatHeads(const std::vector<MatrixF>& heads) {
  if (heads.empty()) return {};
  const std::size_t n = heads.front().rows();
  std::size_t total = 0;
  for (const auto& h : heads) {
    if (h.rows() != n) {
      throw std::invalid_argument("ConcatHeads: row count mismatch");
    }
    total += h.cols();
  }
  MatrixF out(n, total);
  std::size_t off = 0;
  for (const auto& h : heads) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < h.cols(); ++j) out(i, off + j) = h(i, j);
    }
    off += h.cols();
  }
  return out;
}

}  // namespace latte
