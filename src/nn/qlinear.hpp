#pragma once
// 8-bit fixed-point inference path.
//
// The paper's models are "quantized into 8 bits fixed-point representation
// without accuracy drop" (Section 5.1, ref [36]), and the FPGA datapath
// charges one DSP per 8-bit MAC.  This module provides the int8 linear
// layer (per-tensor symmetric scales, int32 accumulation) and an encoder
// layer that runs every projection/FFN matmul in int8, matching what the
// hardware executes.  LayerNorm/softmax/GELU stay in float, as they do on
// the FPGA's dedicated units.

#include "nn/encoder.hpp"
#include "tensor/quantize.hpp"

namespace latte {

/// Linear layer with int8 weights and per-tensor activation quantization.
struct QuantizedLinear {
  QuantizedMatrix weight;   ///< (in x out) codes + scale
  std::vector<float> bias;  ///< float bias, applied after dequantization

  /// Quantizes an existing float layer (weights to 8-bit).
  static QuantizedLinear FromFloat(const Linear& l);

  /// y = dequant(quant8(x) * Wq) + bias.  Activations are quantized with
  /// a per-call symmetric scale; accumulation is exact int32.
  MatrixF Forward(const MatrixF& x) const;

  std::size_t in_features() const { return weight.codes.rows(); }
  std::size_t out_features() const { return weight.codes.cols(); }

  /// 8-bit MAC count of one forward pass over n rows.
  std::size_t MacCount(std::size_t n) const {
    return n * in_features() * out_features();
  }
};

/// All encoder parameters with matmul weights in int8.
struct QuantizedEncoderWeights {
  QuantizedLinear wq, wk, wv, wo, ffn1, ffn2;
  std::vector<float> ln1_gamma, ln1_beta, ln2_gamma, ln2_beta;

  static QuantizedEncoderWeights FromFloat(const EncoderWeights& w);
};

/// Encoder forward with every matmul in int8 (the FPGA datapath).  The
/// attention operator is pluggable exactly like the float encoder.
MatrixF QuantizedEncoderForward(const MatrixF& x,
                                const QuantizedEncoderWeights& w,
                                const EncoderConfig& cfg,
                                const AttentionFn& attn);

}  // namespace latte
