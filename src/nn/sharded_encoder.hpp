#pragma once
// Tensor-parallel encoder layer forward pass.
//
// One logical EncoderForward executed by a gang of N shards under a
// ShardPlan: QKV projections and attention are head-parallel, Wo and
// FFN1/GELU are column-parallel, and FFN2 is either column-parallel
// (default) or row-parallel with a fixed-order reduction.  Residual adds
// and LayerNorms run serially on the calling thread, exactly where the
// unsharded encoder runs them.
//
// Bit-exactness contract (same spirit as batch-vs-sequential): with the
// default column-parallel plan, the sharded output is bit-identical to
// EncoderForwardWorkspace for the same weights and attention function,
// for every shard degree -- including degrees that do not divide the
// head count (trailing shards just own fewer or zero heads).  The
// column-slice GEMMs reduce in the full GEMM's K-tile order, the gathers
// are plain column copies, and every cross-shard sum happens serially in
// a fixed order, so no float operation is re-associated anywhere.  The
// row-parallel FFN2 option re-associates that one reduction and agrees
// to rounding only.

#include "nn/encoder.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/shard_exec.hpp"
#include "sched/shard_plan.hpp"

namespace latte {

/// Runs one encoder layer across the gang of `exec`.  `attn` runs per
/// head on the owning shard's workspace.  Throws std::invalid_argument
/// when the input width, the plan axes or the gang size disagree with
/// `cfg` / `exec`.
MatrixF ShardedEncoderForward(const MatrixF& x, const EncoderWeights& w,
                              const EncoderConfig& cfg, const ShardPlan& plan,
                              const WorkspaceAttentionFn& attn,
                              ShardExecutor& exec);

}  // namespace latte
