#include "nn/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace latte {

void SoftmaxInPlace(std::span<float> row) {
  if (row.empty()) return;
  const float mx = *std::max_element(row.begin(), row.end());
  float sum = 0.f;
  for (auto& x : row) {
    x = std::exp(x - mx);
    sum += x;
  }
  if (sum > 0.f) {
    for (auto& x : row) x /= sum;
  }
}

void SoftmaxRowsInPlace(MatrixF& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) SoftmaxInPlace(m.row(i));
}

float Gelu(float x) {
  // 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  const float inner = kC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.f + std::tanh(inner));
}

void GeluInPlace(MatrixF& m) {
  for (auto& x : m.flat()) x = Gelu(x);
}

void LayerNormInPlace(MatrixF& m, std::span<const float> gamma,
                      std::span<const float> beta, float eps) {
  if (gamma.size() != m.cols() || beta.size() != m.cols()) {
    throw std::invalid_argument("LayerNormInPlace: gamma/beta length mismatch");
  }
  for (std::size_t i = 0; i < m.rows(); ++i) {
    auto r = m.row(i);
    double mean = 0.0;
    for (float x : r) mean += x;
    mean /= static_cast<double>(r.size());
    double var = 0.0;
    for (float x : r) {
      const double d = x - mean;
      var += d * d;
    }
    var /= static_cast<double>(r.size());
    const float inv = 1.f / std::sqrt(static_cast<float>(var) + eps);
    for (std::size_t j = 0; j < r.size(); ++j) {
      r[j] = (r[j] - static_cast<float>(mean)) * inv * gamma[j] + beta[j];
    }
  }
}

}  // namespace latte
