#pragma once
// One Transformer encoder layer (Fig 1(a) of the paper), with the attention
// operator pluggable so the dense reference and the sparse operator can be
// swapped without touching the rest of the layer.

#include "nn/attention.hpp"
#include "nn/linear.hpp"
#include "runtime/batch_runner.hpp"
#include "tensor/rng.hpp"

namespace latte {

/// Architectural shape of one encoder layer.
struct EncoderConfig {
  std::size_t hidden = 768;  ///< model dimension h
  std::size_t heads = 12;    ///< attention heads H (must divide hidden)
  std::size_t ffn_dim = 0;   ///< feedforward width; 0 means 4*hidden

  std::size_t head_dim() const { return hidden / heads; }
  std::size_t ffn() const { return ffn_dim == 0 ? 4 * hidden : ffn_dim; }
};

/// Learned parameters of one encoder layer.
struct EncoderWeights {
  Linear wq, wk, wv;  ///< QKV projections, (h x h)
  Linear wo;          ///< attention output projection, (h x h)
  Linear ffn1;        ///< (h x ffn)
  Linear ffn2;        ///< (ffn x h)
  std::vector<float> ln1_gamma, ln1_beta;  ///< post-attention LayerNorm
  std::vector<float> ln2_gamma, ln2_beta;  ///< post-FFN LayerNorm
};

/// Deterministically initializes encoder weights (Xavier, LN gamma=1 beta=0).
EncoderWeights MakeEncoderWeights(Rng& rng, const EncoderConfig& cfg);

/// Full encoder layer forward pass:
///   A   = Attention(split_heads(XWq, XWk, XWv)) Wo
///   X1  = LayerNorm(X + A)
///   F   = GELU(X1 W1) W2
///   out = LayerNorm(X1 + F)
/// `attn` runs per head; x is (n x hidden).  Thin shim: runs
/// EncoderForwardWorkspace on a call-local Workspace, so outputs are
/// bit-identical to the batched path.
MatrixF EncoderForward(const MatrixF& x, const EncoderWeights& w,
                       const EncoderConfig& cfg, const AttentionFn& attn);

/// Workspace variant: every projection/FFN GEMM runs through the tiled
/// kernel library with intermediates leased from `ws` (Float slots
/// wslots::kEncoder*, pack buffer ws.gemm()), so one encoder layer at
/// steady-state shapes allocates only per-head splits and the returned
/// matrix.  `attn` may lease ws slots >= wslots::kAttentionScores.
MatrixF EncoderForwardWorkspace(const MatrixF& x, const EncoderWeights& w,
                                const EncoderConfig& cfg,
                                const AttentionFn& attn, Workspace& ws);

/// Convenience: dense-reference encoder forward.
MatrixF EncoderForwardDense(const MatrixF& x, const EncoderWeights& w,
                            const EncoderConfig& cfg);

/// Batched encoder forward: runs every sequence of `xs` through the layer
/// concurrently on `runner`, one Workspace per concurrency slot.  Each
/// sequence executes exactly the code EncoderForward runs, so outputs are
/// bit-identical to a sequential loop regardless of worker count.
std::vector<MatrixF> EncoderForwardBatch(const std::vector<MatrixF>& xs,
                                         const EncoderWeights& w,
                                         const EncoderConfig& cfg,
                                         const WorkspaceAttentionFn& attn,
                                         BatchRunner& runner);

/// Dense attention leasing its score matrix and GEMM pack buffer from the
/// workspace.  Bit-identical to AdaptAttentionFn(DenseAttention) without
/// its per-call allocations.
WorkspaceAttentionFn MakeWorkspaceDenseAttentionFn();

}  // namespace latte
