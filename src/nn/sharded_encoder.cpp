#include "nn/sharded_encoder.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "nn/ops.hpp"
#include "tensor/matmul.hpp"

namespace latte {
namespace {

// Writes `src` into dst columns [col0, col0 + src.cols()).  This copy is
// the in-process stand-in for the all-gather: shards own disjoint column
// ranges, so concurrent copies never touch the same element.
void CopyColumnsInto(const MatrixF& src, std::size_t col0, MatrixF& dst) {
  for (std::size_t r = 0; r < src.rows(); ++r) {
    const auto row = src.row(r);
    std::copy(row.begin(), row.end(), dst.row(r).begin() + col0);
  }
}

void ValidateAgainstPlan(const MatrixF& x, const EncoderConfig& cfg,
                         const ShardPlan& plan, const ShardExecutor& exec) {
  if (x.cols() != cfg.hidden) {
    throw std::invalid_argument("ShardedEncoderForward: input width != hidden");
  }
  if (plan.shards != exec.shards()) {
    throw std::invalid_argument(
        "ShardedEncoderForward: plan degree != executor gang size");
  }
  if (plan.heads.size() != plan.shards ||
      plan.ffn_cols.size() != plan.shards ||
      plan.hidden_cols.size() != plan.shards) {
    throw std::invalid_argument("ShardedEncoderForward: malformed plan axes");
  }
  if (plan.heads.back().end != cfg.heads ||
      plan.ffn_cols.back().end != cfg.ffn() ||
      plan.hidden_cols.back().end != cfg.hidden) {
    throw std::invalid_argument(
        "ShardedEncoderForward: plan does not cover the layer shape");
  }
}

}  // namespace

MatrixF ShardedEncoderForward(const MatrixF& x, const EncoderWeights& w,
                              const EncoderConfig& cfg, const ShardPlan& plan,
                              const WorkspaceAttentionFn& attn,
                              ShardExecutor& exec) {
  ValidateAgainstPlan(x, cfg, plan, exec);
  const std::size_t n = x.rows();
  const std::size_t d = cfg.head_dim();
  Workspace& comm = exec.comm();

  // All comm buffers are leased between stages, from this thread: inside
  // a stage shards only read them and write disjoint element ranges.
  MatrixF& ctx_all = comm.Float(shardslots::kCtx, n, cfg.hidden);
  MatrixF& attn_out = comm.Float(shardslots::kAttnOut, n, cfg.hidden);

  // Head-parallel QKV + attention: shard s projects only the columns of
  // its head group (bit-exact column slices of the full projections),
  // runs attention per owned head, and "all-gathers" the contexts by
  // copying them into its column range of ctx_all.
  exec.RunStage([&](std::size_t s, Workspace& ws) {
    const std::size_t nh = plan.heads[s].size();
    if (nh == 0) return;
    const ShardRange hc = plan.HeadCols(s, cfg);
    GemmScratch& gs = ws.gemm();
    MatrixF& q = ws.Float(wslots::kEncoderQ, n, hc.size());
    MatrixF& k = ws.Float(wslots::kEncoderK, n, hc.size());
    MatrixF& v = ws.Float(wslots::kEncoderV, n, hc.size());
    w.wq.ForwardColumnsInto(x, hc.begin, hc.end, gs, q);
    w.wk.ForwardColumnsInto(x, hc.begin, hc.end, gs, k);
    w.wv.ForwardColumnsInto(x, hc.begin, hc.end, gs, v);
    const auto qh = SplitHeads(q, nh);
    const auto kh = SplitHeads(k, nh);
    const auto vh = SplitHeads(v, nh);
    for (std::size_t h = 0; h < nh; ++h) {
      const MatrixF c = attn(qh[h], kh[h], vh[h], ws);
      CopyColumnsInto(c, (plan.heads[s].begin + h) * d, ctx_all);
    }
  });

  // Column-parallel output projection over the gathered context.
  exec.RunStage([&](std::size_t s, Workspace& ws) {
    const ShardRange hc = plan.hidden_cols[s];
    if (hc.size() == 0) return;
    MatrixF& a = ws.Float(wslots::kEncoderAttn, n, hc.size());
    w.wo.ForwardColumnsInto(ctx_all, hc.begin, hc.end, ws.gemm(), a);
    CopyColumnsInto(a, hc.begin, attn_out);
  });

  // Serial residual + LayerNorm, exactly as the unsharded encoder.
  MatrixF& x1 = comm.Float(shardslots::kX1, n, cfg.hidden);
  AddInto(x, attn_out, x1);
  LayerNormInPlace(x1, w.ln1_gamma, w.ln1_beta);

  MatrixF& f2 = comm.Float(shardslots::kFfnOut, n, cfg.hidden);
  if (plan.row_parallel_ffn2) {
    // Row-parallel FFN2: each shard keeps its GELU slice local and emits
    // a full-width partial product; the partials are reduced here in
    // ascending shard order (fixed, so deterministic to the bit -- but
    // re-associated relative to the monolithic GEMM, hence rounding-level
    // agreement only).
    std::vector<MatrixF*> partials(plan.shards);
    for (std::size_t s = 0; s < plan.shards; ++s) {
      partials[s] = &comm.Float(shardslots::kPartialBase + s, n, cfg.hidden);
    }
    exec.RunStage([&](std::size_t s, Workspace& ws) {
      const ShardRange fc = plan.ffn_cols[s];
      GemmScratch& gs = ws.gemm();
      MatrixF& f = ws.Float(wslots::kEncoderFfn, n, fc.size());
      w.ffn1.ForwardColumnsInto(x1, fc.begin, fc.end, gs, f);
      GeluInPlace(f);
      // An empty FFN range still emits an (exactly zero) partial.
      MatMulRowsInto(f, w.ffn2.weight, fc.begin, fc.end, *partials[s], gs);
    });
    exec.ReducePartialsInto(n, cfg.hidden, f2);
    if (!w.ffn2.bias.empty()) AddBiasInPlace(f2, w.ffn2.bias);
  } else {
    // Column-parallel FFN: gather the GELU activation, then slice FFN2's
    // output columns -- both GEMMs bit-exact against the monolithic pass.
    MatrixF& f_all = comm.Float(shardslots::kFfn, n, cfg.ffn());
    exec.RunStage([&](std::size_t s, Workspace& ws) {
      const ShardRange fc = plan.ffn_cols[s];
      if (fc.size() == 0) return;
      MatrixF& f = ws.Float(wslots::kEncoderFfn, n, fc.size());
      w.ffn1.ForwardColumnsInto(x1, fc.begin, fc.end, ws.gemm(), f);
      GeluInPlace(f);
      CopyColumnsInto(f, fc.begin, f_all);
    });
    exec.RunStage([&](std::size_t s, Workspace& ws) {
      const ShardRange hc = plan.hidden_cols[s];
      if (hc.size() == 0) return;
      MatrixF& o = ws.Float(wslots::kEncoderFfn2, n, hc.size());
      w.ffn2.ForwardColumnsInto(f_all, hc.begin, hc.end, ws.gemm(), o);
      CopyColumnsInto(o, hc.begin, f2);
    });
  }

  MatrixF out = Add(x1, f2);
  LayerNormInPlace(out, w.ln2_gamma, w.ln2_beta);
  return out;
}

}  // namespace latte
