#pragma once
// Elementwise / normalization operators of the Transformer encoder.

#include "tensor/matrix.hpp"

namespace latte {

/// Row-wise numerically-stable softmax (subtracts the row max).
/// Empty rows are left untouched.
void SoftmaxRowsInPlace(MatrixF& m);

/// Softmax of a single row vector, in place.
void SoftmaxInPlace(std::span<float> row);

/// GELU activation (tanh approximation, the variant BERT ships).
float Gelu(float x);

/// Applies GELU elementwise.
void GeluInPlace(MatrixF& m);

/// Layer normalization over the last dimension with learned gamma/beta.
/// gamma and beta must have length m.cols().  eps guards the variance.
void LayerNormInPlace(MatrixF& m, std::span<const float> gamma,
                      std::span<const float> beta, float eps = 1e-5f);

}  // namespace latte
