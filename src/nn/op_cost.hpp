#pragma once
// Per-operator cost inventory of the Transformer encoder.
//
// Everything performance-related in this repository -- the Fig 1(c)
// breakdown, Algorithm 1's operator weights W(v, s), the FPGA stage timing
// model and the CPU/GPU roofline models -- consumes the same operator list,
// so the cost of each encoder operator is written down exactly once, as a
// polynomial in the sequence length n:
//
//   value(n) = quad * n^2 + lin * n + cst
//
// Dense attention has quad != 0 for the score/softmax/context operators;
// the paper's sparse attention replaces those with O(n) operators (lin ~ k),
// which is precisely the property the length-aware scheduler relies on
// ("all operators have O(n) complexity", Section 4.2).
//
// Costs are kept in three separate currencies because the FPGA charges them
// to different resources:
//   flops         -- full-precision-equivalent MACs*2; on the FPGA each 8-bit
//                    MAC consumes one DSP slice (Section 5.2),
//   lut_ops       -- ultra-low-bit multiplies and sorter compares that map to
//                    LUT fabric, not DSPs (the Bits Selector / At-Sel path),
//   offchip_elems -- elements moved over HBM (weights streamed per layer,
//                    activations in/out, Top-k index/value round trip).

#include <cstddef>
#include <string>
#include <vector>

#include "nn/encoder.hpp"

namespace latte {

/// Cost polynomial in sequence length n.
struct CostPoly {
  double quad = 0.0;
  double lin = 0.0;
  double cst = 0.0;

  double Eval(double n) const { return quad * n * n + lin * n + cst; }

  CostPoly operator+(const CostPoly& o) const {
    return {quad + o.quad, lin + o.lin, cst + o.cst};
  }
};

/// Encoder operator identities (Fig 1(a)/(b) plus the sparse additions).
enum class OpKind {
  kQkvProjection,   ///< self-attention: 3 input linear transforms
  kScoreMatMul,     ///< dense S = Q K^T                 (dense mode only)
  kScale,           ///< S *= 1/sqrt(d)                  (dense mode only)
  kMask,            ///< attention masking               (dense mode only)
  kSoftmax,         ///< row softmax                     (dense mode only)
  kContextMatMul,   ///< dense S * V                     (dense mode only)
  kAttentionSelect, ///< quantize + LUT scores + Top-k   (sparse mode only)
  kSparseScore,     ///< fused exact score/scale/mask/exp on Top-k candidates
  kSparseContext,   ///< Z = S V / sum(S) on candidates  (sparse mode only)
  kOutputProjection,///< attention output linear
  kLayerNorm1,
  kFfn1,
  kGelu,
  kFfn2,
  kLayerNorm2,
};

/// Returns a short human-readable label ("MM(QKV)", "At-Sel", ...).
std::string OpKindName(OpKind kind);

/// Which attention implementation the operator list describes.
enum class AttentionMode { kDense, kSparseTopK };

/// One encoder operator with its cost polynomials and pipeline metadata.
struct OpSpec {
  OpKind kind{};
  std::string name;
  CostPoly flops;          ///< DSP-class arithmetic
  CostPoly lut_ops;        ///< LUT-class arithmetic (quantized / sorting)
  CostPoly offchip_elems;  ///< HBM traffic in elements
  int stage_hint = 1;      ///< coarse stage per Fig 2(a): 1, 2 or 3
  bool in_attention = false;  ///< member of the self-attention workflow
};

/// Builds the ordered operator list of one encoder layer.
/// For kSparseTopK, `top_k` is the number of candidates kept per query row;
/// ignored in dense mode.  Operators appear in dataflow order.
std::vector<OpSpec> EncoderOps(const EncoderConfig& cfg, AttentionMode mode,
                               std::size_t top_k = 30);

/// Sum of flops over all operators at sequence length n.
double TotalFlops(const std::vector<OpSpec>& ops, double n);

/// Sum of flops over self-attention operators only (Fig 7(b) scope).
double AttentionFlops(const std::vector<OpSpec>& ops, double n);

/// Sum of off-chip traffic (elements) at sequence length n.
double TotalOffchipElems(const std::vector<OpSpec>& ops, double n);

}  // namespace latte
