#include "nn/linear.hpp"

#include <cmath>

#include "tensor/matmul.hpp"

namespace latte {

MatrixF Linear::Forward(const MatrixF& x) const {
  MatrixF y;
  MatMulInto(x, weight, y);
  if (!bias.empty()) AddBiasInPlace(y, bias);
  return y;
}

void Linear::ForwardInto(const MatrixF& x, GemmScratch& scratch,
                         MatrixF& out) const {
  MatMulInto(x, weight, out, scratch);
  if (!bias.empty()) AddBiasInPlace(out, bias);
}

void Linear::ForwardColumnsInto(const MatrixF& x, std::size_t col0,
                                std::size_t col1, GemmScratch& scratch,
                                MatrixF& out) const {
  MatMulColumnsInto(x, weight, col0, col1, out, scratch);
  if (!bias.empty()) {
    AddBiasInPlace(out, std::span<const float>(bias).subspan(col0, col1 - col0));
  }
}

Linear MakeLinear(Rng& rng, std::size_t in, std::size_t out, bool with_bias) {
  Linear l;
  const double limit =
      std::sqrt(6.0 / static_cast<double>(in + out));  // Xavier uniform
  l.weight = rng.UniformMatrix(in, out, -limit, limit);
  if (with_bias) {
    l.bias.resize(out);
    for (auto& b : l.bias) {
      b = static_cast<float>(rng.NextUniform(-0.01, 0.01));
    }
  }
  return l;
}

}  // namespace latte
