#pragma once
// Bias-ful linear transformation y = x W + b.

#include "tensor/kernels.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace latte {

/// A linear layer.  Weight is (in x out) so the forward pass is a plain
/// row-major matmul; bias has length `out` (may be empty for no bias).
struct Linear {
  MatrixF weight;           ///< (in_features x out_features)
  std::vector<float> bias;  ///< length out_features, or empty

  /// y = x * weight (+ bias).  x is (n x in_features).  Thin allocating
  /// shim over ForwardInto (identical bits).
  MatrixF Forward(const MatrixF& x) const;

  /// Workspace variant: writes y into `out` (resized, fully overwritten)
  /// through the tiled GEMM, packing into `scratch`.  The batched runtime
  /// calls this with per-slot scratch so the hot path allocates nothing at
  /// steady-state shapes.  `out` must not alias `x` or `weight`.
  void ForwardInto(const MatrixF& x, GemmScratch& scratch, MatrixF& out) const;

  /// Column-parallel shard of the forward pass: out = x * weight[:, col0:col1)
  /// (+ the matching bias slice).  Bit-identical to columns [col0, col1) of
  /// ForwardInto by the MatMulColumnsInto contract, which is what lets a
  /// tensor-parallel shard own an output-column range without perturbing
  /// results.  `out` is resized to (n x col1-col0) and fully overwritten.
  void ForwardColumnsInto(const MatrixF& x, std::size_t col0, std::size_t col1,
                          GemmScratch& scratch, MatrixF& out) const;

  std::size_t in_features() const { return weight.rows(); }
  std::size_t out_features() const { return weight.cols(); }
};

/// Xavier-uniform initialized linear layer (deterministic given the Rng).
Linear MakeLinear(Rng& rng, std::size_t in, std::size_t out,
                  bool with_bias = true);

}  // namespace latte
