#pragma once
// Bias-ful linear transformation y = x W + b.

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace latte {

/// A linear layer.  Weight is (in x out) so the forward pass is a plain
/// row-major matmul; bias has length `out` (may be empty for no bias).
struct Linear {
  MatrixF weight;           ///< (in_features x out_features)
  std::vector<float> bias;  ///< length out_features, or empty

  /// y = x * weight (+ bias).  x is (n x in_features).
  MatrixF Forward(const MatrixF& x) const;

  std::size_t in_features() const { return weight.rows(); }
  std::size_t out_features() const { return weight.cols(); }
};

/// Xavier-uniform initialized linear layer (deterministic given the Rng).
Linear MakeLinear(Rng& rng, std::size_t in, std::size_t out,
                  bool with_bias = true);

}  // namespace latte
