#include "nn/op_cost.hpp"

namespace latte {

std::string OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kQkvProjection:    return "MM(QKV)";
    case OpKind::kScoreMatMul:      return "MM(QK^T)";
    case OpKind::kScale:            return "Scale";
    case OpKind::kMask:             return "Mask";
    case OpKind::kSoftmax:          return "Softmax";
    case OpKind::kContextMatMul:    return "MM(SV)";
    case OpKind::kAttentionSelect:  return "At-Sel";
    case OpKind::kSparseScore:      return "At-Score";
    case OpKind::kSparseContext:    return "At-Ctx";
    case OpKind::kOutputProjection: return "MM(out)";
    case OpKind::kLayerNorm1:       return "LayerNorm1";
    case OpKind::kFfn1:             return "MM(FFN1)";
    case OpKind::kGelu:             return "GELU";
    case OpKind::kFfn2:             return "MM(FFN2)";
    case OpKind::kLayerNorm2:       return "LayerNorm2";
  }
  return "?";
}

std::vector<OpSpec> EncoderOps(const EncoderConfig& cfg, AttentionMode mode,
                               std::size_t top_k) {
  const double h = static_cast<double>(cfg.hidden);
  const double H = static_cast<double>(cfg.heads);
  const double f = static_cast<double>(cfg.ffn());
  const double k = static_cast<double>(top_k);

  std::vector<OpSpec> ops;

  // --- Stage 1: linear transformation (+ At-Sel in sparse mode) -----------
  {
    OpSpec s;
    s.kind = OpKind::kQkvProjection;
    s.name = OpKindName(s.kind);
    s.flops.lin = 6.0 * h * h;               // 3 matmuls, 2nh^2 each
    s.offchip_elems.cst = 3.0 * h * h;       // stream Wq|Wk|Wv once per layer
    s.offchip_elems.lin = 4.0 * h;           // read X, write Q,K,V
    s.stage_hint = 1;
    // Fig 7(b)'s "self-attention computation" covers the score..context
    // portion (the O(n^2) part), not the QKV/output projections.
    s.in_attention = false;
    ops.push_back(std::move(s));
  }

  if (mode == AttentionMode::kDense) {
    OpSpec sc;
    sc.kind = OpKind::kScoreMatMul;
    sc.name = OpKindName(sc.kind);
    sc.flops.quad = 2.0 * h;                 // n^2 * d * 2 per head * H
    sc.offchip_elems.quad = H;               // materialize S (n^2 per head)
    sc.stage_hint = 2;
    sc.in_attention = true;
    ops.push_back(std::move(sc));

    OpSpec scale;
    scale.kind = OpKind::kScale;
    scale.name = OpKindName(scale.kind);
    scale.flops.quad = H;                    // one mult per score element
    scale.stage_hint = 2;
    scale.in_attention = true;
    ops.push_back(std::move(scale));

    OpSpec mask;
    mask.kind = OpKind::kMask;
    mask.name = OpKindName(mask.kind);
    mask.flops.quad = H;
    mask.stage_hint = 2;
    mask.in_attention = true;
    ops.push_back(std::move(mask));

    OpSpec sm;
    sm.kind = OpKind::kSoftmax;
    sm.name = OpKindName(sm.kind);
    sm.flops.quad = 5.0 * H;                 // exp + 2 reduces + div per elem
    sm.stage_hint = 2;
    sm.in_attention = true;
    ops.push_back(std::move(sm));

    OpSpec cm;
    cm.kind = OpKind::kContextMatMul;
    cm.name = OpKindName(cm.kind);
    cm.flops.quad = 2.0 * h;                 // n^2 * d * 2 per head * H
    cm.offchip_elems.quad = H;               // re-read S
    cm.stage_hint = 2;
    cm.in_attention = true;
    ops.push_back(std::move(cm));
  } else {
    // At-Sel: quantize Q,K (flops), LUT score matrix + streaming Top-k sort
    // (LUT fabric), Top-k (index, value) pairs round-trip through HBM
    // (Section 4.1: "Top-k results are stored back to HBM for inter-stage
    // buffering").
    OpSpec sel;
    sel.kind = OpKind::kAttentionSelect;
    sel.name = OpKindName(sel.kind);
    sel.flops.lin = 2.0 * h;                 // quantize Q and K rows
    sel.lut_ops.quad = h + H;                // Q'K'^T (n^2 d H = n^2 h) + sort
    sel.offchip_elems.lin = 2.0 * k * H;     // write (idx,val) per query/head
    sel.stage_hint = 1;
    sel.in_attention = true;
    ops.push_back(std::move(sel));

    // Stage 2.2: fused exact score computation on the k candidates:
    // dot products + scale + mask + exp in one II=1 loop (Fig 4).
    OpSpec ss;
    ss.kind = OpKind::kSparseScore;
    ss.name = OpKindName(ss.kind);
    ss.flops.lin = 2.0 * k * h + 7.0 * k * H;  // n*k*d*2*H + fused tail ops
    ss.offchip_elems.lin = 2.0 * k * H;        // read Top-k pairs from HBM
    ss.stage_hint = 2;
    ss.in_attention = true;
    ops.push_back(std::move(ss));

    // Stage 2.3: Z_i = S_i V / sum(S_i) on the candidates.
    OpSpec sctx;
    sctx.kind = OpKind::kSparseContext;
    sctx.name = OpKindName(sctx.kind);
    sctx.flops.lin = 2.0 * k * h + h;          // n*k*d*2*H + normalize
    sctx.offchip_elems.lin = 2.0 * h;          // K,V rows into on-chip buffer
    sctx.stage_hint = 2;
    sctx.in_attention = true;
    ops.push_back(std::move(sctx));
  }

  {
    OpSpec o;
    o.kind = OpKind::kOutputProjection;
    o.name = OpKindName(o.kind);
    o.flops.lin = 2.0 * h * h;
    o.offchip_elems.cst = h * h;
    o.offchip_elems.lin = 2.0 * h;
    o.stage_hint = 2;
    o.in_attention = false;  // projection, outside the Fig 7(b) scope
    ops.push_back(std::move(o));
  }

  // --- Stage 3: feedforward ------------------------------------------------
  {
    OpSpec ln1;
    ln1.kind = OpKind::kLayerNorm1;
    ln1.name = OpKindName(ln1.kind);
    ln1.flops.lin = 8.0 * h;  // mean, var, normalize, affine
    ln1.stage_hint = 3;
    ops.push_back(std::move(ln1));

    OpSpec f1;
    f1.kind = OpKind::kFfn1;
    f1.name = OpKindName(f1.kind);
    f1.flops.lin = 2.0 * h * f;
    f1.offchip_elems.cst = h * f;
    f1.offchip_elems.lin = h + f;
    f1.stage_hint = 3;
    ops.push_back(std::move(f1));

    OpSpec g;
    g.kind = OpKind::kGelu;
    g.name = OpKindName(g.kind);
    g.flops.lin = 10.0 * f;  // tanh-approx polynomial per element
    g.stage_hint = 3;
    ops.push_back(std::move(g));

    OpSpec f2;
    f2.kind = OpKind::kFfn2;
    f2.name = OpKindName(f2.kind);
    f2.flops.lin = 2.0 * h * f;
    f2.offchip_elems.cst = h * f;
    f2.offchip_elems.lin = h + f;
    f2.stage_hint = 3;
    ops.push_back(std::move(f2));

    OpSpec ln2;
    ln2.kind = OpKind::kLayerNorm2;
    ln2.name = OpKindName(ln2.kind);
    ln2.flops.lin = 8.0 * h;
    ln2.stage_hint = 3;
    ops.push_back(std::move(ln2));
  }

  return ops;
}

double TotalFlops(const std::vector<OpSpec>& ops, double n) {
  double acc = 0.0;
  for (const auto& op : ops) acc += op.flops.Eval(n);
  return acc;
}

double AttentionFlops(const std::vector<OpSpec>& ops, double n) {
  double acc = 0.0;
  for (const auto& op : ops) {
    if (op.in_attention) acc += op.flops.Eval(n);
  }
  return acc;
}

double TotalOffchipElems(const std::vector<OpSpec>& ops, double n) {
  double acc = 0.0;
  for (const auto& op : ops) acc += op.offchip_elems.Eval(n);
  return acc;
}

}  // namespace latte
