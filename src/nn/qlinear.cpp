#include "nn/qlinear.hpp"

#include <stdexcept>

#include "nn/attention.hpp"
#include "nn/ops.hpp"
#include "tensor/kernels.hpp"
#include "tensor/matmul.hpp"

namespace latte {

QuantizedLinear QuantizedLinear::FromFloat(const Linear& l) {
  QuantizedLinear q;
  q.weight = Quantize(l.weight, 8);
  q.bias = l.bias;
  return q;
}

MatrixF QuantizedLinear::Forward(const MatrixF& x) const {
  if (x.cols() != in_features()) {
    throw std::invalid_argument("QuantizedLinear: input width mismatch");
  }
  const QuantizedMatrix xq = Quantize(x, 8);
  const float out_scale = xq.scale * weight.scale;

  // Row-blocked int8 GEMM with exact int32 accumulation -- the same
  // arithmetic one DSP slice performs per MAC, bit-exact against the
  // seed's i-k-j loop because integer addition is associative.
  MatrixI32 acc;
  Int8GemmInto(xq.codes, weight.codes, acc);

  MatrixF y(x.rows(), out_features());
  for (std::size_t i = 0; i < y.rows(); ++i) {
    auto ai = acc.row(i);
    auto yi = y.row(i);
    for (std::size_t j = 0; j < yi.size(); ++j) {
      yi[j] = static_cast<float>(ai[j]) * out_scale;
    }
  }
  if (!bias.empty()) AddBiasInPlace(y, bias);
  return y;
}

QuantizedEncoderWeights QuantizedEncoderWeights::FromFloat(
    const EncoderWeights& w) {
  QuantizedEncoderWeights q;
  q.wq = QuantizedLinear::FromFloat(w.wq);
  q.wk = QuantizedLinear::FromFloat(w.wk);
  q.wv = QuantizedLinear::FromFloat(w.wv);
  q.wo = QuantizedLinear::FromFloat(w.wo);
  q.ffn1 = QuantizedLinear::FromFloat(w.ffn1);
  q.ffn2 = QuantizedLinear::FromFloat(w.ffn2);
  q.ln1_gamma = w.ln1_gamma;
  q.ln1_beta = w.ln1_beta;
  q.ln2_gamma = w.ln2_gamma;
  q.ln2_beta = w.ln2_beta;
  return q;
}

MatrixF QuantizedEncoderForward(const MatrixF& x,
                                const QuantizedEncoderWeights& w,
                                const EncoderConfig& cfg,
                                const AttentionFn& attn) {
  if (x.cols() != cfg.hidden) {
    throw std::invalid_argument(
        "QuantizedEncoderForward: input width != hidden");
  }
  const MatrixF q = w.wq.Forward(x);
  const MatrixF k = w.wk.Forward(x);
  const MatrixF v = w.wv.Forward(x);

  const auto qh = SplitHeads(q, cfg.heads);
  const auto kh = SplitHeads(k, cfg.heads);
  const auto vh = SplitHeads(v, cfg.heads);
  std::vector<MatrixF> ctx;
  ctx.reserve(cfg.heads);
  for (std::size_t h = 0; h < cfg.heads; ++h) {
    ctx.push_back(attn(qh[h], kh[h], vh[h]));
  }
  MatrixF a = w.wo.Forward(ConcatHeads(ctx));

  MatrixF x1 = Add(x, a);
  LayerNormInPlace(x1, w.ln1_gamma, w.ln1_beta);

  MatrixF f = w.ffn1.Forward(x1);
  GeluInPlace(f);
  f = w.ffn2.Forward(f);

  MatrixF out = Add(x1, f);
  LayerNormInPlace(out, w.ln2_gamma, w.ln2_beta);
  return out;
}

}  // namespace latte
