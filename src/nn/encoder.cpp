#include "nn/encoder.hpp"

#include <stdexcept>

#include "nn/ops.hpp"
#include "tensor/matmul.hpp"

namespace latte {

EncoderWeights MakeEncoderWeights(Rng& rng, const EncoderConfig& cfg) {
  if (cfg.heads == 0 || cfg.hidden % cfg.heads != 0) {
    throw std::invalid_argument("EncoderConfig: heads must divide hidden");
  }
  EncoderWeights w;
  w.wq = MakeLinear(rng, cfg.hidden, cfg.hidden);
  w.wk = MakeLinear(rng, cfg.hidden, cfg.hidden);
  w.wv = MakeLinear(rng, cfg.hidden, cfg.hidden);
  w.wo = MakeLinear(rng, cfg.hidden, cfg.hidden);
  w.ffn1 = MakeLinear(rng, cfg.hidden, cfg.ffn());
  w.ffn2 = MakeLinear(rng, cfg.ffn(), cfg.hidden);
  w.ln1_gamma.assign(cfg.hidden, 1.f);
  w.ln1_beta.assign(cfg.hidden, 0.f);
  w.ln2_gamma.assign(cfg.hidden, 1.f);
  w.ln2_beta.assign(cfg.hidden, 0.f);
  return w;
}

MatrixF EncoderForward(const MatrixF& x, const EncoderWeights& w,
                       const EncoderConfig& cfg, const AttentionFn& attn) {
  Workspace ws;
  return EncoderForwardWorkspace(x, w, cfg, attn, ws);
}

MatrixF EncoderForwardWorkspace(const MatrixF& x, const EncoderWeights& w,
                                const EncoderConfig& cfg,
                                const AttentionFn& attn, Workspace& ws) {
  if (x.cols() != cfg.hidden) {
    throw std::invalid_argument("EncoderForward: input width != hidden");
  }
  GemmScratch& gs = ws.gemm();
  const std::size_t n = x.rows();

  // Stage 1: linear transformation (MatMul unit in Fig 2(a)), through the
  // tiled kernels into per-worker scratch.
  MatrixF& q = ws.Float(wslots::kEncoderQ, n, cfg.hidden);
  MatrixF& k = ws.Float(wslots::kEncoderK, n, cfg.hidden);
  MatrixF& v = ws.Float(wslots::kEncoderV, n, cfg.hidden);
  w.wq.ForwardInto(x, gs, q);
  w.wk.ForwardInto(x, gs, k);
  w.wv.ForwardInto(x, gs, v);

  // Stage 2: per-head attention computation.
  const auto qh = SplitHeads(q, cfg.heads);
  const auto kh = SplitHeads(k, cfg.heads);
  const auto vh = SplitHeads(v, cfg.heads);
  std::vector<MatrixF> ctx;
  ctx.reserve(cfg.heads);
  for (std::size_t h = 0; h < cfg.heads; ++h) {
    ctx.push_back(attn(qh[h], kh[h], vh[h]));
  }
  MatrixF& a = ws.Float(wslots::kEncoderAttn, n, cfg.hidden);
  w.wo.ForwardInto(ConcatHeads(ctx), gs, a);

  // Residual + LayerNorm.
  MatrixF& x1 = ws.Float(wslots::kEncoderX1, n, cfg.hidden);
  AddInto(x, a, x1);
  LayerNormInPlace(x1, w.ln1_gamma, w.ln1_beta);

  // Stage 3: feedforward.
  MatrixF& f = ws.Float(wslots::kEncoderFfn, n, cfg.ffn());
  w.ffn1.ForwardInto(x1, gs, f);
  GeluInPlace(f);
  MatrixF& f2 = ws.Float(wslots::kEncoderFfn2, n, cfg.hidden);
  w.ffn2.ForwardInto(f, gs, f2);

  MatrixF out = Add(x1, f2);
  LayerNormInPlace(out, w.ln2_gamma, w.ln2_beta);
  return out;
}

MatrixF EncoderForwardDense(const MatrixF& x, const EncoderWeights& w,
                            const EncoderConfig& cfg) {
  return EncoderForward(x, w, cfg, DenseAttention);
}

std::vector<MatrixF> EncoderForwardBatch(const std::vector<MatrixF>& xs,
                                         const EncoderWeights& w,
                                         const EncoderConfig& cfg,
                                         const WorkspaceAttentionFn& attn,
                                         BatchRunner& runner) {
  std::vector<MatrixF> out(xs.size());
  runner.Run(xs.size(), [&](std::size_t i, Workspace& ws) {
    const AttentionFn bound = [&attn, &ws](const MatrixF& q, const MatrixF& k,
                                           const MatrixF& v) {
      return attn(q, k, v, ws);
    };
    out[i] = EncoderForwardWorkspace(xs[i], w, cfg, bound, ws);
  });
  return out;
}

WorkspaceAttentionFn MakeWorkspaceDenseAttentionFn() {
  return [](const MatrixF& q, const MatrixF& k, const MatrixF& v,
            Workspace& ws) { return DenseAttentionWorkspace(q, k, v, ws); };
}

}  // namespace latte
