#include "nn/encoder.hpp"

#include <stdexcept>

#include "nn/ops.hpp"
#include "tensor/matmul.hpp"

namespace latte {

EncoderWeights MakeEncoderWeights(Rng& rng, const EncoderConfig& cfg) {
  if (cfg.heads == 0 || cfg.hidden % cfg.heads != 0) {
    throw std::invalid_argument("EncoderConfig: heads must divide hidden");
  }
  EncoderWeights w;
  w.wq = MakeLinear(rng, cfg.hidden, cfg.hidden);
  w.wk = MakeLinear(rng, cfg.hidden, cfg.hidden);
  w.wv = MakeLinear(rng, cfg.hidden, cfg.hidden);
  w.wo = MakeLinear(rng, cfg.hidden, cfg.hidden);
  w.ffn1 = MakeLinear(rng, cfg.hidden, cfg.ffn());
  w.ffn2 = MakeLinear(rng, cfg.ffn(), cfg.hidden);
  w.ln1_gamma.assign(cfg.hidden, 1.f);
  w.ln1_beta.assign(cfg.hidden, 0.f);
  w.ln2_gamma.assign(cfg.hidden, 1.f);
  w.ln2_beta.assign(cfg.hidden, 0.f);
  return w;
}

MatrixF EncoderForward(const MatrixF& x, const EncoderWeights& w,
                       const EncoderConfig& cfg, const AttentionFn& attn) {
  if (x.cols() != cfg.hidden) {
    throw std::invalid_argument("EncoderForward: input width != hidden");
  }
  // Stage 1: linear transformation (MatMul unit in Fig 2(a)).
  const MatrixF q = w.wq.Forward(x);
  const MatrixF k = w.wk.Forward(x);
  const MatrixF v = w.wv.Forward(x);

  // Stage 2: per-head attention computation.
  const auto qh = SplitHeads(q, cfg.heads);
  const auto kh = SplitHeads(k, cfg.heads);
  const auto vh = SplitHeads(v, cfg.heads);
  std::vector<MatrixF> ctx;
  ctx.reserve(cfg.heads);
  for (std::size_t h = 0; h < cfg.heads; ++h) {
    ctx.push_back(attn(qh[h], kh[h], vh[h]));
  }
  MatrixF a = w.wo.Forward(ConcatHeads(ctx));

  // Residual + LayerNorm.
  MatrixF x1 = Add(x, a);
  LayerNormInPlace(x1, w.ln1_gamma, w.ln1_beta);

  // Stage 3: feedforward.
  MatrixF f = w.ffn1.Forward(x1);
  GeluInPlace(f);
  f = w.ffn2.Forward(f);

  MatrixF out = Add(x1, f);
  LayerNormInPlace(out, w.ln2_gamma, w.ln2_beta);
  return out;
}

MatrixF EncoderForwardDense(const MatrixF& x, const EncoderWeights& w,
                            const EncoderConfig& cfg) {
  return EncoderForward(x, w, cfg, DenseAttention);
}

std::vector<MatrixF> EncoderForwardBatch(const std::vector<MatrixF>& xs,
                                         const EncoderWeights& w,
                                         const EncoderConfig& cfg,
                                         const WorkspaceAttentionFn& attn,
                                         BatchRunner& runner) {
  std::vector<MatrixF> out(xs.size());
  runner.Run(xs.size(), [&](std::size_t i, Workspace& ws) {
    const AttentionFn bound = [&attn, &ws](const MatrixF& q, const MatrixF& k,
                                           const MatrixF& v) {
      return attn(q, k, v, ws);
    };
    out[i] = EncoderForward(xs[i], w, cfg, bound);
  });
  return out;
}

}  // namespace latte
