#pragma once
// Dense (reference) scaled-dot-product attention and the pluggable
// multi-head wrapper used by the encoder.

#include <functional>

#include "tensor/matrix.hpp"

namespace latte {

// Forward declaration (runtime/workspace.hpp): including it here would
// close an include cycle through core/sparse_attention.hpp, which needs
// this header for AttentionFn.
class Workspace;

/// Per-head attention function: (Q, K, V) -> context, all (n x d_head).
/// The encoder is parameterized on this so the dense reference and the
/// paper's sparse operator are drop-in interchangeable.
using AttentionFn =
    std::function<MatrixF(const MatrixF&, const MatrixF&, const MatrixF&)>;

/// Reference dense attention for one head:
///   softmax(Q K^T / sqrt(d)) V
/// Q, K, V are (n x d); result is (n x d).
MatrixF DenseAttention(const MatrixF& q, const MatrixF& k, const MatrixF& v);

/// Dense attention with a padding mask: keys at index >= valid_len receive
/// -inf scores before softmax (0 = everything valid).  The oracle for the
/// masked sparse path.  Thin allocating shim over the workspace variant.
MatrixF DenseAttentionMasked(const MatrixF& q, const MatrixF& k,
                             const MatrixF& v, std::size_t valid_len);

/// Workspace variant of dense attention: the (n x n) score matrix is
/// leased from `ws` (slot wslots::kAttentionScores) and both matmuls pack
/// into the workspace GEMM scratch, so repeated calls at steady-state
/// shapes allocate only the returned context.  Bit-identical to
/// DenseAttention.
MatrixF DenseAttentionWorkspace(const MatrixF& q, const MatrixF& k,
                                const MatrixF& v, Workspace& ws);

/// Masked workspace variant; bit-identical to DenseAttentionMasked.
MatrixF DenseAttentionMaskedWorkspace(const MatrixF& q, const MatrixF& k,
                                      const MatrixF& v, std::size_t valid_len,
                                      Workspace& ws);

/// Splits an (n x h) matrix into `heads` contiguous column blocks of width
/// h/heads.  Throws if h is not divisible by heads.
std::vector<MatrixF> SplitHeads(const MatrixF& x, std::size_t heads);

/// Inverse of SplitHeads: concatenates per-head (n x d) blocks column-wise.
MatrixF ConcatHeads(const std::vector<MatrixF>& heads);

}  // namespace latte
