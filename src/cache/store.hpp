#pragma once
// ResultCache: a deterministic, capacity-bounded request-result store.
//
// The cache sits in front of batch forming: a request whose key maps to a
// live entry is served without touching admission, token budgets or the
// backend.  Three properties shape the design:
//
//   * Virtual time.  TTL expiry, recency order and every eviction
//     decision are driven by the caller-supplied virtual timestamps (the
//     serving engine's arrival/completion clock), never the wall clock --
//     so an accounting-only replay is byte-identical at any thread count,
//     exactly like the rest of the serving stack.
//   * Byte-accounted capacity.  Every entry is charged its tensor bytes
//     (length x hidden floats) plus a fixed per-entry overhead, the same
//     capacities-not-live-sizes idiom as runtime/workspace.hpp; inserts
//     evict (expired first, then by policy) until the new entry fits.
//   * Two-phase values.  Entries become *visible* when their producing
//     batch completes in virtual time -- that is what makes a later
//     repeat a hit -- but the tensor itself is only materialized at
//     Drain(), when the functional execution has run.  Until then the
//     entry names its producer (admitted index + owning engine) so the
//     engine can wire hit outputs to the leader's result.  A different
//     engine hitting a still-pending entry (shared store, cross-replica)
//     treats it as a miss in execute mode: the tensor it would need does
//     not exist anywhere yet.
//
// The store is not thread-safe; in a cluster it is driven by the
// single-threaded router loop, which is also what keeps a shared store's
// decision order deterministic.

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/eviction.hpp"
#include "cache/key.hpp"
#include "cache/stats.hpp"
#include "config/check.hpp"
#include "tensor/matrix.hpp"

namespace latte {

/// Result-cache knobs (embedded in ServingEngineConfig / ClusterConfig).
struct ResultCacheConfig {
  bool enabled = false;  ///< engines ignore the rest when false
  CacheKeyPolicy key_policy = CacheKeyPolicy::kRequestId;
  EvictionPolicy eviction = EvictionPolicy::kLru;
  /// Byte budget over entry footprints (tensor bytes + entry_overhead);
  /// 0 = unbounded.
  std::size_t capacity_bytes = 64ull << 20;
  /// Entry lifetime since insert/refresh, in virtual seconds; 0 = never
  /// expires.  A hit does not extend the lifetime (staleness is about the
  /// age of the *result*, not its popularity); a re-insert re-anchors it.
  double ttl_s = 0;
  /// Modeled virtual-time cost of serving a hit (lookup + copy-out).
  double hit_latency_s = 1e-4;
  /// SLRU only: byte share of capacity_bytes the protected segment may
  /// hold, in (0, 1].
  double protected_fraction = 0.8;
  /// Fixed per-entry bookkeeping charge on top of the tensor bytes.
  std::size_t entry_overhead_bytes = 64;
};

/// Names every illegal field; empty means legal.
ConfigIssues CheckResultCacheConfig(const ResultCacheConfig& cfg);

/// Throws std::invalid_argument naming the offending field.
void ValidateResultCacheConfig(const ResultCacheConfig& cfg);

/// Footprint one cached result is charged: the output tensor (length x
/// hidden floats) plus the per-entry overhead.  Computable from lengths
/// alone, so accounting-only mode prices capacity without tensors.
std::size_t CacheEntryBytes(std::size_t length, std::size_t hidden,
                            const ResultCacheConfig& cfg);

/// One cached result.
struct CacheEntry {
  CacheKey key = kNullCacheKey;
  std::size_t bytes = 0;    ///< accounted footprint
  double insert_s = 0;      ///< last insert/refresh (the TTL anchor)
  double last_touch_s = 0;  ///< last lookup hit
  /// Admitted index of the producing request in its engine's current
  /// stream, or npos() once `value` is materialized.
  std::size_t pending_producer = static_cast<std::size_t>(-1);
  /// Engine that owes the value while pending (opaque tag), else null.
  const void* producer_owner = nullptr;
  MatrixF value;  ///< empty until materialized (always in accounting mode)

  static constexpr std::size_t npos() { return static_cast<std::size_t>(-1); }
  bool pending() const { return pending_producer != npos(); }
};

/// Capacity-bounded, TTL-expiring, virtually-timed result store.
class ResultCache {
 public:
  explicit ResultCache(const ResultCacheConfig& cfg);

  /// The live entry for `key` at virtual time `now`, touching its recency
  /// order; expired entries are removed (counted as expirations) and
  /// nullptr is returned.  The pointer is valid until the next mutating
  /// call.
  const CacheEntry* Lookup(CacheKey key, double now);

  /// The live entry for `key` at `now` without touching recency or
  /// expiring anything (introspection for routers and tests); nullptr
  /// when absent or stale.
  const CacheEntry* Peek(CacheKey key, double now) const;

  /// Whether `key` is live at `now` (Peek() != nullptr).
  bool Contains(CacheKey key, double now) const;

  /// Makes `key` visible with the given footprint, producer-pending.
  /// Expired entries are swept first, then victims are evicted until the
  /// entry fits; an entry that can never fit is dropped (counted as
  /// rejected_too_large).  Re-inserting a live key refreshes it: the TTL
  /// re-anchors at `now`, recency is touched and the producer is
  /// re-pointed.
  void Insert(CacheKey key, std::size_t bytes, double now,
              std::size_t producer, const void* producer_owner);

  /// Fills the tensor of a pending entry (no-op if the entry was evicted
  /// in the meantime) and clears its producer link.
  void Materialize(CacheKey key, MatrixF value);

  /// (key, producer) of every entry still owing its value to
  /// `producer_owner`, in deterministic (eviction-first) order.  The
  /// engine calls this at Drain() to materialize what survived.
  std::vector<std::pair<CacheKey, std::size_t>> PendingOf(
      const void* producer_owner) const;

  /// Drops every entry (failover invalidation); counted in stats.
  void Clear();

  const CacheStoreStats& stats() const { return stats_; }
  const ResultCacheConfig& config() const { return cfg_; }
  std::size_t entries() const { return entries_.size(); }
  std::size_t bytes_used() const { return bytes_used_; }

 private:
  bool Expired(const CacheEntry& entry, double now) const;
  void RemoveEntry(CacheKey key);
  void ExpireStale(double now);

  ResultCacheConfig cfg_;
  EvictionOrder order_;
  std::unordered_map<CacheKey, CacheEntry> entries_;
  std::size_t bytes_used_ = 0;
  CacheStoreStats stats_;
};

}  // namespace latte
