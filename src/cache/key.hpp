#pragma once
// Cache keys: a request's content identity folded into 64 bits.
//
// The result cache serves a repeat only when the new request's *content*
// is byte-identical to the one that produced the cached entry, so a key
// must be a pure function of content.  Two key policies cover the two
// ways content enters the system:
//
//   * kRequestId      -- requests carry an explicit identity (the Zipf
//                        popularity generator's id field): key = mix(id,
//                        length).  Works without tensors, so it is the
//                        policy accounting-only sweeps use.
//   * kEmbeddingHash  -- content-addressed: key = FNV-1a over the raw
//                        float bytes of the input embedding (plus the
//                        length).  Works for caller-provided tensors;
//                        requests with neither a tensor at Push time nor
//                        an id fall back to the id path or are bypassed.
//
// Keys must be identical across platforms for replays to be
// byte-identical, so hashing is over exact IEEE-754 storage bytes with a
// fixed-constant mixer -- no std::hash, whose value is
// implementation-defined.

#include <cstddef>
#include <cstdint>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"  // MixHash64, the shared integer mixer

namespace latte {

/// 64-bit content identity of a request.  kNullCacheKey means "no key"
/// (the request is not cacheable under the configured policy); real hash
/// values are folded away from it.
using CacheKey = std::uint64_t;
inline constexpr CacheKey kNullCacheKey = 0;

/// How the cache derives a key from a request.
enum class CacheKeyPolicy {
  kRequestId,      ///< mix of TimedRequest::id and length (tensor-free)
  kEmbeddingHash,  ///< FNV-1a over the input embedding bytes + length
};

/// Human-readable policy name (bench/report labels).
const char* CacheKeyPolicyName(CacheKeyPolicy policy);

/// FNV-1a 64 over a raw byte range, continued from `seed` (use the
/// previous digest to chain fields).  Deterministic across platforms.
std::uint64_t HashBytes(const void* data, std::size_t size,
                        std::uint64_t seed);

/// Key for an id-carrying request (kRequestId policy).  Folds the length
/// in so an id can never alias across lengths (same id must mean same
/// content, and content determines length).
CacheKey RequestIdKey(std::uint64_t id, std::size_t length);

/// Content-addressed key for a request with a materialized input
/// embedding (kEmbeddingHash policy).
CacheKey EmbeddingKey(const MatrixF& embedding, std::size_t length);

}  // namespace latte
