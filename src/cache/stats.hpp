#pragma once
// Cache accounting, split along the ownership line:
//
//   * CacheStoreStats belongs to one ResultCache and is cumulative over
//     its lifetime (a store can outlive many serving streams, and in the
//     cluster's shared mode it is owned once and referenced by every
//     replica -- summing per-replica snapshots of a shared store would
//     double count, so the fleet report takes the store's numbers once).
//   * CacheStats is what one engine reports for one drained stream: the
//     per-stream lookup outcomes (hit / coalesced / miss are disjoint;
//     lookups = hits + coalesced + misses), plus a snapshot of the
//     backing store taken at Drain().

#include <cstddef>

namespace latte {

/// Lifetime-cumulative counters of one ResultCache.
struct CacheStoreStats {
  std::size_t insertions = 0;   ///< new entries created
  std::size_t refreshes = 0;    ///< re-insert of a live key (TTL re-anchor)
  std::size_t evictions = 0;    ///< removed under capacity pressure
  std::size_t expirations = 0;  ///< removed by TTL in virtual time
  std::size_t rejected_too_large = 0;  ///< entry alone exceeds capacity
  std::size_t invalidations = 0;       ///< entries dropped by Clear()
  std::size_t entries = 0;             ///< currently live entries
  std::size_t bytes_used = 0;          ///< currently accounted bytes
  std::size_t peak_bytes = 0;          ///< high-water mark of bytes_used
};

/// One engine's cache accounting for one drained stream.
struct CacheStats {
  std::size_t lookups = 0;    ///< cacheable requests offered
  std::size_t hits = 0;       ///< served from a live entry
  std::size_t coalesced = 0;  ///< attached as follower to an in-flight leader
  /// Fell through to admission as a prospective leader (the deduplicated
  /// work; a bounded queue may still reject it there).
  std::size_t misses = 0;
  std::size_t bypassed = 0;   ///< not cacheable under the key policy
  CacheStoreStats store;      ///< backing-store snapshot at Drain()
};

/// Served-from-cache share of the cacheable traffic:
/// (hits + coalesced) / lookups, 0 when nothing was looked up.
double CacheHitRate(const CacheStats& stats);

/// Element-wise sum of the engine-side (per-stream) counters; `store` is
/// left zeroed -- the caller decides whether store snapshots may be summed
/// (per-replica stores) or must be taken once (a shared store).
CacheStats AccumulateEngineCacheStats(const CacheStats& a,
                                      const CacheStats& b);

/// Element-wise sum of two store snapshots (only valid across *distinct*
/// stores; peak_bytes sums as an upper bound).
CacheStoreStats AccumulateStoreStats(const CacheStoreStats& a,
                                     const CacheStoreStats& b);

}  // namespace latte
