#pragma once
// Deterministic recency bookkeeping for the result cache.
//
// Two policies share one structure of two intrusively-ordered segments:
//
//   * kLru           -- every entry lives in the probation segment; a hit
//                       moves it to the MRU end; the victim is the LRU
//                       end.  Classic least-recently-used.
//   * kSegmentedLru  -- frequency-aware SLRU: an insert lands in
//                       probation, a hit *promotes* to the protected
//                       segment (capped at a byte share of the cache), and
//                       capacity pressure evicts probation first.  A burst
//                       of one-shot keys (a scan) churns probation without
//                       displacing entries that have proven reuse -- the
//                       scan resistance plain LRU lacks under skewed
//                       traffic with a long random tail.
//
// Every operation is a deterministic function of the call sequence: order
// lives in std::list (no hash-iteration order ever decides anything), so
// a replay produces byte-identical eviction decisions at any thread
// count.

#include <cstddef>
#include <list>
#include <unordered_map>
#include <vector>

#include "cache/key.hpp"

namespace latte {

/// How the result cache picks victims under capacity pressure.
enum class EvictionPolicy {
  kLru,           ///< least-recently-used
  kSegmentedLru,  ///< SLRU: probation + protected segments
};

/// Human-readable policy name (bench/report labels).
const char* EvictionPolicyName(EvictionPolicy policy);

/// Recency order over cache keys for one policy instance.
class EvictionOrder {
 public:
  /// `protected_cap_bytes` bounds the SLRU protected segment (0 =
  /// unbounded); ignored by plain LRU.
  EvictionOrder(EvictionPolicy policy, std::size_t protected_cap_bytes);

  /// Registers a new key at the probation MRU end.  The key must not be
  /// tracked already.
  void Insert(CacheKey key, std::size_t bytes);

  /// Records a use.  LRU: move to MRU.  SLRU: promote to protected (or
  /// refresh within protected), demoting protected-LRU entries back to
  /// probation while the segment exceeds its byte cap.
  void Touch(CacheKey key);

  /// The next victim under capacity pressure: probation LRU first, then
  /// protected LRU.  Requires a non-empty order.
  CacheKey Victim() const;

  /// Forgets a key (evicted, expired or invalidated).
  void Remove(CacheKey key);

  /// Keys from most-evictable to least (probation LRU -> MRU, then
  /// protected LRU -> MRU): the deterministic sweep order for TTL expiry.
  std::vector<CacheKey> KeysEvictionFirst() const;

  std::size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }
  std::size_t protected_bytes() const { return protected_bytes_; }

 private:
  enum class Segment { kProbation, kProtected };
  struct Slot {
    std::list<CacheKey>::iterator pos;
    Segment segment = Segment::kProbation;
    std::size_t bytes = 0;
  };

  void DemoteWhileOverCap();

  EvictionPolicy policy_;
  std::size_t protected_cap_bytes_;
  std::list<CacheKey> probation_;   ///< front = LRU, back = MRU
  std::list<CacheKey> protected_;   ///< front = LRU, back = MRU
  std::size_t protected_bytes_ = 0;
  std::unordered_map<CacheKey, Slot> index_;
};

}  // namespace latte
