#include "cache/eviction.hpp"

#include <stdexcept>

namespace latte {

const char* EvictionPolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kSegmentedLru:
      return "segmented-lru";
  }
  return "unknown";
}

EvictionOrder::EvictionOrder(EvictionPolicy policy,
                             std::size_t protected_cap_bytes)
    : policy_(policy), protected_cap_bytes_(protected_cap_bytes) {}

void EvictionOrder::Insert(CacheKey key, std::size_t bytes) {
  if (index_.count(key) != 0) {
    throw std::logic_error(
        "EvictionOrder::Insert: key is already tracked (use Touch to "
        "record a reuse)");
  }
  probation_.push_back(key);
  Slot slot;
  slot.pos = std::prev(probation_.end());
  slot.segment = Segment::kProbation;
  slot.bytes = bytes;
  index_.emplace(key, slot);
}

void EvictionOrder::Touch(CacheKey key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    throw std::logic_error("EvictionOrder::Touch: key is not tracked");
  }
  Slot& slot = it->second;
  if (policy_ == EvictionPolicy::kLru) {
    probation_.splice(probation_.end(), probation_, slot.pos);
    return;
  }
  if (slot.segment == Segment::kProtected) {
    protected_.splice(protected_.end(), protected_, slot.pos);
    return;
  }
  // Promote: the entry has proven reuse, move it out of scan churn.
  probation_.erase(slot.pos);
  protected_.push_back(key);
  slot.pos = std::prev(protected_.end());
  slot.segment = Segment::kProtected;
  protected_bytes_ += slot.bytes;
  DemoteWhileOverCap();
}

void EvictionOrder::DemoteWhileOverCap() {
  if (protected_cap_bytes_ == 0) return;
  // Demote protected-LRU entries to the probation MRU end until the
  // segment fits; never demote the sole survivor (a protected segment
  // smaller than one entry would disable SLRU entirely).
  while (protected_bytes_ > protected_cap_bytes_ && protected_.size() > 1) {
    const CacheKey demoted = protected_.front();
    Slot& slot = index_.at(demoted);
    protected_.pop_front();
    protected_bytes_ -= slot.bytes;
    probation_.push_back(demoted);
    slot.pos = std::prev(probation_.end());
    slot.segment = Segment::kProbation;
  }
}

CacheKey EvictionOrder::Victim() const {
  if (!probation_.empty()) return probation_.front();
  if (!protected_.empty()) return protected_.front();
  throw std::logic_error("EvictionOrder::Victim: no entries to evict");
}

void EvictionOrder::Remove(CacheKey key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    throw std::logic_error("EvictionOrder::Remove: key is not tracked");
  }
  const Slot& slot = it->second;
  if (slot.segment == Segment::kProtected) {
    protected_bytes_ -= slot.bytes;
    protected_.erase(slot.pos);
  } else {
    probation_.erase(slot.pos);
  }
  index_.erase(it);
}

std::vector<CacheKey> EvictionOrder::KeysEvictionFirst() const {
  std::vector<CacheKey> keys;
  keys.reserve(index_.size());
  for (CacheKey key : probation_) keys.push_back(key);
  for (CacheKey key : protected_) keys.push_back(key);
  return keys;
}

}  // namespace latte
