#include "cache/stats.hpp"

namespace latte {

double CacheHitRate(const CacheStats& stats) {
  if (stats.lookups == 0) return 0;
  return static_cast<double>(stats.hits + stats.coalesced) /
         static_cast<double>(stats.lookups);
}

CacheStats AccumulateEngineCacheStats(const CacheStats& a,
                                      const CacheStats& b) {
  CacheStats sum;
  sum.lookups = a.lookups + b.lookups;
  sum.hits = a.hits + b.hits;
  sum.coalesced = a.coalesced + b.coalesced;
  sum.misses = a.misses + b.misses;
  sum.bypassed = a.bypassed + b.bypassed;
  return sum;
}

CacheStoreStats AccumulateStoreStats(const CacheStoreStats& a,
                                     const CacheStoreStats& b) {
  CacheStoreStats sum;
  sum.insertions = a.insertions + b.insertions;
  sum.refreshes = a.refreshes + b.refreshes;
  sum.evictions = a.evictions + b.evictions;
  sum.expirations = a.expirations + b.expirations;
  sum.rejected_too_large = a.rejected_too_large + b.rejected_too_large;
  sum.invalidations = a.invalidations + b.invalidations;
  sum.entries = a.entries + b.entries;
  sum.bytes_used = a.bytes_used + b.bytes_used;
  sum.peak_bytes = a.peak_bytes + b.peak_bytes;
  return sum;
}

}  // namespace latte
