#pragma once
// In-flight request coalescing: concurrent identical requests execute
// once.
//
// When a request misses the result cache, it is admitted as the *leader*
// for its key; identical requests arriving while the leader's batch has
// not yet completed in virtual time *attach* as followers instead of
// entering admission at all.  When the leader's batch completes, every
// follower completes with it -- one execution, N responses -- and each
// follower's latency is accounted from its own arrival to the leader's
// completion, so coalescing never hides queueing delay.
//
// The table is engine-local (followers need the leader's output, which
// lives in the same engine's stream), purely virtual-time driven and
// deterministic: state is keyed lookups only, no iteration order.

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "cache/key.hpp"

namespace latte {

/// One request served by its key's in-flight leader.
struct CoalescedFollower {
  std::size_t offered_id = 0;  ///< the follower's Push() ordinal
  double arrival_s = 0;
  std::size_t length = 0;
};

/// Pending computations by key, with their attached followers.
class InFlightTable {
 public:
  /// Registers an admitted miss as the leader for `key`.  A key can have
  /// at most one leader at a time (a second identical arrival attaches).
  void Lead(CacheKey key);

  /// Attaches a request to `key`'s pending computation.  Returns false
  /// (and records nothing) when no leader is in flight for the key.
  bool Attach(CacheKey key, std::size_t offered_id, double arrival_s,
              std::size_t length);

  /// Completes `key`'s computation: removes the pending state and hands
  /// back the followers (in attach order) for latency accounting.
  std::vector<CoalescedFollower> Complete(CacheKey key);

  bool pending(CacheKey key) const { return pending_.count(key) != 0; }
  std::size_t size() const { return pending_.size(); }
  void Clear() { pending_.clear(); }

 private:
  std::unordered_map<CacheKey, std::vector<CoalescedFollower>> pending_;
};

}  // namespace latte
