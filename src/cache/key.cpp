#include "cache/key.hpp"

namespace latte {
namespace {

// A zero key is the "no key" sentinel; fold real digests away from it.
CacheKey NonNull(std::uint64_t h) { return h == kNullCacheKey ? 1 : h; }

}  // namespace

const char* CacheKeyPolicyName(CacheKeyPolicy policy) {
  switch (policy) {
    case CacheKeyPolicy::kRequestId:
      return "request-id";
    case CacheKeyPolicy::kEmbeddingHash:
      return "embedding-hash";
  }
  return "unknown";
}

std::uint64_t HashBytes(const void* data, std::size_t size,
                        std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;  // FNV-1a 64 prime
  }
  return h;
}

CacheKey RequestIdKey(std::uint64_t id, std::size_t length) {
  return NonNull(MixHash64(id ^ MixHash64(static_cast<std::uint64_t>(length))));
}

CacheKey EmbeddingKey(const MatrixF& embedding, std::size_t length) {
  constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
  std::uint64_t h = HashBytes(embedding.flat().data(),
                              embedding.flat().size_bytes(), kFnvOffset);
  h = HashBytes(&length, sizeof(length), h);
  return NonNull(MixHash64(h));
}

}  // namespace latte
