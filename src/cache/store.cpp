#include "cache/store.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace latte {
namespace {

ResultCacheConfig Validated(const ResultCacheConfig& cfg) {
  ValidateResultCacheConfig(cfg);
  return cfg;
}

std::size_t ProtectedCapBytes(const ResultCacheConfig& cfg) {
  if (cfg.eviction != EvictionPolicy::kSegmentedLru ||
      cfg.capacity_bytes == 0) {
    return 0;  // unbounded segment (plain LRU never uses it)
  }
  return static_cast<std::size_t>(
      static_cast<double>(cfg.capacity_bytes) * cfg.protected_fraction);
}

}  // namespace

ConfigIssues CheckResultCacheConfig(const ResultCacheConfig& cfg) {
  ConfigIssues issues;
  // Negated comparisons so NaN fails validation instead of slipping past.
  if (!(cfg.ttl_s >= 0) || std::isinf(cfg.ttl_s)) {
    AddIssue(issues, "ttl_s",
             "must be finite and >= 0 (0 = never expires), got " +
                 std::to_string(cfg.ttl_s));
  }
  if (!(cfg.hit_latency_s >= 0) || std::isinf(cfg.hit_latency_s)) {
    AddIssue(issues, "hit_latency_s",
             "must be finite and >= 0, got " +
                 std::to_string(cfg.hit_latency_s));
  }
  if (cfg.eviction == EvictionPolicy::kSegmentedLru &&
      (!(cfg.protected_fraction > 0) || cfg.protected_fraction > 1)) {
    AddIssue(issues, "protected_fraction",
             "must be in (0, 1] for segmented LRU, got " +
                 std::to_string(cfg.protected_fraction));
  }
  return issues;
}

void ValidateResultCacheConfig(const ResultCacheConfig& cfg) {
  ThrowOnIssues("ResultCacheConfig", CheckResultCacheConfig(cfg));
}

std::size_t CacheEntryBytes(std::size_t length, std::size_t hidden,
                            const ResultCacheConfig& cfg) {
  return length * hidden * sizeof(float) + cfg.entry_overhead_bytes;
}

ResultCache::ResultCache(const ResultCacheConfig& cfg)
    : cfg_(Validated(cfg)), order_(cfg.eviction, ProtectedCapBytes(cfg)) {}

bool ResultCache::Expired(const CacheEntry& entry, double now) const {
  return cfg_.ttl_s > 0 && now - entry.insert_s >= cfg_.ttl_s;
}

void ResultCache::RemoveEntry(CacheKey key) {
  const auto it = entries_.find(key);
  bytes_used_ -= it->second.bytes;
  order_.Remove(key);
  entries_.erase(it);
  stats_.entries = entries_.size();
  stats_.bytes_used = bytes_used_;
}

void ResultCache::ExpireStale(double now) {
  if (cfg_.ttl_s <= 0) return;
  // Sweep in the deterministic eviction-first order; what is stale is a
  // pure function of insert stamps and `now`, so any full sweep order
  // yields the same survivors -- but the fixed order keeps the stats and
  // any future partial-sweep variant replay-stable too.
  for (CacheKey key : order_.KeysEvictionFirst()) {
    if (Expired(entries_.at(key), now)) {
      RemoveEntry(key);
      ++stats_.expirations;
    }
  }
}

const CacheEntry* ResultCache::Lookup(CacheKey key, double now) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  if (Expired(it->second, now)) {
    RemoveEntry(key);
    ++stats_.expirations;
    return nullptr;
  }
  it->second.last_touch_s = now;
  order_.Touch(key);
  return &it->second;
}

const CacheEntry* ResultCache::Peek(CacheKey key, double now) const {
  const auto it = entries_.find(key);
  if (it == entries_.end() || Expired(it->second, now)) return nullptr;
  return &it->second;
}

bool ResultCache::Contains(CacheKey key, double now) const {
  return Peek(key, now) != nullptr;
}

void ResultCache::Insert(CacheKey key, std::size_t bytes, double now,
                         std::size_t producer, const void* producer_owner) {
  if (key == kNullCacheKey) {
    throw std::invalid_argument(
        "ResultCache::Insert: kNullCacheKey marks an uncacheable request "
        "and must be filtered by the caller");
  }
  ExpireStale(now);

  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh: same content recomputed (the prior entry aged out of the
    // in-flight window or was produced by another engine).  Same key
    // implies same length, hence the same footprint.
    CacheEntry& entry = it->second;
    bytes_used_ += bytes - entry.bytes;
    entry.bytes = bytes;
    entry.insert_s = now;
    entry.pending_producer = producer;
    entry.producer_owner = producer_owner;
    entry.value = MatrixF{};
    order_.Touch(key);
    ++stats_.refreshes;
    stats_.peak_bytes = std::max(stats_.peak_bytes, bytes_used_);
    stats_.entries = entries_.size();
    stats_.bytes_used = bytes_used_;
    return;
  }

  if (cfg_.capacity_bytes > 0 && bytes > cfg_.capacity_bytes) {
    ++stats_.rejected_too_large;
    return;
  }
  while (cfg_.capacity_bytes > 0 &&
         bytes_used_ + bytes > cfg_.capacity_bytes && !order_.empty()) {
    RemoveEntry(order_.Victim());
    ++stats_.evictions;
  }

  CacheEntry entry;
  entry.key = key;
  entry.bytes = bytes;
  entry.insert_s = now;
  entry.last_touch_s = now;
  entry.pending_producer = producer;
  entry.producer_owner = producer_owner;
  entries_.emplace(key, std::move(entry));
  order_.Insert(key, bytes);
  bytes_used_ += bytes;
  ++stats_.insertions;
  stats_.peak_bytes = std::max(stats_.peak_bytes, bytes_used_);
  stats_.entries = entries_.size();
  stats_.bytes_used = bytes_used_;
}

void ResultCache::Materialize(CacheKey key, MatrixF value) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;  // evicted before execution caught up
  it->second.value = std::move(value);
  it->second.pending_producer = CacheEntry::npos();
  it->second.producer_owner = nullptr;
}

std::vector<std::pair<CacheKey, std::size_t>> ResultCache::PendingOf(
    const void* producer_owner) const {
  std::vector<std::pair<CacheKey, std::size_t>> pending;
  for (CacheKey key : order_.KeysEvictionFirst()) {
    const CacheEntry& entry = entries_.at(key);
    if (entry.pending() && entry.producer_owner == producer_owner) {
      pending.emplace_back(key, entry.pending_producer);
    }
  }
  return pending;
}

void ResultCache::Clear() {
  stats_.invalidations += entries_.size();
  for (CacheKey key : order_.KeysEvictionFirst()) RemoveEntry(key);
  stats_.entries = 0;
  stats_.bytes_used = 0;
}

}  // namespace latte
