#include "cache/coalesce.hpp"

#include <stdexcept>
#include <utility>

namespace latte {

void InFlightTable::Lead(CacheKey key) {
  if (key == kNullCacheKey) {
    throw std::invalid_argument(
        "InFlightTable::Lead: kNullCacheKey marks an uncacheable request "
        "and must be filtered by the caller");
  }
  const auto [it, inserted] =
      pending_.emplace(key, std::vector<CoalescedFollower>{});
  (void)it;
  if (!inserted) {
    throw std::logic_error(
        "InFlightTable::Lead: key already has an in-flight leader (the "
        "second arrival should have attached as a follower)");
  }
}

bool InFlightTable::Attach(CacheKey key, std::size_t offered_id,
                           double arrival_s, std::size_t length) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) return false;
  it->second.push_back({offered_id, arrival_s, length});
  return true;
}

std::vector<CoalescedFollower> InFlightTable::Complete(CacheKey key) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) {
    throw std::logic_error(
        "InFlightTable::Complete: key has no in-flight leader");
  }
  std::vector<CoalescedFollower> followers = std::move(it->second);
  pending_.erase(it);
  return followers;
}

}  // namespace latte
