#pragma once
// The paper's primary contribution: length-linear sparse attention via
// quantized candidate pre-selection (Section 3).
//
// Pipeline per head (Fig 3):
//   1. quantize Q, K to 1- or 4-bit codes              (Stage 1, At-Sel)
//   2. approximate scores Q'.K'^T via product LUT      (Stage 1, At-Sel)
//   3. streaming Top-k per query row                   (Stage 1, At-Sel)
//   4. gather Ks/Vs candidates                         (Stage 2.1, load)
//   5. fused exact score + scale + mask + exp          (Stage 2.2, Fig 4)
//   6. Z = S.V / sum(S)                                (Stage 2.3)
//
// Complexity: O(n * k * d) full-precision work instead of O(n^2 * d); the
// remaining O(n^2 * d) pre-selection runs on 1-bit codes in LUT fabric.

#include "core/candidate_selector.hpp"
#include "core/fused_kernel.hpp"
#include "nn/attention.hpp"

namespace latte {

/// Configuration of the sparse attention operator.
struct SparseAttentionConfig {
  std::size_t top_k = 30;  ///< candidates per query (k <= n degenerates dense)
  int bits = 1;            ///< pre-selection quantization width (1 or 4)
  unsigned unroll = 8;     ///< fused-kernel UNROLL factor (cycle model only)
  /// Padding mask: keys at index >= valid_len are never attended
  /// (0 = all keys valid).
  std::size_t valid_len = 0;
};

/// Execution statistics for one forward call, consumed by the metrics and
/// timing layers.
struct SparseAttentionStats {
  std::size_t n = 0;                ///< query/key count
  std::size_t selected_per_row = 0; ///< mean candidates per query row
  std::size_t lut_multiplies = 0;   ///< quantized score LUT work
  std::size_t sorter_cycles = 0;    ///< streaming Top-k cycles
  std::size_t fused_cycles = 0;     ///< Stage 2.2 cycles
  std::size_t exact_macs = 0;       ///< full-precision MACs (score + context)
  /// Candidates per query row, for fidelity metrics.
  std::vector<std::vector<std::uint32_t>> candidates;
};

/// Reusable scratch for the Stage 2 hot loop: gather buffers for the
/// candidate K/V rows, the fused-kernel score result and the context row.
/// One scratch serves one thread; the batch runtime keeps one per worker
/// (wrapped in a runtime::Workspace) so repeated SparseAttention calls do
/// zero heap allocation once the buffers have grown to steady state.
struct AttentionScratch {
  MatrixF ks;               ///< gathered candidate keys, (top_k x d)
  MatrixF vs;               ///< gathered candidate values, (top_k x d_v)
  FusedScoreResult scores;  ///< fused-kernel output, reused per row
  std::vector<float> ctx;   ///< context row, length d_v

  /// Grows `ctx` to `d_v` without shrinking (capacity is sticky).
  void ReserveContext(std::size_t d_v) {
    if (ctx.size() < d_v) ctx.resize(d_v);
  }
};

/// Sparse attention for one head.
/// q, k, v are (n x d); the result is (n x d), shape-compatible with
/// DenseAttention.  If stats != nullptr the execution statistics are
/// written there.
MatrixF SparseAttention(const MatrixF& q, const MatrixF& k, const MatrixF& v,
                        const SparseAttentionConfig& cfg,
                        SparseAttentionStats* stats = nullptr);

/// Workspace variant: identical math and bit-identical output, but every
/// per-row temporary (gathered K/V blocks, exp-score buffer, context row)
/// lives in `scratch` and is reused across rows and across calls.  This is
/// the operator the batched execution runtime drives.
MatrixF SparseAttention(const MatrixF& q, const MatrixF& k, const MatrixF& v,
                        const SparseAttentionConfig& cfg,
                        SparseAttentionStats* stats,
                        AttentionScratch& scratch);

/// Gathers the candidate rows of `src` into `out`, resizing it to
/// (|idx| x src.cols()) while reusing its allocation (Stage 2.1 load).
void GatherRowsInto(const MatrixF& src, std::span<const std::uint32_t> idx,
                    MatrixF& out);

/// Adapts SparseAttention to the encoder's pluggable AttentionFn.
AttentionFn MakeSparseAttentionFn(SparseAttentionConfig cfg);

/// Dense attention restricted to a given candidate set (oracle for tests:
/// sparse attention with exact Top-k candidates must match this).
MatrixF AttentionOnCandidates(
    const MatrixF& q, const MatrixF& k, const MatrixF& v,
    const std::vector<std::vector<std::uint32_t>>& candidates);

}  // namespace latte
