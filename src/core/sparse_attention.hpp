#pragma once
// The paper's primary contribution: length-linear sparse attention via
// quantized candidate pre-selection (Section 3).
//
// Pipeline per head (Fig 3):
//   1. quantize Q, K to 1- or 4-bit codes              (Stage 1, At-Sel)
//   2. approximate scores Q'.K'^T via product LUT      (Stage 1, At-Sel)
//   3. streaming Top-k per query row                   (Stage 1, At-Sel)
//   4. gather Ks/Vs candidates                         (Stage 2.1, load)
//   5. fused exact score + scale + mask + exp          (Stage 2.2, Fig 4)
//   6. Z = S.V / sum(S)                                (Stage 2.3)
//
// Complexity: O(n * k * d) full-precision work instead of O(n^2 * d); the
// remaining O(n^2 * d) pre-selection runs on 1-bit codes in LUT fabric.

#include "core/candidate_selector.hpp"
#include "core/fused_kernel.hpp"
#include "nn/attention.hpp"

namespace latte {

/// Configuration of the sparse attention operator.
struct SparseAttentionConfig {
  std::size_t top_k = 30;  ///< candidates per query (k <= n degenerates dense)
  int bits = 1;            ///< pre-selection quantization width (1 or 4)
  unsigned unroll = 8;     ///< fused-kernel UNROLL factor (cycle model only)
  /// Padding mask: keys at index >= valid_len are never attended
  /// (0 = all keys valid).
  std::size_t valid_len = 0;
};

/// Execution statistics for one forward call, consumed by the metrics and
/// timing layers.
struct SparseAttentionStats {
  std::size_t n = 0;                ///< query/key count
  std::size_t selected_per_row = 0; ///< min(top_k, n)
  std::size_t lut_multiplies = 0;   ///< quantized score LUT work
  std::size_t sorter_cycles = 0;    ///< streaming Top-k cycles
  std::size_t fused_cycles = 0;     ///< Stage 2.2 cycles
  std::size_t exact_macs = 0;       ///< full-precision MACs (score + context)
  /// Candidates per query row, for fidelity metrics.
  std::vector<std::vector<std::uint32_t>> candidates;
};

/// Sparse attention for one head.
/// q, k, v are (n x d); the result is (n x d), shape-compatible with
/// DenseAttention.  If stats != nullptr the execution statistics are
/// written there.
MatrixF SparseAttention(const MatrixF& q, const MatrixF& k, const MatrixF& v,
                        const SparseAttentionConfig& cfg,
                        SparseAttentionStats* stats = nullptr);

/// Adapts SparseAttention to the encoder's pluggable AttentionFn.
AttentionFn MakeSparseAttentionFn(SparseAttentionConfig cfg);

/// Dense attention restricted to a given candidate set (oracle for tests:
/// sparse attention with exact Top-k candidates must match this).
MatrixF AttentionOnCandidates(
    const MatrixF& q, const MatrixF& k, const MatrixF& v,
    const std::vector<std::vector<std::uint32_t>>& candidates);

}  // namespace latte
