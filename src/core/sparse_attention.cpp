#include "core/sparse_attention.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace latte {
namespace {

/// Gathers the candidate rows of `src` into a dense (|idx| x d) block
/// (Stage 2.1: data loading from the Top-k index list).
MatrixF GatherRows(const MatrixF& src, std::span<const std::uint32_t> idx) {
  MatrixF out;
  GatherRowsInto(src, idx, out);
  return out;
}

}  // namespace

void GatherRowsInto(const MatrixF& src, std::span<const std::uint32_t> idx,
                    MatrixF& out) {
  out.Resize(idx.size(), src.cols());
  for (std::size_t r = 0; r < idx.size(); ++r) {
    auto s = src.row(idx[r]);
    std::copy(s.begin(), s.end(), out.row(r).begin());
  }
}

MatrixF SparseAttention(const MatrixF& q, const MatrixF& k, const MatrixF& v,
                        const SparseAttentionConfig& cfg,
                        SparseAttentionStats* stats) {
  AttentionScratch scratch;
  return SparseAttention(q, k, v, cfg, stats, scratch);
}

MatrixF SparseAttention(const MatrixF& q, const MatrixF& k, const MatrixF& v,
                        const SparseAttentionConfig& cfg,
                        SparseAttentionStats* stats,
                        AttentionScratch& scratch) {
  if (q.cols() != k.cols() || k.rows() != v.rows()) {
    throw std::invalid_argument("SparseAttention: shape mismatch");
  }
  const std::size_t n = q.rows();
  const std::size_t d = q.cols();

  // Stage 1: quantized candidate pre-selection.
  SelectorConfig sel_cfg;
  sel_cfg.top_k = cfg.top_k;
  sel_cfg.bits = cfg.bits;
  sel_cfg.valid_len = cfg.valid_len;
  SelectionResult sel = SelectCandidates(q, k, sel_cfg);

  MatrixF out(n, v.cols());
  FusedKernelConfig fk;
  fk.scale = 1.f / std::sqrt(static_cast<float>(d));
  fk.unroll = cfg.unroll;

  scratch.ReserveContext(v.cols());
  const std::span<float> z(scratch.ctx.data(), v.cols());

  std::size_t fused_cycles = 0;
  std::size_t exact_macs = 0;
  std::size_t selected_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& cand = sel.candidates[i];
    selected_total += cand.size();
    // Stage 2.1: gather Ks/Vs for this query row into the reused buffers.
    GatherRowsInto(k, cand, scratch.ks);
    GatherRowsInto(v, cand, scratch.vs);
    // Stage 2.2: fused exact score computation (Fig 4).
    FusedScoreKernel(q.row(i), scratch.ks, fk, scratch.scores);
    fused_cycles += scratch.scores.cycles;
    exact_macs += cand.size() * d * 2;  // scores + context
    // Stage 2.3: weighted context.
    WeightedContext(scratch.scores, scratch.vs, z);
    auto dst = out.row(i);
    for (std::size_t c = 0; c < z.size(); ++c) dst[c] = z[c];
  }

  if (stats != nullptr) {
    stats->n = n;
    stats->selected_per_row = n > 0 ? selected_total / n : 0;
    stats->lut_multiplies = sel.lut_multiplies;
    stats->sorter_cycles = sel.sorter_cycles;
    stats->fused_cycles = fused_cycles;
    stats->exact_macs = exact_macs;
    stats->candidates = std::move(sel.candidates);
  }
  return out;
}

AttentionFn MakeSparseAttentionFn(SparseAttentionConfig cfg) {
  return [cfg](const MatrixF& q, const MatrixF& k, const MatrixF& v) {
    return SparseAttention(q, k, v, cfg, nullptr);
  };
}

MatrixF AttentionOnCandidates(
    const MatrixF& q, const MatrixF& k, const MatrixF& v,
    const std::vector<std::vector<std::uint32_t>>& candidates) {
  if (candidates.size() != q.rows()) {
    throw std::invalid_argument("AttentionOnCandidates: row count mismatch");
  }
  MatrixF out(q.rows(), v.cols());
  FusedKernelConfig fk;
  fk.scale = 1.f / std::sqrt(static_cast<float>(q.cols()));
  for (std::size_t i = 0; i < q.rows(); ++i) {
    const MatrixF ks = GatherRows(k, candidates[i]);
    const MatrixF vs = GatherRows(v, candidates[i]);
    const FusedScoreResult fs = FusedScoreKernel(q.row(i), ks, fk);
    const std::vector<float> z = WeightedContext(fs, vs);
    auto dst = out.row(i);
    for (std::size_t c = 0; c < z.size(); ++c) dst[c] = z[c];
  }
  return out;
}

}  // namespace latte
