#pragma once
// The fused attention score kernel of Fig 4 (Stage 2.2).
//
// The FPGA fuses the exact score dot-product, the 1/sqrt(d) scaling, the
// attention mask and the exponentiation into a single II=1 loop: the
// reduction runs for Ks.dim2 iterations and the scale/mask/exp "tail"
// executes on the last iteration only, so the fused loop has the same trip
// count as the plain dot-product loop.  `unroll` mirrors the HLS UNROLL
// factor p; it only affects the reported cycle estimate, never the values.

#include <cstdint>
#include <limits>

#include "core/exp_lut.hpp"
#include "tensor/matrix.hpp"

namespace latte {

/// Output of the fused kernel for one query row.
struct FusedScoreResult {
  std::vector<float> exp_scores;  ///< e^{mask(q.k_j / sqrt(d))} per candidate
  double sum = 0.0;               ///< running sum of exp_scores
  std::size_t cycles = 0;         ///< modeled II=1 cycles: ceil(d/p) * |cand|
};

/// Parameters of the fused loop.
struct FusedKernelConfig {
  float scale = 1.0f;   ///< typically 1/sqrt(d)
  unsigned unroll = 8;  ///< HLS UNROLL factor p (cycle model only)
  /// Candidates j with masked[j] true receive score -inf before exp (the
  /// padding / causal mask of Fig 1(b)).  Empty means nothing masked.
  std::vector<bool> masked;
  /// If set, exponentiation goes through the hardware e^x LUT of Fig 2(a)
  /// instead of std::exp (non-owning; must outlive the call).
  const ExpLut* exp_lut = nullptr;
};

/// Runs the fused loop for one query row against gathered candidates.
/// `q_row` has length d; `ks` is (|candidates| x d) of gathered key rows.
/// Exponent arguments are clamped to +-80 to keep exp() finite, mirroring
/// the saturating fixed-point exponent LUT of the hardware.
FusedScoreResult FusedScoreKernel(std::span<const float> q_row,
                                  const MatrixF& ks,
                                  const FusedKernelConfig& cfg);

/// Workspace variant: writes the result into `out`, reusing the capacity of
/// `out.exp_scores` instead of allocating.  Bit-identical to the
/// value-returning overload; the batch runtime calls this with a per-worker
/// scratch FusedScoreResult so the hot loop stays allocation-free.
void FusedScoreKernel(std::span<const float> q_row, const MatrixF& ks,
                      const FusedKernelConfig& cfg, FusedScoreResult& out);

/// Stage 2.3: Z_i = (sum_j exp_scores[j] * V_j) / sum (Fig 2(a)).
/// `vs` is (|candidates| x d_v); returns the context row of length d_v.
std::vector<float> WeightedContext(const FusedScoreResult& scores,
                                   const MatrixF& vs);

/// Workspace variant: accumulates the context row into `out`, which must
/// have length vs.cols().  `out` is fully overwritten (zeroed first), so it
/// can be a reused scratch span.  Bit-identical to the value-returning
/// overload.
void WeightedContext(const FusedScoreResult& scores, const MatrixF& vs,
                     std::span<float> out);

}  // namespace latte
