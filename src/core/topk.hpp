#pragma once
// Streaming Top-k selection, modelling the II=1 merge-sort hardware of
// paper reference [29] (Section 4.1: "merge sort hardware for high
// throughput (II=1) scalable Top-k sort").
//
// The hardware consumes one (value, index) pair per clock and maintains the
// k best seen so far in a sorting network.  We model it functionally as an
// insertion structure with deterministic tie-breaking (the earlier index
// wins, matching the stable in-order arrival of a streaming sorter), and
// expose the cycle count the timing model charges for it.

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace latte {

/// One scored candidate.
struct ScoredIndex {
  std::int32_t score = 0;
  std::uint32_t index = 0;
};

/// Streaming Top-k selector over int32 scores.
///
/// Push() one element per "cycle"; Result() returns the Top-k in decreasing
/// score order (ties broken toward the smaller index).  If fewer than k
/// elements were pushed, all of them are returned.
class StreamingTopK {
 public:
  /// Requires k >= 1.
  explicit StreamingTopK(std::size_t k);

  /// Feeds one element.  Returns true if it entered the current Top-k.
  bool Push(std::int32_t score, std::uint32_t index);

  /// Elements pushed so far.
  std::size_t pushed() const { return pushed_; }

  /// Cycles the modeled II=1 sorter spends: one per pushed element.
  std::size_t cycles() const { return pushed_; }

  /// Current Top-k, best first.
  const std::vector<ScoredIndex>& Result() const { return heap_; }

  /// Clears the selector for the next row, keeping k.
  void Reset();

 private:
  std::size_t k_;
  std::size_t pushed_ = 0;
  // Kept sorted: best (highest score, then lowest index) first.
  std::vector<ScoredIndex> heap_;
};

/// Convenience: Top-k indices of one row, decreasing score, ties toward the
/// smaller index.  Returns min(k, row.size()) entries.
std::vector<ScoredIndex> TopK(std::span<const std::int32_t> row,
                              std::size_t k);

/// Row-wise Top-k of a score matrix: result[i] are the selected candidates
/// of row i.  Each row yields min(k, cols) entries.
std::vector<std::vector<ScoredIndex>> RowTopK(const MatrixI32& scores,
                                              std::size_t k);

}  // namespace latte
