#pragma once
// Systolic Top-k sorter: a hardware-accurate model of the II=1 streaming
// merge-sort network of paper reference [29].
//
// The network is a linear array of k compare-exchange cells.  Every clock
// cycle one new (score, index) pair enters cell 0; each cell keeps the
// better of (its resident, the incoming value) and forwards the loser to
// the next cell.  All k cells fire in parallel, so the structure sustains
// one element per cycle (II=1) with a k-cycle drain latency, and after all
// n elements have streamed through, the cells hold the Top-k in sorted
// order.  `StreamingTopK` (topk.hpp) is the behavioural model; tests assert
// the two produce identical results so either can back the At-Sel stage.

#include <cstddef>
#include <vector>

#include "core/topk.hpp"

namespace latte {

/// Cycle-accurate systolic Top-k sorting network.
class SystolicTopKSorter {
 public:
  /// Requires k >= 1.  Builds a k-cell array.
  explicit SystolicTopKSorter(std::size_t k);

  /// One clock: stream an element into the array.
  void Clock(std::int32_t score, std::uint32_t index);

  /// Cell contents, best first; only the first min(k, pushed) entries are
  /// valid Top-k results.
  std::vector<ScoredIndex> Drain() const;

  /// Clock count so far (== elements streamed; II = 1).
  std::size_t cycles() const { return cycles_; }

  /// Comparator firings so far (k per cycle; all cells fire in parallel).
  std::size_t compare_exchanges() const { return compare_exchanges_; }

  /// Pipeline drain latency in cycles (the array depth).
  std::size_t drain_latency() const { return cells_.size(); }

  /// Clears the array for the next query row.
  void Reset();

 private:
  struct Cell {
    ScoredIndex value{};
    bool occupied = false;
  };
  std::vector<Cell> cells_;
  std::size_t cycles_ = 0;
  std::size_t compare_exchanges_ = 0;
};

/// Convenience: Top-k of a row through the systolic network.
std::vector<ScoredIndex> SystolicTopK(std::span<const std::int32_t> row,
                                      std::size_t k);

}  // namespace latte
