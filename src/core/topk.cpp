#include "core/topk.hpp"

#include <algorithm>
#include <stdexcept>

namespace latte {
namespace {

// Ordering of the sorter network: higher score first; on equal scores the
// earlier (smaller) index first, matching stable streaming arrival.
bool Better(const ScoredIndex& a, const ScoredIndex& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

}  // namespace

StreamingTopK::StreamingTopK(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("StreamingTopK: k must be >= 1");
  heap_.reserve(k);
}

bool StreamingTopK::Push(std::int32_t score, std::uint32_t index) {
  ++pushed_;
  const ScoredIndex cand{score, index};
  if (heap_.size() < k_) {
    auto pos = std::upper_bound(heap_.begin(), heap_.end(), cand, Better);
    heap_.insert(pos, cand);
    return true;
  }
  if (!Better(cand, heap_.back())) return false;
  heap_.pop_back();
  auto pos = std::upper_bound(heap_.begin(), heap_.end(), cand, Better);
  heap_.insert(pos, cand);
  return true;
}

void StreamingTopK::Reset() {
  heap_.clear();
  pushed_ = 0;
}

std::vector<ScoredIndex> TopK(std::span<const std::int32_t> row,
                              std::size_t k) {
  StreamingTopK sel(k);
  for (std::size_t j = 0; j < row.size(); ++j) {
    sel.Push(row[j], static_cast<std::uint32_t>(j));
  }
  return sel.Result();
}

std::vector<std::vector<ScoredIndex>> RowTopK(const MatrixI32& scores,
                                              std::size_t k) {
  std::vector<std::vector<ScoredIndex>> out;
  out.reserve(scores.rows());
  for (std::size_t i = 0; i < scores.rows(); ++i) {
    out.push_back(TopK(scores.row(i), k));
  }
  return out;
}

}  // namespace latte
