#pragma once
// The Stage-1 "At-Sel" unit of Fig 2(a), assembled from its hardware
// pieces: the Bits Selector (ultra-low-bit quantizer), the product-LUT
// score datapath, and the streaming systolic Top-k sorter, with cycle
// accounting for the whole unit.
//
// `SelectCandidates` (candidate_selector.hpp) is the behavioural model the
// rest of the library uses; this unit is the structural model.  Tests
// assert the two agree element-for-element, which pins down that the
// behavioural shortcut is faithful to the hardware composition.

#include <algorithm>

#include "core/candidate_selector.hpp"
#include "core/merge_sorter.hpp"

namespace latte {

/// Cycle statistics of one At-Sel pass.
struct AtSelUnitStats {
  std::size_t quantize_cycles = 0;  ///< Bits Selector: one element/cycle
  std::size_t score_cycles = 0;     ///< LUT datapath: one dot per cycle
                                    ///< at `lut_lanes` lanes
  std::size_t sort_cycles = 0;      ///< systolic sorter: II=1 per element
  std::size_t compare_exchanges = 0;

  std::size_t TotalCycles() const {
    // The three units are chained with FIFOs (Fig 2(a)) and stream
    // concurrently; the slowest unit dominates once the pipeline fills.
    return std::max({quantize_cycles, score_cycles, sort_cycles});
  }
};

/// Structural At-Sel unit.
class AtSelUnit {
 public:
  /// `lut_lanes` parallel dot-product lanes in the LUT datapath.
  explicit AtSelUnit(SelectorConfig cfg, std::size_t lut_lanes = 64);

  /// Runs pre-selection for one head; functionally identical to
  /// SelectCandidates(q, k, cfg).
  SelectionResult Run(const MatrixF& q, const MatrixF& k,
                      AtSelUnitStats* stats = nullptr) const;

  const SelectorConfig& config() const { return cfg_; }

 private:
  SelectorConfig cfg_;
  std::size_t lut_lanes_;
};

}  // namespace latte
