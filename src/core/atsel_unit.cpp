#include "core/atsel_unit.hpp"

#include <stdexcept>

#include "tensor/lut_multiply.hpp"

namespace latte {

AtSelUnit::AtSelUnit(SelectorConfig cfg, std::size_t lut_lanes)
    : cfg_(cfg), lut_lanes_(lut_lanes) {
  if (lut_lanes == 0) {
    throw std::invalid_argument("AtSelUnit: lut_lanes must be >= 1");
  }
}

SelectionResult AtSelUnit::Run(const MatrixF& q, const MatrixF& k,
                               AtSelUnitStats* stats) const {
  if (q.cols() != k.cols()) {
    throw std::invalid_argument("AtSelUnit: head dim mismatch");
  }
  // Bits Selector: quantize Q and K streams.
  const QuantizedMatrix qq = Quantize(q, cfg_.bits);
  const QuantizedMatrix qk = Quantize(k, cfg_.bits);

  // LUT datapath: one (row_q, row_k) dot per cycle group across lanes.
  static const LutMultiplier lut;
  const MatrixI32 approx = lut.ScoreMatrix(qq, qk);

  // Systolic sorter per query row.
  SelectionResult res;
  res.lut_multiplies = q.rows() * k.rows() * q.cols();
  res.candidates.reserve(q.rows());
  res.approx_scores.reserve(q.rows());

  AtSelUnitStats local;
  local.quantize_cycles = q.size() + k.size();  // one element per cycle
  // Each dot product needs ceil(d / lanes) cycles; dots stream back to
  // back for all n_q * n_k pairs.
  const std::size_t per_dot = (q.cols() + lut_lanes_ - 1) / lut_lanes_;
  local.score_cycles = per_dot * q.rows() * k.rows();

  SystolicTopKSorter sorter(cfg_.top_k);
  for (std::size_t i = 0; i < approx.rows(); ++i) {
    sorter.Reset();
    auto row = approx.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      sorter.Clock(row[j], static_cast<std::uint32_t>(j));
    }
    local.sort_cycles += sorter.cycles() + sorter.drain_latency();
    local.compare_exchanges += sorter.compare_exchanges();
    res.sorter_cycles += sorter.cycles();

    std::vector<std::uint32_t> idx;
    std::vector<std::int32_t> val;
    for (const auto& si : sorter.Drain()) {
      idx.push_back(si.index);
      val.push_back(si.score);
    }
    res.candidates.push_back(std::move(idx));
    res.approx_scores.push_back(std::move(val));
  }
  if (stats != nullptr) *stats = local;
  return res;
}

}  // namespace latte
