#include "core/fused_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/kernels.hpp"

namespace latte {

FusedScoreResult FusedScoreKernel(std::span<const float> q_row,
                                  const MatrixF& ks,
                                  const FusedKernelConfig& cfg) {
  FusedScoreResult res;
  FusedScoreKernel(q_row, ks, cfg, res);
  return res;
}

void FusedScoreKernel(std::span<const float> q_row, const MatrixF& ks,
                      const FusedKernelConfig& cfg, FusedScoreResult& out) {
  if (ks.rows() > 0 && ks.cols() != q_row.size()) {
    throw std::invalid_argument("FusedScoreKernel: dim mismatch");
  }
  if (!cfg.masked.empty() && cfg.masked.size() != ks.rows()) {
    throw std::invalid_argument("FusedScoreKernel: mask length mismatch");
  }
  if (cfg.unroll == 0) {
    throw std::invalid_argument("FusedScoreKernel: unroll must be >= 1");
  }

  out.exp_scores.resize(ks.rows());
  out.sum = 0.0;
  const std::size_t d = q_row.size();
  if (d == 0) {
    // The fused tail never runs (it fires on the last reduction iteration,
    // and there are none): every candidate gets zero weight, exactly what
    // a freshly value-initialized result holds.  Explicit so a reused
    // scratch `out` cannot leak scores from a previous call.
    std::fill(out.exp_scores.begin(), out.exp_scores.end(), 0.f);
  } else {
    // Fig 4 fuses the reduction with the scale/mask/exp tail in one II=1
    // loop; functionally that is "dot product, then tail, per candidate".
    // The software reduction runs through the kernel library's unrolled
    // partial sums (same trip count as the hardware loop, reordered
    // accumulation -- compare scores with relative tolerance).
    for (std::size_t j = 0; j < ks.rows(); ++j) {
      const float acc = DotProduct(q_row, ks.row(j)) * cfg.scale;
      if (!cfg.masked.empty() && cfg.masked[j]) {
        // Masked candidates contribute exactly zero weight (the hardware
        // gates the exp LUT output rather than feeding it -inf).
        out.exp_scores[j] = 0.f;
      } else {
        // Saturating exponent: the hardware exp LUT clamps its input.
        const float arg = std::clamp(acc, -80.f, 80.f);
        const float e =
            cfg.exp_lut != nullptr ? cfg.exp_lut->Eval(arg) : std::exp(arg);
        out.exp_scores[j] = e;
        out.sum += e;
      }
    }
  }

  // Cycle model: the inner reduction is unrolled by p, II=1, so one
  // candidate costs ceil(d/p) cycles; candidates stream back to back.
  const std::size_t per_cand = (d + cfg.unroll - 1) / cfg.unroll;
  out.cycles = per_cand * ks.rows();
}

std::vector<float> WeightedContext(const FusedScoreResult& scores,
                                   const MatrixF& vs) {
  std::vector<float> z(vs.cols(), 0.f);
  WeightedContext(scores, vs, std::span<float>(z));
  return z;
}

void WeightedContext(const FusedScoreResult& scores, const MatrixF& vs,
                     std::span<float> out) {
  if (scores.exp_scores.size() != vs.rows()) {
    throw std::invalid_argument("WeightedContext: candidate count mismatch");
  }
  if (out.size() != vs.cols()) {
    throw std::invalid_argument("WeightedContext: output length mismatch");
  }
  std::fill(out.begin(), out.end(), 0.f);
  for (std::size_t j = 0; j < vs.rows(); ++j) {
    const float w = scores.exp_scores[j];
    if (w == 0.f) continue;
    auto vj = vs.row(j);
    for (std::size_t c = 0; c < vs.cols(); ++c) out[c] += w * vj[c];
  }
  if (scores.sum > 0.0) {
    const float inv = static_cast<float>(1.0 / scores.sum);
    for (auto& x : out) x *= inv;
  }
}

}  // namespace latte
