#include "core/fused_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace latte {

FusedScoreResult FusedScoreKernel(std::span<const float> q_row,
                                  const MatrixF& ks,
                                  const FusedKernelConfig& cfg) {
  if (ks.rows() > 0 && ks.cols() != q_row.size()) {
    throw std::invalid_argument("FusedScoreKernel: dim mismatch");
  }
  if (!cfg.masked.empty() && cfg.masked.size() != ks.rows()) {
    throw std::invalid_argument("FusedScoreKernel: mask length mismatch");
  }
  if (cfg.unroll == 0) {
    throw std::invalid_argument("FusedScoreKernel: unroll must be >= 1");
  }

  FusedScoreResult res;
  res.exp_scores.resize(ks.rows());
  const std::size_t d = q_row.size();

  // Fig 4 loop nest: outer over reduction dim i, inner over candidates j,
  // II=1 with UNROLL factor p on the inner loop.  The tail (scale, mask,
  // exp) runs when i reaches the last reduction iteration.  Functionally we
  // keep the per-candidate accumulator across the fused iterations.
  for (std::size_t j = 0; j < ks.rows(); ++j) {
    auto kj = ks.row(j);
    float acc = 0.f;
    for (std::size_t i = 0; i < d; ++i) {
      acc += q_row[i] * kj[i];
      if (i + 1 == d) {
        // -- fused tail, same loop iteration --
        acc *= cfg.scale;
        if (!cfg.masked.empty() && cfg.masked[j]) {
          // Masked candidates contribute exactly zero weight (the hardware
          // gates the exp LUT output rather than feeding it -inf).
          res.exp_scores[j] = 0.f;
        } else {
          // Saturating exponent: the hardware exp LUT clamps its input.
          const float arg = std::clamp(acc, -80.f, 80.f);
          const float e =
              cfg.exp_lut != nullptr ? cfg.exp_lut->Eval(arg) : std::exp(arg);
          res.exp_scores[j] = e;
          res.sum += e;
        }
      }
    }
  }

  // Cycle model: the inner reduction is unrolled by p, II=1, so one
  // candidate costs ceil(d/p) cycles; candidates stream back to back.
  const std::size_t per_cand = (d + cfg.unroll - 1) / cfg.unroll;
  res.cycles = per_cand * ks.rows();
  return res;
}

std::vector<float> WeightedContext(const FusedScoreResult& scores,
                                   const MatrixF& vs) {
  if (scores.exp_scores.size() != vs.rows()) {
    throw std::invalid_argument("WeightedContext: candidate count mismatch");
  }
  std::vector<float> z(vs.cols(), 0.f);
  for (std::size_t j = 0; j < vs.rows(); ++j) {
    const float w = scores.exp_scores[j];
    if (w == 0.f) continue;
    auto vj = vs.row(j);
    for (std::size_t c = 0; c < vs.cols(); ++c) z[c] += w * vj[c];
  }
  if (scores.sum > 0.0) {
    const float inv = static_cast<float>(1.0 / scores.sum);
    for (auto& x : z) x *= inv;
  }
  return z;
}

}  // namespace latte
