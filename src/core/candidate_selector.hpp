#pragma once
// Attention candidate pre-selection ("At-Sel", Stage 1 of Fig 2(a)).
//
// Implements steps 2-4 of Fig 3: quantize Q and K to ultra-low precision,
// form the approximate score matrix Q'.K'^T with the 256-entry product LUT,
// and run the streaming Top-k sorter per query row.  Because quantization is
// monotone, the approximate scores preserve the rank of the exact scores
// well enough that the true dominant keys survive selection.

#include <cstdint>

#include "core/topk.hpp"
#include "tensor/lut_multiply.hpp"
#include "tensor/quantize.hpp"

namespace latte {

/// Configuration of the pre-selection path.
struct SelectorConfig {
  std::size_t top_k = 30;  ///< candidates kept per query row
  int bits = 1;            ///< Q/K quantization width: 1 (sign) or 4
  /// Number of valid (non-padding) keys; keys at index >= valid_len are
  /// never selected.  0 means every key is valid.  Used when a padded
  /// block must still compute correctly (Fig 1(b) masking).
  std::size_t valid_len = 0;
};

/// Result of pre-selection for a whole Q block.
struct SelectionResult {
  /// candidates[i] = selected key indices for query row i, sorted by
  /// decreasing approximate score (ties toward the smaller key index).
  std::vector<std::vector<std::uint32_t>> candidates;
  /// Approximate (quantized) scores matching `candidates`, for diagnostics.
  std::vector<std::vector<std::int32_t>> approx_scores;
  /// LUT multiply count consumed (n_q * n_k * d), for the resource model.
  std::size_t lut_multiplies = 0;
  /// Sorter cycles consumed (one per streamed element).
  std::size_t sorter_cycles = 0;
};

/// Runs quantized candidate pre-selection for one head.
/// q and k are full-precision (n_q x d) and (n_k x d).
/// Each row receives min(top_k, n_k) candidates.
SelectionResult SelectCandidates(const MatrixF& q, const MatrixF& k,
                                 const SelectorConfig& cfg);

/// Exact Top-k of the full-precision scores q.k^T (no quantization); the
/// oracle that fidelity metrics compare the quantized selection against.
std::vector<std::vector<std::uint32_t>> ExactTopKCandidates(
    const MatrixF& q, const MatrixF& k, std::size_t top_k);

}  // namespace latte
