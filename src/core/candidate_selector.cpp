#include "core/candidate_selector.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/matmul.hpp"

namespace latte {

SelectionResult SelectCandidates(const MatrixF& q, const MatrixF& k,
                                 const SelectorConfig& cfg) {
  if (q.cols() != k.cols()) {
    throw std::invalid_argument("SelectCandidates: head dim mismatch");
  }
  if (cfg.top_k == 0) {
    throw std::invalid_argument("SelectCandidates: top_k must be >= 1");
  }
  if (cfg.bits != 1 && cfg.bits != 4) {
    throw std::invalid_argument("SelectCandidates: bits must be 1 or 4");
  }

  // Step 2 of Fig 3: ultra-low-bit quantization with per-tensor scaling.
  const QuantizedMatrix qq = Quantize(q, cfg.bits);
  const QuantizedMatrix qk = Quantize(k, cfg.bits);

  // Step 3: approximate scores via LUT multiplication only.
  static const LutMultiplier lut;  // immutable table, shared
  const MatrixI32 approx = lut.ScoreMatrix(qq, qk);

  SelectionResult res;
  res.lut_multiplies = q.rows() * k.rows() * q.cols();
  res.candidates.reserve(q.rows());
  res.approx_scores.reserve(q.rows());

  // Step 4: streaming Top-k per query row.  Padding keys (index >=
  // valid_len) never enter the sorter -- the hardware gates them at the
  // FIFO (Fig 1(b) masking, applied before selection).
  const std::size_t valid =
      cfg.valid_len == 0 ? k.rows()
                         : std::min<std::size_t>(cfg.valid_len, k.rows());
  StreamingTopK sorter(cfg.top_k);
  for (std::size_t i = 0; i < approx.rows(); ++i) {
    sorter.Reset();
    auto row = approx.row(i);
    for (std::size_t j = 0; j < valid; ++j) {
      sorter.Push(row[j], static_cast<std::uint32_t>(j));
    }
    res.sorter_cycles += sorter.cycles();
    std::vector<std::uint32_t> idx;
    std::vector<std::int32_t> val;
    idx.reserve(sorter.Result().size());
    val.reserve(sorter.Result().size());
    for (const auto& si : sorter.Result()) {
      idx.push_back(si.index);
      val.push_back(si.score);
    }
    res.candidates.push_back(std::move(idx));
    res.approx_scores.push_back(std::move(val));
  }
  return res;
}

std::vector<std::vector<std::uint32_t>> ExactTopKCandidates(
    const MatrixF& q, const MatrixF& k, std::size_t top_k) {
  if (q.cols() != k.cols()) {
    throw std::invalid_argument("ExactTopKCandidates: head dim mismatch");
  }
  const MatrixF s = MatMulBT(q, k);
  std::vector<std::vector<std::uint32_t>> out;
  out.reserve(s.rows());
  for (std::size_t i = 0; i < s.rows(); ++i) {
    auto row = s.row(i);
    std::vector<std::uint32_t> order(row.size());
    for (std::size_t j = 0; j < row.size(); ++j) {
      order[j] = static_cast<std::uint32_t>(j);
    }
    const std::size_t kk = std::min<std::size_t>(top_k, row.size());
    std::partial_sort(order.begin(), order.begin() + kk, order.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                        if (row[a] != row[b]) return row[a] > row[b];
                        return a < b;
                      });
    order.resize(kk);
    out.push_back(std::move(order));
  }
  return out;
}

}  // namespace latte
