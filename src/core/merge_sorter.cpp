#include "core/merge_sorter.hpp"

#include <stdexcept>

namespace latte {
namespace {

// Same ordering as the behavioural StreamingTopK: higher score first, ties
// toward the earlier (smaller) index.
bool Better(const ScoredIndex& a, const ScoredIndex& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

}  // namespace

SystolicTopKSorter::SystolicTopKSorter(std::size_t k) : cells_(k) {
  if (k == 0) {
    throw std::invalid_argument("SystolicTopKSorter: k must be >= 1");
  }
}

void SystolicTopKSorter::Clock(std::int32_t score, std::uint32_t index) {
  ++cycles_;
  compare_exchanges_ += cells_.size();  // every cell fires each cycle
  ScoredIndex moving{score, index};
  bool carrying = true;
  for (auto& cell : cells_) {
    if (!carrying) break;  // bubble propagates; remaining cells hold
    if (!cell.occupied) {
      cell.value = moving;
      cell.occupied = true;
      carrying = false;
    } else if (Better(moving, cell.value)) {
      std::swap(moving, cell.value);  // keep the better, forward the loser
    }
  }
}

std::vector<ScoredIndex> SystolicTopKSorter::Drain() const {
  std::vector<ScoredIndex> out;
  out.reserve(cells_.size());
  for (const auto& cell : cells_) {
    if (cell.occupied) out.push_back(cell.value);
  }
  return out;
}

void SystolicTopKSorter::Reset() {
  for (auto& cell : cells_) cell.occupied = false;
  cycles_ = 0;
  compare_exchanges_ = 0;
}

std::vector<ScoredIndex> SystolicTopK(std::span<const std::int32_t> row,
                                      std::size_t k) {
  SystolicTopKSorter sorter(k);
  for (std::size_t j = 0; j < row.size(); ++j) {
    sorter.Clock(row[j], static_cast<std::uint32_t>(j));
  }
  return sorter.Drain();
}

}  // namespace latte
