#include "core/exp_lut.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace latte {

ExpLut::ExpLut(std::size_t entries) {
  if (entries < 2) {
    throw std::invalid_argument("ExpLut: need at least 2 entries");
  }
  table_.resize(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    table_[i] = std::exp2(static_cast<float>(i) /
                          static_cast<float>(entries));
  }
}

float ExpLut::Eval(float x) const {
  constexpr float kLog2E = 1.4426950408889634f;
  const float clamped = std::clamp(x, -87.f, 87.f);
  const float y = clamped * kLog2E;
  const float fi = std::floor(y);
  const float f = y - fi;  // in [0, 1)
  const auto n = static_cast<float>(table_.size());
  const float pos = f * n;
  const auto idx = static_cast<std::size_t>(pos);
  const float frac = pos - static_cast<float>(idx);
  // Linear interpolation between adjacent table entries; the upper
  // neighbour of the last slot is 2^1 = 2.
  const float lo = table_[idx];
  const float hi = idx + 1 < table_.size() ? table_[idx + 1] : 2.f;
  const float pow2f = lo + (hi - lo) * frac;
  return std::ldexp(pow2f, static_cast<int>(fi));
}

double ExpLut::MaxRelativeError() const {
  double worst = 0.0;
  for (double x = -20.0; x <= 20.0; x += 1e-3) {
    const double ref = std::exp(x);
    const double got = Eval(static_cast<float>(x));
    worst = std::max(worst, std::fabs(got - ref) / ref);
  }
  return worst;
}

}  // namespace latte
