#pragma once
// Hardware exponent unit: piecewise-linear e^x lookup table.
//
// Fig 2(a) places an "e^x LUT" inside Stage 2.2's fused datapath: the
// exponent of the fused score kernel is evaluated from an on-chip table
// instead of a floating-point core.  We model the standard decomposition
//
//   e^x = 2^(x * log2(e)) = 2^i * 2^f,   i = floor(y), f = y - i,
//
// where 2^f over f in [0, 1) comes from a table with linear interpolation
// and 2^i is an exponent add.  Inputs are saturated to [-87, 87] like the
// hardware (and like the clamp in the fused kernel).

#include <cstddef>
#include <vector>

namespace latte {

/// Piecewise-linear exp approximation backed by a 2^f table.
class ExpLut {
 public:
  /// `entries` is the table resolution for f in [0, 1); 64 entries give
  /// ~1e-4 relative error, plenty below the 8-bit datapath noise.
  explicit ExpLut(std::size_t entries = 64);

  /// Approximate e^x with saturation to [-87, 87].
  float Eval(float x) const;

  /// Largest relative error against std::exp over [-20, 20], measured on a
  /// dense grid -- used by tests and for documentation.
  double MaxRelativeError() const;

  std::size_t entries() const { return table_.size(); }

  /// BRAM bytes this table occupies (4 bytes per entry, double-pumped).
  double BramBytes() const { return 2.0 * 4.0 * static_cast<double>(table_.size()); }

 private:
  std::vector<float> table_;  // 2^f at f = i / entries
};

}  // namespace latte
