#pragma once
// Fidelity metrics of sparse attention against the dense reference.
//
// These are the mechanism behind Fig 6: how much of the true softmax mass
// the quantized Top-k selection retains, how often it recovers the exact
// Top-k keys, and how close the sparse attention output is to dense.

#include "core/sparse_attention.hpp"
#include "workload/synthetic.hpp"

namespace latte {

/// Aggregated fidelity of one attention problem instance.
struct FidelityReport {
  /// |selected ∩ exact-Top-k| / k, averaged over query rows.
  double topk_recall = 0;
  /// Mean over rows of the exact softmax probability mass covered by the
  /// selected candidates (1.0 = sparse softmax sees everything that
  /// matters).
  double retained_mass = 0;
  /// Mean row-wise cosine similarity between sparse and dense outputs.
  double output_cosine = 0;
  /// Relative Frobenius error ||sparse - dense|| / ||dense||.
  double output_rel_error = 0;
  std::size_t n = 0;
  std::size_t k_used = 0;
};

/// Runs sparse attention on the problem and scores it against the dense
/// reference.
FidelityReport EvaluateFidelity(const AttentionProblem& problem,
                                const SparseAttentionConfig& cfg);

/// Retained softmax mass of an arbitrary candidate assignment (used to
/// score oracle selections and ablations).
double RetainedSoftmaxMass(
    const MatrixF& q, const MatrixF& k,
    const std::vector<std::vector<std::uint32_t>>& candidates);

/// top_k -> expected accuracy lookup table, sampled from the fidelity
/// model.  This is what grounds the adaptive serving layer's per-tier
/// accuracy numbers (adapt/controller.hpp) in the paper's Fig 6 mechanism
/// instead of hand-waved constants.
struct TierAccuracyTable {
  std::vector<std::size_t> top_ks;   ///< strictly increasing
  std::vector<double> accuracies;    ///< mean output cosine per top_k
};

/// Sampling knobs for BuildTopKAccuracyTable.
struct TierAccuracyTableConfig {
  AttentionWorkloadConfig workload;  ///< concentration (WorkloadForDataset)
  /// Sequence lengths sampled per top_k (the serving regime's range).
  std::vector<std::size_t> lengths = {224, 288, 352, 384};
  std::size_t samples_per_length = 3;
  std::uint64_t seed = 42;  ///< problem generation; deterministic table
};

/// Builds the lookup table: for each top_k, the mean output cosine of
/// sparse vs dense attention over the sampled problems.  `top_ks` may be
/// in any order; the table is returned sorted ascending.  Deterministic in
/// the config seed.
TierAccuracyTable BuildTopKAccuracyTable(const TierAccuracyTableConfig& cfg,
                                         std::vector<std::size_t> top_ks);

/// Expected accuracy at `top_k`: exact when tabulated, linearly
/// interpolated between neighbors, clamped at the ends.  Throws
/// std::invalid_argument on an empty table.
double AccuracyForTopK(const TierAccuracyTable& table, std::size_t top_k);

}  // namespace latte
