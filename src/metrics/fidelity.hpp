#pragma once
// Fidelity metrics of sparse attention against the dense reference.
//
// These are the mechanism behind Fig 6: how much of the true softmax mass
// the quantized Top-k selection retains, how often it recovers the exact
// Top-k keys, and how close the sparse attention output is to dense.

#include "core/sparse_attention.hpp"
#include "workload/synthetic.hpp"

namespace latte {

/// Aggregated fidelity of one attention problem instance.
struct FidelityReport {
  /// |selected ∩ exact-Top-k| / k, averaged over query rows.
  double topk_recall = 0;
  /// Mean over rows of the exact softmax probability mass covered by the
  /// selected candidates (1.0 = sparse softmax sees everything that
  /// matters).
  double retained_mass = 0;
  /// Mean row-wise cosine similarity between sparse and dense outputs.
  double output_cosine = 0;
  /// Relative Frobenius error ||sparse - dense|| / ||dense||.
  double output_rel_error = 0;
  std::size_t n = 0;
  std::size_t k_used = 0;
};

/// Runs sparse attention on the problem and scores it against the dense
/// reference.
FidelityReport EvaluateFidelity(const AttentionProblem& problem,
                                const SparseAttentionConfig& cfg);

/// Retained softmax mass of an arbitrary candidate assignment (used to
/// score oracle selections and ablations).
double RetainedSoftmaxMass(
    const MatrixF& q, const MatrixF& k,
    const std::vector<std::vector<std::uint32_t>>& candidates);

}  // namespace latte
