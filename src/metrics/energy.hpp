#pragma once
// Energy / efficiency accounting for Table 2.

#include <string>
#include <vector>

#include "fpga/resources.hpp"

namespace latte {

/// One row of Table 2.
struct EnergyRow {
  std::string work;
  double gops = 0;       ///< throughput (GOP/s)
  double gop_per_j = 0;  ///< energy efficiency (GOP/J); <= 0 means N/A
  double accuracy_drop_pct = 0;
  bool cited = false;    ///< literature constant, not measured here
};

/// FPGA board power model: static power plus dynamic power scaling with DSP
/// utilization.  With full SLR0 utilization this lands around the ~35 W the
/// paper's 3600 GOPS / 102 GOP/J implies.
double FpgaPowerWatts(const FpgaSpec& spec, double dsp_utilization);

/// GOP/J from throughput and power.
double EnergyEfficiency(double gops, double watts);

/// Literature rows of Table 2 (cited, not simulated):
/// GPU V100 E.T. [18], FPGA design [37], ASIC A3 [12], ASIC SpAtten [13].
std::vector<EnergyRow> CitedTable2Rows();

/// Geometric mean of a list of positive ratios.
double GeoMean(const std::vector<double>& xs);

/// Per-operation dynamic energy constants (picojoules) of the 8-bit FPGA
/// datapath classes, dominated by the published per-op energies of 45 nm
/// scaled arithmetic plus SRAM/HBM access costs.
struct EnergyPerOp {
  double dsp_mac_pj = 3.0;      ///< 8-bit MAC in a DSP slice
  double lut_op_pj = 0.2;       ///< 1-bit XNOR-popcount lane op
  double bram_byte_pj = 1.0;    ///< on-chip buffer access per byte
  double hbm_byte_pj = 30.0;    ///< off-chip HBM access per byte
};

/// Itemized dynamic energy of one accelerator batch.
struct EnergyBreakdown {
  double compute_j = 0;  ///< DSP MACs
  double select_j = 0;   ///< At-Sel LUT work
  double onchip_j = 0;   ///< buffer traffic
  double offchip_j = 0;  ///< HBM traffic
  double static_j = 0;   ///< leakage + shell over the batch latency

  double TotalJoules() const {
    return compute_j + select_j + onchip_j + offchip_j + static_j;
  }
};

/// Energy of one batch given its executed work and latency.
/// `dsp_macs` is executed MAC count, `lut_ops` the At-Sel lane ops,
/// `onchip_bytes`/`offchip_bytes` the buffer/HBM traffic.
EnergyBreakdown EstimateBatchEnergy(double dsp_macs, double lut_ops,
                                    double onchip_bytes,
                                    double offchip_bytes, double latency_s,
                                    const EnergyPerOp& constants = {});

}  // namespace latte
