#include "metrics/report.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace latte {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable::AddRow: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Fmt(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string FmtX(double value, int digits) {
  return Fmt(value, digits) + "x";
}

}  // namespace latte
