#include "metrics/design_explorer.hpp"

#include <algorithm>
#include <stdexcept>

#include "metrics/accuracy.hpp"
#include "metrics/fidelity.hpp"
#include "workload/synthetic.hpp"

namespace latte {

std::vector<DesignPoint> ExplorationResult::ParetoFront() const {
  std::vector<DesignPoint> front;
  for (const auto& p : points) {
    if (!p.feasible) continue;
    bool dominated = false;
    for (const auto& q : points) {
      if (!q.feasible) continue;
      const bool better_or_equal =
          q.sequences_per_s >= p.sequences_per_s &&
          q.predicted_drop_pct <= p.predicted_drop_pct;
      const bool strictly_better =
          q.sequences_per_s > p.sequences_per_s ||
          q.predicted_drop_pct < p.predicted_drop_pct;
      if (better_or_equal && strictly_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(p);
  }
  std::sort(front.begin(), front.end(),
            [](const DesignPoint& a, const DesignPoint& b) {
              return a.sequences_per_s > b.sequences_per_s;
            });
  return front;
}

ExplorationResult ExploreDesign(const ModelConfig& model,
                                const DatasetSpec& dataset,
                                const ExplorerConfig& cfg) {
  if (cfg.k_candidates.empty() || cfg.bit_candidates.empty()) {
    throw std::invalid_argument("ExploreDesign: empty candidate sets");
  }
  // One reference batch shared by every point: the comparison is apples to
  // apples.
  Rng rng(cfg.seed);
  LengthSampler sampler(dataset);
  const auto lens = sampler.SampleMany(rng, cfg.batch);
  const auto wl = WorkloadForDataset(dataset, model.encoder.head_dim());

  ExplorationResult res;
  double best_rate = -1;
  for (std::size_t k : cfg.k_candidates) {
    for (int bits : cfg.bit_candidates) {
      DesignPoint pt;
      pt.top_k = k;
      pt.bits = bits;

      // Performance from the accelerator model.
      AcceleratorConfig acc = cfg.accel;
      acc.top_k = k;
      const auto rep = RunAccelerator(model, lens, acc);
      pt.latency_s = rep.latency_s;
      pt.sequences_per_s = rep.SequencesPerSecond();

      // Fidelity -> calibrated accuracy drop.
      Rng frng(cfg.seed + k * 131 + static_cast<std::uint64_t>(bits));
      double mass = 0;
      for (std::size_t r = 0; r < cfg.fidelity_reps; ++r) {
        const auto p =
            GenerateAttentionProblem(frng, sampler.Sample(frng), wl);
        SparseAttentionConfig sa;
        sa.top_k = k;
        sa.bits = bits;
        mass += EvaluateFidelity(p, sa).retained_mass;
      }
      pt.retained_mass = mass / static_cast<double>(cfg.fidelity_reps);
      pt.predicted_drop_pct = PredictedDrop(dataset, pt.retained_mass);
      pt.feasible = pt.predicted_drop_pct <= cfg.max_drop_pct;

      if (pt.feasible && pt.sequences_per_s > best_rate) {
        best_rate = pt.sequences_per_s;
        res.best_index = res.points.size();
        res.found_feasible = true;
      }
      res.points.push_back(pt);
    }
  }
  return res;
}

}  // namespace latte
