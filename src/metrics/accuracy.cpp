#include "metrics/accuracy.hpp"

#include <algorithm>
#include <cmath>

namespace latte {

AccuracySensitivity SensitivityForDataset(const DatasetSpec& spec) {
  AccuracySensitivity s;
  if (spec.name == "RTE") {
    s.scale = 95.0;  // entailment collapses fastest in Fig 6
    s.gamma = 1.3;
  } else if (spec.name.rfind("SQuAD", 0) == 0) {
    s.scale = 110.0;  // span extraction needs the answer tokens attended
    s.gamma = 1.45;
  } else {  // MRPC
    s.scale = 90.0;
    s.gamma = 1.5;
  }
  return s;
}

double PredictedDrop(const DatasetSpec& spec, double retained_mass) {
  const double lost = std::clamp(1.0 - retained_mass, 0.0, 1.0);
  const AccuracySensitivity s = SensitivityForDataset(spec);
  return s.scale * std::pow(lost, s.gamma);
}

double PredictedScore(const DatasetSpec& spec, double retained_mass) {
  return std::max(0.0, spec.baseline_score -
                           PredictedDrop(spec, retained_mass));
}

}  // namespace latte
