#pragma once
// Automated design-space exploration (Section 4.2: "...enumerate pipeline
// replication factor R(G_k, s_i) to obtain the optimal setting with the
// help of analytical performance and resource models").
//
// Explores the co-design knobs -- Top-k, pre-selection bit width, and
// per-stage replication -- under a resource and accuracy constraint, and
// returns the throughput-optimal point plus the accuracy/throughput Pareto
// front that Figs 6 and 7 jointly trace.

#include <vector>

#include "fpga/accelerator.hpp"
#include "workload/dataset.hpp"

namespace latte {

/// One evaluated design point.
struct DesignPoint {
  std::size_t top_k = 30;
  int bits = 1;
  double latency_s = 0;            ///< batch latency on the reference batch
  double sequences_per_s = 0;
  double predicted_drop_pct = 0;   ///< calibrated accuracy drop
  double retained_mass = 0;        ///< measured selection fidelity
  bool feasible = true;            ///< resource + accuracy constraints hold
};

/// Exploration constraints.
struct ExplorerConfig {
  std::vector<std::size_t> k_candidates = {10, 20, 30, 40, 50, 64};
  std::vector<int> bit_candidates = {1, 4};
  double max_drop_pct = 2.0;   ///< accuracy budget (paper: < 2%)
  std::size_t batch = 16;
  std::uint64_t seed = 42;
  std::size_t fidelity_reps = 4;  ///< problems per fidelity estimate
  AcceleratorConfig accel;        ///< chip + mode (top_k/bits overridden)
};

/// Result: every evaluated point plus the chosen optimum.
struct ExplorationResult {
  std::vector<DesignPoint> points;  ///< all points, evaluation order
  std::size_t best_index = 0;       ///< fastest feasible point
  bool found_feasible = false;

  const DesignPoint& best() const { return points.at(best_index); }

  /// Pareto-optimal subset (maximize throughput, minimize drop).
  std::vector<DesignPoint> ParetoFront() const;
};

/// Runs the exploration for one model/dataset pair.
ExplorationResult ExploreDesign(const ModelConfig& model,
                                const DatasetSpec& dataset,
                                const ExplorerConfig& cfg = {});

}  // namespace latte
