#include "metrics/fidelity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "nn/attention.hpp"
#include "nn/ops.hpp"
#include "tensor/matmul.hpp"

namespace latte {

double RetainedSoftmaxMass(
    const MatrixF& q, const MatrixF& k,
    const std::vector<std::vector<std::uint32_t>>& candidates) {
  if (q.rows() == 0) return 1.0;
  MatrixF s = MatMulBT(q, k);
  ScaleInPlace(s, 1.f / std::sqrt(static_cast<float>(q.cols())));
  SoftmaxRowsInPlace(s);
  double total = 0.0;
  for (std::size_t i = 0; i < s.rows(); ++i) {
    double mass = 0.0;
    for (std::uint32_t j : candidates[i]) mass += s(i, j);
    total += mass;
  }
  return total / static_cast<double>(s.rows());
}

FidelityReport EvaluateFidelity(const AttentionProblem& problem,
                                const SparseAttentionConfig& cfg) {
  FidelityReport rep;
  rep.n = problem.q.rows();
  rep.k_used = std::min<std::size_t>(cfg.top_k, problem.k.rows());

  SparseAttentionStats stats;
  const MatrixF sparse =
      SparseAttention(problem.q, problem.k, problem.v, cfg, &stats);
  const MatrixF dense = DenseAttention(problem.q, problem.k, problem.v);

  // Recall against the exact Top-k oracle.
  const auto exact =
      ExactTopKCandidates(problem.q, problem.k, cfg.top_k);
  double recall = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    std::unordered_set<std::uint32_t> sel(stats.candidates[i].begin(),
                                          stats.candidates[i].end());
    std::size_t hit = 0;
    for (std::uint32_t j : exact[i]) hit += sel.count(j);
    recall += exact[i].empty()
                  ? 1.0
                  : static_cast<double>(hit) /
                        static_cast<double>(exact[i].size());
  }
  rep.topk_recall =
      exact.empty() ? 1.0 : recall / static_cast<double>(exact.size());

  rep.retained_mass =
      RetainedSoftmaxMass(problem.q, problem.k, stats.candidates);
  rep.output_cosine = MeanRowCosine(sparse, dense);

  const double dense_norm = FrobeniusDistance(dense, MatrixF(dense.rows(),
                                                             dense.cols()));
  const double err = FrobeniusDistance(sparse, dense);
  rep.output_rel_error = dense_norm > 0 ? err / dense_norm : 0.0;
  return rep;
}

TierAccuracyTable BuildTopKAccuracyTable(const TierAccuracyTableConfig& cfg,
                                         std::vector<std::size_t> top_ks) {
  std::sort(top_ks.begin(), top_ks.end());
  top_ks.erase(std::unique(top_ks.begin(), top_ks.end()), top_ks.end());
  TierAccuracyTable table;
  table.top_ks = std::move(top_ks);
  table.accuracies.reserve(table.top_ks.size());
  for (const std::size_t k : table.top_ks) {
    // One Rng per top_k, reseeded identically: every row of the table
    // scores the same problem population, so accuracies are monotone in
    // top_k up to fidelity-model noise.
    Rng rng(cfg.seed);
    double sum = 0;
    std::size_t count = 0;
    for (const std::size_t n : cfg.lengths) {
      for (std::size_t s = 0; s < cfg.samples_per_length; ++s) {
        const AttentionProblem problem =
            GenerateAttentionProblem(rng, n, cfg.workload);
        SparseAttentionConfig sparse;
        sparse.top_k = k;
        sum += EvaluateFidelity(problem, sparse).output_cosine;
        ++count;
      }
    }
    table.accuracies.push_back(count > 0 ? sum / static_cast<double>(count)
                                         : 1.0);
  }
  return table;
}

double AccuracyForTopK(const TierAccuracyTable& table, std::size_t top_k) {
  if (table.top_ks.empty() ||
      table.top_ks.size() != table.accuracies.size()) {
    throw std::invalid_argument(
        "AccuracyForTopK: table must be non-empty with matching top_ks and "
        "accuracies");
  }
  const auto it =
      std::lower_bound(table.top_ks.begin(), table.top_ks.end(), top_k);
  if (it == table.top_ks.begin()) return table.accuracies.front();
  if (it == table.top_ks.end()) return table.accuracies.back();
  const std::size_t hi = static_cast<std::size_t>(it - table.top_ks.begin());
  if (table.top_ks[hi] == top_k) return table.accuracies[hi];
  const std::size_t lo = hi - 1;
  const double t = static_cast<double>(top_k - table.top_ks[lo]) /
                   static_cast<double>(table.top_ks[hi] - table.top_ks[lo]);
  return table.accuracies[lo] +
         t * (table.accuracies[hi] - table.accuracies[lo]);
}

}  // namespace latte
