#include "metrics/fidelity.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "nn/attention.hpp"
#include "nn/ops.hpp"
#include "tensor/matmul.hpp"

namespace latte {

double RetainedSoftmaxMass(
    const MatrixF& q, const MatrixF& k,
    const std::vector<std::vector<std::uint32_t>>& candidates) {
  if (q.rows() == 0) return 1.0;
  MatrixF s = MatMulBT(q, k);
  ScaleInPlace(s, 1.f / std::sqrt(static_cast<float>(q.cols())));
  SoftmaxRowsInPlace(s);
  double total = 0.0;
  for (std::size_t i = 0; i < s.rows(); ++i) {
    double mass = 0.0;
    for (std::uint32_t j : candidates[i]) mass += s(i, j);
    total += mass;
  }
  return total / static_cast<double>(s.rows());
}

FidelityReport EvaluateFidelity(const AttentionProblem& problem,
                                const SparseAttentionConfig& cfg) {
  FidelityReport rep;
  rep.n = problem.q.rows();
  rep.k_used = std::min<std::size_t>(cfg.top_k, problem.k.rows());

  SparseAttentionStats stats;
  const MatrixF sparse =
      SparseAttention(problem.q, problem.k, problem.v, cfg, &stats);
  const MatrixF dense = DenseAttention(problem.q, problem.k, problem.v);

  // Recall against the exact Top-k oracle.
  const auto exact =
      ExactTopKCandidates(problem.q, problem.k, cfg.top_k);
  double recall = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    std::unordered_set<std::uint32_t> sel(stats.candidates[i].begin(),
                                          stats.candidates[i].end());
    std::size_t hit = 0;
    for (std::uint32_t j : exact[i]) hit += sel.count(j);
    recall += exact[i].empty()
                  ? 1.0
                  : static_cast<double>(hit) /
                        static_cast<double>(exact[i].size());
  }
  rep.topk_recall =
      exact.empty() ? 1.0 : recall / static_cast<double>(exact.size());

  rep.retained_mass =
      RetainedSoftmaxMass(problem.q, problem.k, stats.candidates);
  rep.output_cosine = MeanRowCosine(sparse, dense);

  const double dense_norm = FrobeniusDistance(dense, MatrixF(dense.rows(),
                                                             dense.cols()));
  const double err = FrobeniusDistance(sparse, dense);
  rep.output_rel_error = dense_norm > 0 ? err / dense_norm : 0.0;
  return rep;
}

}  // namespace latte
