#pragma once
// Plain-text table rendering shared by the bench binaries.

#include <iosfwd>
#include <string>
#include <vector>

namespace latte {

/// A fixed-width text table: set headers, add rows, print.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders with column widths fit to content.
  std::string Render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places.
std::string Fmt(double value, int digits = 2);

/// Formats a ratio as "12.3x".
std::string FmtX(double value, int digits = 1);

}  // namespace latte
