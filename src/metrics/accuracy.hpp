#pragma once
// Calibrated accuracy model: maps attention fidelity to task score.
//
// We cannot run the real GLUE/SQuAD evaluations offline (DESIGN.md
// section 2), so Fig 6 is reproduced in two layers:
//   1. the *measured* quantity -- retained softmax mass of the quantized
//     Top-k selection -- comes from the actual sparse-attention
//     implementation on synthetic workloads, and
//   2. a calibrated, monotone map converts missing mass into a task-score
//     drop, anchored so the dense baseline reproduces the published scores
//     and the qualitative Fig 6 shape holds (Top-30: < 2% drop; Top-10:
//     clearly visible degradation).
//
// The raw fidelity metrics are always reported next to the mapped score so
// nothing hides behind the calibration.

#include "workload/dataset.hpp"

namespace latte {

/// Per-task sensitivity of score to lost attention mass.
struct AccuracySensitivity {
  /// Score drop (percentage points) per unit of lost-mass^gamma.
  double scale = 45.0;
  /// Convexity: small losses are almost free, large losses collapse.
  double gamma = 1.6;
};

/// Sensitivity used for a dataset.  Entailment (RTE) is the most brittle
/// task in the paper's Fig 6; paraphrase (MRPC) the most robust.
AccuracySensitivity SensitivityForDataset(const DatasetSpec& spec);

/// Predicted score drop (percentage points) for a retained softmax mass in
/// [0, 1].
double PredictedDrop(const DatasetSpec& spec, double retained_mass);

/// Predicted absolute task score: baseline - drop, floored at 0.
double PredictedScore(const DatasetSpec& spec, double retained_mass);

}  // namespace latte
