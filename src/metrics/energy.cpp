#include "metrics/energy.hpp"

#include <cmath>
#include <stdexcept>

namespace latte {

double FpgaPowerWatts(const FpgaSpec& spec, double dsp_utilization) {
  if (dsp_utilization < 0 || dsp_utilization > 1.0) {
    throw std::invalid_argument("FpgaPowerWatts: utilization outside [0,1]");
  }
  // Static (HBM + shell + clocking) ~ 12 W, dynamic up to ~23 W for a fully
  // busy SLR0 datapath at 200 MHz.
  const double kStatic = 12.0;
  const double kDynamicFull = 23.0;
  (void)spec;
  return kStatic + kDynamicFull * dsp_utilization;
}

double EnergyEfficiency(double gops, double watts) {
  if (watts <= 0) throw std::invalid_argument("EnergyEfficiency: watts <= 0");
  return gops / watts;
}

std::vector<EnergyRow> CitedTable2Rows() {
  return {
      {"GPU V100: E.T. [18]", 7550, 25, 2.1, true},
      {"FPGA design [37]", 76, -1, 3.8, true},
      {"ASIC: A3 [12]", 221, 269, 1.6, true},
      {"ASIC: SpAtten [13]", 360, 382, 1.1, true},
  };
}

EnergyBreakdown EstimateBatchEnergy(double dsp_macs, double lut_ops,
                                    double onchip_bytes,
                                    double offchip_bytes, double latency_s,
                                    const EnergyPerOp& constants) {
  if (dsp_macs < 0 || lut_ops < 0 || onchip_bytes < 0 ||
      offchip_bytes < 0 || latency_s < 0) {
    throw std::invalid_argument("EstimateBatchEnergy: negative input");
  }
  EnergyBreakdown e;
  e.compute_j = dsp_macs * constants.dsp_mac_pj * 1e-12;
  e.select_j = lut_ops * constants.lut_op_pj * 1e-12;
  e.onchip_j = onchip_bytes * constants.bram_byte_pj * 1e-12;
  e.offchip_j = offchip_bytes * constants.hbm_byte_pj * 1e-12;
  e.static_j = 12.0 * latency_s;  // the 12 W static floor of FpgaPowerWatts
  return e;
}

double GeoMean(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("GeoMean: empty input");
  double acc = 0.0;
  for (double x : xs) {
    if (x <= 0) throw std::invalid_argument("GeoMean: non-positive value");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace latte
