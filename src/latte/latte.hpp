#pragma once
// LATTE -- Length-Adaptive Transformer Engine.
//
// Umbrella header exposing the full public API: the sparse attention
// operator (core), the transformer reference implementation (nn), the
// scheduling algorithms (sched), the FPGA simulator (fpga), the baseline
// platform models (platform), the batched execution runtime (runtime),
// the streaming serving engine (serve), the request-result cache with
// in-flight coalescing (cache), the multi-replica serving cluster
// (cluster), the tensor-parallel shard planner and interconnect model
// (sched, serve), the simulated-annealing design-space search over the
// unified DesignPoint serving-config API (search), the SLO-driven
// admission and accuracy-degradation controller (adapt), the workload
// generators (workload), the evaluation metrics (metrics) and the
// observability layer -- request-lifecycle tracing, the unified metrics
// registry, the Chrome-trace / manifest exporters, and the latency
// attribution / flame / critical-path analysis over recorded traces
// (obs), plus versioned .lattetrace capture/replay (workload).
//
// See README.md for a quickstart and DESIGN.md for the architecture.

#include "adapt/controller.hpp"
#include "adapt/escalate.hpp"
#include "cache/coalesce.hpp"
#include "cache/eviction.hpp"
#include "cache/key.hpp"
#include "cache/stats.hpp"
#include "cache/store.hpp"
#include "cluster/accounting.hpp"
#include "cluster/cluster.hpp"
#include "cluster/policy.hpp"
#include "cluster/replica.hpp"
#include "core/atsel_unit.hpp"
#include "core/candidate_selector.hpp"
#include "core/exp_lut.hpp"
#include "core/fused_kernel.hpp"
#include "core/merge_sorter.hpp"
#include "core/sparse_attention.hpp"
#include "core/topk.hpp"
#include "fpga/accelerator.hpp"
#include "fpga/design_usage.hpp"
#include "fpga/hbm.hpp"
#include "fpga/pipeline_sim.hpp"
#include "fpga/resources.hpp"
#include "fpga/serving.hpp"
#include "fpga/state_machine.hpp"
#include "fpga/trace.hpp"
#include "fpga/timing.hpp"
#include "metrics/accuracy.hpp"
#include "metrics/design_explorer.hpp"
#include "metrics/energy.hpp"
#include "metrics/fidelity.hpp"
#include "metrics/report.hpp"
#include "model/config.hpp"
#include "model/inference.hpp"
#include "nn/attention.hpp"
#include "nn/encoder.hpp"
#include "nn/linear.hpp"
#include "nn/op_cost.hpp"
#include "nn/ops.hpp"
#include "nn/qlinear.hpp"
#include "nn/sharded_encoder.hpp"
#include "obs/analyze.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/export.hpp"
#include "obs/json_writer.hpp"
#include "obs/manifest.hpp"
#include "obs/percentiles.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "platform/platform.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/shard_exec.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/workspace.hpp"
#include "sched/interconnect.hpp"
#include "search/anneal.hpp"
#include "search/design_point.hpp"
#include "search/design_space.hpp"
#include "search/evaluator.hpp"
#include "search/json_io.hpp"
#include "sched/op_graph.hpp"
#include "sched/resource_plan.hpp"
#include "sched/shard_plan.hpp"
#include "sched/stage_allocation.hpp"
#include "serve/batch_former.hpp"
#include "serve/dispatch.hpp"
#include "serve/engine.hpp"
#include "serve/report.hpp"
#include "serve/service_model.hpp"
#include "serve/shard_service.hpp"
#include "tensor/fixed_point.hpp"
#include "tensor/kernels.hpp"
#include "tensor/lut_multiply.hpp"
#include "tensor/matmul.hpp"
#include "tensor/matrix.hpp"
#include "tensor/quantize.hpp"
#include "tensor/rng.hpp"
#include "workload/arrivals.hpp"
#include "workload/batch.hpp"
#include "workload/dataset.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace_io.hpp"
