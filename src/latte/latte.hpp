#pragma once
// LATTE -- Length-Adaptive Transformer Engine.
//
// Umbrella header exposing the full public API: the sparse attention
// operator (core), the transformer reference implementation (nn), the
// scheduling algorithms (sched), the FPGA simulator (fpga), the baseline
// platform models (platform), the batched execution runtime (runtime),
// the streaming serving engine (serve), the request-result cache with
// in-flight coalescing (cache), the multi-replica serving cluster
// (cluster), the workload generators (workload) and the evaluation
// metrics (metrics).
//
// See README.md for a quickstart and DESIGN.md for the architecture.

#include "cache/coalesce.hpp"
#include "cache/eviction.hpp"
#include "cache/key.hpp"
#include "cache/stats.hpp"
#include "cache/store.hpp"
#include "cluster/accounting.hpp"
#include "cluster/cluster.hpp"
#include "cluster/policy.hpp"
#include "cluster/replica.hpp"
#include "core/atsel_unit.hpp"
#include "core/candidate_selector.hpp"
#include "core/exp_lut.hpp"
#include "core/fused_kernel.hpp"
#include "core/merge_sorter.hpp"
#include "core/sparse_attention.hpp"
#include "core/topk.hpp"
#include "fpga/accelerator.hpp"
#include "fpga/design_usage.hpp"
#include "fpga/hbm.hpp"
#include "fpga/pipeline_sim.hpp"
#include "fpga/resources.hpp"
#include "fpga/serving.hpp"
#include "fpga/state_machine.hpp"
#include "fpga/trace.hpp"
#include "fpga/timing.hpp"
#include "metrics/accuracy.hpp"
#include "metrics/design_explorer.hpp"
#include "metrics/energy.hpp"
#include "metrics/fidelity.hpp"
#include "metrics/report.hpp"
#include "model/config.hpp"
#include "model/inference.hpp"
#include "nn/attention.hpp"
#include "nn/encoder.hpp"
#include "nn/linear.hpp"
#include "nn/op_cost.hpp"
#include "nn/ops.hpp"
#include "nn/qlinear.hpp"
#include "platform/platform.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/workspace.hpp"
#include "sched/op_graph.hpp"
#include "sched/resource_plan.hpp"
#include "sched/stage_allocation.hpp"
#include "serve/batch_former.hpp"
#include "serve/dispatch.hpp"
#include "serve/engine.hpp"
#include "serve/report.hpp"
#include "tensor/fixed_point.hpp"
#include "tensor/kernels.hpp"
#include "tensor/lut_multiply.hpp"
#include "tensor/matmul.hpp"
#include "tensor/matrix.hpp"
#include "tensor/quantize.hpp"
#include "tensor/rng.hpp"
#include "workload/arrivals.hpp"
#include "workload/batch.hpp"
#include "workload/dataset.hpp"
#include "workload/synthetic.hpp"
