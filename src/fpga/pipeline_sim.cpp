#include "fpga/pipeline_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace latte {

std::vector<double> ScheduleResult::StageUtilization() const {
  if (stage_busy.empty()) return {};
  std::vector<double> first(stage_busy.size(),
                            std::numeric_limits<double>::infinity());
  std::vector<double> last(stage_busy.size(), 0.0);
  std::vector<std::size_t> instances(stage_busy.size(), 1);
  for (const auto& j : jobs) {
    first[j.stage] = std::min(first[j.stage], j.start);
    last[j.stage] = std::max(last[j.stage], j.end);
    instances[j.stage] = std::max(instances[j.stage], j.instance + 1);
  }
  std::vector<double> util(stage_busy.size(), 0.0);
  for (std::size_t s = 0; s < stage_busy.size(); ++s) {
    const double window =
        (last[s] - first[s]) * static_cast<double>(instances[s]);
    util[s] = window > 0 ? stage_busy[s] / window : 1.0;
  }
  return util;
}

double ScheduleResult::SerialTime() const {
  double acc = 0.0;
  for (const auto& j : jobs) acc += j.end - j.start;
  return acc;
}

double ScheduleResult::BubbleTime() const {
  double acc = 0.0;
  std::vector<double> first(stage_busy.size(),
                            std::numeric_limits<double>::infinity());
  std::vector<double> last(stage_busy.size(), 0.0);
  std::vector<std::size_t> instances(stage_busy.size(), 1);
  for (const auto& j : jobs) {
    first[j.stage] = std::min(first[j.stage], j.start);
    last[j.stage] = std::max(last[j.stage], j.end);
    instances[j.stage] = std::max(instances[j.stage], j.instance + 1);
  }
  for (std::size_t s = 0; s < stage_busy.size(); ++s) {
    const double window =
        (last[s] - first[s]) * static_cast<double>(instances[s]);
    if (window > 0) acc += window - stage_busy[s];
  }
  return acc;
}

ScheduleResult SimulatePipeline(const std::vector<std::size_t>& lengths,
                                const std::vector<StageTimingModel>& stages,
                                const PipelineSimConfig& cfg) {
  if (stages.empty()) {
    throw std::invalid_argument("SimulatePipeline: no stages");
  }
  if (cfg.layers == 0) {
    throw std::invalid_argument("SimulatePipeline: layers must be >= 1");
  }
  if (!cfg.replication.empty() && cfg.replication.size() != stages.size()) {
    throw std::invalid_argument(
        "SimulatePipeline: replication size mismatch");
  }
  const std::size_t B = lengths.size();
  const std::size_t S = stages.size();
  const std::size_t L = cfg.layers;

  auto replicas = [&](std::size_t s) -> std::size_t {
    if (cfg.replication.empty()) return 1;
    return std::max<std::size_t>(1, cfg.replication[s]);
  };

  ScheduleResult res;
  res.stage_busy.assign(S, 0.0);
  if (B == 0) return res;

  // finish[i][s] = finish time of sequence i's most recent job on stage s
  // (layer-major streaming means only the latest layer matters).
  std::vector<std::vector<double>> finish(B, std::vector<double>(S, 0.0));
  // Per-sequence finish of the previous layer's last stage.
  std::vector<double> prev_layer_done(B, 0.0);
  // Per-instance occupancy and round-robin cursor per stage.
  std::vector<std::vector<double>> instance_free(S);
  std::vector<std::size_t> rr(S, 0);
  for (std::size_t s = 0; s < S; ++s) {
    instance_free[s].assign(replicas(s), 0.0);
  }
  // Without double buffers: finish time of the *consumer* of the previous
  // item that went through stage s (the buffer drains when stage s+1
  // ends).  With replication this is tracked per stage, which is slightly
  // conservative (a shared output buffer pool).
  std::vector<double> buffer_drained(S, 0.0);

  // One Fig 2(b) state machine per stage instance.
  std::vector<std::vector<StageStateMachine>> machines(S);
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t r = 0; r < replicas(s); ++r) {
      machines[s].emplace_back(
          static_cast<StageId>(std::min<std::size_t>(s, 2)));
    }
  }

  for (std::size_t l = 0; l < L; ++l) {
    for (std::size_t i = 0; i < B; ++i) {
      for (std::size_t s = 0; s < S; ++s) {
        const double dur =
            stages[s].Seconds(static_cast<double>(lengths[i])) +
            cfg.stage_switch_overhead;
        const std::size_t inst = rr[s];
        rr[s] = (rr[s] + 1) % replicas(s);
        double ready = (s == 0) ? prev_layer_done[i] : finish[i][s - 1];
        double start = std::max(ready, instance_free[s][inst]);
        if (!cfg.double_buffer) {
          // Single buffer: stage s may not overwrite its output buffer
          // until the downstream stage consumed the previous item.
          start = std::max(start, buffer_drained[s]);
        }
        const double end = start + dur;
        machines[s][inst].Start(start, i, l);
        machines[s][inst].Finish(end);
        res.jobs.push_back({i, l, s, inst, start, end});
        res.stage_busy[s] += dur;
        finish[i][s] = end;
        instance_free[s][inst] = end;
        if (!cfg.double_buffer && s > 0) {
          // Consuming this item drains stage s-1's output buffer.
          buffer_drained[s - 1] = end;
        }
        res.makespan = std::max(res.makespan, end);
      }
      prev_layer_done[i] = finish[i][S - 1];
    }
  }
  return res;
}

std::string RenderGantt(const ScheduleResult& schedule, std::size_t stages,
                        std::size_t width) {
  if (schedule.jobs.empty() || stages == 0 || width == 0) return "";
  const double span = schedule.makespan;
  if (span <= 0) return "";
  static const char* kNames[] = {"MM|At-Sel", "At-Comp  ", "FdFwd    "};
  std::string out;
  for (std::size_t s = 0; s < stages; ++s) {
    std::string row(width, '.');
    for (const auto& j : schedule.jobs) {
      if (j.stage != s) continue;
      const auto b0 = static_cast<std::size_t>(j.start / span * width);
      auto b1 = static_cast<std::size_t>(std::ceil(j.end / span * width));
      b1 = std::min(b1, width);
      const char mark =
          static_cast<char>('1' + static_cast<char>(j.seq % 9));
      for (std::size_t b = b0; b < b1; ++b) row[b] = mark;
    }
    out += (s < 3 ? kNames[s] : "Stage    ");
    out += " |";
    out += row;
    out += "|\n";
  }
  return out;
}

}  // namespace latte
