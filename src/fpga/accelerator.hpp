#pragma once
// Top-level FPGA accelerator model: ties together the operator inventory,
// the stage partition, the resource plan, and the pipeline simulator.
//
// Two modes (the two FPGA bars of Fig 7):
//   * kLengthAware -- the paper's design: sparse Top-k attention operators,
//     batch sorted by decreasing length, no padding, double buffers.
//   * kBaseline    -- "FPGA design without length-aware scheduling and
//     sparse attention": dense attention operators and every sequence
//     padded to the batch maximum.

#include <vector>

#include "fpga/pipeline_sim.hpp"
#include "fpga/resources.hpp"
#include "model/config.hpp"
#include "workload/batch.hpp"

namespace latte {

/// Which FPGA design point to simulate.
enum class FpgaMode { kBaseline, kLengthAware };

/// Accelerator configuration.
struct AcceleratorConfig {
  FpgaSpec spec = AlveoU280Slr0();
  FpgaMode mode = FpgaMode::kLengthAware;
  std::size_t top_k = 30;      ///< sparse attention candidates (length-aware)
  bool double_buffer = true;   ///< inter-stage ping-pong buffers
  bool sort_batch = true;      ///< decreasing-length order (length-aware)
  double element_bytes = 1.0;  ///< 8-bit fixed-point datapath
  /// Baseline mode pads to at least this length (the task maximum); 0 pads
  /// to the batch maximum only.
  std::size_t baseline_pad_to = 0;
};

/// Result of running one batch through the accelerator model.
struct AcceleratorReport {
  double latency_s = 0;            ///< batch makespan, all layers
  double attention_latency_s = 0;  ///< attention-only pipeline makespan
  /// Dense-equivalent useful work: FLOPs a dense, unpadded implementation
  /// needs for these sequences.  The paper reports "equivalent throughput"
  /// in these units (how 3.6 TFLOPS can exceed the 1.2 TFLOPS roof).
  double useful_dense_flops = 0;
  double useful_dense_attention_flops = 0;
  /// FLOPs the configured design actually executes (padding included).
  double computed_flops = 0;
  std::size_t batch_size = 0;
  std::size_t useful_tokens = 0;

  ScheduleResult schedule;                    ///< full-encoder pipeline
  std::vector<StageTimingModel> stage_models; ///< as planned

  double EquivalentGops() const {
    return latency_s > 0 ? useful_dense_flops / latency_s / 1e9 : 0;
  }
  double AttentionEquivalentGops() const {
    return attention_latency_s > 0
               ? useful_dense_attention_flops / attention_latency_s / 1e9
               : 0;
  }
  double SequencesPerSecond() const {
    return latency_s > 0 ? static_cast<double>(batch_size) / latency_s : 0;
  }
  double TokensPerSecond() const {
    return latency_s > 0 ? static_cast<double>(useful_tokens) / latency_s
                         : 0;
  }
};

/// Runs a batch of sequence lengths through the accelerator model.
AcceleratorReport RunAccelerator(const ModelConfig& model,
                                 const std::vector<std::size_t>& lengths,
                                 const AcceleratorConfig& cfg);

}  // namespace latte
