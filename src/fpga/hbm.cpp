#include "fpga/hbm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace latte {

double HbmChannelBandwidth(const FpgaSpec& spec) {
  return spec.SustainedHbm() / static_cast<double>(spec.hbm_channels);
}

std::vector<std::size_t> ApportionChannels(
    const FpgaSpec& spec, std::span<const double> demand_bytes) {
  const std::size_t total = spec.hbm_channels;
  std::vector<std::size_t> out(demand_bytes.size(), 0);

  double demand_sum = 0;
  std::size_t active = 0;
  for (double d : demand_bytes) {
    if (d < 0) {
      throw std::invalid_argument("ApportionChannels: negative demand");
    }
    if (d > 0) {
      ++active;
      demand_sum += d;
    }
  }
  if (active == 0) return out;
  if (active > total) {
    throw std::invalid_argument(
        "ApportionChannels: more active streams than channels");
  }

  // Floor of the proportional share, at least 1 per active stream.
  std::vector<double> remainder(demand_bytes.size(), 0.0);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < demand_bytes.size(); ++i) {
    if (demand_bytes[i] <= 0) continue;
    const double exact =
        static_cast<double>(total) * demand_bytes[i] / demand_sum;
    out[i] = std::max<std::size_t>(1, static_cast<std::size_t>(exact));
    remainder[i] = exact - std::floor(exact);
    assigned += out[i];
  }
  // Hand out any remaining channels by largest remainder; claw back from
  // the smallest remainders if the at-least-one rule over-assigned.
  while (assigned < total) {
    std::size_t best = 0;
    double best_r = -1;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (demand_bytes[i] > 0 && remainder[i] > best_r) {
        best_r = remainder[i];
        best = i;
      }
    }
    ++out[best];
    remainder[best] = -1;  // consumed
    ++assigned;
  }
  while (assigned > total) {
    // Take from the stream with the most channels (never below 1).
    std::size_t victim = 0;
    std::size_t most = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i] > most) {
        most = out[i];
        victim = i;
      }
    }
    if (most <= 1) break;  // cannot shrink further
    --out[victim];
    --assigned;
  }
  return out;
}

double StreamBandwidth(const FpgaSpec& spec, std::size_t channels) {
  return HbmChannelBandwidth(spec) * static_cast<double>(channels);
}

}  // namespace latte
