#pragma once
// HBM channel model for the Alveo U280.
//
// The board exposes 32 pseudo-channels (PC0-31, Fig 2(a)) of ~14.4 GB/s
// each; only SLR0 reaches them directly.  Streams (weight fetch per stage,
// activation in/out, the Top-k index/value round trip) are bound to whole
// channels at design time, so a stage's sustainable bandwidth is an
// integer number of channels times the per-channel effective rate -- not an
// arbitrary fraction of the aggregate.  The allocator below distributes
// channels across stages proportionally to their traffic demand (largest
// remainder), guaranteeing at least one channel to any stage that moves
// data.

#include <cstddef>
#include <span>
#include <vector>

#include "fpga/resources.hpp"

namespace latte {

/// Per-channel effective bandwidth in bytes/s.
double HbmChannelBandwidth(const FpgaSpec& spec);

/// Splits `spec.hbm_channels` whole channels across streams proportionally
/// to `demand_bytes` (largest-remainder apportionment).  Streams with zero
/// demand get zero channels; every stream with positive demand gets at
/// least one.  Throws if positive-demand streams outnumber channels.
std::vector<std::size_t> ApportionChannels(const FpgaSpec& spec,
                                           std::span<const double> demand_bytes);

/// Sustainable bandwidth of a stream holding `channels` channels.
double StreamBandwidth(const FpgaSpec& spec, std::size_t channels);

}  // namespace latte
