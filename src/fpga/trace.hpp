#pragma once
// Schedule export: Chrome trace-event JSON (load in chrome://tracing or
// Perfetto) and CSV.

#include <string>

#include "fpga/pipeline_sim.hpp"

namespace latte {

/// Serializes a schedule as a Chrome trace-event JSON document.
/// Stages map to "processes", instances to "threads"; each job becomes a
/// complete ("X") event with microsecond timestamps.
std::string ToChromeTrace(const ScheduleResult& schedule);

/// Serializes a schedule as CSV: seq,layer,stage,instance,start_s,end_s.
std::string ToCsv(const ScheduleResult& schedule);

/// Writes `content` to `path`; returns false on I/O failure.
bool WriteTextFile(const std::string& path, const std::string& content);

}  // namespace latte
