#include "fpga/serving.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace latte {
namespace {

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

void ValidateServingConfig(const ServingConfig& cfg) {
  // Negated comparisons so NaN fails validation instead of slipping past.
  if (!(cfg.arrival_rate_rps > 0)) {
    throw std::invalid_argument(
        "ServingConfig: arrival_rate_rps must be > 0 (got " +
        std::to_string(cfg.arrival_rate_rps) + ")");
  }
  if (cfg.max_batch == 0) {
    throw std::invalid_argument(
        "ServingConfig: max_batch must be >= 1 (the batch former needs "
        "capacity for at least one request)");
  }
  if (cfg.requests == 0) {
    throw std::invalid_argument(
        "ServingConfig: requests must be >= 1 (nothing to simulate)");
  }
  if (cfg.workers == 0) {
    throw std::invalid_argument(
        "ServingConfig: workers must be >= 1 (no backend to dispatch to)");
  }
  if (!(cfg.batch_timeout_s >= 0)) {
    throw std::invalid_argument(
        "ServingConfig: batch_timeout_s must be >= 0 (got " +
        std::to_string(cfg.batch_timeout_s) + ")");
  }
}

ServingReport SimulateServing(const ModelConfig& model,
                              const DatasetSpec& dataset,
                              const ServingConfig& cfg) {
  ValidateServingConfig(cfg);

  // Generate the request stream: exponential inter-arrival gaps and
  // dataset-shaped lengths.
  Rng rng(cfg.seed);
  LengthSampler sampler(dataset);
  struct Request {
    double arrival;
    std::size_t length;
  };
  std::vector<Request> stream;
  stream.reserve(cfg.requests);
  double t = 0;
  for (std::size_t i = 0; i < cfg.requests; ++i) {
    double u = rng.NextUniform();
    if (u < 1e-300) u = 1e-300;
    t += -std::log(u) / cfg.arrival_rate_rps;  // exponential gap
    stream.push_back({t, sampler.Sample(rng)});
  }

  std::vector<double> latencies;
  latencies.reserve(cfg.requests);
  // One entry per backend worker: the time it next becomes free.  The
  // batch former always dispatches to the earliest-free worker, the same
  // policy the BatchRunner's dynamic cursor implements on the host.
  std::vector<double> worker_free(cfg.workers, 0.0);
  double device_busy = 0;
  std::size_t next = 0;
  std::size_t batches = 0;

  while (next < stream.size()) {
    auto free_it = std::min_element(worker_free.begin(), worker_free.end());
    // The batch opens when a worker is free and the first request is in.
    const double open = std::max(*free_it, stream[next].arrival);
    const double deadline = open + cfg.batch_timeout_s;
    // Admit requests that arrive before the deadline, up to capacity.
    std::size_t end = next;
    while (end < stream.size() && end - next < cfg.max_batch &&
           stream[end].arrival <= deadline) {
      ++end;
    }
    // The batch launches when its last admitted request has arrived (never
    // before the worker is free).
    const double launch = std::max(open, stream[end - 1].arrival);

    std::vector<std::size_t> lens;
    lens.reserve(end - next);
    for (std::size_t i = next; i < end; ++i) {
      lens.push_back(stream[i].length);
    }
    const auto report = RunAccelerator(model, lens, cfg.accel);
    const double done = launch + report.latency_s;
    for (std::size_t i = next; i < end; ++i) {
      latencies.push_back(done - stream[i].arrival);
    }
    device_busy += report.latency_s;
    *free_it = done;
    next = end;
    ++batches;
  }

  ServingReport rep;
  rep.requests = cfg.requests;
  rep.batches = batches;
  rep.mean_batch_size =
      static_cast<double>(cfg.requests) / static_cast<double>(batches);
  double sum = 0;
  for (double l : latencies) sum += l;
  rep.mean_latency_s = sum / static_cast<double>(latencies.size());
  std::sort(latencies.begin(), latencies.end());
  rep.p50_latency_s = Percentile(latencies, 0.50);
  rep.p95_latency_s = Percentile(latencies, 0.95);
  rep.p99_latency_s = Percentile(latencies, 0.99);
  const double last_done =
      *std::max_element(worker_free.begin(), worker_free.end());
  const double span = last_done - stream.front().arrival;
  rep.throughput_rps =
      span > 0 ? static_cast<double>(cfg.requests) / span : 0;
  // Utilization is averaged over all workers: busy device-seconds divided
  // by the span times the worker count.
  rep.device_busy_frac =
      span > 0 ? device_busy / (span * static_cast<double>(cfg.workers)) : 0;
  return rep;
}

}  // namespace latte
