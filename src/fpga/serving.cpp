#include "fpga/serving.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace latte {
namespace {

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

ServingReport SimulateServing(const ModelConfig& model,
                              const DatasetSpec& dataset,
                              const ServingConfig& cfg) {
  if (cfg.arrival_rate_rps <= 0) {
    throw std::invalid_argument("SimulateServing: arrival rate must be > 0");
  }
  if (cfg.max_batch == 0 || cfg.requests == 0) {
    throw std::invalid_argument("SimulateServing: empty scenario");
  }

  // Generate the request stream: exponential inter-arrival gaps and
  // dataset-shaped lengths.
  Rng rng(cfg.seed);
  LengthSampler sampler(dataset);
  struct Request {
    double arrival;
    std::size_t length;
  };
  std::vector<Request> stream;
  stream.reserve(cfg.requests);
  double t = 0;
  for (std::size_t i = 0; i < cfg.requests; ++i) {
    double u = rng.NextUniform();
    if (u < 1e-300) u = 1e-300;
    t += -std::log(u) / cfg.arrival_rate_rps;  // exponential gap
    stream.push_back({t, sampler.Sample(rng)});
  }

  std::vector<double> latencies;
  latencies.reserve(cfg.requests);
  double device_free = 0;
  double device_busy = 0;
  std::size_t next = 0;
  std::size_t batches = 0;

  while (next < stream.size()) {
    // The batch opens when the device is free and the first request is in.
    const double open = std::max(device_free, stream[next].arrival);
    const double deadline = open + cfg.batch_timeout_s;
    // Admit requests that arrive before the deadline, up to capacity.
    std::size_t end = next;
    while (end < stream.size() && end - next < cfg.max_batch &&
           stream[end].arrival <= deadline) {
      ++end;
    }
    // The batch launches when its last admitted request has arrived (never
    // before the device is free).
    const double launch = std::max(open, stream[end - 1].arrival);

    std::vector<std::size_t> lens;
    lens.reserve(end - next);
    for (std::size_t i = next; i < end; ++i) {
      lens.push_back(stream[i].length);
    }
    const auto report = RunAccelerator(model, lens, cfg.accel);
    const double done = launch + report.latency_s;
    for (std::size_t i = next; i < end; ++i) {
      latencies.push_back(done - stream[i].arrival);
    }
    device_busy += report.latency_s;
    device_free = done;
    next = end;
    ++batches;
  }

  ServingReport rep;
  rep.requests = cfg.requests;
  rep.batches = batches;
  rep.mean_batch_size =
      static_cast<double>(cfg.requests) / static_cast<double>(batches);
  double sum = 0;
  for (double l : latencies) sum += l;
  rep.mean_latency_s = sum / static_cast<double>(latencies.size());
  std::sort(latencies.begin(), latencies.end());
  rep.p50_latency_s = Percentile(latencies, 0.50);
  rep.p95_latency_s = Percentile(latencies, 0.95);
  rep.p99_latency_s = Percentile(latencies, 0.99);
  const double span = device_free - stream.front().arrival;
  rep.throughput_rps =
      span > 0 ? static_cast<double>(cfg.requests) / span : 0;
  rep.device_busy_frac = span > 0 ? device_busy / span : 0;
  return rep;
}

}  // namespace latte
