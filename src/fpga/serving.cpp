#include "fpga/serving.hpp"

#include <stdexcept>
#include <string>

#include "serve/service_model.hpp"

namespace latte {

ConfigIssues CheckServingConfig(const ServingConfig& cfg) {
  ConfigIssues issues;
  // Negated comparison so NaN fails validation instead of slipping past.
  if (!(cfg.arrival_rate_rps > 0)) {
    AddIssue(issues, "arrival_rate_rps",
             "must be > 0 (got " + std::to_string(cfg.arrival_rate_rps) + ")");
  }
  MergePrefixed(issues, "former", CheckBatchFormerConfig(cfg.former));
  if (cfg.requests == 0) {
    AddIssue(issues, "requests", "must be >= 1 (nothing to simulate)");
  }
  if (cfg.workers == 0) {
    AddIssue(issues, "workers", "must be >= 1 (no backend to dispatch to)");
  }
  return issues;
}

void ValidateServingConfig(const ServingConfig& cfg) {
  ThrowOnIssues("ServingConfig", CheckServingConfig(cfg));
}

BatchFormerConfig ServingBatchFormer(const ServingConfig& cfg) {
  return cfg.former;
}

PoissonTraceConfig ServingTrace(const ServingConfig& cfg) {
  PoissonTraceConfig trace;
  trace.arrival_rate_rps = cfg.arrival_rate_rps;
  trace.requests = cfg.requests;
  trace.seed = cfg.seed;
  return trace;
}

BatchServiceModel AcceleratorServiceModel(const ModelConfig& model,
                                          const AcceleratorConfig& accel) {
  // Deprecated shim over the unified surface (serve/service_model.hpp).
  ServiceModelSpec spec;
  spec.base = ServiceModelSpec::Base::kAccelerator;
  spec.model = model;
  spec.accel = accel;
  return BuildServiceModel(spec);
}

BatchServiceModel ShardedAcceleratorServiceModel(
    const ModelConfig& model, const AcceleratorConfig& accel,
    const ShardServiceConfig& shard) {
  // Deprecated shim over the unified surface (serve/service_model.hpp).
  ServiceModelSpec spec;
  spec.base = ServiceModelSpec::Base::kAccelerator;
  spec.model = model;
  spec.accel = accel;
  spec.sharded = true;
  spec.shard = shard;
  return BuildServiceModel(spec);
}

std::vector<BatchServiceModel> AcceleratorFleetServiceModels(
    const ModelConfig& model, const std::vector<AcceleratorConfig>& accels) {
  // Deprecated shim over the unified surface (serve/service_model.hpp).
  std::vector<BatchServiceModel> fleet;
  fleet.reserve(accels.size());
  for (const AcceleratorConfig& accel : accels) {
    fleet.push_back(AcceleratorServiceModel(model, accel));
  }
  return fleet;
}

ServingReport SimulateServing(const ModelConfig& model,
                              const DatasetSpec& dataset,
                              const ServingConfig& cfg) {
  ValidateServingConfig(cfg);
  const auto trace = GeneratePoissonTrace(ServingTrace(cfg), dataset);
  const auto batches = FormBatches(trace, ServingBatchFormer(cfg));
  const auto sched =
      ScheduleFormedBatches(trace, batches, cfg.workers,
                            AcceleratorServiceModel(model, cfg.accel));
  return sched.report;
}

}  // namespace latte
