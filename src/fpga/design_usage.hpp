#pragma once
// Whole-design resource estimation: does the configured accelerator
// actually fit SLR0?
//
// Accounts for the pieces Fig 2(a) draws: the DSP datapath of the three
// coarse stages, the LUT fabric of At-Sel (product tables + systolic
// sorter cells), the e^x LUT, the inter-stage ping-pong buffers, the
// per-stage weight/activation tiles, and the Top-k FIFO storage.

#include "fpga/resources.hpp"
#include "model/config.hpp"

namespace latte {

/// Sizing knobs of the design whose usage is being estimated.
struct DesignUsageConfig {
  std::size_t top_k = 30;
  std::size_t n_max = 821;       ///< longest sequence the buffers must hold
  std::size_t sorter_instances = 12;  ///< parallel Top-k sorters (per head)
  std::size_t lut_mac_lanes = 4096;   ///< 1-bit MAC lanes in At-Sel
  double element_bytes = 1.0;         ///< 8-bit datapath
};

/// Itemized estimate; `total` is what FitsIn() is checked against.
struct DesignUsage {
  ResourceUsage total;
  double dsp_datapath = 0;        ///< stage MAC lanes
  double lut_atsel = 0;           ///< product LUTs + sorter cells
  double lut_control = 0;         ///< state machines, crossbars, FIFO glue
  double bram_double_buffers = 0; ///< inter-stage ping-pong activations
  double bram_weight_tiles = 0;   ///< streamed weight tile storage
  double bram_topk_fifo = 0;      ///< Top-k (idx,val) pairs in flight
  double bram_exp_lut = 0;
};

/// Estimates the usage of the length-aware design for one model on `spec`.
DesignUsage EstimateDesignUsage(const ModelConfig& model,
                                const FpgaSpec& spec,
                                const DesignUsageConfig& cfg = {});

}  // namespace latte
