#include "fpga/timing.hpp"

#include <algorithm>
#include <stdexcept>

#include "fpga/hbm.hpp"

namespace latte {

double StageTimingModel::Seconds(double n) const {
  const double t_dsp = flops.Eval(n) / (2.0 * dsp * freq_hz);
  const double t_lut = lut_ops.Eval(n) / (lut_lanes * freq_hz);
  const double t_mem = offchip_bytes.Eval(n) / hbm_bytes_per_s;
  return std::max({t_dsp, t_lut, t_mem});
}

int StageTimingModel::BindingRoof(double n) const {
  const double t_dsp = flops.Eval(n) / (2.0 * dsp * freq_hz);
  const double t_lut = lut_ops.Eval(n) / (lut_lanes * freq_hz);
  const double t_mem = offchip_bytes.Eval(n) / hbm_bytes_per_s;
  if (t_dsp >= t_lut && t_dsp >= t_mem) return 0;
  if (t_lut >= t_mem) return 1;
  return 2;
}

std::vector<std::vector<OpSpec>> GroupByStageHint(
    const std::vector<OpSpec>& ops) {
  std::vector<std::vector<OpSpec>> groups(3);
  for (const auto& op : ops) {
    if (op.stage_hint < 1 || op.stage_hint > 3) {
      throw std::out_of_range("GroupByStageHint: stage_hint outside 1..3");
    }
    groups[static_cast<std::size_t>(op.stage_hint - 1)].push_back(op);
  }
  std::erase_if(groups, [](const auto& g) { return g.empty(); });
  return groups;
}

std::vector<StageTimingModel> RestrictToAttention(
    const std::vector<std::vector<OpSpec>>& stage_ops,
    const std::vector<StageTimingModel>& full_models, double element_bytes) {
  if (stage_ops.size() != full_models.size()) {
    throw std::invalid_argument("RestrictToAttention: size mismatch");
  }
  std::vector<StageTimingModel> out;
  for (std::size_t k = 0; k < stage_ops.size(); ++k) {
    StageTimingModel m = full_models[k];  // keep dsp / lut / bw shares
    m.flops = {};
    m.lut_ops = {};
    m.offchip_bytes = {};
    bool any = false;
    for (const auto& op : stage_ops[k]) {
      if (!op.in_attention) continue;
      m.flops = m.flops + op.flops;
      m.lut_ops = m.lut_ops + op.lut_ops;
      m.offchip_bytes = m.offchip_bytes + op.offchip_elems;
      any = true;
    }
    m.offchip_bytes.quad *= element_bytes;
    m.offchip_bytes.lin *= element_bytes;
    m.offchip_bytes.cst *= element_bytes;
    if (any) out.push_back(m);
  }
  return out;
}

std::vector<StageTimingModel> BuildStageTimings(
    const std::vector<std::vector<OpSpec>>& stage_ops, const FpgaSpec& spec,
    double s_avg, double element_bytes) {
  if (s_avg <= 0) {
    throw std::invalid_argument("BuildStageTimings: s_avg must be positive");
  }
  std::vector<StageTimingModel> models(stage_ops.size());
  double total_flops = 0, total_lut = 0, total_traffic = 0;
  for (std::size_t k = 0; k < stage_ops.size(); ++k) {
    auto& m = models[k];
    for (const auto& op : stage_ops[k]) {
      m.flops = m.flops + op.flops;
      m.lut_ops = m.lut_ops + op.lut_ops;
      m.offchip_bytes = m.offchip_bytes + op.offchip_elems;
    }
    // Convert traffic elements to bytes.
    m.offchip_bytes.quad *= element_bytes;
    m.offchip_bytes.lin *= element_bytes;
    m.offchip_bytes.cst *= element_bytes;
    total_flops += m.flops.Eval(s_avg);
    total_lut += m.lut_ops.Eval(s_avg);
    total_traffic += m.offchip_bytes.Eval(s_avg);
  }
  // HBM pseudo-channels are bound to stages as whole units at design time.
  std::vector<double> demand(models.size());
  for (std::size_t k = 0; k < models.size(); ++k) {
    demand[k] = models[k].offchip_bytes.Eval(s_avg);
  }
  const auto channels = ApportionChannels(spec, demand);

  for (std::size_t k = 0; k < models.size(); ++k) {
    auto& m = models[k];
    m.freq_hz = spec.freq_hz;
    const double fshare =
        total_flops > 0 ? m.flops.Eval(s_avg) / total_flops : 0.0;
    const double lshare =
        total_lut > 0 ? m.lut_ops.Eval(s_avg) / total_lut : 0.0;
    m.dsp = std::max(1.0, spec.dsp * fshare);
    // One LUT lane = one ultra-low-bit MAC (XNOR + popcount slice) or one
    // sorter compare, ~4 LUTs each; the budget buys spec.lut/4 lanes.
    m.lut_lanes = std::max(1.0, (spec.lut / 4.0) * lshare);
    m.hbm_bytes_per_s = std::max(1.0, StreamBandwidth(spec, channels[k]));
  }
  return models;
}

}  // namespace latte
