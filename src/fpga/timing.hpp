#pragma once
// Analytical stage timing model.
//
// A coarse stage processing one sequence of length n takes
//
//   T(n) = max( flops(n)   / (2 * dsp * freq),        -- DSP compute roof
//               lut_ops(n) / (lut_lanes * freq),      -- LUT fabric roof
//               bytes(n)   / sustained_hbm_share )    -- memory roof
//
// i.e. compute and communication fully overlap within a stage (Section 4.2:
// "The communication and computation are overlapped with each other through
// coarse-grained pipeline and data prefetching"); the slower of the roofs
// wins.  This is the same analytical performance model the paper uses to
// size its design.

#include <vector>

#include "fpga/resources.hpp"
#include "nn/op_cost.hpp"

namespace latte {

/// Timing model of one coarse pipeline stage.
struct StageTimingModel {
  CostPoly flops;          ///< summed over member operators
  CostPoly lut_ops;
  CostPoly offchip_bytes;  ///< traffic in bytes (elements * element size)
  double dsp = 1;          ///< DSP slices granted to this stage
  double lut_lanes = 1;    ///< parallel LUT-op lanes granted
  double hbm_bytes_per_s = 1;  ///< HBM share granted
  double freq_hz = 200e6;

  /// Seconds to process one sequence of length n through this stage.
  double Seconds(double n) const;

  /// Which roof binds at length n: 0 = DSP, 1 = LUT, 2 = memory.
  int BindingRoof(double n) const;
};

/// Builds stage timing models from a stage partition.
///
/// DSPs are split across stages proportionally to per-token FLOPs at
/// `s_avg`; LUT lanes proportionally to LUT work; HBM bandwidth
/// proportionally to traffic.  `element_bytes` converts traffic elements to
/// bytes (1 for the 8-bit datapath).
std::vector<StageTimingModel> BuildStageTimings(
    const std::vector<std::vector<OpSpec>>& stage_ops, const FpgaSpec& spec,
    double s_avg, double element_bytes = 1.0);

/// Groups an operator list by stage_hint (1..3) -- the Fig 2(a) partition.
std::vector<std::vector<OpSpec>> GroupByStageHint(
    const std::vector<OpSpec>& ops);

/// Timing models for the self-attention portion only, keeping each stage's
/// resource allocation exactly as the full design fixed it at synthesis
/// time (the hardware does not re-tune when we time a sub-workflow).
/// `full_models[k]` must correspond to `stage_ops[k]`; stages without any
/// attention work are dropped.
std::vector<StageTimingModel> RestrictToAttention(
    const std::vector<std::vector<OpSpec>>& stage_ops,
    const std::vector<StageTimingModel>& full_models,
    double element_bytes = 1.0);

}  // namespace latte
