#include "fpga/accelerator.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace latte {
namespace {

double MeanLength(const std::vector<std::size_t>& lengths) {
  if (lengths.empty()) return 1.0;
  const double total = static_cast<double>(std::accumulate(
      lengths.begin(), lengths.end(), std::size_t{0}));
  return std::max(1.0, total / static_cast<double>(lengths.size()));
}

}  // namespace

AcceleratorReport RunAccelerator(const ModelConfig& model,
                                 const std::vector<std::size_t>& lengths,
                                 const AcceleratorConfig& cfg) {
  if (lengths.empty()) {
    throw std::invalid_argument("RunAccelerator: empty batch");
  }

  // 1. Batching policy.
  const bool sparse = cfg.mode == FpgaMode::kLengthAware;
  const BatchPolicy policy = sparse && cfg.sort_batch
                                 ? BatchPolicy::kSortedDescending
                                 : BatchPolicy::kPadToMax;
  const Batch batch = MakeBatch(lengths, policy, 4, cfg.baseline_pad_to);
  const auto& eff = batch.effective_lengths;

  // 2. Operator inventory for the chosen attention implementation.
  const AttentionMode amode =
      sparse ? AttentionMode::kSparseTopK : AttentionMode::kDense;
  const auto ops = EncoderOps(model.encoder, amode, cfg.top_k);
  // The stage partition and DSP split are fixed at synthesis time for the
  // expected processed length: the per-task average for the length-aware
  // design, the fixed padded length for the baseline.
  const double s_avg = MeanLength(eff);

  // 3. Fig 2(a) stage partition and proportional resource plan.
  const auto groups = GroupByStageHint(ops);
  const auto stage_models =
      BuildStageTimings(groups, cfg.spec, s_avg, cfg.element_bytes);

  // 4. Pipeline simulation over all encoder layers.
  PipelineSimConfig sim_cfg;
  sim_cfg.layers = model.layers;
  sim_cfg.double_buffer = cfg.double_buffer;
  ScheduleResult schedule = SimulatePipeline(eff, stage_models, sim_cfg);

  // 5. Attention-only pipeline (the measurement behind Fig 7(b)).  Like the
  // attention-accelerator comparisons in Table 2 (A3, SpAtten), the
  // attention engine is measured as a standalone design that may configure
  // the whole fabric for the attention operators.
  std::vector<OpSpec> attn_ops;
  for (const auto& op : ops) {
    if (op.in_attention) attn_ops.push_back(op);
  }
  const auto attn_models = BuildStageTimings(
      GroupByStageHint(attn_ops), cfg.spec, s_avg, cfg.element_bytes);
  const ScheduleResult attn_schedule =
      SimulatePipeline(eff, attn_models, sim_cfg);

  // 6. Accounting.
  AcceleratorReport rep;
  rep.batch_size = lengths.size();
  rep.useful_tokens = batch.UsefulTokens();
  rep.latency_s = schedule.makespan;
  rep.attention_latency_s = attn_schedule.makespan;
  for (std::size_t n : batch.original_lengths) {
    rep.useful_dense_flops += model.TotalModelFlops(
        static_cast<double>(n), AttentionMode::kDense);
    rep.useful_dense_attention_flops += model.AttentionModelFlops(
        static_cast<double>(n), AttentionMode::kDense);
  }
  for (std::size_t n : eff) {
    rep.computed_flops +=
        model.TotalModelFlops(static_cast<double>(n), amode, cfg.top_k);
  }
  rep.schedule = std::move(schedule);
  rep.stage_models = stage_models;
  return rep;
}

}  // namespace latte
