#pragma once
// FPGA device resource model.
//
// Numbers follow the paper's evaluation platform: Xilinx Alveo U280, with
// the design constrained to SLR0 because only SLR0 connects to the HBM
// stacks (Section 5.2).  The paper quotes 3000 usable DSPs in SLR0, 200 MHz
// design frequency, 460 GB/s HBM bandwidth and 8-bit MACs costing one DSP.

#include <cstddef>

namespace latte {

/// Static resources and clocking of one FPGA design region.
struct FpgaSpec {
  const char* name = "U280-SLR0";
  double dsp = 3000;             ///< DSP48 slices usable by the design
  double lut = 400e3;            ///< LUTs usable by At-Sel / sorter fabric
  double ff = 800e3;             ///< flip-flops
  double bram_bytes = 35.0e6 / 3.0;  ///< on-chip RAM share of SLR0 (U280
                                     ///< total ~35 MB across 3 SLRs)
  double freq_hz = 200e6;        ///< attainable design frequency
  double hbm_bandwidth = 460e9;  ///< bytes/s across all HBM channels
  std::size_t hbm_channels = 32; ///< PC0-31
  double hbm_efficiency = 0.80;  ///< sustained fraction of peak HBM BW

  /// Peak 8-bit MAC throughput in ops/s (2 ops per MAC, 1 DSP per MAC).
  double PeakOpsPerSecond() const { return dsp * 2.0 * freq_hz; }
  /// Sustained HBM bytes/s.
  double SustainedHbm() const { return hbm_bandwidth * hbm_efficiency; }
};

/// The evaluation device of the paper.
FpgaSpec AlveoU280Slr0();

/// Utilization of one resource class (used / available).
struct ResourceUsage {
  double dsp = 0;
  double lut = 0;
  double bram_bytes = 0;

  /// True if this usage fits within `spec`.
  bool FitsIn(const FpgaSpec& spec) const {
    return dsp <= spec.dsp && lut <= spec.lut &&
           bram_bytes <= spec.bram_bytes;
  }
};

/// Double-buffer storage between two coarse stages holding one sequence's
/// activations (n_max x hidden, 1 byte/element 8-bit fixed point, x2 for
/// ping-pong).
double DoubleBufferBytes(std::size_t n_max, std::size_t hidden);

}  // namespace latte
