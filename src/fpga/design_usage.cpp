#include "fpga/design_usage.hpp"

#include <algorithm>

namespace latte {

DesignUsage EstimateDesignUsage(const ModelConfig& model,
                                const FpgaSpec& spec,
                                const DesignUsageConfig& cfg) {
  DesignUsage u;
  const double h = static_cast<double>(model.encoder.hidden);
  const double f = static_cast<double>(model.encoder.ffn());
  const double heads = static_cast<double>(model.encoder.heads);
  const double n_max = static_cast<double>(cfg.n_max);
  const double k = static_cast<double>(cfg.top_k);

  // DSP datapath: the planner hands essentially the whole budget to the
  // three stages; what matters for the fit check is that the datapath is
  // sized to the budget, not beyond it.
  u.dsp_datapath = spec.dsp;

  // At-Sel LUT fabric: each 1-bit MAC lane is an XNOR + popcount slice
  // (~4 LUTs); each systolic sorter cell is a compare-exchange on
  // (score, index) pairs (~60 LUTs); one 256-entry product table per lane
  // group amortizes to ~1 LUT/lane as distributed RAM.
  u.lut_atsel = 4.0 * static_cast<double>(cfg.lut_mac_lanes) +
                60.0 * k * static_cast<double>(cfg.sorter_instances);
  // Control: Fig 2(b) state machines, crossbars, FIFO glue -- a few
  // thousand LUTs per stage.
  u.lut_control = 3.0 * 5000.0;

  // BRAM: ping-pong activation buffers between the two stage boundaries
  // (n_max x h each, double-buffered), weight tiles for the widest matmul
  // (a 512 x h tile of FFN1 weights per stage instance), the Top-k
  // in-flight FIFO (the full result set round-trips through HBM, Section
  // 4.1 -- only a 64-row window stays on chip), and the exp table.
  (void)n_max;
  u.bram_double_buffers = 2.0 * DoubleBufferBytes(cfg.n_max,
                                                  model.encoder.hidden) *
                          cfg.element_bytes;
  u.bram_weight_tiles = 512.0 * std::max(h, f) * cfg.element_bytes * 3.0;
  constexpr double kTopkFifoRows = 64.0;
  u.bram_topk_fifo = kTopkFifoRows * k * 8.0 * heads;
  u.bram_exp_lut = 2.0 * 4.0 * 64.0;

  u.total.dsp = u.dsp_datapath;
  u.total.lut = u.lut_atsel + u.lut_control;
  u.total.bram_bytes = u.bram_double_buffers + u.bram_weight_tiles +
                       u.bram_topk_fifo + u.bram_exp_lut;
  return u;
}

}  // namespace latte
