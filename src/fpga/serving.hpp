#pragma once
// Online serving simulation: Poisson arrivals, a batch former, and the
// accelerator model as the backend device.
//
// The paper evaluates fixed batches (size 16); serving with a request
// stream is the deployment scenario its introduction motivates (variable
// lengths arriving continuously).  This module measures what the
// length-aware design buys in *tail latency*: the padded-dense baseline
// wastes device time on padding, queues grow, and p95/p99 explode earlier
// as the arrival rate approaches saturation.

#include "fpga/accelerator.hpp"
#include "workload/dataset.hpp"

namespace latte {

/// Serving scenario knobs.
struct ServingConfig {
  double arrival_rate_rps = 50;   ///< Poisson arrival rate (requests/s)
  std::size_t max_batch = 16;     ///< batch former capacity
  double batch_timeout_s = 0.02;  ///< flush a partial batch after this wait
  std::size_t requests = 512;     ///< simulated request count
  std::uint64_t seed = 1;         ///< arrivals + lengths
  /// Concurrent backend workers (devices / BatchRunner slots): formed
  /// batches dispatch to the earliest-free worker, mirroring the host-side
  /// batched execution runtime.  1 reproduces the single-device model.
  std::size_t workers = 1;
  AcceleratorConfig accel;        ///< backend device configuration
};

/// Throws std::invalid_argument with a field-specific message when a
/// serving scenario is malformed (non-positive arrival rate, zero batch
/// capacity, zero requests, zero workers, negative timeout).
void ValidateServingConfig(const ServingConfig& cfg);

/// Aggregate serving metrics.
struct ServingReport {
  std::size_t requests = 0;
  std::size_t batches = 0;
  double mean_batch_size = 0;
  double mean_latency_s = 0;   ///< arrival -> batch completion
  double p50_latency_s = 0;
  double p95_latency_s = 0;
  double p99_latency_s = 0;
  double throughput_rps = 0;   ///< completed requests / simulated span
  double device_busy_frac = 0; ///< device utilization over the span
};

/// Simulates a request stream against the accelerator model.
/// Lengths are sampled from the dataset; the baseline accelerator mode
/// pads to `cfg.accel.baseline_pad_to` as usual.
ServingReport SimulateServing(const ModelConfig& model,
                              const DatasetSpec& dataset,
                              const ServingConfig& cfg);

}  // namespace latte
