#pragma once
// Online serving simulation: Poisson arrivals, the shared length-aware
// batch former, and the accelerator model as the backend device.
//
// The paper evaluates fixed batches (size 16); serving with a request
// stream is the deployment scenario its introduction motivates (variable
// lengths arriving continuously).  This module measures what the
// length-aware design buys in *tail latency*: the padded-dense baseline
// wastes device time on padding, queues grow, and p95/p99 explode earlier
// as the arrival rate approaches saturation.
//
// Arrival generation (workload/arrivals), batch forming
// (serve/batch_former), dispatch and report accounting (serve/dispatch)
// are shared with the functional ServingEngine: replaying the same trace
// through the engine with AcceleratorServiceModel reproduces this
// simulation's report exactly, while also computing real tensors.
//
// Semantic change vs the pre-refactor simulator: batch forming is now
// *trace-driven* (a batch's admission window opens at its first request's
// arrival), where the old code opened the window only once a worker was
// free (open = max(worker_free, arrival)).  Under backlog the old former
// therefore grew batches toward max_batch while the new one keeps sealing
// arrival-time windows, so absolute numbers in the saturation regime
// shifted.  The trade is deliberate: trace-driven forming makes batches
// identical at any worker count — the property that lets the functional
// engine replay the simulator's exact batches — and the qualitative
// story (the padded baseline saturates first) is unchanged.

#include "config/check.hpp"
#include "fpga/accelerator.hpp"
#include "serve/batch_former.hpp"
#include "serve/dispatch.hpp"
#include "serve/shard_service.hpp"
#include "workload/dataset.hpp"

namespace latte {

/// Serving scenario knobs.  Batching is the serve-layer former config
/// itself (`former.max_batch`, `former.timeout_s`, plus the token budget
/// and length-sorting knobs the twin now inherits for free) -- the twin
/// no longer duplicates those fields.
struct ServingConfig {
  double arrival_rate_rps = 50;  ///< Poisson arrival rate (requests/s)
  BatchFormerConfig former;      ///< shared batch-forming knobs
  std::size_t requests = 512;    ///< simulated request count
  std::uint64_t seed = 1;        ///< arrivals + lengths
  /// Concurrent backend workers (devices / BatchRunner slots): formed
  /// batches dispatch to the earliest-free worker, mirroring the host-side
  /// batched execution runtime.  1 reproduces the single-device model.
  std::size_t workers = 1;
  AcceleratorConfig accel;  ///< backend device configuration
};

/// Names every illegal field (non-positive arrival rate, malformed former
/// -- "former."-prefixed -- zero requests, zero workers); empty means
/// legal.
ConfigIssues CheckServingConfig(const ServingConfig& cfg);

/// Throws std::invalid_argument with a field-specific message when a
/// serving scenario is malformed (non-positive arrival rate, zero batch
/// capacity, zero requests, zero workers, negative timeout).
void ValidateServingConfig(const ServingConfig& cfg);

/// The batch former a serving scenario implies (the embedded `former`
/// member; kept so existing call sites read the same).
BatchFormerConfig ServingBatchFormer(const ServingConfig& cfg);

/// The Poisson trace a serving scenario implies.
PoissonTraceConfig ServingTrace(const ServingConfig& cfg);

/// DEPRECATED: thin shim over BuildServiceModel (serve/service_model.hpp)
/// with Base::kAccelerator -- build a ServiceModelSpec instead.  Prices
/// one batch with the accelerator model: the performance twin's service
/// model, usable by the functional ServingEngine for accounting that
/// matches SimulateServing number for number.
BatchServiceModel AcceleratorServiceModel(const ModelConfig& model,
                                          const AcceleratorConfig& accel);

/// DEPRECATED: thin shim over BuildServiceModel with `sharded = true` --
/// build a ServiceModelSpec instead.  Accelerator twin behind a
/// tensor-parallel gang (compute scaled to the plan's critical-path
/// share, collectives priced by the interconnect model).
BatchServiceModel ShardedAcceleratorServiceModel(const ModelConfig& model,
                                                 const AcceleratorConfig& accel,
                                                 const ShardServiceConfig& shard);

/// DEPRECATED: build one ServiceModelSpec per replica and call
/// BuildServiceModel in a loop instead.  Service models for a
/// heterogeneous accelerator fleet: one per configuration, each pricing
/// batches with its own accelerator instance.
std::vector<BatchServiceModel> AcceleratorFleetServiceModels(
    const ModelConfig& model, const std::vector<AcceleratorConfig>& accels);

/// Simulates a request stream against the accelerator model.
/// Lengths are sampled from the dataset; the baseline accelerator mode
/// pads to `cfg.accel.baseline_pad_to` as usual.
ServingReport SimulateServing(const ModelConfig& model,
                              const DatasetSpec& dataset,
                              const ServingConfig& cfg);

}  // namespace latte
