#include "fpga/resources.hpp"

namespace latte {

FpgaSpec AlveoU280Slr0() { return FpgaSpec{}; }

double DoubleBufferBytes(std::size_t n_max, std::size_t hidden) {
  return 2.0 * static_cast<double>(n_max) * static_cast<double>(hidden);
}

}  // namespace latte
