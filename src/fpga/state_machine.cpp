#include "fpga/state_machine.hpp"

namespace latte {

std::string WorkingStateName(StageId stage) {
  switch (stage) {
    case StageId::kMmAtSel: return "StateMM";
    case StageId::kAtComp:  return "StateAtten";
    case StageId::kFdFwd:   return "StateFF";
  }
  return "?";
}

void StageStateMachine::Start(double t, std::size_t sequence,
                              std::size_t layer) {
  if (state_ != StageState::kIdle) {
    throw std::logic_error("StageStateMachine::Start while Working");
  }
  state_ = StageState::kWorking;
  started_at_ = t;
  current_seq_ = sequence;
  current_layer_ = layer;
  log_.push_back({t, StageState::kWorking, sequence, layer});
}

void StageStateMachine::Finish(double t) {
  if (state_ != StageState::kWorking) {
    throw std::logic_error("StageStateMachine::Finish while Idle");
  }
  if (t < started_at_) {
    throw std::logic_error("StageStateMachine::Finish: time moved backward");
  }
  state_ = StageState::kIdle;
  busy_ += t - started_at_;
  log_.push_back({t, StageState::kIdle, current_seq_, current_layer_});
}

}  // namespace latte
