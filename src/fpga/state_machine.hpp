#pragma once
// The per-stage scheduling state machine of Fig 2(b).
//
// Each coarse stage is driven by a dedicated state machine with an Idle
// state and one Working state (StateMM for Stage 1, StateAtten for Stage 2,
// StateFF for Stage 3).  The machine leaves Idle when an input buffer is
// ready and returns to Idle (or chains straight into the next sequence,
// which is the bubble-free case) when the stage finishes.  The pipeline
// simulator drives one machine per stage and the Gantt extraction reads the
// recorded transitions.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace latte {

/// Stage identity (Fig 2(a)).
enum class StageId : std::uint8_t {
  kMmAtSel = 0,  ///< Stage 1: linear transformation | At-Sel
  kAtComp = 1,   ///< Stage 2: attention computation
  kFdFwd = 2,    ///< Stage 3: feedforward
};

/// States of Fig 2(b).
enum class StageState : std::uint8_t {
  kIdle = 0,
  kWorking = 1,  ///< StateMM / StateAtten / StateFF depending on StageId
};

/// Name of the Working state for a stage ("StateMM", "StateAtten",
/// "StateFF") as labeled in Fig 2(b).
std::string WorkingStateName(StageId stage);

/// One recorded transition.
struct StateTransition {
  double time = 0;
  StageState to = StageState::kIdle;
  /// Sequence index the stage starts/finishes (valid for kWorking entries
  /// and for the kIdle entry that closes it).
  std::size_t sequence = 0;
  std::size_t layer = 0;
};

/// The per-stage state machine.  Enforces legal transitions: Idle->Working
/// on Start, Working->Idle on Finish; starting while working or finishing
/// while idle throws std::logic_error.
class StageStateMachine {
 public:
  explicit StageStateMachine(StageId id) : id_(id) {}

  StageId id() const { return id_; }
  StageState state() const { return state_; }

  /// Begins processing `sequence` of `layer` at time t.
  void Start(double t, std::size_t sequence, std::size_t layer);

  /// Finishes the current work item at time t.
  void Finish(double t);

  /// Busy time accumulated so far.
  double busy_time() const { return busy_; }

  /// Full transition log (chronological).
  const std::vector<StateTransition>& log() const { return log_; }

 private:
  StageId id_;
  StageState state_ = StageState::kIdle;
  double busy_ = 0;
  double started_at_ = 0;
  std::size_t current_seq_ = 0;
  std::size_t current_layer_ = 0;
  std::vector<StateTransition> log_;
};

}  // namespace latte
