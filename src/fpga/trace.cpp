#include "fpga/trace.hpp"

#include <fstream>
#include <sstream>

namespace latte {
namespace {

const char* StageName(std::size_t stage) {
  switch (stage) {
    case 0: return "MM|At-Sel";
    case 1: return "At-Comp";
    case 2: return "FdFwd";
    default: return "Stage";
  }
}

}  // namespace

std::string ToChromeTrace(const ScheduleResult& schedule) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  // Process-name metadata per stage.
  std::size_t max_stage = 0;
  for (const auto& j : schedule.jobs) max_stage = std::max(max_stage, j.stage);
  for (std::size_t s = 0; s <= max_stage; ++s) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << s
       << ",\"args\":{\"name\":\"" << StageName(s) << "\"}}";
  }
  for (const auto& j : schedule.jobs) {
    os << ",{\"name\":\"seq" << j.seq << " L" << j.layer
       << "\",\"ph\":\"X\",\"pid\":" << j.stage << ",\"tid\":" << j.instance
       << ",\"ts\":" << j.start * 1e6 << ",\"dur\":"
       << (j.end - j.start) * 1e6 << ",\"args\":{\"seq\":" << j.seq
       << ",\"layer\":" << j.layer << "}}";
  }
  os << "]}";
  return os.str();
}

std::string ToCsv(const ScheduleResult& schedule) {
  std::ostringstream os;
  os << "seq,layer,stage,instance,start_s,end_s\n";
  for (const auto& j : schedule.jobs) {
    os << j.seq << "," << j.layer << "," << j.stage << "," << j.instance
       << "," << j.start << "," << j.end << "\n";
  }
  return os.str();
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace latte
