#pragma once
// Event-driven simulator of the length-aware coarse-grained pipeline
// (Section 4.2, Fig 5).
//
// A batch of sequences -- already ordered by the caller's batching policy --
// streams through the coarse stages layer by layer: every sequence passes
// Stage 1..S of encoder layer 0, then layer 1, and so on ("the batch input
// is processed by the layer order").  Job J(i, l, s) models sequence i in
// layer l on stage s with duration T_s(len_i).
//
// Dependencies:
//   * dataflow: J(i,l,s) starts after J(i,l,s-1); J(i,l,0) after
//     J(i,l-1,S-1);
//   * structural: each stage serves its jobs in stream order (layer-major,
//     then sequence); with double buffers the stage frees as soon as it
//     finishes, without them it additionally waits until the downstream
//     stage has drained the previous item's buffer.
//
// Because sparse attention makes every stage O(n), feeding the batch in
// decreasing length order leaves no stage waiting on a longer downstream
// job -- the bubble-free property Fig 5 illustrates.  The simulator makes no
// such assumption; it simply reports the bubbles that a given order incurs.

#include <vector>

#include "fpga/state_machine.hpp"
#include "fpga/timing.hpp"

namespace latte {

/// Simulation knobs.
struct PipelineSimConfig {
  std::size_t layers = 12;       ///< encoder layers the batch passes through
  bool double_buffer = true;     ///< ping-pong buffers between stages
  double stage_switch_overhead = 0.0;  ///< fixed seconds added per job
  /// Instances per stage, R(G_k) of Section 4.2; jobs round-robin across
  /// instances.  Empty means one instance everywhere.  Each instance runs
  /// at the full per-instance stage timing model.
  std::vector<std::size_t> replication;
};

/// One scheduled unit of work.
struct TimedJob {
  std::size_t seq = 0;
  std::size_t layer = 0;
  std::size_t stage = 0;
  std::size_t instance = 0;  ///< which replica of the stage served it
  double start = 0;
  double end = 0;
};

/// Full schedule produced by the simulator.
struct ScheduleResult {
  std::vector<TimedJob> jobs;
  double makespan = 0;
  std::vector<double> stage_busy;  ///< busy seconds per stage

  /// Per-stage utilization over the interval each stage is active
  /// (first start to last finish), matching the paper's "each stage has
  /// almost 100% utilization".
  std::vector<double> StageUtilization() const;

  /// Time if stages did not overlap at all (sum of all job durations).
  double SerialTime() const;

  /// Latency saved by pipelining ("Saved" in Fig 5).
  double Saved() const { return SerialTime() - makespan; }

  /// Total idle (bubble) seconds summed across stages within their active
  /// windows.
  double BubbleTime() const;
};

/// Simulates the coarse pipeline for sequences of the given lengths
/// (processed in vector order) through `cfg.layers` identical encoder
/// layers with per-stage timing models `stages`.
ScheduleResult SimulatePipeline(const std::vector<std::size_t>& lengths,
                                const std::vector<StageTimingModel>& stages,
                                const PipelineSimConfig& cfg);

/// Renders a schedule as an ASCII Gantt chart (one row per stage), the
/// textual equivalent of Fig 5(b).  `width` is the number of time buckets.
std::string RenderGantt(const ScheduleResult& schedule, std::size_t stages,
                        std::size_t width = 100);

}  // namespace latte
