#pragma once
// DesignSpace: the legal knob menus and the seeded move operators.
//
// The space is menu-shaped on purpose: every knob draws from a small,
// explicitly enumerated set of values (SET's schedule-tree search has the
// same structure -- moves swap between enumerable alternatives, not over
// a continuum).  That keeps three properties the SA driver leans on:
//
//   * Bounded mutation.  A move changes exactly one thing -- one knob of
//     one replica, the fleet size by one, the router, or the cache -- and
//     lands on a menu value, so a chain can only random-walk inside the
//     enumerated space.
//   * Determinism.  Sample/Mutate consume randomness from a caller-owned
//     Rng only; equal seeds give equal walks on any host or thread count.
//   * Honest comparisons.  A backend-slot budget (sum over replicas of
//     workers x gang size) caps the hardware a design may provision, so
//     the search cannot "win" by simply buying more devices than the
//     hand-tuned baselines it is gated against.  Over-budget proposals
//     are *produced* by Mutate and rejected by CheckInSpace -- that is
//     the unified-validator rejection path the SA loop counts.

#include <cstddef>
#include <vector>

#include "search/design_point.hpp"
#include "tensor/rng.hpp"

namespace latte::search {

/// The enumerated design space.  Defaults describe a small NoC-class
/// deployment and are what bench_search explores.
struct DesignSpace {
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 4;
  /// Cap on BackendSlots(dp): total provisioned devices (a sharded gang
  /// of degree d behind w workers provisions w*d).
  std::size_t max_backend_slots = 6;

  // Per-replica menus.
  std::vector<std::size_t> max_batch_menu = {2, 4, 8, 16, 32};
  std::vector<std::size_t> max_tokens_menu = {0, 1024, 2048, 4096};
  std::vector<double> timeout_menu = {0.005, 0.01, 0.02, 0.05, 0.1};
  std::vector<std::size_t> workers_menu = {1, 2, 4};
  std::vector<std::size_t> queue_menu = {0, 64, 256};
  std::vector<std::size_t> top_k_menu = {16, 30, 64};
  std::vector<std::size_t> degree_menu = {2, 4};
  /// SLO targets the adaptive controller may aim for.  The ladder itself
  /// is canonical -- CanonicalAdaptiveLadder derived from the replica's
  /// top_k -- so the space only tunes the enabled bit and the SLO.
  std::vector<double> adapt_slo_menu = {0.05, 0.1, 0.2};

  // Router menus.
  std::vector<RouterPolicy> policy_menu = {
      RouterPolicy::kRoundRobin,          RouterPolicy::kJoinShortestQueue,
      RouterPolicy::kLeastOutstandingTokens, RouterPolicy::kLengthBucketed,
      RouterPolicy::kKeyAffinity,         RouterPolicy::kLongToSharded,
      RouterPolicy::kLeastDegraded};
  std::vector<std::vector<std::size_t>> edges_menu = {{152},
                                                      {105, 152, 219}};
  std::vector<std::size_t> threshold_menu = {128, 192, 256};

  // Cache menus.
  std::vector<ClusterCacheMode> cache_mode_menu = {
      ClusterCacheMode::kNone, ClusterCacheMode::kPerReplica,
      ClusterCacheMode::kShared};
  std::vector<std::size_t> cache_capacity_menu = {1u << 20, 8u << 20,
                                                  64u << 20};
  std::vector<double> ttl_menu = {0, 5, 30};
  std::vector<EvictionPolicy> eviction_menu = {EvictionPolicy::kLru,
                                               EvictionPolicy::kSegmentedLru};

  /// The deployment's fabric: every sharded gang prices its collectives
  /// on this interconnect (fixed -- the search tunes the design, not the
  /// datacenter).
  InterconnectConfig interconnect;
};

/// Total provisioned backend devices of a design: sum over replicas of
/// workers x (sharded ? degree : 1).
std::size_t BackendSlots(const DesignPoint& dp);

/// The one adaptive block the space admits for a replica with this
/// `top_k`: a three-rung ladder (full -> half -> quarter sparsity, the
/// last rung escalating uncertain results) with fixed accuracy labels and
/// the default controller bands.  Keeping the ladder canonical keeps the
/// space enumerable -- a move toggles the block or steps the SLO, never
/// free-form tier edits.
AdaptiveServingConfig CanonicalAdaptiveLadder(std::size_t top_k,
                                              double slo_p99_s);

/// CheckDesignPoint plus the space's own bounds: fleet size range, the
/// backend-slot budget, and menu membership of every knob.  Empty means
/// the design is legal *and* inside this space.
ConfigIssues CheckInSpace(const DesignSpace& space, const DesignPoint& dp);

/// Draws a uniform design from the space, then deterministically repairs
/// it to the backend-slot budget (shrinking workers, then gangs, then the
/// fleet).  The result always passes CheckInSpace.
DesignPoint SampleDesign(const DesignSpace& space, Rng& rng);

/// One bounded move: grow/shrink the fleet by one replica, step one knob
/// of one replica to a neighboring menu value, re-draw the router policy,
/// or step the cache.  The result stays menu-valued but may exceed the
/// slot budget -- callers reject via CheckInSpace (the SA loop's invalid-
/// mutation path).  Never mutates `dp` in place.
DesignPoint MutateDesign(const DesignSpace& space, const DesignPoint& dp,
                         Rng& rng);

}  // namespace latte::search
