#pragma once
// AnnealingSearch: parallel simulated-annealing chains over a DesignSpace.
//
// The loop is SET's `tries` idiom: several independent chains, each a
// geometric-cooling Metropolis walk, run concurrently and the best
// endpoint wins.  Chains never communicate, so the result is a pure
// function of (space, evaluator, config): chain k's walk is driven by an
// Rng seeded from (seed, k) alone, the merge is in chain order, and the
// acceptance rule uses a portable exp() -- identical output at ANY thread
// count, on any host.
//
// Invalid mutations are part of the design: MutateDesign may propose an
// over-budget or otherwise out-of-space design, CheckInSpace (the unified
// validators plus the space's own bounds) rejects it, and the chain counts
// it and moves on.  The validators ARE the feasibility oracle.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "search/design_space.hpp"
#include "search/evaluator.hpp"

namespace latte::search {

/// Annealing schedule and fan-out.
struct AnnealingConfig {
  std::size_t chains = 4;  ///< independent restarts (SET's `tries`)
  std::size_t steps = 200;  ///< proposals per chain
  /// Starting temperature; 0 auto-scales to the chain's initial cost (a
  /// move twice as bad as the start is accepted with prob 1/e at step 0).
  double initial_temp = 0;
  double cooling = 0.96;    ///< geometric decay per step
  double min_temp = 1e-12;  ///< temperature floor
  std::uint64_t seed = 1;
  std::size_t threads = 0;  ///< chain-pool width; 0 = hardware
};

/// Per-chain accounting.
struct ChainStats {
  std::size_t chain = 0;
  std::size_t proposed = 0;  ///< mutations drawn
  std::size_t invalid = 0;   ///< rejected by CheckInSpace or the evaluator
  std::size_t accepted = 0;  ///< moves taken
  std::size_t uphill = 0;    ///< accepted cost-increasing moves
  double best_cost = 0;      ///< best valid cost the chain saw (+inf: none)
};

/// One point of the Pareto front over (p99 down, throughput up, energy
/// down).
struct ParetoEntry {
  DesignPoint point;
  DesignScore score;
};

/// Everything a search run produces.
struct SearchResult {
  DesignPoint best;
  DesignScore best_score;     ///< valid == false when no chain found one
  std::size_t best_chain = 0;
  std::vector<ChainStats> chains;
  /// Non-dominated evaluated designs, deduplicated, deterministically
  /// ordered by (p99, -throughput, energy, serialized design).
  std::vector<ParetoEntry> pareto;
  std::size_t evaluations = 0;  ///< evaluator calls across all chains
};

/// exp(x) for x <= 0 with platform-stable results (floor + ldexp + a
/// fixed-degree Taylor kernel -- no libm exp, whose last-bit rounding
/// varies across implementations and would fork SA walks between hosts).
double PortableExp(double x);

/// Runs `cfg.chains` independent annealing chains over the space and
/// merges their results.  Deterministic in (space, evaluator, cfg) at any
/// `threads` value.
SearchResult AnnealSearch(const DesignSpace& space,
                          const DesignEvaluator& evaluator,
                          const AnnealingConfig& cfg);

}  // namespace latte::search
