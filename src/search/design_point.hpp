#pragma once
// DesignPoint: the whole serving deployment as one value.
//
// PRs 1-6 scattered the tunable surface across per-module config structs
// (engine, batch former, cluster/replica/router, cache store, shard
// gang).  A search loop needs to mutate "the design" as a value, compare
// two designs, and reproduce a recorded winner exactly -- so this header
// aggregates the knobs that define a deployment into one copyable
// struct with
//
//   * CheckDesignPoint: the unified named-field validation (composes the
//     per-module CheckXxxConfig functions into dot-path issues),
//   * FromDesignPoint adapters producing the existing per-module configs
//     bit-for-bit (current call sites keep their constructors; the
//     adapters only assemble what a caller would have written by hand),
//   * an exact JSON round-trip (emit via bench/json_writer.hpp's
//     ValueExact, parse via search/json_io.hpp), so any recorded design
//     -- a bench winner, a Pareto entry -- reproduces the same
//     deployment byte-for-byte.
//
// What is deliberately NOT in a DesignPoint: the harness (model, trace,
// service model, execute flag, seeds).  Those belong to the evaluator --
// a design is a deployment shape, not an experiment.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"
#include "config/check.hpp"
#include "search/json_io.hpp"
#include "serve/engine.hpp"

namespace latte::obs {
class JsonWriter;  // obs/json_writer.hpp; only referenced here, so the
                   // public umbrella stays consumable with -I src alone
}  // namespace latte::obs

namespace latte::search {

/// One replica's slice of the design: batching, capacity, sparsity and
/// backend shape.
struct ReplicaDesign {
  BatchFormerConfig former;        ///< seals: capacity / token budget /
                                   ///< timeout, plus length sorting
  std::size_t workers = 1;         ///< concurrent backend slots
  std::size_t queue_capacity = 0;  ///< waiting-room bound; 0 = unbounded
  std::size_t top_k = 30;          ///< sparse attention candidates of the
                                   ///< replica's accelerator
  BackendMode backend = BackendMode::kReplicated;
  ShardServiceConfig shard;  ///< gang shape; read when backend == kSharded
  /// SLO-driven degradation controller; when enabled, tiers[0].top_k must
  /// equal `top_k` (tier 0 is the full-quality service).
  AdaptiveServingConfig adapt;
};

/// The full deployment: fleet, router, fleet cache.
struct DesignPoint {
  std::vector<ReplicaDesign> replicas;
  RouterConfig router;
  ClusterCacheMode cache_mode = ClusterCacheMode::kNone;
  ResultCacheConfig cache;  ///< store knobs; read when cache_mode != kNone
};

/// Names every illegal field across the aggregate with dot-paths
/// ("replicas[1].former.timeout_s", "router.length_edges",
/// "cache.protected_fraction"); empty means legal.  This is the cheap
/// non-throwing rejection test the SA loop runs on every mutation.
ConfigIssues CheckDesignPoint(const DesignPoint& dp);

/// The ServingEngineConfig a replica design implies.  Harness-owned
/// fields (service model, cache store, execute, threads, embed_seed) are
/// left at their defaults for the caller to fill; everything a
/// DesignPoint owns maps field-for-field, so existing call sites that
/// build the struct by hand stay bit-exact.
ServingEngineConfig EngineConfigFromDesignPoint(const ReplicaDesign& rd);

/// The ClusterConfig a design implies (replicas via
/// EngineConfigFromDesignPoint, router and fleet-cache verbatim).
ClusterConfig ClusterConfigFromDesignPoint(const DesignPoint& dp);

/// Emits the design as one JSON object value into an open writer (the
/// caller has already positioned a Key).  Doubles use ValueExact, so the
/// round-trip is bit-exact.
void WriteDesignPointJson(obs::JsonWriter& json, const DesignPoint& dp);

/// The design as a standalone JSON document.
std::string DesignPointToJson(const DesignPoint& dp);

/// Parses a design from a JSON value / document produced by
/// WriteDesignPointJson.  Throws std::invalid_argument on malformed or
/// incomplete input (a recorded design must reproduce exactly or fail
/// loudly).
DesignPoint DesignPointFromJsonValue(const JsonValue& v);
DesignPoint DesignPointFromJson(std::string_view text);

/// Backend mode names ("replicated" / "sharded"), mirroring the other
/// enum-name helpers.
const char* BackendModeName(BackendMode mode);

}  // namespace latte::search
