#pragma once
// Minimal JSON reader for recorded DesignPoints.
//
// The emit side of the DesignPoint round-trip reuses the streaming
// bench/json_writer.hpp (ValueExact keeps doubles bit-exact); this is the
// parse side: a dependency-free recursive-descent parser covering exactly
// the JSON that writer produces -- objects, arrays, strings with the
// writer's escapes, numbers, booleans and null.  Parse errors throw
// std::invalid_argument with a byte offset, because a recorded design
// that does not reproduce exactly is a corrupt baseline, not a soft
// failure.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace latte::search {

/// One parsed JSON value (a small tagged union; object member order is
/// preserved so re-emission is deterministic).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// The member named `key`, or nullptr when absent (or not an object).
  const JsonValue* Find(std::string_view key) const;

  /// Typed accessors: throw std::invalid_argument naming `what` when the
  /// value has the wrong kind (the DesignPoint parser's error currency).
  double AsNumber(std::string_view what) const;
  std::size_t AsSize(std::string_view what) const;
  bool AsBool(std::string_view what) const;
  const std::string& AsString(std::string_view what) const;

  /// The member named `key` with the requested kind; throws when missing.
  const JsonValue& Get(std::string_view key) const;
};

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).  Throws std::invalid_argument on malformed input.
JsonValue ParseJson(std::string_view text);

}  // namespace latte::search
