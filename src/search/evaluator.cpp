#include "search/evaluator.hpp"

#include <cmath>
#include <limits>

#include "cluster/cluster.hpp"
#include "metrics/energy.hpp"
#include "search/design_space.hpp"
#include "serve/service_model.hpp"

namespace latte::search {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double PowInt(double base, int n) {
  double out = 1;
  for (int i = 0; i < n; ++i) out *= base;
  return out;
}

/// Dynamic energy of executing one request of `length` tokens on a slot
/// with `top_k` sparse candidates: DSP MACs plus HBM traffic of the full
/// stack (latency_s = 0 -- the static term is priced fleet-wide below).
double RequestDynamicJoules(const ModelConfig& model,
                            const AcceleratorConfig& accel,
                            std::size_t length, std::size_t top_k) {
  const double n = static_cast<double>(length);
  const double macs =
      model.TotalModelFlops(n, AttentionMode::kSparseTopK, top_k) / 2.0;
  const double offchip_bytes =
      model.TotalModelOffchipElems(n, AttentionMode::kSparseTopK, top_k) *
      accel.element_bytes;
  return EstimateBatchEnergy(macs, /*lut_ops=*/0, /*onchip_bytes=*/0,
                             offchip_bytes, /*latency_s=*/0)
      .TotalJoules();
}

}  // namespace

EvaluatorConfig::EvaluatorConfig()
    : model(ScaledDown(BertBase(), 6)), dataset(Squad()) {
  // A skewed ~4s trace: long enough that batching and caching matter,
  // short enough that one evaluation costs milliseconds.
  trace.arrival_rate_rps = 60;
  trace.requests = 192;
  trace.population = 48;
  trace.skew = 1.0;
  trace.seed = 7;
}

bool Dominates(const DesignScore& a, const DesignScore& b) {
  if (!a.valid) return false;
  if (!b.valid) return true;
  const bool no_worse = a.p99_s <= b.p99_s &&
                        a.throughput_rps >= b.throughput_rps &&
                        a.energy_j <= b.energy_j;
  const bool better = a.p99_s < b.p99_s ||
                      a.throughput_rps > b.throughput_rps ||
                      a.energy_j < b.energy_j;
  return no_worse && better;
}

DesignEvaluator::DesignEvaluator(const EvaluatorConfig& cfg)
    : cfg_(cfg),
      model_(cfg.model, cfg.model_seed),
      trace_(GenerateZipfTrace(cfg.trace, cfg.dataset)) {}

DesignScore DesignEvaluator::Evaluate(const DesignPoint& dp) const {
  DesignScore score;
  score.cost = kInf;
  score.issues = CheckDesignPoint(dp);
  if (!score.issues.empty()) return score;

  ClusterConfig ccfg = ClusterConfigFromDesignPoint(dp);
  for (std::size_t i = 0; i < ccfg.replicas.size(); ++i) {
    ServingEngineConfig& engine = ccfg.replicas[i].engine;
    engine.execute = false;  // accounting-only twin: the SA oracle
    engine.threads = 1;
    ServiceModelSpec spec;
    spec.base = ServiceModelSpec::Base::kAccelerator;
    spec.model = cfg_.model;
    spec.accel = cfg_.accel;
    spec.accel.top_k = dp.replicas[i].top_k;
    engine.service = BuildServiceModel(spec);
    // An adaptive replica prices each ladder rung at its own sparsity
    // (the engine falls back to flat tier pricing otherwise, which would
    // make degradation latency-neutral and the knob a no-op to the SA).
    if (engine.adapt.enabled) {
      engine.tier_services = BuildTierServiceModels(spec, engine.adapt.tiers);
    }
  }

  ServingCluster cluster(model_, ccfg);
  const ClusterResult result = cluster.Replay(trace_);
  const ServingReport& fleet = result.fleet();

  score.offered = result.routing.offered;
  score.completed = fleet.requests;
  score.rejected = result.routing.rejected;
  score.p99_s = fleet.p99_latency_s;
  score.throughput_rps = fleet.throughput_rps;
  if (score.completed == 0 || !(score.throughput_rps > 0)) {
    AddIssue(score.issues, "design",
             "completed no requests on the evaluation trace");
    return score;
  }

  // Dynamic energy: every request that reached a replica is priced at
  // that replica's sparsity, then scaled by the fraction the replica
  // actually executed (cache hits compute nothing).
  std::vector<double> routed_joules(dp.replicas.size(), 0);
  std::vector<std::size_t> routed_count(dp.replicas.size(), 0);
  for (std::size_t p = 0; p < result.replica_of.size(); ++p) {
    const std::size_t r = result.replica_of[p];
    if (r == ClusterResult::npos()) continue;
    routed_joules[r] += RequestDynamicJoules(cfg_.model, cfg_.accel,
                                             trace_[p].length,
                                             dp.replicas[r].top_k);
    ++routed_count[r];
  }
  double dynamic_j = 0;
  for (std::size_t r = 0; r < dp.replicas.size(); ++r) {
    if (routed_count[r] == 0) continue;
    const double executed_frac =
        static_cast<double>(result.report.replicas[r].requests) /
        static_cast<double>(routed_count[r]);
    dynamic_j += routed_joules[r] * std::min(1.0, executed_frac);
  }
  // Static energy: every provisioned slot idles (or works) for the whole
  // span, so over-provisioned fleets pay for their silicon.
  const double span_s =
      static_cast<double>(score.completed) / score.throughput_rps;
  const double static_w = FpgaPowerWatts(cfg_.accel.spec, 0.0);
  const double static_j =
      static_w * span_s * static_cast<double>(BackendSlots(dp));
  score.energy_j = dynamic_j + static_j;

  // SET's e^n * d: delay (p99, inflated by shed load) times energy^n.
  const double reject_frac =
      score.offered == 0
          ? 0
          : static_cast<double>(score.rejected) /
                static_cast<double>(score.offered);
  score.cost = score.p99_s * (1.0 + cfg_.reject_penalty * reject_frac) *
               PowInt(score.energy_j, cfg_.energy_exponent);
  score.valid = std::isfinite(score.cost);
  if (!score.valid) score.cost = kInf;
  return score;
}

}  // namespace latte::search
