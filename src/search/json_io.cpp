#include "search/json_io.hpp"

#include <cstdlib>
#include <stdexcept>

namespace latte::search {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::AsNumber(std::string_view what) const {
  if (kind != Kind::kNumber) {
    throw std::invalid_argument("json: " + std::string(what) +
                                " must be a number");
  }
  return number;
}

std::size_t JsonValue::AsSize(std::string_view what) const {
  const double v = AsNumber(what);
  if (v < 0) {
    throw std::invalid_argument("json: " + std::string(what) +
                                " must be non-negative");
  }
  return static_cast<std::size_t>(v);
}

bool JsonValue::AsBool(std::string_view what) const {
  if (kind != Kind::kBool) {
    throw std::invalid_argument("json: " + std::string(what) +
                                " must be a boolean");
  }
  return boolean;
}

const std::string& JsonValue::AsString(std::string_view what) const {
  if (kind != Kind::kString) {
    throw std::invalid_argument("json: " + std::string(what) +
                                " must be a string");
  }
  return string;
}

const JsonValue& JsonValue::Get(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) {
    throw std::invalid_argument("json: missing key \"" + std::string(key) +
                                "\"");
  }
  return *v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue v = ParseValue();
    SkipWhitespace();
    if (at_ != text_.size()) Fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) const {
    throw std::invalid_argument("json: " + why + " at offset " +
                                std::to_string(at_));
  }

  void SkipWhitespace() {
    while (at_ < text_.size()) {
      const char c = text_[at_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++at_;
    }
  }

  char Peek() {
    if (at_ >= text_.size()) Fail("unexpected end of input");
    return text_[at_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++at_;
  }

  bool Consume(std::string_view word) {
    if (text_.substr(at_, word.size()) != word) return false;
    at_ += word.size();
    return true;
  }

  JsonValue ParseValue() {
    SkipWhitespace();
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = ParseString();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        if (Consume("true")) {
          v.boolean = true;
        } else if (Consume("false")) {
          v.boolean = false;
        } else {
          Fail("malformed literal");
        }
        return v;
      }
      case 'n': {
        if (!Consume("null")) Fail("malformed literal");
        return JsonValue{};
      }
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Peek() == '}') {
      ++at_;
      return v;
    }
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      v.object.emplace_back(std::move(key), ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++at_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Peek() == ']') {
      ++at_;
      return v;
    }
    while (true) {
      v.array.push_back(ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++at_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (at_ >= text_.size()) Fail("unterminated string");
      const char c = text_[at_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_ >= text_.size()) Fail("unterminated escape");
      const char esc = text_[at_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (at_ + 4 > text_.size()) Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[at_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("malformed \\u escape");
            }
          }
          // The writer only emits \u00xx control escapes; reject the rest
          // rather than silently mangling multi-byte text.
          if (code > 0xff) Fail("unsupported \\u escape beyond U+00FF");
          out += static_cast<char>(code);
          break;
        }
        default:
          Fail("unknown escape");
      }
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = at_;
    if (Peek() == '-') ++at_;
    while (at_ < text_.size()) {
      const char c = text_[at_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++at_;
      } else {
        break;
      }
    }
    if (at_ == start) Fail("expected a value");
    const std::string token(text_.substr(start, at_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      at_ = start;
      Fail("malformed number");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = value;
    return v;
  }

  std::string_view text_;
  std::size_t at_ = 0;
};

}  // namespace

JsonValue ParseJson(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace latte::search
