#include "search/design_point.hpp"

#include <stdexcept>

#include "obs/json_writer.hpp"

namespace latte::search {

namespace {

template <typename Enum, typename NameFn>
Enum EnumFromName(const std::string& name, std::initializer_list<Enum> values,
                  NameFn name_of, std::string_view what) {
  for (const Enum v : values) {
    if (name == name_of(v)) return v;
  }
  throw std::invalid_argument("DesignPoint: unknown " + std::string(what) +
                              " \"" + name + "\"");
}

RouterPolicy RouterPolicyFromName(const std::string& name) {
  return EnumFromName(name,
                      {RouterPolicy::kRoundRobin,
                       RouterPolicy::kJoinShortestQueue,
                       RouterPolicy::kLeastOutstandingTokens,
                       RouterPolicy::kLengthBucketed,
                       RouterPolicy::kKeyAffinity,
                       RouterPolicy::kLongToSharded,
                       RouterPolicy::kLeastDegraded},
                      RouterPolicyName, "router policy");
}

EvictionPolicy EvictionPolicyFromName(const std::string& name) {
  return EnumFromName(name,
                      {EvictionPolicy::kLru, EvictionPolicy::kSegmentedLru},
                      EvictionPolicyName, "eviction policy");
}

CacheKeyPolicy CacheKeyPolicyFromName(const std::string& name) {
  return EnumFromName(
      name, {CacheKeyPolicy::kRequestId, CacheKeyPolicy::kEmbeddingHash},
      CacheKeyPolicyName, "cache key policy");
}

ClusterCacheMode ClusterCacheModeFromName(const std::string& name) {
  return EnumFromName(name,
                      {ClusterCacheMode::kNone, ClusterCacheMode::kPerReplica,
                       ClusterCacheMode::kShared},
                      ClusterCacheModeName, "cache mode");
}

BackendMode BackendModeFromName(const std::string& name) {
  return EnumFromName(name,
                      {BackendMode::kReplicated, BackendMode::kSharded},
                      BackendModeName, "backend mode");
}

}  // namespace

const char* BackendModeName(BackendMode mode) {
  switch (mode) {
    case BackendMode::kReplicated:
      return "replicated";
    case BackendMode::kSharded:
      return "sharded";
  }
  return "unknown";
}

ConfigIssues CheckDesignPoint(const DesignPoint& dp) {
  ConfigIssues issues;
  if (dp.replicas.empty()) {
    AddIssue(issues, "replicas",
             "must name at least one replica (an empty fleet cannot serve)");
  }
  for (std::size_t i = 0; i < dp.replicas.size(); ++i) {
    const ReplicaDesign& rd = dp.replicas[i];
    const std::string prefix = "replicas[" + std::to_string(i) + "]";
    MergePrefixed(issues, prefix + ".former",
                  CheckBatchFormerConfig(rd.former));
    if (rd.workers == 0) {
      AddIssue(issues, prefix + ".workers",
               "must be >= 1 (no backend slot to account against)");
    }
    if (rd.top_k == 0) {
      AddIssue(issues, prefix + ".top_k",
               "must be >= 1 (0 selects no attention candidates)");
    }
    if (rd.backend == BackendMode::kSharded) {
      MergePrefixed(issues, prefix + ".shard",
                    CheckShardServiceConfig(rd.shard));
    }
    if (rd.adapt.enabled) {
      MergePrefixed(issues, prefix + ".adapt",
                    CheckAdaptiveServingConfig(rd.adapt));
      if (!rd.adapt.tiers.empty() && rd.adapt.tiers[0].top_k != rd.top_k) {
        AddIssue(issues, prefix + ".adapt.tiers[0].top_k",
                 "must equal the replica's top_k (" +
                     std::to_string(rd.top_k) +
                     "): tier 0 is the full-quality service");
      }
    }
  }
  MergePrefixed(issues, "router",
                CheckRouterConfig(dp.router, dp.replicas.size()));
  if (dp.cache_mode != ClusterCacheMode::kNone) {
    MergePrefixed(issues, "cache", CheckResultCacheConfig(dp.cache));
    for (std::size_t i = 0; i < dp.replicas.size(); ++i) {
      if (dp.replicas[i].adapt.enabled) {
        AddIssue(issues,
                 "replicas[" + std::to_string(i) + "].adapt.enabled",
                 "conflicts with the fleet cache (the engine forbids "
                 "cache + adaptive); drop the cache or this replica's "
                 "adaptive layer");
      }
    }
  }
  return issues;
}

ServingEngineConfig EngineConfigFromDesignPoint(const ReplicaDesign& rd) {
  ServingEngineConfig cfg;
  cfg.former = rd.former;
  cfg.workers = rd.workers;
  cfg.queue_capacity = rd.queue_capacity;
  cfg.inference.sparse.top_k = rd.top_k;
  cfg.backend = rd.backend;
  cfg.shard = rd.shard;
  cfg.adapt = rd.adapt;
  return cfg;
}

ClusterConfig ClusterConfigFromDesignPoint(const DesignPoint& dp) {
  ClusterConfig cfg;
  cfg.replicas.reserve(dp.replicas.size());
  for (const ReplicaDesign& rd : dp.replicas) {
    ReplicaConfig rep;
    rep.engine = EngineConfigFromDesignPoint(rd);
    cfg.replicas.push_back(std::move(rep));
  }
  cfg.router = dp.router;
  cfg.cache.mode = dp.cache_mode;
  cfg.cache.config = dp.cache;
  return cfg;
}

void WriteDesignPointJson(obs::JsonWriter& json, const DesignPoint& dp) {
  json.BeginObject();
  json.Key("replicas").BeginArray();
  for (const ReplicaDesign& rd : dp.replicas) {
    json.BeginObject();
    json.Key("max_batch").Value(rd.former.max_batch);
    json.Key("max_tokens").Value(rd.former.max_tokens);
    json.Key("timeout_s").ValueExact(rd.former.timeout_s);
    json.Key("sort_by_length").Value(rd.former.sort_by_length);
    json.Key("workers").Value(rd.workers);
    json.Key("queue_capacity").Value(rd.queue_capacity);
    json.Key("top_k").Value(rd.top_k);
    json.Key("backend").Value(BackendModeName(rd.backend));
    json.Key("shard").BeginObject();
    json.Key("degree").Value(rd.shard.degree);
    json.Key("row_parallel_ffn2").Value(rd.shard.row_parallel_ffn2);
    json.Key("min_sharded_len").Value(rd.shard.min_sharded_len);
    json.Key("interconnect").BeginObject();
    json.Key("link_bytes_per_s").ValueExact(rd.shard.interconnect.link_bytes_per_s);
    json.Key("hop_latency_s").ValueExact(rd.shard.interconnect.hop_latency_s);
    json.Key("mesh_cols").Value(rd.shard.interconnect.mesh_cols);
    json.Key("dram_spill_bytes").Value(rd.shard.interconnect.dram_spill_bytes);
    json.Key("dram_bytes_per_s").ValueExact(rd.shard.interconnect.dram_bytes_per_s);
    json.EndObject();
    json.EndObject();
    json.Key("adapt").BeginObject();
    json.Key("enabled").Value(rd.adapt.enabled);
    json.Key("slo_p99_s").ValueExact(rd.adapt.slo_p99_s);
    json.Key("accuracy_floor").ValueExact(rd.adapt.accuracy_floor);
    json.Key("epoch_s").ValueExact(rd.adapt.epoch_s);
    json.Key("low_band").ValueExact(rd.adapt.low_band);
    json.Key("high_band").ValueExact(rd.adapt.high_band);
    json.Key("queue_ref").Value(rd.adapt.queue_ref);
    json.Key("latency_window").Value(rd.adapt.latency_window);
    json.Key("escalate_margin").ValueExact(rd.adapt.escalate_margin);
    json.Key("escalate_bits").Value(static_cast<std::size_t>(rd.adapt.escalate_bits));
    json.Key("escalate_rows").Value(rd.adapt.escalate_rows);
    json.Key("tiers").BeginArray();
    for (const ServiceTier& tier : rd.adapt.tiers) {
      json.BeginObject();
      json.Key("top_k").Value(tier.top_k);
      json.Key("escalate").Value(tier.escalate);
      json.Key("accuracy").ValueExact(tier.accuracy);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.Key("router").BeginObject();
  json.Key("policy").Value(RouterPolicyName(dp.router.policy));
  json.Key("length_edges").BeginArray();
  for (const std::size_t edge : dp.router.length_edges) json.Value(edge);
  json.EndArray();
  json.Key("long_len_threshold").Value(dp.router.long_len_threshold);
  json.EndObject();
  json.Key("cache").BeginObject();
  json.Key("mode").Value(ClusterCacheModeName(dp.cache_mode));
  json.Key("key_policy").Value(CacheKeyPolicyName(dp.cache.key_policy));
  json.Key("eviction").Value(EvictionPolicyName(dp.cache.eviction));
  json.Key("capacity_bytes").Value(dp.cache.capacity_bytes);
  json.Key("ttl_s").ValueExact(dp.cache.ttl_s);
  json.Key("hit_latency_s").ValueExact(dp.cache.hit_latency_s);
  json.Key("protected_fraction").ValueExact(dp.cache.protected_fraction);
  json.Key("entry_overhead_bytes").Value(dp.cache.entry_overhead_bytes);
  json.EndObject();
  json.EndObject();
}

std::string DesignPointToJson(const DesignPoint& dp) {
  obs::JsonWriter json;
  WriteDesignPointJson(json, dp);
  return json.str();
}

DesignPoint DesignPointFromJsonValue(const JsonValue& v) {
  if (v.kind != JsonValue::Kind::kObject) {
    throw std::invalid_argument("DesignPoint: document must be an object");
  }
  DesignPoint dp;
  const JsonValue& replicas = v.Get("replicas");
  if (replicas.kind != JsonValue::Kind::kArray) {
    throw std::invalid_argument("DesignPoint: replicas must be an array");
  }
  for (const JsonValue& rv : replicas.array) {
    ReplicaDesign rd;
    rd.former.max_batch = rv.Get("max_batch").AsSize("max_batch");
    rd.former.max_tokens = rv.Get("max_tokens").AsSize("max_tokens");
    rd.former.timeout_s = rv.Get("timeout_s").AsNumber("timeout_s");
    rd.former.sort_by_length =
        rv.Get("sort_by_length").AsBool("sort_by_length");
    rd.workers = rv.Get("workers").AsSize("workers");
    rd.queue_capacity = rv.Get("queue_capacity").AsSize("queue_capacity");
    rd.top_k = rv.Get("top_k").AsSize("top_k");
    rd.backend = BackendModeFromName(rv.Get("backend").AsString("backend"));
    const JsonValue& sv = rv.Get("shard");
    rd.shard.degree = sv.Get("degree").AsSize("shard.degree");
    rd.shard.row_parallel_ffn2 =
        sv.Get("row_parallel_ffn2").AsBool("shard.row_parallel_ffn2");
    rd.shard.min_sharded_len =
        sv.Get("min_sharded_len").AsSize("shard.min_sharded_len");
    const JsonValue& iv = sv.Get("interconnect");
    rd.shard.interconnect.link_bytes_per_s =
        iv.Get("link_bytes_per_s").AsNumber("interconnect.link_bytes_per_s");
    rd.shard.interconnect.hop_latency_s =
        iv.Get("hop_latency_s").AsNumber("interconnect.hop_latency_s");
    rd.shard.interconnect.mesh_cols =
        iv.Get("mesh_cols").AsSize("interconnect.mesh_cols");
    rd.shard.interconnect.dram_spill_bytes =
        iv.Get("dram_spill_bytes").AsSize("interconnect.dram_spill_bytes");
    rd.shard.interconnect.dram_bytes_per_s =
        iv.Get("dram_bytes_per_s").AsNumber("interconnect.dram_bytes_per_s");
    const JsonValue& av = rv.Get("adapt");
    rd.adapt.enabled = av.Get("enabled").AsBool("adapt.enabled");
    rd.adapt.slo_p99_s = av.Get("slo_p99_s").AsNumber("adapt.slo_p99_s");
    rd.adapt.accuracy_floor =
        av.Get("accuracy_floor").AsNumber("adapt.accuracy_floor");
    rd.adapt.epoch_s = av.Get("epoch_s").AsNumber("adapt.epoch_s");
    rd.adapt.low_band = av.Get("low_band").AsNumber("adapt.low_band");
    rd.adapt.high_band = av.Get("high_band").AsNumber("adapt.high_band");
    rd.adapt.queue_ref = av.Get("queue_ref").AsSize("adapt.queue_ref");
    rd.adapt.latency_window =
        av.Get("latency_window").AsSize("adapt.latency_window");
    rd.adapt.escalate_margin =
        av.Get("escalate_margin").AsNumber("adapt.escalate_margin");
    rd.adapt.escalate_bits = static_cast<int>(
        av.Get("escalate_bits").AsSize("adapt.escalate_bits"));
    rd.adapt.escalate_rows =
        av.Get("escalate_rows").AsSize("adapt.escalate_rows");
    const JsonValue& tiers = av.Get("tiers");
    if (tiers.kind != JsonValue::Kind::kArray) {
      throw std::invalid_argument(
          "DesignPoint: adapt.tiers must be an array");
    }
    for (const JsonValue& tv : tiers.array) {
      ServiceTier tier;
      tier.top_k = tv.Get("top_k").AsSize("adapt.tiers[].top_k");
      tier.escalate = tv.Get("escalate").AsBool("adapt.tiers[].escalate");
      tier.accuracy = tv.Get("accuracy").AsNumber("adapt.tiers[].accuracy");
      rd.adapt.tiers.push_back(tier);
    }
    dp.replicas.push_back(rd);
  }
  const JsonValue& router = v.Get("router");
  dp.router.policy =
      RouterPolicyFromName(router.Get("policy").AsString("router.policy"));
  const JsonValue& edges = router.Get("length_edges");
  if (edges.kind != JsonValue::Kind::kArray) {
    throw std::invalid_argument(
        "DesignPoint: router.length_edges must be an array");
  }
  for (const JsonValue& e : edges.array) {
    dp.router.length_edges.push_back(e.AsSize("router.length_edges[]"));
  }
  dp.router.long_len_threshold =
      router.Get("long_len_threshold").AsSize("router.long_len_threshold");
  const JsonValue& cache = v.Get("cache");
  dp.cache_mode =
      ClusterCacheModeFromName(cache.Get("mode").AsString("cache.mode"));
  dp.cache.enabled = dp.cache_mode != ClusterCacheMode::kNone;
  dp.cache.key_policy =
      CacheKeyPolicyFromName(cache.Get("key_policy").AsString("cache.key_policy"));
  dp.cache.eviction =
      EvictionPolicyFromName(cache.Get("eviction").AsString("cache.eviction"));
  dp.cache.capacity_bytes =
      cache.Get("capacity_bytes").AsSize("cache.capacity_bytes");
  dp.cache.ttl_s = cache.Get("ttl_s").AsNumber("cache.ttl_s");
  dp.cache.hit_latency_s =
      cache.Get("hit_latency_s").AsNumber("cache.hit_latency_s");
  dp.cache.protected_fraction =
      cache.Get("protected_fraction").AsNumber("cache.protected_fraction");
  dp.cache.entry_overhead_bytes =
      cache.Get("entry_overhead_bytes").AsSize("cache.entry_overhead_bytes");
  return dp;
}

DesignPoint DesignPointFromJson(std::string_view text) {
  return DesignPointFromJsonValue(ParseJson(text));
}

}  // namespace latte::search
