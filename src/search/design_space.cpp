#include "search/design_space.hpp"

#include <algorithm>
#include <string>

namespace latte::search {

namespace {

template <typename T>
bool Contains(const std::vector<T>& menu, const T& v) {
  return std::find(menu.begin(), menu.end(), v) != menu.end();
}

/// Uniform draw from a menu.
template <typename T>
const T& Pick(const std::vector<T>& menu, Rng& rng) {
  return menu[rng.NextIndex(menu.size())];
}

/// One step to a neighboring menu entry (reflecting at the ends so a
/// boundary value always moves when the menu has >= 2 entries).  A value
/// that fell off the menu re-enters with a uniform draw.
template <typename T>
T Neighbor(const std::vector<T>& menu, const T& value, Rng& rng) {
  const auto it = std::find(menu.begin(), menu.end(), value);
  if (it == menu.end()) return Pick(menu, rng);
  if (menu.size() < 2) return value;
  const std::size_t idx = static_cast<std::size_t>(it - menu.begin());
  const bool up = rng.NextIndex(2) == 1;
  std::size_t next;
  if (up) {
    next = idx + 1 < menu.size() ? idx + 1 : idx - 1;
  } else {
    next = idx > 0 ? idx - 1 : idx + 1;
  }
  return menu[next];
}

/// The inert gang config a replicated replica carries: smallest legal
/// degree on the space's fabric, so designs stay canonical (two designs
/// differing only in an unread shard block would be distinct JSON).
ShardServiceConfig CanonicalShard(const DesignSpace& space) {
  ShardServiceConfig shard;
  shard.degree = space.degree_menu.empty() ? 2 : space.degree_menu.front();
  shard.interconnect = space.interconnect;
  return shard;
}

/// Canonical store knobs for cache_mode == kNone.
ResultCacheConfig NoCache() { return ResultCacheConfig{}; }

/// Field-exact comparison of two adaptive blocks (CheckInSpace accepts
/// only the canonical ladder, so equality is the membership test).
bool SameAdaptive(const AdaptiveServingConfig& a,
                  const AdaptiveServingConfig& b) {
  if (a.enabled != b.enabled || a.tiers.size() != b.tiers.size()) {
    return false;
  }
  for (std::size_t t = 0; t < a.tiers.size(); ++t) {
    if (a.tiers[t].top_k != b.tiers[t].top_k ||
        a.tiers[t].escalate != b.tiers[t].escalate ||
        a.tiers[t].accuracy != b.tiers[t].accuracy) {
      return false;
    }
  }
  return a.slo_p99_s == b.slo_p99_s &&
         a.accuracy_floor == b.accuracy_floor && a.epoch_s == b.epoch_s &&
         a.low_band == b.low_band && a.high_band == b.high_band &&
         a.queue_ref == b.queue_ref &&
         a.latency_window == b.latency_window &&
         a.escalate_margin == b.escalate_margin &&
         a.escalate_bits == b.escalate_bits &&
         a.escalate_rows == b.escalate_rows;
}

ReplicaDesign SampleReplica(const DesignSpace& space, Rng& rng) {
  ReplicaDesign rd;
  rd.former.max_batch = Pick(space.max_batch_menu, rng);
  rd.former.max_tokens = Pick(space.max_tokens_menu, rng);
  rd.former.timeout_s = Pick(space.timeout_menu, rng);
  rd.former.sort_by_length = rng.NextIndex(2) == 1;
  rd.workers = Pick(space.workers_menu, rng);
  rd.queue_capacity = Pick(space.queue_menu, rng);
  rd.top_k = Pick(space.top_k_menu, rng);
  rd.shard = CanonicalShard(space);
  // A quarter of sampled replicas start sharded: gangs are the rarer
  // shape, and mutation can always flip the backend later.
  if (rng.NextIndex(4) == 0) {
    rd.backend = BackendMode::kSharded;
    rd.shard.degree = Pick(space.degree_menu, rng);
  }
  // Likewise a quarter start with the adaptive layer on (mutation can
  // toggle it either way later).
  if (!space.adapt_slo_menu.empty() && rng.NextIndex(4) == 0) {
    rd.adapt =
        CanonicalAdaptiveLadder(rd.top_k, Pick(space.adapt_slo_menu, rng));
  }
  return rd;
}

/// Re-draws the aux fields a router policy reads and clears the ones it
/// does not, so designs stay canonical across policy changes.
void CanonicalizeRouter(const DesignSpace& space, RouterConfig& router,
                        Rng& rng) {
  router.length_edges.clear();
  router.long_len_threshold = 0;
  if (router.policy == RouterPolicy::kLengthBucketed) {
    router.length_edges = Pick(space.edges_menu, rng);
  } else if (router.policy == RouterPolicy::kLongToSharded) {
    router.long_len_threshold = Pick(space.threshold_menu, rng);
  }
}

/// Fills the store knobs a non-none cache mode reads.
void SampleCacheStore(const DesignSpace& space, DesignPoint& dp, Rng& rng) {
  dp.cache = NoCache();
  dp.cache.enabled = true;
  dp.cache.key_policy = CacheKeyPolicy::kRequestId;
  dp.cache.eviction = Pick(space.eviction_menu, rng);
  dp.cache.capacity_bytes = Pick(space.cache_capacity_menu, rng);
  dp.cache.ttl_s = Pick(space.ttl_menu, rng);
}

std::size_t ReplicaSlots(const ReplicaDesign& rd) {
  const std::size_t gang =
      rd.backend == BackendMode::kSharded ? rd.shard.degree : 1;
  return rd.workers * gang;
}

/// Deterministically shrinks a design to the slot budget: the widest
/// replica (lowest index on ties) loses workers first, then its gang,
/// then trailing replicas are dropped.  No randomness -- equal inputs
/// repair identically.
void RepairBudget(const DesignSpace& space, DesignPoint& dp) {
  while (BackendSlots(dp) > space.max_backend_slots && !dp.replicas.empty()) {
    std::size_t widest = 0;
    for (std::size_t i = 1; i < dp.replicas.size(); ++i) {
      if (ReplicaSlots(dp.replicas[i]) > ReplicaSlots(dp.replicas[widest])) {
        widest = i;
      }
    }
    ReplicaDesign& rd = dp.replicas[widest];
    if (rd.workers > 1) {
      rd.workers = 1;
    } else if (rd.backend == BackendMode::kSharded) {
      rd.backend = BackendMode::kReplicated;
      rd.shard = CanonicalShard(space);
    } else if (dp.replicas.size() > space.min_replicas) {
      dp.replicas.pop_back();
    } else {
      break;
    }
  }
}

void MutateReplicaKnob(const DesignSpace& space, DesignPoint& dp,
                       std::size_t which, Rng& rng) {
  ReplicaDesign& rd = dp.replicas[which];
  switch (rng.NextIndex(10)) {
    case 0:
      rd.former.max_batch =
          Neighbor(space.max_batch_menu, rd.former.max_batch, rng);
      break;
    case 1:
      rd.former.max_tokens =
          Neighbor(space.max_tokens_menu, rd.former.max_tokens, rng);
      break;
    case 2:
      rd.former.timeout_s =
          Neighbor(space.timeout_menu, rd.former.timeout_s, rng);
      break;
    case 3:
      rd.former.sort_by_length = !rd.former.sort_by_length;
      break;
    case 4:
      rd.workers = Neighbor(space.workers_menu, rd.workers, rng);
      break;
    case 5:
      rd.queue_capacity = Neighbor(space.queue_menu, rd.queue_capacity, rng);
      break;
    case 6:
      rd.top_k = Neighbor(space.top_k_menu, rd.top_k, rng);
      // Tier 0 is the full-quality service and must track top_k, so an
      // enabled ladder is re-derived (same SLO) rather than invalidated.
      if (rd.adapt.enabled) {
        rd.adapt = CanonicalAdaptiveLadder(rd.top_k, rd.adapt.slo_p99_s);
      }
      break;
    case 7:
      // Backend flip: gangs enter with a drawn degree, leave canonical.
      if (rd.backend == BackendMode::kReplicated) {
        rd.backend = BackendMode::kSharded;
        rd.shard = CanonicalShard(space);
        rd.shard.degree = Pick(space.degree_menu, rng);
      } else {
        rd.backend = BackendMode::kReplicated;
        rd.shard = CanonicalShard(space);
      }
      break;
    case 8:
      if (rd.backend == BackendMode::kSharded) {
        rd.shard.degree = Neighbor(space.degree_menu, rd.shard.degree, rng);
      } else {
        rd.backend = BackendMode::kSharded;
        rd.shard = CanonicalShard(space);
        rd.shard.degree = Pick(space.degree_menu, rng);
      }
      break;
    case 9:
      // Adaptive toggle: enabling installs the canonical ladder with a
      // freshly drawn SLO; disabling restores the default-constructed
      // block so designs stay canonical (an unread adapt block would
      // make otherwise-equal designs distinct JSON).  The engine forbids
      // cache + adaptive, so enabling the layer also drops the fleet
      // cache (the reverse cache move drops the adapt blocks) -- without
      // the coupling one side of the conflict would be unreachable from
      // the other.
      if (rd.adapt.enabled || space.adapt_slo_menu.empty()) {
        rd.adapt = AdaptiveServingConfig{};
      } else {
        rd.adapt = CanonicalAdaptiveLadder(rd.top_k,
                                           Pick(space.adapt_slo_menu, rng));
        dp.cache_mode = ClusterCacheMode::kNone;
        dp.cache = NoCache();
      }
      break;
  }
}

void MutateCache(const DesignSpace& space, DesignPoint& dp, Rng& rng) {
  const bool had_store = dp.cache_mode != ClusterCacheMode::kNone;
  if (!had_store || rng.NextIndex(4) == 0) {
    dp.cache_mode = Neighbor(space.cache_mode_menu, dp.cache_mode, rng);
    if (dp.cache_mode == ClusterCacheMode::kNone) {
      dp.cache = NoCache();
    } else if (!had_store) {
      SampleCacheStore(space, dp, rng);
    }
    if (dp.cache_mode != ClusterCacheMode::kNone) {
      // Cache + adaptive is forbidden; turning the store on evicts the
      // adapt blocks (mirrors the adaptive toggle dropping the cache).
      for (ReplicaDesign& rd : dp.replicas) {
        rd.adapt = AdaptiveServingConfig{};
      }
    }
    return;
  }
  switch (rng.NextIndex(3)) {
    case 0:
      dp.cache.capacity_bytes =
          Neighbor(space.cache_capacity_menu, dp.cache.capacity_bytes, rng);
      break;
    case 1:
      dp.cache.ttl_s = Neighbor(space.ttl_menu, dp.cache.ttl_s, rng);
      break;
    case 2:
      dp.cache.eviction =
          Neighbor(space.eviction_menu, dp.cache.eviction, rng);
      break;
  }
}

}  // namespace

std::size_t BackendSlots(const DesignPoint& dp) {
  std::size_t slots = 0;
  for (const ReplicaDesign& rd : dp.replicas) slots += ReplicaSlots(rd);
  return slots;
}

AdaptiveServingConfig CanonicalAdaptiveLadder(std::size_t top_k,
                                              double slo_p99_s) {
  AdaptiveServingConfig adapt;
  adapt.enabled = true;
  adapt.slo_p99_s = slo_p99_s;
  adapt.tiers.resize(3);
  adapt.tiers[0] = ServiceTier{top_k, false, 1.0};
  adapt.tiers[1] =
      ServiceTier{std::max<std::size_t>(top_k / 2, 2), false, 0.97};
  adapt.tiers[2] =
      ServiceTier{std::max<std::size_t>(top_k / 4, 1), true, 0.9};
  return adapt;
}

ConfigIssues CheckInSpace(const DesignSpace& space, const DesignPoint& dp) {
  ConfigIssues issues = CheckDesignPoint(dp);
  if (dp.replicas.size() < space.min_replicas ||
      dp.replicas.size() > space.max_replicas) {
    AddIssue(issues, "replicas",
             "fleet size must be in [" + std::to_string(space.min_replicas) +
                 ", " + std::to_string(space.max_replicas) + "], got " +
                 std::to_string(dp.replicas.size()));
  }
  const std::size_t slots = BackendSlots(dp);
  if (slots > space.max_backend_slots) {
    AddIssue(issues, "replicas",
             "provisions " + std::to_string(slots) +
                 " backend slots, over the budget of " +
                 std::to_string(space.max_backend_slots));
  }
  for (std::size_t i = 0; i < dp.replicas.size(); ++i) {
    const ReplicaDesign& rd = dp.replicas[i];
    const std::string prefix = "replicas[" + std::to_string(i) + "]";
    if (!Contains(space.max_batch_menu, rd.former.max_batch)) {
      AddIssue(issues, prefix + ".former.max_batch", "is not on the menu");
    }
    if (!Contains(space.max_tokens_menu, rd.former.max_tokens)) {
      AddIssue(issues, prefix + ".former.max_tokens", "is not on the menu");
    }
    if (!Contains(space.timeout_menu, rd.former.timeout_s)) {
      AddIssue(issues, prefix + ".former.timeout_s", "is not on the menu");
    }
    if (!Contains(space.workers_menu, rd.workers)) {
      AddIssue(issues, prefix + ".workers", "is not on the menu");
    }
    if (!Contains(space.queue_menu, rd.queue_capacity)) {
      AddIssue(issues, prefix + ".queue_capacity", "is not on the menu");
    }
    if (!Contains(space.top_k_menu, rd.top_k)) {
      AddIssue(issues, prefix + ".top_k", "is not on the menu");
    }
    if (rd.backend == BackendMode::kSharded &&
        !Contains(space.degree_menu, rd.shard.degree)) {
      AddIssue(issues, prefix + ".shard.degree", "is not on the menu");
    }
    if (rd.adapt.enabled) {
      if (!Contains(space.adapt_slo_menu, rd.adapt.slo_p99_s)) {
        AddIssue(issues, prefix + ".adapt.slo_p99_s", "is not on the menu");
      }
      if (!SameAdaptive(rd.adapt, CanonicalAdaptiveLadder(
                                      rd.top_k, rd.adapt.slo_p99_s))) {
        AddIssue(issues, prefix + ".adapt",
                 "is not the canonical ladder for this top_k (the space "
                 "tunes only the enabled bit and the SLO)");
      }
    }
  }
  if (!Contains(space.policy_menu, dp.router.policy)) {
    AddIssue(issues, "router.policy", "is not on the menu");
  }
  if (dp.router.policy == RouterPolicy::kLengthBucketed &&
      !Contains(space.edges_menu, dp.router.length_edges)) {
    AddIssue(issues, "router.length_edges", "is not on the menu");
  }
  if (dp.router.policy == RouterPolicy::kLongToSharded &&
      !Contains(space.threshold_menu, dp.router.long_len_threshold)) {
    AddIssue(issues, "router.long_len_threshold", "is not on the menu");
  }
  if (!Contains(space.cache_mode_menu, dp.cache_mode)) {
    AddIssue(issues, "cache.mode", "is not on the menu");
  }
  if (dp.cache_mode != ClusterCacheMode::kNone) {
    if (!Contains(space.cache_capacity_menu, dp.cache.capacity_bytes)) {
      AddIssue(issues, "cache.capacity_bytes", "is not on the menu");
    }
    if (!Contains(space.ttl_menu, dp.cache.ttl_s)) {
      AddIssue(issues, "cache.ttl_s", "is not on the menu");
    }
    if (!Contains(space.eviction_menu, dp.cache.eviction)) {
      AddIssue(issues, "cache.eviction", "is not on the menu");
    }
  }
  return issues;
}

DesignPoint SampleDesign(const DesignSpace& space, Rng& rng) {
  DesignPoint dp;
  const std::size_t fleet =
      space.min_replicas +
      rng.NextIndex(space.max_replicas - space.min_replicas + 1);
  dp.replicas.reserve(fleet);
  for (std::size_t i = 0; i < fleet; ++i) {
    dp.replicas.push_back(SampleReplica(space, rng));
  }
  dp.router.policy = Pick(space.policy_menu, rng);
  CanonicalizeRouter(space, dp.router, rng);
  dp.cache_mode = Pick(space.cache_mode_menu, rng);
  if (dp.cache_mode != ClusterCacheMode::kNone) {
    SampleCacheStore(space, dp, rng);
    // The engine forbids cache + adaptive on one replica; the sample
    // keeps the drawn store and drops the adaptive layers so it always
    // passes CheckInSpace (mutation can reintroduce either side).
    for (ReplicaDesign& rd : dp.replicas) rd.adapt = AdaptiveServingConfig{};
  } else {
    dp.cache = NoCache();
  }
  RepairBudget(space, dp);
  return dp;
}

DesignPoint MutateDesign(const DesignSpace& space, const DesignPoint& dp,
                         Rng& rng) {
  DesignPoint next = dp;
  const std::size_t move = rng.NextIndex(8);
  switch (move) {
    case 0:  // grow the fleet: clone an existing replica
      if (next.replicas.size() < space.max_replicas &&
          !next.replicas.empty()) {
        next.replicas.push_back(
            next.replicas[rng.NextIndex(next.replicas.size())]);
        return next;
      }
      break;
    case 1:  // shrink the fleet
      if (next.replicas.size() > space.min_replicas) {
        next.replicas.erase(next.replicas.begin() +
                            static_cast<std::ptrdiff_t>(
                                rng.NextIndex(next.replicas.size())));
        return next;
      }
      break;
    case 6:  // router move
      next.router.policy = Pick(space.policy_menu, rng);
      CanonicalizeRouter(space, next.router, rng);
      return next;
    case 7:  // cache move
      MutateCache(space, next, rng);
      return next;
    default:
      break;
  }
  // Knob move (cases 2-5, and the fallback when a fleet move was not
  // applicable at the current size).
  if (!next.replicas.empty()) {
    MutateReplicaKnob(space, next, rng.NextIndex(next.replicas.size()), rng);
  }
  return next;
}

}  // namespace latte::search
