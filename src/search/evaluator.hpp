#pragma once
// DesignEvaluator: scores a DesignPoint by replaying a fixed trace
// through the accounting-only ServingCluster twin.
//
// The evaluator owns the experiment -- model, dataset, trace, accelerator
// shape, seeds -- and the design owns only the deployment shape, so two
// candidates are always compared on identical work.  Every replica runs
// with `execute = false` and the accelerator service model, which makes
// one evaluation a pure virtual-time replay: byte-identical at any thread
// count and cheap enough for thousands of SA steps.
//
// Scoring follows SET's e^n * d shape: the scalar cost is delay
// (p99 latency, inflated by a rejection penalty so the search cannot win
// by shedding load) times energy raised to a small integer exponent.  The
// full (p99, throughput, energy) triple is kept alongside for Pareto
// accounting.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fpga/accelerator.hpp"
#include "model/config.hpp"
#include "model/inference.hpp"
#include "search/design_point.hpp"
#include "workload/arrivals.hpp"
#include "workload/dataset.hpp"

namespace latte::search {

/// The fixed experiment a DesignEvaluator scores designs against.
struct EvaluatorConfig {
  /// Model whose accounting shape every replica serves (scaled down so an
  /// SA run stays cheap; the twin only prices it, never executes it).
  ModelConfig model;
  std::uint64_t model_seed = 2022;
  DatasetSpec dataset;
  /// Popularity-skewed arrival trace (identities give result caches a
  /// reason to exist; a design with a cache earns its hit rate here).
  ZipfTraceConfig trace;
  /// Accelerator shape of every backend slot.  `top_k` is overridden per
  /// replica by the design's sparse knob.
  AcceleratorConfig accel;
  /// Energy exponent n of the e^n * d cost (0 scores delay only).
  int energy_exponent = 1;
  /// Multiplier on the rejected-request fraction added to the delay term:
  /// cost = p99 * (1 + reject_penalty * rejected/offered) * e^n.
  double reject_penalty = 4.0;

  EvaluatorConfig();
};

/// Everything one evaluation produces.
struct DesignScore {
  bool valid = false;     ///< false: rejected by validation or served nothing
  ConfigIssues issues;    ///< why, when invalid
  double p99_s = 0;       ///< fleet p99 latency
  double throughput_rps = 0;
  double energy_j = 0;    ///< dynamic (executed work) + static (slots x span)
  std::size_t offered = 0;
  std::size_t completed = 0;  ///< requests the fleet finished
  std::size_t rejected = 0;   ///< bounced off every routable replica
  double cost = 0;        ///< scalar SA objective; +inf when invalid
};

/// True when `a` is at least as good as `b` on every objective
/// (p99 down, throughput up, energy down) and strictly better on one.
bool Dominates(const DesignScore& a, const DesignScore& b);

/// Replays the fixed trace through a design's accounting-only cluster and
/// folds the result into a DesignScore.  Evaluate() is const and
/// thread-compatible: parallel SA chains share one evaluator.
class DesignEvaluator {
 public:
  explicit DesignEvaluator(const EvaluatorConfig& cfg);

  const EvaluatorConfig& config() const { return cfg_; }
  const std::vector<TimedRequest>& trace() const { return trace_; }

  /// Scores one design.  Invalid designs (CheckDesignPoint issues, or a
  /// deployment that completes nothing) come back with valid = false and
  /// an infinite cost -- the SA loop counts them as rejected mutations.
  DesignScore Evaluate(const DesignPoint& dp) const;

 private:
  EvaluatorConfig cfg_;
  ModelInstance model_;
  std::vector<TimedRequest> trace_;
};

}  // namespace latte::search
