#include "search/anneal.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "runtime/thread_pool.hpp"
#include "tensor/rng.hpp"

namespace latte::search {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Keeps `front` a non-dominated set: a dominated candidate is dropped,
/// an admitted one evicts everything it dominates.
void InsertPareto(std::vector<ParetoEntry>& front, ParetoEntry entry) {
  for (const ParetoEntry& f : front) {
    if (Dominates(f.score, entry.score)) return;
  }
  front.erase(std::remove_if(front.begin(), front.end(),
                             [&](const ParetoEntry& f) {
                               return Dominates(entry.score, f.score);
                             }),
              front.end());
  front.push_back(std::move(entry));
}

struct ChainResult {
  ChainStats stats;
  bool has_best = false;
  DesignPoint best;
  DesignScore best_score;
  std::vector<ParetoEntry> front;
  std::size_t evaluations = 0;
};

ChainResult RunChain(const DesignSpace& space, const DesignEvaluator& eval,
                     const AnnealingConfig& cfg, std::size_t chain) {
  ChainResult out;
  out.stats.chain = chain;
  out.stats.best_cost = kInf;
  // Per-chain stream: a function of (seed, chain) alone, so chain k walks
  // the same path whether it runs on one thread or sixteen.
  Rng rng(MixHash64(cfg.seed ^ MixHash64(chain + 1)));

  DesignPoint cur;
  DesignScore cur_score;
  bool have_cur = false;
  for (int attempt = 0; attempt < 16 && !have_cur; ++attempt) {
    cur = SampleDesign(space, rng);
    ++out.evaluations;
    cur_score = eval.Evaluate(cur);
    have_cur = cur_score.valid;
  }
  if (!have_cur) return out;  // space yields nothing servable

  out.best = cur;
  out.best_score = cur_score;
  out.has_best = true;
  out.stats.best_cost = cur_score.cost;
  InsertPareto(out.front, {cur, cur_score});

  double temp = cfg.initial_temp > 0
                    ? cfg.initial_temp
                    : std::max(cur_score.cost, 1e-30);
  for (std::size_t step = 0; step < cfg.steps;
       ++step, temp = std::max(cfg.min_temp, temp * cfg.cooling)) {
    DesignPoint prop = MutateDesign(space, cur, rng);
    ++out.stats.proposed;
    if (!CheckInSpace(space, prop).empty()) {
      ++out.stats.invalid;  // the unified validators are the feasibility
      continue;             // oracle: over-budget / off-menu moves die here
    }
    ++out.evaluations;
    DesignScore prop_score = eval.Evaluate(prop);
    if (!prop_score.valid) {
      ++out.stats.invalid;
      continue;
    }
    InsertPareto(out.front, {prop, prop_score});
    bool uphill = false;
    bool accept = prop_score.cost <= cur_score.cost;
    if (!accept) {
      const double prob =
          PortableExp((cur_score.cost - prop_score.cost) / temp);
      accept = rng.NextUniform() < prob;
      uphill = accept;
    }
    if (!accept) continue;
    cur = std::move(prop);
    cur_score = prop_score;
    ++out.stats.accepted;
    if (uphill) ++out.stats.uphill;
    if (cur_score.cost < out.best_score.cost) {
      out.best = cur;
      out.best_score = cur_score;
      out.stats.best_cost = cur_score.cost;
    }
  }
  return out;
}

}  // namespace

double PortableExp(double x) {
  if (x >= 0) return 1.0;
  if (x < -745.0) return 0.0;  // below double underflow
  // e^x = 2^floor(x/ln2) * e^z with z = x - floor(x/ln2)*ln2 in [0, ln2).
  const double y = x * 1.4426950408889634;  // x / ln 2
  const double f = std::floor(y);
  const double z = (y - f) * 0.6931471805599453;
  // Degree-12 Taylor kernel: max relative error ~ln2^13/13! ~ 1e-12 on
  // the reduced range, well under the 1e-9 the tests pin.
  double sum = 1.0;
  double term = 1.0;
  for (int k = 1; k <= 12; ++k) {
    term *= z / static_cast<double>(k);
    sum += term;
  }
  return std::ldexp(sum, static_cast<int>(f));
}

SearchResult AnnealSearch(const DesignSpace& space,
                          const DesignEvaluator& evaluator,
                          const AnnealingConfig& cfg) {
  SearchResult result;
  result.best_score.cost = kInf;

  std::vector<ChainResult> chains(cfg.chains);
  {
    ThreadPool pool(cfg.threads);
    for (std::size_t i = 0; i < cfg.chains; ++i) {
      pool.Submit([&space, &evaluator, &cfg, &chains, i] {
        chains[i] = RunChain(space, evaluator, cfg, i);
      });
    }
    pool.Wait();
  }

  // Merge in chain order: ties in cost resolve to the lowest chain, and
  // the Pareto fold sees entries in a fixed sequence -- both independent
  // of which thread finished first.
  std::vector<ParetoEntry> merged;
  for (std::size_t i = 0; i < chains.size(); ++i) {
    ChainResult& chain = chains[i];
    result.chains.push_back(chain.stats);
    result.evaluations += chain.evaluations;
    if (chain.has_best && chain.best_score.cost < result.best_score.cost) {
      result.best = chain.best;
      result.best_score = chain.best_score;
      result.best_chain = i;
    }
    for (ParetoEntry& entry : chain.front) {
      InsertPareto(merged, std::move(entry));
    }
  }

  // Deterministic order + dedup: entries with an identical objective
  // triple collapse to one representative (the lexicographically smallest
  // serialization -- a front is a set of tradeoffs, not of designs).
  struct Keyed {
    std::string json;
    ParetoEntry entry;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(merged.size());
  for (ParetoEntry& entry : merged) {
    keyed.push_back({DesignPointToJson(entry.point), std::move(entry)});
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    const DesignScore& sa = a.entry.score;
    const DesignScore& sb = b.entry.score;
    if (sa.p99_s != sb.p99_s) return sa.p99_s < sb.p99_s;
    if (sa.throughput_rps != sb.throughput_rps) {
      return sa.throughput_rps > sb.throughput_rps;
    }
    if (sa.energy_j != sb.energy_j) return sa.energy_j < sb.energy_j;
    return a.json < b.json;
  });
  for (std::size_t i = 0; i < keyed.size(); ++i) {
    if (i > 0) {
      const DesignScore& a = keyed[i].entry.score;
      const DesignScore& b = keyed[i - 1].entry.score;
      if (a.p99_s == b.p99_s && a.throughput_rps == b.throughput_rps &&
          a.energy_j == b.energy_j) {
        continue;
      }
    }
    result.pareto.push_back(std::move(keyed[i].entry));
  }
  return result;
}

}  // namespace latte::search
