#pragma once
// Escalation probe: which first-pass results are too uncertain to ship.
//
// The ladder's last rung is a cheap high-sparsity first pass.  Whether its
// result can be trusted is decided from the candidate selector's own
// evidence: if the quantized score gap between the last kept and the first
// dropped candidate is wide, the top-k cut is stable and the sparse result
// is close to dense; if the boundary is a near-tie, mass is being cut off
// and the request is re-run at tier 0 (the full model).  The probe runs
// the real At-Sel pipeline (core/candidate_selector) on layer 0, head 0 of
// the serving model over a deterministic row sample, so it is cheap
// (O(rows * n * head_dim)), needs no dense reference, and is bit-identical
// at any thread count.

#include <cstddef>

#include "model/inference.hpp"
#include "tensor/matrix.hpp"

namespace latte {

/// What the probe measured for one request.
struct EscalationProbe {
  /// Mean over sampled query rows of the normalized boundary margin
  ///   (score[k-1] - score[k]) / (score[0] - score[k])
  /// of the approximate (quantized) selector scores: 1 = every row's cut
  /// is maximally stable, 0 = every row's boundary is a tie.
  double mean_margin = 1.0;
  std::size_t rows = 0;  ///< query rows sampled
};

/// Runs the selector-margin probe for one request embedding `x`
/// (length x hidden) against `model`'s layer-0 Q/K projections (head 0),
/// with `top_k` matching the first-pass tier.  At most `max_rows` query
/// rows are sampled (the leading rows; deterministic).  `bits` is the
/// selector quantization width (1 or 4).
EscalationProbe ProbeSelectorMargin(const MatrixF& x,
                                    const ModelInstance& model,
                                    std::size_t top_k, int bits,
                                    std::size_t max_rows);

/// The escalation decision: margins strictly below the threshold escalate.
inline bool ShouldEscalate(const EscalationProbe& probe,
                           double margin_threshold) {
  return probe.mean_margin < margin_threshold;
}

}  // namespace latte
