#pragma once
// SLO-driven admission/degradation controller (the adaptive serving layer).
//
// Under overload a fixed-top-k engine has exactly one lever: reject.  The
// paper's accelerator has a better one -- attention sparsity is a tunable
// accuracy/latency trade -- so this controller closes the loop between
// metrics/fidelity and the serving engine *online*: it watches queue depth
// and rolling p99 against a target SLO and walks a ladder of service tiers
//
//   full top-k -> sparser top-k -> cheap high-sparsity first pass that
//   escalates uncertain results to the full model -> admission shed
//   (the bounded queue) as the last resort,
//
// while a planned-accuracy budget keeps the stream mean above a configured
// accuracy floor.
//
// Determinism discipline (same as search/anneal): the controller runs in
// virtual time only -- tier transitions happen at fixed epoch boundaries
// (k * epoch_s), at most one step per epoch, inside hysteresis bands -- so
// a replayed trace produces bit-identical tier decisions, reports and
// outputs at any BatchRunner thread count.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "config/check.hpp"
#include "obs/trace.hpp"

namespace latte {

/// One rung of the degradation ladder.
struct ServiceTier {
  std::size_t top_k = 30;  ///< sparse attention candidates at this tier
  /// Uncertain results of this tier (low candidate-selector margin) are
  /// re-executed at tier 0.  Only the last tier may escalate: it is the
  /// "cheap first pass" rung, priced below every fixed baseline, whose
  /// occasional full-model re-runs buy back accuracy.
  bool escalate = false;
  /// Expected fidelity of this tier against the dense reference (mean
  /// output cosine; see metrics/fidelity BuildTopKAccuracyTable).  Drives
  /// the accuracy-floor budget and ServingReport::mean_accuracy.
  double accuracy = 1.0;
};

/// Knobs of the adaptive serving layer.  Disabled by default: an engine
/// with `enabled == false` is bit-identical to a pre-adaptive one.
struct AdaptiveServingConfig {
  bool enabled = false;
  /// Target p99 latency.  The rolling p99 is compared against it to form
  /// the latency half of the pressure signal.
  double slo_p99_s = 0.2;
  /// Floor on the running mean of planned tier accuracies.  A request is
  /// only assigned a degraded tier while the stream mean stays at or above
  /// the floor; otherwise the assignment is capped at a higher-fidelity
  /// tier (graceful degradation never silently under-runs the floor).
  /// 0 disables the budget.
  double accuracy_floor = 0.0;
  /// Controller update period (virtual seconds).  Tier transitions happen
  /// only at multiples of this epoch, at most one step per epoch.
  double epoch_s = 0.05;
  /// Hysteresis bands on the pressure signal
  ///   pressure = max(queue_depth / queue_ref, rolling_p99 / slo_p99_s):
  /// above `high_band` the controller degrades one tier, below `low_band`
  /// it recovers one tier, in between it holds -- so a pressure sitting at
  /// a band edge cannot flap the tier.
  double low_band = 0.5;
  double high_band = 1.0;
  /// Queue depth that counts as pressure 1.0.
  std::size_t queue_ref = 16;
  /// Rolling window (completed requests) the p99 is computed over.
  std::size_t latency_window = 64;
  /// Escalation threshold: a first-pass request whose mean normalized
  /// candidate-selector margin falls below this is re-run at tier 0.
  double escalate_margin = 0.35;
  /// Quantization width of the escalation probe (1 or 4; 4 resolves
  /// boundary ties far better, see core/candidate_selector.hpp).
  int escalate_bits = 4;
  /// Query rows sampled by the escalation probe (caps its cost on long
  /// sequences; the probe is deterministic either way).
  std::size_t escalate_rows = 64;
  /// The degradation ladder, tier 0 first.  Tier 0 is the full-quality
  /// service (its top_k must match the engine's inference config);
  /// top_k strictly decreases along the ladder.
  std::vector<ServiceTier> tiers;
};

/// Names every illegal field (empty ladder, non-decreasing top_k,
/// escalation anywhere but the last tier, inverted hysteresis bands,
/// floor above tier-0 accuracy, ...); empty means legal.  Checked only
/// when `enabled` (a disabled config is inert and always legal).
ConfigIssues CheckAdaptiveServingConfig(const AdaptiveServingConfig& cfg);

/// Throws std::invalid_argument naming the offending field.
void ValidateAdaptiveServingConfig(const AdaptiveServingConfig& cfg);

/// The deterministic tier controller.  The owner (serve/engine) drives it
/// entirely in virtual time: RecordLatency() on every request completion,
/// AdvanceEpoch() at each epoch boundary, level() when assigning a tier.
class AdaptiveController {
 public:
  explicit AdaptiveController(const AdaptiveServingConfig& cfg);

  /// The next epoch boundary (virtual seconds) at which the controller
  /// wants an AdvanceEpoch() call.
  double next_epoch_s() const { return epoch_next_; }

  /// Processes one epoch boundary: recomputes pressure from the queue
  /// depth and the rolling p99, steps the level by at most one inside the
  /// hysteresis bands, and arms the next boundary.
  void AdvanceEpoch(std::size_t queue_depth);

  /// Feeds one completed request's end-to-end virtual latency into the
  /// rolling window.
  void RecordLatency(double latency_s);

  /// Current ladder level (0 = full quality).
  std::size_t level() const { return level_; }

  /// Rolling p99 over the window (0 while empty).
  double rolling_p99_s() const;

  /// The pressure signal a boundary at the current state would see.
  double Pressure(std::size_t queue_depth) const;

  /// Returns to the initial state (level 0, empty window, first epoch) --
  /// the per-stream reset, mirroring the engine's ResetStream().
  void Reset();

  /// Records a kEpoch instant (boundary time, level after stepping) on
  /// `track` at every AdvanceEpoch().  Null detaches; the owning engine
  /// wires this alongside its own tracer.
  void SetTracer(obs::Tracer* tracer, std::uint32_t track) {
    tracer_ = tracer;
    track_ = track;
  }

 private:
  AdaptiveServingConfig cfg_;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t track_ = 0;
  std::uint64_t epoch_seq_ = 0;  ///< boundaries processed this stream
  std::size_t level_ = 0;
  double epoch_next_ = 0;
  std::vector<double> window_;  ///< ring buffer of recent latencies
  std::size_t window_pos_ = 0;
  std::size_t window_count_ = 0;
};

}  // namespace latte
