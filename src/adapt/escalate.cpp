#include "adapt/escalate.hpp"

#include <algorithm>

#include "core/candidate_selector.hpp"
#include "nn/encoder.hpp"
#include "tensor/kernels.hpp"

namespace latte {

EscalationProbe ProbeSelectorMargin(const MatrixF& x,
                                    const ModelInstance& model,
                                    std::size_t top_k, int bits,
                                    std::size_t max_rows) {
  EscalationProbe probe;
  const std::size_t n = x.rows();
  if (n == 0 || top_k == 0) return probe;
  const std::size_t head_dim = model.config().encoder.head_dim();
  const EncoderWeights& w0 = model.layer(0);

  // Head-0 slices of the layer-0 projections: K over every key row (the
  // candidate pool is the full sequence), Q over the leading sample only.
  GemmScratch scratch;
  MatrixF k;
  w0.wk.ForwardColumnsInto(x, 0, head_dim, scratch, k);
  const std::size_t rows = std::min(n, max_rows);
  MatrixF q;
  if (rows == n) {
    w0.wq.ForwardColumnsInto(x, 0, head_dim, scratch, q);
  } else {
    MatrixF x_sub(rows, x.cols());
    for (std::size_t r = 0; r < rows; ++r) {
      std::copy(x.row(r).begin(), x.row(r).end(), x_sub.row(r).begin());
    }
    w0.wq.ForwardColumnsInto(x_sub, 0, head_dim, scratch, q);
  }

  // One extra candidate past the cut so the boundary gap is observable.
  SelectorConfig sel;
  sel.top_k = std::min(top_k + 1, n);
  sel.bits = bits;
  const SelectionResult result = SelectCandidates(q, k, sel);

  double margin_sum = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::vector<std::int32_t>& s = result.approx_scores[r];
    if (s.size() <= top_k) {
      // Nothing was cut off (k >= n): the sparse pass is exact.
      margin_sum += 1.0;
      continue;
    }
    const double kept = static_cast<double>(s[top_k - 1]);
    const double dropped = static_cast<double>(s[top_k]);
    const double span = std::max(1.0, static_cast<double>(s[0]) - dropped);
    margin_sum += (kept - dropped) / span;
  }
  probe.mean_margin = margin_sum / static_cast<double>(rows);
  probe.rows = rows;
  return probe;
}

}  // namespace latte
