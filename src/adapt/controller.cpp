#include "adapt/controller.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/percentiles.hpp"

namespace latte {

ConfigIssues CheckAdaptiveServingConfig(const AdaptiveServingConfig& cfg) {
  ConfigIssues issues;
  if (!cfg.enabled) return issues;
  if (!(cfg.slo_p99_s > 0) || !std::isfinite(cfg.slo_p99_s)) {
    AddIssue(issues, "slo_p99_s", "must be a positive, finite latency target");
  }
  if (!(cfg.epoch_s > 0) || !std::isfinite(cfg.epoch_s)) {
    AddIssue(issues, "epoch_s",
             "must be a positive, finite update period (the fixed epoch is "
             "what makes tier decisions replayable)");
  }
  if (std::isnan(cfg.low_band) || cfg.low_band < 0) {
    AddIssue(issues, "low_band", "must be >= 0");
  }
  if (!(cfg.high_band > cfg.low_band) || !std::isfinite(cfg.high_band)) {
    AddIssue(issues, "high_band",
             "must be finite and strictly above low_band (the hysteresis "
             "gap is what prevents tier flapping)");
  }
  if (cfg.queue_ref == 0) {
    AddIssue(issues, "queue_ref",
             "must be >= 1 (queue depth is normalized by it)");
  }
  if (cfg.latency_window == 0) {
    AddIssue(issues, "latency_window", "must be >= 1");
  }
  if (std::isnan(cfg.escalate_margin) || cfg.escalate_margin < 0 ||
      cfg.escalate_margin > 1) {
    AddIssue(issues, "escalate_margin",
             "must be in [0, 1] (a normalized selector margin)");
  }
  if (cfg.escalate_bits != 1 && cfg.escalate_bits != 4) {
    AddIssue(issues, "escalate_bits",
             "must be 1 or 4 (the selector's quantization widths)");
  }
  if (cfg.escalate_rows == 0) {
    AddIssue(issues, "escalate_rows", "must be >= 1");
  }
  if (cfg.tiers.empty()) {
    AddIssue(issues, "tiers", "must name at least one service tier");
    return issues;
  }
  for (std::size_t i = 0; i < cfg.tiers.size(); ++i) {
    const ServiceTier& t = cfg.tiers[i];
    const std::string prefix = "tiers[" + std::to_string(i) + "]";
    if (t.top_k == 0) {
      AddIssue(issues, prefix + ".top_k",
               "must be >= 1 (0 selects no attention candidates)");
    }
    if (i > 0 && t.top_k >= cfg.tiers[i - 1].top_k) {
      AddIssue(issues, prefix + ".top_k",
               "must strictly decrease along the ladder (a degraded tier "
               "must be sparser than the one above it)");
    }
    if (!(t.accuracy > 0) || t.accuracy > 1 || std::isnan(t.accuracy)) {
      AddIssue(issues, prefix + ".accuracy", "must be in (0, 1]");
    }
    if (i > 0 && t.accuracy > cfg.tiers[i - 1].accuracy) {
      AddIssue(issues, prefix + ".accuracy",
               "must be non-increasing along the ladder (sparser attention "
               "cannot be more faithful)");
    }
    if (t.escalate && i + 1 != cfg.tiers.size()) {
      AddIssue(issues, prefix + ".escalate",
               "only the last tier may escalate (it is the cheap first-pass "
               "rung; tier 0 is already the full model)");
    }
  }
  if (cfg.tiers.front().escalate) {
    AddIssue(issues, "tiers[0].escalate",
             "tier 0 is the full-quality service and cannot escalate to "
             "itself");
  }
  if (std::isnan(cfg.accuracy_floor) || cfg.accuracy_floor < 0) {
    AddIssue(issues, "accuracy_floor", "must be >= 0 (0 disables the budget)");
  } else if (cfg.accuracy_floor > 0 && !cfg.tiers.empty() &&
             cfg.accuracy_floor > cfg.tiers.front().accuracy) {
    AddIssue(issues, "accuracy_floor",
             "must not exceed tier 0's accuracy (even the full-quality tier "
             "could not meet it)");
  }
  return issues;
}

void ValidateAdaptiveServingConfig(const AdaptiveServingConfig& cfg) {
  ThrowOnIssues("AdaptiveServingConfig", CheckAdaptiveServingConfig(cfg));
}

AdaptiveController::AdaptiveController(const AdaptiveServingConfig& cfg)
    : cfg_(cfg) {
  ValidateAdaptiveServingConfig(cfg_);
  Reset();
}

void AdaptiveController::Reset() {
  level_ = 0;
  epoch_next_ = cfg_.epoch_s;
  epoch_seq_ = 0;
  window_.assign(cfg_.latency_window, 0.0);
  window_pos_ = 0;
  window_count_ = 0;
}

void AdaptiveController::RecordLatency(double latency_s) {
  window_[window_pos_] = latency_s;
  window_pos_ = (window_pos_ + 1) % window_.size();
  window_count_ = std::min(window_count_ + 1, window_.size());
}

double AdaptiveController::rolling_p99_s() const {
  return obs::PercentileOfWindow(window_, window_count_, 0.99);
}

double AdaptiveController::Pressure(std::size_t queue_depth) const {
  const double queue_pressure = static_cast<double>(queue_depth) /
                                static_cast<double>(cfg_.queue_ref);
  const double latency_pressure = rolling_p99_s() / cfg_.slo_p99_s;
  return std::max(queue_pressure, latency_pressure);
}

void AdaptiveController::AdvanceEpoch(std::size_t queue_depth) {
  const double pressure = Pressure(queue_depth);
  if (pressure > cfg_.high_band) {
    if (level_ + 1 < cfg_.tiers.size()) ++level_;
  } else if (pressure < cfg_.low_band) {
    if (level_ > 0) --level_;
  }
  if (tracer_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::SpanKind::kEpoch;
    e.begin_s = e.end_s = epoch_next_;
    e.wall_s = tracer_->WallStamp();
    e.id = epoch_seq_;
    e.arg = static_cast<std::int64_t>(level_);
    e.track = track_;
    tracer_->Record(e);
  }
  ++epoch_seq_;
  epoch_next_ += cfg_.epoch_s;
}

}  // namespace latte
