#include "obs/chrome_trace.hpp"

#include "obs/json_writer.hpp"

namespace latte::obs {
namespace {

constexpr double kMicros = 1e6;  // virtual seconds -> trace-event µs

void CommonFields(JsonWriter& json, const TraceEvent& e) {
  json.Key("ts").Value(e.begin_s * kMicros);
  json.Key("pid").Value(std::size_t{0});
  json.Key("tid").Value(static_cast<std::size_t>(e.track));
}

void ArgsBlock(JsonWriter& json, const TraceEvent& e) {
  json.Key("args");
  json.BeginObject();
  json.Key("id").Value(static_cast<std::size_t>(e.id));
  json.Key("arg").Value(static_cast<double>(e.arg));
  if (e.wall_s >= 0) json.Key("wall_s").Value(e.wall_s);
  json.EndObject();
}

}  // namespace

void WriteChromeTrace(const Tracer& tracer, JsonWriter& json) {
  json.BeginObject();
  json.Key("traceEvents");
  json.BeginArray();

  // Track-name metadata first: one process, one named thread per track.
  json.BeginObject();
  json.Key("name").Value("process_name");
  json.Key("ph").Value("M");
  json.Key("pid").Value(std::size_t{0});
  json.Key("args");
  json.BeginObject().Key("name").Value("latte").EndObject();
  json.EndObject();
  for (const auto& [track, name] : tracer.tracks()) {
    json.BeginObject();
    json.Key("name").Value("thread_name");
    json.Key("ph").Value("M");
    json.Key("pid").Value(std::size_t{0});
    json.Key("tid").Value(static_cast<std::size_t>(track));
    json.Key("args");
    json.BeginObject().Key("name").Value(name).EndObject();
    json.EndObject();
  }

  for (const TraceEvent& e : tracer.Merged()) {
    if (e.kind == SpanKind::kService) {
      // Batch executions overlap on a worker track only through the
      // virtual-time model's eyes (launch of batch N+1 can equal the
      // completion instant of batch N), so emit them as async slices --
      // the trace-event phase that tolerates abutting intervals.
      json.BeginObject();
      json.Key("name").Value("batch");
      json.Key("cat").Value("batch");
      json.Key("ph").Value("b");
      json.Key("id").Value(static_cast<std::size_t>(e.id));
      CommonFields(json, e);
      ArgsBlock(json, e);
      json.EndObject();
      json.BeginObject();
      json.Key("name").Value("batch");
      json.Key("cat").Value("batch");
      json.Key("ph").Value("e");
      json.Key("id").Value(static_cast<std::size_t>(e.id));
      json.Key("ts").Value(e.end_s * kMicros);
      json.Key("pid").Value(std::size_t{0});
      json.Key("tid").Value(static_cast<std::size_t>(e.track));
      json.EndObject();
      continue;
    }
    json.BeginObject();
    json.Key("name").Value(SpanKindName(e.kind));
    json.Key("cat").Value("lifecycle");
    if (e.end_s > e.begin_s) {
      json.Key("ph").Value("X");
      json.Key("dur").Value((e.end_s - e.begin_s) * kMicros);
    } else {
      json.Key("ph").Value("i");
      json.Key("s").Value("t");
    }
    CommonFields(json, e);
    ArgsBlock(json, e);
    json.EndObject();
  }

  json.EndArray();
  json.Key("displayTimeUnit").Value("ms");
  json.Key("otherData");
  json.BeginObject();
  json.Key("dropped_events")
      .Value(static_cast<std::size_t>(tracer.total_dropped()));
  json.EndObject();
  json.EndObject();
}

std::string ChromeTraceJson(const Tracer& tracer) {
  JsonWriter json;
  WriteChromeTrace(tracer, json);
  return json.str();
}

}  // namespace latte::obs
