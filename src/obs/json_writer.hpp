#pragma once
// Minimal streaming JSON writer shared by library exporters and the bench
// binaries.  Promoted from bench/json_writer.hpp (which now forwards
// here) so the observability layer -- Chrome trace export, metrics
// snapshots, run manifests -- and the BENCH_*.json emitters share one
// writer.  No dependency; emits valid JSON only (non-finite numbers
// become null so jq never chokes on an overflowed measurement).

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "tensor/kernels.hpp"

namespace latte::obs {

class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    Prefix();
    out_ += '{';
    pending_comma_.push_back(false);
    return *this;
  }
  JsonWriter& EndObject() {
    pending_comma_.pop_back();
    out_ += '}';
    return *this;
  }
  JsonWriter& BeginArray() {
    Prefix();
    out_ += '[';
    pending_comma_.push_back(false);
    return *this;
  }
  JsonWriter& EndArray() {
    pending_comma_.pop_back();
    out_ += ']';
    return *this;
  }
  JsonWriter& Key(std::string_view key) {
    Prefix();
    AppendString(key);
    out_ += ':';
    pending_comma_.back() = false;
    return *this;
  }
  JsonWriter& Value(std::string_view v) {
    Prefix();
    AppendString(v);
    return *this;
  }
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(double v) {
    Prefix();
    if (!std::isfinite(v)) {
      out_ += "null";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.9g", v);
      out_ += buf;
    }
    return *this;
  }
  /// Shortest round-trippable representation of `v`: %.17g always
  /// re-parses to the same bits, so configs serialized with this survive
  /// an emit/parse cycle exactly (the DesignPoint JSON contract).
  JsonWriter& ValueExact(double v) {
    Prefix();
    if (!std::isfinite(v)) {
      out_ += "null";
    } else {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out_ += buf;
    }
    return *this;
  }
  JsonWriter& Value(std::size_t v) {
    Prefix();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Value(bool v) {
    Prefix();
    out_ += v ? "true" : "false";
    return *this;
  }
  /// Splices an already-serialized JSON value verbatim (a config block
  /// produced by another writer, e.g. DesignPointToJson).  The caller owns
  /// its validity -- the run-manifest emitter uses this to embed config
  /// JSON without re-parsing it.
  JsonWriter& Raw(std::string_view json) {
    Prefix();
    out_ += json;
    return *this;
  }

  const std::string& str() const { return out_; }

  /// Writes the document to `path` followed by a newline; returns false
  /// (and prints to stderr) when the file cannot be written.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "json: cannot open %s for writing\n", path.c_str());
      return false;
    }
    std::fprintf(f, "%s\n", out_.c_str());
    std::fclose(f);
    return true;
  }

 private:
  void Prefix() {
    if (pending_comma_.empty()) return;
    if (pending_comma_.back()) out_ += ',';
    pending_comma_.back() = true;
  }
  void AppendString(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\t':
          out_ += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> pending_comma_;
};

/// Compiler identity baked in at build time ("gcc 13.2.0"-style).
inline std::string CompilerId() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

/// Stamps the "host" block every BENCH_*.json (and run manifest) carries:
/// which micro-kernel ISA was compiled in, how many hardware threads the
/// machine has, which compiler built the binary.  Recorded baselines are
/// only comparable between matching stamps, so check_regression can
/// attribute a drift to a host change instead of a code change.  Call
/// right after the schema_version key (inside the root object).
inline void StampHost(JsonWriter& json) {
  json.Key("host");
  json.BeginObject();
  json.Key("kernel_arch").Value(KernelArchName());
  json.Key("hardware_threads")
      .Value(static_cast<std::size_t>(std::thread::hardware_concurrency()));
  json.Key("compiler").Value(CompilerId());
  json.EndObject();
}

}  // namespace latte::obs
