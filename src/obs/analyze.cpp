#include "obs/analyze.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "obs/json_writer.hpp"
#include "obs/percentiles.hpp"
#include "serve/report.hpp"

namespace latte::obs {
namespace {

const char* kStageNames[kStageCount] = {
    "queue_wait", "service",   "shard_comm",
    "escalated",  "cache_hit", "coalesce_wait",
};

/// Role a track plays in the engine's layout (obs/trace.hpp contract:
/// every engine registers `workers` worker lanes plus one control lane,
/// labels "<prefix>worker <w>" / "<prefix>control").
enum class TrackRole { kControl, kWorker, kOther };

struct TrackInfo {
  TrackRole role = TrackRole::kOther;
  std::string group;  ///< prefix with any trailing '/' trimmed
  std::string label;  ///< name with the group prefix stripped
};

TrackInfo ClassifyTrack(const std::string& name) {
  TrackInfo info;
  const std::string_view control = "control";
  const std::string_view worker = "worker ";
  auto trim_group = [](std::string g) {
    if (!g.empty() && g.back() == '/') g.pop_back();
    return g;
  };
  if (name.size() >= control.size() &&
      std::string_view(name).substr(name.size() - control.size()) == control) {
    info.role = TrackRole::kControl;
    info.group = trim_group(name.substr(0, name.size() - control.size()));
    info.label = control;
    return info;
  }
  const std::size_t at = name.find(worker);
  if (at != std::string::npos) {
    info.role = TrackRole::kWorker;
    info.group = trim_group(name.substr(0, at));
    info.label = name.substr(at);
    return info;
  }
  return info;  // e.g. a ShardExecutor's functional "shard N" lanes
}

struct QueuePass {
  double begin_s = 0;
  double end_s = 0;
  std::uint64_t batch = 0;
};

struct ServiceSpan {
  double begin_s = 0;
  double end_s = 0;
  std::string worker;  ///< the worker lane's label ("worker 1")
};

struct CommSpan {
  double begin_s = 0;
  double end_s = 0;
};

struct SimpleSpan {
  double begin_s = 0;
  double end_s = 0;
};

/// Everything recorded against one track group (== one engine).
struct GroupSpans {
  std::map<std::uint64_t, double> admit_s;  ///< first admit per offered id
  std::map<std::uint64_t, std::vector<QueuePass>> queue_waits;
  std::map<std::uint64_t, std::pair<double, std::uint64_t>> completes;
  std::map<std::uint64_t, SimpleSpan> cache_hits;
  std::map<std::uint64_t, SimpleSpan> coalesces;
  std::map<std::uint64_t, ServiceSpan> services;  ///< by batch ordinal
  std::map<std::uint64_t, CommSpan> comms;        ///< by batch ordinal
  std::size_t rejected = 0;
};

void AddSegment(RequestAttribution& att, Stage stage, double begin_s,
                double end_s, std::string note) {
  StageSegment seg;
  seg.stage = stage;
  seg.begin_s = begin_s;
  seg.end_s = end_s;
  seg.note = std::move(note);
  att.stage_s[static_cast<std::size_t>(stage)] += seg.duration_s();
  att.segments.push_back(std::move(seg));
}

std::string Ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4gms", seconds * 1e3);
  return buf;
}

LatencyBreakdown BreakdownOf(const std::vector<RequestAttribution>& requests,
                             std::size_t rejected, std::size_t unattributed,
                             bool with_groups);

}  // namespace

const char* StageName(Stage stage) {
  const auto i = static_cast<std::size_t>(stage);
  return i < kStageCount ? kStageNames[i] : "unknown";
}

const char* RequestPathName(RequestPath path) {
  switch (path) {
    case RequestPath::kBatched:
      return "batched";
    case RequestPath::kEscalated:
      return "escalated";
    case RequestPath::kCacheHit:
      return "cache_hit";
    case RequestPath::kCoalesced:
      return "coalesced";
  }
  return "unknown";
}

double RequestAttribution::attributed_s() const {
  double sum = 0;
  for (const StageSegment& seg : segments) sum += seg.duration_s();
  return sum;
}

bool RequestAttribution::gap_free() const {
  if (segments.empty()) return false;
  if (segments.front().begin_s != arrival_s) return false;
  if (segments.back().end_s != done_s) return false;
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i].end_s != segments[i + 1].begin_s) return false;
  }
  return true;
}

Attribution AttributeSpans(
    const std::vector<TraceEvent>& merged,
    const std::vector<std::pair<std::uint32_t, std::string>>& tracks) {
  // Classify tracks, then bucket every span by (group, kind).  Group
  // labels key a std::map so iteration -- and therefore the output order
  // -- is deterministic regardless of track numbering.
  std::map<std::uint32_t, TrackInfo> info;
  for (const auto& [track, name] : tracks) info[track] = ClassifyTrack(name);
  std::map<std::string, GroupSpans> groups;

  for (const TraceEvent& e : merged) {
    const auto it = info.find(e.track);
    if (it == info.end() || it->second.role == TrackRole::kOther) continue;
    GroupSpans& g = groups[it->second.group];
    if (it->second.role == TrackRole::kWorker) {
      if (e.kind == SpanKind::kService) {
        g.services[e.id] = {e.begin_s, e.end_s, it->second.label};
      } else if (e.kind == SpanKind::kStage) {
        // The engine's sharded-backend collectives sub-span (the
        // functional ShardExecutor's kStage lanes are not worker tracks
        // and never reach here).
        g.comms[e.id] = {e.begin_s, e.end_s};
      }
      continue;
    }
    switch (e.kind) {
      case SpanKind::kAdmit:
        g.admit_s.emplace(e.id, e.begin_s);  // keep the first (root) admit
        break;
      case SpanKind::kReject:
        ++g.rejected;
        break;
      case SpanKind::kQueueWait:
        g.queue_waits[e.id].push_back({e.begin_s, e.end_s, static_cast<std::uint64_t>(e.arg)});
        break;
      case SpanKind::kComplete:
        g.completes[e.id] = {e.begin_s, static_cast<std::uint64_t>(e.arg)};
        break;
      case SpanKind::kCacheHit:
        g.cache_hits[e.id] = {e.begin_s, e.end_s};
        break;
      case SpanKind::kCacheCoalesce:
        g.coalesces[e.id] = {e.begin_s, e.end_s};
        break;
      default:
        break;  // kForm, kEpoch, kEscalate: not part of a request's cover
    }
  }

  Attribution out;
  for (auto& [label, g] : groups) {
    // Every offered id that left any lifecycle footprint; whatever cannot
    // be rebuilt into a complete timeline is counted, never dropped.
    std::set<std::uint64_t> ids;
    for (const auto& [id, _] : g.admit_s) ids.insert(id);
    for (const auto& [id, _] : g.queue_waits) ids.insert(id);
    for (const auto& [id, _] : g.completes) ids.insert(id);
    for (const auto& [id, _] : g.cache_hits) ids.insert(id);
    for (const auto& [id, _] : g.coalesces) ids.insert(id);

    for (const std::uint64_t id : ids) {
      RequestAttribution att;
      att.offered_id = id;
      att.group = label;
      if (const auto hit = g.cache_hits.find(id); hit != g.cache_hits.end()) {
        att.path = RequestPath::kCacheHit;
        att.arrival_s = hit->second.begin_s;
        att.done_s = hit->second.end_s;
        AddSegment(att, Stage::kCacheHit, hit->second.begin_s,
                   hit->second.end_s, {});
        out.requests.push_back(std::move(att));
        continue;
      }
      if (const auto co = g.coalesces.find(id); co != g.coalesces.end()) {
        att.path = RequestPath::kCoalesced;
        att.arrival_s = co->second.begin_s;
        att.done_s = co->second.end_s;
        AddSegment(att, Stage::kCoalesceWait, co->second.begin_s,
                   co->second.end_s, {});
        out.requests.push_back(std::move(att));
        continue;
      }
      const auto done = g.completes.find(id);
      const auto qw = g.queue_waits.find(id);
      if (done == g.completes.end() || qw == g.queue_waits.end() ||
          qw->second.empty()) {
        ++out.unattributed;  // overflow dropped a span the walk needs
        continue;
      }
      std::vector<QueuePass> passes = qw->second;
      std::sort(passes.begin(), passes.end(),
                [](const QueuePass& a, const QueuePass& b) {
                  return a.begin_s != b.begin_s ? a.begin_s < b.begin_s
                                                : a.batch < b.batch;
                });
      const auto admit = g.admit_s.find(id);
      att.arrival_s = admit != g.admit_s.end() ? admit->second
                                               : passes.front().begin_s;
      att.done_s = done->second.first;
      att.path = passes.size() > 1 ? RequestPath::kEscalated
                                   : RequestPath::kBatched;
      bool complete_cover = true;
      for (std::size_t p = 0; p < passes.size(); ++p) {
        const QueuePass& pass = passes[p];
        const auto svc = g.services.find(pass.batch);
        if (svc == g.services.end()) {
          complete_cover = false;
          break;
        }
        AddSegment(att, Stage::kQueueWait, pass.begin_s, pass.end_s,
                   "batch " + std::to_string(pass.batch));
        if (p + 1 < passes.size()) {
          // A superseded cheap first pass: its whole service slot is the
          // escalation cost.
          AddSegment(att, Stage::kEscalatedService, svc->second.begin_s,
                     svc->second.end_s, "batch " + std::to_string(pass.batch));
          continue;
        }
        const auto comm = g.comms.find(pass.batch);
        if (comm != g.comms.end()) {
          AddSegment(att, Stage::kService, svc->second.begin_s,
                     comm->second.begin_s, svc->second.worker);
          AddSegment(att, Stage::kShardComm, comm->second.begin_s,
                     comm->second.end_s, svc->second.worker);
        } else {
          AddSegment(att, Stage::kService, svc->second.begin_s,
                     svc->second.end_s, svc->second.worker);
        }
      }
      if (!complete_cover) {
        ++out.unattributed;
        continue;
      }
      out.requests.push_back(std::move(att));
    }
    out.rejected += g.rejected;
    if (g.rejected > 0 || !out.requests.empty()) {
      out.rejected_by_group.emplace_back(label, g.rejected);
    }
  }
  // groups map iteration is label-sorted and ids are set-sorted, so the
  // result is already ordered by (group, offered_id).
  return out;
}

Attribution AttributeTracer(const Tracer& tracer) {
  return AttributeSpans(tracer.Merged(), tracer.tracks());
}

namespace {

LatencyBreakdown BreakdownOf(const std::vector<RequestAttribution>& requests,
                             std::size_t rejected, std::size_t unattributed,
                             bool with_groups) {
  LatencyBreakdown bd;
  bd.requests = requests.size();
  bd.rejected = rejected;
  bd.unattributed = unattributed;
  if (requests.empty()) return bd;

  std::vector<double> e2e;
  e2e.reserve(requests.size());
  double sum = 0;
  for (const RequestAttribution& r : requests) {
    const double t = r.total_s();
    e2e.push_back(t);
    sum += t;
    if (!r.gap_free()) bd.gap_free = false;
    if (r.attributed_s() != t) bd.reconstruction_exact = false;
    // Worst boundary mismatch, for diagnostics when a cover is broken.
    if (!r.segments.empty()) {
      double gap = std::abs(r.segments.front().begin_s - r.arrival_s);
      gap = std::max(gap, std::abs(r.segments.back().end_s - r.done_s));
      for (std::size_t i = 0; i + 1 < r.segments.size(); ++i) {
        gap = std::max(gap, std::abs(r.segments[i].end_s -
                                     r.segments[i + 1].begin_s));
      }
      bd.max_gap_s = std::max(bd.max_gap_s, gap);
    }
  }
  std::sort(e2e.begin(), e2e.end());
  bd.mean_s = sum / static_cast<double>(e2e.size());
  bd.p50_s = PercentileOfSorted(e2e, 0.50);
  bd.p95_s = PercentileOfSorted(e2e, 0.95);
  bd.p99_s = PercentileOfSorted(e2e, 0.99);
  bd.max_s = e2e.back();

  // Per-stage distributions over the requests that pass through each
  // stage (a zero-length queue wait still counts as passing through).
  double all_stages_total = 0;
  for (std::size_t s = 0; s < kStageCount; ++s) {
    std::vector<double> values;
    for (const RequestAttribution& r : requests) {
      const bool present =
          std::any_of(r.segments.begin(), r.segments.end(),
                      [s](const StageSegment& seg) {
                        return static_cast<std::size_t>(seg.stage) == s;
                      });
      if (present) values.push_back(r.stage_s[s]);
    }
    if (values.empty()) continue;
    StageStats stats;
    stats.stage = static_cast<Stage>(s);
    stats.requests = values.size();
    for (const double v : values) stats.total_s += v;
    std::sort(values.begin(), values.end());
    stats.p50_s = PercentileOfSorted(values, 0.50);
    stats.p95_s = PercentileOfSorted(values, 0.95);
    stats.p99_s = PercentileOfSorted(values, 0.99);
    stats.max_s = values.back();
    all_stages_total += stats.total_s;
    bd.stages.push_back(stats);
  }
  for (StageStats& stats : bd.stages) {
    stats.share = all_stages_total > 0 ? stats.total_s / all_stages_total : 0;
  }

  // The p99 budget: where does the tail cohort's latency actually go?
  bd.tail.threshold_s = bd.p99_s;
  double tail_total = 0;
  double tail_stage[kStageCount] = {};
  for (const RequestAttribution& r : requests) {
    if (r.total_s() < bd.tail.threshold_s) continue;
    ++bd.tail.requests;
    for (std::size_t s = 0; s < kStageCount; ++s) {
      tail_stage[s] += r.stage_s[s];
      tail_total += r.stage_s[s];
    }
  }
  for (std::size_t s = 0; s < kStageCount; ++s) {
    bd.tail.share[s] = tail_total > 0 ? tail_stage[s] / tail_total : 0;
    if (bd.tail.share[s] > bd.tail.dominant_share) {
      bd.tail.dominant_share = bd.tail.share[s];
      bd.tail.dominant = static_cast<Stage>(s);
    }
  }

  if (const RequestAttribution* worst = TailRequest(requests)) {
    bd.critical_path = CriticalPathString(*worst);
  }
  if (with_groups) {
    std::vector<std::string> labels;
    for (const RequestAttribution& r : requests) {
      if (labels.empty() || labels.back() != r.group) {
        labels.push_back(r.group);  // requests are group-sorted
      }
    }
    if (labels.size() > 1) {
      for (const std::string& label : labels) {
        std::vector<RequestAttribution> subset;
        for (const RequestAttribution& r : requests) {
          if (r.group == label) subset.push_back(r);
        }
        bd.groups.emplace_back(label, BreakdownOf(subset, 0, 0, false));
      }
    }
  }
  return bd;
}

void WriteBreakdownBody(const LatencyBreakdown& bd, JsonWriter& json) {
  json.Key("requests").Value(bd.requests);
  json.Key("rejected").Value(bd.rejected);
  json.Key("unattributed").Value(bd.unattributed);
  json.Key("gap_free").Value(bd.gap_free);
  json.Key("reconstruction_exact").Value(bd.reconstruction_exact);
  json.Key("max_gap_s").ValueExact(bd.max_gap_s);
  json.Key("end_to_end");
  json.BeginObject();
  json.Key("mean_ms").ValueExact(bd.mean_s * 1e3);
  json.Key("p50_ms").ValueExact(bd.p50_s * 1e3);
  json.Key("p95_ms").ValueExact(bd.p95_s * 1e3);
  json.Key("p99_ms").ValueExact(bd.p99_s * 1e3);
  json.Key("max_ms").ValueExact(bd.max_s * 1e3);
  json.EndObject();
  json.Key("stages");
  json.BeginArray();
  for (const StageStats& s : bd.stages) {
    json.BeginObject();
    json.Key("stage").Value(StageName(s.stage));
    json.Key("requests").Value(s.requests);
    json.Key("total_ms").ValueExact(s.total_s * 1e3);
    json.Key("share").ValueExact(s.share);
    json.Key("p50_ms").ValueExact(s.p50_s * 1e3);
    json.Key("p95_ms").ValueExact(s.p95_s * 1e3);
    json.Key("p99_ms").ValueExact(s.p99_s * 1e3);
    json.Key("max_ms").ValueExact(s.max_s * 1e3);
    json.EndObject();
  }
  json.EndArray();
  json.Key("tail");
  json.BeginObject();
  json.Key("threshold_ms").ValueExact(bd.tail.threshold_s * 1e3);
  json.Key("requests").Value(bd.tail.requests);
  json.Key("dominant_stage").Value(StageName(bd.tail.dominant));
  json.Key("dominant_share").ValueExact(bd.tail.dominant_share);
  json.Key("shares");
  json.BeginArray();
  for (const StageStats& s : bd.stages) {
    json.BeginObject();
    json.Key("stage").Value(StageName(s.stage));
    json.Key("share")
        .ValueExact(bd.tail.share[static_cast<std::size_t>(s.stage)]);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  json.Key("critical_path").Value(bd.critical_path);
}

}  // namespace

LatencyBreakdown ComputeBreakdown(const Attribution& attribution) {
  LatencyBreakdown bd = BreakdownOf(attribution.requests, attribution.rejected,
                                    attribution.unattributed, true);
  // Per-group rejects (a fleet trace records them on replica control
  // lanes; the overall count above already pooled them).
  for (auto& [label, sub] : bd.groups) {
    for (const auto& [glabel, grejected] : attribution.rejected_by_group) {
      if (glabel == label) sub.rejected = grejected;
    }
  }
  return bd;
}

void WriteBreakdownJson(const LatencyBreakdown& breakdown, JsonWriter& json) {
  json.BeginObject();
  json.Key("schema_version").Value(std::size_t{1});
  WriteBreakdownBody(breakdown, json);
  json.Key("groups");
  json.BeginArray();
  for (const auto& [label, sub] : breakdown.groups) {
    json.BeginObject();
    json.Key("group").Value(label);
    WriteBreakdownBody(sub, json);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
}

std::string BreakdownJson(const LatencyBreakdown& breakdown) {
  JsonWriter json;
  WriteBreakdownJson(breakdown, json);
  return json.str();
}

bool BreakdownMatchesReport(const LatencyBreakdown& breakdown,
                            const ServingReport& report) {
  return breakdown.requests == report.requests &&
         breakdown.p50_s == report.p50_latency_s &&
         breakdown.p95_s == report.p95_latency_s &&
         breakdown.p99_s == report.p99_latency_s;
}

std::string CollapsedStacks(const std::vector<RequestAttribution>& requests) {
  // Aggregate before rendering: map keys give the lexicographic line
  // order the flame importers (and the byte-identity gate) rely on.
  std::map<std::string, double> weight;
  for (const RequestAttribution& r : requests) {
    std::string base = "all;";
    if (!r.group.empty()) {
      base += r.group;
      base += ';';
    }
    base += RequestPathName(r.path);
    for (const StageSegment& seg : r.segments) {
      weight[base + ';' + StageName(seg.stage)] += seg.duration_s();
    }
  }
  std::string out;
  for (const auto& [stack, seconds] : weight) {
    const long long ns = std::llround(seconds * 1e9);
    if (ns <= 0) continue;
    out += stack;
    out += ' ';
    out += std::to_string(ns);
    out += '\n';
  }
  return out;
}

const RequestAttribution* TailRequest(
    const std::vector<RequestAttribution>& requests) {
  const RequestAttribution* worst = nullptr;
  for (const RequestAttribution& r : requests) {
    // requests are (group, id)-sorted, so strict > keeps the first of a
    // tie -- the lowest (group, offered_id), deterministically.
    if (worst == nullptr || r.total_s() > worst->total_s()) worst = &r;
  }
  return worst;
}

std::string CriticalPathString(const RequestAttribution& request) {
  std::string out = "req " + std::to_string(request.offered_id);
  if (!request.group.empty()) out += " @" + request.group;
  out += ": ";
  for (std::size_t i = 0; i < request.segments.size(); ++i) {
    const StageSegment& seg = request.segments[i];
    if (i > 0) out += " -> ";
    out += StageName(seg.stage);
    out += ' ';
    out += Ms(seg.duration_s());
    if (!seg.note.empty()) out += " (" + seg.note + ")";
  }
  out += " | e2e " + Ms(request.total_s());
  return out;
}

}  // namespace latte::obs
