#include "obs/percentiles.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace latte::obs {

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double PercentileOfWindow(const std::vector<double>& window,
                          std::size_t count, double p) {
  if (count == 0) return 0;
  std::vector<double> sorted(
      window.begin(),
      window.begin() + static_cast<std::ptrdiff_t>(std::min(count,
                                                            window.size())));
  std::sort(sorted.begin(), sorted.end());
  return PercentileOfSorted(sorted, p);
}

FixedHistogram::FixedHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi) {
  if (!(hi > lo)) {
    throw std::invalid_argument("FixedHistogram: hi must exceed lo (got [" +
                                std::to_string(lo) + ", " +
                                std::to_string(hi) + "))");
  }
  if (buckets == 0) {
    throw std::invalid_argument("FixedHistogram: needs at least one bucket");
  }
  width_ = (hi - lo) / static_cast<double>(buckets);
  counts_.assign(buckets, 0);
}

void FixedHistogram::Record(double v) {
  std::size_t b = 0;
  if (v >= hi_) {
    b = counts_.size() - 1;
  } else if (v > lo_) {
    b = static_cast<std::size_t>((v - lo_) / width_);
    if (b >= counts_.size()) b = counts_.size() - 1;  // edge rounding
  }
  ++counts_[b];
  ++total_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

double FixedHistogram::bucket_lo(std::size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket);
}

}  // namespace latte::obs
