#pragma once
// Latency attribution and forensics over recorded lifecycle traces.
//
// PR 9's Tracer records what happened; this module answers *where the
// time went*.  AttributeTracer() walks Merged() spans and rebuilds every
// served request's timeline as a gap-free chain of stage segments --
// queue-wait, (per-tier) service, shard collectives, escalated first
// passes, cache hits, coalesce waits -- whose boundaries are the exact
// doubles the engine recorded: consecutive segments share their boundary
// bitwise, the first begins at the arrival and the last ends at the
// completion, so the decomposition covers each request's end-to-end
// latency with no unattributed gap (checked, never assumed).
//
// ComputeBreakdown() aggregates attributions into a LatencyBreakdown:
// per-stage p50/p95/p99 through the shared obs/percentiles arithmetic,
// a "p99 budget" (which stage dominates the tail cohort), per-replica
// sub-breakdowns for fleet traces, and the critical path of the worst
// request.  CollapsedStacks() renders the same attributions as
// FlameGraph/speedscope-loadable collapsed stacks.  Everything here is a
// pure function of the merged span stream, so -- like the tracer itself
// -- every output is byte-identical at any thread count and CI can gate
// breakdown JSON against a recorded baseline (bench/check_regression.py
// compare_breakdown, tools/trace_diff).

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace latte {
struct ServingReport;
}

namespace latte::obs {

class JsonWriter;

/// Stages a request's end-to-end latency decomposes into, in the fixed
/// order reports and flame stacks use.  Values are stable (they appear in
/// exported breakdown JSON); append, never renumber.
enum class Stage : std::uint8_t {
  kQueueWait = 0,      ///< arrival (or re-queue) -> its batch's launch
  kService,            ///< final batch launch -> completion (minus comm)
  kShardComm,          ///< gang collectives tail of a sharded service
  kEscalatedService,   ///< a superseded cheap first pass (launch -> done)
  kCacheHit,           ///< served from a live entry (arrival -> done)
  kCoalesceWait,       ///< follower riding an in-flight leader
};
inline constexpr std::size_t kStageCount = 6;

/// Stable lower-case stage name ("queue_wait", "shard_comm", ...).
const char* StageName(Stage stage);

/// Which lifecycle a request took through the engine.
enum class RequestPath : std::uint8_t {
  kBatched = 0,  ///< admitted, batched, served
  kEscalated,    ///< cheap first pass superseded, re-run at tier 0
  kCacheHit,     ///< served from the result cache
  kCoalesced,    ///< coalesced onto an in-flight leader
};
const char* RequestPathName(RequestPath path);

/// One contiguous slice of a request's timeline.
struct StageSegment {
  Stage stage = Stage::kQueueWait;
  double begin_s = 0;
  double end_s = 0;
  /// Kind-specific annotation ("batch 7", "worker 1") for critical-path
  /// rendering; empty when there is nothing to name.
  std::string note;

  double duration_s() const { return end_s - begin_s; }
};

/// One request's reconstructed timeline.
struct RequestAttribution {
  std::uint64_t offered_id = 0;  ///< Push() ordinal within its engine
  /// Track-group label: the replica prefix of a fleet trace ("r0"),
  /// empty for a single engine.
  std::string group;
  RequestPath path = RequestPath::kBatched;
  double arrival_s = 0;
  double done_s = 0;
  /// Time-ordered, boundary-contiguous stage cover of [arrival, done].
  std::vector<StageSegment> segments;
  /// Per-stage totals (a stage may repeat, e.g. two queue waits around an
  /// escalation), indexed by Stage.
  double stage_s[kStageCount] = {};

  double total_s() const { return done_s - arrival_s; }
  /// Left-to-right sum of segment durations -- what "stage sums
  /// reconstruct the end-to-end latency" is checked against.
  double attributed_s() const;
  /// Exact boundary contiguity: segments tile [arrival, done] with every
  /// shared boundary equal bitwise.
  bool gap_free() const;
};

/// Everything one attribution pass recovers from a trace.
struct Attribution {
  /// Served requests sorted by (group, offered_id) -- deterministic.
  std::vector<RequestAttribution> requests;
  /// Requests whose spans were incomplete (ring-buffer overflow dropped
  /// a span the walk needed).  Never silently folded into `requests`.
  std::size_t unattributed = 0;
  /// kReject instants seen (bounced / shed requests; they have no
  /// latency to attribute).
  std::size_t rejected = 0;
  /// Per-track-group reject counts, sorted by label (feeds the per-group
  /// sub-breakdowns of fleet traces).
  std::vector<std::pair<std::string, std::size_t>> rejected_by_group;
};

/// Rebuilds per-request timelines from a merged span stream.  `tracks`
/// is the tracer's (id, name) registry: names ending in "control" and
/// containing "worker " define a track group (one per engine); tracks
/// matching neither (e.g. a ShardExecutor's functional-stage lanes) are
/// ignored.
Attribution AttributeSpans(
    const std::vector<TraceEvent>& merged,
    const std::vector<std::pair<std::uint32_t, std::string>>& tracks);

/// AttributeSpans over tracer.Merged() / tracer.tracks().
Attribution AttributeTracer(const Tracer& tracer);

/// Aggregate statistics of one stage across requests.
struct StageStats {
  Stage stage = Stage::kQueueWait;
  std::size_t requests = 0;  ///< requests with at least one such segment
  double total_s = 0;        ///< summed over all requests
  double share = 0;          ///< total_s / sum of all stage totals
  double p50_s = 0;
  double p95_s = 0;
  double p99_s = 0;
  double max_s = 0;
};

/// Which stage the p99 cohort's latency budget goes to.
struct TailAttribution {
  double threshold_s = 0;      ///< the e2e p99; cohort is latency >= this
  std::size_t requests = 0;    ///< cohort size (>= 1 when any request)
  double share[kStageCount] = {};  ///< stage share of the cohort's budget
  Stage dominant = Stage::kQueueWait;
  double dominant_share = 0;
};

/// The full decomposition of a run.
struct LatencyBreakdown {
  std::size_t requests = 0;
  std::size_t rejected = 0;
  std::size_t unattributed = 0;
  double mean_s = 0;
  double p50_s = 0;  ///< bitwise equal to the pooled ServingReport's
  double p95_s = 0;
  double p99_s = 0;
  double max_s = 0;
  /// Every request's segments tile [arrival, done] with exact shared
  /// boundaries: nothing in the end-to-end latency is unattributed.
  bool gap_free = true;
  /// Left-to-right duration sums equal done - arrival bitwise for every
  /// request (the stronger, FP-associativity-sensitive form of gap_free).
  bool reconstruction_exact = true;
  double max_gap_s = 0;  ///< worst boundary mismatch (0 when gap_free)
  /// Stages present in this run, in Stage order.
  std::vector<StageStats> stages;
  TailAttribution tail;
  /// The worst request's serial chain, rendered for humans
  /// ("req 42 @r1: queue_wait 2.10ms (batch 7) -> ...").
  std::string critical_path;
  /// Per-track-group sub-breakdowns (fleet traces only; empty when the
  /// trace has a single group), sorted by label.
  std::vector<std::pair<std::string, LatencyBreakdown>> groups;
};

/// Aggregates attributions into the run's breakdown.
LatencyBreakdown ComputeBreakdown(const Attribution& attribution);

/// Emits the breakdown as one JSON object (schema_version, end_to_end,
/// stages, tail, groups, critical_path).  %.17g values, so a reader
/// recovers the exact doubles; byte-deterministic.
void WriteBreakdownJson(const LatencyBreakdown& breakdown, JsonWriter& json);
std::string BreakdownJson(const LatencyBreakdown& breakdown);

/// The pooled ServingReport and the breakdown describe the same request
/// set through the same percentile arithmetic: true when requests and
/// p50/p95/p99 agree bitwise.
bool BreakdownMatchesReport(const LatencyBreakdown& breakdown,
                            const ServingReport& report);

/// Collapsed-stack flame rendering: one line per
/// "all;<group>;<path>;<stage>" frame chain with its total weight in
/// integer nanoseconds, lines sorted lexicographically (FlameGraph /
/// speedscope "Brendan Gregg collapsed" importers load this directly).
std::string CollapsedStacks(const std::vector<RequestAttribution>& requests);

/// The worst request (max end-to-end latency; ties break to the lowest
/// (group, offered_id)), or nullptr when `requests` is empty.
const RequestAttribution* TailRequest(
    const std::vector<RequestAttribution>& requests);

/// Renders one request's serial chain:
/// "req 42 @r1: queue_wait 2.10ms (batch 7) -> service 1.30ms (worker 0)
///  | e2e 3.40ms".
std::string CriticalPathString(const RequestAttribution& request);

}  // namespace latte::obs
