#pragma once
// Run manifests: one JSON block capturing everything needed to reproduce
// a recorded run -- the configuration (pre-serialized JSON, e.g. a
// DesignPointToJson dump), the seed, a host stamp, and the headline
// metrics the run produced.  This is the ROADMAP's run-manifest
// persistence item in the SET-ISCA2023 JSON-IR idiom: provenance is
// captured at the source when the run happens, not reconstructed later.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace latte::obs {

class JsonWriter;

struct RunManifest {
  std::string name;          ///< what ran ("bench_obs/serving_sweep", ...)
  std::uint64_t seed = 0;    ///< the run's master seed
  /// Pre-serialized config JSON (spliced verbatim; empty emits null).
  /// search/json_io.hpp's ParseJson round-trips it.
  std::string config_json;
  /// Headline metrics, emitted in the given order with %.17g values so a
  /// reader recovers the exact doubles.
  std::vector<std::pair<std::string, double>> metrics;
};

/// Emits {"manifest_version":1,"name":...,"seed":...,"host":{...},
/// "config":<raw>,"metrics":{...}} into `json`.
void WriteRunManifest(const RunManifest& manifest, JsonWriter& json);

/// Convenience: the manifest as a standalone JSON document.
std::string RunManifestJson(const RunManifest& manifest);

}  // namespace latte::obs
