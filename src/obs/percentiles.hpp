#pragma once
// The one percentile / latency-pooling / histogram implementation.
//
// Before this module, p50/p95/p99 pooling was written four times --
// serve/report, cluster/accounting, adapt/controller and (transitively)
// fpga/serving -- each with its own copy of the sort-and-interpolate
// arithmetic and the first-arrival/last-done span bookkeeping.  All of
// them now route here, so a percentile is computed by exactly one
// function and the reports stay byte-identical with each other by
// construction, not by careful duplication.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace latte::obs {

/// Linear-interpolated percentile of an ascending-sorted sample, p in
/// [0, 1].  Returns 0 on an empty sample.  This is the arithmetic every
/// report in the repo uses; recorded bench baselines depend on it bit
/// for bit, so change it only with a baseline re-record.
double PercentileOfSorted(const std::vector<double>& sorted, double p);

/// Percentile of the first `count` entries of an *unsorted* ring-buffer
/// window (the adaptive controller's rolling view): copies, sorts, and
/// interpolates.  Returns 0 when count == 0.
double PercentileOfWindow(const std::vector<double>& window,
                          std::size_t count, double p);

/// Accumulates per-request latencies plus the first-arrival -> last-done
/// span every report derives throughput and busy fraction from.  The
/// pooling loops in serve/engine and cluster/accounting fold onto this;
/// Add/ExtendSpan reproduce their arithmetic exactly.
struct LatencyPool {
  std::vector<double> latencies;
  double first_arrival = std::numeric_limits<double>::infinity();
  double last_done = 0;

  /// One served request: latency done - arrival, extending the span on
  /// both ends.
  void Add(double arrival_s, double done_s) {
    latencies.push_back(done_s - arrival_s);
    if (arrival_s < first_arrival) first_arrival = arrival_s;
    if (done_s > last_done) last_done = done_s;
  }

  /// Extends only the completion edge -- a batch whose members all went
  /// elsewhere (adaptive: every first pass superseded) still holds the
  /// span open until its completion.
  void ExtendSpan(double done_s) {
    if (done_s > last_done) last_done = done_s;
  }

  /// first-arrival -> last-done, or 0 when nothing was pooled.
  double span() const {
    return latencies.empty() ? 0 : last_done - first_arrival;
  }
};

/// Fixed-bucket histogram: `buckets` uniform cells over [lo, hi), with
/// values below lo folded into the first cell and values at or above hi
/// into the last (bounded memory, nothing dropped silently).  The
/// registry's histogram metric; deterministic given the same Record
/// sequence.
class FixedHistogram {
 public:
  /// Requires hi > lo and buckets >= 1 (throws std::invalid_argument).
  FixedHistogram(double lo, double hi, std::size_t buckets);

  void Record(double v);

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t count(std::size_t bucket) const { return counts_[bucket]; }
  /// Inclusive lower edge of `bucket`.
  double bucket_lo(std::size_t bucket) const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::uint64_t total() const { return total_; }
  double sum() const { return sum_; }
  double min() const { return min_; }  ///< +inf when empty
  double max() const { return max_; }  ///< -inf when empty

 private:
  double lo_;
  double hi_;
  double width_;  ///< (hi - lo) / buckets
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace latte::obs
