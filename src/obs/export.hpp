#pragma once
// Bridges from the stack's existing accounting structs into the metrics
// registry, so AdmissionStats / CacheStats / CacheStoreStats /
// ServingReport / ThreadPool health all surface through one named sink
// instead of bespoke structs-only paths.
//
// Convention: every metric is named "<prefix>.<field>".  Cumulative
// event counts land in counters (exporting the same struct twice *adds*
// -- call once per drained run, or use distinct prefixes); point-in-time
// values (queue depth, bytes in use, report percentiles) land in gauges.

#include <string>
#include <string_view>

namespace latte {
struct AdmissionStats;
struct CacheStats;
struct CacheStoreStats;
struct ServingReport;
class ThreadPool;
}  // namespace latte

namespace latte::obs {

class MetricsRegistry;
class Tracer;

void ExportAdmissionStats(const AdmissionStats& stats, std::string_view prefix,
                          MetricsRegistry& registry);

/// Store-lifetime counters (insertions/evictions/...) as counters,
/// occupancy (entries, bytes_used, peak_bytes) as gauges.
void ExportCacheStoreStats(const CacheStoreStats& stats,
                           std::string_view prefix, MetricsRegistry& registry);

/// Per-stream lookup outcomes (hits/coalesced/misses/bypassed) plus the
/// store snapshot under "<prefix>.store".
void ExportCacheStats(const CacheStats& stats, std::string_view prefix,
                      MetricsRegistry& registry);

/// Pool health: size/completed/task_errors as counters ("tasks run" is
/// cumulative), queue depth as a gauge.
void ExportThreadPoolStats(const ThreadPool& pool, std::string_view prefix,
                           MetricsRegistry& registry);

/// Headline report numbers as gauges (requests/batches as counters).
void ExportServingReport(const ServingReport& report, std::string_view prefix,
                         MetricsRegistry& registry);

/// Tracer self-accounting: events recorded and dropped as counters, plus
/// ring-buffer pressure as gauges (buffer_capacity, tracks, the fullest
/// track's high_water / high_water_frac, and how many tracks overflowed)
/// so a metrics snapshot shows overflow without walking Merged().
void ExportTracerStats(const Tracer& tracer, std::string_view prefix,
                       MetricsRegistry& registry);

}  // namespace latte::obs
