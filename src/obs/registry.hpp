#pragma once
// Named metrics registry: counters, gauges and fixed-bucket histograms
// addressed by string name, exported as one deterministic JSON snapshot.
//
// The registry replaces the bespoke structs-only paths (AdmissionStats,
// CacheStats, ThreadPool counters each needed hand-written plumbing to
// reach a report) with one sink: library code registers what it knows,
// exporters in obs/export.cpp bridge the existing structs in, and
// ToJson() emits every metric name-sorted -- the snapshot is a pure
// function of the recorded values, independent of registration order,
// which is what lets CI diff it against a baseline.
//
// Handles returned by counter()/gauge()/histogram() stay valid for the
// registry's lifetime (std::map nodes never move).  Not thread-safe by
// design: metrics are recorded on the control thread alongside the
// virtual-time event loop; worker-side facts (pool queue depth, tasks
// run) are sampled from the control thread via their own atomics.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/percentiles.hpp"

namespace latte::obs {

class JsonWriter;

/// Monotonic event count.
class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins sampled value.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

class MetricsRegistry {
 public:
  /// Finds or creates the named metric.  histogram() requires a shape on
  /// first registration; later lookups of the same name ignore the shape
  /// arguments and throw if they disagree with the registered one (a
  /// silent shape change would corrupt the recorded distribution).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  FixedHistogram& histogram(std::string_view name, double lo, double hi,
                            std::size_t buckets);

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Emits {"counters":{...},"gauges":{...},"histograms":{...}} with every
  /// section name-sorted.  Counter values are integers, gauges %.17g
  /// (hex-exact round-trip), histogram buckets integer counts.
  void WriteJson(JsonWriter& json) const;
  std::string ToJson() const;

  void Clear();

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, FixedHistogram, std::less<>> histograms_;
};

}  // namespace latte::obs
