#pragma once
// Deterministic request-lifecycle tracer.
//
// Spans are recorded in *virtual* time -- the same clock batches,
// admission and reports run on -- into per-track buffers.  A track is a
// logical lane (one per virtual worker slot, one control lane per
// engine, one per shard in a gang) and every track is only ever written
// by one thread, so buffers need no locks and their contents are the
// program order of a deterministic event loop.  Merged() concatenates
// tracks in id order and stable-sorts by (begin_s, track): the merged
// stream is therefore byte-identical at any thread count, which is what
// lets CI gate a trace against a recorded baseline.
//
// Memory is bounded: each track keeps its first `buffer_capacity`
// events and counts the rest as dropped -- never silently.  Optional
// wall-clock stamps (TraceConfig::wall_time) are for humans reading a
// Perfetto view; they are excluded from every determinism claim.
//
// The disabled path is one pointer check at each instrumentation site:
// an engine with tracing off holds a null Tracer* and records nothing.

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "config/check.hpp"

namespace latte::obs {

/// Every span/instant kind the serving stack records.  Values are stable
/// (they appear in exported traces); append, never renumber.
enum class SpanKind : std::uint8_t {
  kAdmit = 0,         ///< request admitted to the waiting room (arg: tier)
  kReject,            ///< bounced by the bounded queue / shed (instant)
  kCacheHit,          ///< served from a live cache entry (span: arrival->done)
  kCacheCoalesce,     ///< follower rode an in-flight leader (span)
  kForm,              ///< batch open->seal (arg: BatchSeal reason)
  kQueueWait,         ///< request arrival->its batch's launch (arg: batch)
  kService,           ///< batch launch->completion on a worker (arg: size/tier)
  kComplete,          ///< request completion (instant, arg: batch)
  kEscalate,          ///< cheap first pass superseded, re-run at tier 0
  kEpoch,             ///< controller epoch boundary (arg: level after)
  kStage,             ///< one shard's slice of a gang stage (arg: shard)
};

/// Stable lower-case name ("admit", "queue_wait", ...) used as the Chrome
/// trace event name.
const char* SpanKindName(SpanKind kind);

/// Tracing knobs, carried inside ServingEngineConfig / ClusterConfig.
struct TraceConfig {
  bool enabled = false;
  /// Max events retained per track; beyond it events are counted as
  /// dropped, never silently discarded.
  std::size_t buffer_capacity = 1u << 16;
  /// Also stamp wall-clock seconds on each event.  Off by default: wall
  /// stamps are non-deterministic and excluded from byte-exact replay.
  bool wall_time = false;
};

/// Names every illegal field; empty means legal.
ConfigIssues CheckTraceConfig(const TraceConfig& cfg);

/// One recorded event.  Instants have end_s == begin_s.
struct TraceEvent {
  double begin_s = 0;   ///< virtual time
  double end_s = 0;     ///< virtual time; == begin_s for instants
  double wall_s = -1;   ///< wall stamp when enabled, else -1
  std::uint64_t id = 0; ///< request Push() ordinal / batch ordinal / stage
  std::int64_t arg = 0; ///< kind-specific payload (seal reason, tier, ...)
  std::uint32_t track = 0;
  SpanKind kind = SpanKind::kAdmit;
};

/// Bounded per-track event buffer: keeps the first `capacity` events and
/// counts overflow.  Single-writer; the writer is whichever thread owns
/// the track.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity) : capacity_(capacity) {
    events_.reserve(capacity < 1024 ? capacity : 1024);
  }

  void Record(const TraceEvent& e) {
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(e);
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }
  void Clear() {
    events_.clear();
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// The tracer an engine/cluster run records into.
///
/// Threading contract: RegisterTrack() only from the control thread
/// *before* any parallel recording (engines register at construction /
/// attach); after that the track map is immutable and Record() calls on
/// distinct tracks never contend.  Each track has exactly one writer.
class Tracer {
 public:
  explicit Tracer(const TraceConfig& cfg);

  /// Creates (or re-labels) a track.  Idempotent per id.
  void RegisterTrack(std::uint32_t track, std::string name);

  /// Records into the track's buffer.  Throws std::invalid_argument on an
  /// unregistered track -- a wiring bug, not a runtime condition.
  void Record(const TraceEvent& e);

  bool wall_time() const { return cfg_.wall_time; }

  /// Wall-clock stamp helper: seconds since the tracer was built, or -1
  /// when wall_time is off.  Only meaningful for human-facing views.
  double WallStamp() const;

  /// All events across tracks, merged deterministically: tracks in id
  /// order, stable-sorted by (begin_s, track) -- same-track ties keep
  /// their single-writer program order, so the stream is a pure function
  /// of the virtual-time run.
  std::vector<TraceEvent> Merged() const;

  /// Total events dropped across tracks (bounded-buffer overflow).
  std::uint64_t total_dropped() const;

  /// Registered tracks in id order: (track, name).
  std::vector<std::pair<std::uint32_t, std::string>> tracks() const;

  const TraceBuffer* buffer(std::uint32_t track) const;

  /// Drops all recorded events (track registrations survive); for reusing
  /// one tracer across streams.
  void Clear();

  const TraceConfig& config() const { return cfg_; }

 private:
  struct Track {
    std::string name;
    TraceBuffer buffer;
  };
  TraceConfig cfg_;
  std::map<std::uint32_t, Track> tracks_;
  std::chrono::steady_clock::time_point wall0_;
};

}  // namespace latte::obs
