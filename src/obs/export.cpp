#include "obs/export.hpp"

#include <algorithm>

#include "cache/stats.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/engine.hpp"
#include "serve/report.hpp"

namespace latte::obs {
namespace {

std::string Name(std::string_view prefix, std::string_view field) {
  std::string name(prefix);
  name += '.';
  name += field;
  return name;
}

}  // namespace

void ExportAdmissionStats(const AdmissionStats& stats, std::string_view prefix,
                          MetricsRegistry& registry) {
  registry.counter(Name(prefix, "offered")).Add(stats.offered);
  registry.counter(Name(prefix, "accepted")).Add(stats.accepted);
  registry.counter(Name(prefix, "rejected")).Add(stats.rejected);
  registry.gauge(Name(prefix, "peak_queue"))
      .Set(static_cast<double>(stats.peak_queue));
}

void ExportCacheStoreStats(const CacheStoreStats& stats,
                           std::string_view prefix,
                           MetricsRegistry& registry) {
  registry.counter(Name(prefix, "insertions")).Add(stats.insertions);
  registry.counter(Name(prefix, "refreshes")).Add(stats.refreshes);
  registry.counter(Name(prefix, "evictions")).Add(stats.evictions);
  registry.counter(Name(prefix, "expirations")).Add(stats.expirations);
  registry.counter(Name(prefix, "rejected_too_large"))
      .Add(stats.rejected_too_large);
  registry.counter(Name(prefix, "invalidations")).Add(stats.invalidations);
  registry.gauge(Name(prefix, "entries"))
      .Set(static_cast<double>(stats.entries));
  registry.gauge(Name(prefix, "bytes_used"))
      .Set(static_cast<double>(stats.bytes_used));
  registry.gauge(Name(prefix, "peak_bytes"))
      .Set(static_cast<double>(stats.peak_bytes));
}

void ExportCacheStats(const CacheStats& stats, std::string_view prefix,
                      MetricsRegistry& registry) {
  registry.counter(Name(prefix, "lookups")).Add(stats.lookups);
  registry.counter(Name(prefix, "hits")).Add(stats.hits);
  registry.counter(Name(prefix, "coalesced")).Add(stats.coalesced);
  registry.counter(Name(prefix, "misses")).Add(stats.misses);
  registry.counter(Name(prefix, "bypassed")).Add(stats.bypassed);
  registry.gauge(Name(prefix, "hit_rate")).Set(CacheHitRate(stats));
  ExportCacheStoreStats(stats.store, Name(prefix, "store"), registry);
}

void ExportThreadPoolStats(const ThreadPool& pool, std::string_view prefix,
                           MetricsRegistry& registry) {
  registry.gauge(Name(prefix, "size")).Set(static_cast<double>(pool.size()));
  registry.counter(Name(prefix, "completed")).Add(pool.completed());
  registry.counter(Name(prefix, "task_errors")).Add(pool.task_errors());
  registry.gauge(Name(prefix, "queue_depth"))
      .Set(static_cast<double>(pool.queue_depth()));
}

void ExportServingReport(const ServingReport& report, std::string_view prefix,
                         MetricsRegistry& registry) {
  registry.counter(Name(prefix, "requests")).Add(report.requests);
  registry.counter(Name(prefix, "batches")).Add(report.batches);
  registry.gauge(Name(prefix, "mean_batch_size")).Set(report.mean_batch_size);
  registry.gauge(Name(prefix, "mean_latency_s")).Set(report.mean_latency_s);
  registry.gauge(Name(prefix, "p50_latency_s")).Set(report.p50_latency_s);
  registry.gauge(Name(prefix, "p95_latency_s")).Set(report.p95_latency_s);
  registry.gauge(Name(prefix, "p99_latency_s")).Set(report.p99_latency_s);
  registry.gauge(Name(prefix, "throughput_rps")).Set(report.throughput_rps);
  registry.gauge(Name(prefix, "device_busy_frac"))
      .Set(report.device_busy_frac);
  registry.gauge(Name(prefix, "mean_accuracy")).Set(report.mean_accuracy);
}

void ExportTracerStats(const Tracer& tracer, std::string_view prefix,
                       MetricsRegistry& registry) {
  std::uint64_t recorded = 0;
  std::size_t high_water = 0;
  std::size_t overflowed = 0;
  for (const auto& [track, name] : tracer.tracks()) {
    const TraceBuffer* buffer = tracer.buffer(track);
    if (buffer == nullptr) continue;
    recorded += buffer->events().size();
    high_water = std::max(high_water, buffer->events().size());
    if (buffer->dropped() > 0) ++overflowed;
  }
  registry.counter(Name(prefix, "events_recorded")).Add(recorded);
  registry.counter(Name(prefix, "events_dropped"))
      .Add(tracer.total_dropped());
  // Ring-buffer pressure as gauges: overflow is visible in a metrics
  // snapshot without walking Merged() accounting.  high_water is the
  // fullest track's retained-event count; at the configured capacity the
  // next event on that track drops.
  const std::size_t capacity = tracer.config().buffer_capacity;
  registry.gauge(Name(prefix, "buffer_capacity"))
      .Set(static_cast<double>(capacity));
  registry.gauge(Name(prefix, "tracks"))
      .Set(static_cast<double>(tracer.tracks().size()));
  registry.gauge(Name(prefix, "high_water"))
      .Set(static_cast<double>(high_water));
  registry.gauge(Name(prefix, "high_water_frac"))
      .Set(capacity == 0 ? 0.0
                         : static_cast<double>(high_water) /
                               static_cast<double>(capacity));
  registry.gauge(Name(prefix, "tracks_overflowed"))
      .Set(static_cast<double>(overflowed));
}

}  // namespace latte::obs
