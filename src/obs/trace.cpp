#include "obs/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace latte::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kAdmit:
      return "admit";
    case SpanKind::kReject:
      return "reject";
    case SpanKind::kCacheHit:
      return "cache_hit";
    case SpanKind::kCacheCoalesce:
      return "cache_coalesce";
    case SpanKind::kForm:
      return "form";
    case SpanKind::kQueueWait:
      return "queue_wait";
    case SpanKind::kService:
      return "service";
    case SpanKind::kComplete:
      return "complete";
    case SpanKind::kEscalate:
      return "escalate";
    case SpanKind::kEpoch:
      return "epoch";
    case SpanKind::kStage:
      return "stage";
  }
  return "unknown";
}

ConfigIssues CheckTraceConfig(const TraceConfig& cfg) {
  ConfigIssues issues;
  if (!cfg.enabled) return issues;
  if (cfg.buffer_capacity == 0) {
    AddIssue(issues, "buffer_capacity",
             "must be >= 1 (a zero-capacity buffer records nothing and "
             "every event would count as dropped; disable tracing instead)");
  }
  return issues;
}

Tracer::Tracer(const TraceConfig& cfg) : cfg_(cfg) {
  ThrowOnIssues("TraceConfig", CheckTraceConfig(cfg_));
  wall0_ = std::chrono::steady_clock::now();
}

void Tracer::RegisterTrack(std::uint32_t track, std::string name) {
  auto it = tracks_.find(track);
  if (it == tracks_.end()) {
    tracks_.emplace(track, Track{std::move(name),
                                 TraceBuffer(cfg_.buffer_capacity)});
  } else {
    it->second.name = std::move(name);
  }
}

void Tracer::Record(const TraceEvent& e) {
  auto it = tracks_.find(e.track);
  if (it == tracks_.end()) {
    throw std::invalid_argument(
        "Tracer::Record: track " + std::to_string(e.track) +
        " was never registered (tracks must be registered at attach time, "
        "before any recording)");
  }
  it->second.buffer.Record(e);
}

double Tracer::WallStamp() const {
  if (!cfg_.wall_time) return -1;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       wall0_)
      .count();
}

std::vector<TraceEvent> Tracer::Merged() const {
  std::vector<TraceEvent> merged;
  std::size_t total = 0;
  for (const auto& [track, t] : tracks_) total += t.buffer.events().size();
  merged.reserve(total);
  // std::map iterates in track-id order, so same-track runs land in
  // program order and the stable sort below never reorders them.
  for (const auto& [track, t] : tracks_) {
    const auto& events = t.buffer.events();
    merged.insert(merged.end(), events.begin(), events.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.begin_s != b.begin_s) return a.begin_s < b.begin_s;
                     return a.track < b.track;
                   });
  return merged;
}

std::uint64_t Tracer::total_dropped() const {
  std::uint64_t dropped = 0;
  for (const auto& [track, t] : tracks_) dropped += t.buffer.dropped();
  return dropped;
}

std::vector<std::pair<std::uint32_t, std::string>> Tracer::tracks() const {
  std::vector<std::pair<std::uint32_t, std::string>> out;
  out.reserve(tracks_.size());
  for (const auto& [track, t] : tracks_) out.push_back({track, t.name});
  return out;
}

const TraceBuffer* Tracer::buffer(std::uint32_t track) const {
  auto it = tracks_.find(track);
  return it == tracks_.end() ? nullptr : &it->second.buffer;
}

void Tracer::Clear() {
  for (auto& [track, t] : tracks_) t.buffer.Clear();
}

}  // namespace latte::obs
