#include "obs/manifest.hpp"

#include "obs/json_writer.hpp"

namespace latte::obs {

void WriteRunManifest(const RunManifest& manifest, JsonWriter& json) {
  json.BeginObject();
  json.Key("manifest_version").Value(std::size_t{1});
  json.Key("name").Value(manifest.name);
  json.Key("seed").Value(static_cast<std::size_t>(manifest.seed));
  StampHost(json);
  json.Key("config");
  if (manifest.config_json.empty()) {
    json.Raw("null");
  } else {
    json.Raw(manifest.config_json);
  }
  json.Key("metrics");
  json.BeginObject();
  for (const auto& [key, value] : manifest.metrics) {
    json.Key(key).ValueExact(value);
  }
  json.EndObject();
  json.EndObject();
}

std::string RunManifestJson(const RunManifest& manifest) {
  JsonWriter json;
  WriteRunManifest(manifest, json);
  return json.str();
}

}  // namespace latte::obs
