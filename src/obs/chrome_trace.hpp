#pragma once
// Chrome trace-event JSON export (the format chrome://tracing and
// Perfetto load).  One engine/cluster run becomes a process with one
// named thread-track per logical lane: lifecycle instants and
// queue-wait/stage spans on the control track, batch executions as
// async "b"/"e" slices on the worker track that served them -- so a
// loaded trace shows, per worker, which batches it ran and when, and
// per request, where its latency went.
//
// Timestamps are the run's virtual-time seconds scaled to microseconds
// (the trace-event unit).  The emitted document is a deterministic
// function of Tracer::Merged(), so with wall stamps off it is
// byte-identical at any thread count.

#include <string>

#include "obs/trace.hpp"

namespace latte::obs {

class JsonWriter;

/// Writes {"traceEvents":[...],"displayTimeUnit":"ms","otherData":{...}}.
/// otherData carries the dropped-event count so an overflowed buffer is
/// visible in the artifact itself.
void WriteChromeTrace(const Tracer& tracer, JsonWriter& json);

/// Convenience: the document as a string.
std::string ChromeTraceJson(const Tracer& tracer);

}  // namespace latte::obs
