#include "obs/registry.hpp"

#include <stdexcept>

#include "obs/json_writer.hpp"

namespace latte::obs {

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

FixedHistogram& MetricsRegistry::histogram(std::string_view name, double lo,
                                           double hi, std::size_t buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), FixedHistogram(lo, hi, buckets))
             .first;
    return it->second;
  }
  FixedHistogram& h = it->second;
  if (h.lo() != lo || h.hi() != hi || h.bucket_count() != buckets) {
    throw std::invalid_argument(
        "MetricsRegistry::histogram: '" + std::string(name) +
        "' re-registered with a different shape (recorded counts would be "
        "misread against the new buckets)");
  }
  return h;
}

void MetricsRegistry::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, c] : counters_) {
    json.Key(name).Value(static_cast<std::size_t>(c.value()));
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, g] : gauges_) {
    json.Key(name).ValueExact(g.value());
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, h] : histograms_) {
    json.Key(name);
    json.BeginObject();
    json.Key("lo").ValueExact(h.lo());
    json.Key("hi").ValueExact(h.hi());
    json.Key("total").Value(static_cast<std::size_t>(h.total()));
    json.Key("sum").ValueExact(h.sum());
    json.Key("counts");
    json.BeginArray();
    for (std::size_t b = 0; b < h.bucket_count(); ++b) {
      json.Value(static_cast<std::size_t>(h.count(b)));
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter json;
  WriteJson(json);
  return json.str();
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace latte::obs
