#include "sched/interconnect.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace latte {
namespace {

bool PositiveFinite(double v) { return std::isfinite(v) && v > 0; }

}  // namespace

ConfigIssues CheckInterconnectConfig(const InterconnectConfig& cfg) {
  ConfigIssues issues;
  if (!PositiveFinite(cfg.link_bytes_per_s)) {
    AddIssue(issues, "link_bytes_per_s", "must be positive and finite");
  }
  if (!std::isfinite(cfg.hop_latency_s) || cfg.hop_latency_s < 0) {
    AddIssue(issues, "hop_latency_s", "must be non-negative and finite");
  }
  if (cfg.dram_spill_bytes > 0 && !PositiveFinite(cfg.dram_bytes_per_s)) {
    AddIssue(issues, "dram_bytes_per_s", "must be positive and finite");
  }
  return issues;
}

void ValidateInterconnectConfig(const InterconnectConfig& cfg) {
  ThrowOnIssues("InterconnectConfig", CheckInterconnectConfig(cfg));
}

InterconnectModel::InterconnectModel(const InterconnectConfig& cfg)
    : cfg_(cfg) {
  ValidateInterconnectConfig(cfg_);
}

std::size_t InterconnectModel::Hops(std::size_t a, std::size_t b) const {
  if (cfg_.mesh_cols == 0) return a > b ? a - b : b - a;
  const std::size_t ra = a / cfg_.mesh_cols, ca = a % cfg_.mesh_cols;
  const std::size_t rb = b / cfg_.mesh_cols, cb = b % cfg_.mesh_cols;
  return (ra > rb ? ra - rb : rb - ra) + (ca > cb ? ca - cb : cb - ca);
}

std::size_t InterconnectModel::RingStepHops(std::size_t n) const {
  if (n <= 1) return 0;
  std::size_t worst = 0;
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst, Hops(i, (i + 1) % n));
  }
  return worst;
}

double InterconnectModel::TransferS(std::size_t bytes,
                                    std::size_t hops) const {
  double s = static_cast<double>(hops) * cfg_.hop_latency_s +
             static_cast<double>(bytes) / cfg_.link_bytes_per_s;
  if (cfg_.dram_spill_bytes > 0 && bytes > cfg_.dram_spill_bytes) {
    s += static_cast<double>(bytes) / cfg_.dram_bytes_per_s;
  }
  return s;
}

double InterconnectModel::AllGatherS(std::size_t shards,
                                     std::size_t bytes_per_shard) const {
  if (shards <= 1) return 0;
  const std::size_t hops = RingStepHops(shards);
  return static_cast<double>(shards - 1) * TransferS(bytes_per_shard, hops);
}

double InterconnectModel::AllReduceS(std::size_t shards,
                                     std::size_t bytes) const {
  if (shards <= 1) return 0;
  const std::size_t hops = RingStepHops(shards);
  const std::size_t chunk = (bytes + shards - 1) / shards;
  return 2.0 * static_cast<double>(shards - 1) * TransferS(chunk, hops);
}

double InterconnectModel::BroadcastS(std::size_t shards,
                                     std::size_t bytes) const {
  if (shards <= 1) return 0;
  std::size_t farthest = 0;
  for (std::size_t i = 1; i < shards; ++i) {
    farthest = std::max(farthest, Hops(0, i));
  }
  return TransferS(bytes, farthest);
}

}  // namespace latte
