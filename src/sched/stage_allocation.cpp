#include "sched/stage_allocation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace latte {
namespace {

bool IsLutClass(const OpSpec& spec) {
  // Operators whose dominant arithmetic is LUT-fabric work.
  return spec.lut_ops.quad > 0 || spec.lut_ops.lin > 0;
}

}  // namespace

double StageAllocation::DspLanes(const OpGraph& g) const {
  double acc = 0.0;
  for (const auto& a : ops) {
    if (!IsLutClass(g.node(a.op).spec)) acc += a.parallelism;
  }
  return acc;
}

double AllocationResult::TotalDsp(const OpGraph& g) const {
  double acc = 0.0;
  for (const auto& s : stages) acc += s.DspLanes(g);
  return acc;
}

std::size_t AllocationResult::StageOf(std::size_t op) const {
  for (std::size_t k = 0; k < stages.size(); ++k) {
    for (const auto& a : stages[k].ops) {
      if (a.op == op) return k;
    }
  }
  return npos;
}

AllocationResult AllocateStages(const OpGraph& g, double s_avg,
                                const AllocatorConfig& cfg) {
  if (g.size() == 0) return {};
  const auto weights = g.Weights(s_avg);
  const auto prio = g.Priorities(s_avg);

  // Visit vertices in decreasing priority; ties by vertex id for
  // determinism.  For a dataflow chain this is exactly dataflow order.
  std::vector<std::size_t> order(g.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (prio[a] != prio[b]) return prio[a] > prio[b];
                     return a < b;
                   });

  AllocationResult res;
  double committed_dsp = 0.0;  // DSP lanes in closed stages
  double committed_lut = 0.0;

  auto lanes_cost = [&](const OpSpec& spec, double lanes, double& dsp,
                        double& lut) {
    if (IsLutClass(spec)) {
      lut += lanes * cfg.lut_per_lane;
    } else {
      dsp += lanes;
    }
  };

  StageAllocation current;
  for (std::size_t v : order) {
    const OpSpec& spec = g.node(v).spec;
    if (current.ops.empty()) {
      current.ops.push_back({v, 1.0});
      continue;
    }
    // Tentatively rebalance the open stage against the newcomer.
    std::vector<AllocatedOp> rebalanced = current.ops;
    bool overflow = false;
    for (auto& a : rebalanced) {
      const double ratio = std::ceil(weights[a.op] / weights[v]);
      a.parallelism *= ratio;
      if (a.parallelism > cfg.max_parallelism) overflow = true;
    }
    // Cost of: closed stages + rebalanced open stage + the newcomer.
    double dsp = committed_dsp;
    double lut = committed_lut;
    for (const auto& a : rebalanced) {
      lanes_cost(g.node(a.op).spec, a.parallelism, dsp, lut);
    }
    lanes_cost(spec, 1.0, dsp, lut);

    if (!overflow && dsp <= cfg.dsp_budget && lut <= cfg.lut_budget) {
      current.ops = std::move(rebalanced);
      current.ops.push_back({v, 1.0});
    } else {
      // Close the stage; the newcomer opens a fresh one.
      for (const auto& a : current.ops) {
        double d = 0, l = 0;
        lanes_cost(g.node(a.op).spec, a.parallelism, d, l);
        committed_dsp += d;
        committed_lut += l;
      }
      res.stages.push_back(std::move(current));
      current = StageAllocation{};
      current.ops.push_back({v, 1.0});
    }
  }
  if (!current.ops.empty()) res.stages.push_back(std::move(current));
  return res;
}

AllocationResult CanonicalStages(const OpGraph& g, double s_avg) {
  const auto weights = g.Weights(s_avg);
  AllocationResult res;
  res.stages.resize(3);
  for (std::size_t v = 0; v < g.size(); ++v) {
    const int hint = g.node(v).spec.stage_hint;
    if (hint < 1 || hint > 3) {
      throw std::out_of_range("CanonicalStages: stage_hint outside 1..3");
    }
    res.stages[static_cast<std::size_t>(hint - 1)].ops.push_back({v, 1.0});
  }
  // Drop empty stages (e.g. graphs that only describe attention).
  std::erase_if(res.stages,
                [](const StageAllocation& s) { return s.ops.empty(); });
  // Weight-proportional lanes within each stage, lightest op = 1 lane.
  for (auto& stage : res.stages) {
    double wmin = std::numeric_limits<double>::infinity();
    for (const auto& a : stage.ops) wmin = std::min(wmin, weights[a.op]);
    for (auto& a : stage.ops) {
      a.parallelism = std::ceil(weights[a.op] / wmin);
    }
  }
  return res;
}

}  // namespace latte
