#pragma once
// Tensor-parallel partition plan of one encoder layer.
//
// A ShardPlan assigns each of N shards a contiguous slice of the three
// partitionable axes of the layer:
//
//   heads       -- attention heads: QKV projections, scores, softmax and
//                  context are embarrassingly parallel across heads
//                  (Megatron-style column parallelism of Wq/Wk/Wv),
//   ffn_cols    -- output columns of FFN1 (and GELU), i.e. rows of FFN2,
//   hidden_cols -- output columns of Wo and of FFN2's column-parallel
//                  variant.
//
// Ranges are balanced (sizes differ by at most one) and may be empty when
// the degree exceeds the axis extent, so plans exist for every (heads,
// degree) combination including degrees that do not divide the head
// count.  LayerNorms and residual adds stay serial: they are O(n*h),
// negligible next to the GEMMs, and running them in one place is what
// keeps the sharded encoder bit-exact against the unsharded one.
//
// The plan also prices itself: PartitionOpWeights splits the operator
// graph's FLOP weights into per-shard and serial buckets (the compute
// share a gang of N workers actually achieves, imbalance included), and
// PlanCommVolume/ShardLayerCommSeconds measure the collective traffic a
// layer pays under the plan, in bytes and in InterconnectModel seconds.

#include <cstddef>
#include <vector>

#include "config/check.hpp"
#include "nn/encoder.hpp"
#include "sched/interconnect.hpp"
#include "sched/op_graph.hpp"

namespace latte {

/// Half-open index range [begin, end) of one shard on one axis.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool operator==(const ShardRange&) const = default;
};

/// Knobs of plan construction.
struct ShardPlanConfig {
  std::size_t shards = 2;  ///< tensor-parallel degree (>= 1)
  /// FFN2 strategy: false (default) keeps FFN2 column-parallel -- every
  /// shard consumes the all-gathered FFN activation and produces a
  /// bit-exact output-column slice.  true switches to row-parallel FFN2:
  /// each shard multiplies only its own GELU slice and the partial sums
  /// are reduced in a fixed order -- less traffic (one all-reduce instead
  /// of two all-gathers) but exact only to rounding.
  bool row_parallel_ffn2 = false;
};

/// Names every illegal field (zero shards); empty means legal.
ConfigIssues CheckShardPlanConfig(const ShardPlanConfig& cfg);

/// Throws std::invalid_argument when the configuration is malformed
/// (zero shards).
void ValidateShardPlanConfig(const ShardPlanConfig& cfg);

/// CheckShardPlanConfig plus the encoder shape a plan must partition:
/// "encoder.heads" must be >= 1 and "encoder.hidden" divisible by it.
/// This is the full non-throwing test of what MakeShardPlan enforces.
ConfigIssues CheckShardPlanShape(const EncoderConfig& enc,
                                 const ShardPlanConfig& cfg);

/// Splits `total` indices into `parts` contiguous balanced ranges: the
/// first total % parts ranges get one extra element.  Ranges beyond
/// `total` are empty.
std::vector<ShardRange> BalancedRanges(std::size_t total, std::size_t parts);

/// The partition: one range per shard on each partitionable axis.
struct ShardPlan {
  std::size_t shards = 1;
  bool row_parallel_ffn2 = false;
  std::vector<ShardRange> heads;        ///< attention heads per shard
  std::vector<ShardRange> ffn_cols;     ///< FFN1 output columns per shard
  std::vector<ShardRange> hidden_cols;  ///< Wo / FFN2 output columns per shard

  /// Column range of shard `s` in the concatenated-heads layout:
  /// heads [h0, h1) own columns [h0*head_dim, h1*head_dim).
  ShardRange HeadCols(std::size_t s, const EncoderConfig& cfg) const {
    return {heads.at(s).begin * cfg.head_dim(), heads.at(s).end * cfg.head_dim()};
  }
};

/// Builds the balanced plan for `cfg.shards` shards of one encoder layer.
/// Validates via CheckShardPlanShape and throws std::invalid_argument
/// naming every illegal field when the configuration is malformed or the
/// encoder has zero heads / a hidden size the head count does not divide.
ShardPlan MakeShardPlan(const EncoderConfig& enc, const ShardPlanConfig& cfg);

/// FLOP weights of one layer under a plan, split into per-shard and
/// serial buckets at sequence length n.
struct ShardWeights {
  std::vector<double> shard_flops;  ///< parallel work owned by each shard
  double serial_flops = 0;          ///< LayerNorms, residual-class work
  double total_flops = 0;           ///< serial + sum of shard buckets

  /// Fraction of the layer's work on the critical path of the gang:
  /// (serial + slowest shard) / total.  1.0 for a single shard or an
  /// empty layer; approaches 1/N for a balanced N-way plan.
  double MaxShare() const;
};

/// Partitions the operator graph's arithmetic weights under `plan`:
/// attention operators split by head share, FFN1/GELU by FFN-column
/// share, Wo by hidden-column share, FFN2 by whichever axis the plan
/// splits it on, LayerNorms serial.  Operators with zero FLOPs (pure
/// LUT work, e.g. the sparse attention selector) fall back to their
/// lut_ops weight so sparse-mode graphs partition meaningfully too.
ShardWeights PartitionOpWeights(const OpGraph& graph, const ShardPlan& plan,
                                const EncoderConfig& enc, double n);

/// Collective traffic one encoder layer pays under a plan at sequence
/// length n, in fp32 bytes.  `gather_*` fields are per-shard contribution
/// sizes (what one ring step carries); `reduce_ffn_bytes` is the total
/// tensor size all-reduced by the row-parallel FFN2; `broadcast_*` are
/// full-tensor sizes sent from the serial stage to every shard.
struct ShardCommVolume {
  std::size_t gather_ctx_bytes = 0;    ///< attention context slices
  std::size_t gather_attn_bytes = 0;   ///< Wo output slices
  std::size_t broadcast_x1_bytes = 0;  ///< post-LN1 residual to all shards
  std::size_t gather_ffn_bytes = 0;    ///< GELU slices (column-parallel FFN2)
  std::size_t reduce_ffn_bytes = 0;    ///< FFN2 partials (row-parallel FFN2)
  std::size_t gather_out_bytes = 0;    ///< FFN2 output slices (column mode)
  std::size_t broadcast_out_bytes = 0; ///< post-LN2 output to all shards

  std::size_t TotalBytes() const {
    return gather_ctx_bytes + gather_attn_bytes + broadcast_x1_bytes +
           gather_ffn_bytes + reduce_ffn_bytes + gather_out_bytes +
           broadcast_out_bytes;
  }
};

/// Per-layer collective volumes under `plan` at sequence length n.
/// All zero when plan.shards <= 1 (nothing to communicate).
ShardCommVolume PlanCommVolume(const ShardPlan& plan, const EncoderConfig& enc,
                               std::size_t seq_len);

/// Virtual-time seconds one layer spends in collectives under `plan`:
/// the PlanCommVolume steps priced by `icn` (all-gathers for slices, an
/// all-reduce for row-parallel FFN2 partials, broadcasts for the serial
/// stages' outputs).
double ShardLayerCommSeconds(const ShardPlan& plan, const EncoderConfig& enc,
                             const InterconnectModel& icn,
                             std::size_t seq_len);

}  // namespace latte
