#include "sched/op_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace latte {

std::size_t OpGraph::AddNode(OpSpec spec) {
  nodes_.push_back(OpNode{std::move(spec), {}, {}});
  return nodes_.size() - 1;
}

void OpGraph::AddEdge(std::size_t u, std::size_t v) {
  if (u >= nodes_.size() || v >= nodes_.size()) {
    throw std::out_of_range("OpGraph::AddEdge: vertex id out of range");
  }
  if (u == v) {
    throw std::invalid_argument("OpGraph::AddEdge: self edge");
  }
  nodes_[u].succ.push_back(v);
  nodes_[v].pred.push_back(u);
}

OpGraph OpGraph::Chain(const std::vector<OpSpec>& ops) {
  OpGraph g;
  std::size_t prev = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const std::size_t id = g.AddNode(ops[i]);
    if (i > 0) g.AddEdge(prev, id);
    prev = id;
  }
  return g;
}

std::vector<std::size_t> OpGraph::TopoOrder() const {
  std::vector<std::size_t> indeg(nodes_.size(), 0);
  for (const auto& n : nodes_) {
    for (std::size_t s : n.succ) ++indeg[s];
  }
  std::vector<std::size_t> order;
  order.reserve(nodes_.size());
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (indeg[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    // Smallest id first: deterministic order independent of insertion.
    const auto it = std::min_element(ready.begin(), ready.end());
    const std::size_t v = *it;
    ready.erase(it);
    order.push_back(v);
    for (std::size_t s : nodes_[v].succ) {
      if (--indeg[s] == 0) ready.push_back(s);
    }
  }
  if (order.size() != nodes_.size()) {
    throw std::runtime_error("OpGraph::TopoOrder: graph has a cycle");
  }
  return order;
}

std::vector<double> OpGraph::Weights(double s_avg) const {
  constexpr double kMinWeight = 1.0;  // keeps ceil ratios finite
  std::vector<double> w(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    w[i] = std::max(kMinWeight, nodes_[i].spec.flops.Eval(s_avg));
  }
  return w;
}

std::vector<double> OpGraph::Priorities(double s_avg) const {
  const auto w = Weights(s_avg);
  const auto topo = TopoOrder();
  std::vector<double> p(nodes_.size(), 0.0);
  // Sweep in reverse topological order: successors are final before v.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const std::size_t v = *it;
    double best_succ = 0.0;
    for (std::size_t s : nodes_[v].succ) {
      best_succ = std::max(best_succ, p[s]);
    }
    p[v] = w[v] + best_succ;
  }
  return p;
}

}  // namespace latte
