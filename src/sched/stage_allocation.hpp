#pragma once
// Algorithm 1: Encoder coarse-grained Stage Allocation.
//
// Operators are visited in decreasing Eq. 1 priority (for the encoder chain
// this coincides with dataflow order).  The allocator tries to add each
// operator to the currently open stage; doing so rebalances the parallelism
// of the operators already in that stage by
//
//   N'(v_j) = N(v_j) * ceil( W(v_j, s_avg) / W(v_i, s_avg) )
//
// so that heavier operators keep proportionally more lanes.  If the chip's
// DSP budget still holds, the operator joins the stage and the parallelisms
// are committed; otherwise the stage is closed and the operator opens a new
// one with parallelism 1.
//
// Interpretation notes (the pseudo-code in the paper is partially garbled --
// see DESIGN.md section 5):
//   * "resource constraints" = the sum of DSP lanes over ALL stages placed
//     so far must fit the chip budget (stages coexist spatially).
//   * Each parallelism lane of a FLOP-bearing operator costs one DSP
//     (8-bit MAC = 1 DSP, Section 5.2); LUT-class work (quantized
//     pre-selection, Top-k sort) is charged to LUT fabric and has its own
//     budget.

#include <cstddef>
#include <vector>

#include "sched/op_graph.hpp"

namespace latte {

/// Resource budget the allocator packs into (defaults: Alveo U280 SLR0).
struct AllocatorConfig {
  double dsp_budget = 3000;    ///< DSP slices available (U280 SLR0)
  double lut_budget = 400e3;   ///< LUTs available for At-Sel fabric
  /// LUTs consumed per LUT-class op lane (product table + sorter slice).
  double lut_per_lane = 400;
  /// Hard cap on any single operator's parallelism (port/banking limits).
  double max_parallelism = 4096;
};

/// One operator placed in a stage, with its committed parallelism.
struct AllocatedOp {
  std::size_t op = 0;        ///< vertex id in the OpGraph
  double parallelism = 1.0;  ///< DSP (or LUT) lanes
};

/// One coarse-grained pipeline stage.
struct StageAllocation {
  std::vector<AllocatedOp> ops;

  /// DSP lanes consumed by this stage (FLOP-bearing operators).
  double DspLanes(const OpGraph& g) const;
};

/// Result of Algorithm 1.
struct AllocationResult {
  std::vector<StageAllocation> stages;

  /// Total DSP lanes across stages.
  double TotalDsp(const OpGraph& g) const;
  /// Index of the stage containing vertex `op`, or npos.
  std::size_t StageOf(std::size_t op) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Runs Algorithm 1 on the operator graph at average sequence length s_avg.
AllocationResult AllocateStages(const OpGraph& g, double s_avg,
                                const AllocatorConfig& cfg = {});

/// The paper's hand-drawn Fig 2(a) partition: stage 1 = MM|At-Sel,
/// stage 2 = At-Comp, stage 3 = FdFwd, using each operator's stage_hint.
/// Parallelism within a stage is set proportional to operator weight
/// (ceil(W(v)/W_min)).  This is the partition the pipeline simulator uses
/// by default; the ablation bench compares it against AllocateStages.
AllocationResult CanonicalStages(const OpGraph& g, double s_avg);

}  // namespace latte
