#pragma once
// Encoder operator graph G = (V, E) and the Eq. 1 critical-path priority.
//
// Each vertex is an encoder operator with its cost polynomials (nn/op_cost);
// each edge a data dependency.  The priority of a vertex is its critical
// path to the sink evaluated at the average sequence length s_avg:
//
//   P(v, s_avg) = W(v, s_avg) + max_{u in Succ(v)} P(u, s_avg)      (Eq. 1)
//
// with W(v, s) the operator's arithmetic complexity (FLOPs) at length s.

#include <cstddef>
#include <vector>

#include "nn/op_cost.hpp"

namespace latte {

/// One vertex of the operator graph.
struct OpNode {
  OpSpec spec;
  std::vector<std::size_t> succ;
  std::vector<std::size_t> pred;
};

/// A DAG of encoder operators.
class OpGraph {
 public:
  /// Adds a vertex, returning its id.
  std::size_t AddNode(OpSpec spec);

  /// Adds the dependency u -> v.  Throws on out-of-range ids or u == v.
  void AddEdge(std::size_t u, std::size_t v);

  /// Builds the linear-chain graph of an operator list in dataflow order
  /// (the encoder of Fig 1 is a chain at this granularity).
  static OpGraph Chain(const std::vector<OpSpec>& ops);

  std::size_t size() const { return nodes_.size(); }
  const OpNode& node(std::size_t i) const { return nodes_.at(i); }

  /// Topological order; throws std::runtime_error if the graph has a cycle.
  std::vector<std::size_t> TopoOrder() const;

  /// Operator weights W(v, s_avg): FLOPs evaluated at s_avg.  Operators with
  /// zero FLOPs (pure LUT work) receive a small positive weight so ratios
  /// stay finite.
  std::vector<double> Weights(double s_avg) const;

  /// Eq. 1 critical-path priorities at s_avg.
  std::vector<double> Priorities(double s_avg) const;

 private:
  std::vector<OpNode> nodes_;
};

}  // namespace latte
