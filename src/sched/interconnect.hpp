#pragma once
// Interconnect cost model for tensor-parallel execution.
//
// When one encoder is sharded across N workers, every layer pays
// communication: all-gathers of activation slices (column-parallel
// linears), an all-reduce of partial sums (the row-parallel FFN2
// option) and a broadcast of the serially-normalized residual.  This
// model prices those collectives in virtual time so the serving twin can
// answer *where* sharding beats replication without executing tensors --
// the same NoC-flavored shape (per-hop latency, link bandwidth, DRAM
// spill for transfers that overflow on-chip buffering) the SET scheduler
// uses for inter-chiplet costs.
//
// Topology is a 1-D chain by default (worker i links to i+1) or a 2-D
// mesh when `mesh_cols` is set; collective times are ring-based:
// an all-gather is N-1 neighbor steps, an all-reduce is a reduce-scatter
// plus an all-gather (2(N-1) steps of 1/N-sized chunks).  Every quantity
// is a pure function of the configuration -- no wall clock, no state --
// so accounting sweeps stay byte-deterministic at any thread count.

#include <cstddef>

#include "config/check.hpp"

namespace latte {

/// Knobs of the interconnect cost model.
struct InterconnectConfig {
  double link_bytes_per_s = 100e9;  ///< per-link bandwidth (bytes/s)
  double hop_latency_s = 1e-6;      ///< fixed latency per traversed hop
  /// Mesh width: workers are placed row-major on a `mesh_cols`-wide 2-D
  /// mesh and distance is Manhattan.  0 keeps the 1-D chain (distance
  /// |i - j|).
  std::size_t mesh_cols = 0;
  /// Transfers larger than this spill through DRAM and additionally pay
  /// `dram_bytes_per_s`; 0 disables spilling (infinite on-chip buffers).
  std::size_t dram_spill_bytes = 0;
  double dram_bytes_per_s = 16e9;  ///< DRAM bandwidth charged on spills
};

/// Names every illegal field (non-positive or NaN bandwidths / hop
/// latency); empty means legal.
ConfigIssues CheckInterconnectConfig(const InterconnectConfig& cfg);

/// Throws std::invalid_argument naming the offending field (non-positive
/// or NaN bandwidths / hop latency).
void ValidateInterconnectConfig(const InterconnectConfig& cfg);

/// Prices point-to-point transfers and ring collectives on the configured
/// topology.  Stateless and deterministic: equal inputs give equal bits.
class InterconnectModel {
 public:
  InterconnectModel() : InterconnectModel(InterconnectConfig{}) {}
  /// Validates the configuration (throws std::invalid_argument).
  explicit InterconnectModel(const InterconnectConfig& cfg);

  const InterconnectConfig& config() const { return cfg_; }

  /// Hop distance between workers `a` and `b`: |a-b| on the chain,
  /// Manhattan distance on the row-major mesh.
  std::size_t Hops(std::size_t a, std::size_t b) const;

  /// Largest hop distance between ring neighbors (i, i+1 mod n) over the
  /// first `n` workers -- the step cost of ring collectives, dominated by
  /// the wrap-around link on a chain.
  std::size_t RingStepHops(std::size_t n) const;

  /// Seconds to move `bytes` across `hops` links: hop latency plus
  /// serialization at link bandwidth, plus the DRAM spill surcharge when
  /// the transfer exceeds the on-chip threshold.
  double TransferS(std::size_t bytes, std::size_t hops) const;

  /// Ring all-gather over `shards` workers, each contributing
  /// `bytes_per_shard`: shards-1 neighbor steps.  0 when shards <= 1.
  double AllGatherS(std::size_t shards, std::size_t bytes_per_shard) const;

  /// Ring all-reduce of a `bytes`-sized tensor over `shards` workers:
  /// reduce-scatter plus all-gather, 2(shards-1) steps of bytes/shards
  /// chunks.  0 when shards <= 1.
  double AllReduceS(std::size_t shards, std::size_t bytes) const;

  /// One-to-all broadcast of `bytes` to `shards` workers, priced as a
  /// single pipelined transfer to the farthest endpoint.  0 when
  /// shards <= 1.
  double BroadcastS(std::size_t shards, std::size_t bytes) const;

 private:
  InterconnectConfig cfg_;
};

}  // namespace latte
