#pragma once
// Post-allocation resource planning (Section 4.2, "we further adjust the
// operator parallelism N(v_i, s_i) ... and enumerate pipeline replication
// factor R(G_k, s_i) to obtain the optimal setting with the help of
// analytical performance and resource models").
//
// Given the stage partition, this planner decides how many DSP slices each
// coarse stage receives and whether a stage is replicated.  The coarse
// pipeline's throughput is limited by its slowest stage, so the optimum
// splits DSPs proportionally to per-token stage work; a per-stage-instance
// lane cap (BRAM port / banking limits) forces replication of very heavy
// stages instead of unbounded widening.

#include <cstddef>
#include <vector>

#include "sched/stage_allocation.hpp"

namespace latte {

/// Chip-level knobs for the planner.
struct PlannerConfig {
  double total_dsp = 3000;          ///< chip DSP budget (U280 SLR0)
  double max_dsp_per_instance = 1536;  ///< lane cap per stage instance
  std::size_t max_replication = 8;  ///< largest R(G_k) considered
};

/// Final plan for one stage.
struct StagePlan {
  double flops_per_token = 0;  ///< stage work per token at s_avg
  double dsp = 0;              ///< DSP slices granted (all replicas)
  std::size_t replication = 1; ///< R(G_k)
  /// Tokens/second this stage sustains: dsp * 2 flops/cycle/DSP * freq /
  /// flops_per_token.
  double TokensPerSecond(double freq_hz) const;
};

/// Plan for the whole coarse pipeline.
struct PipelinePlan {
  std::vector<StagePlan> stages;

  /// Pipeline throughput: the slowest stage's token rate.
  double TokensPerSecond(double freq_hz) const;
  /// Ratio of slowest to fastest stage token rate (1.0 = perfectly
  /// balanced); the pipeline-bubble potential of the static design.
  double BalanceRatio(double freq_hz) const;
};

/// Splits the DSP budget across stages proportionally to per-token work and
/// enumerates replication whenever a stage's proportional share exceeds the
/// per-instance cap.  `stage_flops_per_token[k]` is the stage-k work for one
/// token at the design point s_avg.
PipelinePlan PlanPipeline(const std::vector<double>& stage_flops_per_token,
                          const PlannerConfig& cfg = {});

/// Convenience: per-token stage work of an allocation at s_avg
/// (sum of member-operator FLOPs at s_avg, divided by s_avg).
std::vector<double> StageFlopsPerToken(const OpGraph& g,
                                       const AllocationResult& alloc,
                                       double s_avg);

}  // namespace latte
