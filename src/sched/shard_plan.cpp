#include "sched/shard_plan.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace latte {
namespace {

// Largest per-shard contribution on an axis, in fp32 bytes at n rows.
// Ring steps carry the worst slice, so collectives are priced on it.
std::size_t MaxSliceBytes(const std::vector<ShardRange>& ranges,
                          std::size_t seq_len) {
  std::size_t widest = 0;
  for (const auto& r : ranges) widest = std::max(widest, r.size());
  return seq_len * widest * sizeof(float);
}

// Arithmetic weight of one operator: FLOPs, falling back to LUT ops for
// the pure-LUT operators so sparse-mode graphs keep their selector work.
double OpWeight(const OpSpec& spec, double n) {
  const double flops = spec.flops.Eval(n);
  return flops > 0 ? flops : spec.lut_ops.Eval(n);
}

}  // namespace

ConfigIssues CheckShardPlanConfig(const ShardPlanConfig& cfg) {
  ConfigIssues issues;
  if (cfg.shards == 0) {
    AddIssue(issues, "shards", "must be >= 1");
  }
  return issues;
}

void ValidateShardPlanConfig(const ShardPlanConfig& cfg) {
  ThrowOnIssues("ShardPlanConfig", CheckShardPlanConfig(cfg));
}

std::vector<ShardRange> BalancedRanges(std::size_t total, std::size_t parts) {
  std::vector<ShardRange> ranges(parts);
  if (parts == 0) return ranges;
  const std::size_t base = total / parts;
  const std::size_t extra = total % parts;
  std::size_t at = 0;
  for (std::size_t s = 0; s < parts; ++s) {
    const std::size_t width = base + (s < extra ? 1 : 0);
    ranges[s] = {at, at + width};
    at += width;
  }
  return ranges;
}

ConfigIssues CheckShardPlanShape(const EncoderConfig& enc,
                                 const ShardPlanConfig& cfg) {
  ConfigIssues issues = CheckShardPlanConfig(cfg);
  if (enc.heads == 0) {
    AddIssue(issues, "encoder.heads",
             "must be >= 1 (a plan partitions attention across heads)");
  } else if (enc.hidden % enc.heads != 0) {
    AddIssue(issues, "encoder.hidden",
             "must be divisible by the head count (" +
                 std::to_string(enc.heads) +
                 "): heads own equal hidden slices");
  }
  return issues;
}

ShardPlan MakeShardPlan(const EncoderConfig& enc, const ShardPlanConfig& cfg) {
  ThrowOnIssues("MakeShardPlan", CheckShardPlanShape(enc, cfg));
  ShardPlan plan;
  plan.shards = cfg.shards;
  plan.row_parallel_ffn2 = cfg.row_parallel_ffn2;
  plan.heads = BalancedRanges(enc.heads, cfg.shards);
  plan.ffn_cols = BalancedRanges(enc.ffn(), cfg.shards);
  plan.hidden_cols = BalancedRanges(enc.hidden, cfg.shards);
  return plan;
}

double ShardWeights::MaxShare() const {
  if (total_flops <= 0) return 1.0;
  const double slowest =
      shard_flops.empty()
          ? 0.0
          : *std::max_element(shard_flops.begin(), shard_flops.end());
  return (serial_flops + slowest) / total_flops;
}

ShardWeights PartitionOpWeights(const OpGraph& graph, const ShardPlan& plan,
                                const EncoderConfig& enc, double n) {
  ShardWeights out;
  out.shard_flops.assign(plan.shards, 0.0);
  for (std::size_t v = 0; v < graph.size(); ++v) {
    const OpSpec& spec = graph.node(v).spec;
    const double w = OpWeight(spec, n);
    double axis_total = 0;
    const std::vector<ShardRange>* axis = nullptr;
    switch (spec.kind) {
      case OpKind::kQkvProjection:
      case OpKind::kScoreMatMul:
      case OpKind::kScale:
      case OpKind::kMask:
      case OpKind::kSoftmax:
      case OpKind::kContextMatMul:
      case OpKind::kAttentionSelect:
      case OpKind::kSparseScore:
      case OpKind::kSparseContext:
        axis = &plan.heads;
        axis_total = static_cast<double>(enc.heads);
        break;
      case OpKind::kOutputProjection:
        axis = &plan.hidden_cols;
        axis_total = static_cast<double>(enc.hidden);
        break;
      case OpKind::kFfn1:
      case OpKind::kGelu:
        axis = &plan.ffn_cols;
        axis_total = static_cast<double>(enc.ffn());
        break;
      case OpKind::kFfn2:
        // Row-parallel FFN2 splits the reduction (FFN rows); the
        // column-parallel variant splits output columns.  Work is
        // proportional to the owned slice either way.
        axis = plan.row_parallel_ffn2 ? &plan.ffn_cols : &plan.hidden_cols;
        axis_total = plan.row_parallel_ffn2
                         ? static_cast<double>(enc.ffn())
                         : static_cast<double>(enc.hidden);
        break;
      case OpKind::kLayerNorm1:
      case OpKind::kLayerNorm2:
        break;  // serial
    }
    if (axis == nullptr || axis_total <= 0) {
      out.serial_flops += w;
    } else {
      for (std::size_t s = 0; s < plan.shards; ++s) {
        out.shard_flops[s] +=
            w * static_cast<double>((*axis)[s].size()) / axis_total;
      }
    }
    out.total_flops += w;
  }
  return out;
}

ShardCommVolume PlanCommVolume(const ShardPlan& plan, const EncoderConfig& enc,
                               std::size_t seq_len) {
  ShardCommVolume v;
  if (plan.shards <= 1) return v;
  const std::size_t full_bytes = seq_len * enc.hidden * sizeof(float);
  v.gather_ctx_bytes = MaxSliceBytes(plan.heads, seq_len) * enc.head_dim();
  v.gather_attn_bytes = MaxSliceBytes(plan.hidden_cols, seq_len);
  v.broadcast_x1_bytes = full_bytes;
  if (plan.row_parallel_ffn2) {
    v.reduce_ffn_bytes = full_bytes;
  } else {
    v.gather_ffn_bytes = MaxSliceBytes(plan.ffn_cols, seq_len);
    v.gather_out_bytes = MaxSliceBytes(plan.hidden_cols, seq_len);
  }
  v.broadcast_out_bytes = full_bytes;
  return v;
}

double ShardLayerCommSeconds(const ShardPlan& plan, const EncoderConfig& enc,
                             const InterconnectModel& icn,
                             std::size_t seq_len) {
  if (plan.shards <= 1) return 0;
  const ShardCommVolume v = PlanCommVolume(plan, enc, seq_len);
  double s = icn.AllGatherS(plan.shards, v.gather_ctx_bytes) +
             icn.AllGatherS(plan.shards, v.gather_attn_bytes) +
             icn.BroadcastS(plan.shards, v.broadcast_x1_bytes) +
             icn.BroadcastS(plan.shards, v.broadcast_out_bytes);
  if (plan.row_parallel_ffn2) {
    s += icn.AllReduceS(plan.shards, v.reduce_ffn_bytes);
  } else {
    s += icn.AllGatherS(plan.shards, v.gather_ffn_bytes) +
         icn.AllGatherS(plan.shards, v.gather_out_bytes);
  }
  return s;
}

}  // namespace latte
