#include "sched/resource_plan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace latte {

double StagePlan::TokensPerSecond(double freq_hz) const {
  if (flops_per_token <= 0) return std::numeric_limits<double>::infinity();
  return dsp * 2.0 * freq_hz / flops_per_token;
}

double PipelinePlan::TokensPerSecond(double freq_hz) const {
  double rate = std::numeric_limits<double>::infinity();
  for (const auto& s : stages) {
    rate = std::min(rate, s.TokensPerSecond(freq_hz));
  }
  return rate;
}

double PipelinePlan::BalanceRatio(double freq_hz) const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (const auto& s : stages) {
    const double r = s.TokensPerSecond(freq_hz);
    if (std::isinf(r)) continue;
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  if (hi == 0.0) return 1.0;
  return lo / hi;
}

PipelinePlan PlanPipeline(const std::vector<double>& stage_flops_per_token,
                          const PlannerConfig& cfg) {
  if (stage_flops_per_token.empty()) return {};
  double total_work = 0.0;
  for (double w : stage_flops_per_token) {
    if (w < 0) throw std::invalid_argument("PlanPipeline: negative work");
    total_work += w;
  }
  PipelinePlan plan;
  plan.stages.resize(stage_flops_per_token.size());
  if (total_work <= 0) {
    for (std::size_t k = 0; k < plan.stages.size(); ++k) {
      plan.stages[k].flops_per_token = 0;
      plan.stages[k].dsp = 0;
      plan.stages[k].replication = 1;
    }
    return plan;
  }
  for (std::size_t k = 0; k < plan.stages.size(); ++k) {
    auto& s = plan.stages[k];
    s.flops_per_token = stage_flops_per_token[k];
    // Proportional share equalizes stage latencies (max-min optimal for a
    // serial pipeline).
    s.dsp = cfg.total_dsp * (s.flops_per_token / total_work);
    // Lane cap per instance: replicate instead of widening past the cap.
    s.replication = 1;
    while (s.replication < cfg.max_replication &&
           s.dsp / static_cast<double>(s.replication) >
               cfg.max_dsp_per_instance) {
      ++s.replication;
    }
    // At least one DSP for any stage that does work.
    if (s.flops_per_token > 0) s.dsp = std::max(s.dsp, 1.0);
  }
  return plan;
}

std::vector<double> StageFlopsPerToken(const OpGraph& g,
                                       const AllocationResult& alloc,
                                       double s_avg) {
  if (s_avg <= 0) {
    throw std::invalid_argument("StageFlopsPerToken: s_avg must be positive");
  }
  std::vector<double> out;
  out.reserve(alloc.stages.size());
  for (const auto& stage : alloc.stages) {
    double flops = 0.0;
    for (const auto& a : stage.ops) {
      flops += g.node(a.op).spec.flops.Eval(s_avg);
    }
    out.push_back(flops / s_avg);
  }
  return out;
}

}  // namespace latte
