#pragma once
// ServingCluster: N serving replicas behind one router.
//
// The cluster fans a timestamped request stream out across a fleet of
// replicas (each its own ServingEngine: batch former, bounded admission
// queue, virtual backend slots, BatchRunner), with a pluggable routing
// policy and per-replica backpressure: a full replica bounces the request
// to the router's next choice, and only when every routable replica is
// full (or the whole fleet is offline) is the request rejected.
//
// Determinism mirrors the single engine's: routing decisions, batches,
// admission and the virtual-time reports depend only on the trace and the
// configs -- never on thread count or wall clock -- and in real-execution
// mode outputs are bit-exact against one ServingEngine replaying the same
// admitted requests with the same embeddings (request identity is the
// cluster-level offered ordinal).  With `execute = false` on every
// replica the cluster is a pure virtual-time policy simulator: byte-
// identical reports at any thread count, cheap enough for policy sweeps.
//
// Drain/failover: SetOnline(i, false) takes a replica out of rotation
// mid-stream.  It keeps and executes everything it already admitted (no
// admitted request is ever lost); new arrivals redistribute across the
// remaining fleet.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/accounting.hpp"
#include "cluster/policy.hpp"
#include "cluster/replica.hpp"
#include "config/check.hpp"

namespace latte {

/// Where the fleet's result cache lives.
enum class ClusterCacheMode {
  kNone,  ///< no cluster-managed cache (replicas may still bring their own)
  /// Every replica owns a private store built from the same config.
  /// Failover invalidates the offline replica's entries (they no longer
  /// represent fleet state); pair with key-affinity routing so repeats
  /// find the replica that owns their entry.
  kPerReplica,
  /// One fleet-shared store referenced by every replica: a result
  /// computed anywhere serves repeats routed anywhere, and a replica
  /// going offline loses nothing (its entries belong to the fleet).
  kShared,
};

/// Human-readable mode name (bench/report labels).
const char* ClusterCacheModeName(ClusterCacheMode mode);

/// Fleet-front result cache knobs.
struct ClusterCacheConfig {
  ClusterCacheMode mode = ClusterCacheMode::kNone;
  /// Store parameters (capacity is per store: the shared mode has one
  /// budget for the fleet, per-replica mode one per replica).  The
  /// `enabled` flag is implied by `mode` and ignored here.
  ResultCacheConfig config;
};

/// Whole-fleet configuration.
struct ClusterConfig {
  std::vector<ReplicaConfig> replicas;
  RouterConfig router;
  /// Seed for embeddings synthesized at cluster level; request identity is
  /// the cluster Push() ordinal -- or the content id when the request
  /// carries one -- so outputs are independent of routing.
  std::uint64_t embed_seed = 1;
  /// Fleet-front result cache (kNone leaves caching to the per-replica
  /// engine configs, which must not set one when a mode is chosen here).
  ClusterCacheConfig cache;
  /// Fleet-wide request-lifecycle tracing: one obs::Tracer spanning every
  /// replica, each on its own track range ("r0/worker 1", "r1/control").
  /// Mutually exclusive with per-replica engine tracing.
  obs::TraceConfig trace;
};

/// Names every illegal field across the whole fleet aggregate (replica
/// entries carry "replica[i]." prefixes, the router "router.", the fleet
/// cache "cache."); empty means legal.
ConfigIssues CheckClusterConfig(const ClusterConfig& cfg);

/// Throws std::invalid_argument naming the offending field (replica
/// entries are prefixed with their index).
void ValidateClusterConfig(const ClusterConfig& cfg);

/// Cluster-level admission/routing accounting.
struct ClusterRoutingStats {
  std::size_t offered = 0;   ///< Push() calls
  std::size_t admitted = 0;  ///< accepted by some replica
  std::size_t rejected = 0;  ///< no routable replica had room
  /// Admitted, but not by the router's first choice (bounced off at least
  /// one full queue first).
  std::size_t rerouted = 0;
  /// Rejections with no online replica at all (subset of `rejected`).
  std::size_t unroutable = 0;
};

/// Everything one cluster stream produces.
struct ClusterResult {
  ClusterReport report;
  ClusterRoutingStats routing;
  std::vector<ServingResult> replica_results;  ///< one per replica
  /// Push() ordinal -> replica index, or npos() for rejected requests.
  std::vector<std::size_t> replica_of;
  /// Push() ordinal -> model output; empty matrix for rejected requests
  /// and in accounting-only mode.
  std::vector<MatrixF> outputs;

  static constexpr std::size_t npos() { return static_cast<std::size_t>(-1); }
  const ServingReport& fleet() const { return report.fleet; }
};

/// N replicas behind a router.
class ServingCluster {
 public:
  /// The model must outlive the cluster; all replicas share it (weights
  /// are immutable, Forward() is const and thread-compatible).
  ServingCluster(const ModelInstance& model, const ClusterConfig& cfg);

  /// Routes one request, optionally with a caller-provided embedding
  /// (length x hidden).  Returns false when it was rejected (every
  /// routable replica full, or the fleet offline).  Arrivals must be
  /// non-decreasing in time.
  bool Push(const TimedRequest& request,
            std::optional<MatrixF> input = std::nullopt);

  /// Drains every replica (executing admitted batches in real-execution
  /// mode), merges the fleet accounting and resets for the next stream.
  ClusterResult Drain();

  /// Push() + Drain() over a whole trace.
  ClusterResult Replay(const std::vector<TimedRequest>& trace);

  /// Drain/failover control: an offline replica leaves the routing
  /// rotation but keeps and executes what it already admitted.  In
  /// per-replica cache mode, going offline also invalidates the
  /// replica's private store (its entries no longer represent fleet
  /// state); in shared mode the fleet store is untouched, so a warm
  /// cache survives the failover.
  void SetOnline(std::size_t replica, bool online);

  /// The fleet-shared store (null outside kShared mode).
  const std::shared_ptr<ResultCache>& shared_cache() const {
    return shared_cache_;
  }

  std::size_t replica_count() const { return replicas_.size(); }
  const Replica& replica(std::size_t i) const { return *replicas_[i]; }
  const ClusterRoutingStats& routing() const { return routing_; }

  /// The fleet tracer (null when cfg.trace is disabled).  Tracks are laid
  /// out replica-major: replica i occupies [base_i, base_i + workers_i],
  /// workers first, control lane last.
  obs::Tracer* tracer() const { return fleet_tracer_.get(); }

 private:
  bool PushImpl(const TimedRequest& request, MatrixF input, bool has_input);
  void ResetStream();

  const ModelInstance& model_;
  ClusterConfig cfg_;
  bool execute_ = true;  ///< uniform across replicas (validated)
  Router router_;
  std::shared_ptr<ResultCache> shared_cache_;  ///< kShared mode only
  std::unique_ptr<obs::Tracer> fleet_tracer_;  ///< cfg.trace.enabled only
  /// unique_ptr because a Replica owns a ServingEngine (whose BatchRunner
  /// is neither copyable nor movable).
  std::vector<std::unique_ptr<Replica>> replicas_;

  // Stream state.
  std::vector<std::vector<TimedRequest>> offers_;       ///< per replica
  std::vector<std::vector<std::size_t>> offer_global_;  ///< -> Push ordinal
  std::vector<std::size_t> replica_of_;
  double last_arrival_ = 0;
  ClusterRoutingStats routing_;
};

}  // namespace latte
