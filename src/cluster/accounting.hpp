#pragma once
// Cluster-level performance accounting: merges per-replica ServingReports
// into one fleet view.
//
// Percentiles do not compose (a fleet p99 is not a mean of replica p99s),
// so the merge goes back to first principles: per-request latencies are
// recomputed from each replica's dispatch schedule and pooled, and the
// fleet report is built by the same BuildServingReport the single-engine
// path uses.  On top of the pooled report the cluster adds the signals a
// fleet operator watches: per-replica utilization, routing imbalance and
// batch density (how full formed batches are relative to their padded
// footprint -- the metric length-bucketed routing exists to maximize).

#include <string>
#include <vector>

#include "serve/engine.hpp"

namespace latte {

/// One replica's slice of the fleet accounting.
struct ReplicaAccounting {
  std::string name;
  ServingReport report;      ///< the replica's own virtual-time report
  AdmissionStats admission;  ///< offers the router sent to this replica
  CacheStats cache;          ///< this replica's cache outcomes + store view
  bool online = true;        ///< still in rotation when the stream drained
  std::size_t requests = 0;  ///< admitted requests
  std::size_t tokens = 0;    ///< admitted tokens
  double busy_s = 0;         ///< worker-seconds of modeled service
  /// Mean over formed batches of tokens / (batch_size * max_len): 1.0
  /// means every member is as long as the batch's longest (no padding
  /// waste on a padded backend).
  double mean_batch_fill = 0;
};

/// Fleet-level view of one drained cluster stream.
struct ClusterReport {
  /// Pooled per-request latencies (admitted requests *and* cache-served
  /// ones: hits and coalesced followers contribute their virtual
  /// completions), fleet span/busy.
  ServingReport fleet;
  /// Engine-side cache outcomes summed across replicas; `cache.store`
  /// sums the snapshots of the *distinct* stores behind the fleet (one
  /// fleet-shared store counts once, not once per replica).
  CacheStats cache;
  std::vector<ReplicaAccounting> replicas;
  /// max/mean of admitted requests (resp. tokens) across replicas; 1.0 is
  /// perfect balance, R is everything-on-one-replica for R replicas.
  double request_imbalance = 0;
  double token_imbalance = 0;
  /// Batch-weighted mean of the per-replica batch fill.
  double mean_batch_fill = 0;
};

/// Everything the fleet merge needs from one drained replica.
struct ReplicaDrainView {
  std::string name;
  bool online = true;
  std::size_t workers = 1;  ///< the replica's virtual backend slots
  /// Requests offered to this replica, indexed by its Push() ordinal
  /// (what ServingResult::offered_ids points into).
  const std::vector<TimedRequest>* offers = nullptr;
  const ServingResult* result = nullptr;
  /// Identity of the replica's cache store (nullptr = none).  Views
  /// naming the same store (the cluster's shared mode) contribute its
  /// counters once -- from the last view, whose drain-time snapshot is
  /// the store's final state -- instead of once per replica.
  const ResultCache* cache_store = nullptr;
};

/// Merges drained replicas into a ClusterReport.  Deterministic: pure
/// arithmetic over the virtual-time schedules.
ClusterReport BuildClusterReport(const std::vector<ReplicaDrainView>& fleet);

}  // namespace latte
