#include "cluster/replica.hpp"

#include <stdexcept>
#include <utility>

namespace latte {

ConfigIssues CheckReplicaConfig(const ReplicaConfig& cfg) {
  ConfigIssues issues;
  MergePrefixed(issues, "engine", CheckServingEngineConfig(cfg.engine));
  return issues;
}

void ValidateReplicaConfig(const ReplicaConfig& cfg, std::size_t index) {
  const std::string label =
      cfg.name.empty()
          ? "replica[" + std::to_string(index) + "]"
          : "replica[" + std::to_string(index) + "] (\"" + cfg.name + "\")";
  ThrowOnIssues(label, CheckReplicaConfig(cfg));
}

namespace {

// Validate before the engine member is constructed, so a malformed config
// surfaces with the replica-prefixed message rather than the engine's.
ReplicaConfig Validated(const ReplicaConfig& cfg, std::size_t index) {
  ValidateReplicaConfig(cfg, index);
  return cfg;
}

}  // namespace

Replica::Replica(const ModelInstance& model, const ReplicaConfig& cfg,
                 std::size_t index, std::shared_ptr<ResultCache> shared_cache)
    : cfg_(Validated(cfg, index)),
      name_(cfg.name.empty() ? "replica-" + std::to_string(index) : cfg.name),
      engine_(model, cfg_.engine, std::move(shared_cache)) {}

ReplicaSnapshot Replica::SnapshotAt(double now) {
  engine_.AdvanceTo(now);
  ReplicaSnapshot snap;
  snap.online = online_;
  snap.queue_depth = engine_.queue_depth();
  snap.outstanding_tokens = engine_.outstanding_tokens();
  snap.queue_capacity = cfg_.engine.queue_capacity;
  snap.sharded = cfg_.engine.backend == BackendMode::kSharded;
  snap.service_level = engine_.service_level();
  return snap;
}

}  // namespace latte
