#pragma once
// Pluggable request-routing policies for a multi-replica serving cluster.
//
// The router sees one arrival at a time plus a virtual-time load snapshot
// of every replica and produces a *preference order* over the online
// replicas.  Returning a ranking instead of a single pick is what makes
// per-replica backpressure composable: the cluster offers the request to
// each ranked replica in turn, so a full admission queue bounces the
// request to the next-best replica instead of dropping it outright.
//
// Every policy is deterministic -- ties break toward the lowest replica
// index and the round-robin cursor advances once per offered request --
// so a routed trace is reproducible at any thread count.

#include <cstddef>
#include <vector>

#include "config/check.hpp"
#include "workload/arrivals.hpp"

namespace latte {

/// How the cluster spreads arrivals across replicas.
enum class RouterPolicy {
  kRoundRobin,              ///< rotate through online replicas
  kJoinShortestQueue,       ///< fewest waiting requests first
  kLeastOutstandingTokens,  ///< fewest admitted-but-unfinished tokens first
  /// Keep same-length requests together: bucket the arrival by length and
  /// pin each bucket to a home replica, so every replica's batches hold
  /// similar lengths and batch density stays high (less padding waste on
  /// padded backends, fuller token budgets on length-aware ones).
  kLengthBucketed,
  /// Cache-aware routing: requests sharing a content identity rank
  /// replicas by rendezvous (highest-random-weight) hashing of the id,
  /// so repeats land on the replica whose cache owns the entry -- and a
  /// replica going offline only remaps the keys it owned, never the
  /// survivors' (the warm-cache failover property).  Anonymous requests
  /// fall back to the round-robin rotation.
  kKeyAffinity,
  /// Sharding-aware routing for mixed fleets: requests at least
  /// `long_len_threshold` tokens long prefer tensor-parallel (sharded)
  /// replicas -- whose gangs cut long-sequence latency by the compute
  /// share -- while shorter requests prefer replicated ones, where the
  /// gang's collective overhead is not worth paying.  Within each class
  /// replicas rank by shortest queue; the non-preferred class follows as
  /// fallback so backpressure can still bounce a request across classes
  /// instead of dropping it.
  kLongToSharded,
  /// Degradation-aware routing for adaptive fleets: rank replicas by
  /// ascending controller level (ReplicaSnapshot::service_level), so new
  /// requests prefer the replica still serving full quality; ties break
  /// by shortest queue, then lowest index.  A non-adaptive replica
  /// always reports level 0 and so ranks as full quality.
  kLeastDegraded,
};

/// Human-readable policy name (bench/report labels).
const char* RouterPolicyName(RouterPolicy policy);

/// The rendezvous weight of (content id, replica) under kKeyAffinity:
/// the online replica with the highest score owns the key.  Exposed so
/// tests can predict placements.
std::uint64_t RendezvousScore(std::uint64_t id, std::size_t replica);

/// Router knobs.
struct RouterConfig {
  RouterPolicy policy = RouterPolicy::kRoundRobin;
  /// Ascending length upper bounds for kLengthBucketed: bucket b holds
  /// lengths <= length_edges[b]; one extra bucket catches the rest.
  /// Ignored by the other policies.
  std::vector<std::size_t> length_edges;
  /// kLongToSharded: requests of at least this many tokens prefer
  /// sharded replicas (must be >= 1 for that policy; ignored by others).
  std::size_t long_len_threshold = 0;
};

/// Names every field that is illegal for a cluster of `replicas`
/// replicas; empty means legal.
ConfigIssues CheckRouterConfig(const RouterConfig& cfg, std::size_t replicas);

/// Throws std::invalid_argument naming the offending field when the
/// router configuration is malformed for a cluster of `replicas` replicas.
void ValidateRouterConfig(const RouterConfig& cfg, std::size_t replicas);

/// Virtual-time load signals of one replica at an arrival instant, read
/// after the replica advanced to that instant.
struct ReplicaSnapshot {
  bool online = true;                  ///< eligible for new requests
  std::size_t queue_depth = 0;         ///< admitted, batch not yet launched
  std::size_t outstanding_tokens = 0;  ///< admitted tokens not yet completed
  /// The replica's waiting-room bound; 0 = unbounded.
  std::size_t queue_capacity = 0;
  /// Whether the replica's backend is a tensor-parallel gang
  /// (BackendMode::kSharded); kLongToSharded steers on this.
  bool sharded = false;
  /// The replica's adaptive-controller degradation level (0 = full
  /// quality, also for non-adaptive replicas); kLeastDegraded steers on
  /// this.
  std::size_t service_level = 0;
};

/// One policy instance with its (tiny) routing state.
class Router {
 public:
  /// `replicas` is the fleet size the rankings rotate over.
  Router(const RouterConfig& cfg, std::size_t replicas);

  /// Preference-ordered replica indices for this arrival; offline
  /// replicas are excluded (an empty ranking means nothing is routable).
  std::vector<std::size_t> Rank(const TimedRequest& request,
                                const std::vector<ReplicaSnapshot>& fleet);

  /// Length bucket of a request under kLengthBucketed.
  std::size_t BucketOf(std::size_t length) const;

  /// Restores the initial routing state (round-robin cursor).
  void Reset() { cursor_ = 0; }

  const RouterConfig& config() const { return cfg_; }

 private:
  RouterConfig cfg_;
  std::size_t replica_count_;
  std::size_t cursor_ = 0;  ///< round-robin position, advances per arrival
};

}  // namespace latte
