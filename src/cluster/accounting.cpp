#include "cluster/accounting.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/percentiles.hpp"

namespace latte {
namespace {

double Imbalance(const std::vector<std::size_t>& per_replica) {
  if (per_replica.empty()) return 0;
  std::size_t total = 0;
  std::size_t peak = 0;
  for (std::size_t v : per_replica) {
    total += v;
    peak = std::max(peak, v);
  }
  if (total == 0) return 0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(per_replica.size());
  return static_cast<double>(peak) / mean;
}

}  // namespace

ClusterReport BuildClusterReport(const std::vector<ReplicaDrainView>& fleet) {
  ClusterReport cluster;
  cluster.replicas.reserve(fleet.size());

  obs::LatencyPool pool;            // latencies + span, fleet-wide
  std::vector<std::size_t> counts;  // admitted requests per replica
  std::vector<std::size_t> tokens;  // admitted tokens per replica
  double busy_s = 0;
  // Store counters keyed by store identity: a fleet-shared store is
  // counted once (its last drain-time snapshot is the final state), and
  // views without a store pointer fall back to summing their snapshots.
  std::vector<std::pair<const ResultCache*, CacheStoreStats>> store_last;
  CacheStoreStats anonymous_stores;
  std::size_t total_batches = 0;
  std::size_t total_workers = 0;
  double fill_weighted = 0;  // sum over batches of per-batch fill

  for (const ReplicaDrainView& view : fleet) {
    if (view.offers == nullptr || view.result == nullptr) {
      throw std::invalid_argument(
          "BuildClusterReport: every ReplicaDrainView needs offers and "
          "result (got a null pointer)");
    }
    const ServingResult& res = *view.result;
    const std::vector<TimedRequest>& offers = *view.offers;

    ReplicaAccounting acc;
    acc.name = view.name;
    acc.online = view.online;
    acc.admission = res.admission;
    acc.cache = res.cache;
    acc.report = res.report();
    acc.requests = res.offered_ids.size();
    total_workers += view.workers;

    // Adaptive replicas: a superseded first pass is not a served request
    // (its escalated re-run carries the caller's latency), so it burns
    // busy time and batch fill but never joins the latency pool.
    const auto is_superseded = [&res](std::size_t idx) {
      return idx < res.superseded.size() && res.superseded[idx] != 0;
    };
    for (std::size_t idx = 0; idx < res.superseded.size(); ++idx) {
      if (res.superseded[idx] != 0) --acc.requests;
    }

    // Per-request latency and per-batch fill from the dispatch schedule:
    // request latency is its batch's completion minus its own arrival
    // (for an escalated re-run, offered_ids points at the original offer,
    // so the latency runs from the root arrival).
    double replica_fill = 0;
    for (std::size_t b = 0; b < res.batches.size(); ++b) {
      const FormedBatch& batch = res.batches[b];
      const double done = res.schedule.done_s[b];
      std::size_t max_len = 0;
      for (std::size_t idx : batch.indices) {
        const TimedRequest& req = offers[res.offered_ids[idx]];
        max_len = std::max(max_len, req.length);
        if (is_superseded(idx)) continue;
        pool.Add(req.arrival_s, done);
        acc.tokens += req.length;
      }
      pool.ExtendSpan(done);
      const double fill =
          max_len == 0
              ? 1.0
              : static_cast<double>(batch.tokens) /
                    (static_cast<double>(max_len) *
                     static_cast<double>(batch.indices.size()));
      replica_fill += fill;
      fill_weighted += fill;
      acc.busy_s += res.schedule.service_s[b];
    }
    // Cache-served requests (hits and coalesced followers) completed
    // without a batch; they still count toward the fleet's latency pool
    // and span -- the caller saw them served.
    for (const CacheServedRequest& served : res.cache_served) {
      pool.Add(served.arrival_s, served.done_s);
    }
    cluster.cache = AccumulateEngineCacheStats(cluster.cache, res.cache);
    if (view.cache_store == nullptr) {
      anonymous_stores = AccumulateStoreStats(anonymous_stores,
                                              res.cache.store);
    } else {
      bool found = false;
      for (auto& [store, snapshot] : store_last) {
        if (store == view.cache_store) {
          snapshot = res.cache.store;  // a later view: fresher snapshot
          found = true;
          break;
        }
      }
      if (!found) store_last.push_back({view.cache_store, res.cache.store});
    }

    busy_s += acc.busy_s;
    total_batches += res.batches.size();
    acc.mean_batch_fill = res.batches.empty()
                              ? 0
                              : replica_fill /
                                    static_cast<double>(res.batches.size());

    counts.push_back(acc.requests);
    tokens.push_back(acc.tokens);
    cluster.replicas.push_back(std::move(acc));
  }

  cluster.cache.store = anonymous_stores;
  for (const auto& [store, snapshot] : store_last) {
    cluster.cache.store = AccumulateStoreStats(cluster.cache.store, snapshot);
  }
  cluster.fleet =
      BuildServingReport(pool.latencies, total_batches, busy_s, pool.span(),
                         total_workers == 0 ? 1 : total_workers);

  // Fleet accuracy: request-weighted mean of the replica means, and the
  // per-tier usage merged by ladder position (a heterogeneous fleet keeps
  // the first replica's top_k/accuracy labels for each rung).
  double acc_weighted = 0;
  std::size_t acc_requests = 0;
  for (const ReplicaAccounting& acc : cluster.replicas) {
    acc_weighted += acc.report.mean_accuracy *
                    static_cast<double>(acc.report.requests);
    acc_requests += acc.report.requests;
    for (std::size_t t = 0; t < acc.report.tiers.size(); ++t) {
      if (cluster.fleet.tiers.size() <= t) {
        cluster.fleet.tiers.push_back(acc.report.tiers[t]);
        continue;
      }
      cluster.fleet.tiers[t].requests += acc.report.tiers[t].requests;
      cluster.fleet.tiers[t].batches += acc.report.tiers[t].batches;
      cluster.fleet.tiers[t].escalated += acc.report.tiers[t].escalated;
    }
  }
  cluster.fleet.mean_accuracy =
      acc_requests == 0 ? 1.0
                        : acc_weighted / static_cast<double>(acc_requests);
  cluster.request_imbalance = Imbalance(counts);
  cluster.token_imbalance = Imbalance(tokens);
  cluster.mean_batch_fill =
      total_batches == 0 ? 0
                         : fill_weighted / static_cast<double>(total_batches);
  return cluster;
}

}  // namespace latte
