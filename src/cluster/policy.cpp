#include "cluster/policy.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace latte {
namespace {

// Rotation over online replicas starting at `start`: the shared shape of
// the round-robin and length-bucketed rankings.
std::vector<std::size_t> RotationFrom(
    std::size_t start, const std::vector<ReplicaSnapshot>& fleet) {
  std::vector<std::size_t> ranked;
  ranked.reserve(fleet.size());
  for (std::size_t step = 0; step < fleet.size(); ++step) {
    const std::size_t idx = (start + step) % fleet.size();
    if (fleet[idx].online) ranked.push_back(idx);
  }
  return ranked;
}

// Online replicas sorted ascending by a load key, ties toward the lowest
// index (std::sort on the (key, index) pair is strict-weak and total).
template <typename KeyFn>
std::vector<std::size_t> SortedByLoad(const std::vector<ReplicaSnapshot>& fleet,
                                      KeyFn key) {
  std::vector<std::size_t> ranked;
  ranked.reserve(fleet.size());
  for (std::size_t idx = 0; idx < fleet.size(); ++idx) {
    if (fleet[idx].online) ranked.push_back(idx);
  }
  std::sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
    const std::size_t ka = key(fleet[a]);
    const std::size_t kb = key(fleet[b]);
    return ka != kb ? ka < kb : a < b;
  });
  return ranked;
}

}  // namespace

const char* RouterPolicyName(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kRoundRobin:
      return "round-robin";
    case RouterPolicy::kJoinShortestQueue:
      return "join-shortest-queue";
    case RouterPolicy::kLeastOutstandingTokens:
      return "least-outstanding-tokens";
    case RouterPolicy::kLengthBucketed:
      return "length-bucketed";
    case RouterPolicy::kKeyAffinity:
      return "key-affinity";
    case RouterPolicy::kLongToSharded:
      return "long-to-sharded";
    case RouterPolicy::kLeastDegraded:
      return "least-degraded";
  }
  return "unknown";
}

ConfigIssues CheckRouterConfig(const RouterConfig& cfg, std::size_t replicas) {
  ConfigIssues issues;
  switch (cfg.policy) {
    case RouterPolicy::kRoundRobin:
    case RouterPolicy::kJoinShortestQueue:
    case RouterPolicy::kLeastOutstandingTokens:
    case RouterPolicy::kKeyAffinity:
    case RouterPolicy::kLeastDegraded:
      break;
    case RouterPolicy::kLongToSharded:
      if (cfg.long_len_threshold == 0) {
        AddIssue(issues, "long_len_threshold",
                 "must be >= 1 for the long-to-sharded policy (it is the "
                 "length at which requests start preferring sharded "
                 "replicas)");
      }
      break;
    case RouterPolicy::kLengthBucketed: {
      if (cfg.length_edges.empty()) {
        AddIssue(issues, "length_edges",
                 "must name at least one length upper bound for the "
                 "length-bucketed policy (e.g. {64, 128} for "
                 "short/medium/long buckets)");
      }
      std::size_t prev = 0;
      for (std::size_t edge : cfg.length_edges) {
        if (edge == 0) {
          AddIssue(issues, "length_edges",
                   "entries must be >= 1 (a 0-token bucket can never match "
                   "a request)");
          break;
        }
        if (edge <= prev && prev != 0) {
          AddIssue(issues, "length_edges",
                   "must be strictly increasing (got " + std::to_string(edge) +
                       " after " + std::to_string(prev) + ")");
          break;
        }
        prev = edge;
      }
      break;
    }
    default:
      AddIssue(issues, "policy", "is not a known RouterPolicy value");
      break;
  }
  if (replicas == 0) {
    AddIssue(issues, "replicas",
             "a router needs at least one replica to route to");
  }
  return issues;
}

void ValidateRouterConfig(const RouterConfig& cfg, std::size_t replicas) {
  ThrowOnIssues("RouterConfig", CheckRouterConfig(cfg, replicas));
}

Router::Router(const RouterConfig& cfg, std::size_t replicas)
    : cfg_(cfg), replica_count_(replicas) {
  ValidateRouterConfig(cfg_, replicas);
}

std::uint64_t RendezvousScore(std::uint64_t id, std::size_t replica) {
  return MixHash64(id ^ MixHash64(0x517cc1b727220a95ULL *
                                  (static_cast<std::uint64_t>(replica) + 1)));
}

std::size_t Router::BucketOf(std::size_t length) const {
  const auto it = std::lower_bound(cfg_.length_edges.begin(),
                                   cfg_.length_edges.end(), length);
  return static_cast<std::size_t>(it - cfg_.length_edges.begin());
}

std::vector<std::size_t> Router::Rank(
    const TimedRequest& request, const std::vector<ReplicaSnapshot>& fleet) {
  if (fleet.size() != replica_count_) {
    throw std::invalid_argument(
        "Router::Rank: snapshot covers " + std::to_string(fleet.size()) +
        " replicas but the router was built for " +
        std::to_string(replica_count_));
  }
  switch (cfg_.policy) {
    case RouterPolicy::kRoundRobin: {
      const std::size_t start = cursor_ % replica_count_;
      ++cursor_;  // advances per offered request, online or not
      return RotationFrom(start, fleet);
    }
    case RouterPolicy::kJoinShortestQueue:
      return SortedByLoad(
          fleet, [](const ReplicaSnapshot& s) { return s.queue_depth; });
    case RouterPolicy::kLeastOutstandingTokens:
      return SortedByLoad(fleet, [](const ReplicaSnapshot& s) {
        return s.outstanding_tokens;
      });
    case RouterPolicy::kLengthBucketed:
      return RotationFrom(BucketOf(request.length) % replica_count_, fleet);
    case RouterPolicy::kLongToSharded: {
      // Preferred backend class first (long requests -> sharded gangs,
      // short -> replicated), join-shortest-queue within a class, the
      // other class trailing as backpressure fallback.
      const bool want_sharded = request.length >= cfg_.long_len_threshold;
      std::vector<std::size_t> ranked;
      ranked.reserve(fleet.size());
      for (std::size_t idx = 0; idx < fleet.size(); ++idx) {
        if (fleet[idx].online) ranked.push_back(idx);
      }
      std::sort(ranked.begin(), ranked.end(),
                [&](std::size_t a, std::size_t b) {
                  const bool pa = fleet[a].sharded == want_sharded;
                  const bool pb = fleet[b].sharded == want_sharded;
                  if (pa != pb) return pa;
                  if (fleet[a].queue_depth != fleet[b].queue_depth) {
                    return fleet[a].queue_depth < fleet[b].queue_depth;
                  }
                  return a < b;
                });
      return ranked;
    }
    case RouterPolicy::kLeastDegraded: {
      // Full-quality replicas first; shortest queue breaks level ties so
      // the policy still spreads load once every replica degrades.
      std::vector<std::size_t> ranked;
      ranked.reserve(fleet.size());
      for (std::size_t idx = 0; idx < fleet.size(); ++idx) {
        if (fleet[idx].online) ranked.push_back(idx);
      }
      std::sort(ranked.begin(), ranked.end(),
                [&](std::size_t a, std::size_t b) {
                  if (fleet[a].service_level != fleet[b].service_level) {
                    return fleet[a].service_level < fleet[b].service_level;
                  }
                  if (fleet[a].queue_depth != fleet[b].queue_depth) {
                    return fleet[a].queue_depth < fleet[b].queue_depth;
                  }
                  return a < b;
                });
      return ranked;
    }
    case RouterPolicy::kKeyAffinity: {
      if (request.id == kAnonymousId) {
        // No content identity to pin on: spread like round-robin (and
        // advance the same cursor, so mixed traffic still rotates).
        const std::size_t start = cursor_ % replica_count_;
        ++cursor_;
        return RotationFrom(start, fleet);
      }
      // Rendezvous (highest-random-weight): every (key, replica) pair
      // gets a deterministic score and replicas rank by descending
      // score.  Removing a replica never reorders the survivors, so a
      // failover only remaps the keys the lost replica owned.
      std::vector<std::size_t> ranked;
      ranked.reserve(fleet.size());
      for (std::size_t idx = 0; idx < fleet.size(); ++idx) {
        if (fleet[idx].online) ranked.push_back(idx);
      }
      std::sort(ranked.begin(), ranked.end(),
                [&](std::size_t a, std::size_t b) {
                  const std::uint64_t ka = RendezvousScore(request.id, a);
                  const std::uint64_t kb = RendezvousScore(request.id, b);
                  return ka != kb ? ka > kb : a < b;
                });
      return ranked;
    }
  }
  return {};
}

}  // namespace latte
