#include "cluster/cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace latte {
namespace {

ClusterConfig Validated(const ClusterConfig& cfg) {
  ValidateClusterConfig(cfg);
  return cfg;
}

}  // namespace

const char* ClusterCacheModeName(ClusterCacheMode mode) {
  switch (mode) {
    case ClusterCacheMode::kNone:
      return "none";
    case ClusterCacheMode::kPerReplica:
      return "per-replica";
    case ClusterCacheMode::kShared:
      return "shared";
  }
  return "unknown";
}

ConfigIssues CheckClusterConfig(const ClusterConfig& cfg) {
  ConfigIssues issues;
  if (cfg.replicas.empty()) {
    AddIssue(issues, "replicas",
             "must name at least one replica (an empty fleet cannot serve)");
    return issues;
  }
  for (std::size_t i = 0; i < cfg.replicas.size(); ++i) {
    MergePrefixed(issues, "replica[" + std::to_string(i) + "]",
                  CheckReplicaConfig(cfg.replicas[i]));
  }
  if (cfg.cache.mode != ClusterCacheMode::kNone) {
    MergePrefixed(issues, "cache", CheckResultCacheConfig(cfg.cache.config));
    for (std::size_t i = 0; i < cfg.replicas.size(); ++i) {
      if (cfg.replicas[i].engine.cache.enabled) {
        AddIssue(issues,
                 "replica[" + std::to_string(i) + "].engine.cache.enabled",
                 "conflicts with the cluster-managed cache (mode " +
                     std::string(ClusterCacheModeName(cfg.cache.mode)) +
                     "); configure one or the other");
      }
      if (cfg.replicas[i].engine.adapt.enabled) {
        AddIssue(
            issues,
            "replica[" + std::to_string(i) + "].engine.adapt.enabled",
            "conflicts with the cluster-managed cache (the engine forbids "
            "cache + adaptive; drop the fleet cache or this replica's "
            "adaptive layer)");
      }
    }
  }
  const bool execute = cfg.replicas.front().engine.execute;
  for (std::size_t i = 1; i < cfg.replicas.size(); ++i) {
    if (cfg.replicas[i].engine.execute != execute) {
      AddIssue(issues, "replica[" + std::to_string(i) + "].engine.execute",
               "disagrees with replica[0]; the fleet must be uniformly "
               "functional or uniformly accounting-only (mixed modes would "
               "make ClusterResult::outputs partially empty)");
    }
  }
  MergePrefixed(issues, "router",
                CheckRouterConfig(cfg.router, cfg.replicas.size()));
  if (cfg.trace.enabled) {
    MergePrefixed(issues, "trace", obs::CheckTraceConfig(cfg.trace));
    for (std::size_t i = 0; i < cfg.replicas.size(); ++i) {
      if (cfg.replicas[i].engine.trace.enabled) {
        AddIssue(issues,
                 "replica[" + std::to_string(i) + "].engine.trace.enabled",
                 "conflicts with the fleet tracer (the cluster attaches one "
                 "tracer spanning every replica; configure one or the "
                 "other)");
      }
    }
  }
  return issues;
}

void ValidateClusterConfig(const ClusterConfig& cfg) {
  ThrowOnIssues("ClusterConfig", CheckClusterConfig(cfg));
}

ServingCluster::ServingCluster(const ModelInstance& model,
                               const ClusterConfig& cfg)
    : model_(model),
      cfg_(Validated(cfg)),
      execute_(cfg_.replicas.front().engine.execute),
      router_(cfg_.router, cfg_.replicas.size()) {
  if (cfg_.cache.mode != ClusterCacheMode::kNone) {
    // The cluster owns the cache decision: stamp the store parameters
    // into every replica's engine config (key policy, hit latency) and,
    // in shared mode, build the one fleet store they will all reference.
    ResultCacheConfig store_cfg = cfg_.cache.config;
    store_cfg.enabled = true;
    for (ReplicaConfig& rep : cfg_.replicas) rep.engine.cache = store_cfg;
    if (cfg_.cache.mode == ClusterCacheMode::kShared) {
      shared_cache_ = std::make_shared<ResultCache>(store_cfg);
    }
  }
  replicas_.reserve(cfg_.replicas.size());
  for (std::size_t i = 0; i < cfg_.replicas.size(); ++i) {
    replicas_.push_back(
        std::make_unique<Replica>(model_, cfg_.replicas[i], i, shared_cache_));
  }
  offers_.resize(replicas_.size());
  offer_global_.resize(replicas_.size());
  if (cfg_.trace.enabled) {
    // One fleet tracer, tracks laid out replica-major: replica i gets
    // [base, base + workers] (workers first, control lane last), labels
    // prefixed with the replica name so a Perfetto view reads
    // "r0/worker 1".
    fleet_tracer_ = std::make_unique<obs::Tracer>(cfg_.trace);
    std::uint32_t base = 0;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      replicas_[i]->engine().AttachTracer(fleet_tracer_.get(), base,
                                          replicas_[i]->name() + "/");
      base +=
          static_cast<std::uint32_t>(cfg_.replicas[i].engine.workers) + 1;
    }
  }
}

bool ServingCluster::Push(const TimedRequest& request,
                          std::optional<MatrixF> input) {
  const bool has_input = input.has_value();
  return PushImpl(request, has_input ? std::move(*input) : MatrixF{},
                  has_input);
}

bool ServingCluster::PushImpl(const TimedRequest& request, MatrixF input,
                              bool has_input) {
  if (routing_.offered > 0 && request.arrival_s < last_arrival_) {
    throw std::invalid_argument(
        "ServingCluster::Push: arrivals must be non-decreasing (got " +
        std::to_string(request.arrival_s) + " after " +
        std::to_string(last_arrival_) + ")");
  }
  // Mirror ServingEngine::Push's shape check even in accounting-only mode
  // (where the tensor is dropped): a malformed caller input is a bug
  // either way and must not hide until `execute` is flipped on.
  if (has_input && (input.rows() != request.length ||
                    input.cols() != model_.config().encoder.hidden)) {
    throw std::invalid_argument(
        "ServingCluster::Push: input must be length x hidden (" +
        std::to_string(request.length) + " x " +
        std::to_string(model_.config().encoder.hidden) + "), got " +
        std::to_string(input.rows()) + " x " + std::to_string(input.cols()));
  }
  const std::size_t ordinal = routing_.offered++;
  last_arrival_ = request.arrival_s;

  // Advance every replica to the arrival instant so the router compares
  // like-for-like load signals, then rank.
  std::vector<ReplicaSnapshot> fleet;
  fleet.reserve(replicas_.size());
  for (auto& r : replicas_) fleet.push_back(r->SnapshotAt(request.arrival_s));
  const std::vector<std::size_t> ranked = router_.Rank(request, fleet);

  if (ranked.empty()) {
    ++routing_.rejected;
    ++routing_.unroutable;
    replica_of_.push_back(ClusterResult::npos());
    return false;
  }

  // Offer down the preference order, skipping replicas whose waiting room
  // is already full at this instant (the same admission test the engine
  // itself applies, so the first non-full replica always accepts).
  for (std::size_t rank = 0; rank < ranked.size(); ++rank) {
    const std::size_t idx = ranked[rank];
    const ReplicaSnapshot& snap = fleet[idx];
    // A request this replica's cache would serve (hit) or fold onto an
    // in-flight identical one (coalesce) bypasses the waiting room
    // entirely, so a full queue is no reason to skip it.  The cache
    // probes are only paid once the queue is actually full.
    if (snap.queue_capacity > 0 && snap.queue_depth >= snap.queue_capacity &&
        !replicas_[idx]->WouldHitCache(request, request.arrival_s) &&
        !replicas_[idx]->WouldCoalesce(request)) {
      continue;
    }
    const bool accepted =
        execute_
            ? replicas_[idx]->Offer(
                  request,
                  has_input ? std::move(input)
                            : request.id != kAnonymousId
                                  ? SynthesizeIdentityEmbedding(
                                        cfg_.embed_seed, request.id,
                                        request.length,
                                        model_.config().encoder.hidden)
                                  : SynthesizeRequestEmbedding(
                                        cfg_.embed_seed, ordinal,
                                        request.length,
                                        model_.config().encoder.hidden))
            : replicas_[idx]->Offer(request);
    if (!accepted) {
      // The snapshot said there was room; the engine disagreeing means the
      // two admission tests diverged -- a bug, not a policy outcome.
      throw std::logic_error(
          "ServingCluster::Push: replica \"" + replicas_[idx]->name() +
          "\" rejected a request its snapshot had room for");
    }
    offers_[idx].push_back(request);
    offer_global_[idx].push_back(ordinal);
    replica_of_.push_back(idx);
    ++routing_.admitted;
    if (rank > 0) ++routing_.rerouted;
    return true;
  }

  ++routing_.rejected;
  replica_of_.push_back(ClusterResult::npos());
  return false;
}

ClusterResult ServingCluster::Drain() {
  ClusterResult result;
  result.routing = routing_;
  result.replica_of = std::move(replica_of_);
  result.replica_results.reserve(replicas_.size());
  for (auto& r : replicas_) result.replica_results.push_back(r->Drain());

  // Map per-replica outputs back to cluster Push() ordinals: admitted
  // requests by their offered id, cache-served ones (hits and coalesced
  // followers) from the copies the engines wired up at drain.
  if (execute_) {
    result.outputs.resize(result.routing.offered);
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      ServingResult& res = result.replica_results[r];
      for (std::size_t i = 0; i < res.outputs.size(); ++i) {
        const std::size_t global = offer_global_[r][res.offered_ids[i]];
        result.outputs[global] = std::move(res.outputs[i]);
      }
      for (CacheServedRequest& served : res.cache_served) {
        const std::size_t global = offer_global_[r][served.offered_id];
        result.outputs[global] = std::move(served.output);
      }
    }
  }

  std::vector<ReplicaDrainView> views;
  views.reserve(replicas_.size());
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    ReplicaDrainView view;
    view.name = replicas_[r]->name();
    view.online = replicas_[r]->online();
    view.workers = replicas_[r]->engine_config().workers;
    view.offers = &offers_[r];
    view.result = &result.replica_results[r];
    view.cache_store = replicas_[r]->engine().cache().get();
    views.push_back(view);
  }
  result.report = BuildClusterReport(views);

  // Align every replica's cache clock to the fleet max so the next
  // stream ages all stores -- and above all a shared one -- on one
  // coherent timeline.
  double epoch = 0;
  for (auto& r : replicas_) {
    epoch = std::max(epoch, r->engine().cache_epoch());
  }
  for (auto& r : replicas_) r->engine().AlignCacheEpoch(epoch);

  ResetStream();
  return result;
}

ClusterResult ServingCluster::Replay(const std::vector<TimedRequest>& trace) {
  for (const TimedRequest& r : trace) Push(r);
  return Drain();
}

void ServingCluster::SetOnline(std::size_t replica, bool online) {
  if (replica >= replicas_.size()) {
    throw std::invalid_argument(
        "ServingCluster::SetOnline: replica index " +
        std::to_string(replica) + " out of range (fleet has " +
        std::to_string(replicas_.size()) + " replicas)");
  }
  replicas_[replica]->set_online(online);
  // Per-replica cache hygiene: an offline replica's private entries no
  // longer represent fleet state (key-affinity remaps its keys to the
  // survivors, which will recompute) -- drop them so a later return to
  // rotation cannot serve stale results.  The shared store is fleet
  // property and survives.
  if (!online && cfg_.cache.mode == ClusterCacheMode::kPerReplica) {
    replicas_[replica]->InvalidateOwnedCache();
  }
}

void ServingCluster::ResetStream() {
  for (auto& offers : offers_) offers.clear();
  for (auto& ids : offer_global_) ids.clear();
  replica_of_.clear();
  last_arrival_ = 0;
  routing_ = ClusterRoutingStats{};
  router_.Reset();
}

}  // namespace latte
