#pragma once
// One replica of a serving cluster: a ServingEngine (functional twin, or
// accounting-only with an accelerator service model as the performance
// twin) plus the cluster-facing state the router needs -- an online flag
// for drain/failover scenarios and virtual-time load snapshots.
//
// A replica owns its entire serving pipeline (batch former, admission
// queue, virtual backend slots, BatchRunner), so replicas are fully
// independent: heterogeneous fleets just give each replica its own
// ServingEngineConfig (e.g. a slower service model or fewer workers).

#include <memory>
#include <string>

#include "cluster/policy.hpp"
#include "config/check.hpp"
#include "serve/engine.hpp"

namespace latte {

/// One replica's knobs.
struct ReplicaConfig {
  std::string name;            ///< report label; defaults to "replica-<i>"
  ServingEngineConfig engine;  ///< former, workers, queue, service model
};

/// Names every illegal field ("engine."-prefixed dot-paths); empty means
/// legal.
ConfigIssues CheckReplicaConfig(const ReplicaConfig& cfg);

/// Throws std::invalid_argument naming the offending field, prefixed with
/// the replica's position so fleet-sized config lists stay debuggable.
void ValidateReplicaConfig(const ReplicaConfig& cfg, std::size_t index);

/// A managed ServingEngine inside a cluster.
class Replica {
 public:
  /// The model must outlive the replica (engines share it by reference;
  /// Forward() is const and thread-compatible).  `shared_cache` wires the
  /// engine to a fleet-shared result store (the cluster's kShared cache
  /// mode); null leaves the engine to its own config (private cache or
  /// none).
  Replica(const ModelInstance& model, const ReplicaConfig& cfg,
          std::size_t index,
          std::shared_ptr<ResultCache> shared_cache = nullptr);

  /// Offers a request (with or without a caller-provided embedding).
  /// Returns false when the replica's bounded queue rejects it.
  bool Offer(const TimedRequest& request,
             std::optional<MatrixF> input = std::nullopt) {
    return engine_.Push(request, std::move(input));
  }

  /// Load snapshot at `now`, advancing the replica's virtual time first so
  /// signals are comparable across the fleet at the arrival instant.
  ReplicaSnapshot SnapshotAt(double now);

  /// Executes the admitted stream and resets for the next one.  An
  /// offline replica still drains everything it admitted -- taking a
  /// replica out of rotation never loses work.
  ServingResult Drain() { return engine_.Drain(); }

  /// Drain/failover control: an offline replica receives no new requests
  /// but keeps (and eventually executes) what it already admitted.
  void set_online(bool online) { online_ = online; }
  bool online() const { return online_; }

  /// Whether a request offered at `now` would be served from this
  /// replica's cache (routers use this to bypass the queue-full skip:
  /// hits do not occupy the waiting room).
  bool WouldHitCache(const TimedRequest& request, double now) const {
    return engine_.WouldHitCache(request, now);
  }

  /// Whether the request would coalesce onto an in-flight identical one.
  bool WouldCoalesce(const TimedRequest& request) const {
    return engine_.WouldCoalesce(request);
  }

  /// Failover hygiene: drops a replica-*owned* cache (its entries no
  /// longer represent fleet state once the replica leaves rotation); a
  /// fleet-shared store is untouched.
  void InvalidateOwnedCache() { engine_.InvalidateOwnedCache(); }

  /// The engine underneath, for cache/epoch introspection.
  const ServingEngine& engine() const { return engine_; }
  ServingEngine& engine() { return engine_; }

  const std::string& name() const { return name_; }
  const ServingEngineConfig& engine_config() const { return cfg_.engine; }

 private:
  ReplicaConfig cfg_;
  std::string name_;
  ServingEngine engine_;
  bool online_ = true;
};

}  // namespace latte
