#include "serve/batch_former.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace latte {

ConfigIssues CheckBatchFormerConfig(const BatchFormerConfig& cfg) {
  ConfigIssues issues;
  if (cfg.max_batch == 0) {
    AddIssue(issues, "max_batch",
             "must be >= 1 (the former needs capacity for at least one "
             "request)");
  }
  // Negated comparison so NaN fails validation instead of slipping past.
  if (!(cfg.timeout_s >= 0)) {
    AddIssue(issues, "timeout_s",
             "must be >= 0 (got " + std::to_string(cfg.timeout_s) + ")");
  }
  return issues;
}

void ValidateBatchFormerConfig(const BatchFormerConfig& cfg) {
  ThrowOnIssues("BatchFormerConfig", CheckBatchFormerConfig(cfg));
}

std::vector<FormedBatch> FormBatches(const std::vector<TimedRequest>& trace,
                                     const BatchFormerConfig& cfg) {
  ValidateBatchFormerConfig(cfg);
  std::vector<FormedBatch> batches;
  std::size_t next = 0;
  while (next < trace.size()) {
    FormedBatch b;
    b.open_s = trace[next].arrival_s;
    const double deadline = b.open_s + cfg.timeout_s;
    // The first member is always admitted, even past the token budget.
    std::size_t end = next;
    b.tokens = trace[end].length;
    ++end;
    b.seal = BatchSeal::kTimeout;
    b.ready_s = deadline;
    while (end < trace.size()) {
      if (end - next >= cfg.max_batch) {
        b.seal = BatchSeal::kCapacity;
        b.ready_s = trace[end - 1].arrival_s;
        break;
      }
      if (trace[end].arrival_s > deadline) break;  // timeout seal
      if (cfg.max_tokens > 0 && b.tokens + trace[end].length > cfg.max_tokens) {
        b.seal = BatchSeal::kTokenBudget;
        b.ready_s = trace[end].arrival_s;
        break;
      }
      b.tokens += trace[end].length;
      ++end;
    }
    // A capacity seal can also fire when the stream ends exactly at
    // capacity: the batch filled at its last member's arrival.
    if (end == trace.size() && end - next >= cfg.max_batch) {
      b.seal = BatchSeal::kCapacity;
      b.ready_s = trace[end - 1].arrival_s;
    }
    b.indices.resize(end - next);
    for (std::size_t i = next; i < end; ++i) b.indices[i - next] = i;
    if (cfg.sort_by_length) {
      std::stable_sort(b.indices.begin(), b.indices.end(),
                       [&trace](std::size_t a, std::size_t c) {
                         return trace[a].length > trace[c].length;
                       });
    }
    batches.push_back(std::move(b));
    next = end;
  }
  return batches;
}

std::vector<std::size_t> BatchLengths(const std::vector<TimedRequest>& trace,
                                      const FormedBatch& batch) {
  std::vector<std::size_t> lens;
  lens.reserve(batch.indices.size());
  for (std::size_t idx : batch.indices) lens.push_back(trace[idx].length);
  return lens;
}

}  // namespace latte
