#pragma once
// One construction surface for batch service models.
//
// PRs 2-6 grew three ad-hoc factories -- AcceleratorServiceModel,
// ShardedAcceleratorServiceModel, AcceleratorFleetServiceModels -- plus
// hand-rolled MakeShardedServiceModel wrapping at call sites.  Every one
// of them answers the same question ("what does a batch cost?") with a
// different spelling, and none of them could express the adaptive layer's
// per-tier pricing.  This header replaces them with a single declarative
// value, ServiceModelSpec, and one factory, BuildServiceModel(spec), that
// composes base pricing (token-linear / padded / accelerator twin) with
// optional tensor-parallel gang wrapping.  BuildTierServiceModels derives
// the adaptive ladder's per-tier models from the same spec by overriding
// only the accelerator's top_k -- tier pricing and replica pricing can no
// longer drift apart.
//
// The old factories survive as thin deprecated shims over this surface
// (fpga/serving.hpp); new code should build a spec.

#include <vector>

#include "adapt/controller.hpp"
#include "config/check.hpp"
#include "fpga/accelerator.hpp"
#include "model/config.hpp"
#include "serve/dispatch.hpp"
#include "serve/shard_service.hpp"

namespace latte {

/// Declarative description of a batch service model.
struct ServiceModelSpec {
  /// The base price of a batch.
  enum class Base {
    kTokenLinear,   ///< overhead + spt * sum(len): the host-side default
    kPadded,        ///< overhead + spt * max(len) * |batch|: padded-dense
    kAccelerator,   ///< RunAccelerator latency: the performance twin
  };
  Base base = Base::kTokenLinear;

  // kTokenLinear / kPadded knobs.
  double seconds_per_token = 2e-6;
  double batch_overhead_s = 2e-4;

  // kAccelerator knobs (also consulted for sharded wrapping, which needs
  // the encoder shape regardless of base).
  ModelConfig model;
  AcceleratorConfig accel;

  /// Wrap the base price with a tensor-parallel gang
  /// (MakeShardedServiceModel over `shard`).  Leave false when the engine
  /// owns the wrapping (BackendMode::kSharded wraps at construction).
  bool sharded = false;
  ShardServiceConfig shard;
};

/// Names every illegal field (non-positive token cost, negative overhead,
/// malformed shard config -- "shard."-prefixed); empty means legal.
ConfigIssues CheckServiceModelSpec(const ServiceModelSpec& spec);

/// Builds the service model a spec describes.  Throws
/// std::invalid_argument (via the named-field validation) on a malformed
/// spec; the sharded wrap additionally throws if the plan does not fit
/// the model's encoder shape.
BatchServiceModel BuildServiceModel(const ServiceModelSpec& spec);

/// Copy of `spec` with the accelerator's sparse top_k overridden -- the
/// one knob a service tier changes.
ServiceModelSpec WithTopK(ServiceModelSpec spec, std::size_t top_k);

/// Per-tier service models for an adaptive ladder: tiers[i] is priced by
/// BuildServiceModel(WithTopK(spec, tiers[i].top_k)).  Feed the result to
/// ServingEngineConfig::tier_services.
std::vector<BatchServiceModel> BuildTierServiceModels(
    const ServiceModelSpec& spec, const std::vector<ServiceTier>& tiers);

}  // namespace latte
