#include "serve/report.hpp"

#include <algorithm>

#include "obs/percentiles.hpp"

namespace latte {

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  // Forwarder: the one canonical implementation lives in obs/percentiles
  // (shared with cluster/accounting, adapt and fpga/serving).
  return obs::PercentileOfSorted(sorted, p);
}

ServingReport BuildServingReport(std::vector<double>& latencies,
                                 std::size_t batches, double busy_s,
                                 double span_s, std::size_t workers) {
  ServingReport rep;
  rep.requests = latencies.size();
  rep.batches = batches;
  if (batches > 0) {
    rep.mean_batch_size =
        static_cast<double>(rep.requests) / static_cast<double>(batches);
  }
  if (latencies.empty()) return rep;
  double sum = 0;
  for (double l : latencies) sum += l;
  rep.mean_latency_s = sum / static_cast<double>(latencies.size());
  std::sort(latencies.begin(), latencies.end());
  rep.p50_latency_s = PercentileOfSorted(latencies, 0.50);
  rep.p95_latency_s = PercentileOfSorted(latencies, 0.95);
  rep.p99_latency_s = PercentileOfSorted(latencies, 0.99);
  rep.throughput_rps =
      span_s > 0 ? static_cast<double>(rep.requests) / span_s : 0;
  rep.device_busy_frac =
      span_s > 0 ? busy_s / (span_s * static_cast<double>(workers)) : 0;
  return rep;
}

}  // namespace latte
