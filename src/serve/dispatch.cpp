#include "serve/dispatch.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace latte {

BatchServiceModel TokenLinearServiceModel(double seconds_per_token,
                                          double batch_overhead_s) {
  return [seconds_per_token,
          batch_overhead_s](const std::vector<std::size_t>& lengths) {
    std::size_t tokens = 0;
    for (std::size_t len : lengths) tokens += len;
    return batch_overhead_s +
           seconds_per_token * static_cast<double>(tokens);
  };
}

BatchServiceModel PaddedServiceModel(double seconds_per_token,
                                     double batch_overhead_s) {
  return [seconds_per_token,
          batch_overhead_s](const std::vector<std::size_t>& lengths) {
    std::size_t max_len = 0;
    for (std::size_t len : lengths) max_len = std::max(max_len, len);
    return batch_overhead_s + seconds_per_token *
                                  static_cast<double>(max_len) *
                                  static_cast<double>(lengths.size());
  };
}

namespace {

// Shared scheduling core: `price` maps a batch to its service model.
DispatchSchedule ScheduleWithPricing(
    const std::vector<TimedRequest>& trace,
    const std::vector<FormedBatch>& batches, std::size_t workers,
    const std::function<const BatchServiceModel&(const FormedBatch&)>& price) {
  if (workers == 0) {
    throw std::invalid_argument(
        "ScheduleFormedBatches: workers must be >= 1 (no backend to "
        "dispatch to)");
  }
  DispatchSchedule sched;
  sched.launch_s.reserve(batches.size());
  sched.done_s.reserve(batches.size());
  sched.service_s.reserve(batches.size());
  sched.worker_of.reserve(batches.size());

  std::vector<double> worker_free(workers, 0.0);
  std::vector<double> latencies;
  latencies.reserve(trace.size());
  double busy = 0;
  for (const FormedBatch& b : batches) {
    auto free_it = std::min_element(worker_free.begin(), worker_free.end());
    const double launch = std::max(*free_it, b.ready_s);
    const double service_s = price(b)(BatchLengths(trace, b));
    const double done = launch + service_s;
    for (std::size_t idx : b.indices) {
      latencies.push_back(done - trace[idx].arrival_s);
    }
    busy += service_s;
    *free_it = done;
    sched.launch_s.push_back(launch);
    sched.done_s.push_back(done);
    sched.service_s.push_back(service_s);
    sched.worker_of.push_back(
        static_cast<std::size_t>(free_it - worker_free.begin()));
  }

  double span = 0;
  if (!batches.empty()) {
    const double last_done =
        *std::max_element(sched.done_s.begin(), sched.done_s.end());
    span = last_done - trace.front().arrival_s;
  }
  sched.report =
      BuildServingReport(latencies, batches.size(), busy, span, workers);
  return sched;
}

}  // namespace

DispatchSchedule ScheduleFormedBatches(const std::vector<TimedRequest>& trace,
                                       const std::vector<FormedBatch>& batches,
                                       std::size_t workers,
                                       const BatchServiceModel& service) {
  return ScheduleWithPricing(
      trace, batches, workers,
      [&service](const FormedBatch&) -> const BatchServiceModel& {
        return service;
      });
}

DispatchSchedule ScheduleFormedBatches(
    const std::vector<TimedRequest>& trace,
    const std::vector<FormedBatch>& batches, std::size_t workers,
    const std::vector<BatchServiceModel>& tier_services) {
  for (const FormedBatch& b : batches) {
    if (b.tier >= tier_services.size()) {
      throw std::invalid_argument(
          "ScheduleFormedBatches: batch names tier " +
          std::to_string(b.tier) + " but only " +
          std::to_string(tier_services.size()) + " tier services exist");
    }
  }
  return ScheduleWithPricing(
      trace, batches, workers,
      [&tier_services](const FormedBatch& b) -> const BatchServiceModel& {
        return tier_services[b.tier];
      });
}

}  // namespace latte
