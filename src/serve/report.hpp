#pragma once
// Serving metrics shared by the performance twin (fpga/serving) and the
// functional serving engine (serve/engine).
//
// Both twins report the same structure from the same accounting code, so a
// scenario replayed on the simulator and on the real runtime produces
// directly comparable -- and, with the same service model, identical --
// numbers.

#include <cstddef>
#include <vector>

namespace latte {

/// Per-tier accounting of an adaptive run: how many requests and batches
/// each rung of the service ladder absorbed, and what accuracy it
/// promised them (from the tier's fidelity table entry).
struct TierUsage {
  std::size_t top_k = 0;      ///< the tier's sparse attention budget
  std::size_t requests = 0;   ///< requests whose final service was this tier
  std::size_t batches = 0;    ///< batches formed at this tier
  std::size_t escalated = 0;  ///< first passes escalated away to tier 0
  double accuracy = 1.0;      ///< modeled accuracy of this tier
};

/// Aggregate serving metrics.
struct ServingReport {
  std::size_t requests = 0;
  std::size_t batches = 0;
  double mean_batch_size = 0;
  double mean_latency_s = 0;    ///< arrival -> batch completion
  double p50_latency_s = 0;
  double p95_latency_s = 0;
  double p99_latency_s = 0;
  double throughput_rps = 0;    ///< completed requests / simulated span
  double device_busy_frac = 0;  ///< worker utilization over the span
  /// Request-weighted mean of the modeled per-tier accuracy; 1.0 whenever
  /// every request got the full model (the non-adaptive paths).
  double mean_accuracy = 1.0;
  /// Per-tier breakdown, parallel to the adaptive ladder.  Empty for
  /// non-adaptive runs.
  std::vector<TierUsage> tiers;
};

/// Linear-interpolated percentile of an ascending-sorted sample, p in
/// [0, 1].  Returns 0 on an empty sample.
double PercentileOfSorted(const std::vector<double>& sorted, double p);

/// Builds a ServingReport from per-request latencies and span accounting.
/// `latencies` is consumed (sorted in place); `busy_s` is the total busy
/// worker-seconds, `span_s` the first-arrival -> last-completion span and
/// `workers` the number of concurrent backend slots the busy fraction is
/// averaged over.
ServingReport BuildServingReport(std::vector<double>& latencies,
                                 std::size_t batches, double busy_s,
                                 double span_s, std::size_t workers);

}  // namespace latte
