#pragma once
// Serving metrics shared by the performance twin (fpga/serving) and the
// functional serving engine (serve/engine).
//
// Both twins report the same structure from the same accounting code, so a
// scenario replayed on the simulator and on the real runtime produces
// directly comparable -- and, with the same service model, identical --
// numbers.

#include <cstddef>
#include <vector>

namespace latte {

/// Aggregate serving metrics.
struct ServingReport {
  std::size_t requests = 0;
  std::size_t batches = 0;
  double mean_batch_size = 0;
  double mean_latency_s = 0;    ///< arrival -> batch completion
  double p50_latency_s = 0;
  double p95_latency_s = 0;
  double p99_latency_s = 0;
  double throughput_rps = 0;    ///< completed requests / simulated span
  double device_busy_frac = 0;  ///< worker utilization over the span
};

/// Linear-interpolated percentile of an ascending-sorted sample, p in
/// [0, 1].  Returns 0 on an empty sample.
double PercentileOfSorted(const std::vector<double>& sorted, double p);

/// Builds a ServingReport from per-request latencies and span accounting.
/// `latencies` is consumed (sorted in place); `busy_s` is the total busy
/// worker-seconds, `span_s` the first-arrival -> last-completion span and
/// `workers` the number of concurrent backend slots the busy fraction is
/// averaged over.
ServingReport BuildServingReport(std::vector<double>& latencies,
                                 std::size_t batches, double busy_s,
                                 double span_s, std::size_t workers);

}  // namespace latte
