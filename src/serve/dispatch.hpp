#pragma once
// Virtual-time dispatch of formed batches onto concurrent backend workers.
//
// Both serving twins place batches the same way: each formed batch launches
// on the earliest-free of `workers` backend slots, never before the batch
// is sealed.  What differs is only the service model -- the performance
// twin prices a batch with the accelerator simulator, the functional
// engine with any deterministic cost model -- so the scheduling and report
// accounting live here, once.

#include <functional>

#include "serve/batch_former.hpp"
#include "serve/report.hpp"

namespace latte {

/// Service time (seconds) of one batch, given its member lengths in
/// dispatch order.  Must be deterministic for replay determinism.
using BatchServiceModel =
    std::function<double(const std::vector<std::size_t>& lengths)>;

/// Fixed per-batch overhead plus a per-token cost: the simplest useful
/// deterministic service model (the overhead is what batching amortizes).
BatchServiceModel TokenLinearServiceModel(double seconds_per_token,
                                          double batch_overhead_s);

/// Padded-dense backend: every member is padded to the batch's longest
/// sequence, so a batch costs overhead + spt * max(len) * |batch|.  The
/// cost model of the CPU/GPU baselines and the non-length-aware FPGA mode;
/// under it, mixing lengths in a batch wastes device time on padding --
/// which is exactly what length-bucketed cluster routing avoids.
BatchServiceModel PaddedServiceModel(double seconds_per_token,
                                     double batch_overhead_s);

/// Full virtual-time schedule of a formed-batch sequence.
struct DispatchSchedule {
  ServingReport report;
  std::vector<double> launch_s;   ///< per batch: dispatch time
  std::vector<double> done_s;     ///< per batch: completion time
  std::vector<double> service_s;  ///< per batch: modeled service time
  /// Per batch: the earliest-free worker slot that served it.  Purely an
  /// attribution record (the tracer's worker tracks); scheduling itself
  /// only ever needed the slot's free time.
  std::vector<std::size_t> worker_of;
};

/// Schedules `batches` (in order) onto `workers` earliest-free slots and
/// accounts per-request latency (arrival -> batch completion), throughput
/// and busy fraction into a ServingReport.
DispatchSchedule ScheduleFormedBatches(const std::vector<TimedRequest>& trace,
                                       const std::vector<FormedBatch>& batches,
                                       std::size_t workers,
                                       const BatchServiceModel& service);

/// Tier-aware variant: batch `b` is priced by `tier_services[b.tier]`
/// (the adaptive ladder's per-tier models, see serve/service_model.hpp).
/// Throws std::invalid_argument if a batch names a tier with no model.
DispatchSchedule ScheduleFormedBatches(
    const std::vector<TimedRequest>& trace,
    const std::vector<FormedBatch>& batches, std::size_t workers,
    const std::vector<BatchServiceModel>& tier_services);

}  // namespace latte
