#pragma once
// ServingEngine: the functional, host-side serving front end.
//
// The engine closes the loop the ROADMAP asks for: timestamped requests
// (a replayed Poisson trace or caller-pushed) flow through the shared
// length-aware batch former, formed batches execute for real on the PR-1
// batched runtime (ModelInstance::ForwardBatch over a BatchRunner), and
// the same ServingReport the FPGA simulator produces is accounted in
// virtual time from a deterministic service model.  That split -- real
// tensors for outputs, virtual time for latency -- is what makes a run
// reproducible: the same trace yields bit-identical outputs, batches and
// reports at any BatchRunner thread count.
//
// Backpressure: with a bounded queue (`queue_capacity` > 0) a request is
// rejected when the waiting room -- admitted requests whose batch has not
// yet launched -- is full at its arrival.  Admission is decided in virtual
// time with the same dispatch policy the report uses, so rejection counts
// are deterministic too.
//
// Result cache (`cfg.cache.enabled`): an optional, capacity-bounded
// request-result cache sits *in front of* batch forming.  At Push, a
// cacheable request (one with a content key under the configured policy)
// resolves to exactly one of three disjoint outcomes:
//   * hit       -- a live entry exists: served at arrival + hit_latency_s,
//                  bypassing admission, the bounded queue and the token
//                  budget entirely;
//   * coalesced -- an identical request is admitted but its batch has not
//                  completed in virtual time: attach as a follower and
//                  complete with the leader (one execution, N responses);
//   * miss      -- admitted normally as the leader for its key; when its
//                  batch completes in virtual time the entry becomes
//                  visible, and the tensor is materialized at Drain().
// Everything the cache decides -- hits, TTL expiry, LRU/SLRU eviction --
// runs on the same virtual clock as dispatch, so cached runs keep the
// engine's determinism contract: outputs are bit-exact against an
// uncached engine executing the deduplicated request set, and
// accounting-only replays are byte-identical at any thread count.  The
// virtual clock continues across streams (Drain() advances an epoch
// offset by the stream's span), so entries age as if streams were played
// back to back.

#include <memory>
#include <optional>
#include <utility>

#include "adapt/controller.hpp"
#include "cache/coalesce.hpp"
#include "cache/store.hpp"
#include "config/check.hpp"
#include "model/inference.hpp"
#include "obs/trace.hpp"
#include "serve/dispatch.hpp"
#include "serve/shard_service.hpp"

namespace latte {

/// How the virtual backend slots behind `workers` execute a batch.
enum class BackendMode {
  /// Each worker is an independent replica serving whole batches -- the
  /// pre-sharding behavior and the default.
  kReplicated,
  /// Each worker is a gang of `shard.degree` tensor-parallel shards: one
  /// batch occupies the whole gang, its service time shrunk to the
  /// ShardPlan compute share plus interconnect collectives
  /// (MakeShardedServiceModel wraps the configured service model at
  /// construction).  The functional datapath is unchanged -- the sharded
  /// encoder is bit-exact against the unsharded one, so outputs cannot
  /// depend on the backend mode.
  kSharded,
};

/// Serving engine knobs.
struct ServingEngineConfig {
  BatchFormerConfig former;     ///< continuous batch forming policy
  std::size_t workers = 1;      ///< virtual backend slots (latency model)
  std::size_t threads = 1;      ///< BatchRunner threads (0 = hardware)
  std::size_t queue_capacity = 0;  ///< waiting-room bound; 0 = unbounded
  InferenceConfig inference;    ///< functional datapath per sequence
  std::uint64_t embed_seed = 1;    ///< synthesized request embeddings
  /// Run the functional datapath at Drain().  false = accounting only:
  /// batches, admission and the virtual-time report are produced as usual
  /// but no tensors are computed and `ServingResult::outputs` stays empty
  /// -- the mode cluster-level policy sweeps use, where only the
  /// deterministic virtual-time numbers matter.
  bool execute = true;
  /// Deterministic per-batch service time for the virtual-time report;
  /// empty picks a token-linear default.  Use AcceleratorServiceModel
  /// (fpga/serving.hpp) to account exactly like the performance twin.
  BatchServiceModel service;
  /// Request-result cache in front of batch forming (disabled by
  /// default).  A cluster may override this with a fleet-shared store.
  ResultCacheConfig cache;
  /// Backend execution mode; kSharded turns every worker slot into a
  /// tensor-parallel gang priced through `shard`.
  BackendMode backend = BackendMode::kReplicated;
  /// Gang shape and interconnect cost; read only when backend ==
  /// BackendMode::kSharded.
  ShardServiceConfig shard;
  /// SLO-driven admission/degradation layer (adapt/controller.hpp).
  /// Disabled by default; when enabled the engine forms per-tier batches,
  /// escalates uncertain cheap-tier results to tier 0 and sheds only as a
  /// last resort.  Incompatible with the result cache.
  AdaptiveServingConfig adapt;
  /// Per-tier service models, parallel to `adapt.tiers` (build with
  /// BuildTierServiceModels, serve/service_model.hpp).  Empty = every tier
  /// priced by `service` (accounting-neutral degradation; useful in
  /// tests).  Read only when `adapt.enabled`.
  std::vector<BatchServiceModel> tier_services;
  /// Request-lifecycle tracing (obs/trace.hpp).  Disabled by default; the
  /// disabled path costs one pointer check per instrumentation site and
  /// leaves every output and report bit-exact vs a pre-obs engine.
  obs::TraceConfig trace;
};

/// Names every illegal field (nested former/cache/shard issues carry
/// dot-path prefixes); empty means legal.
ConfigIssues CheckServingEngineConfig(const ServingEngineConfig& cfg);

/// Throws std::invalid_argument naming the offending field.
void ValidateServingEngineConfig(const ServingEngineConfig& cfg);

/// The input embedding the engine synthesizes for a request pushed without
/// one: a function of (base_seed, Push ordinal, length) alone, so request
/// identity -- never batching, rejections or routing -- determines the
/// tensor.  Exposed so a multi-replica cluster can synthesize the exact
/// embedding a single engine would have used for the same offered ordinal.
MatrixF SynthesizeRequestEmbedding(std::uint64_t base_seed,
                                   std::size_t ordinal, std::size_t length,
                                   std::size_t hidden);

/// Same, for a request that carries a content identity
/// (TimedRequest::id != kAnonymousId): the tensor is a function of
/// (base_seed, id, length) alone, so every request sharing an id carries
/// byte-identical content -- the invariant the result cache's bit-exact
/// contract rests on.  Uses a different seed mixing than the ordinal
/// path, so id spaces and ordinal spaces never alias.
MatrixF SynthesizeIdentityEmbedding(std::uint64_t base_seed, std::uint64_t id,
                                    std::size_t length, std::size_t hidden);

/// Admission accounting under backpressure.  With a cache in front,
/// offered counts every Push() while accepted/rejected only cover the
/// misses that reached admission: offered = accepted + rejected + hits +
/// coalesced + (cache-disabled: 0).
struct AdmissionStats {
  std::size_t offered = 0;     ///< Push() calls
  std::size_t accepted = 0;    ///< admitted to the queue
  std::size_t rejected = 0;    ///< bounced by the bounded queue
  std::size_t peak_queue = 0;  ///< max waiting-room occupancy observed
};

/// One request served from the cache layer instead of a batch: a hit on a
/// live entry, or a follower coalesced onto an in-flight leader.
struct CacheServedRequest {
  std::size_t offered_id = 0;  ///< Push() ordinal
  double arrival_s = 0;
  double done_s = 0;    ///< virtual completion (hit: arrival + hit latency;
                        ///< follower: its leader's batch completion)
  bool coalesced = false;  ///< false = cache hit, true = follower
  std::size_t length = 0;
  /// Admitted index (into this stream) whose output serves this request,
  /// or npos() when `output` was copied straight from a materialized
  /// entry at Push time.
  std::size_t leader_admitted = static_cast<std::size_t>(-1);
  MatrixF output;  ///< filled at Drain() in execute mode

  static constexpr std::size_t npos() { return static_cast<std::size_t>(-1); }
};

/// Everything one serving run produces.
struct ServingResult {
  DispatchSchedule schedule;         ///< virtual-time report + batch times
  AdmissionStats admission;
  std::vector<FormedBatch> batches;  ///< indices into admitted order
  std::vector<MatrixF> outputs;      ///< one per admitted request
  std::vector<std::size_t> offered_ids;  ///< admitted -> Push() ordinal
  /// Hits and coalesced followers (empty when the cache is disabled), in
  /// the order their completions were recorded: hits at their arrival,
  /// followers at their leader's batch completion -- NOT Push order.
  /// Match entries to requests via `offered_id`.  Their latencies are
  /// pooled into report() alongside the admitted requests'.
  std::vector<CacheServedRequest> cache_served;
  CacheStats cache;   ///< lookup outcomes + store snapshot at Drain()
  /// Adaptive runs only (empty otherwise), parallel to the admitted
  /// order: the tier each entry's batch was formed at, and whether the
  /// entry is a superseded first pass (its escalated re-run at tier 0 is
  /// a later entry sharing its offered_id).
  std::vector<std::size_t> request_tiers;
  std::vector<std::uint8_t> superseded;
  double wall_s = 0;  ///< measured wall-clock of functional execution

  /// With the cache enabled this is the *pooled* report: admitted, hit
  /// and coalesced requests all contribute their virtual-time latencies
  /// (mean_batch_size stays requests/batches, so it exceeds the formed
  /// batch sizes when hits are served without forming anything).
  const ServingReport& report() const { return schedule.report; }
};

/// Streaming serving engine over a materialized model.
///
/// The model must outlive the engine.  Usage: Push() requests in arrival
/// order (or Replay() a whole trace), then Drain() to execute and collect
/// the result; Drain() resets the engine for the next run (the cache and
/// its virtual clock persist across runs).
class ServingEngine {
 public:
  /// `shared_cache` overrides the engine-owned store (the cluster's
  /// fleet-shared mode); when given, cfg.cache must be enabled and
  /// supplies the key policy and hit latency while the store's own
  /// config governs capacity/TTL/eviction.
  ServingEngine(const ModelInstance& model, const ServingEngineConfig& cfg,
                std::shared_ptr<ResultCache> shared_cache = nullptr);

  /// Offers a request.  With an input embedding (request.length x hidden)
  /// the engine serves that tensor; without one the embedding is
  /// synthesized from (embed_seed, Push ordinal) -- or from
  /// (embed_seed, id) when the request carries a content identity.
  /// Returns false when the bounded queue rejects (adaptive: sheds) it.
  /// Arrivals must be non-decreasing in time.
  bool Push(const TimedRequest& request,
            std::optional<MatrixF> input = std::nullopt);

  /// Seals the trailing batch, executes every formed batch on the batched
  /// runtime and returns outputs plus the virtual-time report.  The
  /// engine is empty afterwards and can serve the next stream.
  ServingResult Drain();

  /// Push() + Drain() over a whole trace.
  ServingResult Replay(const std::vector<TimedRequest>& trace);

  /// Admission counters for the stream currently being offered.
  const AdmissionStats& admission() const { return admission_; }

  /// Current waiting-room occupancy (admitted, batch not yet launched).
  std::size_t queue_depth() const { return admitted_.size() - launched_; }

  /// Tokens admitted but not yet completed in virtual time: the waiting
  /// room plus batches still in service.  The load signal
  /// least-outstanding-token routing balances on.
  std::size_t outstanding_tokens() const {
    return waiting_tokens_ + in_service_tokens_;
  }

  /// Current degradation level of the adaptive controller (0 = full
  /// quality, and always 0 when the adaptive layer is disabled).  Routers
  /// use this to prefer less-degraded replicas.
  std::size_t service_level() const {
    return controller_ ? controller_->level() : 0;
  }

  /// Advances virtual time to `now` without offering a request: seals a
  /// timed-out open batch, launches sealed batches whose dispatch time has
  /// passed and retires completed ones.  Routers call this on every
  /// replica before reading queue_depth() / outstanding_tokens(), so load
  /// signals are comparable across replicas at the arrival instant.
  /// Idempotent; a `now` earlier than the last observed time is a no-op.
  /// With a cache, completed batches also publish their entries here, so
  /// repeats arriving after a leader's virtual completion hit.
  void AdvanceTo(double now);

  /// Whether a Push() of `request` at `now` would be served from the
  /// cache (a live entry exists; routers use this to bypass the
  /// queue-full skip for hits).  Non-mutating.  Conservative false for
  /// requests whose key needs a tensor the router does not have
  /// (kEmbeddingHash without an id), and in execute mode for entries
  /// still owing their tensor to another engine.
  bool WouldHitCache(const TimedRequest& request, double now) const;

  /// Whether a Push() of `request` would attach as a coalesced follower
  /// (an identical request is admitted here and still in flight).
  /// Followers, like hits, never occupy the waiting room.
  bool WouldCoalesce(const TimedRequest& request) const;

  /// The engine's cache store (null when disabled); shared across
  /// replicas in the cluster's fleet-shared mode.
  const std::shared_ptr<ResultCache>& cache() const { return cache_; }

  /// True when the store came from outside (fleet-shared) rather than
  /// being engine-owned.
  bool cache_is_shared() const { return cache_shared_; }

  /// Drops every entry of an engine-*owned* cache (failover
  /// invalidation); a shared store is left untouched -- its entries
  /// belong to the fleet, not this engine.
  void InvalidateOwnedCache();

  /// Virtual-clock offset accumulated over drained streams (entries age
  /// across streams as if they were played back to back).
  double cache_epoch() const { return cache_epoch_; }

  /// Fast-forwards the cache clock (never backwards).  The cluster aligns
  /// every replica to the fleet-max epoch after a drain so a shared
  /// store sees one coherent timeline.
  void AlignCacheEpoch(double epoch);

  /// Points the engine at an externally owned tracer (the cluster's
  /// fleet tracer), recording on tracks [track_base, track_base + workers]
  /// -- one per virtual worker slot plus a control lane.  Track labels get
  /// `label_prefix` prepended ("r0/worker 1").  Null detaches.  Replaces
  /// the engine-owned tracer cfg.trace.enabled would have created.
  void AttachTracer(obs::Tracer* tracer, std::uint32_t track_base,
                    std::string_view label_prefix = {});

  /// The active tracer (engine-owned or attached); null when disabled.
  obs::Tracer* tracer() const { return tracer_; }

  /// The batched execution runtime, for pool-health metrics export.
  const BatchRunner& runner() const { return runner_; }

 private:
  bool PushImpl(const TimedRequest& request, MatrixF input);
  CacheKey KeyFor(const TimedRequest& request, const MatrixF& input) const;
  void SealOpen(BatchSeal seal, double ready_s);
  void ProcessCacheCompletions(double now);
  void CompleteAdmitted(std::size_t idx, double done_s);
  void ResetStream();

  // Tracing (all no-ops when tracer_ is null).
  std::uint32_t control_track() const {
    return track_base_ + static_cast<std::uint32_t>(cfg_.workers);
  }
  void RecordInstant(obs::SpanKind kind, double t, std::uint64_t id,
                     std::int64_t arg);
  void RecordSpan(obs::SpanKind kind, double begin_s, double end_s,
                  std::uint64_t id, std::int64_t arg, std::uint32_t track);
  /// Drain-time pass: per-request queue-wait spans and completion
  /// instants on the control track, per-batch service spans on the
  /// worker track the earliest-free recurrence picked.
  void EmitScheduleSpans(const DispatchSchedule& sched);

  // Adaptive path (controller_ engaged).
  bool PushAdaptive(const TimedRequest& request, MatrixF input,
                    std::size_t ordinal);
  void AdmitToTier(std::size_t tier, const TimedRequest& request,
                   MatrixF input, std::size_t ordinal, double root_arrival,
                   bool escalate);
  void SealOpenTier(std::size_t tier, BatchSeal seal, double ready_s);
  /// Runs the virtual-time event loop -- batch completions (escalation
  /// re-injection, latency recording), timeout seals, FIFO launches and
  /// controller epochs -- strictly in time order up to `now`.  In drain
  /// mode it runs to quiescence instead (epochs fire only while real work
  /// remains, so the loop terminates).
  void RunAdaptiveEvents(double now, bool drain);
  ServingResult DrainAdaptive();

  const ModelInstance& model_;
  ServingEngineConfig cfg_;
  BatchRunner runner_;

  // Tracing (null when disabled; owned unless a cluster attached one).
  std::unique_ptr<obs::Tracer> owned_tracer_;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t track_base_ = 0;

  // Stream state (virtual time).
  std::vector<TimedRequest> admitted_;
  std::vector<MatrixF> inputs_;             ///< parallel to admitted_
  std::vector<std::size_t> offered_ids_;    ///< parallel to admitted_
  std::vector<FormedBatch> sealed_;         ///< incrementally formed
  std::size_t open_start_ = 0;  ///< first admitted index of the open batch
  bool open_active_ = false;
  double open_s_ = 0;
  std::size_t open_tokens_ = 0;
  std::vector<double> worker_free_;
  std::size_t next_launch_ = 0;  ///< first unlaunched sealed batch
  std::size_t launched_ = 0;     ///< admitted requests already launched
  double last_arrival_ = 0;
  AdmissionStats admission_;

  // Token accounting for routing introspection (virtual time).
  std::size_t waiting_tokens_ = 0;     ///< admitted, batch not launched
  std::size_t in_service_tokens_ = 0;  ///< launched, batch not done
  std::vector<std::pair<double, std::size_t>> in_flight_;  ///< (done_s, tokens)

  // Cache layer (null/empty when disabled).
  std::shared_ptr<ResultCache> cache_;
  bool cache_shared_ = false;
  InFlightTable inflight_;
  CacheStats cache_stats_;  ///< per-stream engine-side counters
  std::vector<CacheServedRequest> cache_served_;
  std::vector<CacheKey> admitted_keys_;  ///< parallel to admitted_
  /// Launched batches whose virtual completion has not been published to
  /// the cache yet: (done_s, sealed ordinal).
  std::vector<std::pair<double, std::size_t>> pending_done_;
  double cache_epoch_ = 0;      ///< virtual-clock offset across streams
  double last_completion_ = 0;  ///< latest completion seen this stream

  // Adaptive layer (engaged only when cfg.adapt.enabled).
  /// One per-tier open batch (the adaptive former interleaves tiers, so
  /// members are explicit indices rather than a contiguous range).
  struct OpenTier {
    bool active = false;
    double open_s = 0;
    std::size_t tokens = 0;
    std::vector<std::size_t> members;  ///< admitted indices
  };
  std::optional<AdaptiveController> controller_;
  std::vector<BatchServiceModel> tier_services_;  ///< resolved per tier
  /// Collectives term of the sharded backend's price, for attributing
  /// each sharded batch's interconnect tail as its own trace sub-span.
  /// Empty unless backend == kSharded.
  BatchServiceModel shard_comm_;
  std::vector<OpenTier> open_tiers_;
  std::vector<std::size_t> tier_of_;       ///< parallel to admitted_
  std::vector<double> root_arrival_;       ///< original arrival (escalation)
  std::vector<std::uint8_t> superseded_;   ///< first pass replaced by re-run
  std::vector<std::uint8_t> escalate_flag_;  ///< probe said: re-run at tier 0
  /// Launched batches not yet completed in virtual time:
  /// (done_s, sealed ordinal), processed earliest-first.
  std::vector<std::pair<double, std::size_t>> completions_;
  double planned_acc_sum_ = 0;     ///< accuracy-budget numerator
  std::size_t planned_count_ = 0;  ///< accepted requests (denominator)
  std::vector<std::size_t> tier_requests_;   ///< completions per tier
  std::vector<std::size_t> tier_batches_;    ///< batches formed per tier
  std::vector<std::size_t> tier_escalated_;  ///< first passes escalated
};

}  // namespace latte
