#pragma once
// ServingEngine: the functional, host-side serving front end.
//
// The engine closes the loop the ROADMAP asks for: timestamped requests
// (a replayed Poisson trace or caller-pushed) flow through the shared
// length-aware batch former, formed batches execute for real on the PR-1
// batched runtime (ModelInstance::ForwardBatch over a BatchRunner), and
// the same ServingReport the FPGA simulator produces is accounted in
// virtual time from a deterministic service model.  That split -- real
// tensors for outputs, virtual time for latency -- is what makes a run
// reproducible: the same trace yields bit-identical outputs, batches and
// reports at any BatchRunner thread count.
//
// Backpressure: with a bounded queue (`queue_capacity` > 0) a request is
// rejected when the waiting room -- admitted requests whose batch has not
// yet launched -- is full at its arrival.  Admission is decided in virtual
// time with the same dispatch policy the report uses, so rejection counts
// are deterministic too.

#include <utility>

#include "model/inference.hpp"
#include "serve/dispatch.hpp"

namespace latte {

/// Serving engine knobs.
struct ServingEngineConfig {
  BatchFormerConfig former;     ///< continuous batch forming policy
  std::size_t workers = 1;      ///< virtual backend slots (latency model)
  std::size_t threads = 1;      ///< BatchRunner threads (0 = hardware)
  std::size_t queue_capacity = 0;  ///< waiting-room bound; 0 = unbounded
  InferenceConfig inference;    ///< functional datapath per sequence
  std::uint64_t embed_seed = 1;    ///< synthesized request embeddings
  /// Run the functional datapath at Drain().  false = accounting only:
  /// batches, admission and the virtual-time report are produced as usual
  /// but no tensors are computed and `ServingResult::outputs` stays empty
  /// -- the mode cluster-level policy sweeps use, where only the
  /// deterministic virtual-time numbers matter.
  bool execute = true;
  /// Deterministic per-batch service time for the virtual-time report;
  /// empty picks a token-linear default.  Use AcceleratorServiceModel
  /// (fpga/serving.hpp) to account exactly like the performance twin.
  BatchServiceModel service;
};

/// Throws std::invalid_argument naming the offending field.
void ValidateServingEngineConfig(const ServingEngineConfig& cfg);

/// The input embedding the engine synthesizes for a request pushed without
/// one: a function of (base_seed, Push ordinal, length) alone, so request
/// identity -- never batching, rejections or routing -- determines the
/// tensor.  Exposed so a multi-replica cluster can synthesize the exact
/// embedding a single engine would have used for the same offered ordinal.
MatrixF SynthesizeRequestEmbedding(std::uint64_t base_seed,
                                   std::size_t ordinal, std::size_t length,
                                   std::size_t hidden);

/// Admission accounting under backpressure.
struct AdmissionStats {
  std::size_t offered = 0;     ///< Push() calls
  std::size_t accepted = 0;    ///< admitted to the queue
  std::size_t rejected = 0;    ///< bounced by the bounded queue
  std::size_t peak_queue = 0;  ///< max waiting-room occupancy observed
};

/// Everything one serving run produces.
struct ServingResult {
  DispatchSchedule schedule;         ///< virtual-time report + batch times
  AdmissionStats admission;
  std::vector<FormedBatch> batches;  ///< indices into admitted order
  std::vector<MatrixF> outputs;      ///< one per admitted request
  std::vector<std::size_t> offered_ids;  ///< admitted -> Push() ordinal
  double wall_s = 0;  ///< measured wall-clock of functional execution

  const ServingReport& report() const { return schedule.report; }
};

/// Streaming serving engine over a materialized model.
///
/// The model must outlive the engine.  Usage: Push() requests in arrival
/// order (or Replay() a whole trace), then Drain() to execute and collect
/// the result; Drain() resets the engine for the next run.
class ServingEngine {
 public:
  ServingEngine(const ModelInstance& model, const ServingEngineConfig& cfg);

  /// Offers a request whose input embedding is synthesized from
  /// (embed_seed, Push ordinal).  Returns false when the bounded queue
  /// rejects it.  Arrivals must be non-decreasing in time.
  bool Push(const TimedRequest& request);

  /// Offers a request with a caller-provided embedding
  /// (request.length x hidden).
  bool Push(const TimedRequest& request, MatrixF input);

  /// Seals the trailing batch, executes every formed batch on the batched
  /// runtime and returns outputs plus the virtual-time report.  The
  /// engine is empty afterwards and can serve the next stream.
  ServingResult Drain();

  /// Push() + Drain() over a whole trace.
  ServingResult Replay(const std::vector<TimedRequest>& trace);

  /// Admission counters for the stream currently being offered.
  const AdmissionStats& admission() const { return admission_; }

  /// Current waiting-room occupancy (admitted, batch not yet launched).
  std::size_t queue_depth() const { return admitted_.size() - launched_; }

  /// Tokens admitted but not yet completed in virtual time: the waiting
  /// room plus batches still in service.  The load signal
  /// least-outstanding-token routing balances on.
  std::size_t outstanding_tokens() const {
    return waiting_tokens_ + in_service_tokens_;
  }

  /// Advances virtual time to `now` without offering a request: seals a
  /// timed-out open batch, launches sealed batches whose dispatch time has
  /// passed and retires completed ones.  Routers call this on every
  /// replica before reading queue_depth() / outstanding_tokens(), so load
  /// signals are comparable across replicas at the arrival instant.
  /// Idempotent; a `now` earlier than the last observed time is a no-op.
  void AdvanceTo(double now);

 private:
  bool PushImpl(const TimedRequest& request, MatrixF input);
  void SealOpen(BatchSeal seal, double ready_s);
  void ResetStream();

  const ModelInstance& model_;
  ServingEngineConfig cfg_;
  BatchRunner runner_;

  // Stream state (virtual time).
  std::vector<TimedRequest> admitted_;
  std::vector<MatrixF> inputs_;             ///< parallel to admitted_
  std::vector<std::size_t> offered_ids_;    ///< parallel to admitted_
  std::vector<FormedBatch> sealed_;         ///< incrementally formed
  std::size_t open_start_ = 0;  ///< first admitted index of the open batch
  bool open_active_ = false;
  double open_s_ = 0;
  std::size_t open_tokens_ = 0;
  std::vector<double> worker_free_;
  std::size_t next_launch_ = 0;  ///< first unlaunched sealed batch
  std::size_t launched_ = 0;     ///< admitted requests already launched
  double last_arrival_ = 0;
  AdmissionStats admission_;

  // Token accounting for routing introspection (virtual time).
  std::size_t waiting_tokens_ = 0;     ///< admitted, batch not launched
  std::size_t in_service_tokens_ = 0;  ///< launched, batch not done
  std::vector<std::pair<double, std::size_t>> in_flight_;  ///< (done_s, tokens)
};

}  // namespace latte
