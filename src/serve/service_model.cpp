#include "serve/service_model.hpp"

#include <cmath>
#include <utility>

namespace latte {

ConfigIssues CheckServiceModelSpec(const ServiceModelSpec& spec) {
  ConfigIssues issues;
  if (spec.base != ServiceModelSpec::Base::kAccelerator) {
    if (!(spec.seconds_per_token > 0) ||
        !std::isfinite(spec.seconds_per_token)) {
      AddIssue(issues, "seconds_per_token",
               "must be a positive, finite per-token cost");
    }
    if (std::isnan(spec.batch_overhead_s) || spec.batch_overhead_s < 0 ||
        !std::isfinite(spec.batch_overhead_s)) {
      AddIssue(issues, "batch_overhead_s",
               "must be a non-negative, finite per-batch overhead");
    }
  } else if (spec.accel.top_k == 0) {
    AddIssue(issues, "accel.top_k",
             "must be >= 1 (0 selects no attention candidates)");
  }
  if (spec.sharded) {
    MergePrefixed(issues, "shard", CheckShardServiceConfig(spec.shard));
  }
  return issues;
}

BatchServiceModel BuildServiceModel(const ServiceModelSpec& spec) {
  ThrowOnIssues("ServiceModelSpec", CheckServiceModelSpec(spec));
  BatchServiceModel base;
  switch (spec.base) {
    case ServiceModelSpec::Base::kTokenLinear:
      base = TokenLinearServiceModel(spec.seconds_per_token,
                                     spec.batch_overhead_s);
      break;
    case ServiceModelSpec::Base::kPadded:
      base =
          PaddedServiceModel(spec.seconds_per_token, spec.batch_overhead_s);
      break;
    case ServiceModelSpec::Base::kAccelerator: {
      // By-value captures: the model a spec describes must outlive the
      // spec itself (engines hold service models for their whole life).
      const ModelConfig model = spec.model;
      const AcceleratorConfig accel = spec.accel;
      base = [model, accel](const std::vector<std::size_t>& lengths) {
        return RunAccelerator(model, lengths, accel).latency_s;
      };
      break;
    }
  }
  if (spec.sharded) {
    base = MakeShardedServiceModel(std::move(base), spec.model, spec.shard);
  }
  return base;
}

ServiceModelSpec WithTopK(ServiceModelSpec spec, std::size_t top_k) {
  spec.accel.top_k = top_k;
  return spec;
}

std::vector<BatchServiceModel> BuildTierServiceModels(
    const ServiceModelSpec& spec, const std::vector<ServiceTier>& tiers) {
  std::vector<BatchServiceModel> models;
  models.reserve(tiers.size());
  for (const ServiceTier& tier : tiers) {
    models.push_back(BuildServiceModel(WithTopK(spec, tier.top_k)));
  }
  return models;
}

}  // namespace latte
