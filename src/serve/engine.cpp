#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "workload/synthetic.hpp"

namespace latte {

MatrixF SynthesizeRequestEmbedding(std::uint64_t base_seed,
                                   std::size_t ordinal, std::size_t length,
                                   std::size_t hidden) {
  // Distinct, well-mixed seed per Push() ordinal so request embeddings are
  // a function of request identity alone (rejections and batch composition
  // do not disturb them).
  Rng rng(base_seed +
          0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(ordinal) + 1));
  return MakeInputEmbedding(rng, length, hidden);
}

void ValidateServingEngineConfig(const ServingEngineConfig& cfg) {
  ValidateBatchFormerConfig(cfg.former);
  if (cfg.workers == 0) {
    throw std::invalid_argument(
        "ServingEngineConfig: workers must be >= 1 (no backend slot to "
        "account against)");
  }
  if (cfg.execute && cfg.inference.mode != InferenceMode::kDenseFloat &&
      cfg.inference.mode != InferenceMode::kDenseInt8 &&
      cfg.inference.sparse.top_k == 0) {
    throw std::invalid_argument(
        "ServingEngineConfig: inference.sparse.top_k must be >= 1 for the "
        "sparse execution modes (0 selects no attention candidates)");
  }
}

ServingEngine::ServingEngine(const ModelInstance& model,
                             const ServingEngineConfig& cfg)
    : model_(model), cfg_(cfg), runner_(cfg.threads) {
  ValidateServingEngineConfig(cfg_);
  if (!cfg_.service) {
    // ~0.5 M tokens/s plus a fixed dispatch cost: a plausible host-side
    // default; pass AcceleratorServiceModel to account like the simulator.
    cfg_.service = TokenLinearServiceModel(2e-6, 2e-4);
  }
  worker_free_.assign(cfg_.workers, 0.0);
}

bool ServingEngine::Push(const TimedRequest& request) {
  return PushImpl(request, MatrixF{});
}

bool ServingEngine::Push(const TimedRequest& request, MatrixF input) {
  if (input.rows() != request.length ||
      input.cols() != model_.config().encoder.hidden) {
    throw std::invalid_argument(
        "ServingEngine::Push: input must be length x hidden (" +
        std::to_string(request.length) + " x " +
        std::to_string(model_.config().encoder.hidden) + "), got " +
        std::to_string(input.rows()) + " x " + std::to_string(input.cols()));
  }
  return PushImpl(request, std::move(input));
}

bool ServingEngine::PushImpl(const TimedRequest& request, MatrixF input) {
  if (admission_.offered > 0 && request.arrival_s < last_arrival_) {
    throw std::invalid_argument(
        "ServingEngine::Push: arrivals must be non-decreasing (got " +
        std::to_string(request.arrival_s) + " after " +
        std::to_string(last_arrival_) + ")");
  }
  const std::size_t ordinal = admission_.offered++;
  last_arrival_ = request.arrival_s;

  AdvanceTo(request.arrival_s);

  const std::size_t waiting = admitted_.size() - launched_;
  if (cfg_.queue_capacity > 0 && waiting >= cfg_.queue_capacity) {
    ++admission_.rejected;
    return false;
  }
  ++admission_.accepted;
  admission_.peak_queue = std::max(admission_.peak_queue, waiting + 1);
  waiting_tokens_ += request.length;

  // Forming, mirroring FormBatches: a token-budget overflow seals the open
  // batch at this arrival and the request starts the next batch; the first
  // member of a batch is always admitted, however long.
  if (open_active_ && cfg_.former.max_tokens > 0 &&
      open_tokens_ + request.length > cfg_.former.max_tokens) {
    SealOpen(BatchSeal::kTokenBudget, request.arrival_s);
  }
  if (!open_active_) {
    open_active_ = true;
    open_start_ = admitted_.size();
    open_s_ = request.arrival_s;
    open_tokens_ = 0;
  }
  admitted_.push_back(request);
  inputs_.push_back(std::move(input));
  offered_ids_.push_back(ordinal);
  open_tokens_ += request.length;
  if (admitted_.size() - open_start_ >= cfg_.former.max_batch) {
    SealOpen(BatchSeal::kCapacity, request.arrival_s);
  }
  return true;
}

void ServingEngine::AdvanceTo(double now) {
  if (open_active_ && now > open_s_ + cfg_.former.timeout_s) {
    SealOpen(BatchSeal::kTimeout, open_s_ + cfg_.former.timeout_s);
  }
  while (next_launch_ < sealed_.size()) {
    auto free_it = std::min_element(worker_free_.begin(), worker_free_.end());
    const FormedBatch& b = sealed_[next_launch_];
    const double launch = std::max(*free_it, b.ready_s);
    if (launch > now) break;
    const double done = launch + cfg_.service(BatchLengths(admitted_, b));
    *free_it = done;
    launched_ += b.indices.size();
    waiting_tokens_ -= b.tokens;
    in_service_tokens_ += b.tokens;
    in_flight_.push_back({done, b.tokens});
    ++next_launch_;
  }
  // Retire batches whose virtual completion has passed, so
  // outstanding_tokens() reflects load still on this replica at `now`.
  std::size_t kept = 0;
  for (const auto& [done_s, tokens] : in_flight_) {
    if (done_s <= now) {
      in_service_tokens_ -= tokens;
    } else {
      in_flight_[kept++] = {done_s, tokens};
    }
  }
  in_flight_.resize(kept);
}

void ServingEngine::SealOpen(BatchSeal seal, double ready_s) {
  FormedBatch b;
  b.open_s = open_s_;
  b.ready_s = ready_s;
  b.tokens = open_tokens_;
  b.seal = seal;
  b.indices.resize(admitted_.size() - open_start_);
  for (std::size_t i = 0; i < b.indices.size(); ++i) {
    b.indices[i] = open_start_ + i;
  }
  if (cfg_.former.sort_by_length) {
    std::stable_sort(b.indices.begin(), b.indices.end(),
                     [this](std::size_t a, std::size_t c) {
                       return admitted_[a].length > admitted_[c].length;
                     });
  }
  sealed_.push_back(std::move(b));
  open_active_ = false;
}

ServingResult ServingEngine::Drain() {
  if (open_active_) {
    // End of stream: a streaming former cannot know no more requests are
    // coming, so the trailing batch waits out its timer.
    SealOpen(BatchSeal::kTimeout, open_s_ + cfg_.former.timeout_s);
  }

  ServingResult result;
  result.schedule =
      ScheduleFormedBatches(admitted_, sealed_, cfg_.workers, cfg_.service);
  result.admission = admission_;

  if (cfg_.execute) {
    // Synthesize embeddings for requests pushed without one; identity is
    // the Push() ordinal, so outputs do not depend on batching or
    // rejections.
    const std::size_t hidden = model_.config().encoder.hidden;
    for (std::size_t i = 0; i < admitted_.size(); ++i) {
      if (inputs_[i].empty()) {
        inputs_[i] = SynthesizeRequestEmbedding(
            cfg_.embed_seed, offered_ids_[i], admitted_[i].length, hidden);
      }
    }

    // Execute every formed batch on the batched runtime.  Batches run in
    // dispatch order; per-sequence math is bit-identical to a sequential
    // Forward() loop at any thread count (the BatchRunner contract).
    const auto wall0 = std::chrono::steady_clock::now();
    result.outputs.resize(admitted_.size());
    for (const FormedBatch& b : sealed_) {
      std::vector<MatrixF> xs;
      xs.reserve(b.indices.size());
      for (std::size_t idx : b.indices) xs.push_back(std::move(inputs_[idx]));
      auto ys = model_.ForwardBatch(xs, cfg_.inference, runner_);
      for (std::size_t i = 0; i < b.indices.size(); ++i) {
        result.outputs[b.indices[i]] = std::move(ys[i]);
      }
    }
    result.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
            .count();
  }

  result.batches = std::move(sealed_);
  result.offered_ids = std::move(offered_ids_);
  ResetStream();
  return result;
}

ServingResult ServingEngine::Replay(const std::vector<TimedRequest>& trace) {
  for (const TimedRequest& r : trace) Push(r);
  return Drain();
}

void ServingEngine::ResetStream() {
  admitted_.clear();
  inputs_.clear();
  offered_ids_.clear();
  sealed_.clear();
  open_active_ = false;
  open_start_ = 0;
  open_s_ = 0;
  open_tokens_ = 0;
  worker_free_.assign(cfg_.workers, 0.0);
  next_launch_ = 0;
  launched_ = 0;
  last_arrival_ = 0;
  admission_ = AdmissionStats{};
  waiting_tokens_ = 0;
  in_service_tokens_ = 0;
  in_flight_.clear();
}

}  // namespace latte
