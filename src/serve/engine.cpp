#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "adapt/escalate.hpp"
#include "obs/percentiles.hpp"
#include "workload/synthetic.hpp"

namespace latte {

MatrixF SynthesizeRequestEmbedding(std::uint64_t base_seed,
                                   std::size_t ordinal, std::size_t length,
                                   std::size_t hidden) {
  // Distinct, well-mixed seed per Push() ordinal so request embeddings are
  // a function of request identity alone (rejections and batch composition
  // do not disturb them).
  Rng rng(base_seed +
          0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(ordinal) + 1));
  return MakeInputEmbedding(rng, length, hidden);
}

MatrixF SynthesizeIdentityEmbedding(std::uint64_t base_seed, std::uint64_t id,
                                    std::size_t length, std::size_t hidden) {
  // A different mixing shape than the ordinal path (the id is folded
  // through MixHash64 first), so an id can never collide with an ordinal
  // seed and produce accidentally-shared content across the two schemes.
  Rng rng(base_seed ^ MixHash64(id ^ 0x5851f42d4c957f2dULL));
  return MakeInputEmbedding(rng, length, hidden);
}

ConfigIssues CheckServingEngineConfig(const ServingEngineConfig& cfg) {
  ConfigIssues issues;
  MergePrefixed(issues, "former", CheckBatchFormerConfig(cfg.former));
  if (cfg.workers == 0) {
    AddIssue(issues, "workers",
             "must be >= 1 (no backend slot to account against)");
  }
  if (cfg.execute && cfg.inference.mode != InferenceMode::kDenseFloat &&
      cfg.inference.mode != InferenceMode::kDenseInt8 &&
      cfg.inference.sparse.top_k == 0) {
    AddIssue(issues, "inference.sparse.top_k",
             "must be >= 1 for the sparse execution modes (0 selects no "
             "attention candidates)");
  }
  if (cfg.cache.enabled) {
    MergePrefixed(issues, "cache", CheckResultCacheConfig(cfg.cache));
  }
  if (cfg.backend == BackendMode::kSharded) {
    MergePrefixed(issues, "shard", CheckShardServiceConfig(cfg.shard));
  }
  if (cfg.trace.enabled) {
    MergePrefixed(issues, "trace", obs::CheckTraceConfig(cfg.trace));
  }
  if (cfg.adapt.enabled) {
    MergePrefixed(issues, "adapt", CheckAdaptiveServingConfig(cfg.adapt));
    if (cfg.cache.enabled) {
      AddIssue(issues, "adapt.enabled",
               "cannot combine the adaptive layer with the result cache "
               "(a cached result's tier is unknowable; pick one)");
    }
    if (!cfg.adapt.tiers.empty() &&
        cfg.inference.mode != InferenceMode::kDenseFloat &&
        cfg.inference.mode != InferenceMode::kDenseInt8 &&
        cfg.adapt.tiers[0].top_k != cfg.inference.sparse.top_k) {
      AddIssue(issues, "adapt.tiers[0].top_k",
               "must equal inference.sparse.top_k (" +
                   std::to_string(cfg.inference.sparse.top_k) +
                   ") -- tier 0 is the full-quality service, and escalated "
                   "re-runs must be bit-exact against it");
    }
    if (!cfg.tier_services.empty() &&
        cfg.tier_services.size() != cfg.adapt.tiers.size()) {
      AddIssue(issues, "tier_services",
               "must be empty (uniform pricing) or name one service model "
               "per adapt tier (got " +
                   std::to_string(cfg.tier_services.size()) + " for " +
                   std::to_string(cfg.adapt.tiers.size()) + " tiers)");
    }
  }
  return issues;
}

void ValidateServingEngineConfig(const ServingEngineConfig& cfg) {
  ThrowOnIssues("ServingEngineConfig", CheckServingEngineConfig(cfg));
}

ServingEngine::ServingEngine(const ModelInstance& model,
                             const ServingEngineConfig& cfg,
                             std::shared_ptr<ResultCache> shared_cache)
    : model_(model), cfg_(cfg), runner_(cfg.threads) {
  ValidateServingEngineConfig(cfg_);
  if (!cfg_.service) {
    // ~0.5 M tokens/s plus a fixed dispatch cost: a plausible host-side
    // default; build a kAccelerator ServiceModelSpec to account like the
    // simulator.
    cfg_.service = TokenLinearServiceModel(2e-6, 2e-4);
  }
  if (cfg_.adapt.enabled) {
    // Resolve the per-tier pricing before any sharded wrapping so every
    // tier is wrapped exactly once below.
    tier_services_ = cfg_.tier_services.empty()
                         ? std::vector<BatchServiceModel>(
                               cfg_.adapt.tiers.size(), cfg_.service)
                         : cfg_.tier_services;
  }
  if (cfg_.backend == BackendMode::kSharded) {
    // Each worker slot is a gang: wrap whatever service model was chosen
    // (or defaulted) with the tensor-parallel compute share and the
    // interconnect collectives.  Throws if the plan does not fit the
    // model's encoder shape.
    cfg_.service =
        MakeShardedServiceModel(cfg_.service, model.config(), cfg_.shard);
    for (BatchServiceModel& tier_service : tier_services_) {
      tier_service = MakeShardedServiceModel(std::move(tier_service),
                                             model.config(), cfg_.shard);
    }
    shard_comm_ = MakeShardCommModel(model.config(), cfg_.shard);
  }
  if (cfg_.adapt.enabled) {
    controller_.emplace(cfg_.adapt);
    open_tiers_.resize(cfg_.adapt.tiers.size());
    tier_requests_.assign(cfg_.adapt.tiers.size(), 0);
    tier_batches_.assign(cfg_.adapt.tiers.size(), 0);
    tier_escalated_.assign(cfg_.adapt.tiers.size(), 0);
  }
  if (shared_cache != nullptr) {
    if (!cfg_.cache.enabled) {
      throw std::invalid_argument(
          "ServingEngine: a shared cache store was supplied but cfg.cache "
          "is disabled (enable it to define the key policy and hit "
          "latency)");
    }
    cache_ = std::move(shared_cache);
    cache_shared_ = true;
  } else if (cfg_.cache.enabled) {
    cache_ = std::make_shared<ResultCache>(cfg_.cache);
  }
  worker_free_.assign(cfg_.workers, 0.0);
  if (cfg_.trace.enabled) {
    owned_tracer_ = std::make_unique<obs::Tracer>(cfg_.trace);
    AttachTracer(owned_tracer_.get(), /*track_base=*/0);
  }
}

void ServingEngine::AttachTracer(obs::Tracer* tracer, std::uint32_t track_base,
                                 std::string_view label_prefix) {
  if (owned_tracer_ != nullptr && tracer != owned_tracer_.get()) {
    owned_tracer_.reset();
  }
  tracer_ = tracer;
  track_base_ = track_base;
  if (controller_) controller_->SetTracer(nullptr, 0);
  if (tracer_ == nullptr) return;
  const std::string prefix(label_prefix);
  for (std::size_t w = 0; w < cfg_.workers; ++w) {
    tracer_->RegisterTrack(track_base_ + static_cast<std::uint32_t>(w),
                           prefix + "worker " + std::to_string(w));
  }
  tracer_->RegisterTrack(control_track(), prefix + "control");
  if (controller_) controller_->SetTracer(tracer_, control_track());
}

void ServingEngine::RecordInstant(obs::SpanKind kind, double t,
                                  std::uint64_t id, std::int64_t arg) {
  RecordSpan(kind, t, t, id, arg, control_track());
}

void ServingEngine::RecordSpan(obs::SpanKind kind, double begin_s,
                               double end_s, std::uint64_t id,
                               std::int64_t arg, std::uint32_t track) {
  obs::TraceEvent e;
  e.kind = kind;
  e.begin_s = begin_s;
  e.end_s = end_s;
  e.wall_s = tracer_->WallStamp();
  e.id = id;
  e.arg = arg;
  e.track = track;
  tracer_->Record(e);
}

void ServingEngine::EmitScheduleSpans(const DispatchSchedule& sched) {
  const bool adaptive = controller_.has_value();
  for (std::size_t b = 0; b < sealed_.size(); ++b) {
    const FormedBatch& batch = sealed_[b];
    const double launch = sched.launch_s[b];
    const double done = sched.done_s[b];
    for (std::size_t idx : batch.indices) {
      RecordSpan(obs::SpanKind::kQueueWait, admitted_[idx].arrival_s, launch,
                 offered_ids_[idx], static_cast<std::int64_t>(b),
                 control_track());
    }
    // The batch itself lands on the worker slot the earliest-free
    // recurrence picked -- the same attribution at any thread count.
    const std::int64_t arg =
        adaptive ? static_cast<std::int64_t>(batch.tier)
                 : static_cast<std::int64_t>(batch.indices.size());
    const std::uint32_t worker_track =
        track_base_ + static_cast<std::uint32_t>(sched.worker_of[b]);
    RecordSpan(obs::SpanKind::kService, launch, done, b, arg, worker_track);
    if (shard_comm_) {
      // Attribute the gang's interconnect tail: the sharded price is
      // base * share + comm, so the collectives occupy the last `comm`
      // seconds of the service span (clamped against rounding when the
      // compute share is negligible).  Zero for batches the min-length
      // guard left unsharded.
      const double comm_s = shard_comm_(BatchLengths(admitted_, batch));
      if (comm_s > 0) {
        RecordSpan(obs::SpanKind::kStage, std::max(launch, done - comm_s),
                   done, b, static_cast<std::int64_t>(cfg_.shard.degree),
                   worker_track);
      }
    }
    for (std::size_t idx : batch.indices) {
      if (adaptive && superseded_[idx] != 0) continue;
      RecordInstant(obs::SpanKind::kComplete, done, offered_ids_[idx],
                    static_cast<std::int64_t>(b));
    }
  }
}

bool ServingEngine::Push(const TimedRequest& request,
                         std::optional<MatrixF> input) {
  if (!input.has_value()) return PushImpl(request, MatrixF{});
  if (input->rows() != request.length ||
      input->cols() != model_.config().encoder.hidden) {
    throw std::invalid_argument(
        "ServingEngine::Push: input must be length x hidden (" +
        std::to_string(request.length) + " x " +
        std::to_string(model_.config().encoder.hidden) + "), got " +
        std::to_string(input->rows()) + " x " +
        std::to_string(input->cols()));
  }
  return PushImpl(request, std::move(*input));
}

CacheKey ServingEngine::KeyFor(const TimedRequest& request,
                               const MatrixF& input) const {
  switch (cfg_.cache.key_policy) {
    case CacheKeyPolicy::kRequestId:
      return request.id == kAnonymousId
                 ? kNullCacheKey
                 : RequestIdKey(request.id, request.length);
    case CacheKeyPolicy::kEmbeddingHash:
      // Content-address the tensor when it is in hand; id-carrying
      // requests without one are keyed by identity (their content is a
      // pure function of it); anonymous tensor-less requests have no
      // derivable content and bypass the cache.
      if (!input.empty()) return EmbeddingKey(input, request.length);
      return request.id == kAnonymousId
                 ? kNullCacheKey
                 : RequestIdKey(request.id, request.length);
  }
  return kNullCacheKey;
}

bool ServingEngine::PushImpl(const TimedRequest& request, MatrixF input) {
  if (admission_.offered > 0 && request.arrival_s < last_arrival_) {
    throw std::invalid_argument(
        "ServingEngine::Push: arrivals must be non-decreasing (got " +
        std::to_string(request.arrival_s) + " after " +
        std::to_string(last_arrival_) + ")");
  }
  const std::size_t ordinal = admission_.offered++;
  last_arrival_ = request.arrival_s;

  AdvanceTo(request.arrival_s);

  if (controller_) {
    return PushAdaptive(request, std::move(input), ordinal);
  }

  CacheKey key = kNullCacheKey;
  if (cache_ != nullptr) {
    key = KeyFor(request, input);
    if (key == kNullCacheKey) {
      ++cache_stats_.bypassed;
    } else {
      ++cache_stats_.lookups;
      const double now = cache_epoch_ + request.arrival_s;
      const CacheEntry* entry = cache_->Lookup(key, now);
      // An entry still owing its tensor to *another* engine (shared
      // store, cross-replica) cannot serve a functional hit: the value
      // does not exist anywhere yet.  Accounting-only mode has no
      // tensors to hand over, so the entry's visibility alone suffices.
      const bool usable =
          entry != nullptr && !(cfg_.execute && entry->pending() &&
                                entry->producer_owner != this);
      if (usable) {
        ++cache_stats_.hits;
        CacheServedRequest served;
        served.offered_id = ordinal;
        served.arrival_s = request.arrival_s;
        served.done_s = request.arrival_s + cfg_.cache.hit_latency_s;
        served.length = request.length;
        if (entry->pending()) {
          if (entry->producer_owner == this) {
            served.leader_admitted = entry->pending_producer;
          }
        } else if (cfg_.execute) {
          served.output = entry->value;  // copy now: eviction-safe
        }
        last_completion_ = std::max(last_completion_, served.done_s);
        if (tracer_ != nullptr) {
          RecordSpan(obs::SpanKind::kCacheHit, served.arrival_s, served.done_s,
                     ordinal, static_cast<std::int64_t>(request.length),
                     control_track());
        }
        cache_served_.push_back(std::move(served));
        return true;
      }
      if (inflight_.Attach(key, ordinal, request.arrival_s, request.length)) {
        ++cache_stats_.coalesced;
        return true;
      }
      ++cache_stats_.misses;
    }
  }

  const std::size_t waiting = admitted_.size() - launched_;
  if (cfg_.queue_capacity > 0 && waiting >= cfg_.queue_capacity) {
    ++admission_.rejected;
    if (tracer_ != nullptr) {
      RecordInstant(obs::SpanKind::kReject, request.arrival_s, ordinal,
                    static_cast<std::int64_t>(waiting));
    }
    return false;
  }
  ++admission_.accepted;
  admission_.peak_queue = std::max(admission_.peak_queue, waiting + 1);
  waiting_tokens_ += request.length;
  if (tracer_ != nullptr) {
    RecordInstant(obs::SpanKind::kAdmit, request.arrival_s, ordinal,
                  static_cast<std::int64_t>(request.length));
  }

  // Forming, mirroring FormBatches: a token-budget overflow seals the open
  // batch at this arrival and the request starts the next batch; the first
  // member of a batch is always admitted, however long.
  if (open_active_ && cfg_.former.max_tokens > 0 &&
      open_tokens_ + request.length > cfg_.former.max_tokens) {
    SealOpen(BatchSeal::kTokenBudget, request.arrival_s);
  }
  if (!open_active_) {
    open_active_ = true;
    open_start_ = admitted_.size();
    open_s_ = request.arrival_s;
    open_tokens_ = 0;
  }
  admitted_.push_back(request);
  inputs_.push_back(std::move(input));
  offered_ids_.push_back(ordinal);
  if (cache_ != nullptr) {
    admitted_keys_.push_back(key);
    if (key != kNullCacheKey) inflight_.Lead(key);
  }
  open_tokens_ += request.length;
  if (admitted_.size() - open_start_ >= cfg_.former.max_batch) {
    SealOpen(BatchSeal::kCapacity, request.arrival_s);
  }
  return true;
}

bool ServingEngine::PushAdaptive(const TimedRequest& request, MatrixF input,
                                 std::size_t ordinal) {
  const auto& tiers = cfg_.adapt.tiers;
  // The controller proposes its current level; the accuracy budget caps
  // it: degrade only while the planned stream mean stays at the floor.
  std::size_t tier = std::min(controller_->level(), tiers.size() - 1);
  while (tier > 0 &&
         planned_acc_sum_ + tiers[tier].accuracy <
             cfg_.adapt.accuracy_floor *
                 static_cast<double>(planned_count_ + 1)) {
    --tier;
  }
  const std::size_t waiting = admitted_.size() - launched_;
  if (cfg_.queue_capacity > 0 && waiting >= cfg_.queue_capacity) {
    ++admission_.rejected;  // shed: the ladder's last resort
    if (tracer_ != nullptr) {
      RecordInstant(obs::SpanKind::kReject, request.arrival_s, ordinal,
                    static_cast<std::int64_t>(waiting));
    }
    return false;
  }
  bool escalate = false;
  if (tiers[tier].escalate) {
    // Probe on the exact embedding Drain() would execute (provided, or
    // synthesized from request identity), so accounting-only and execute
    // runs of the same stream make identical escalation decisions.
    const std::size_t hidden = model_.config().encoder.hidden;
    MatrixF synth;
    const MatrixF* x = &input;
    if (input.empty()) {
      synth = request.id != kAnonymousId
                  ? SynthesizeIdentityEmbedding(cfg_.embed_seed, request.id,
                                                request.length, hidden)
                  : SynthesizeRequestEmbedding(cfg_.embed_seed, ordinal,
                                               request.length, hidden);
      x = &synth;
    }
    const EscalationProbe probe =
        ProbeSelectorMargin(*x, model_, tiers[tier].top_k,
                            cfg_.adapt.escalate_bits, cfg_.adapt.escalate_rows);
    escalate = ShouldEscalate(probe, cfg_.adapt.escalate_margin);
  }
  ++admission_.accepted;
  admission_.peak_queue = std::max(admission_.peak_queue, waiting + 1);
  planned_acc_sum_ += tiers[tier].accuracy;
  ++planned_count_;
  AdmitToTier(tier, request, std::move(input), ordinal, request.arrival_s,
              escalate);
  return true;
}

void ServingEngine::AdmitToTier(std::size_t tier, const TimedRequest& request,
                                MatrixF input, std::size_t ordinal,
                                double root_arrival, bool escalate) {
  OpenTier& ot = open_tiers_[tier];
  // Forming mirrors the single-tier path, per tier: token-budget overflow
  // seals at this admission and the request starts the tier's next batch.
  if (ot.active && cfg_.former.max_tokens > 0 &&
      ot.tokens + request.length > cfg_.former.max_tokens) {
    SealOpenTier(tier, BatchSeal::kTokenBudget, request.arrival_s);
  }
  if (!ot.active) {
    ot.active = true;
    ot.open_s = request.arrival_s;
    ot.tokens = 0;
    ot.members.clear();
  }
  admitted_.push_back(request);
  inputs_.push_back(std::move(input));
  offered_ids_.push_back(ordinal);
  tier_of_.push_back(tier);
  root_arrival_.push_back(root_arrival);
  superseded_.push_back(0);
  escalate_flag_.push_back(escalate ? 1 : 0);
  waiting_tokens_ += request.length;
  if (tracer_ != nullptr) {
    RecordInstant(obs::SpanKind::kAdmit, request.arrival_s, ordinal,
                  static_cast<std::int64_t>(tier));
  }
  ot.members.push_back(admitted_.size() - 1);
  ot.tokens += request.length;
  if (ot.members.size() >= cfg_.former.max_batch) {
    SealOpenTier(tier, BatchSeal::kCapacity, request.arrival_s);
  }
}

void ServingEngine::SealOpenTier(std::size_t tier, BatchSeal seal,
                                 double ready_s) {
  OpenTier& ot = open_tiers_[tier];
  FormedBatch b;
  b.open_s = ot.open_s;
  b.ready_s = ready_s;
  b.tokens = ot.tokens;
  b.seal = seal;
  b.tier = tier;
  b.indices = std::move(ot.members);
  if (cfg_.former.sort_by_length) {
    std::stable_sort(b.indices.begin(), b.indices.end(),
                     [this](std::size_t a, std::size_t c) {
                       return admitted_[a].length > admitted_[c].length;
                     });
  }
  if (tracer_ != nullptr) {
    RecordSpan(obs::SpanKind::kForm, b.open_s, b.ready_s, sealed_.size(),
               static_cast<std::int64_t>(seal), control_track());
  }
  sealed_.push_back(std::move(b));
  ++tier_batches_[tier];
  ot.active = false;
  ot.members = {};
}

void ServingEngine::RunAdaptiveEvents(double now, bool drain) {
  const double kInf = std::numeric_limits<double>::infinity();
  while (true) {
    // Candidate events, each with its earliest instance.
    auto complete_it = std::min_element(completions_.begin(),
                                        completions_.end());
    const double t_complete =
        complete_it == completions_.end() ? kInf : complete_it->first;
    double t_seal = kInf;
    std::size_t seal_tier = 0;
    for (std::size_t t = 0; t < open_tiers_.size(); ++t) {
      if (!open_tiers_[t].active) continue;
      const double due = open_tiers_[t].open_s + cfg_.former.timeout_s;
      if (due < t_seal) {
        t_seal = due;
        seal_tier = t;
      }
    }
    double t_launch = kInf;
    if (next_launch_ < sealed_.size()) {
      const double free =
          *std::min_element(worker_free_.begin(), worker_free_.end());
      t_launch = std::max(free, sealed_[next_launch_].ready_s);
    }
    const double t_epoch = controller_->next_epoch_s();

    const double t_real = std::min(t_complete, std::min(t_seal, t_launch));
    const double t_next = std::min(t_real, t_epoch);
    if (drain) {
      // Quiescence: once no completion/seal/launch remains, only epoch
      // boundaries are left and the stream is over.
      if (t_real == kInf) break;
    } else if (t_next > now) {
      break;
    }

    // One event per iteration, fixed tie-break: completions first (an
    // escalated re-run must be able to join a batch sealing at the same
    // instant), then seals (lowest tier first), launches, epochs.
    if (t_complete == t_next) {
      const std::size_t ordinal = complete_it->second;
      completions_.erase(complete_it);
      // Copy out: escalation re-injection below grows sealed_/admitted_.
      const std::size_t b_tier = sealed_[ordinal].tier;
      const std::size_t b_tokens = sealed_[ordinal].tokens;
      const std::vector<std::size_t> b_indices = sealed_[ordinal].indices;
      in_service_tokens_ -= b_tokens;
      const bool escalating_tier = cfg_.adapt.tiers[b_tier].escalate;
      for (std::size_t idx : b_indices) {
        if (escalating_tier && escalate_flag_[idx] != 0) {
          // The cheap first pass was too uncertain: supersede it and
          // re-run at tier 0, arriving at this completion.  Bypasses the
          // bounded queue -- the request was already admitted once.
          superseded_[idx] = 1;
          planned_acc_sum_ +=
              cfg_.adapt.tiers[0].accuracy - cfg_.adapt.tiers[b_tier].accuracy;
          ++tier_escalated_[b_tier];
          if (tracer_ != nullptr) {
            RecordInstant(obs::SpanKind::kEscalate, t_complete,
                          offered_ids_[idx],
                          static_cast<std::int64_t>(b_tier));
          }
          TimedRequest rerun = admitted_[idx];
          rerun.arrival_s = t_complete;
          AdmitToTier(0, rerun, MatrixF(inputs_[idx]), offered_ids_[idx],
                      root_arrival_[idx], false);
        } else {
          controller_->RecordLatency(t_complete - root_arrival_[idx]);
          ++tier_requests_[b_tier];
        }
      }
    } else if (t_seal == t_next) {
      SealOpenTier(seal_tier, BatchSeal::kTimeout, t_seal);
    } else if (t_launch == t_next) {
      // FIFO over sealed order, earliest-free worker: the exact
      // recurrence ScheduleFormedBatches replays at Drain(), so the
      // incremental completions match the recomputed schedule bit for
      // bit.
      auto free_it =
          std::min_element(worker_free_.begin(), worker_free_.end());
      const FormedBatch& b = sealed_[next_launch_];
      const double done =
          t_launch + tier_services_[b.tier](BatchLengths(admitted_, b));
      *free_it = done;
      launched_ += b.indices.size();
      waiting_tokens_ -= b.tokens;
      in_service_tokens_ += b.tokens;
      completions_.push_back({done, next_launch_});
      ++next_launch_;
    } else {
      controller_->AdvanceEpoch(admitted_.size() - launched_);
    }
  }
}

void ServingEngine::AdvanceTo(double now) {
  if (controller_) {
    RunAdaptiveEvents(now, /*drain=*/false);
    return;
  }
  if (open_active_ && now > open_s_ + cfg_.former.timeout_s) {
    SealOpen(BatchSeal::kTimeout, open_s_ + cfg_.former.timeout_s);
  }
  while (next_launch_ < sealed_.size()) {
    auto free_it = std::min_element(worker_free_.begin(), worker_free_.end());
    const FormedBatch& b = sealed_[next_launch_];
    const double launch = std::max(*free_it, b.ready_s);
    if (launch > now) break;
    const double done = launch + cfg_.service(BatchLengths(admitted_, b));
    *free_it = done;
    launched_ += b.indices.size();
    waiting_tokens_ -= b.tokens;
    in_service_tokens_ += b.tokens;
    in_flight_.push_back({done, b.tokens});
    if (cache_ != nullptr) pending_done_.push_back({done, next_launch_});
    ++next_launch_;
  }
  // Retire batches whose virtual completion has passed, so
  // outstanding_tokens() reflects load still on this replica at `now`.
  std::size_t kept = 0;
  for (const auto& [done_s, tokens] : in_flight_) {
    if (done_s <= now) {
      in_service_tokens_ -= tokens;
    } else {
      in_flight_[kept++] = {done_s, tokens};
    }
  }
  in_flight_.resize(kept);
  if (cache_ != nullptr) ProcessCacheCompletions(now);
}

void ServingEngine::ProcessCacheCompletions(double now) {
  if (pending_done_.empty()) return;
  // Publish due batches in (completion, seal ordinal) order: a shared
  // store must see one deterministic insertion sequence regardless of how
  // launches interleaved across workers.
  std::sort(pending_done_.begin(), pending_done_.end());
  std::size_t processed = 0;
  for (const auto& [done_s, ordinal] : pending_done_) {
    if (done_s > now) break;
    for (std::size_t idx : sealed_[ordinal].indices) {
      CompleteAdmitted(idx, done_s);
    }
    ++processed;
  }
  pending_done_.erase(pending_done_.begin(),
                      pending_done_.begin() +
                          static_cast<std::ptrdiff_t>(processed));
}

void ServingEngine::CompleteAdmitted(std::size_t idx, double done_s) {
  last_completion_ = std::max(last_completion_, done_s);
  const CacheKey key = admitted_keys_[idx];
  if (key == kNullCacheKey) return;
  const std::size_t hidden = model_.config().encoder.hidden;
  cache_->Insert(key,
                 CacheEntryBytes(admitted_[idx].length, hidden,
                                 cache_->config()),
                 cache_epoch_ + done_s, idx, this);
  for (const CoalescedFollower& f : inflight_.Complete(key)) {
    if (tracer_ != nullptr) {
      RecordSpan(obs::SpanKind::kCacheCoalesce, f.arrival_s, done_s,
                 f.offered_id, static_cast<std::int64_t>(idx),
                 control_track());
    }
    CacheServedRequest served;
    served.offered_id = f.offered_id;
    served.arrival_s = f.arrival_s;
    served.done_s = done_s;
    served.coalesced = true;
    served.length = f.length;
    served.leader_admitted = idx;
    cache_served_.push_back(std::move(served));
  }
}

bool ServingEngine::WouldHitCache(const TimedRequest& request,
                                  double now) const {
  if (cache_ == nullptr) return false;
  const CacheKey key = KeyFor(request, MatrixF{});
  if (key == kNullCacheKey) return false;
  const CacheEntry* entry = cache_->Peek(key, cache_epoch_ + now);
  if (entry == nullptr) return false;
  return !(cfg_.execute && entry->pending() &&
           entry->producer_owner != this);
}

bool ServingEngine::WouldCoalesce(const TimedRequest& request) const {
  if (cache_ == nullptr) return false;
  const CacheKey key = KeyFor(request, MatrixF{});
  return key != kNullCacheKey && inflight_.pending(key);
}

void ServingEngine::InvalidateOwnedCache() {
  if (cache_ != nullptr && !cache_shared_) cache_->Clear();
}

void ServingEngine::AlignCacheEpoch(double epoch) {
  cache_epoch_ = std::max(cache_epoch_, epoch);
}

void ServingEngine::SealOpen(BatchSeal seal, double ready_s) {
  FormedBatch b;
  b.open_s = open_s_;
  b.ready_s = ready_s;
  b.tokens = open_tokens_;
  b.seal = seal;
  b.indices.resize(admitted_.size() - open_start_);
  for (std::size_t i = 0; i < b.indices.size(); ++i) {
    b.indices[i] = open_start_ + i;
  }
  if (cfg_.former.sort_by_length) {
    std::stable_sort(b.indices.begin(), b.indices.end(),
                     [this](std::size_t a, std::size_t c) {
                       return admitted_[a].length > admitted_[c].length;
                     });
  }
  if (tracer_ != nullptr) {
    RecordSpan(obs::SpanKind::kForm, b.open_s, b.ready_s, sealed_.size(),
               static_cast<std::int64_t>(seal), control_track());
  }
  sealed_.push_back(std::move(b));
  open_active_ = false;
}

ServingResult ServingEngine::DrainAdaptive() {
  // Run the stream to quiescence: trailing opens time out, launches
  // complete, escalations re-inject and settle.
  RunAdaptiveEvents(std::numeric_limits<double>::infinity(), /*drain=*/true);

  ServingResult result;
  result.schedule =
      ScheduleFormedBatches(admitted_, sealed_, cfg_.workers, tier_services_);
  result.admission = admission_;
  if (tracer_ != nullptr) EmitScheduleSpans(result.schedule);

  // The recomputed report must not count superseded first passes (their
  // re-runs carry the request), and an escalated request's latency runs
  // from its *original* arrival to its re-run's completion.  Rebuild the
  // pooled numbers from root arrivals.
  obs::LatencyPool pool;
  pool.latencies.reserve(admitted_.size());
  double busy_s = 0;
  for (std::size_t b = 0; b < sealed_.size(); ++b) {
    const double done = result.schedule.done_s[b];
    for (std::size_t idx : sealed_[b].indices) {
      if (superseded_[idx] != 0) continue;
      pool.Add(root_arrival_[idx], done);
    }
    pool.ExtendSpan(done);
    busy_s += result.schedule.service_s[b];  // first passes burn real time
  }
  result.schedule.report = BuildServingReport(pool.latencies, sealed_.size(),
                                              busy_s, pool.span(),
                                              cfg_.workers);
  result.schedule.report.mean_accuracy =
      planned_count_ == 0
          ? 1.0
          : planned_acc_sum_ / static_cast<double>(planned_count_);
  result.schedule.report.tiers.resize(cfg_.adapt.tiers.size());
  for (std::size_t t = 0; t < cfg_.adapt.tiers.size(); ++t) {
    TierUsage& usage = result.schedule.report.tiers[t];
    usage.top_k = cfg_.adapt.tiers[t].top_k;
    usage.requests = tier_requests_[t];
    usage.batches = tier_batches_[t];
    usage.escalated = tier_escalated_[t];
    usage.accuracy = cfg_.adapt.tiers[t].accuracy;
  }

  if (cfg_.execute) {
    const std::size_t hidden = model_.config().encoder.hidden;
    for (std::size_t i = 0; i < admitted_.size(); ++i) {
      if (inputs_[i].empty()) {
        inputs_[i] =
            admitted_[i].id != kAnonymousId
                ? SynthesizeIdentityEmbedding(cfg_.embed_seed, admitted_[i].id,
                                              admitted_[i].length, hidden)
                : SynthesizeRequestEmbedding(cfg_.embed_seed, offered_ids_[i],
                                             admitted_[i].length, hidden);
      }
    }
    // Per-batch execution at the batch's tier: only the sparse top_k
    // differs from the base inference config, and tier 0's equals it --
    // so an escalated re-run is bit-exact against a full-model engine
    // serving the same request.
    const auto wall0 = std::chrono::steady_clock::now();
    result.outputs.resize(admitted_.size());
    for (const FormedBatch& b : sealed_) {
      InferenceConfig tier_cfg = cfg_.inference;
      tier_cfg.sparse.top_k = cfg_.adapt.tiers[b.tier].top_k;
      std::vector<MatrixF> xs;
      xs.reserve(b.indices.size());
      for (std::size_t idx : b.indices) xs.push_back(std::move(inputs_[idx]));
      auto ys = model_.ForwardBatch(xs, tier_cfg, runner_);
      for (std::size_t i = 0; i < b.indices.size(); ++i) {
        result.outputs[b.indices[i]] = std::move(ys[i]);
      }
    }
    result.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
            .count();
  }

  result.request_tiers = std::move(tier_of_);
  result.superseded = std::move(superseded_);
  result.batches = std::move(sealed_);
  result.offered_ids = std::move(offered_ids_);
  ResetStream();
  return result;
}

ServingResult ServingEngine::Drain() {
  if (controller_) return DrainAdaptive();
  if (open_active_) {
    // End of stream: a streaming former cannot know no more requests are
    // coming, so the trailing batch waits out its timer.
    SealOpen(BatchSeal::kTimeout, open_s_ + cfg_.former.timeout_s);
  }

  ServingResult result;
  result.schedule =
      ScheduleFormedBatches(admitted_, sealed_, cfg_.workers, cfg_.service);
  result.admission = admission_;
  if (tracer_ != nullptr) EmitScheduleSpans(result.schedule);

  if (cache_ != nullptr) {
    // Publish every batch that had not completed by the last arrival.
    // The schedule's completion times are bit-identical to the ones
    // AdvanceTo computed for already-published batches (same earliest-
    // free recurrence over the same sealed order).
    for (std::size_t b = next_launch_; b < sealed_.size(); ++b) {
      pending_done_.push_back({result.schedule.done_s[b], b});
    }
    ProcessCacheCompletions(std::numeric_limits<double>::infinity());
  }

  if (cfg_.execute) {
    // Synthesize embeddings for requests pushed without one; identity is
    // the content id when the request carries one (so repeats are
    // byte-identical) and the Push() ordinal otherwise, so outputs do
    // not depend on batching, rejections or cache outcomes.
    const std::size_t hidden = model_.config().encoder.hidden;
    for (std::size_t i = 0; i < admitted_.size(); ++i) {
      if (inputs_[i].empty()) {
        inputs_[i] =
            admitted_[i].id != kAnonymousId
                ? SynthesizeIdentityEmbedding(cfg_.embed_seed, admitted_[i].id,
                                              admitted_[i].length, hidden)
                : SynthesizeRequestEmbedding(cfg_.embed_seed, offered_ids_[i],
                                             admitted_[i].length, hidden);
      }
    }

    // Execute every formed batch on the batched runtime.  Batches run in
    // dispatch order; per-sequence math is bit-identical to a sequential
    // Forward() loop at any thread count (the BatchRunner contract).
    const auto wall0 = std::chrono::steady_clock::now();
    result.outputs.resize(admitted_.size());
    for (const FormedBatch& b : sealed_) {
      std::vector<MatrixF> xs;
      xs.reserve(b.indices.size());
      for (std::size_t idx : b.indices) xs.push_back(std::move(inputs_[idx]));
      auto ys = model_.ForwardBatch(xs, cfg_.inference, runner_);
      for (std::size_t i = 0; i < b.indices.size(); ++i) {
        result.outputs[b.indices[i]] = std::move(ys[i]);
      }
    }
    result.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
            .count();
  }

  if (cache_ != nullptr) {
    if (cfg_.execute) {
      // Hand the computed tensors to the entries this stream produced
      // (entries evicted since their virtual insert are skipped), then
      // wire hit/follower outputs to their leaders'.
      for (const auto& [key, producer] : cache_->PendingOf(this)) {
        cache_->Materialize(key, result.outputs[producer]);
      }
      for (CacheServedRequest& served : cache_served_) {
        if (served.leader_admitted != CacheServedRequest::npos()) {
          served.output = result.outputs[served.leader_admitted];
        }
      }
    }

    // Pooled report: admitted requests take their batch's completion,
    // cache-served requests their own virtual completion, so p99 and
    // throughput reflect what the caller experienced end to end.
    obs::LatencyPool pool;
    pool.latencies.reserve(admitted_.size() + cache_served_.size());
    double busy_s = 0;
    for (std::size_t b = 0; b < sealed_.size(); ++b) {
      const double done = result.schedule.done_s[b];
      for (std::size_t idx : sealed_[b].indices) {
        pool.Add(admitted_[idx].arrival_s, done);
      }
      pool.ExtendSpan(done);
      busy_s += result.schedule.service_s[b];
    }
    for (const CacheServedRequest& served : cache_served_) {
      pool.Add(served.arrival_s, served.done_s);
    }
    result.schedule.report = BuildServingReport(pool.latencies, sealed_.size(),
                                                busy_s, pool.span(),
                                                cfg_.workers);

    result.cache = cache_stats_;
    result.cache.store = cache_->stats();
    result.cache_served = std::move(cache_served_);

    // The cache clock continues across streams: entries age as if the
    // next trace were played back to back with this one.
    cache_epoch_ += std::max(last_completion_, last_arrival_);
  }

  result.batches = std::move(sealed_);
  result.offered_ids = std::move(offered_ids_);
  ResetStream();
  return result;
}

ServingResult ServingEngine::Replay(const std::vector<TimedRequest>& trace) {
  for (const TimedRequest& r : trace) Push(r);
  return Drain();
}

void ServingEngine::ResetStream() {
  admitted_.clear();
  inputs_.clear();
  offered_ids_.clear();
  sealed_.clear();
  open_active_ = false;
  open_start_ = 0;
  open_s_ = 0;
  open_tokens_ = 0;
  worker_free_.assign(cfg_.workers, 0.0);
  next_launch_ = 0;
  launched_ = 0;
  last_arrival_ = 0;
  admission_ = AdmissionStats{};
  waiting_tokens_ = 0;
  in_service_tokens_ = 0;
  in_flight_.clear();
  inflight_.Clear();
  cache_stats_ = CacheStats{};
  cache_served_.clear();
  admitted_keys_.clear();
  pending_done_.clear();
  last_completion_ = 0;
  if (controller_) {
    controller_->Reset();
    for (OpenTier& ot : open_tiers_) ot = OpenTier{};
    tier_of_.clear();
    root_arrival_.clear();
    superseded_.clear();
    escalate_flag_.clear();
    completions_.clear();
    planned_acc_sum_ = 0;
    planned_count_ = 0;
    tier_requests_.assign(cfg_.adapt.tiers.size(), 0);
    tier_batches_.assign(cfg_.adapt.tiers.size(), 0);
    tier_escalated_.assign(cfg_.adapt.tiers.size(), 0);
  }
}

}  // namespace latte
