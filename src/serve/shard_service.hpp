#pragma once
// Virtual-time pricing of tensor-parallel gangs.
//
// MakeShardedServiceModel wraps any BatchServiceModel -- the token-linear
// default, the padded baseline, the accelerator twin -- with the cost of
// running each batch on a gang of N tensor-parallel shards instead of one
// worker: compute time shrinks to the gang's critical-path share of the
// ShardPlan's operator partition (imbalance and the serial LayerNorm
// remainder included), and every request pays the plan's per-layer
// collective traffic priced by the InterconnectModel.  The wrapped model
// is a pure function of batch lengths, like every service model, so
// accounting-only sweeps stay byte-deterministic at any thread count.
//
// This is where "sharding beats replication" becomes a measurable
// question: for short sequences the hop-latency floor of the collectives
// dominates the compute saving and a gang loses to N independent
// replicas; past a crossover length the 1/N compute term wins on p99.
// bench/bench_shard.cpp sweeps exactly this surface.

#include "config/check.hpp"
#include "model/config.hpp"
#include "sched/interconnect.hpp"
#include "sched/shard_plan.hpp"
#include "serve/dispatch.hpp"

namespace latte {

/// Shape of one tensor-parallel gang behind a backend slot.
struct ShardServiceConfig {
  std::size_t degree = 2;  ///< shards per gang (>= 2; 1 is just replication)
  /// FFN2 strategy priced into the plan.  Row-parallel (default here) is
  /// the cheaper wire shape: one all-reduce of the hidden-width output
  /// instead of all-gathering the 4x wider GELU activation.
  bool row_parallel_ffn2 = true;
  InterconnectConfig interconnect;  ///< link/hop/DRAM-spill cost knobs
  /// Batches whose longest request is shorter than this keep the base
  /// (unsharded) price: the gang runs them on one member rather than pay
  /// collectives that cannot amortize.  0 shards everything.
  std::size_t min_sharded_len = 0;
};

/// Names every illegal field (degree < 2, malformed interconnect --
/// nested issues carry an "interconnect." prefix); empty means legal.
ConfigIssues CheckShardServiceConfig(const ShardServiceConfig& cfg);

/// Throws std::invalid_argument naming the offending field (degree < 2,
/// malformed interconnect).
void ValidateShardServiceConfig(const ShardServiceConfig& cfg);

/// Wraps `base` with the gang cost under `cfg` for `model`'s encoder
/// stack:
///
///   sharded(lengths) = base(lengths) * MaxShare(plan, max_len)
///                    + sum_req layers * ShardLayerCommSeconds(len)
///
/// The compute share is evaluated at the batch's longest sequence (the
/// member that shapes the gang's critical path).  Batches below
/// `cfg.min_sharded_len` return base(lengths) unchanged.  Validates `cfg`
/// and builds the plan against `model.encoder` (throws on mismatch).
BatchServiceModel MakeShardedServiceModel(BatchServiceModel base,
                                          const ModelConfig& model,
                                          const ShardServiceConfig& cfg);

/// Just the collectives term of the gang price above:
///
///   comm(lengths) = sum_req layers * ShardLayerCommSeconds(len)
///
/// and 0 for batches MakeShardedServiceModel would leave unsharded
/// (empty, or below `cfg.min_sharded_len`).  The engine prices this
/// separately to attribute each sharded batch's interconnect tail as its
/// own trace sub-span (obs/analyze's shard_comm stage); by construction
/// sharded(lengths) == base(lengths) * share + comm(lengths), so the
/// sub-span always fits inside the service span.  Validates `cfg` and
/// builds the plan against `model.encoder` (throws on mismatch).
BatchServiceModel MakeShardCommModel(const ModelConfig& model,
                                     const ShardServiceConfig& cfg);

}  // namespace latte
