#include "serve/shard_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace latte {

ConfigIssues CheckShardServiceConfig(const ShardServiceConfig& cfg) {
  ConfigIssues issues;
  if (cfg.degree < 2) {
    AddIssue(issues, "degree",
             "must be >= 2 (a 1-shard gang is plain replication)");
  }
  MergePrefixed(issues, "interconnect",
                CheckInterconnectConfig(cfg.interconnect));
  return issues;
}

void ValidateShardServiceConfig(const ShardServiceConfig& cfg) {
  ThrowOnIssues("ShardServiceConfig", CheckShardServiceConfig(cfg));
}

BatchServiceModel MakeShardedServiceModel(BatchServiceModel base,
                                          const ModelConfig& model,
                                          const ShardServiceConfig& cfg) {
  ValidateShardServiceConfig(cfg);
  if (!base) {
    throw std::invalid_argument(
        "MakeShardedServiceModel: base service model is empty");
  }
  const EncoderConfig enc = model.encoder;
  const std::size_t layers = model.layers;
  const ShardPlan plan =
      MakeShardPlan(enc, {cfg.degree, cfg.row_parallel_ffn2});
  const InterconnectModel icn(cfg.interconnect);
  // The operator inventory prices the dense workflow: the conservative
  // shape (sparse attention only shrinks the head-parallel bucket).
  const OpGraph graph = OpGraph::Chain(EncoderOps(enc, AttentionMode::kDense));
  const std::size_t min_len = cfg.min_sharded_len;
  return [base = std::move(base), enc, layers, plan, icn, graph,
          min_len](const std::vector<std::size_t>& lengths) {
    const double base_s = base(lengths);
    if (lengths.empty()) return base_s;
    const std::size_t max_len =
        *std::max_element(lengths.begin(), lengths.end());
    if (min_len > 0 && max_len < min_len) return base_s;
    const double share =
        PartitionOpWeights(graph, plan, enc, static_cast<double>(max_len))
            .MaxShare();
    double comm_s = 0;
    for (const std::size_t len : lengths) {
      comm_s += static_cast<double>(layers) *
                ShardLayerCommSeconds(plan, enc, icn, len);
    }
    return base_s * share + comm_s;
  };
}

BatchServiceModel MakeShardCommModel(const ModelConfig& model,
                                     const ShardServiceConfig& cfg) {
  ValidateShardServiceConfig(cfg);
  const EncoderConfig enc = model.encoder;
  const std::size_t layers = model.layers;
  const ShardPlan plan =
      MakeShardPlan(enc, {cfg.degree, cfg.row_parallel_ffn2});
  const InterconnectModel icn(cfg.interconnect);
  const std::size_t min_len = cfg.min_sharded_len;
  return [enc, layers, plan, icn,
          min_len](const std::vector<std::size_t>& lengths) {
    if (lengths.empty()) return 0.0;
    const std::size_t max_len =
        *std::max_element(lengths.begin(), lengths.end());
    if (min_len > 0 && max_len < min_len) return 0.0;
    double comm_s = 0;
    for (const std::size_t len : lengths) {
      comm_s += static_cast<double>(layers) *
                ShardLayerCommSeconds(plan, enc, icn, len);
    }
    return comm_s;
  };
}

}  // namespace latte
