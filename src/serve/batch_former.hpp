#pragma once
// Length-aware continuous batch forming over a timestamped request stream.
//
// The former is *trace-driven*: batch membership depends only on arrival
// times, sequence lengths and the former's own knobs -- never on how fast
// the backend happens to run.  That is what makes serving deterministic
// (the same trace forms the same batches at any worker or thread count)
// and lets the FPGA performance twin and the functional runtime execute
// identical batches from a shared trace.
//
// A batch opens when its first request arrives and is sealed by whichever
// trigger fires first:
//   * capacity     -- the batch reached `max_batch` sequences;
//   * token budget -- the next request would push the batch past
//                     `max_tokens` (the request starts the next batch);
//   * timeout      -- no request arrived within `timeout_s` of the batch
//                     opening (also how the trailing batch is sealed: a
//                     streaming former cannot know the stream ended, so it
//                     waits out its timer).
// Sealing by capacity happens at the filling request's arrival; sealing by
// token budget at the overflowing request's arrival; sealing by timeout at
// the deadline itself.

#include <cstddef>
#include <vector>

#include "config/check.hpp"
#include "workload/arrivals.hpp"

namespace latte {

/// Why a batch was sealed.
enum class BatchSeal { kCapacity, kTokenBudget, kTimeout };

/// Batch-forming knobs.
struct BatchFormerConfig {
  std::size_t max_batch = 16;  ///< capacity flush threshold (sequences)
  std::size_t max_tokens = 0;  ///< token-budget flush threshold; 0 = none
  double timeout_s = 0.02;     ///< flush a partial batch after this wait
  /// Dispatch each batch's sequences in decreasing-length order (the
  /// paper's sorted micro-batching; membership is unaffected).
  bool sort_by_length = false;
};

/// Names every illegal field (zero capacity, negative or NaN timeout);
/// empty means legal.
ConfigIssues CheckBatchFormerConfig(const BatchFormerConfig& cfg);

/// Throws std::invalid_argument when the former configuration is malformed
/// (zero capacity, negative or NaN timeout).
void ValidateBatchFormerConfig(const BatchFormerConfig& cfg);

/// One formed batch: trace indices in dispatch order plus seal accounting.
struct FormedBatch {
  std::vector<std::size_t> indices;  ///< into the trace, dispatch order
  double open_s = 0;                 ///< first member's arrival
  double ready_s = 0;                ///< when the batch was sealed
  std::size_t tokens = 0;            ///< sum of member lengths
  BatchSeal seal = BatchSeal::kTimeout;
  /// Service tier the batch was formed under (adapt/controller ladder
  /// index).  0 -- the full model -- for every non-adaptive former.
  std::size_t tier = 0;
};

/// Forms batches over an arrival-ordered trace.  Every request lands in
/// exactly one batch; a request longer than `max_tokens` still forms its
/// own singleton batch (the budget never blocks the first member).
std::vector<FormedBatch> FormBatches(const std::vector<TimedRequest>& trace,
                                     const BatchFormerConfig& cfg);

/// Member lengths of a formed batch, in dispatch order.
std::vector<std::size_t> BatchLengths(const std::vector<TimedRequest>& trace,
                                      const FormedBatch& batch);

}  // namespace latte
