#include "tensor/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace latte {

float ScalingFactor(const MatrixF& m) {
  float mx = 0.f;
  for (float x : m.flat()) mx = std::max(mx, std::fabs(x));
  return mx;
}

int MaxCode(int bits) {
  if (bits == 1) return 1;
  return (1 << (bits - 1)) - 1;
}

std::int8_t QuantizeValue(float x, int bits, float M) {
  if (bits == 1) {
    // Sign function; hardware sign bit maps 0 to +1.
    return x < 0.f ? -1 : 1;
  }
  const int qmax = MaxCode(bits);
  if (M <= 0.f) return 0;
  const float scaled = (static_cast<float>(qmax) / M) * x;
  const long r = std::lround(scaled);
  return static_cast<std::int8_t>(std::clamp<long>(r, -qmax, qmax));
}

QuantizedMatrix QuantizeWithScale(const MatrixF& m, int bits, float M) {
  if (bits != 1 && bits != 4 && bits != 8) {
    throw std::invalid_argument("Quantize: bits must be 1, 4 or 8");
  }
  QuantizedMatrix q;
  q.bits = bits;
  q.codes = MatrixI8(m.rows(), m.cols());
  const int qmax = MaxCode(bits);
  q.scale = (M > 0.f) ? M / static_cast<float>(qmax) : 1.f;
  auto src = m.flat();
  auto dst = q.codes.flat();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = QuantizeValue(src[i], bits, M);
  }
  return q;
}

QuantizedMatrix Quantize(const MatrixF& m, int bits) {
  return QuantizeWithScale(m, bits, ScalingFactor(m));
}

MatrixF Dequantize(const QuantizedMatrix& q) {
  MatrixF m(q.codes.rows(), q.codes.cols());
  auto src = q.codes.flat();
  auto dst = m.flat();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<float>(src[i]) * q.scale;
  }
  return m;
}

}  // namespace latte
