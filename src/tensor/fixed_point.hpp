#pragma once
// Q-format saturating fixed-point arithmetic.
//
// The FPGA datapath computes in fixed point (Section 5: "8 bits fixed-point
// number multiply & accumulate consumes 1 DSP unit").  This header provides
// a compile-time Q(I.F) value type with saturating add/sub/mul, used to
// model datapath precision effects and asserted against float references in
// tests.  Storage is int32; I integer bits (excluding sign) and F
// fractional bits with I + F <= 30.

#include <algorithm>
#include <cstdint>
#include <cmath>

namespace latte {

/// Saturating Q(I.F) fixed-point number.
template <int IntBits, int FracBits>
class Fixed {
  static_assert(IntBits >= 0 && FracBits >= 0, "negative field width");
  static_assert(IntBits + FracBits <= 30, "must fit int32 with sign bit");

 public:
  static constexpr int kTotalBits = IntBits + FracBits;
  static constexpr std::int32_t kMaxRaw = (1 << kTotalBits) - 1;
  static constexpr std::int32_t kMinRaw = -(1 << kTotalBits);
  static constexpr float kScale = static_cast<float>(1 << FracBits);

  constexpr Fixed() = default;

  /// Converts from float with round-to-nearest and saturation.
  static Fixed FromFloat(float x) {
    const float scaled = x * kScale;
    const auto r = static_cast<std::int64_t>(std::llround(scaled));
    return FromRaw64(r);
  }

  /// Wraps a raw integer (saturating).
  static Fixed FromRaw(std::int32_t raw) {
    return FromRaw64(static_cast<std::int64_t>(raw));
  }

  float ToFloat() const { return static_cast<float>(raw_) / kScale; }
  std::int32_t raw() const { return raw_; }

  /// Smallest representable step.
  static constexpr float Epsilon() { return 1.0f / kScale; }
  /// Largest representable magnitude.
  static constexpr float Max() {
    return static_cast<float>(kMaxRaw) / kScale;
  }

  Fixed operator+(Fixed o) const {
    return FromRaw64(static_cast<std::int64_t>(raw_) + o.raw_);
  }
  Fixed operator-(Fixed o) const {
    return FromRaw64(static_cast<std::int64_t>(raw_) - o.raw_);
  }
  Fixed operator-() const {
    return FromRaw64(-static_cast<std::int64_t>(raw_));
  }
  /// Fixed-point multiply: (a * b) >> F with rounding and saturation.
  Fixed operator*(Fixed o) const {
    const std::int64_t wide =
        static_cast<std::int64_t>(raw_) * static_cast<std::int64_t>(o.raw_);
    const std::int64_t half = std::int64_t{1} << (FracBits - 1);
    const std::int64_t rounded =
        FracBits > 0 ? (wide + half) >> FracBits : wide;
    return FromRaw64(rounded);
  }

  // Value comparisons look at the numeric value only, never the sticky
  // saturation flag.
  bool operator==(const Fixed& o) const { return raw_ == o.raw_; }
  auto operator<=>(const Fixed& o) const { return raw_ <=> o.raw_; }

  /// True if the last construction/operation saturated.
  bool saturated() const { return saturated_; }

 private:
  static Fixed FromRaw64(std::int64_t raw) {
    Fixed f;
    if (raw > kMaxRaw) {
      f.raw_ = kMaxRaw;
      f.saturated_ = true;
    } else if (raw < kMinRaw) {
      f.raw_ = kMinRaw;
      f.saturated_ = true;
    } else {
      f.raw_ = static_cast<std::int32_t>(raw);
    }
    return f;
  }

  std::int32_t raw_ = 0;
  bool saturated_ = false;
};

/// The 8-bit datapath type (1 sign + 3 integer + 4 fractional bits).
using Fix8 = Fixed<3, 4>;
/// A 16-bit accumulator-ish type used between datapath stages.
using Fix16 = Fixed<7, 8>;
/// Wide accumulator for MAC chains.
using Fix24 = Fixed<15, 8>;

}  // namespace latte
