#pragma once
// Symmetric quantization as used by the paper (Section 3.2).
//
// The sparse-attention pre-selection quantizes full-precision Q and K into
// 1-bit (sign) or 4-bit integers:  x' = round((2^(b-1) - 1) / |M| * x)  where
// M is the scaling factor of the tensor (its maximum absolute value).  Both
// quantization and exp() are monotone, so quantized scores preserve the rank
// order of attention scores -- the property candidate selection relies on.

#include <cstdint>
#include <span>

#include "tensor/matrix.hpp"

namespace latte {

/// A quantized tensor: integer codes plus the scale that maps codes back to
/// (approximately) the original values: value ~= code * scale.
struct QuantizedMatrix {
  MatrixI8 codes;    ///< integer codes, each in [-(2^(b-1)-1), 2^(b-1)-1]
  float scale = 1.f; ///< dequantization step:  value ~= code * scale
  int bits = 8;      ///< bit width b (1, 4 or 8)
};

/// Returns the paper's scaling factor M for a tensor: max |x| over all
/// elements (0 for an empty/all-zero tensor).
float ScalingFactor(const MatrixF& m);

/// Symmetric b-bit quantization per Section 3.2:
///   codes = round((2^(b-1)-1) / M * x), clamped to the representable range.
/// For bits == 1 this degenerates to the sign function with codes in {-1,+1}
/// (zero maps to +1, matching sign-bit hardware).
/// Requires bits in {1, 4, 8}.
QuantizedMatrix Quantize(const MatrixF& m, int bits);

/// Quantizes with an externally supplied scaling factor M (used when Q and K
/// rows stream through hardware and M was computed over a larger tensor).
QuantizedMatrix QuantizeWithScale(const MatrixF& m, int bits, float M);

/// Reconstructs the float approximation codes * scale.
MatrixF Dequantize(const QuantizedMatrix& q);

/// Maximum representable code magnitude for a bit width: 2^(b-1)-1 (1 for b=1).
int MaxCode(int bits);

/// Quantizes a single value given scale factor M and bit width.
std::int8_t QuantizeValue(float x, int bits, float M);

}  // namespace latte
