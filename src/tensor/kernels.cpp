#include "tensor/kernels.hpp"

#include <algorithm>
#include <stdexcept>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace latte {
namespace {

// Register-tile geometry.  With AVX2+FMA the micro-kernel holds an MR x NR
// tile as MR x 2 ymm accumulators (12 of the 16 ymm registers), leaving
// room for the two B loads and the A broadcast.  The portable kernel keeps
// a 4 x 8 tile in eight named 128-bit vectors (GNU vector extensions, so
// they are register-allocated on any ISA gcc/clang target); other
// compilers fall back to a plain scalar tile.
#if defined(__AVX2__) && defined(__FMA__)
constexpr std::size_t kMr = 6;
constexpr std::size_t kNr = 16;
#else
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 8;
#endif

// K-tile: one packed B panel is kKc x kNr floats (16 KiB at kNr = 16),
// L1-resident across the whole row sweep of an M-block.  M-block: the A
// rows touched per panel sweep (kMc x kKc floats = 128 KiB), L2-resident.
constexpr std::size_t kKc = 256;
constexpr std::size_t kMc = 128;

// Packs the (kc x m) window of B starting at row `pc`, column `col0` into
// kNr-wide column panels: panel jp holds window columns
// [jp*kNr, jp*kNr + kNr), stored p-major so the micro-kernel streams it
// contiguously.  The last panel is zero-padded to kNr columns; padded
// lanes contribute exact zeros to the accumulators, so the micro-kernel
// never branches on a column tail.  Full GEMMs pack col0 = 0, m = cols();
// the sharded column-slice GEMM packs a sub-window, which shifts panel
// boundaries but not the per-element reduction order -- that is what
// keeps column shards bit-exact against the monolithic product.
void PackB(const MatrixF& b, std::size_t col0, std::size_t m, std::size_t pc,
           std::size_t kc, float* dst) {
  const std::size_t panels = (m + kNr - 1) / kNr;
  for (std::size_t jp = 0; jp < panels; ++jp) {
    const std::size_t j0 = jp * kNr;
    const std::size_t nr = std::min(kNr, m - j0);
    float* out = dst + jp * kc * kNr;
    for (std::size_t p = 0; p < kc; ++p) {
      const float* src = b.row(pc + p).data() + col0 + j0;
      float* o = out + p * kNr;
      for (std::size_t j = 0; j < nr; ++j) o[j] = src[j];
      for (std::size_t j = nr; j < kNr; ++j) o[j] = 0.f;
    }
  }
}

// Transpose-pack for the A * B^T orientation: output column j of the
// product is row j of B, so panel jp gathers rows [jp*kNr, jp*kNr + kNr)
// of B at reduction offset pc.  Same layout and padding as PackB, which is
// what lets both GEMM orientations share one micro-kernel.
void PackBT(const MatrixF& b, std::size_t pc, std::size_t kc, float* dst) {
  const std::size_t m = b.rows();
  const std::size_t panels = (m + kNr - 1) / kNr;
  for (std::size_t jp = 0; jp < panels; ++jp) {
    const std::size_t j0 = jp * kNr;
    const std::size_t nr = std::min(kNr, m - j0);
    float* out = dst + jp * kc * kNr;
    for (std::size_t j = 0; j < nr; ++j) {
      const float* src = b.row(j0 + j).data() + pc;
      for (std::size_t p = 0; p < kc; ++p) out[p * kNr + j] = src[p];
    }
    for (std::size_t j = nr; j < kNr; ++j) {
      for (std::size_t p = 0; p < kc; ++p) out[p * kNr + j] = 0.f;
    }
  }
}

#if defined(__AVX2__) && defined(__FMA__)

// Full MR x NR micro-kernel, AVX2+FMA: 12 ymm accumulators, two B loads
// and one A broadcast per reduction step.
void MicroKernelFull(std::size_t kc, const float* a, std::size_t lda,
                     const float* bp, float* c, std::size_t ldc,
                     std::size_t nr) {
  __m256 acc[kMr][2];
  for (std::size_t i = 0; i < kMr; ++i) {
    acc[i][0] = _mm256_setzero_ps();
    acc[i][1] = _mm256_setzero_ps();
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * kNr);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kNr + 8);
    for (std::size_t i = 0; i < kMr; ++i) {
      const __m256 ai = _mm256_broadcast_ss(a + i * lda + p);
      acc[i][0] = _mm256_fmadd_ps(ai, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(ai, b1, acc[i][1]);
    }
  }
  if (nr == kNr) {
    for (std::size_t i = 0; i < kMr; ++i) {
      float* ci = c + i * ldc;
      _mm256_storeu_ps(ci, _mm256_add_ps(_mm256_loadu_ps(ci), acc[i][0]));
      _mm256_storeu_ps(ci + 8,
                       _mm256_add_ps(_mm256_loadu_ps(ci + 8), acc[i][1]));
    }
  } else {
    alignas(32) float tile[kMr][kNr];
    for (std::size_t i = 0; i < kMr; ++i) {
      _mm256_store_ps(tile[i], acc[i][0]);
      _mm256_store_ps(tile[i] + 8, acc[i][1]);
    }
    for (std::size_t i = 0; i < kMr; ++i) {
      float* ci = c + i * ldc;
      for (std::size_t j = 0; j < nr; ++j) ci[j] += tile[i][j];
    }
  }
}

#elif defined(__GNUC__) || defined(__clang__)

// Full 4 x 8 micro-kernel on GNU vector extensions: eight named 128-bit
// accumulators stay in registers across the whole reduction (a 2D local
// array does not -- the compiler spills it to the stack every iteration,
// which is slower than the naive loop it is meant to replace).
using V4 = float __attribute__((vector_size(16)));

inline V4 LoadV4(const float* p) {
  V4 v;
  __builtin_memcpy(&v, p, sizeof(v));  // unaligned-safe, no strict aliasing
  return v;
}

void MicroKernelFull(std::size_t kc, const float* a, std::size_t lda,
                     const float* bp, float* c, std::size_t ldc,
                     std::size_t nr) {
  V4 a00{}, a01{}, a10{}, a11{}, a20{}, a21{}, a30{}, a31{};
  for (std::size_t p = 0; p < kc; ++p) {
    const V4 b0 = LoadV4(bp + p * kNr);
    const V4 b1 = LoadV4(bp + p * kNr + 4);
    const float x0 = a[p];
    const float x1 = a[lda + p];
    const float x2 = a[2 * lda + p];
    const float x3 = a[3 * lda + p];
    a00 += x0 * b0;
    a01 += x0 * b1;
    a10 += x1 * b0;
    a11 += x1 * b1;
    a20 += x2 * b0;
    a21 += x2 * b1;
    a30 += x3 * b0;
    a31 += x3 * b1;
  }
  float tile[kMr][kNr];
  __builtin_memcpy(tile[0], &a00, sizeof(V4));
  __builtin_memcpy(tile[0] + 4, &a01, sizeof(V4));
  __builtin_memcpy(tile[1], &a10, sizeof(V4));
  __builtin_memcpy(tile[1] + 4, &a11, sizeof(V4));
  __builtin_memcpy(tile[2], &a20, sizeof(V4));
  __builtin_memcpy(tile[2] + 4, &a21, sizeof(V4));
  __builtin_memcpy(tile[3], &a30, sizeof(V4));
  __builtin_memcpy(tile[3] + 4, &a31, sizeof(V4));
  for (std::size_t i = 0; i < kMr; ++i) {
    float* ci = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) ci[j] += tile[i][j];
  }
}

#else

// Full MR x NR micro-kernel, last-resort portable version: fixed-extent
// loops over a local accumulator tile, left to the auto-vectorizer.
void MicroKernelFull(std::size_t kc, const float* a, std::size_t lda,
                     const float* bp, float* c, std::size_t ldc,
                     std::size_t nr) {
  float acc[kMr][kNr] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* b = bp + p * kNr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const float ai = a[i * lda + p];
      for (std::size_t j = 0; j < kNr; ++j) acc[i][j] += ai * b[j];
    }
  }
  for (std::size_t i = 0; i < kMr; ++i) {
    float* ci = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) ci[j] += acc[i][j];
  }
}

#endif

// Row-tail micro-kernel (mr < kMr): one accumulator row at a time.
void MicroKernelTail(std::size_t mr, std::size_t kc, const float* a,
                     std::size_t lda, const float* bp, float* c,
                     std::size_t ldc, std::size_t nr) {
  for (std::size_t i = 0; i < mr; ++i) {
    float acc[kNr] = {};
    const float* ai = a + i * lda;
    for (std::size_t p = 0; p < kc; ++p) {
      const float aip = ai[p];
      const float* b = bp + p * kNr;
      for (std::size_t j = 0; j < kNr; ++j) acc[j] += aip * b[j];
    }
    float* ci = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) ci[j] += acc[j];
  }
}

// Shared blocked driver.  `k` is the reduction extent, `m` the output
// width; `pack` materializes the packed panels of the current K-tile.
template <typename PackFn>
void TiledGemm(const MatrixF& a, std::size_t k, std::size_t m, MatrixF& c,
               GemmScratch& scratch, PackFn&& pack) {
  const std::size_t n = a.rows();
  c.Resize(n, m);
  std::fill(c.flat().begin(), c.flat().end(), 0.f);
  if (n == 0 || m == 0 || k == 0) return;

  const std::size_t panels = (m + kNr - 1) / kNr;
  scratch.bpack.resize(panels * std::min(kKc, k) * kNr);
  for (std::size_t pc = 0; pc < k; pc += kKc) {
    const std::size_t kc = std::min(kKc, k - pc);
    pack(pc, kc, scratch.bpack.data());
    for (std::size_t ic = 0; ic < n; ic += kMc) {
      const std::size_t mc = std::min(kMc, n - ic);
      for (std::size_t jp = 0; jp < panels; ++jp) {
        const std::size_t j0 = jp * kNr;
        const std::size_t nr = std::min(kNr, m - j0);
        const float* bp = scratch.bpack.data() + jp * kc * kNr;
        std::size_t ir = 0;
        for (; ir + kMr <= mc; ir += kMr) {
          MicroKernelFull(kc, a.row(ic + ir).data() + pc, a.cols(), bp,
                          c.row(ic + ir).data() + j0, m, nr);
        }
        if (ir < mc) {
          MicroKernelTail(mc - ir, kc, a.row(ic + ir).data() + pc, a.cols(),
                          bp, c.row(ic + ir).data() + j0, m, nr);
        }
      }
    }
  }
}

GemmScratch& ThreadLocalScratch() {
  thread_local GemmScratch scratch;
  return scratch;
}

}  // namespace

const char* KernelArchName() {
#if defined(__AVX2__) && defined(__FMA__)
  return "avx2+fma";
#else
  return "portable";
#endif
}

void MatMulInto(const MatrixF& a, const MatrixF& b, MatrixF& c,
                GemmScratch& scratch) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("MatMulInto: inner dimensions differ");
  }
  TiledGemm(a, a.cols(), b.cols(), c, scratch,
            [&b](std::size_t pc, std::size_t kc, float* dst) {
              PackB(b, 0, b.cols(), pc, kc, dst);
            });
}

void MatMulInto(const MatrixF& a, const MatrixF& b, MatrixF& c) {
  MatMulInto(a, b, c, ThreadLocalScratch());
}

void MatMulColumnsInto(const MatrixF& a, const MatrixF& b, std::size_t col0,
                       std::size_t col1, MatrixF& c, GemmScratch& scratch) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("MatMulColumnsInto: inner dimensions differ");
  }
  if (col0 > col1 || col1 > b.cols()) {
    throw std::invalid_argument("MatMulColumnsInto: column range out of bounds");
  }
  const std::size_t m = col1 - col0;
  TiledGemm(a, a.cols(), m, c, scratch,
            [&b, col0, m](std::size_t pc, std::size_t kc, float* dst) {
              PackB(b, col0, m, pc, kc, dst);
            });
}

void MatMulRowsInto(const MatrixF& a, const MatrixF& b, std::size_t row0,
                    std::size_t row1, MatrixF& c, GemmScratch& scratch) {
  if (row0 > row1 || row1 > b.rows()) {
    throw std::invalid_argument("MatMulRowsInto: row range out of bounds");
  }
  if (a.cols() != row1 - row0) {
    throw std::invalid_argument(
        "MatMulRowsInto: A width must equal the B row range");
  }
  TiledGemm(a, a.cols(), b.cols(), c, scratch,
            [&b, row0](std::size_t pc, std::size_t kc, float* dst) {
              PackB(b, 0, b.cols(), row0 + pc, kc, dst);
            });
}

void MatMulBTInto(const MatrixF& a, const MatrixF& b, MatrixF& c,
                  GemmScratch& scratch) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("MatMulBTInto: inner dimensions differ");
  }
  TiledGemm(a, a.cols(), b.rows(), c, scratch,
            [&b](std::size_t pc, std::size_t kc, float* dst) {
              PackBT(b, pc, kc, dst);
            });
}

void MatMulBTInto(const MatrixF& a, const MatrixF& b, MatrixF& c) {
  MatMulBTInto(a, b, c, ThreadLocalScratch());
}

void Int8GemmInto(const MatrixI8& x, const MatrixI8& w, MatrixI32& out) {
  if (x.cols() != w.rows()) {
    throw std::invalid_argument("Int8GemmInto: inner dimensions differ");
  }
  const std::size_t n = x.rows();
  const std::size_t k = x.cols();
  const std::size_t m = w.cols();
  out.Resize(n, m);
  std::fill(out.flat().begin(), out.flat().end(), 0);
  if (n == 0 || m == 0 || k == 0) return;

  // Four output rows per sweep: each loaded row of W feeds four
  // accumulator rows, quartering W traffic versus the naive loop.  No
  // zero-skip branch -- dense activations rarely quantize to zero, and
  // the branch defeats vectorization of the inner loop.
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    auto x0 = x.row(i), x1 = x.row(i + 1), x2 = x.row(i + 2),
         x3 = x.row(i + 3);
    auto o0 = out.row(i), o1 = out.row(i + 1), o2 = out.row(i + 2),
         o3 = out.row(i + 3);
    for (std::size_t p = 0; p < k; ++p) {
      const std::int32_t a0 = x0[p], a1 = x1[p], a2 = x2[p], a3 = x3[p];
      auto wp = w.row(p);
      for (std::size_t j = 0; j < m; ++j) {
        const std::int32_t wj = wp[j];
        o0[j] += a0 * wj;
        o1[j] += a1 * wj;
        o2[j] += a2 * wj;
        o3[j] += a3 * wj;
      }
    }
  }
  for (; i < n; ++i) {
    auto xi = x.row(i);
    auto oi = out.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const std::int32_t a = xi[p];
      auto wp = w.row(p);
      for (std::size_t j = 0; j < m; ++j) oi[j] += a * wp[j];
    }
  }
}

float DotProduct(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("DotProduct: length mismatch");
  }
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  std::size_t i = 0;
  for (; i + 4 <= a.size(); i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  float s = (s0 + s1) + (s2 + s3);
  for (; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace latte
