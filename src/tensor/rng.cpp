#include "tensor/rng.hpp"

#include <cmath>

namespace latte {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t MixHash64(std::uint64_t x) {
  std::uint64_t state = x;
  return SplitMix64(state);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextUniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextUniform();
}

double Rng::NextNormal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = NextUniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextUniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::NextNormal(double mean, double stddev) {
  return mean + stddev * NextNormal();
}

std::uint64_t Rng::NextIndex(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

MatrixF Rng::NormalMatrix(std::size_t rows, std::size_t cols, double mean,
                          double stddev) {
  MatrixF m(rows, cols);
  for (auto& x : m.flat()) x = static_cast<float>(NextNormal(mean, stddev));
  return m;
}

MatrixF Rng::UniformMatrix(std::size_t rows, std::size_t cols, double lo,
                           double hi) {
  MatrixF m(rows, cols);
  for (auto& x : m.flat()) x = static_cast<float>(NextUniform(lo, hi));
  return m;
}

}  // namespace latte
