#include "tensor/lut_multiply.hpp"

#include <cassert>

namespace latte {

LutMultiplier::LutMultiplier() {
  for (int a = -8; a <= 7; ++a) {
    for (int b = -8; b <= 7; ++b) {
      table_[static_cast<std::size_t>((a + 8) * 16 + (b + 8))] =
          static_cast<std::int16_t>(a * b);
    }
  }
}

std::int32_t LutMultiplier::Mul(std::int8_t a, std::int8_t b) const {
  assert(a >= -8 && a <= 7 && b >= -8 && b <= 7);
  return table_[static_cast<std::size_t>((a + 8) * 16 + (b + 8))];
}

std::int32_t LutMultiplier::Dot(std::span<const std::int8_t> a,
                                std::span<const std::int8_t> b) const {
  assert(a.size() == b.size());
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += Mul(a[i], b[i]);
  return acc;
}

MatrixI32 LutMultiplier::ScoreMatrix(const QuantizedMatrix& q,
                                     const QuantizedMatrix& k) const {
  assert(q.codes.cols() == k.codes.cols());
  MatrixI32 s(q.codes.rows(), k.codes.rows());
  for (std::size_t i = 0; i < q.codes.rows(); ++i) {
    auto qi = q.codes.row(i);
    for (std::size_t j = 0; j < k.codes.rows(); ++j) {
      s(i, j) = Dot(qi, k.codes.row(j));
    }
  }
  return s;
}

}  // namespace latte
