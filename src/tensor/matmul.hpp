#pragma once
// Dense float linear algebra used by the reference (non-sparse) paths.

#include "tensor/matrix.hpp"

namespace latte {

/// C = A * B.  A is (n x k), B is (k x m).  Throws on shape mismatch.
/// Thin allocating shim over the tiled kernel (tensor/kernels.hpp);
/// accumulation order matches MatMulInto bit for bit, not the naive loop.
MatrixF MatMul(const MatrixF& a, const MatrixF& b);

/// C = A * B^T.  A is (n x d), B is (m x d).  Throws on shape mismatch.
/// This is the natural layout for attention scores S = Q * K^T.  Thin
/// allocating shim over the tiled kernel, like MatMul.
MatrixF MatMulBT(const MatrixF& a, const MatrixF& b);

/// C = A * B for a sparse-in-A multiplicand: the inner loop skips zero
/// elements of A, so cost scales with nnz(A) instead of n*k.  This is the
/// seed's scalar loop; keep it for genuinely sparse inputs (e.g. masked
/// score rows) -- on dense inputs the per-element branch makes it several
/// times slower than MatMul.
MatrixF MatMulSkipZeros(const MatrixF& a, const MatrixF& b);

/// Returns A^T.
MatrixF Transpose(const MatrixF& a);

/// C = A + B (elementwise).  Throws on shape mismatch.
MatrixF Add(const MatrixF& a, const MatrixF& b);

/// out = A + B elementwise into a caller-owned matrix (resized, fully
/// overwritten) so reused scratch slots stay allocation-free.  `out` may
/// alias `a` or `b`.
void AddInto(const MatrixF& a, const MatrixF& b, MatrixF& out);

/// Adds a row vector `bias` (length == a.cols()) to every row of `a` in place.
void AddBiasInPlace(MatrixF& a, std::span<const float> bias);

/// Scales every element in place.
void ScaleInPlace(MatrixF& a, float s);

/// Frobenius norm of (a - b).  Throws on shape mismatch.
double FrobeniusDistance(const MatrixF& a, const MatrixF& b);

/// Mean cosine similarity between corresponding rows of a and b.
/// Rows with zero norm contribute similarity 1 if both are zero, else 0.
double MeanRowCosine(const MatrixF& a, const MatrixF& b);

}  // namespace latte
