#include "tensor/matmul.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/kernels.hpp"

namespace latte {

MatrixF MatMul(const MatrixF& a, const MatrixF& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("MatMul: inner dimensions differ");
  }
  MatrixF c;
  MatMulInto(a, b, c);
  return c;
}

MatrixF MatMulBT(const MatrixF& a, const MatrixF& b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("MatMulBT: inner dimensions differ");
  }
  MatrixF c;
  MatMulBTInto(a, b, c);
  return c;
}

MatrixF MatMulSkipZeros(const MatrixF& a, const MatrixF& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("MatMulSkipZeros: inner dimensions differ");
  }
  MatrixF c(a.rows(), b.cols());
  // i-k-j loop order: streams over B rows, friendly to the row-major
  // layout; the zero test makes cost proportional to nnz(A).
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto ci = c.row(i);
    auto ai = a.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = ai[k];
      if (aik == 0.f) continue;
      auto bk = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) ci[j] += aik * bk[j];
    }
  }
  return c;
}

MatrixF Transpose(const MatrixF& a) {
  MatrixF t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

MatrixF Add(const MatrixF& a, const MatrixF& b) {
  MatrixF c;
  AddInto(a, b, c);
  return c;
}

void AddInto(const MatrixF& a, const MatrixF& b, MatrixF& out) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("Add: shape mismatch");
  }
  out.Resize(a.rows(), a.cols());
  auto af = a.flat();
  auto bf = b.flat();
  auto cf = out.flat();
  for (std::size_t i = 0; i < af.size(); ++i) cf[i] = af[i] + bf[i];
}

void AddBiasInPlace(MatrixF& a, std::span<const float> bias) {
  if (bias.size() != a.cols()) {
    throw std::invalid_argument("AddBiasInPlace: bias length mismatch");
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto r = a.row(i);
    for (std::size_t j = 0; j < r.size(); ++j) r[j] += bias[j];
  }
}

void ScaleInPlace(MatrixF& a, float s) {
  for (auto& x : a.flat()) x *= s;
}

double FrobeniusDistance(const MatrixF& a, const MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("FrobeniusDistance: shape mismatch");
  }
  double acc = 0.0;
  auto af = a.flat();
  auto bf = b.flat();
  for (std::size_t i = 0; i < af.size(); ++i) {
    const double d = static_cast<double>(af[i]) - static_cast<double>(bf[i]);
    acc += d * d;
  }
  return std::sqrt(acc);
}

double MeanRowCosine(const MatrixF& a, const MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("MeanRowCosine: shape mismatch");
  }
  if (a.rows() == 0) return 1.0;
  double total = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto ra = a.row(i);
    auto rb = b.row(i);
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t j = 0; j < ra.size(); ++j) {
      dot += static_cast<double>(ra[j]) * rb[j];
      na += static_cast<double>(ra[j]) * ra[j];
      nb += static_cast<double>(rb[j]) * rb[j];
    }
    if (na == 0.0 && nb == 0.0) {
      total += 1.0;
    } else if (na == 0.0 || nb == 0.0) {
      // one row is zero, the other is not: orthogonal by convention
    } else {
      total += dot / (std::sqrt(na) * std::sqrt(nb));
    }
  }
  return total / static_cast<double>(a.rows());
}

}  // namespace latte
