#pragma once
// Tiled & vectorized dense kernel library -- the compute floor under every
// hot path (nn/linear, nn/qlinear, nn/attention, nn/encoder and the
// per-slot workspaces of runtime/batch_runner).
//
// The GEMM family is blocked three ways: the reduction dimension in K-tiles
// that keep a packed panel of B resident in L1, output columns in
// register-width panels (packed contiguously, zero-padded to the panel
// width so the micro-kernel never branches on a column tail), and output
// rows in register tiles.  The micro-kernel accumulates an MR x NR tile of
// C entirely in registers.  SIMD dispatch is compile-time: with AVX2+FMA
// available (build with -DLATTE_NATIVE_ARCH=ON) an intrinsics micro-kernel
// is selected; otherwise a portable register-tiled kernel that
// auto-vectorizes on the baseline ISA.  `KernelArchName()` reports which
// one was compiled in.
//
// Accumulation order differs from the naive triple loop, so float results
// agree with the scalar reference only to rounding (compare with relative
// tolerance; tests/kernels_test.cpp uses 1e-4).  Every kernel is
// deterministic: the same inputs produce bit-identical outputs on every
// call, with or without a reused scratch, which is what keeps the batched
// runtime's exact batch-vs-sequential tests meaningful.

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace latte {

/// Reusable packing scratch for the tiled GEMM family.  Lease one from a
/// runtime Workspace (`ws.gemm()`) on hot paths; at steady-state shapes the
/// pack buffer stops growing and GEMM calls allocate nothing.
struct GemmScratch {
  std::vector<float> bpack;  ///< packed B panels for the current K-tile

  std::size_t CapacityBytes() const {
    return bpack.capacity() * sizeof(float);
  }
};

/// Compile-time selected micro-kernel ISA: "avx2+fma" or "portable".
const char* KernelArchName();

/// C = A * B.  A is (n x k), B is (k x m); c is resized to (n x m) and
/// fully overwritten.  Throws on shape mismatch.  `c` must not alias `a`
/// or `b`.
void MatMulInto(const MatrixF& a, const MatrixF& b, MatrixF& c,
                GemmScratch& scratch);

/// As above with an internal thread-local scratch (thin-shim convenience
/// for call sites that have no Workspace).
void MatMulInto(const MatrixF& a, const MatrixF& b, MatrixF& c);

/// C = A * B[:, col0:col1): the column slice of the product one tensor-
/// parallel shard owns.  A is (n x k), B is (k x m); c is resized to
/// (n x col1-col0) and fully overwritten.  Each output element is reduced
/// in exactly the K-tile order of the full GEMM (packing a column window
/// shifts panel boundaries, never the reduction order), so the result is
/// bit-identical to the corresponding columns of MatMulInto -- the
/// property the sharded encoder's bit-exactness contract rests on.
/// Throws on shape mismatch or an out-of-range column window.
void MatMulColumnsInto(const MatrixF& a, const MatrixF& b, std::size_t col0,
                       std::size_t col1, MatrixF& c, GemmScratch& scratch);

/// C = A * B[row0:row1, :): the partial product of a row-parallel shard
/// that owns reduction rows [row0, row1) of B.  A is (n x row1-row0) --
/// already the matching activation slice -- and c is resized to
/// (n x b.cols()) and fully overwritten.  Summing the per-shard partials
/// re-associates the reduction, so the row-parallel path agrees with the
/// monolithic GEMM only to rounding; callers that need bit-exact results
/// use the column-slice path instead.  Throws on shape mismatch or an
/// out-of-range row window.
void MatMulRowsInto(const MatrixF& a, const MatrixF& b, std::size_t row0,
                    std::size_t row1, MatrixF& c, GemmScratch& scratch);

/// C = A * B^T.  A is (n x d), B is (m x d); c is resized to (n x m) and
/// fully overwritten.  The natural layout for attention scores S = Q K^T.
/// Throws on shape mismatch.  `c` must not alias `a` or `b`.
void MatMulBTInto(const MatrixF& a, const MatrixF& b, MatrixF& c,
                  GemmScratch& scratch);

/// As above with an internal thread-local scratch.
void MatMulBTInto(const MatrixF& a, const MatrixF& b, MatrixF& c);

/// Exact int8 GEMM with int32 accumulation: out = x * w where x is
/// (n x k) codes and w is (k x m) codes.  Integer accumulation is
/// associative, so the row-blocked loop is bit-exact against the naive
/// reference.  out is resized to (n x m) and fully overwritten.
void Int8GemmInto(const MatrixI8& x, const MatrixI8& w, MatrixI32& out);

/// Dot product with unrolled partial sums (reordered accumulation;
/// deterministic).  a and b must have equal length.
float DotProduct(std::span<const float> a, std::span<const float> b);

}  // namespace latte
