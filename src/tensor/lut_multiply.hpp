#pragma once
// Look-up-table integer multiplication (Section 3.2 / Stage 1 "At-Sel").
//
// On the FPGA the quantized Q'.K'^T pre-selection scores are produced without
// DSPs: two 4-bit codes index a 256-entry product table held in LUTs.  We
// model the exact same structure so that (a) the functional result is
// bit-identical to integer multiply-accumulate -- asserted by tests -- and
// (b) the resource model can charge LUTs instead of DSPs for Stage 1's
// pre-selection arithmetic.

#include <array>
#include <cstdint>

#include "tensor/matrix.hpp"
#include "tensor/quantize.hpp"

namespace latte {

/// 256-entry product LUT for signed codes in [-8, 7] x [-8, 7].
/// Codes from 1-bit and 4-bit quantization (range [-7,7] / {-1,1}) always fall
/// inside the table.
class LutMultiplier {
 public:
  LutMultiplier();

  /// Product of two 4-bit signed codes via table lookup.
  /// Precondition: a, b in [-8, 7].
  std::int32_t Mul(std::int8_t a, std::int8_t b) const;

  /// Dot product of two code vectors via repeated lookup.
  /// Precondition: equal lengths.
  std::int32_t Dot(std::span<const std::int8_t> a,
                   std::span<const std::int8_t> b) const;

  /// Approximate score matrix S' = Q' * K'^T using only LUT lookups.
  /// q.codes is (n x d), k.codes is (m x d); the result is (n x m).
  MatrixI32 ScoreMatrix(const QuantizedMatrix& q,
                        const QuantizedMatrix& k) const;

  /// Number of table entries (fixed at 256, the figure the paper quotes).
  static constexpr int kEntries = 256;

 private:
  // table_[(a+8)*16 + (b+8)] == a*b
  std::array<std::int16_t, kEntries> table_;
};

}  // namespace latte
