#pragma once
// Row-major dense matrix used throughout LATTE.
//
// This is deliberately a small, value-semantic container (C.10, C.20): the
// simulator and the algorithm reference implementations need predictable
// storage, spans over rows, and nothing else.  All heavy lifting (matmul,
// quantization) lives in free functions so that alternative backends (the LUT
// integer path, the fused attention kernel) can share the storage type.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace latte {

/// Dense row-major matrix of `T`.
///
/// Invariants: `data_.size() == rows_ * cols_` always holds; `rows_`/`cols_`
/// may be zero (empty matrix).  Indexing is checked with `assert` in debug
/// builds and unchecked in release builds.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix, value-initialized (zeros for arithmetic T).
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  /// Creates a rows x cols matrix filled with `init`.
  Matrix(std::size_t rows, std::size_t cols, T init)
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  /// Builds a matrix from a flat row-major buffer.
  /// Throws std::invalid_argument if the buffer size does not match.
  static Matrix FromFlat(std::size_t rows, std::size_t cols,
                         std::vector<T> flat) {
    if (flat.size() != rows * cols) {
      throw std::invalid_argument("Matrix::FromFlat: size mismatch");
    }
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_ = std::move(flat);
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  /// Elements the underlying storage can hold without reallocating (grows
  /// monotonically under Resize; the scratch-reuse accounting reads this).
  std::size_t capacity() const { return data_.capacity(); }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Mutable view of row `r`.
  std::span<T> row(std::size_t r) {
    assert(r < rows_);
    return std::span<T>(data_.data() + r * cols_, cols_);
  }
  /// Read-only view of row `r`.
  std::span<const T> row(std::size_t r) const {
    assert(r < rows_);
    return std::span<const T>(data_.data() + r * cols_, cols_);
  }

  std::span<T> flat() { return std::span<T>(data_); }
  std::span<const T> flat() const { return std::span<const T>(data_); }

  /// Reshapes to rows x cols, reusing the existing allocation whenever the
  /// new extent fits the current capacity.  Element values in the reused
  /// region are unspecified after the call (scratch-buffer semantics): the
  /// caller is expected to overwrite every cell.  New cells appended beyond
  /// the previous size are value-initialized by std::vector.
  void Resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixF = Matrix<float>;
using MatrixI8 = Matrix<std::int8_t>;
using MatrixI32 = Matrix<std::int32_t>;

}  // namespace latte
