#pragma once
// Deterministic random number generation for workload synthesis.
//
// Every experiment in this repository must be bit-reproducible across runs,
// so we ship our own xoshiro256++ implementation instead of relying on
// std::mt19937 + std::normal_distribution (whose outputs are not guaranteed
// to be identical across standard library implementations).

#include <cstdint>

#include "tensor/matrix.hpp"

namespace latte {

/// splitmix64 finalizer: a cheap, well-distributed, platform-stable
/// 64-bit mixer.  Shared by the cache-key hashes, the Zipf identity
/// generator and the cluster's rendezvous (key-affinity) routing, which
/// all need the same "hash this integer deterministically everywhere"
/// primitive.
std::uint64_t MixHash64(std::uint64_t x);

/// xoshiro256++ PRNG (Blackman & Vigna), seeded via splitmix64.
/// Deterministic across platforms; passes BigCrush.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextUniform();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic pairing).
  double NextNormal();

  /// Normal with the given mean / stddev.
  double NextNormal(double mean, double stddev);

  /// Uniform integer in [0, n).  Requires n > 0.
  std::uint64_t NextIndex(std::uint64_t n);

  /// Fills a float matrix with i.i.d. N(mean, stddev) samples.
  MatrixF NormalMatrix(std::size_t rows, std::size_t cols, double mean,
                       double stddev);

  /// Fills a float matrix with i.i.d. U[lo, hi) samples.
  MatrixF UniformMatrix(std::size_t rows, std::size_t cols, double lo,
                        double hi);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace latte
