#include "config/check.hpp"

#include <stdexcept>
#include <utility>

namespace latte {

void AddIssue(ConfigIssues& issues, std::string field, std::string reason) {
  issues.push_back(ConfigIssue{std::move(field), std::move(reason)});
}

void MergePrefixed(ConfigIssues& issues, const std::string& prefix,
                   ConfigIssues child) {
  for (ConfigIssue& issue : child) {
    issue.field = prefix + "." + issue.field;
    issues.push_back(std::move(issue));
  }
}

std::string FormatIssue(const std::string& config_name,
                        const ConfigIssue& issue) {
  return config_name + ": " + issue.field + " " + issue.reason;
}

void ThrowOnIssues(const std::string& config_name, const ConfigIssues& issues) {
  if (issues.empty()) return;
  throw std::invalid_argument(FormatIssue(config_name, issues.front()));
}

bool HasIssueFor(const ConfigIssues& issues, const std::string& field) {
  for (const ConfigIssue& issue : issues) {
    if (issue.field == field) return true;
    if (issue.field.size() > field.size() + 1 &&
        issue.field.compare(issue.field.size() - field.size() - 1, 1, ".") ==
            0 &&
        issue.field.compare(issue.field.size() - field.size(), field.size(),
                            field) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace latte
