#pragma once
// Unified named-field configuration checking.
//
// Every config struct in the codebase grew its own throwing
// `ValidateXxxConfig` over PRs 1-6.  Throwing is the right interface at
// construction time -- a bad config is a programming error there -- but
// it is the wrong one for a search loop that proposes thousands of
// mutated configs per second and needs to reject the illegal ones
// cheaply, and it makes tests assert on substrings of prose instead of
// on fields.
//
// This header defines the shared currency: a `ConfigIssue` names the
// offending field (dot-path into the aggregate, e.g.
// "replica[1].engine.former.timeout_s") and the reason it is illegal.
// Each module now exposes a non-throwing
//
//   ConfigIssues CheckXxxConfig(const XxxConfig&);
//
// returning every issue found (empty means legal), and keeps its
// original `ValidateXxxConfig` as a thin wrapper that throws
// std::invalid_argument on the first issue -- existing call sites and
// their error-message contracts are unchanged.

#include <string>
#include <vector>

namespace latte {

/// One reason a configuration is illegal: which field, and why.
struct ConfigIssue {
  std::string field;   ///< dot-path of the offending field
  std::string reason;  ///< human-readable constraint, e.g. "must be >= 1"

  bool operator==(const ConfigIssue&) const = default;
};

using ConfigIssues = std::vector<ConfigIssue>;

/// Appends one issue.
void AddIssue(ConfigIssues& issues, std::string field, std::string reason);

/// Appends `child` issues with "<prefix>." prepended to each field, so
/// nested config checkers compose into dot-paths.
void MergePrefixed(ConfigIssues& issues, const std::string& prefix,
                   ConfigIssues child);

/// "<config_name>: <field> <reason>" -- the historical message shape of
/// the throwing validators.
std::string FormatIssue(const std::string& config_name,
                        const ConfigIssue& issue);

/// Throws std::invalid_argument with FormatIssue of the first issue;
/// no-op when `issues` is empty.
void ThrowOnIssues(const std::string& config_name, const ConfigIssues& issues);

/// True when `issues` contains an entry whose field path equals `field`
/// or ends with ".<field>" -- the assertion helper tests use.
bool HasIssueFor(const ConfigIssues& issues, const std::string& field);

}  // namespace latte
