// Tests for the FPGA substrate: resources, stage timing, the Fig 2(b)
// state machine and the coarse-grained pipeline simulator.

#include <gtest/gtest.h>

#include <algorithm>

#include "fpga/accelerator.hpp"
#include "fpga/pipeline_sim.hpp"
#include "fpga/resources.hpp"
#include "fpga/state_machine.hpp"
#include "fpga/timing.hpp"
#include "model/config.hpp"

namespace latte {
namespace {

std::vector<StageTimingModel> SparseStageModels(double s_avg = 177) {
  const auto ops =
      EncoderOps(BertBase().encoder, AttentionMode::kSparseTopK, 30);
  return BuildStageTimings(GroupByStageHint(ops), AlveoU280Slr0(), s_avg);
}

// ------------------------------------------------------------ Resources --

TEST(ResourcesTest, U280PeakMatchesPaper) {
  const auto spec = AlveoU280Slr0();
  // 3000 DSPs * 2 ops * 200 MHz = 1.2 TOPS (Section 5.2).
  EXPECT_DOUBLE_EQ(spec.PeakOpsPerSecond(), 1.2e12);
  EXPECT_EQ(spec.hbm_channels, 32u);
}

TEST(ResourcesTest, UsageFitCheck) {
  const auto spec = AlveoU280Slr0();
  ResourceUsage ok{2000, 100e3, 1e6};
  EXPECT_TRUE(ok.FitsIn(spec));
  ResourceUsage too_many_dsp{4000, 0, 0};
  EXPECT_FALSE(too_many_dsp.FitsIn(spec));
}

TEST(ResourcesTest, DoubleBufferSizing) {
  // Ping-pong buffer for an 821-token BERT-base activation block.
  EXPECT_DOUBLE_EQ(DoubleBufferBytes(821, 768), 2.0 * 821 * 768);
  // It must fit on chip with room to spare.
  EXPECT_LT(DoubleBufferBytes(821, 768), AlveoU280Slr0().bram_bytes);
}

// --------------------------------------------------------------- Timing --

TEST(TimingTest, ThreeStagesFromHints) {
  const auto models = SparseStageModels();
  EXPECT_EQ(models.size(), 3u);
}

TEST(TimingTest, StageSecondsMonotoneInLength) {
  const auto models = SparseStageModels();
  for (const auto& m : models) {
    EXPECT_LT(m.Seconds(64), m.Seconds(128));
    EXPECT_LT(m.Seconds(128), m.Seconds(821));
  }
}

TEST(TimingTest, DspShareSumsToBudget) {
  const auto models = SparseStageModels();
  double dsp = 0;
  for (const auto& m : models) dsp += m.dsp;
  EXPECT_NEAR(dsp, AlveoU280Slr0().dsp, 3.0);  // max(1, ...) rounding slack
}

TEST(TimingTest, ProportionalSplitBalancesStageLatency) {
  // At the design point s_avg the three stage latencies must be close
  // (equal up to the LUT/memory roofs), or the coarse pipeline would have
  // a structurally slow stage.
  const auto models = SparseStageModels(177);
  std::vector<double> t;
  for (const auto& m : models) t.push_back(m.Seconds(177));
  const double lo = *std::min_element(t.begin(), t.end());
  const double hi = *std::max_element(t.begin(), t.end());
  EXPECT_LT(hi / lo, 1.6);
}

TEST(TimingTest, DenseAttentionStageIsComputeBoundAtLongLength) {
  const auto ops = EncoderOps(BertBase().encoder, AttentionMode::kDense);
  const auto models =
      BuildStageTimings(GroupByStageHint(ops), AlveoU280Slr0(), 821);
  // Stage 2 (dense At-Comp) at n=821 is DSP bound (roof 0).
  EXPECT_EQ(models[1].BindingRoof(821), 0);
}

TEST(TimingTest, RejectsNonPositiveSavg) {
  const auto ops = EncoderOps(BertBase().encoder, AttentionMode::kDense);
  EXPECT_THROW(
      BuildStageTimings(GroupByStageHint(ops), AlveoU280Slr0(), 0.0),
      std::invalid_argument);
}

// -------------------------------------------------------- StateMachine ---

TEST(StateMachineTest, WorkingNames) {
  EXPECT_EQ(WorkingStateName(StageId::kMmAtSel), "StateMM");
  EXPECT_EQ(WorkingStateName(StageId::kAtComp), "StateAtten");
  EXPECT_EQ(WorkingStateName(StageId::kFdFwd), "StateFF");
}

TEST(StateMachineTest, LegalLifecycle) {
  StageStateMachine m(StageId::kMmAtSel);
  EXPECT_EQ(m.state(), StageState::kIdle);
  m.Start(1.0, 0, 0);
  EXPECT_EQ(m.state(), StageState::kWorking);
  m.Finish(3.0);
  EXPECT_EQ(m.state(), StageState::kIdle);
  EXPECT_DOUBLE_EQ(m.busy_time(), 2.0);
  EXPECT_EQ(m.log().size(), 2u);
}

TEST(StateMachineTest, DoubleStartThrows) {
  StageStateMachine m(StageId::kAtComp);
  m.Start(0.0, 0, 0);
  EXPECT_THROW(m.Start(1.0, 1, 0), std::logic_error);
}

TEST(StateMachineTest, FinishWhileIdleThrows) {
  StageStateMachine m(StageId::kFdFwd);
  EXPECT_THROW(m.Finish(1.0), std::logic_error);
}

TEST(StateMachineTest, TimeTravelThrows) {
  StageStateMachine m(StageId::kFdFwd);
  m.Start(5.0, 0, 0);
  EXPECT_THROW(m.Finish(4.0), std::logic_error);
}

// --------------------------------------------------------- PipelineSim ---

PipelineSimConfig OneLayer() {
  PipelineSimConfig cfg;
  cfg.layers = 1;
  return cfg;
}

TEST(PipelineSimTest, SingleSequenceIsSerialAcrossStages) {
  const auto models = SparseStageModels();
  const auto res = SimulatePipeline({128}, models, OneLayer());
  ASSERT_EQ(res.jobs.size(), 3u);
  EXPECT_DOUBLE_EQ(res.jobs[0].start, 0.0);
  for (std::size_t s = 1; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(res.jobs[s].start, res.jobs[s - 1].end);
  }
  EXPECT_DOUBLE_EQ(res.makespan, res.jobs[2].end);
  EXPECT_NEAR(res.Saved(), 0.0, 1e-15);  // nothing to overlap
}

TEST(PipelineSimTest, DataflowDependenciesRespected) {
  const auto models = SparseStageModels();
  PipelineSimConfig cfg;
  cfg.layers = 2;
  const auto res = SimulatePipeline({140, 100, 82, 78, 72}, models, cfg);
  // Index jobs for dependency checking.
  auto find = [&](std::size_t seq, std::size_t layer, std::size_t stage) {
    for (const auto& j : res.jobs) {
      if (j.seq == seq && j.layer == layer && j.stage == stage) return j;
    }
    ADD_FAILURE() << "job missing";
    return TimedJob{};
  };
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t l = 0; l < 2; ++l) {
      for (std::size_t s = 1; s < 3; ++s) {
        EXPECT_GE(find(i, l, s).start, find(i, l, s - 1).end - 1e-12);
      }
      if (l > 0) {
        EXPECT_GE(find(i, l, 0).start, find(i, l - 1, 2).end - 1e-12);
      }
    }
  }
}

TEST(PipelineSimTest, StageServesJobsInOrderWithoutOverlap) {
  const auto models = SparseStageModels();
  PipelineSimConfig cfg;
  cfg.layers = 3;
  const auto res = SimulatePipeline({140, 100, 82}, models, cfg);
  for (std::size_t s = 0; s < 3; ++s) {
    double prev_end = 0;
    for (const auto& j : res.jobs) {
      if (j.stage != s) continue;
      EXPECT_GE(j.start, prev_end - 1e-12);
      prev_end = j.end;
    }
  }
}

TEST(PipelineSimTest, PipeliningSavesLatency) {
  const auto models = SparseStageModels();
  PipelineSimConfig cfg;
  cfg.layers = 4;
  const auto res =
      SimulatePipeline({140, 100, 82, 78, 72}, models, cfg);
  EXPECT_GT(res.Saved(), 0.0);
  EXPECT_LT(res.makespan, res.SerialTime());
}

TEST(PipelineSimTest, SortedBatchNearlyBubbleFree) {
  // The paper's claim: sorted decreasing-length input + O(n) stages =>
  // ~100% stage utilization.  With 16 sequences and 12 layers the middle
  // stages must be > 95% utilized.
  const auto models = SparseStageModels();
  PipelineSimConfig cfg;
  cfg.layers = 12;
  std::vector<std::size_t> lens = {300, 280, 260, 240, 220, 200, 190, 180,
                                   170, 160, 150, 140, 130, 120, 110, 100};
  const auto res = SimulatePipeline(lens, models, cfg);
  const auto util = res.StageUtilization();
  ASSERT_EQ(util.size(), 3u);
  for (double u : util) EXPECT_GT(u, 0.95);
}

TEST(PipelineSimTest, SortedBeatsUnsortedOrRandom) {
  const auto models = SparseStageModels();
  PipelineSimConfig cfg;
  cfg.layers = 6;
  std::vector<std::size_t> sorted = {500, 400, 300, 200, 150, 120, 90, 60};
  std::vector<std::size_t> shuffled = {60, 500, 150, 300, 90, 400, 120, 200};
  const auto a = SimulatePipeline(sorted, models, cfg);
  const auto b = SimulatePipeline(shuffled, models, cfg);
  EXPECT_LE(a.makespan, b.makespan * (1 + 1e-12));
}

TEST(PipelineSimTest, DoubleBufferNoWorseThanSingle) {
  const auto models = SparseStageModels();
  PipelineSimConfig with;
  with.layers = 4;
  with.double_buffer = true;
  PipelineSimConfig without = with;
  without.double_buffer = false;
  std::vector<std::size_t> lens = {300, 250, 200, 150, 100};
  const auto a = SimulatePipeline(lens, models, with);
  const auto b = SimulatePipeline(lens, models, without);
  EXPECT_LE(a.makespan, b.makespan * (1 + 1e-12));
}

TEST(PipelineSimTest, EmptyBatchAndBadConfig) {
  const auto models = SparseStageModels();
  const auto res = SimulatePipeline({}, models, OneLayer());
  EXPECT_EQ(res.makespan, 0.0);
  PipelineSimConfig zero;
  zero.layers = 0;
  EXPECT_THROW(SimulatePipeline({10}, models, zero), std::invalid_argument);
  EXPECT_THROW(SimulatePipeline({10}, {}, OneLayer()), std::invalid_argument);
}

TEST(PipelineSimTest, GanttRendersAllStages) {
  const auto models = SparseStageModels();
  PipelineSimConfig cfg;
  cfg.layers = 2;
  const auto res = SimulatePipeline({140, 100, 82}, models, cfg);
  const std::string g = RenderGantt(res, 3, 60);
  EXPECT_NE(g.find("MM|At-Sel"), std::string::npos);
  EXPECT_NE(g.find("At-Comp"), std::string::npos);
  EXPECT_NE(g.find("FdFwd"), std::string::npos);
  EXPECT_EQ(std::count(g.begin(), g.end(), '\n'), 3);
}

// --------------------------------------------------------- Accelerator ---

TEST(AcceleratorTest, LengthAwareBeatsBaseline) {
  const auto model = BertBase();
  std::vector<std::size_t> lens = {600, 450, 300, 220, 180, 150, 120, 100,
                                   95,  90,  85,  80,  75,  70,  65,  60};
  AcceleratorConfig aware;
  aware.mode = FpgaMode::kLengthAware;
  AcceleratorConfig base;
  base.mode = FpgaMode::kBaseline;
  const auto a = RunAccelerator(model, lens, aware);
  const auto b = RunAccelerator(model, lens, base);
  EXPECT_LT(a.latency_s, b.latency_s);
  // Same useful work on both designs.
  EXPECT_DOUBLE_EQ(a.useful_dense_flops, b.useful_dense_flops);
  // Baseline computes more (padding + dense attention).
  EXPECT_GT(b.computed_flops, a.computed_flops);
}

TEST(AcceleratorTest, EquivalentGopsCanExceedRoof) {
  // The paper's 3.6 TFLOPS "equivalent throughput" exceeds the 1.2 TOPS
  // roof because saved work counts as done.  On a padding-heavy batch the
  // equivalent GOPS of the length-aware design must beat the roof.
  const auto model = BertBase();
  std::vector<std::size_t> lens(16, 100);
  lens[0] = 821;  // heavy padding in the dense baseline comparison
  AcceleratorConfig cfg;
  const auto rep = RunAccelerator(model, lens, cfg);
  EXPECT_GT(rep.EquivalentGops(), 0.0);
  EXPECT_LT(rep.latency_s, 10.0);  // sanity
}

TEST(AcceleratorTest, AttentionLatencySmallerThanTotal) {
  const auto model = BertBase();
  std::vector<std::size_t> lens = {200, 180, 160, 140};
  const auto rep = RunAccelerator(model, lens, AcceleratorConfig{});
  EXPECT_GT(rep.attention_latency_s, 0.0);
  EXPECT_LT(rep.attention_latency_s, rep.latency_s);
}

TEST(AcceleratorTest, EmptyBatchThrows) {
  EXPECT_THROW(RunAccelerator(BertBase(), {}, AcceleratorConfig{}),
               std::invalid_argument);
}

TEST(AcceleratorTest, ThroughputMetrics) {
  const auto model = DistilBert();
  std::vector<std::size_t> lens = {100, 100, 100, 100};
  const auto rep = RunAccelerator(model, lens, AcceleratorConfig{});
  EXPECT_EQ(rep.batch_size, 4u);
  EXPECT_EQ(rep.useful_tokens, 400u);
  EXPECT_NEAR(rep.SequencesPerSecond() * rep.latency_s, 4.0, 1e-9);
  EXPECT_NEAR(rep.TokensPerSecond() * rep.latency_s, 400.0, 1e-6);
}

// Property sweep: across models and batch shapes the length-aware design
// never loses to the padded dense baseline.
class AcceleratorProperty
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(AcceleratorProperty, AwareNeverSlower) {
  const auto [model_idx, spread] = GetParam();
  const auto model = ModelZoo()[static_cast<std::size_t>(model_idx)];
  std::vector<std::size_t> lens;
  for (std::size_t i = 0; i < 8; ++i) {
    lens.push_back(64 + i * spread);
  }
  AcceleratorConfig aware;
  AcceleratorConfig base;
  base.mode = FpgaMode::kBaseline;
  const auto a = RunAccelerator(model, lens, aware);
  const auto b = RunAccelerator(model, lens, base);
  EXPECT_LE(a.latency_s, b.latency_s * (1 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSpreads, AcceleratorProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values<std::size_t>(0, 10, 60)));

}  // namespace
}  // namespace latte
