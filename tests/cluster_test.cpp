// Tests for the multi-replica serving cluster: router policy rankings,
// per-field config validation, per-replica backpressure with rerouting,
// drain/failover without losing admitted work, fleet-level accounting,
// real-execution bit-exactness against a single engine replaying the same
// admitted set, and byte-identical virtual-time policy sweeps at any
// thread count.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "latte/latte.hpp"

namespace latte {
namespace {

ModelInstance& SmallModel() {
  static ModelInstance model(ScaledDown(BertBase(), 6), 2022);
  return model;
}

ReplicaConfig SmallReplica(const std::string& name = "") {
  ReplicaConfig cfg;
  cfg.name = name;
  cfg.engine.former.max_batch = 4;
  cfg.engine.former.timeout_s = 0.02;
  cfg.engine.workers = 1;
  cfg.engine.threads = 1;
  cfg.engine.inference.mode = InferenceMode::kSparseInt8;
  cfg.engine.inference.sparse.top_k = 16;
  return cfg;
}

ClusterConfig SmallCluster(std::size_t replicas, RouterPolicy policy) {
  ClusterConfig cfg;
  for (std::size_t i = 0; i < replicas; ++i) {
    cfg.replicas.push_back(SmallReplica());
  }
  cfg.router.policy = policy;
  if (policy == RouterPolicy::kLengthBucketed) {
    cfg.router.length_edges = {32};
  }
  return cfg;
}

std::vector<TimedRequest> SmallTrace(std::size_t requests = 32,
                                     double rate = 200,
                                     std::uint64_t seed = 9) {
  PoissonTraceConfig cfg;
  cfg.arrival_rate_rps = rate;
  cfg.requests = requests;
  cfg.seed = seed;
  return GeneratePoissonTrace(cfg, Mrpc());
}

// Bimodal lengths in an SSLL pattern, densely spaced so batches fill.
// (Pairs, not strict alternation: an alternating pattern lines up with a
// two-replica round-robin rotation and would bucket lengths by accident.)
std::vector<TimedRequest> BimodalTrace(std::size_t requests, double gap_s,
                                       std::size_t short_len,
                                       std::size_t long_len) {
  std::vector<TimedRequest> trace;
  for (std::size_t i = 0; i < requests; ++i) {
    trace.push_back(
        {gap_s * static_cast<double>(i), i % 4 < 2 ? short_len : long_len});
  }
  return trace;
}

// --------------------------------------------------------------- Router --

TEST(RouterTest, PolicyNames) {
  EXPECT_STREQ(RouterPolicyName(RouterPolicy::kRoundRobin), "round-robin");
  EXPECT_STREQ(RouterPolicyName(RouterPolicy::kJoinShortestQueue),
               "join-shortest-queue");
  EXPECT_STREQ(RouterPolicyName(RouterPolicy::kLeastOutstandingTokens),
               "least-outstanding-tokens");
  EXPECT_STREQ(RouterPolicyName(RouterPolicy::kLengthBucketed),
               "length-bucketed");
}

TEST(RouterTest, ValidatesConfigPerField) {
  RouterConfig cfg;
  cfg.policy = RouterPolicy::kLengthBucketed;
  // Missing edges.
  EXPECT_THROW(ValidateRouterConfig(cfg, 2), std::invalid_argument);
  // Zero edge.
  cfg.length_edges = {0};
  EXPECT_THROW(ValidateRouterConfig(cfg, 2), std::invalid_argument);
  // Not strictly increasing.
  cfg.length_edges = {64, 64};
  EXPECT_THROW(ValidateRouterConfig(cfg, 2), std::invalid_argument);
  cfg.length_edges = {64, 128};
  EXPECT_NO_THROW(ValidateRouterConfig(cfg, 2));
  // No replicas to route to.
  EXPECT_THROW(ValidateRouterConfig(cfg, 0), std::invalid_argument);
}

TEST(RouterTest, RoundRobinRotatesAndSkipsOffline) {
  Router router({RouterPolicy::kRoundRobin, {}}, 3);
  std::vector<ReplicaSnapshot> fleet(3);
  const TimedRequest req{0.0, 16};
  EXPECT_EQ(router.Rank(req, fleet), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(router.Rank(req, fleet), (std::vector<std::size_t>{1, 2, 0}));
  fleet[2].online = false;
  EXPECT_EQ(router.Rank(req, fleet), (std::vector<std::size_t>{0, 1}));
  // The cursor advanced past the offline replica's turn all the same.
  EXPECT_EQ(router.Rank(req, fleet), (std::vector<std::size_t>{0, 1}));
  fleet[0].online = false;
  fleet[1].online = false;
  EXPECT_TRUE(router.Rank(req, fleet).empty());
  router.Reset();
  fleet[0].online = fleet[1].online = fleet[2].online = true;
  EXPECT_EQ(router.Rank(req, fleet), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(RouterTest, JoinShortestQueueOrdersByDepthThenIndex) {
  Router router({RouterPolicy::kJoinShortestQueue, {}}, 3);
  std::vector<ReplicaSnapshot> fleet(3);
  fleet[0].queue_depth = 5;
  fleet[1].queue_depth = 2;
  fleet[2].queue_depth = 2;
  EXPECT_EQ(router.Rank({0.0, 16}, fleet),
            (std::vector<std::size_t>{1, 2, 0}));
  fleet[1].online = false;
  EXPECT_EQ(router.Rank({0.0, 16}, fleet), (std::vector<std::size_t>{2, 0}));
}

TEST(RouterTest, LeastOutstandingTokensOrdersByTokens) {
  Router router({RouterPolicy::kLeastOutstandingTokens, {}}, 3);
  std::vector<ReplicaSnapshot> fleet(3);
  fleet[0].outstanding_tokens = 100;
  fleet[1].outstanding_tokens = 700;
  fleet[2].outstanding_tokens = 40;
  EXPECT_EQ(router.Rank({0.0, 16}, fleet),
            (std::vector<std::size_t>{2, 0, 1}));
}

TEST(RouterTest, LengthBucketedPinsBucketsToHomeReplicas) {
  RouterConfig cfg;
  cfg.policy = RouterPolicy::kLengthBucketed;
  cfg.length_edges = {32, 128};
  Router router(cfg, 2);
  EXPECT_EQ(router.BucketOf(16), 0u);
  EXPECT_EQ(router.BucketOf(32), 0u);   // edges are inclusive upper bounds
  EXPECT_EQ(router.BucketOf(33), 1u);
  EXPECT_EQ(router.BucketOf(128), 1u);
  EXPECT_EQ(router.BucketOf(129), 2u);  // catch-all bucket past the edges

  std::vector<ReplicaSnapshot> fleet(2);
  // bucket 0 -> replica 0, bucket 1 -> replica 1, bucket 2 wraps to 0.
  EXPECT_EQ(router.Rank({0.0, 16}, fleet), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(router.Rank({0.0, 64}, fleet), (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(router.Rank({0.0, 300}, fleet), (std::vector<std::size_t>{0, 1}));
  fleet[1].online = false;
  EXPECT_EQ(router.Rank({0.0, 64}, fleet), (std::vector<std::size_t>{0}));
}

// -------------------------------------------------------- Config checks --

TEST(ClusterConfigTest, ValidatesPerFieldWithReplicaContext) {
  ClusterConfig empty;
  EXPECT_THROW(ValidateClusterConfig(empty), std::invalid_argument);

  auto bad = SmallCluster(2, RouterPolicy::kRoundRobin);
  bad.replicas[1].engine.workers = 0;
  try {
    ValidateClusterConfig(bad);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("replica[1]"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("workers"), std::string::npos)
        << e.what();
  }

  auto mixed = SmallCluster(2, RouterPolicy::kRoundRobin);
  mixed.replicas[1].engine.execute = false;
  EXPECT_THROW(ValidateClusterConfig(mixed), std::invalid_argument);

  auto bad_router = SmallCluster(2, RouterPolicy::kLengthBucketed);
  bad_router.router.length_edges.clear();
  EXPECT_THROW(ValidateClusterConfig(bad_router), std::invalid_argument);

  ServingCluster cluster(SmallModel(),
                         SmallCluster(2, RouterPolicy::kRoundRobin));
  EXPECT_THROW(cluster.SetOnline(2, false), std::invalid_argument);
  // A malformed caller embedding throws even in accounting-only mode
  // (where the tensor itself would be dropped).
  {
    auto virt = SmallCluster(2, RouterPolicy::kRoundRobin);
    for (auto& r : virt.replicas) r.engine.execute = false;
    ServingCluster sim(SmallModel(), virt);
    Rng rng(1);
    const std::size_t hidden = SmallModel().config().encoder.hidden;
    EXPECT_THROW(sim.Push({0.0, 16}, MakeInputEmbedding(rng, 8, hidden)),
                 std::invalid_argument);
    (void)sim.Drain();
  }
  EXPECT_THROW(
      {
        ASSERT_TRUE(cluster.Push({1.0, 16}));
        cluster.Push({0.5, 16});
      },
      std::invalid_argument);
  (void)cluster.Drain();
}

// ------------------------------------------------- Cluster end-to-end --

TEST(ServingClusterTest, RealExecutionBitExactVsSingleEngineReplay) {
  // Heterogeneous fleet: different service speeds and worker counts, so
  // least-outstanding-tokens routing makes non-trivial decisions, plus a
  // bounded queue so some requests are rejected.
  ClusterConfig cfg = SmallCluster(3, RouterPolicy::kLeastOutstandingTokens);
  cfg.replicas[0].engine.service = TokenLinearServiceModel(2e-5, 1e-3);
  cfg.replicas[1].engine.service = TokenLinearServiceModel(8e-5, 2e-3);
  cfg.replicas[1].engine.workers = 2;
  cfg.replicas[2].engine.service = PaddedServiceModel(5e-5, 1e-3);
  cfg.replicas[2].engine.queue_capacity = 2;
  cfg.embed_seed = 77;

  const auto trace = SmallTrace(40, 400);
  ServingCluster cluster(SmallModel(), cfg);
  const ClusterResult res = cluster.Replay(trace);
  ASSERT_EQ(res.replica_of.size(), trace.size());
  ASSERT_EQ(res.outputs.size(), trace.size());

  // Reference: one engine replaying the admitted set with the embeddings
  // the cluster synthesized (identity = cluster Push ordinal).
  ServingEngineConfig single = SmallReplica().engine;
  ServingEngine engine(SmallModel(), single);
  const std::size_t hidden = SmallModel().config().encoder.hidden;
  std::vector<std::size_t> admitted_ids;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (res.replica_of[i] == ClusterResult::npos()) continue;
    admitted_ids.push_back(i);
    ASSERT_TRUE(engine.Push(
        trace[i], SynthesizeRequestEmbedding(cfg.embed_seed, i,
                                             trace[i].length, hidden)));
  }
  const ServingResult ref = engine.Drain();
  ASSERT_EQ(ref.outputs.size(), admitted_ids.size());
  for (std::size_t k = 0; k < admitted_ids.size(); ++k) {
    EXPECT_EQ(res.outputs[admitted_ids[k]], ref.outputs[k])
        << "request " << admitted_ids[k];
  }
  // Rejected requests have no output.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (res.replica_of[i] == ClusterResult::npos()) {
      EXPECT_TRUE(res.outputs[i].empty()) << "request " << i;
    }
  }
}

TEST(ServingClusterTest, DeterministicAcrossThreadCounts) {
  const auto trace = SmallTrace(36, 300);
  ClusterResult reference;
  for (std::size_t threads : {1u, 2u, 4u}) {
    ClusterConfig cfg = SmallCluster(2, RouterPolicy::kJoinShortestQueue);
    for (auto& r : cfg.replicas) r.engine.threads = threads;
    ServingCluster cluster(SmallModel(), cfg);
    ClusterResult res = cluster.Replay(trace);
    if (threads == 1) {
      reference = std::move(res);
      continue;
    }
    EXPECT_EQ(res.replica_of, reference.replica_of);
    EXPECT_EQ(res.fleet().p50_latency_s, reference.fleet().p50_latency_s);
    EXPECT_EQ(res.fleet().p99_latency_s, reference.fleet().p99_latency_s);
    EXPECT_EQ(res.fleet().throughput_rps, reference.fleet().throughput_rps);
    EXPECT_EQ(res.report.mean_batch_fill, reference.report.mean_batch_fill);
    ASSERT_EQ(res.outputs.size(), reference.outputs.size());
    for (std::size_t i = 0; i < res.outputs.size(); ++i) {
      EXPECT_EQ(res.outputs[i], reference.outputs[i]) << "request " << i;
    }
  }
}

TEST(ServingClusterTest, VirtualTimeSweepIsByteIdenticalAcrossRuns) {
  const auto trace = SmallTrace(64, 500, 21);
  for (RouterPolicy policy :
       {RouterPolicy::kRoundRobin, RouterPolicy::kJoinShortestQueue,
        RouterPolicy::kLeastOutstandingTokens,
        RouterPolicy::kLengthBucketed}) {
    ClusterConfig cfg = SmallCluster(3, policy);
    for (auto& r : cfg.replicas) {
      r.engine.execute = false;  // accounting-only policy sweep
      r.engine.service = PaddedServiceModel(4e-5, 5e-4);
    }
    ClusterResult a;
    ClusterResult b;
    {
      ServingCluster cluster(SmallModel(), cfg);
      a = cluster.Replay(trace);
      // A second stream through the same cluster must reproduce the first.
      b = cluster.Replay(trace);
    }
    // Different thread knob, same virtual-time bytes.
    ClusterConfig cfg4 = cfg;
    for (auto& r : cfg4.replicas) r.engine.threads = 4;
    ServingCluster cluster4(SmallModel(), cfg4);
    const ClusterResult c = cluster4.Replay(trace);

    const ClusterResult* others[] = {&b, &c};
    for (const ClusterResult* other : others) {
      EXPECT_EQ(a.replica_of, other->replica_of) << RouterPolicyName(policy);
      EXPECT_EQ(a.fleet().mean_latency_s, other->fleet().mean_latency_s);
      EXPECT_EQ(a.fleet().p99_latency_s, other->fleet().p99_latency_s);
      EXPECT_EQ(a.fleet().device_busy_frac, other->fleet().device_busy_frac);
      EXPECT_EQ(a.report.mean_batch_fill, other->report.mean_batch_fill);
      EXPECT_EQ(a.report.request_imbalance, other->report.request_imbalance);
    }
    EXPECT_TRUE(a.outputs.empty());  // accounting-only: no tensors
  }
}

TEST(ServingClusterTest, FailoverRedistributesWithoutLosingAdmittedWork) {
  const auto trace = SmallTrace(30, 250, 5);
  ClusterConfig cfg = SmallCluster(2, RouterPolicy::kRoundRobin);
  ServingCluster cluster(SmallModel(), cfg);

  const std::size_t cut = trace.size() / 2;
  for (std::size_t i = 0; i < cut; ++i) ASSERT_TRUE(cluster.Push(trace[i]));
  cluster.SetOnline(0, false);  // mid-stream failover
  for (std::size_t i = cut; i < trace.size(); ++i) {
    ASSERT_TRUE(cluster.Push(trace[i]));
  }
  const ClusterResult res = cluster.Drain();

  // The router redistributed: nothing after the cut landed on replica 0...
  for (std::size_t i = cut; i < trace.size(); ++i) {
    EXPECT_EQ(res.replica_of[i], 1u) << "request " << i;
  }
  // ...but replica 0 drained everything it had already admitted: every
  // admitted request has exactly one (non-empty) output.
  EXPECT_EQ(res.routing.admitted, trace.size());
  EXPECT_EQ(res.routing.rejected, 0u);
  ASSERT_EQ(res.outputs.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_FALSE(res.outputs[i].empty()) << "request " << i;
  }
  EXPECT_EQ(res.report.replicas[0].requests +
                res.report.replicas[1].requests,
            trace.size());
  EXPECT_FALSE(res.report.replicas[0].online);
  EXPECT_TRUE(res.report.replicas[1].online);
}

TEST(ServingClusterTest, AllOfflineRejectsAsUnroutable) {
  ClusterConfig cfg = SmallCluster(2, RouterPolicy::kRoundRobin);
  ServingCluster cluster(SmallModel(), cfg);
  cluster.SetOnline(0, false);
  cluster.SetOnline(1, false);
  EXPECT_FALSE(cluster.Push({0.0, 16}));
  cluster.SetOnline(1, true);
  EXPECT_TRUE(cluster.Push({0.1, 16}));
  const ClusterResult res = cluster.Drain();
  EXPECT_EQ(res.routing.offered, 2u);
  EXPECT_EQ(res.routing.admitted, 1u);
  EXPECT_EQ(res.routing.rejected, 1u);
  EXPECT_EQ(res.routing.unroutable, 1u);
}

TEST(ServingClusterTest, BackpressureReroutesToNextChoiceBeforeRejecting) {
  // Glacial service + tiny queues: the round-robin-preferred replica can
  // be full while the other still has room, so the router bounces the
  // request down its ranking, and only a full fleet rejects.  (Under
  // join-shortest-queue the first choice is by construction never full
  // unless every replica is.)
  ClusterConfig cfg = SmallCluster(2, RouterPolicy::kRoundRobin);
  for (auto& r : cfg.replicas) {
    r.engine.service = TokenLinearServiceModel(0, 100.0);
    r.engine.former.max_batch = 2;
  }
  // Asymmetric waiting rooms so the smaller one fills while the other
  // still has room (equal rooms fill in lockstep under round-robin).
  cfg.replicas[0].engine.queue_capacity = 2;
  cfg.replicas[1].engine.queue_capacity = 5;
  ServingCluster cluster(SmallModel(), cfg);
  const auto trace = BimodalTrace(24, 1e-4, 24, 48);
  std::size_t pushed_ok = 0;
  for (const auto& r : trace) {
    if (cluster.Push(r)) ++pushed_ok;
  }
  const ClusterResult res = cluster.Drain();

  EXPECT_EQ(res.routing.offered, trace.size());
  EXPECT_EQ(res.routing.admitted, pushed_ok);
  EXPECT_EQ(res.routing.admitted + res.routing.rejected, trace.size());
  EXPECT_GT(res.routing.rejected, 0u);
  EXPECT_GT(res.routing.rerouted, 0u);
  EXPECT_EQ(res.routing.unroutable, 0u);  // fleet was online throughout

  // Cluster-level admission equals the sum over replica admissions, and
  // rejected requests appear in no replica's result.
  std::size_t replica_accepted = 0;
  std::size_t replica_outputs = 0;
  for (const auto& rr : res.replica_results) {
    replica_accepted += rr.admission.accepted;
    EXPECT_EQ(rr.admission.rejected, 0u);  // cluster pre-checks capacity
    replica_outputs += rr.outputs.size();
  }
  EXPECT_EQ(replica_accepted, res.routing.admitted);
  EXPECT_EQ(replica_outputs, res.routing.admitted);
}

TEST(ServingClusterTest, SingleReplicaFleetReportEqualsReplicaReport) {
  const auto trace = SmallTrace(24, 150, 13);
  ClusterConfig cfg = SmallCluster(1, RouterPolicy::kRoundRobin);
  cfg.replicas[0].engine.workers = 2;
  ServingCluster cluster(SmallModel(), cfg);
  const ClusterResult res = cluster.Replay(trace);

  const ServingReport& fleet = res.fleet();
  const ServingReport& rep = res.report.replicas[0].report;
  EXPECT_EQ(fleet.requests, rep.requests);
  EXPECT_EQ(fleet.batches, rep.batches);
  EXPECT_EQ(fleet.mean_batch_size, rep.mean_batch_size);
  EXPECT_DOUBLE_EQ(fleet.mean_latency_s, rep.mean_latency_s);
  EXPECT_DOUBLE_EQ(fleet.p50_latency_s, rep.p50_latency_s);
  EXPECT_DOUBLE_EQ(fleet.p99_latency_s, rep.p99_latency_s);
  EXPECT_DOUBLE_EQ(fleet.throughput_rps, rep.throughput_rps);
  EXPECT_DOUBLE_EQ(fleet.device_busy_frac, rep.device_busy_frac);
  EXPECT_DOUBLE_EQ(res.report.request_imbalance, 1.0);
  EXPECT_DOUBLE_EQ(res.report.token_imbalance, 1.0);
}

TEST(ServingClusterTest, FleetAccountingSumsAcrossReplicas) {
  const auto trace = SmallTrace(40, 300, 17);
  ClusterConfig cfg = SmallCluster(3, RouterPolicy::kRoundRobin);
  ServingCluster cluster(SmallModel(), cfg);
  const ClusterResult res = cluster.Replay(trace);

  std::size_t requests = 0;
  std::size_t batches = 0;
  std::size_t tokens = 0;
  for (const auto& acc : res.report.replicas) {
    requests += acc.requests;
    batches += acc.report.batches;
    tokens += acc.tokens;
  }
  EXPECT_EQ(res.fleet().requests, requests);
  EXPECT_EQ(res.fleet().requests, trace.size());
  EXPECT_EQ(res.fleet().batches, batches);
  EXPECT_EQ(tokens, TraceTokens(trace));
  EXPECT_GE(res.report.request_imbalance, 1.0);
  EXPECT_GE(res.report.token_imbalance, 1.0);
  EXPECT_GT(res.report.mean_batch_fill, 0.0);
  EXPECT_LE(res.report.mean_batch_fill, 1.0 + 1e-12);
}

TEST(ServingClusterTest, LengthBucketedBeatsRoundRobinOnBatchDensity) {
  // Bimodal lengths arriving back-to-back: round-robin mixes 16s and 128s
  // in every batch (fill ~ (16+128)/(2*128)), length-bucketed routing
  // keeps each replica's batches uniform (fill = 1).
  const auto trace = BimodalTrace(64, 5e-4, 16, 128);
  double fill[2];
  double p99[2];
  int i = 0;
  for (RouterPolicy policy :
       {RouterPolicy::kRoundRobin, RouterPolicy::kLengthBucketed}) {
    ClusterConfig cfg = SmallCluster(2, policy);
    for (auto& r : cfg.replicas) {
      r.engine.execute = false;
      r.engine.former.max_batch = 8;
      r.engine.service = PaddedServiceModel(1e-4, 1e-3);
    }
    cfg.router.length_edges = {32};
    ServingCluster cluster(SmallModel(), cfg);
    const ClusterResult res = cluster.Replay(trace);
    fill[i] = res.report.mean_batch_fill;
    p99[i] = res.fleet().p99_latency_s;
    ++i;
  }
  EXPECT_GT(fill[1], fill[0]);
  EXPECT_DOUBLE_EQ(fill[1], 1.0);  // uniform batches on both replicas
  EXPECT_LT(p99[1], p99[0]);      // padded backend: density is latency
}

}  // namespace
}  // namespace latte
