// Tests for the design-space search layer: DesignPoint exact JSON
// round-trip, unified per-field validation, menu-bounded mutation over
// long seeded walks, evaluator byte-determinism, thread-count-invariant
// annealing, and the headline gate -- SA matches or beats every
// hand-tuned bench_cluster baseline on the shared trace.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "latte/latte.hpp"

namespace latte {
namespace {

using search::AnnealingConfig;
using search::AnnealSearch;
using search::BackendSlots;
using search::CheckDesignPoint;
using search::CheckInSpace;
using search::DesignEvaluator;
using search::DesignPoint;
using search::DesignPointFromJson;
using search::DesignPointToJson;
using search::DesignScore;
using search::DesignSpace;
using search::Dominates;
using search::EvaluatorConfig;
using search::MutateDesign;
using search::ReplicaDesign;
using search::SampleDesign;
using search::SearchResult;

DesignPoint SmallDesign(std::size_t replicas = 2) {
  DesignPoint dp;
  for (std::size_t i = 0; i < replicas; ++i) {
    ReplicaDesign rd;
    rd.former.max_batch = 8;
    rd.former.timeout_s = 0.02;
    rd.workers = 1;
    rd.top_k = 30;
    dp.replicas.push_back(rd);
  }
  return dp;
}

/// The hand-tuned bench_cluster fleet shapes as DesignPoints: fleets of
/// 2 and 4 behind the four load-balancing policies, 8-deep 50 ms batch
/// formers, one worker per replica, no cache.
std::vector<DesignPoint> BenchClusterBaselines() {
  const std::vector<std::size_t> fleets = {2, 4};
  const std::vector<RouterPolicy> policies = {
      RouterPolicy::kRoundRobin, RouterPolicy::kJoinShortestQueue,
      RouterPolicy::kLeastOutstandingTokens, RouterPolicy::kLengthBucketed};
  std::vector<DesignPoint> baselines;
  for (const std::size_t fleet : fleets) {
    for (const RouterPolicy policy : policies) {
      DesignPoint dp;
      for (std::size_t i = 0; i < fleet; ++i) {
        ReplicaDesign rd;
        rd.former.max_batch = 8;
        rd.former.timeout_s = 0.05;
        rd.workers = 1;
        rd.top_k = 30;
        dp.replicas.push_back(rd);
      }
      dp.router.policy = policy;
      if (policy == RouterPolicy::kLengthBucketed) {
        dp.router.length_edges = fleet >= 4
                                     ? std::vector<std::size_t>{105, 152, 219}
                                     : std::vector<std::size_t>{152};
      }
      baselines.push_back(dp);
    }
  }
  return baselines;
}

const DesignEvaluator& SharedEvaluator() {
  static DesignEvaluator evaluator{EvaluatorConfig{}};
  return evaluator;
}

TEST(DesignPointTest, JsonRoundTripIsExact) {
  DesignPoint dp = SmallDesign(2);
  dp.replicas[1].backend = BackendMode::kSharded;
  dp.replicas[1].shard.degree = 4;
  dp.replicas[1].former.timeout_s = 0.1 / 3.0;  // not exactly representable
  dp.replicas[1].former.sort_by_length = true;
  dp.router.policy = RouterPolicy::kLengthBucketed;
  dp.router.length_edges = {105, 152, 219};
  dp.cache_mode = ClusterCacheMode::kShared;
  dp.cache.enabled = true;
  dp.cache.eviction = EvictionPolicy::kSegmentedLru;
  dp.cache.capacity_bytes = 8u << 20;
  dp.cache.ttl_s = 12.5;

  const std::string json = DesignPointToJson(dp);
  const DesignPoint back = DesignPointFromJson(json);
  EXPECT_EQ(json, DesignPointToJson(back));
  EXPECT_EQ(back.replicas[1].former.timeout_s,
            dp.replicas[1].former.timeout_s);  // bit-exact double
  EXPECT_EQ(back.replicas[1].backend, BackendMode::kSharded);
  EXPECT_TRUE(back.cache.enabled);  // implied by mode on parse
  EXPECT_TRUE(CheckDesignPoint(back).empty());
}

TEST(DesignPointTest, JsonRejectsMalformedInput) {
  EXPECT_THROW(DesignPointFromJson("{"), std::invalid_argument);
  EXPECT_THROW(DesignPointFromJson("{}"), std::invalid_argument);
  const std::string json = DesignPointToJson(SmallDesign());
  EXPECT_THROW(DesignPointFromJson(json + "x"), std::invalid_argument);
}

TEST(DesignPointTest, CheckNamesEveryIllegalField) {
  DesignPoint dp = SmallDesign(2);
  dp.replicas[0].former.max_batch = 0;
  dp.replicas[1].workers = 0;
  dp.replicas[1].top_k = 0;
  ConfigIssues issues = CheckDesignPoint(dp);
  EXPECT_TRUE(HasIssueFor(issues, "replicas[0].former.max_batch"));
  EXPECT_TRUE(HasIssueFor(issues, "replicas[1].workers"));
  EXPECT_TRUE(HasIssueFor(issues, "replicas[1].top_k"));

  dp = SmallDesign(1);
  dp.replicas[0].backend = BackendMode::kSharded;
  dp.replicas[0].shard.degree = 1;
  EXPECT_TRUE(HasIssueFor(CheckDesignPoint(dp), "replicas[0].shard.degree"));

  dp = SmallDesign(2);
  dp.router.policy = RouterPolicy::kLengthBucketed;  // no edges
  EXPECT_TRUE(HasIssueFor(CheckDesignPoint(dp), "router.length_edges"));

  dp = SmallDesign(2);
  dp.cache_mode = ClusterCacheMode::kShared;
  dp.cache.eviction = EvictionPolicy::kSegmentedLru;
  dp.cache.protected_fraction = 0;
  EXPECT_TRUE(
      HasIssueFor(CheckDesignPoint(dp), "cache.protected_fraction"));

  EXPECT_TRUE(HasIssueFor(CheckDesignPoint(DesignPoint{}), "replicas"));
  EXPECT_TRUE(CheckDesignPoint(SmallDesign()).empty());
}

TEST(DesignPointTest, AdaptersMatchHandWrittenConfigs) {
  DesignPoint dp = SmallDesign(2);
  dp.replicas[0].queue_capacity = 64;
  dp.replicas[0].top_k = 16;
  dp.cache_mode = ClusterCacheMode::kPerReplica;
  dp.cache.enabled = true;
  const ClusterConfig cfg = search::ClusterConfigFromDesignPoint(dp);
  ASSERT_EQ(cfg.replicas.size(), 2u);
  EXPECT_EQ(cfg.replicas[0].engine.former.max_batch, 8u);
  EXPECT_EQ(cfg.replicas[0].engine.queue_capacity, 64u);
  EXPECT_EQ(cfg.replicas[0].engine.inference.sparse.top_k, 16u);
  EXPECT_EQ(cfg.cache.mode, ClusterCacheMode::kPerReplica);
  EXPECT_EQ(cfg.router.policy, dp.router.policy);
}

TEST(DesignSpaceTest, SampleAlwaysLandsInSpace) {
  const DesignSpace space;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const DesignPoint dp = SampleDesign(space, rng);
    const ConfigIssues issues = CheckInSpace(space, dp);
    ASSERT_TRUE(issues.empty())
        << issues[0].field << " " << issues[0].reason;
    EXPECT_LE(BackendSlots(dp), space.max_backend_slots);
  }
}

TEST(DesignSpaceTest, MutationStaysMenuValuedOverTenThousandSteps) {
  const DesignSpace space;
  Rng rng(17);
  DesignPoint cur = SampleDesign(space, rng);
  std::size_t over_budget = 0;
  for (int step = 0; step < 10000; ++step) {
    const DesignPoint prop = MutateDesign(space, cur, rng);
    const ConfigIssues issues = CheckInSpace(space, prop);
    if (issues.empty()) {
      cur = prop;
      continue;
    }
    // The only legal way out of the space is the slot budget; every knob
    // must stay on its menu.
    for (const ConfigIssue& issue : issues) {
      EXPECT_EQ(issue.field, "replicas") << issue.field << " " << issue.reason;
    }
    ++over_budget;
  }
  EXPECT_GT(over_budget, 0u);  // the rejection path is actually exercised
}

TEST(DesignSpaceTest, CheckInSpaceNamesOffMenuKnobs) {
  const DesignSpace space;
  DesignPoint dp = SmallDesign(1);
  dp.replicas[0].former.max_batch = 7;  // legal, but off the menu
  EXPECT_TRUE(
      HasIssueFor(CheckInSpace(space, dp), "replicas[0].former.max_batch"));
  dp = SmallDesign(1);
  dp.replicas[0].workers = 4;
  dp.replicas[0].backend = BackendMode::kSharded;
  dp.replicas[0].shard.degree = 2;  // 8 slots > budget of 6
  EXPECT_TRUE(HasIssueFor(CheckInSpace(space, dp), "replicas"));
}

TEST(DesignEvaluatorTest, EvaluationIsByteDeterministic) {
  const DesignEvaluator& evaluator = SharedEvaluator();
  DesignPoint dp = BenchClusterBaselines()[3];  // 2x length-bucketed
  dp.cache_mode = ClusterCacheMode::kShared;
  dp.cache.enabled = true;
  const DesignScore a = evaluator.Evaluate(dp);
  const DesignScore b = evaluator.Evaluate(dp);
  const DesignScore c = DesignEvaluator(EvaluatorConfig{}).Evaluate(dp);
  ASSERT_TRUE(a.valid);
  for (const DesignScore* s : {&b, &c}) {
    EXPECT_EQ(a.p99_s, s->p99_s);
    EXPECT_EQ(a.throughput_rps, s->throughput_rps);
    EXPECT_EQ(a.energy_j, s->energy_j);
    EXPECT_EQ(a.cost, s->cost);
    EXPECT_EQ(a.completed, s->completed);
    EXPECT_EQ(a.rejected, s->rejected);
  }
}

TEST(DesignEvaluatorTest, InvalidDesignsComeBackRejectedNotThrown) {
  DesignPoint dp = SmallDesign(1);
  dp.replicas[0].workers = 0;
  const DesignScore score = SharedEvaluator().Evaluate(dp);
  EXPECT_FALSE(score.valid);
  EXPECT_TRUE(HasIssueFor(score.issues, "replicas[0].workers"));
  EXPECT_TRUE(std::isinf(score.cost));
}

TEST(AnnealingTest, PortableExpMatchesLibmClosely) {
  for (double x = -30; x <= 0; x += 0.37) {
    EXPECT_NEAR(search::PortableExp(x), std::exp(x),
                std::abs(std::exp(x)) * 1e-9 + 1e-300);
  }
  EXPECT_EQ(search::PortableExp(0), 1.0);
  EXPECT_EQ(search::PortableExp(-1000), 0.0);
}

TEST(AnnealingTest, SearchIsDeterministicAtAnyThreadCount) {
  const DesignSpace space;
  AnnealingConfig cfg;
  cfg.chains = 3;
  cfg.steps = 15;
  cfg.seed = 5;
  cfg.threads = 1;
  const SearchResult one = AnnealSearch(space, SharedEvaluator(), cfg);
  cfg.threads = 4;
  const SearchResult four = AnnealSearch(space, SharedEvaluator(), cfg);

  ASSERT_TRUE(one.best_score.valid);
  EXPECT_EQ(DesignPointToJson(one.best), DesignPointToJson(four.best));
  EXPECT_EQ(one.best_score.cost, four.best_score.cost);
  EXPECT_EQ(one.best_chain, four.best_chain);
  EXPECT_EQ(one.evaluations, four.evaluations);
  ASSERT_EQ(one.pareto.size(), four.pareto.size());
  for (std::size_t i = 0; i < one.pareto.size(); ++i) {
    EXPECT_EQ(DesignPointToJson(one.pareto[i].point),
              DesignPointToJson(four.pareto[i].point));
    EXPECT_EQ(one.pareto[i].score.cost, four.pareto[i].score.cost);
  }
  ASSERT_EQ(one.chains.size(), four.chains.size());
  for (std::size_t i = 0; i < one.chains.size(); ++i) {
    EXPECT_EQ(one.chains[i].proposed, four.chains[i].proposed);
    EXPECT_EQ(one.chains[i].invalid, four.chains[i].invalid);
    EXPECT_EQ(one.chains[i].accepted, four.chains[i].accepted);
    EXPECT_EQ(one.chains[i].best_cost, four.chains[i].best_cost);
  }
}

TEST(AnnealingTest, ParetoFrontIsNonDominatedAndCountsInvalids) {
  const DesignSpace space;
  AnnealingConfig cfg;
  cfg.chains = 2;
  cfg.steps = 30;
  cfg.seed = 9;
  cfg.threads = 2;
  const SearchResult result = AnnealSearch(space, SharedEvaluator(), cfg);
  ASSERT_FALSE(result.pareto.empty());
  for (std::size_t i = 0; i < result.pareto.size(); ++i) {
    for (std::size_t j = 0; j < result.pareto.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(
          Dominates(result.pareto[i].score, result.pareto[j].score));
    }
  }
  std::size_t invalid = 0;
  for (const search::ChainStats& chain : result.chains) {
    invalid += chain.invalid;
  }
  EXPECT_GT(invalid, 0u);  // rejected mutations flow through the validators
}

TEST(AnnealingTest, BeatsOrTiesEveryHandTunedBaseline) {
  const DesignEvaluator& evaluator = SharedEvaluator();
  std::vector<DesignScore> baseline_scores;
  double best_baseline_cost = std::numeric_limits<double>::infinity();
  for (const DesignPoint& baseline : BenchClusterBaselines()) {
    ASSERT_TRUE(CheckInSpace(DesignSpace{}, baseline).empty());
    const DesignScore score = evaluator.Evaluate(baseline);
    ASSERT_TRUE(score.valid);
    best_baseline_cost = std::min(best_baseline_cost, score.cost);
    baseline_scores.push_back(score);
  }

  AnnealingConfig cfg;
  cfg.chains = 3;
  cfg.steps = 60;
  cfg.seed = 1;
  const SearchResult result =
      AnnealSearch(DesignSpace{}, evaluator, cfg);
  ASSERT_TRUE(result.best_score.valid);
  EXPECT_LE(result.best_score.cost, best_baseline_cost);
  for (const DesignScore& baseline : baseline_scores) {
    EXPECT_FALSE(Dominates(baseline, result.best_score));
  }
}

}  // namespace
}  // namespace latte
