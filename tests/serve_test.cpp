// Tests for the streaming serving subsystem: Poisson traces, the shared
// length-aware batch former (capacity / token-budget / timeout seals),
// virtual-time dispatch, and the ServingEngine -- deterministic replay at
// any thread count, bit-exact outputs vs sequential forward, backpressure
// accounting, and field-for-field agreement with the FPGA serving
// simulator on a shared trace.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "latte/latte.hpp"

namespace latte {
namespace {

std::vector<TimedRequest> HandTrace(
    std::initializer_list<std::pair<double, std::size_t>> rows) {
  std::vector<TimedRequest> trace;
  for (const auto& [t, len] : rows) trace.push_back({t, len});
  return trace;
}

// ------------------------------------------------------- Poisson trace --

TEST(PoissonTraceTest, DeterministicOrderedAndDatasetShaped) {
  PoissonTraceConfig cfg;
  cfg.arrival_rate_rps = 100;
  cfg.requests = 200;
  cfg.seed = 5;
  const auto a = GeneratePoissonTrace(cfg, Mrpc());
  const auto b = GeneratePoissonTrace(cfg, Mrpc());
  ASSERT_EQ(a.size(), 200u);
  const auto spec = Mrpc();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].length, b[i].length);
    if (i > 0) {
      EXPECT_GT(a[i].arrival_s, a[i - 1].arrival_s);
    }
    EXPECT_GE(static_cast<double>(a[i].length), spec.min_len);
    EXPECT_LE(static_cast<double>(a[i].length), spec.max_len);
  }
  EXPECT_GT(TraceTokens(a), 0u);
}

TEST(PoissonTraceTest, ValidatesConfig) {
  PoissonTraceConfig cfg;
  cfg.arrival_rate_rps = 0;
  EXPECT_THROW(GeneratePoissonTrace(cfg, Mrpc()), std::invalid_argument);
  cfg.arrival_rate_rps = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(GeneratePoissonTrace(cfg, Mrpc()), std::invalid_argument);
  cfg.arrival_rate_rps = 10;
  cfg.requests = 0;
  EXPECT_THROW(GeneratePoissonTrace(cfg, Mrpc()), std::invalid_argument);
}

// -------------------------------------------------------- Batch former --

TEST(BatchFormerTest, CapacitySealsAtFillingArrival) {
  const auto trace =
      HandTrace({{0.000, 10}, {0.002, 20}, {0.004, 30}, {0.006, 40}});
  BatchFormerConfig cfg;
  cfg.max_batch = 2;
  cfg.timeout_s = 0.05;
  const auto batches = FormBatches(trace, cfg);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].indices, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(batches[0].seal, BatchSeal::kCapacity);
  EXPECT_DOUBLE_EQ(batches[0].ready_s, 0.002);
  EXPECT_EQ(batches[0].tokens, 30u);
  EXPECT_EQ(batches[1].indices, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(batches[1].seal, BatchSeal::kCapacity);
  EXPECT_DOUBLE_EQ(batches[1].ready_s, 0.006);
}

TEST(BatchFormerTest, TimeoutSealsAtDeadlineIncludingTrailingBatch) {
  const auto trace = HandTrace({{0.000, 10}, {0.005, 20}, {0.100, 30}});
  BatchFormerConfig cfg;
  cfg.max_batch = 8;
  cfg.timeout_s = 0.02;
  const auto batches = FormBatches(trace, cfg);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].indices, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(batches[0].seal, BatchSeal::kTimeout);
  EXPECT_DOUBLE_EQ(batches[0].ready_s, 0.02);
  // A streaming former cannot know the stream ended: the trailing batch
  // waits out its timer too.
  EXPECT_EQ(batches[1].indices, (std::vector<std::size_t>{2}));
  EXPECT_EQ(batches[1].seal, BatchSeal::kTimeout);
  EXPECT_DOUBLE_EQ(batches[1].ready_s, 0.12);
}

TEST(BatchFormerTest, TokenBudgetSealsAndOversizeRequestStaysSingleton) {
  const auto trace =
      HandTrace({{0.000, 60}, {0.001, 60}, {0.002, 200}, {0.003, 30}});
  BatchFormerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_tokens = 100;
  cfg.timeout_s = 0.05;
  const auto batches = FormBatches(trace, cfg);
  ASSERT_EQ(batches.size(), 4u);
  // 60 + 60 > 100: the second request seals the first batch at its own
  // arrival and opens the next one.
  EXPECT_EQ(batches[0].indices, (std::vector<std::size_t>{0}));
  EXPECT_EQ(batches[0].seal, BatchSeal::kTokenBudget);
  EXPECT_DOUBLE_EQ(batches[0].ready_s, 0.001);
  // The 200-token request exceeds the budget alone but is never blocked:
  // it forms its own batch (sealed when the 30-token request overflows).
  EXPECT_EQ(batches[1].indices, (std::vector<std::size_t>{1}));
  EXPECT_EQ(batches[2].indices, (std::vector<std::size_t>{2}));
  EXPECT_EQ(batches[2].seal, BatchSeal::kTokenBudget);
  EXPECT_EQ(batches[2].tokens, 200u);
  EXPECT_EQ(batches[3].indices, (std::vector<std::size_t>{3}));
  EXPECT_EQ(batches[3].seal, BatchSeal::kTimeout);
}

TEST(BatchFormerTest, ZeroTimeoutOnlyBatchesSimultaneousArrivals) {
  const auto trace = HandTrace({{0.000, 10}, {0.000, 20}, {0.010, 30}});
  BatchFormerConfig cfg;
  cfg.max_batch = 8;
  cfg.timeout_s = 0;
  const auto batches = FormBatches(trace, cfg);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].indices, (std::vector<std::size_t>{0, 1}));
  EXPECT_DOUBLE_EQ(batches[0].ready_s, 0.0);
  EXPECT_EQ(batches[1].indices, (std::vector<std::size_t>{2}));
}

TEST(BatchFormerTest, SortByLengthReordersWithinBatchOnly) {
  const auto trace =
      HandTrace({{0.000, 10}, {0.001, 40}, {0.002, 20}, {0.050, 30}});
  BatchFormerConfig cfg;
  cfg.max_batch = 8;
  cfg.timeout_s = 0.02;
  BatchFormerConfig sorted = cfg;
  sorted.sort_by_length = true;
  const auto plain = FormBatches(trace, cfg);
  const auto desc = FormBatches(trace, sorted);
  ASSERT_EQ(plain.size(), desc.size());
  ASSERT_EQ(plain.size(), 2u);
  EXPECT_EQ(plain[0].indices, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(desc[0].indices, (std::vector<std::size_t>{1, 2, 0}));
  EXPECT_EQ(plain[0].tokens, desc[0].tokens);
  EXPECT_EQ(desc[0].ready_s, plain[0].ready_s);
  const auto lens = BatchLengths(trace, desc[0]);
  EXPECT_EQ(lens, (std::vector<std::size_t>{40, 20, 10}));
}

TEST(BatchFormerTest, ValidatesConfig) {
  BatchFormerConfig cfg;
  cfg.max_batch = 0;
  EXPECT_THROW(ValidateBatchFormerConfig(cfg), std::invalid_argument);
  cfg.max_batch = 4;
  cfg.timeout_s = -1;
  EXPECT_THROW(ValidateBatchFormerConfig(cfg), std::invalid_argument);
  cfg.timeout_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(ValidateBatchFormerConfig(cfg), std::invalid_argument);
  cfg.timeout_s = 0.01;
  EXPECT_NO_THROW(ValidateBatchFormerConfig(cfg));
}

// ------------------------------------------------------------ Dispatch --

TEST(DispatchTest, SingleRequestLatencyIsTimeoutPlusService) {
  const auto trace = HandTrace({{0.5, 25}});
  BatchFormerConfig former;
  former.max_batch = 4;
  former.timeout_s = 0.05;
  const auto batches = FormBatches(trace, former);
  const auto service = TokenLinearServiceModel(1e-3, 0.01);  // 25ms + 10ms
  const auto sched = ScheduleFormedBatches(trace, batches, 1, service);
  ASSERT_EQ(sched.report.requests, 1u);
  EXPECT_NEAR(sched.report.mean_latency_s, 0.05 + 0.025 + 0.01, 1e-12);
  EXPECT_DOUBLE_EQ(sched.launch_s[0], 0.55);
  EXPECT_NEAR(sched.done_s[0], 0.55 + 0.035, 1e-12);
}

TEST(DispatchTest, SecondWorkerAbsorbsConcurrentBatches) {
  // Two batches sealed close together; one worker serializes them, two
  // run them concurrently.
  const auto trace = HandTrace({{0.00, 50}, {0.001, 50}, {0.02, 50}});
  BatchFormerConfig former;
  former.max_batch = 2;
  former.timeout_s = 0.005;
  const auto batches = FormBatches(trace, former);
  ASSERT_EQ(batches.size(), 2u);
  const auto service = TokenLinearServiceModel(0, 1.0);  // 1 s per batch
  const auto one = ScheduleFormedBatches(trace, batches, 1, service);
  const auto two = ScheduleFormedBatches(trace, batches, 2, service);
  EXPECT_GT(one.done_s[1], two.done_s[1] + 0.9);
  EXPECT_GT(one.report.p99_latency_s, two.report.p99_latency_s);
  EXPECT_LE(two.report.device_busy_frac, 1.0 + 1e-9);
  EXPECT_THROW(ScheduleFormedBatches(trace, batches, 0, service),
               std::invalid_argument);
}

// ------------------------------------------------------- ServingEngine --

ModelInstance& SmallModel() {
  static ModelInstance model(ScaledDown(BertBase(), 6), 2022);
  return model;
}

ServingEngineConfig SmallEngineConfig() {
  ServingEngineConfig cfg;
  cfg.former.max_batch = 6;
  cfg.former.timeout_s = 0.02;
  cfg.workers = 2;
  cfg.threads = 2;
  cfg.inference.mode = InferenceMode::kSparseInt8;
  cfg.inference.sparse.top_k = 16;
  return cfg;
}

std::vector<TimedRequest> SmallTrace(std::size_t requests = 40) {
  PoissonTraceConfig cfg;
  cfg.arrival_rate_rps = 200;
  cfg.requests = requests;
  cfg.seed = 11;
  return GeneratePoissonTrace(cfg, Mrpc());
}

TEST(ServingEngineTest, ReplayIsDeterministicAtAnyThreadCount) {
  const auto trace = SmallTrace();
  ServingResult reference;
  for (std::size_t threads : {1u, 2u, 4u}) {
    auto cfg = SmallEngineConfig();
    cfg.threads = threads;
    ServingEngine engine(SmallModel(), cfg);
    ServingResult res = engine.Replay(trace);
    if (threads == 1) {
      reference = std::move(res);
      continue;
    }
    // Identical batches...
    ASSERT_EQ(res.batches.size(), reference.batches.size());
    for (std::size_t b = 0; b < res.batches.size(); ++b) {
      EXPECT_EQ(res.batches[b].indices, reference.batches[b].indices);
      EXPECT_EQ(res.batches[b].ready_s, reference.batches[b].ready_s);
      EXPECT_EQ(res.batches[b].seal, reference.batches[b].seal);
    }
    // ...identical report (virtual time: exact equality, not tolerance)...
    EXPECT_EQ(res.report().mean_latency_s, reference.report().mean_latency_s);
    EXPECT_EQ(res.report().p50_latency_s, reference.report().p50_latency_s);
    EXPECT_EQ(res.report().p99_latency_s, reference.report().p99_latency_s);
    EXPECT_EQ(res.report().throughput_rps, reference.report().throughput_rps);
    EXPECT_EQ(res.report().device_busy_frac,
              reference.report().device_busy_frac);
    // ...and bit-identical outputs.
    ASSERT_EQ(res.outputs.size(), reference.outputs.size());
    for (std::size_t i = 0; i < res.outputs.size(); ++i) {
      EXPECT_EQ(res.outputs[i], reference.outputs[i]) << "request " << i;
    }
  }
}

TEST(ServingEngineTest, OutputsBitExactVsSequentialForward) {
  const auto trace = SmallTrace(24);
  auto cfg = SmallEngineConfig();
  cfg.former.sort_by_length = true;  // exercise reordered dispatch
  ServingEngine engine(SmallModel(), cfg);

  // Push caller-provided embeddings so the sequential reference sees the
  // exact same inputs.
  Rng rng(33);
  std::vector<MatrixF> inputs;
  const std::size_t hidden = SmallModel().config().encoder.hidden;
  for (const auto& r : trace) {
    inputs.push_back(MakeInputEmbedding(rng, r.length, hidden));
    ASSERT_TRUE(engine.Push(r, inputs.back()));
  }
  const ServingResult res = engine.Drain();

  ASSERT_EQ(res.outputs.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(res.outputs[i], SmallModel().Forward(inputs[i], cfg.inference))
        << "request " << i;
  }
}

TEST(ServingEngineTest, EngineBatchesMatchSharedFormer) {
  const auto trace = SmallTrace();
  ServingEngine engine(SmallModel(), SmallEngineConfig());
  const ServingResult res = engine.Replay(trace);
  const auto expected = FormBatches(trace, SmallEngineConfig().former);
  ASSERT_EQ(res.batches.size(), expected.size());
  for (std::size_t b = 0; b < expected.size(); ++b) {
    EXPECT_EQ(res.batches[b].indices, expected[b].indices);
    EXPECT_EQ(res.batches[b].open_s, expected[b].open_s);
    EXPECT_EQ(res.batches[b].ready_s, expected[b].ready_s);
    EXPECT_EQ(res.batches[b].tokens, expected[b].tokens);
    EXPECT_EQ(res.batches[b].seal, expected[b].seal);
  }
}

TEST(ServingEngineTest, AgreesWithSimulatorOnSharedScenario) {
  ServingConfig scenario;
  scenario.arrival_rate_rps = 80;
  scenario.former.max_batch = 8;
  scenario.former.timeout_s = 0.02;
  scenario.requests = 48;
  scenario.seed = 3;
  scenario.workers = 2;

  const ServingReport sim = SimulateServing(BertBase(), Mrpc(), scenario);

  auto cfg = SmallEngineConfig();
  cfg.former = ServingBatchFormer(scenario);
  cfg.workers = scenario.workers;
  ServiceModelSpec spec;
  spec.base = ServiceModelSpec::Base::kAccelerator;
  spec.model = BertBase();
  spec.accel = scenario.accel;
  cfg.service = BuildServiceModel(spec);
  ServingEngine engine(SmallModel(), cfg);
  const auto trace = GeneratePoissonTrace(ServingTrace(scenario), Mrpc());
  const ServingResult res = engine.Replay(trace);
  const ServingReport& rep = res.report();

  // Same trace, same former, same service model, same accounting: the
  // functional engine reproduces the performance twin field for field.
  EXPECT_EQ(rep.requests, sim.requests);
  EXPECT_EQ(rep.batches, sim.batches);
  EXPECT_EQ(rep.mean_batch_size, sim.mean_batch_size);
  EXPECT_EQ(rep.mean_latency_s, sim.mean_latency_s);
  EXPECT_EQ(rep.p50_latency_s, sim.p50_latency_s);
  EXPECT_EQ(rep.p95_latency_s, sim.p95_latency_s);
  EXPECT_EQ(rep.p99_latency_s, sim.p99_latency_s);
  EXPECT_EQ(rep.throughput_rps, sim.throughput_rps);
  EXPECT_EQ(rep.device_busy_frac, sim.device_busy_frac);
  // And it actually computed something the simulator cannot: outputs.
  EXPECT_EQ(res.outputs.size(), scenario.requests);
}

TEST(ServingEngineTest, BoundedQueueRejectsAndAccountsConsistently) {
  auto cfg = SmallEngineConfig();
  cfg.queue_capacity = 4;
  // Glacial service: the queue cannot drain, so a burst must bounce.
  cfg.service = TokenLinearServiceModel(0, 10.0);
  ServingEngine engine(SmallModel(), cfg);

  const auto trace = SmallTrace(32);
  std::size_t bounced = 0;
  for (const auto& r : trace) {
    if (!engine.Push(r)) ++bounced;
  }
  EXPECT_GT(bounced, 0u);
  const ServingResult res = engine.Drain();

  EXPECT_EQ(res.admission.offered, trace.size());
  EXPECT_EQ(res.admission.accepted + res.admission.rejected, trace.size());
  EXPECT_EQ(res.admission.rejected, bounced);
  EXPECT_EQ(res.report().requests, res.admission.accepted);
  EXPECT_EQ(res.outputs.size(), res.admission.accepted);
  EXPECT_LE(res.admission.peak_queue, cfg.queue_capacity);
  EXPECT_GE(res.admission.peak_queue, 1u);

  // The admitted sub-trace forms exactly the batches the engine executed.
  std::vector<TimedRequest> admitted;
  for (std::size_t id : res.offered_ids) admitted.push_back(trace[id]);
  const auto expected = FormBatches(admitted, cfg.former);
  ASSERT_EQ(res.batches.size(), expected.size());
  for (std::size_t b = 0; b < expected.size(); ++b) {
    EXPECT_EQ(res.batches[b].indices, expected[b].indices);
  }
}

TEST(ServingEngineTest, UnboundedQueueAcceptsEverything) {
  auto cfg = SmallEngineConfig();
  cfg.service = TokenLinearServiceModel(0, 10.0);  // still glacial
  ServingEngine engine(SmallModel(), cfg);
  const auto trace = SmallTrace(16);
  const ServingResult res = engine.Replay(trace);
  EXPECT_EQ(res.admission.rejected, 0u);
  EXPECT_EQ(res.admission.accepted, trace.size());
  // The waiting room only holds unlaunched requests: early batches launch
  // onto the free workers, so the peak sits below the trace size.
  EXPECT_GE(res.admission.peak_queue, 1u);
  EXPECT_LE(res.admission.peak_queue, trace.size());
}

TEST(ServingEngineTest, BurstyArrivalsKeepAdmissionInvariants) {
  // Bursts of simultaneous arrivals against a small waiting room: offered
  // must split exactly into accepted + rejected, the peak queue must
  // respect the bound, and no rejected request may leak into the result.
  auto cfg = SmallEngineConfig();
  cfg.queue_capacity = 5;
  cfg.former.max_batch = 4;
  cfg.service = TokenLinearServiceModel(1e-4, 5e-3);

  ServingEngine engine(SmallModel(), cfg);
  std::vector<bool> accepted;
  std::size_t offered = 0;
  for (std::size_t burst = 0; burst < 6; ++burst) {
    const double t = 0.01 * static_cast<double>(burst);
    for (std::size_t i = 0; i < 8; ++i) {  // 8 simultaneous arrivals
      accepted.push_back(engine.Push({t, 16 + 8 * (i % 3)}));
      ++offered;
      EXPECT_EQ(engine.admission().offered, offered);
      EXPECT_EQ(engine.admission().accepted + engine.admission().rejected,
                offered);
      EXPECT_LE(engine.queue_depth(), cfg.queue_capacity);
    }
  }
  const ServingResult res = engine.Drain();

  const std::size_t accepted_count = static_cast<std::size_t>(
      std::count(accepted.begin(), accepted.end(), true));
  EXPECT_GT(accepted_count, 0u);
  EXPECT_LT(accepted_count, offered);  // the bursts must overflow the room
  EXPECT_EQ(res.admission.offered, offered);
  EXPECT_EQ(res.admission.accepted, accepted_count);
  EXPECT_EQ(res.admission.rejected, offered - accepted_count);
  EXPECT_LE(res.admission.peak_queue, cfg.queue_capacity);

  // Rejected requests never appear in the result: outputs, report and the
  // offered-id mapping all cover exactly the accepted set.
  EXPECT_EQ(res.outputs.size(), accepted_count);
  EXPECT_EQ(res.report().requests, accepted_count);
  ASSERT_EQ(res.offered_ids.size(), accepted_count);
  std::size_t batched = 0;
  for (const FormedBatch& b : res.batches) batched += b.indices.size();
  EXPECT_EQ(batched, accepted_count);
  for (std::size_t id : res.offered_ids) {
    ASSERT_LT(id, accepted.size());
    EXPECT_TRUE(accepted[id]) << "rejected request " << id << " in result";
  }
}

TEST(ServingEngineTest, IntrospectionTracksVirtualTimeLoad) {
  auto cfg = SmallEngineConfig();
  cfg.former.max_batch = 2;
  cfg.former.timeout_s = 0.01;
  cfg.workers = 1;
  cfg.service = TokenLinearServiceModel(0, 1.0);  // 1 s per batch
  ServingEngine engine(SmallModel(), cfg);

  EXPECT_EQ(engine.queue_depth(), 0u);
  EXPECT_EQ(engine.outstanding_tokens(), 0u);
  ASSERT_TRUE(engine.Push({0.0, 30}));
  EXPECT_EQ(engine.queue_depth(), 1u);
  EXPECT_EQ(engine.outstanding_tokens(), 30u);
  // Capacity seal at the second arrival: the batch launches immediately
  // (the worker is free), so the waiting room empties but the tokens stay
  // outstanding until the batch completes in virtual time.
  ASSERT_TRUE(engine.Push({0.001, 20}));
  engine.AdvanceTo(0.001);
  EXPECT_EQ(engine.queue_depth(), 0u);
  EXPECT_EQ(engine.outstanding_tokens(), 50u);
  // A later batch waits behind the 1 s service: it stays queued.
  ASSERT_TRUE(engine.Push({0.002, 40}));
  ASSERT_TRUE(engine.Push({0.003, 10}));
  engine.AdvanceTo(0.003);
  EXPECT_EQ(engine.queue_depth(), 2u);
  EXPECT_EQ(engine.outstanding_tokens(), 100u);
  // Past the first batch's completion the second launches; past both
  // completions nothing is outstanding.  AdvanceTo is idempotent.
  engine.AdvanceTo(1.5);
  engine.AdvanceTo(1.5);
  EXPECT_EQ(engine.queue_depth(), 0u);
  EXPECT_EQ(engine.outstanding_tokens(), 50u);
  engine.AdvanceTo(3.0);
  EXPECT_EQ(engine.outstanding_tokens(), 0u);
  (void)engine.Drain();
}

TEST(ServingEngineTest, AccountingOnlyModeSkipsTensorsButKeepsReport) {
  const auto trace = SmallTrace(20);
  auto cfg = SmallEngineConfig();
  ServingEngine functional(SmallModel(), cfg);
  const ServingResult real = functional.Replay(trace);

  auto virt_cfg = cfg;
  virt_cfg.execute = false;
  ServingEngine virt(SmallModel(), virt_cfg);
  const ServingResult sim = virt.Replay(trace);

  EXPECT_TRUE(sim.outputs.empty());
  EXPECT_EQ(sim.wall_s, 0.0);
  ASSERT_EQ(sim.batches.size(), real.batches.size());
  for (std::size_t b = 0; b < sim.batches.size(); ++b) {
    EXPECT_EQ(sim.batches[b].indices, real.batches[b].indices);
  }
  EXPECT_EQ(sim.report().mean_latency_s, real.report().mean_latency_s);
  EXPECT_EQ(sim.report().p99_latency_s, real.report().p99_latency_s);
  EXPECT_EQ(sim.report().throughput_rps, real.report().throughput_rps);
}

TEST(DispatchTest, PaddedServiceModelChargesForPadding) {
  const auto padded = PaddedServiceModel(1e-3, 0.01);
  // Uniform batch: same cost as token-linear.
  EXPECT_NEAR(padded({50, 50}), 0.01 + 1e-3 * 100, 1e-12);
  // Mixed batch: every member is padded to the longest.
  EXPECT_NEAR(padded({10, 50}), 0.01 + 1e-3 * 100, 1e-12);
  EXPECT_NEAR(padded({}), 0.01, 1e-12);
}

TEST(ServingEngineTest, DrainResetsForTheNextStream) {
  const auto trace = SmallTrace(12);
  ServingEngine engine(SmallModel(), SmallEngineConfig());
  const ServingResult first = engine.Replay(trace);
  EXPECT_EQ(engine.queue_depth(), 0u);
  EXPECT_EQ(engine.admission().offered, 0u);
  const ServingResult second = engine.Replay(trace);
  EXPECT_EQ(first.report().p99_latency_s, second.report().p99_latency_s);
  ASSERT_EQ(first.outputs.size(), second.outputs.size());
  for (std::size_t i = 0; i < first.outputs.size(); ++i) {
    EXPECT_EQ(first.outputs[i], second.outputs[i]);
  }
}

TEST(ServingEngineTest, ValidatesConfigAndPushArguments) {
  EXPECT_THROW(
      {
        auto cfg = SmallEngineConfig();
        cfg.workers = 0;
        ServingEngine engine(SmallModel(), cfg);
      },
      std::invalid_argument);
  EXPECT_THROW(
      {
        auto cfg = SmallEngineConfig();
        cfg.former.max_batch = 0;
        ServingEngine engine(SmallModel(), cfg);
      },
      std::invalid_argument);

  ServingEngine engine(SmallModel(), SmallEngineConfig());
  // Out-of-order arrivals are a caller bug, not a policy decision.
  ASSERT_TRUE(engine.Push({1.0, 16}));
  EXPECT_THROW(engine.Push({0.5, 16}), std::invalid_argument);
  // Wrong embedding shape.
  Rng rng(1);
  const std::size_t hidden = SmallModel().config().encoder.hidden;
  EXPECT_THROW(engine.Push({2.0, 16}, MakeInputEmbedding(rng, 8, hidden)),
               std::invalid_argument);
  (void)engine.Drain();
}

}  // namespace
}  // namespace latte
