// Tests for the extended system features: padding masks in the sparse
// path, the structural At-Sel unit, Q-format fixed point, the multi-layer
// inference engine, the serving simulator and schedule export.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "core/atsel_unit.hpp"
#include "fpga/serving.hpp"
#include "fpga/trace.hpp"
#include "model/inference.hpp"
#include "tensor/fixed_point.hpp"
#include "tensor/matmul.hpp"
#include "workload/synthetic.hpp"

namespace latte {
namespace {

AttentionProblem Problem(std::uint64_t seed, std::size_t n,
                         std::size_t d = 32) {
  Rng rng(seed);
  AttentionWorkloadConfig cfg;
  cfg.head_dim = d;
  return GenerateAttentionProblem(rng, n, cfg);
}

// ---------------------------------------------------------- padding mask --

TEST(MaskedSparseTest, NeverSelectsPaddingKeys) {
  const auto p = Problem(1, 64);
  SparseAttentionConfig cfg;
  cfg.top_k = 16;
  cfg.valid_len = 40;
  SparseAttentionStats stats;
  SparseAttention(p.q, p.k, p.v, cfg, &stats);
  for (const auto& cand : stats.candidates) {
    for (auto j : cand) EXPECT_LT(j, 40u);
  }
  EXPECT_EQ(stats.selected_per_row, 16u);
}

TEST(MaskedSparseTest, EqualsMaskedDenseWhenKCoversValid) {
  const auto p = Problem(2, 48);
  SparseAttentionConfig cfg;
  cfg.top_k = 20;
  cfg.valid_len = 20;  // k covers every valid key
  const auto sparse = SparseAttention(p.q, p.k, p.v, cfg);
  const auto dense = DenseAttentionMasked(p.q, p.k, p.v, 20);
  for (std::size_t i = 0; i < sparse.size(); ++i) {
    EXPECT_NEAR(sparse.flat()[i], dense.flat()[i], 2e-3f);
  }
}

TEST(MaskedSparseTest, ValidLenBeyondNIsAllValid) {
  const auto p = Problem(3, 16);
  SparseAttentionConfig cfg;
  cfg.top_k = 16;
  cfg.valid_len = 999;
  const auto a = SparseAttention(p.q, p.k, p.v, cfg);
  cfg.valid_len = 0;
  const auto b = SparseAttention(p.q, p.k, p.v, cfg);
  EXPECT_EQ(a, b);
}

TEST(MaskedDenseTest, PaddingGetsZeroWeight) {
  // With only the first key valid, the output must equal V row 0.
  const auto p = Problem(4, 8);
  const auto out = DenseAttentionMasked(p.q, p.k, p.v, 1);
  for (std::size_t i = 0; i < out.rows(); ++i) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      EXPECT_NEAR(out(i, c), p.v(0, c), 1e-5f);
    }
  }
}

// ------------------------------------------------------------ AtSelUnit --

TEST(AtSelUnitTest, AgreesWithBehaviouralSelector) {
  const auto p = Problem(5, 96);
  SelectorConfig cfg;
  cfg.top_k = 12;
  for (int bits : {1, 4}) {
    cfg.bits = bits;
    const AtSelUnit unit(cfg);
    const auto structural = unit.Run(p.q, p.k);
    const auto behavioural = SelectCandidates(p.q, p.k, cfg);
    ASSERT_EQ(structural.candidates.size(), behavioural.candidates.size());
    for (std::size_t i = 0; i < structural.candidates.size(); ++i) {
      EXPECT_EQ(structural.candidates[i], behavioural.candidates[i]);
      EXPECT_EQ(structural.approx_scores[i], behavioural.approx_scores[i]);
    }
  }
}

TEST(AtSelUnitTest, CycleAccounting) {
  const auto p = Problem(6, 32, 64);
  SelectorConfig cfg;
  cfg.top_k = 8;
  const AtSelUnit unit(cfg, /*lut_lanes=*/64);
  AtSelUnitStats stats;
  unit.Run(p.q, p.k, &stats);
  EXPECT_EQ(stats.quantize_cycles, 2u * 32u * 64u);
  EXPECT_EQ(stats.score_cycles, 32u * 32u);  // one dot/cycle at 64 lanes
  // Sorter: n pushes + k drain per row.
  EXPECT_EQ(stats.sort_cycles, 32u * (32u + 8u));
  EXPECT_EQ(stats.compare_exchanges, 32u * 32u * 8u);
  EXPECT_GT(stats.TotalCycles(), 0u);
}

TEST(AtSelUnitTest, RejectsZeroLanes) {
  EXPECT_THROW(AtSelUnit(SelectorConfig{}, 0), std::invalid_argument);
}

// ------------------------------------------------------------ FixedPoint --

TEST(FixedPointTest, RoundTripWithinEpsilon) {
  for (float x : {0.f, 1.f, -1.f, 3.1415f, -2.7182f}) {
    EXPECT_NEAR(Fix16::FromFloat(x).ToFloat(), x, Fix16::Epsilon());
  }
}

TEST(FixedPointTest, SaturatesAtRange) {
  const auto big = Fix8::FromFloat(1000.f);
  EXPECT_TRUE(big.saturated());
  EXPECT_FLOAT_EQ(big.ToFloat(), Fix8::Max());
  const auto small = Fix8::FromFloat(-1000.f);
  EXPECT_TRUE(small.saturated());
  EXPECT_LT(small.ToFloat(), -Fix8::Max());  // min is -(max+eps)
}

TEST(FixedPointTest, ArithmeticMatchesFloat) {
  const auto a = Fix16::FromFloat(1.5f);
  const auto b = Fix16::FromFloat(-0.25f);
  EXPECT_NEAR((a + b).ToFloat(), 1.25f, Fix16::Epsilon());
  EXPECT_NEAR((a - b).ToFloat(), 1.75f, Fix16::Epsilon());
  EXPECT_NEAR((a * b).ToFloat(), -0.375f, 2 * Fix16::Epsilon());
  EXPECT_NEAR((-a).ToFloat(), -1.5f, Fix16::Epsilon());
}

TEST(FixedPointTest, AdditionSaturatesStickily) {
  auto acc = Fix8::FromFloat(Fix8::Max());
  const auto one = Fix8::FromFloat(1.f);
  const auto sum = acc + one;
  EXPECT_TRUE(sum.saturated());
  EXPECT_FLOAT_EQ(sum.ToFloat(), Fix8::Max());
}

TEST(FixedPointTest, ComparisonIgnoresSaturationFlag) {
  const auto a = Fix8::FromFloat(Fix8::Max());      // not saturated
  const auto b = Fix8::FromFloat(Fix8::Max() + 1);  // saturated to same raw
  EXPECT_EQ(a, b);
  EXPECT_LT(Fix8::FromFloat(0.f), a);
}

TEST(FixedPointTest, MacChainTracksFloat) {
  Rng rng(7);
  float ref = 0;
  auto acc = Fix24::FromFloat(0.f);
  for (int i = 0; i < 100; ++i) {
    const float x = static_cast<float>(rng.NextUniform(-1.0, 1.0));
    const float w = static_cast<float>(rng.NextUniform(-1.0, 1.0));
    ref += x * w;
    acc = acc + Fix24::FromFloat(x) * Fix24::FromFloat(w);
  }
  EXPECT_NEAR(acc.ToFloat(), ref, 100 * 2 * Fix24::Epsilon());
}

// ------------------------------------------------------- ModelInstance ---

ModelConfig TinyModel() {
  ModelConfig m = ScaledDown(BertBase(), 6);  // 2 layers, hidden 128
  return m;
}

TEST(ModelInstanceTest, ScaledDownShape) {
  const auto m = TinyModel();
  EXPECT_EQ(m.layers, 2u);
  EXPECT_EQ(m.encoder.head_dim(), 64u);  // head_dim preserved
  EXPECT_EQ(m.encoder.hidden % m.encoder.heads, 0u);
}

TEST(ModelInstanceTest, DeterministicForward) {
  const auto m = TinyModel();
  ModelInstance a(m, 42), b(m, 42);
  Rng rng(9);
  const auto x = MakeInputEmbedding(rng, 20, m.encoder.hidden);
  InferenceConfig inf;
  inf.mode = InferenceMode::kDenseFloat;
  EXPECT_EQ(a.Forward(x, inf), b.Forward(x, inf));
}

TEST(ModelInstanceTest, FourModesAgreeOnConcentratedInput) {
  const auto m = TinyModel();
  ModelInstance inst(m, 42);
  Rng rng(10);
  const auto x = MakeInputEmbedding(rng, 40, m.encoder.hidden);

  InferenceConfig dense_f;
  dense_f.mode = InferenceMode::kDenseFloat;
  const auto ref = inst.Forward(x, dense_f);

  InferenceConfig sparse_i8;
  sparse_i8.mode = InferenceMode::kSparseInt8;
  sparse_i8.sparse.top_k = 40;  // degenerate-dense isolates datapath error
  const auto hw = inst.Forward(x, sparse_i8);

  EXPECT_GT(MeanRowCosine(hw, ref), 0.98);
}

TEST(ModelInstanceTest, SparseStatsReported) {
  const auto m = TinyModel();
  ModelInstance inst(m, 1);
  Rng rng(11);
  const auto x = MakeInputEmbedding(rng, 30, m.encoder.hidden);
  InferenceConfig inf;
  inf.mode = InferenceMode::kSparseFloat;
  inf.sparse.top_k = 8;
  std::vector<LayerRunStats> stats;
  inst.Forward(x, inf, &stats);
  ASSERT_EQ(stats.size(), m.layers);
  for (const auto& s : stats) {
    // heads * n * k * d * 2 exact MACs per layer.
    EXPECT_EQ(s.exact_macs,
              m.encoder.heads * 30u * 8u * m.encoder.head_dim() * 2u);
    EXPECT_GT(s.lut_multiplies, 0u);
  }
}

TEST(ModelInstanceTest, DenseModesReportNoSparseWork) {
  const auto m = TinyModel();
  ModelInstance inst(m, 1);
  Rng rng(12);
  const auto x = MakeInputEmbedding(rng, 10, m.encoder.hidden);
  InferenceConfig inf;
  inf.mode = InferenceMode::kDenseInt8;
  std::vector<LayerRunStats> stats;
  inst.Forward(x, inf, &stats);
  for (const auto& s : stats) {
    EXPECT_EQ(s.exact_macs, 0u);
    EXPECT_EQ(s.lut_multiplies, 0u);
  }
}

TEST(ModelInstanceTest, ScaledDownRejectsZero) {
  EXPECT_THROW(ScaledDown(BertBase(), 0), std::invalid_argument);
}

// ------------------------------------------------------------- Serving ---

ServingConfig LightServing() {
  ServingConfig cfg;
  cfg.arrival_rate_rps = 40;
  cfg.former.max_batch = 8;
  cfg.requests = 96;
  cfg.former.timeout_s = 0.02;
  return cfg;
}

TEST(ServingTest, BasicAccounting) {
  const auto rep = SimulateServing(BertBase(), Mrpc(), LightServing());
  EXPECT_EQ(rep.requests, 96u);
  EXPECT_GT(rep.batches, 0u);
  EXPECT_GE(rep.mean_batch_size, 1.0);
  EXPECT_LE(rep.mean_batch_size, 8.0);
  EXPECT_GT(rep.mean_latency_s, 0.0);
  EXPECT_LE(rep.p50_latency_s, rep.p95_latency_s);
  EXPECT_LE(rep.p95_latency_s, rep.p99_latency_s);
  EXPECT_GT(rep.throughput_rps, 0.0);
  EXPECT_GE(rep.device_busy_frac, 0.0);
  EXPECT_LE(rep.device_busy_frac, 1.0 + 1e-9);
}

TEST(ServingTest, LengthAwareSustainsHigherLoadThanBaseline) {
  auto cfg = LightServing();
  cfg.arrival_rate_rps = 60;
  cfg.requests = 128;
  const auto aware = SimulateServing(BertBase(), Rte(), cfg);

  auto base_cfg = cfg;
  base_cfg.accel.mode = FpgaMode::kBaseline;
  base_cfg.accel.baseline_pad_to = static_cast<std::size_t>(Rte().max_len);
  const auto base = SimulateServing(BertBase(), Rte(), base_cfg);

  EXPECT_LT(aware.p95_latency_s, base.p95_latency_s);
  EXPECT_LE(aware.device_busy_frac, base.device_busy_frac + 1e-9);
}

TEST(ServingTest, HigherLoadRaisesTailLatency) {
  auto low = LightServing();
  low.arrival_rate_rps = 10;
  auto high = LightServing();
  high.arrival_rate_rps = 300;
  const auto a = SimulateServing(BertBase(), Mrpc(), low);
  const auto b = SimulateServing(BertBase(), Mrpc(), high);
  EXPECT_LE(a.p99_latency_s, b.p99_latency_s * 2.0);  // loose sanity
  EXPECT_GE(b.device_busy_frac, a.device_busy_frac - 0.05);
}

TEST(ServingTest, RejectsBadConfig) {
  auto cfg = LightServing();
  cfg.arrival_rate_rps = 0;
  EXPECT_THROW(SimulateServing(BertBase(), Mrpc(), cfg),
               std::invalid_argument);
  cfg = LightServing();
  cfg.former.max_batch = 0;
  EXPECT_THROW(SimulateServing(BertBase(), Mrpc(), cfg),
               std::invalid_argument);
}

// --------------------------------------------------------------- Trace ---

ScheduleResult SmallSchedule() {
  const auto ops =
      EncoderOps(BertBase().encoder, AttentionMode::kSparseTopK, 30);
  const auto models =
      BuildStageTimings(GroupByStageHint(ops), AlveoU280Slr0(), 100);
  PipelineSimConfig cfg;
  cfg.layers = 2;
  return SimulatePipeline({120, 100, 80}, models, cfg);
}

TEST(TraceTest, ChromeTraceContainsAllJobs) {
  const auto schedule = SmallSchedule();
  const std::string json = ToChromeTrace(schedule);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("MM|At-Sel"), std::string::npos);
  // One "X" event per job.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, schedule.jobs.size());
}

TEST(TraceTest, CsvHasHeaderAndOneLinePerJob) {
  const auto schedule = SmallSchedule();
  const std::string csv = ToCsv(schedule);
  const auto lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, schedule.jobs.size() + 1);
  EXPECT_EQ(csv.rfind("seq,layer,stage,instance,start_s,end_s", 0), 0u);
}

TEST(TraceTest, WriteTextFileRoundTrip) {
  const std::string path = "trace_test_tmp.json";
  EXPECT_TRUE(WriteTextFile(path, "{}"));
  std::remove(path.c_str());
  EXPECT_FALSE(WriteTextFile("/nonexistent-dir/x/y.json", "{}"));
}

}  // namespace
}  // namespace latte
