// Tests for the hardware unit models added on top of the core algorithm:
// the e^x LUT, the systolic II=1 Top-k sorting network, the HBM channel
// apportionment, the int8 inference path, and pipeline replication.

#include <gtest/gtest.h>

#include <cmath>

#include "core/exp_lut.hpp"
#include "core/fused_kernel.hpp"
#include "core/merge_sorter.hpp"
#include "core/sparse_attention.hpp"
#include "fpga/hbm.hpp"
#include "fpga/pipeline_sim.hpp"
#include "model/config.hpp"
#include "nn/qlinear.hpp"
#include "tensor/matmul.hpp"
#include "tensor/rng.hpp"

namespace latte {
namespace {

// ---------------------------------------------------------------- ExpLut --

TEST(ExpLutTest, AccurateOverWorkingRange) {
  ExpLut lut(64);
  EXPECT_LT(lut.MaxRelativeError(), 2e-3);
  for (float x : {-10.f, -1.f, 0.f, 0.5f, 1.f, 5.f, 20.f}) {
    EXPECT_NEAR(lut.Eval(x), std::exp(x), 2e-3 * std::exp(x)) << x;
  }
}

TEST(ExpLutTest, ResolutionImprovesAccuracy) {
  EXPECT_LT(ExpLut(256).MaxRelativeError(), ExpLut(16).MaxRelativeError());
}

TEST(ExpLutTest, SaturatesExtremes) {
  ExpLut lut;
  EXPECT_TRUE(std::isfinite(lut.Eval(1000.f)));
  EXPECT_GT(lut.Eval(1000.f), 1e37f);
  EXPECT_GE(lut.Eval(-1000.f), 0.f);
  EXPECT_LT(lut.Eval(-1000.f), 1e-37f);
}

TEST(ExpLutTest, MonotoneNonDecreasing) {
  ExpLut lut(64);
  float prev = lut.Eval(-30.f);
  for (float x = -29.9f; x < 30.f; x += 0.05f) {
    const float cur = lut.Eval(x);
    EXPECT_GE(cur, prev * (1 - 1e-6f)) << x;
    prev = cur;
  }
}

TEST(ExpLutTest, RejectsTinyTable) {
  EXPECT_THROW(ExpLut(1), std::invalid_argument);
}

TEST(ExpLutTest, PluggedIntoFusedKernelMatchesExp) {
  Rng rng(3);
  const auto q = rng.NormalMatrix(1, 32, 0.0, 1.0);
  const auto ks = rng.NormalMatrix(8, 32, 0.0, 1.0);
  ExpLut lut(128);
  FusedKernelConfig with;
  with.scale = 0.2f;
  with.exp_lut = &lut;
  FusedKernelConfig without;
  without.scale = 0.2f;
  const auto a = FusedScoreKernel(q.row(0), ks, with);
  const auto b = FusedScoreKernel(q.row(0), ks, without);
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(a.exp_scores[j], b.exp_scores[j],
                2e-3f * b.exp_scores[j] + 1e-9f);
  }
}

// --------------------------------------------------------- SystolicTopK --

TEST(SystolicSorterTest, MatchesBehaviouralStreamingTopK) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.NextIndex(300);
    const std::size_t k = 1 + rng.NextIndex(40);
    std::vector<std::int32_t> row(n);
    for (auto& x : row) {
      x = static_cast<std::int32_t>(rng.NextIndex(60)) - 30;  // many ties
    }
    const auto systolic = SystolicTopK(row, k);
    const auto behavioural = TopK(row, k);
    ASSERT_EQ(systolic.size(), behavioural.size());
    for (std::size_t i = 0; i < systolic.size(); ++i) {
      EXPECT_EQ(systolic[i].index, behavioural[i].index);
      EXPECT_EQ(systolic[i].score, behavioural[i].score);
    }
  }
}

TEST(SystolicSorterTest, IiOneCycleAccounting) {
  SystolicTopKSorter sorter(8);
  for (int i = 0; i < 100; ++i) {
    sorter.Clock(i, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(sorter.cycles(), 100u);                 // one element per cycle
  EXPECT_EQ(sorter.compare_exchanges(), 800u);      // k comparators per cycle
  EXPECT_EQ(sorter.drain_latency(), 8u);
}

TEST(SystolicSorterTest, ResetReusable) {
  SystolicTopKSorter sorter(2);
  sorter.Clock(5, 0);
  sorter.Reset();
  EXPECT_EQ(sorter.cycles(), 0u);
  EXPECT_TRUE(sorter.Drain().empty());
  sorter.Clock(1, 1);
  ASSERT_EQ(sorter.Drain().size(), 1u);
  EXPECT_EQ(sorter.Drain()[0].index, 1u);
}

TEST(SystolicSorterTest, SortedOutput) {
  Rng rng(9);
  SystolicTopKSorter sorter(16);
  for (int i = 0; i < 500; ++i) {
    sorter.Clock(static_cast<std::int32_t>(rng.NextIndex(1000)),
                 static_cast<std::uint32_t>(i));
  }
  const auto out = sorter.Drain();
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i - 1].score, out[i].score);
  }
}

TEST(SystolicSorterTest, RejectsZeroK) {
  EXPECT_THROW(SystolicTopKSorter(0), std::invalid_argument);
}

// ------------------------------------------------------------------ HBM --

TEST(HbmTest, ChannelsSumToAvailable) {
  const auto spec = AlveoU280Slr0();
  const std::vector<double> demand = {1.0, 2.0, 3.0};
  const auto ch = ApportionChannels(spec, demand);
  std::size_t sum = 0;
  for (auto c : ch) sum += c;
  EXPECT_EQ(sum, spec.hbm_channels);
}

TEST(HbmTest, ProportionalToDemand) {
  const auto spec = AlveoU280Slr0();  // 32 channels
  const std::vector<double> demand = {1.0, 3.0};
  const auto ch = ApportionChannels(spec, demand);
  EXPECT_EQ(ch[0], 8u);
  EXPECT_EQ(ch[1], 24u);
}

TEST(HbmTest, ZeroDemandGetsNothingTinyDemandGetsOne) {
  const auto spec = AlveoU280Slr0();
  const std::vector<double> demand = {0.0, 1e-9, 1.0};
  const auto ch = ApportionChannels(spec, demand);
  EXPECT_EQ(ch[0], 0u);
  EXPECT_GE(ch[1], 1u);
  EXPECT_GE(ch[2], 1u);
}

TEST(HbmTest, RejectsNegativeAndOversubscription) {
  const auto spec = AlveoU280Slr0();
  EXPECT_THROW(ApportionChannels(spec, std::vector<double>{-1.0}),
               std::invalid_argument);
  std::vector<double> too_many(spec.hbm_channels + 1, 1.0);
  EXPECT_THROW(ApportionChannels(spec, too_many), std::invalid_argument);
}

TEST(HbmTest, StreamBandwidthScalesWithChannels) {
  const auto spec = AlveoU280Slr0();
  EXPECT_DOUBLE_EQ(StreamBandwidth(spec, spec.hbm_channels),
                   spec.SustainedHbm());
  EXPECT_DOUBLE_EQ(StreamBandwidth(spec, 0), 0.0);
}

// ---------------------------------------------------------------- int8 ---

TEST(QuantizedLinearTest, TracksFloatLayerClosely) {
  Rng rng(11);
  const Linear l = MakeLinear(rng, 64, 48);
  const QuantizedLinear q = QuantizedLinear::FromFloat(l);
  const auto x = rng.NormalMatrix(10, 64, 0.0, 1.0);
  const auto yf = l.Forward(x);
  const auto yq = q.Forward(x);
  ASSERT_EQ(yq.rows(), yf.rows());
  ASSERT_EQ(yq.cols(), yf.cols());
  EXPECT_GT(MeanRowCosine(yq, yf), 0.999);
  // Relative Frobenius error of 8-bit symmetric quantization stays small.
  const MatrixF zero(yf.rows(), yf.cols());
  const double rel =
      FrobeniusDistance(yq, yf) / FrobeniusDistance(yf, zero);
  EXPECT_LT(rel, 0.02);
}

TEST(QuantizedLinearTest, MacCount) {
  Rng rng(12);
  const QuantizedLinear q =
      QuantizedLinear::FromFloat(MakeLinear(rng, 8, 16));
  EXPECT_EQ(q.MacCount(10), 10u * 8u * 16u);
}

TEST(QuantizedLinearTest, InputWidthChecked) {
  Rng rng(13);
  const QuantizedLinear q =
      QuantizedLinear::FromFloat(MakeLinear(rng, 8, 8));
  MatrixF bad(2, 4);
  EXPECT_THROW(q.Forward(bad), std::invalid_argument);
}

TEST(QuantizedEncoderTest, MatchesFloatEncoder) {
  Rng rng(14);
  EncoderConfig cfg;
  cfg.hidden = 64;
  cfg.heads = 4;
  const auto w = MakeEncoderWeights(rng, cfg);
  const auto qw = QuantizedEncoderWeights::FromFloat(w);
  const auto x = rng.NormalMatrix(24, 64, 0.0, 1.0);
  const auto yf = EncoderForwardDense(x, w, cfg);
  const auto yq = QuantizedEncoderForward(x, qw, cfg, DenseAttention);
  EXPECT_GT(MeanRowCosine(yq, yf), 0.995);
}

TEST(QuantizedEncoderTest, WorksWithSparseAttention) {
  Rng rng(15);
  EncoderConfig cfg;
  cfg.hidden = 64;
  cfg.heads = 4;
  const auto w = MakeEncoderWeights(rng, cfg);
  const auto qw = QuantizedEncoderWeights::FromFloat(w);
  const auto x = rng.NormalMatrix(32, 64, 0.0, 1.0);
  SparseAttentionConfig sa;
  sa.top_k = 32;  // degenerate-dense: isolates int8 error
  const auto yq =
      QuantizedEncoderForward(x, qw, cfg, MakeSparseAttentionFn(sa));
  const auto yf = EncoderForwardDense(x, w, cfg);
  EXPECT_GT(MeanRowCosine(yq, yf), 0.99);
}

// ---------------------------------------------------------- Replication --

std::vector<StageTimingModel> ThreeStageModels() {
  const auto ops =
      EncoderOps(BertBase().encoder, AttentionMode::kSparseTopK, 30);
  return BuildStageTimings(GroupByStageHint(ops), AlveoU280Slr0(), 177);
}

TEST(ReplicationTest, ReplicatedBottleneckSpeedsUp) {
  auto models = ThreeStageModels();
  // Make stage 1 the clear bottleneck by shrinking its DSP count, then
  // replicate it (each instance keeps the per-instance timing model).
  models[1].dsp = models[1].dsp / 4;
  std::vector<std::size_t> lens(12, 200);
  PipelineSimConfig base;
  base.layers = 4;
  PipelineSimConfig repl = base;
  repl.replication = {1, 4, 1};
  const auto a = SimulatePipeline(lens, models, base);
  const auto b = SimulatePipeline(lens, models, repl);
  EXPECT_LT(b.makespan, a.makespan * 0.5);
}

TEST(ReplicationTest, InstancesNeverOverlap) {
  auto models = ThreeStageModels();
  PipelineSimConfig cfg;
  cfg.layers = 3;
  cfg.replication = {2, 3, 1};
  std::vector<std::size_t> lens = {300, 250, 200, 150, 100, 90};
  const auto res = SimulatePipeline(lens, models, cfg);
  // Group jobs by (stage, instance): within a group, no time overlap.
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t inst = 0; inst < 3; ++inst) {
      double prev_end = -1;
      for (const auto& j : res.jobs) {
        if (j.stage != s || j.instance != inst) continue;
        EXPECT_GE(j.start, prev_end - 1e-12);
        prev_end = j.end;
      }
    }
  }
}

TEST(ReplicationTest, RoundRobinAssignment) {
  auto models = ThreeStageModels();
  PipelineSimConfig cfg;
  cfg.layers = 1;
  cfg.replication = {2, 1, 1};
  std::vector<std::size_t> lens = {100, 100, 100, 100};
  const auto res = SimulatePipeline(lens, models, cfg);
  std::vector<std::size_t> stage0_instances;
  for (const auto& j : res.jobs) {
    if (j.stage == 0) stage0_instances.push_back(j.instance);
  }
  EXPECT_EQ(stage0_instances,
            (std::vector<std::size_t>{0, 1, 0, 1}));
}

TEST(ReplicationTest, SizeMismatchRejected) {
  auto models = ThreeStageModels();
  PipelineSimConfig cfg;
  cfg.replication = {1, 2};  // 2 entries for 3 stages
  EXPECT_THROW(SimulatePipeline({10}, models, cfg), std::invalid_argument);
}

TEST(ReplicationTest, UtilizationAccountsForInstances) {
  auto models = ThreeStageModels();
  PipelineSimConfig cfg;
  cfg.layers = 6;
  cfg.replication = {1, 2, 1};
  std::vector<std::size_t> lens(10, 150);
  const auto res = SimulatePipeline(lens, models, cfg);
  for (double u : res.StageUtilization()) {
    EXPECT_LE(u, 1.0 + 1e-9);
  }
}

// ----------------------------------------------- RestrictToAttention -----

TEST(RestrictToAttentionTest, KeepsResourcesDropsNonAttentionWork) {
  const auto ops =
      EncoderOps(BertBase().encoder, AttentionMode::kSparseTopK, 30);
  const auto groups = GroupByStageHint(ops);
  const auto full = BuildStageTimings(groups, AlveoU280Slr0(), 177);
  const auto attn = RestrictToAttention(groups, full);
  // Stage 3 (FdFwd) has no attention operators and is dropped.
  EXPECT_EQ(attn.size(), 2u);
  // Resource shares are inherited from the full design.
  EXPECT_DOUBLE_EQ(attn[0].dsp, full[0].dsp);
  EXPECT_DOUBLE_EQ(attn[1].dsp, full[1].dsp);
  // Attention work is a strict subset.
  EXPECT_LT(attn[0].flops.Eval(177), full[0].flops.Eval(177));
}

TEST(RestrictToAttentionTest, SizeMismatchRejected) {
  const auto ops =
      EncoderOps(BertBase().encoder, AttentionMode::kSparseTopK, 30);
  const auto groups = GroupByStageHint(ops);
  const auto full = BuildStageTimings(groups, AlveoU280Slr0(), 177);
  std::vector<std::vector<OpSpec>> wrong(groups.begin(), groups.end() - 1);
  EXPECT_THROW(RestrictToAttention(wrong, full), std::invalid_argument);
}

}  // namespace
}  // namespace latte
