// Tests for fidelity metrics, the calibrated accuracy model, the energy
// model, platform models and the report helpers.

#include <gtest/gtest.h>

#include "metrics/accuracy.hpp"
#include "metrics/energy.hpp"
#include "metrics/fidelity.hpp"
#include "metrics/report.hpp"
#include "platform/platform.hpp"

namespace latte {
namespace {

AttentionProblem Problem(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  AttentionWorkloadConfig cfg;
  return GenerateAttentionProblem(rng, n, cfg);
}

// -------------------------------------------------------------- Fidelity --

TEST(FidelityTest, PerfectWhenKCoversAll) {
  const auto p = Problem(1, 32);
  SparseAttentionConfig cfg;
  cfg.top_k = 32;
  const auto rep = EvaluateFidelity(p, cfg);
  EXPECT_NEAR(rep.topk_recall, 1.0, 1e-9);
  EXPECT_NEAR(rep.retained_mass, 1.0, 1e-6);
  EXPECT_NEAR(rep.output_cosine, 1.0, 1e-5);
  EXPECT_LT(rep.output_rel_error, 1e-3);
}

TEST(FidelityTest, MassGrowsWithK) {
  const auto p = Problem(2, 160);
  double prev = 0;
  for (std::size_t k : {5u, 15u, 40u, 120u}) {
    SparseAttentionConfig cfg;
    cfg.top_k = k;
    const auto rep = EvaluateFidelity(p, cfg);
    EXPECT_GE(rep.retained_mass, prev - 0.02) << "k=" << k;
    prev = rep.retained_mass;
  }
}

TEST(FidelityTest, OracleSelectionRetainsMoreMassThanQuantized) {
  const auto p = Problem(3, 128);
  SparseAttentionConfig cfg;
  cfg.top_k = 16;
  SparseAttentionStats stats;
  SparseAttention(p.q, p.k, p.v, cfg, &stats);
  const auto oracle = ExactTopKCandidates(p.q, p.k, 16);
  const double quant_mass = RetainedSoftmaxMass(p.q, p.k, stats.candidates);
  const double oracle_mass = RetainedSoftmaxMass(p.q, p.k, oracle);
  EXPECT_GE(oracle_mass, quant_mass - 1e-9);
}

TEST(FidelityTest, FourBitSelectionAtLeastAsGoodAsOneBit) {
  const auto p = Problem(4, 128);
  auto mass_at = [&](int bits) {
    SparseAttentionConfig cfg;
    cfg.top_k = 16;
    cfg.bits = bits;
    return EvaluateFidelity(p, cfg).retained_mass;
  };
  EXPECT_GE(mass_at(4), mass_at(1) - 0.02);
}

// -------------------------------------------------------------- Accuracy --

TEST(AccuracyTest, NoLossNoDrop) {
  for (const auto& spec : DatasetZoo()) {
    EXPECT_DOUBLE_EQ(PredictedDrop(spec, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(PredictedScore(spec, 1.0), spec.baseline_score);
  }
}

TEST(AccuracyTest, DropMonotoneInLostMass) {
  const auto spec = Rte();
  double prev = -1;
  for (double mass : {0.99, 0.95, 0.9, 0.8, 0.6, 0.3}) {
    const double d = PredictedDrop(spec, mass);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(AccuracyTest, PaperShapeAtTypicalMasses) {
  // Top-30-like retained mass (~0.95) must lose < 2%; Top-10-like (~0.88)
  // must lose noticeably more.
  for (const auto& spec : DatasetZoo()) {
    EXPECT_LT(PredictedDrop(spec, 0.95), 2.0) << spec.name;
    EXPECT_GT(PredictedDrop(spec, 0.82), 2.0) << spec.name;
  }
}

TEST(AccuracyTest, ScoreFlooredAtZero) {
  EXPECT_EQ(PredictedScore(Rte(), 0.0), 0.0);
}

TEST(AccuracyTest, RteMostSensitive) {
  const double mass = 0.85;
  EXPECT_GT(PredictedDrop(Rte(), mass), PredictedDrop(Mrpc(), mass));
}

// ---------------------------------------------------------------- Energy --

TEST(EnergyTest, FpgaPowerInPlausibleRange) {
  const auto spec = AlveoU280Slr0();
  EXPECT_NEAR(FpgaPowerWatts(spec, 1.0), 35.0, 1.0);
  EXPECT_NEAR(FpgaPowerWatts(spec, 0.0), 12.0, 1.0);
  EXPECT_THROW(FpgaPowerWatts(spec, 1.5), std::invalid_argument);
}

TEST(EnergyTest, EfficiencyMath) {
  EXPECT_NEAR(EnergyEfficiency(3600, 35.0), 102.9, 0.2);
  EXPECT_THROW(EnergyEfficiency(100, 0.0), std::invalid_argument);
}

TEST(EnergyTest, CitedRowsMatchPaperTable2) {
  const auto rows = CitedTable2Rows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].work, "GPU V100: E.T. [18]");
  EXPECT_DOUBLE_EQ(rows[0].gops, 7550);
  EXPECT_DOUBLE_EQ(rows[3].gop_per_j, 382);
  for (const auto& r : rows) EXPECT_TRUE(r.cited);
}

TEST(EnergyTest, GeoMean) {
  EXPECT_DOUBLE_EQ(GeoMean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(GeoMean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_THROW(GeoMean({}), std::invalid_argument);
  EXPECT_THROW(GeoMean({1.0, -2.0}), std::invalid_argument);
}

// -------------------------------------------------------------- Platform --

TEST(PlatformTest, ZooHasThreeBaselines) {
  const auto zoo = PlatformZoo();
  ASSERT_EQ(zoo.size(), 3u);
  EXPECT_EQ(zoo[0].name, "CPU Xeon Gold 5218");
  EXPECT_EQ(zoo[1].name, "Jetson TX2");
  EXPECT_EQ(zoo[2].name, "Quadro RTX 6000");
}

TEST(PlatformTest, GpuFasterThanCpu) {
  const auto model = BertBase();
  std::vector<std::size_t> lens(16, 177);
  const auto cpu = RunPlatform(XeonGold5218(), model, lens);
  const auto gpu = RunPlatform(QuadroRtx6000(), model, lens);
  EXPECT_LT(gpu.latency_s, cpu.latency_s);
}

TEST(PlatformTest, PaddingInflatesLatency) {
  const auto model = BertBase();
  std::vector<std::size_t> uniform(8, 200);
  std::vector<std::size_t> skewed = {821, 100, 100, 100, 100, 100, 100, 100};
  // Same useful tokens would be even lower for skewed; check padding waste:
  const auto a = RunPlatform(QuadroRtx6000(), model, skewed);
  EXPECT_GT(a.computed_flops, a.useful_dense_flops * 2);
}

TEST(PlatformTest, AttentionShareGrowsWithLength) {
  // The O(n^2) attention share must grow with sequence length once the
  // kernels are large enough to saturate the device (batch 16).
  const auto model = BertBase();
  const auto p = QuadroRtx6000();
  const std::vector<std::size_t> short_lens(16, 128);
  const std::vector<std::size_t> long_lens(16, 821);
  const auto short_seq = RunPlatform(p, model, short_lens);
  const auto long_seq = RunPlatform(p, model, long_lens);
  EXPECT_GT(long_seq.attention_latency_s / long_seq.latency_s,
            short_seq.attention_latency_s / short_seq.latency_s);
}

// ---------------------------------------------------------------- Report --

TEST(ReportTest, TableRendersAligned) {
  TextTable t({"a", "bbbb"});
  t.AddRow({"xx", "y"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| a  | bbbb |"), std::string::npos);
  EXPECT_NE(out.find("| xx | y    |"), std::string::npos);
}

TEST(ReportTest, RowArityEnforced) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
}

TEST(ReportTest, Formatting) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(FmtX(12.34, 1), "12.3x");
}

}  // namespace
}  // namespace latte
